// Package ringstate holds versioned, long-lived rings for online
// admission control: create a ring once, then add/remove/modify one
// stream at a time and get the updated schedulability verdict back
// incrementally.
//
// The package is built around one invariant, pinned by the differential
// and fuzz harnesses in this package: after every edit, the retained
// verdicts are bit-identical to a from-scratch analysis of the current
// stream set (reference.go's FullVerdicts, which mirrors the /v1/analyze
// computation). The incremental engines achieve this by replicating the
// reference arithmetic operation-for-operation and re-probing only the
// streams whose verdict can change:
//
//   - PDP (Theorem 4.1): a stream's response time depends only on the
//     blocking term and on strictly higher-priority (shorter-period)
//     streams, so an edit at rate-monotonic index k re-runs the
//     fixpoint for indices ≥ k only (rma.Incremental). The cached
//     response times of the untouched prefix are reused verbatim.
//   - TTP (Theorem 5.1): each stream's allocation h_i is a pure
//     function of (stream, TTRT, availability), so a single edit
//     recomputes one stream's terms in O(1) and re-folds the aggregate
//     Σh_i ≤ TTRT − θ test — unless the edit changes TTRT (a new
//     minimum period) or the fault-budget availability, which
//     invalidates every per-stream term.
//
// Aggregates (utilization, augmented utilization, Σh) are re-folded
// over the cached per-stream values in canonical order on every edit —
// never updated in place with += / -= — because float addition does not
// commute with rounding; re-folding is what keeps them bit-identical to
// the reference.
//
// Store adds optimistic concurrency on top: every ring carries a
// version, every mutation names the version it expects, and a mismatch
// is a typed ConflictError (the /v1/rings 409).
package ringstate

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"ringsched/internal/faults"
)

// Protocol slugs, identical to the internal/service wire slugs so the
// serving layer can pass its canonical protocol lists through unchanged.
const (
	ProtocolModifiedPDP = "modified-802.5"
	ProtocolStandardPDP = "standard-802.5"
	ProtocolTTP         = "fddi"
)

// AllProtocols returns every slug in canonical order.
func AllProtocols() []string {
	return []string{ProtocolModifiedPDP, ProtocolStandardPDP, ProtocolTTP}
}

// protocolRank fixes canonical protocol order.
var protocolRank = map[string]int{
	ProtocolModifiedPDP: 0,
	ProtocolStandardPDP: 1,
	ProtocolTTP:         2,
}

// Errors returned by ring and store operations.
var (
	ErrBadConfig      = errors.New("ringstate: bad ring config")
	ErrBadStream      = errors.New("ringstate: stream period and length must be positive and finite")
	ErrRingNotFound   = errors.New("ringstate: ring not found")
	ErrStreamNotFound = errors.New("ringstate: stream not found")
	ErrTooManyRings   = errors.New("ringstate: ring limit reached")
	ErrTooManyStreams = errors.New("ringstate: per-ring stream limit reached")
)

// ConflictError is the optimistic-concurrency failure: the mutation
// named an expected version that no longer matches the ring.
type ConflictError struct {
	// Expected is the version the caller named.
	Expected uint64
	// Current is the ring's actual version at the time of the edit.
	Current uint64
}

// Error implements error.
func (e *ConflictError) Error() string {
	return fmt.Sprintf("ringstate: version conflict: expected %d, ring is at %d", e.Expected, e.Current)
}

// Stream is the wire form of one synchronous message stream, matching
// the /v1/analyze stream spec (periods in milliseconds).
type Stream struct {
	Name       string  `json:"name,omitempty"`
	PeriodMs   float64 `json:"periodMs"`
	LengthBits float64 `json:"lengthBits"`
}

// validate mirrors the service-layer stream checks.
func (s Stream) validate() error {
	if s.PeriodMs <= 0 || math.IsNaN(s.PeriodMs) || math.IsInf(s.PeriodMs, 0) ||
		s.LengthBits <= 0 || math.IsNaN(s.LengthBits) || math.IsInf(s.LengthBits, 0) {
		return fmt.Errorf("%w: period %v ms, %v bits", ErrBadStream, s.PeriodMs, s.LengthBits)
	}
	return nil
}

// canonLess is the canonical stream order shared with the service
// layer's request canonicalization: (PeriodMs, LengthBits, Name)
// ascending. It is a rate-monotonic order (dividing by 1e3 is
// monotone), so the engine's canonical array doubles as the RM priority
// order the PDP analysis needs.
func canonLess(a, b Stream) bool {
	if a.PeriodMs != b.PeriodMs {
		return a.PeriodMs < b.PeriodMs
	}
	if a.LengthBits != b.LengthBits {
		return a.LengthBits < b.LengthBits
	}
	return a.Name < b.Name
}

// SnapshotStream is one resident stream with its ring-assigned ID.
type SnapshotStream struct {
	ID uint64 `json:"id"`
	Stream
}

// Config describes a ring: which protocols to keep verdicts for, the
// bandwidth, and an optional fault-model spec for side-by-side degraded
// verdicts.
type Config struct {
	// Protocols lists protocol slugs; empty means all three.
	Protocols []string `json:"protocols,omitempty"`
	// BandwidthMbps is the network bandwidth in Mbps.
	BandwidthMbps float64 `json:"bandwidthMbps"`
	// FaultSpec is a fault-model spec string ("" = clean ring).
	FaultSpec string `json:"faultModel,omitempty"`
}

// Normalize validates the config and returns its canonical form (the
// protocol list deduped and ordered, the fault spec re-rendered
// canonically) plus the parsed fault model (nil for a clean ring).
func (c Config) Normalize() (Config, *faults.Model, error) {
	out := c
	if len(c.Protocols) == 0 {
		out.Protocols = AllProtocols()
	} else {
		seen := map[string]bool{}
		out.Protocols = nil
		for _, p := range c.Protocols {
			slug := strings.ToLower(strings.TrimSpace(p))
			if _, ok := protocolRank[slug]; !ok {
				return Config{}, nil, fmt.Errorf("%w: unknown protocol %q", ErrBadConfig, p)
			}
			if !seen[slug] {
				seen[slug] = true
				out.Protocols = append(out.Protocols, slug)
			}
		}
		sort.Slice(out.Protocols, func(i, j int) bool {
			return protocolRank[out.Protocols[i]] < protocolRank[out.Protocols[j]]
		})
	}
	if c.BandwidthMbps <= 0 || math.IsNaN(c.BandwidthMbps) || math.IsInf(c.BandwidthMbps, 0) {
		return Config{}, nil, fmt.Errorf("%w: bandwidthMbps must be positive and finite, got %v",
			ErrBadConfig, c.BandwidthMbps)
	}
	var fm *faults.Model
	out.FaultSpec = ""
	if c.FaultSpec != "" {
		m, err := faults.ParseModel(c.FaultSpec)
		if err != nil {
			return Config{}, nil, fmt.Errorf("%w: %v", ErrBadConfig, err)
		}
		if m.Active() {
			out.FaultSpec = m.Spec()
			fm = &m
		}
	}
	return out, fm, nil
}

// Verdict is one protocol's analysis outcome for the ring, shaped like
// the /v1/analyze verdict (same JSON tags) with per-stream detail always
// included. All durations are seconds.
type Verdict struct {
	Protocol             string           `json:"protocol"`
	Schedulable          bool             `json:"schedulable"`
	Utilization          float64          `json:"utilization"`
	AugmentedUtilization float64          `json:"augmentedUtilization,omitempty"`
	Blocking             float64          `json:"blocking,omitempty"`
	Theta                float64          `json:"theta,omitempty"`
	FrameTime            float64          `json:"frameTime,omitempty"`
	TTRT                 float64          `json:"ttrt,omitempty"`
	Overhead             float64          `json:"overhead,omitempty"`
	TotalAllocation      float64          `json:"totalAllocation,omitempty"`
	Capacity             float64          `json:"capacity,omitempty"`
	Degraded             *DegradedVerdict `json:"degraded,omitempty"`
	Streams              []StreamVerdict  `json:"streams,omitempty"`
}

// DegradedVerdict is the fault-aware outcome (shape of the /v1/analyze
// degraded verdict).
type DegradedVerdict struct {
	Schedulable     bool    `json:"schedulable"`
	Availability    float64 `json:"availability"`
	Losses          float64 `json:"losses,omitempty"`
	Recovery        float64 `json:"recovery,omitempty"`
	Blocking        float64 `json:"blocking,omitempty"`
	TotalAllocation float64 `json:"totalAllocation,omitempty"`
	Capacity        float64 `json:"capacity,omitempty"`
}

// StreamVerdict is one stream's outcome, shaped like the /v1/analyze
// per-stream verdict plus the ring-assigned stream ID.
type StreamVerdict struct {
	ID                uint64  `json:"id"`
	Name              string  `json:"name,omitempty"`
	PeriodMs          float64 `json:"periodMs"`
	Frames            int     `json:"frames,omitempty"`
	Q                 int     `json:"q,omitempty"`
	AugmentedLength   float64 `json:"augmentedLength"`
	ResponseTime      float64 `json:"responseTime,omitempty"`
	Allocation        float64 `json:"allocation,omitempty"`
	WorstCaseResponse float64 `json:"worstCaseResponse,omitempty"`
	Schedulable       bool    `json:"schedulable"`
}

// Edit op names, as they appear in Delta.Op and the wire.
const (
	OpAdd    = "add"
	OpRemove = "remove"
	OpModify = "modify"
)

// StreamFlip records a stream (other than the edited one) whose
// per-stream clean verdict changed because of an edit.
type StreamFlip struct {
	ID          uint64
	Name        string
	Schedulable bool
}

// ProtocolDelta is one protocol's incremental outcome for a single edit.
type ProtocolDelta struct {
	// Protocol is the slug.
	Protocol string
	// Reprobed counts per-stream analysis recomputations this edit cost
	// (clean plus degraded passes).
	Reprobed int
	// WasSchedulable / Schedulable are the ring-level clean verdict
	// before and after the edit.
	WasSchedulable bool
	Schedulable    bool
	// HasDegraded reports whether degraded fields are meaningful.
	HasDegraded            bool
	DegradedWasSchedulable bool
	DegradedSchedulable    bool
	// EditedSchedulable is the edited/added stream's own clean verdict
	// (meaningless for a remove).
	EditedSchedulable bool
	// Flipped lists other streams whose clean per-stream verdict changed.
	Flipped []StreamFlip
}

// Delta is the incremental outcome of one edit. The engine reuses its
// delta buffers: a Delta (including nested slices) is valid only until
// the next edit — Clone it to retain it.
type Delta struct {
	Op        string
	StreamID  uint64
	Reprobed  int
	Protocols []ProtocolDelta
}

// Clone deep-copies the delta out of the engine's scratch buffers.
func (d *Delta) Clone() *Delta {
	out := *d
	out.Protocols = make([]ProtocolDelta, len(d.Protocols))
	for i, p := range d.Protocols {
		out.Protocols[i] = p
		out.Protocols[i].Flipped = append([]StreamFlip(nil), p.Flipped...)
	}
	return &out
}
