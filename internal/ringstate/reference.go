package ringstate

import (
	"sort"

	"ringsched/internal/core"
	"ringsched/internal/faults"
	"ringsched/internal/message"
	"ringsched/internal/ring"
)

// FullVerdicts computes the ring's verdicts from scratch, mirroring the
// /v1/analyze computation (core.Report / core.FaultReport on a freshly
// built plant) rather than the incremental engine's cached state. It is
// the reference side of the differential harness: after any edit
// sequence, Engine.Verdicts() must be bit-identical to FullVerdicts of
// the engine's snapshot.
//
// The snapshot is stably sorted into canonical order first, so callers
// may pass streams in any order; ID ties follow input order, exactly as
// the engine places ties in arrival order.
func FullVerdicts(cfg Config, streams []SnapshotStream) ([]Verdict, error) {
	norm, fm, err := cfg.Normalize()
	if err != nil {
		return nil, err
	}
	snap := append([]SnapshotStream(nil), streams...)
	sort.SliceStable(snap, func(i, j int) bool { return canonLess(snap[i].Stream, snap[j].Stream) })
	for _, s := range snap {
		if err := s.validate(); err != nil {
			return nil, err
		}
	}
	set := make(message.Set, len(snap))
	for i, s := range snap {
		set[i] = message.Stream{Name: s.Name, Period: s.PeriodMs / 1e3, LengthBits: s.LengthBits}
	}
	bw := ring.Mbps(norm.BandwidthMbps)
	out := make([]Verdict, 0, len(norm.Protocols))
	for _, proto := range norm.Protocols {
		if len(set) == 0 {
			out = append(out, Verdict{Protocol: proto, Schedulable: true})
			continue
		}
		var v Verdict
		if proto == ProtocolTTP {
			v, err = fullTTP(bw, set, snap, fm)
		} else {
			v, err = fullPDP(proto, bw, set, snap, fm)
		}
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// fullPDP mirrors the service's analyzePDP with detail always on and
// ring-assigned IDs attached. Because the set is canonically sorted —
// which is a stable rate-monotonic order — the report's RM-sorted
// streams align index-by-index with the snapshot.
func fullPDP(proto string, bw float64, set message.Set, snap []SnapshotStream, fm *faults.Model) (Verdict, error) {
	p := core.NewStandardPDP(bw)
	if proto == ProtocolModifiedPDP {
		p = core.NewModifiedPDP(bw)
	}
	if len(set) > p.Net.Stations {
		p.Net = p.Net.WithStations(len(set))
	}
	rep, err := p.Report(set)
	if err != nil {
		return Verdict{}, err
	}
	v := Verdict{
		Protocol:             proto,
		Schedulable:          rep.Schedulable,
		Utilization:          rep.Utilization,
		AugmentedUtilization: rep.AugmentedUtilization,
		Blocking:             rep.Blocking,
		Theta:                rep.Theta,
		FrameTime:            rep.FrameTime,
		Streams:              make([]StreamVerdict, len(rep.Streams)),
	}
	for i, s := range rep.Streams {
		v.Streams[i] = StreamVerdict{
			ID:              snap[i].ID,
			Name:            s.Stream.Name,
			PeriodMs:        s.Stream.Period * 1e3,
			Frames:          s.Frames,
			AugmentedLength: s.AugmentedLength,
			ResponseTime:    s.ResponseTime,
			Schedulable:     s.Schedulable,
		}
	}
	if fm != nil {
		budget := p.FaultBudgetFor(fm, set)
		deg, err := p.FaultReport(set, budget)
		if err != nil {
			return Verdict{}, err
		}
		v.Degraded = &DegradedVerdict{
			Schedulable:  deg.Schedulable,
			Availability: budget.Availability,
			Losses:       budget.Losses,
			Recovery:     budget.Recovery,
			Blocking:     deg.Blocking,
		}
	}
	return v, nil
}

// fullTTP mirrors the service's analyzeTTP (see fullPDP).
func fullTTP(bw float64, set message.Set, snap []SnapshotStream, fm *faults.Model) (Verdict, error) {
	t := core.NewTTP(bw)
	if len(set) > t.Net.Stations {
		t.Net = t.Net.WithStations(len(set))
	}
	rep, err := t.Report(set)
	if err != nil {
		return Verdict{}, err
	}
	v := Verdict{
		Protocol:        ProtocolTTP,
		Schedulable:     rep.Schedulable,
		Utilization:     rep.Utilization,
		TTRT:            rep.TTRT,
		Overhead:        rep.Overhead,
		TotalAllocation: rep.TotalAllocation,
		Capacity:        rep.Capacity,
		Streams:         make([]StreamVerdict, len(rep.Streams)),
	}
	for i, s := range rep.Streams {
		v.Streams[i] = StreamVerdict{
			ID:                snap[i].ID,
			Name:              s.Stream.Name,
			PeriodMs:          s.Stream.Period * 1e3,
			Q:                 s.Q,
			AugmentedLength:   s.AugmentedLength,
			Allocation:        s.Allocation,
			WorstCaseResponse: s.WorstCaseResponse,
			Schedulable:       s.Q >= 2,
		}
	}
	if fm != nil {
		budget := t.FaultBudgetFor(fm, set)
		deg, err := t.FaultReport(set, budget)
		if err != nil {
			return Verdict{}, err
		}
		v.Degraded = &DegradedVerdict{
			Schedulable:     deg.Schedulable,
			Availability:    deg.Availability,
			TotalAllocation: deg.TotalAllocation,
			Capacity:        deg.Capacity,
		}
	}
	return v, nil
}
