package ringstate

import (
	"math"

	"ringsched/internal/core"
	"ringsched/internal/faults"
	"ringsched/internal/message"
	"ringsched/internal/ring"
	"ringsched/internal/rma"
)

// Engine is the incremental analysis state of one ring: the resident
// stream set in canonical order plus, per configured protocol, the
// cached scheduling state a single-stream edit can partially reuse.
// Engines are not safe for concurrent use; Store wraps them in per-ring
// locks.
type Engine struct {
	cfg    Config
	bw     float64       // bits per second
	fm     *faults.Model // nil = clean ring
	nextID uint64

	// The resident set in canonical (PeriodMs, LengthBits, Name) order —
	// which is rate-monotonic order, the order the reference analysis
	// sorts into. All three arrays are parallel.
	ids  []uint64
	wire []Stream
	set  message.Set

	util float64 // payload utilization fold, shared by every verdict

	pdps []*pdpEngine
	ttp  *ttpEngine

	stations int // effective station count the plants were built for

	delta Delta // scratch, reused across edits
}

// splice describes one edit's index arithmetic: where a stream left the
// canonical array and/or where one entered it.
type splice struct {
	op   string
	j, k int // remove index (pre-edit coords) and insert index (post-remove coords)
}

// mapIndex translates a pre-edit canonical index to its post-edit
// position, or -1 for the removed/edited stream itself.
func (sp splice) mapIndex(i int) int {
	switch sp.op {
	case OpAdd:
		if i >= sp.k {
			return i + 1
		}
		return i
	case OpRemove:
		switch {
		case i == sp.j:
			return -1
		case i > sp.j:
			return i - 1
		}
		return i
	default: // OpModify: remove at j, then insert at k
		if i == sp.j {
			return -1
		}
		if i > sp.j {
			i--
		}
		if i >= sp.k {
			i++
		}
		return i
	}
}

// editedIndex is the edited stream's post-edit canonical index, or -1
// for a remove.
func (sp splice) editedIndex() int {
	if sp.op == OpRemove {
		return -1
	}
	return sp.k
}

// effStations mirrors the service plant sizing: the paper's 100-station
// plant, grown to the stream count when it exceeds 100.
func effStations(preset, n int) int {
	if n > preset {
		return n
	}
	return preset
}

// NewEngine builds an empty engine for a normalized or raw config.
func NewEngine(cfg Config) (*Engine, error) {
	norm, fm, err := cfg.Normalize()
	if err != nil {
		return nil, err
	}
	e := &Engine{
		cfg:    norm,
		bw:     ring.Mbps(norm.BandwidthMbps),
		fm:     fm,
		nextID: 1,
	}
	for _, proto := range norm.Protocols {
		if proto == ProtocolTTP {
			e.ttp = &ttpEngine{}
		} else {
			e.pdps = append(e.pdps, &pdpEngine{proto: proto})
		}
	}
	e.rebuildAll()
	return e, nil
}

// Config returns the normalized ring config.
func (e *Engine) Config() Config { return e.cfg }

// Len returns the resident stream count.
func (e *Engine) Len() int { return len(e.set) }

// Snapshot returns the resident streams with their IDs in canonical
// order (a fresh copy).
func (e *Engine) Snapshot() []SnapshotStream {
	out := make([]SnapshotStream, len(e.wire))
	for i, s := range e.wire {
		out[i] = SnapshotStream{ID: e.ids[i], Stream: s}
	}
	return out
}

// find returns the canonical index of the stream with the given ID, or
// -1.
func (e *Engine) find(id uint64) int {
	for i, v := range e.ids {
		if v == id {
			return i
		}
	}
	return -1
}

// upperBound returns the canonical insertion index for s: after every
// resident stream whose key is ≤ s's key. This matches the stable sort
// of the reference canonicalization: among tied keys, streams stay in
// arrival order.
func (e *Engine) upperBound(s Stream) int {
	i := 0
	for i < len(e.wire) && !canonLess(s, e.wire[i]) {
		i++
	}
	return i
}

// Add admits a stream, returning its assigned ID and the incremental
// verdict delta. The returned Delta aliases engine scratch: valid until
// the next edit.
func (e *Engine) Add(s Stream) (uint64, *Delta, error) {
	if err := s.validate(); err != nil {
		return 0, nil, err
	}
	id := e.nextID
	e.nextID++
	k := e.upperBound(s)
	e.snapshotAll()
	e.ids = append(e.ids, 0)
	copy(e.ids[k+1:], e.ids[k:])
	e.ids[k] = id
	e.wire = append(e.wire, Stream{})
	copy(e.wire[k+1:], e.wire[k:])
	e.wire[k] = s
	e.set = append(e.set, message.Stream{})
	copy(e.set[k+1:], e.set[k:])
	e.set[k] = message.Stream{Name: s.Name, Period: s.PeriodMs / 1e3, LengthBits: s.LengthBits}
	e.applyEdit(splice{op: OpAdd, k: k}, id)
	return id, &e.delta, nil
}

// Remove evicts the stream with the given ID.
func (e *Engine) Remove(id uint64) (*Delta, error) {
	j := e.find(id)
	if j < 0 {
		return nil, ErrStreamNotFound
	}
	e.snapshotAll()
	e.spliceOut(j)
	e.applyEdit(splice{op: OpRemove, j: j}, id)
	return &e.delta, nil
}

// Modify replaces the stream with the given ID. The stream keeps its ID
// but takes the canonical position of its new key (after tied keys,
// exactly as a fresh canonicalization of the whole set would place it).
func (e *Engine) Modify(id uint64, s Stream) (*Delta, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	j := e.find(id)
	if j < 0 {
		return nil, ErrStreamNotFound
	}
	e.snapshotAll()
	e.spliceOut(j)
	k := e.upperBound(s)
	e.ids = append(e.ids, 0)
	copy(e.ids[k+1:], e.ids[k:])
	e.ids[k] = id
	e.wire = append(e.wire, Stream{})
	copy(e.wire[k+1:], e.wire[k:])
	e.wire[k] = s
	e.set = append(e.set, message.Stream{})
	copy(e.set[k+1:], e.set[k:])
	e.set[k] = message.Stream{Name: s.Name, Period: s.PeriodMs / 1e3, LengthBits: s.LengthBits}
	e.applyEdit(splice{op: OpModify, j: j, k: k}, id)
	return &e.delta, nil
}

func (e *Engine) spliceOut(j int) {
	copy(e.ids[j:], e.ids[j+1:])
	e.ids = e.ids[:len(e.ids)-1]
	copy(e.wire[j:], e.wire[j+1:])
	e.wire = e.wire[:len(e.wire)-1]
	copy(e.set[j:], e.set[j+1:])
	e.set = e.set[:len(e.set)-1]
}

// snapshotAll captures the pre-edit per-stream and ring-level verdict
// bits every protocol engine needs for flip detection.
func (e *Engine) snapshotAll() {
	for _, pe := range e.pdps {
		pe.snapshot()
	}
	if e.ttp != nil {
		e.ttp.snapshot()
	}
}

// applyEdit brings every protocol engine up to date after the canonical
// arrays changed, choosing incremental paths where the invalidation
// rules allow and full rebuilds where they do not (station-count
// changes re-plant the ring: Θ and every cost shifts).
func (e *Engine) applyEdit(sp splice, id uint64) {
	st := effStations(ring.PaperStations, len(e.set))
	rebuilt := false
	if st != e.stations {
		e.stations = st
		e.rebuildAll()
		rebuilt = true
	} else {
		e.util = e.set.Utilization(e.bw)
		for _, pe := range e.pdps {
			pe.applySplice(e, sp)
		}
		if e.ttp != nil {
			e.ttp.applySplice(e, sp)
		}
	}
	e.buildDelta(sp, id, rebuilt)
}

// rebuildAll reconstructs every protocol engine from the canonical
// arrays.
func (e *Engine) rebuildAll() {
	e.stations = effStations(ring.PaperStations, len(e.set))
	e.util = e.set.Utilization(e.bw)
	for _, pe := range e.pdps {
		pe.rebuild(e)
	}
	if e.ttp != nil {
		e.ttp.rebuild(e)
	}
}

// appendFlips compares pre/post per-stream verdict bits through the
// splice's index mapping and appends one StreamFlip per changed stream
// (the edited stream itself excluded).
func (e *Engine) appendFlips(sp splice, oldBits, newBits []bool, buf []StreamFlip) []StreamFlip {
	buf = buf[:0]
	for i := range oldBits {
		ni := sp.mapIndex(i)
		if ni < 0 {
			continue
		}
		if newBits[ni] != oldBits[i] {
			buf = append(buf, StreamFlip{ID: e.ids[ni], Name: e.wire[ni].Name, Schedulable: newBits[ni]})
		}
	}
	return buf
}

// buildDelta assembles the scratch Delta after an edit.
func (e *Engine) buildDelta(sp splice, id uint64, rebuilt bool) {
	d := &e.delta
	d.Op = sp.op
	d.StreamID = id
	d.Reprobed = 0
	d.Protocols = d.Protocols[:0]
	ei := sp.editedIndex()
	for _, pe := range e.pdps {
		pd := ProtocolDelta{
			Protocol:       pe.proto,
			Reprobed:       pe.reprobed,
			WasSchedulable: pe.oldRingSched,
			Schedulable:    pe.rta.Schedulable(),
			HasDegraded:    e.fm != nil && len(e.set) > 0,
		}
		if pd.HasDegraded {
			pd.DegradedWasSchedulable = pe.oldDegSched
			pd.DegradedSchedulable = pe.drta.Schedulable()
		}
		if ei >= 0 {
			pd.EditedSchedulable = pe.newSched[ei]
		}
		pd.Flipped = e.appendFlips(sp, pe.oldSched, pe.newSched, pe.flips)
		pe.flips = pd.Flipped
		d.Reprobed += pd.Reprobed
		d.Protocols = append(d.Protocols, pd)
	}
	if te := e.ttp; te != nil {
		pd := ProtocolDelta{
			Protocol:       ProtocolTTP,
			Reprobed:       te.reprobed,
			WasSchedulable: te.oldRingSched,
			Schedulable:    len(e.set) == 0 || te.total <= te.capacity,
			HasDegraded:    e.fm != nil && len(e.set) > 0,
		}
		if pd.HasDegraded {
			pd.DegradedWasSchedulable = te.oldDegSched
			pd.DegradedSchedulable = te.dtotal <= te.capacity
		}
		if ei >= 0 {
			pd.EditedSchedulable = te.newSched[ei]
		}
		pd.Flipped = e.appendFlips(sp, te.oldSched, te.newSched, te.flips)
		te.flips = pd.Flipped
		d.Reprobed += pd.Reprobed
		d.Protocols = append(d.Protocols, pd)
	}
	_ = rebuilt
}

// Verdicts renders the current verdicts in canonical protocol order (a
// fresh allocation; safe to retain). An empty ring is vacuously
// schedulable with zero aggregates, mirroring FullVerdicts.
func (e *Engine) Verdicts() []Verdict {
	out := make([]Verdict, 0, len(e.cfg.Protocols))
	for _, proto := range e.cfg.Protocols {
		if proto == ProtocolTTP {
			out = append(out, e.ttp.verdict(e))
		} else {
			for _, pe := range e.pdps {
				if pe.proto == proto {
					out = append(out, pe.verdict(e))
				}
			}
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// PDP: Theorem 4.1 via the incremental response-time workspace.

// pdpEngine caches one PDP variant's per-stream scheduling state. The
// invalidation rule (why each piece is cached or recomputed) is
// documented on applySplice.
type pdpEngine struct {
	proto string
	p     core.PDP

	costs   []float64 // clean C'_i, canonical order
	frames  []int     // K_i
	rta     rma.Incremental
	augUtil float64

	// Degraded mode (engine.fm != nil): the budget's Nloss depends on
	// the whole set's frame rate and max period, so B' — and with it
	// every degraded response time — must be recomputed on any edit
	// that changes it. The per-stream degraded costs C'_i/A are stable
	// while the station count (and thus the availability) holds.
	budget core.FaultBudget
	scale  float64
	dcosts []float64
	drta   rma.Incremental

	// Edit scratch.
	reprobed     int
	oldRingSched bool
	oldDegSched  bool
	oldSched     []bool
	newSched     []bool
	flips        []StreamFlip
}

// pdpFor mirrors the service plant construction exactly.
func pdpFor(proto string, bw float64, n int) core.PDP {
	p := core.NewStandardPDP(bw)
	if proto == ProtocolModifiedPDP {
		p = core.NewModifiedPDP(bw)
	}
	if n > p.Net.Stations {
		p.Net = p.Net.WithStations(n)
	}
	return p
}

func (pe *pdpEngine) snapshot() {
	pe.oldRingSched = pe.rta.Schedulable()
	pe.oldDegSched = pe.drta.Len() > 0 && pe.drta.Schedulable()
	pe.oldSched = pe.oldSched[:0]
	for i := 0; i < pe.rta.Len(); i++ {
		pe.oldSched = append(pe.oldSched, pe.rta.TaskSchedulable(i))
	}
}

func (pe *pdpEngine) fillNewSched() {
	pe.newSched = pe.newSched[:0]
	for i := 0; i < pe.rta.Len(); i++ {
		pe.newSched = append(pe.newSched, pe.rta.TaskSchedulable(i))
	}
}

// refold recomputes the order-sensitive aggregate exactly as the
// reference does: Σ (C'_i · scale) / P_i in canonical order, with the
// clean scale of 1 charged as the identity it is.
func (pe *pdpEngine) refold(e *Engine) {
	pe.augUtil = 0
	for i, c := range pe.costs {
		pe.augUtil += c / e.set[i].Period
	}
}

// rebuild reconstructs the engine from scratch on the current plant.
func (pe *pdpEngine) rebuild(e *Engine) {
	n := len(e.set)
	pe.p = pdpFor(pe.proto, e.bw, n)
	pe.costs = pe.costs[:0]
	pe.frames = pe.frames[:0]
	if err := pe.rta.Reset(pe.p.RecoveryBlocking(core.CleanFaultBudget())); err != nil {
		panic(err)
	}
	pe.reprobed = 0
	for i, s := range e.set {
		cost := pe.p.AugmentedLength(s)
		_, k := pe.p.Frame.Split(s.LengthBits)
		pe.costs = append(pe.costs, cost)
		pe.frames = append(pe.frames, k)
		re, err := pe.rta.Insert(i, rma.Task{Cost: cost, Period: s.Period})
		if err != nil {
			panic(err)
		}
		pe.reprobed += re
	}
	pe.refold(e)
	pe.rebuildDegraded(e)
	pe.fillNewSched()
}

func (pe *pdpEngine) rebuildDegraded(e *Engine) {
	pe.dcosts = pe.dcosts[:0]
	if e.fm == nil || len(e.set) == 0 {
		pe.budget = core.CleanFaultBudget()
		pe.scale = 1
		_ = pe.drta.Reset(0)
		return
	}
	pe.budget = pe.p.FaultBudgetFor(e.fm, e.set)
	pe.scale = 1 / pe.budget.Availability
	if err := pe.drta.Reset(pe.p.RecoveryBlocking(pe.budget)); err != nil {
		panic(err)
	}
	for i, s := range e.set {
		dc := pe.costs[i] * pe.scale
		pe.dcosts = append(pe.dcosts, dc)
		re, err := pe.drta.Insert(i, rma.Task{Cost: dc, Period: s.Period})
		if err != nil {
			panic(err)
		}
		pe.reprobed += re
	}
}

// applySplice is the incremental PDP edit. Invalidation rule: a clean
// response time depends only on the blocking term and on streams at
// strictly higher RM priority, so the edit at canonical index k
// re-probes indices ≥ k and reuses the prefix verbatim. The degraded
// blocking B' = B + Nloss·R folds the whole set's frame rate, so any
// edit can move it — when it does, the degraded pass re-probes
// everything (Rebase); when it does not (bitwise), the suffix re-probe
// from the splice suffices.
func (pe *pdpEngine) applySplice(e *Engine, sp splice) {
	pe.reprobed = 0
	if e.fm != nil && len(e.set) > 0 {
		// Refresh the budget BEFORE splicing: insertAt prices the new
		// stream's degraded cost with pe.scale, which is stale coming off
		// an empty ring (scale 1). The availability itself is a pure
		// function of (model, stations), so resident dcosts stay valid —
		// a stations change takes the rebuild path instead.
		pe.budget = pe.p.FaultBudgetFor(e.fm, e.set)
		pe.scale = 1 / pe.budget.Availability
	}
	switch sp.op {
	case OpAdd:
		pe.insertAt(e, sp.k)
	case OpRemove:
		pe.removeAt(sp.j)
	default:
		pe.removeAt(sp.j)
		pe.insertAt(e, sp.k)
	}
	pe.refold(e)
	if e.fm != nil {
		if len(e.set) == 0 {
			pe.rebuildDegraded(e)
		} else {
			newBlocking := pe.p.RecoveryBlocking(pe.budget)
			if math.Float64bits(newBlocking) != math.Float64bits(pe.drta.Blocking()) {
				re, err := pe.drta.Rebase(newBlocking)
				if err != nil {
					panic(err)
				}
				pe.reprobed += re
			}
		}
	}
	pe.fillNewSched()
}

func (pe *pdpEngine) insertAt(e *Engine, k int) {
	s := e.set[k]
	cost := pe.p.AugmentedLength(s)
	_, kf := pe.p.Frame.Split(s.LengthBits)
	pe.costs = append(pe.costs, 0)
	copy(pe.costs[k+1:], pe.costs[k:])
	pe.costs[k] = cost
	pe.frames = append(pe.frames, 0)
	copy(pe.frames[k+1:], pe.frames[k:])
	pe.frames[k] = kf
	re, err := pe.rta.Insert(k, rma.Task{Cost: cost, Period: s.Period})
	if err != nil {
		panic(err)
	}
	pe.reprobed += re
	if e.fm != nil {
		dc := cost * pe.scale
		pe.dcosts = append(pe.dcosts, 0)
		copy(pe.dcosts[k+1:], pe.dcosts[k:])
		pe.dcosts[k] = dc
		re, err := pe.drta.Insert(k, rma.Task{Cost: dc, Period: s.Period})
		if err != nil {
			panic(err)
		}
		pe.reprobed += re
	}
}

func (pe *pdpEngine) removeAt(j int) {
	copy(pe.costs[j:], pe.costs[j+1:])
	pe.costs = pe.costs[:len(pe.costs)-1]
	copy(pe.frames[j:], pe.frames[j+1:])
	pe.frames = pe.frames[:len(pe.frames)-1]
	re, err := pe.rta.Remove(j)
	if err != nil {
		panic(err)
	}
	pe.reprobed += re
	if len(pe.dcosts) > 0 {
		copy(pe.dcosts[j:], pe.dcosts[j+1:])
		pe.dcosts = pe.dcosts[:len(pe.dcosts)-1]
		re, err := pe.drta.Remove(j)
		if err != nil {
			panic(err)
		}
		pe.reprobed += re
	}
}

func (pe *pdpEngine) verdict(e *Engine) Verdict {
	if len(e.set) == 0 {
		return Verdict{Protocol: pe.proto, Schedulable: true}
	}
	v := Verdict{
		Protocol:             pe.proto,
		Schedulable:          pe.rta.Schedulable(),
		Utilization:          e.util,
		AugmentedUtilization: pe.augUtil,
		Blocking:             pe.rta.Blocking(),
		Theta:                pe.p.Net.Theta(),
		FrameTime:            pe.p.Frame.Time(pe.p.Net.BandwidthBPS),
		Streams:              make([]StreamVerdict, len(e.set)),
	}
	for i, s := range e.set {
		v.Streams[i] = StreamVerdict{
			ID:              e.ids[i],
			Name:            s.Name,
			PeriodMs:        s.Period * 1e3,
			Frames:          pe.frames[i],
			AugmentedLength: pe.costs[i],
			ResponseTime:    pe.rta.ResponseTime(i),
			Schedulable:     pe.rta.TaskSchedulable(i),
		}
	}
	if e.fm != nil {
		v.Degraded = &DegradedVerdict{
			Schedulable:  pe.drta.Schedulable(),
			Availability: pe.budget.Availability,
			Losses:       pe.budget.Losses,
			Recovery:     pe.budget.Recovery,
			Blocking:     pe.drta.Blocking(),
		}
	}
	return v
}

// ---------------------------------------------------------------------------
// TTP: Theorem 5.1 with O(1) per-stream terms and a re-folded aggregate.

// ttpEngine caches the FDDI allocation state. Invalidation rule: each
// stream's (q, C', h, wcr) is a pure function of (stream, TTRT,
// availability), so a single edit recomputes one stream's terms —
// unless TTRT moved (the edit changed the minimum period) or the
// fault-budget availability moved (loss fraction is TTRT-coupled), in
// which case every per-stream term is recomputed. The aggregate Σh is
// re-folded in canonical order either way.
type ttpEngine struct {
	t        core.TTP
	overhead float64
	fovhd    float64
	ttrt     float64
	capacity float64

	q     []int
	cAug  []float64
	h     []float64
	wcr   []float64
	total float64

	budget core.FaultBudget
	avail  float64
	dq     []int
	dcAug  []float64
	dh     []float64
	dwcr   []float64
	dtotal float64

	reprobed     int
	oldRingSched bool
	oldDegSched  bool
	oldSched     []bool
	newSched     []bool
	flips        []StreamFlip
}

// ttpFor mirrors the service plant construction exactly.
func ttpFor(bw float64, n int) core.TTP {
	t := core.NewTTP(bw)
	if n > t.Net.Stations {
		t.Net = t.Net.WithStations(n)
	}
	return t
}

// terms replicates the Theorem 5.1 per-stream loop body verbatim.
func (te *ttpEngine) terms(s message.Stream, avail float64) (q int, cAug, h, wcr float64) {
	q = int(math.Floor(avail * s.Period / te.ttrt))
	if q < 2 {
		q = 1
	}
	cAug = s.Length(te.t.Net.BandwidthBPS) + float64(q-1)*te.fovhd
	if q >= 2 {
		h = cAug / float64(q-1)
	} else {
		h = math.Inf(1)
	}
	wcr = float64(q) * te.ttrt / avail
	return q, cAug, h, wcr
}

func (te *ttpEngine) snapshot() {
	te.oldRingSched = len(te.q) == 0 || te.total <= te.capacity
	te.oldDegSched = len(te.dq) > 0 && te.dtotal <= te.capacity
	te.oldSched = te.oldSched[:0]
	for _, q := range te.q {
		te.oldSched = append(te.oldSched, q >= 2)
	}
}

func (te *ttpEngine) fillNewSched() {
	te.newSched = te.newSched[:0]
	for _, q := range te.q {
		te.newSched = append(te.newSched, q >= 2)
	}
}

func (te *ttpEngine) refold() {
	te.total = 0
	for _, h := range te.h {
		te.total += h
	}
	te.dtotal = 0
	for _, h := range te.dh {
		te.dtotal += h
	}
}

func (te *ttpEngine) rebuild(e *Engine) {
	n := len(e.set)
	te.t = ttpFor(e.bw, n)
	te.overhead = te.t.Overhead()
	te.fovhd = te.t.SyncFrame.OvhdTime(te.t.Net.BandwidthBPS)
	te.q = te.q[:0]
	te.cAug = te.cAug[:0]
	te.h = te.h[:0]
	te.wcr = te.wcr[:0]
	te.dq = te.dq[:0]
	te.dcAug = te.dcAug[:0]
	te.dh = te.dh[:0]
	te.dwcr = te.dwcr[:0]
	te.reprobed = 0
	if n == 0 {
		te.ttrt, te.capacity, te.total, te.dtotal = 0, 0, 0, 0
		te.avail = 1
		te.budget = core.CleanFaultBudget()
		te.fillNewSched()
		return
	}
	te.ttrt = te.t.SelectTTRT(e.set)
	te.capacity = te.ttrt - te.overhead
	te.recomputeClean(e)
	if e.fm != nil {
		te.budget = te.t.FaultBudgetFor(e.fm, e.set)
		te.avail = te.budget.Availability
		te.recomputeDegraded(e)
	} else {
		te.avail = 1
	}
	te.refold()
	te.fillNewSched()
}

func (te *ttpEngine) recomputeClean(e *Engine) {
	te.q = te.q[:0]
	te.cAug = te.cAug[:0]
	te.h = te.h[:0]
	te.wcr = te.wcr[:0]
	for _, s := range e.set {
		q, c, h, w := te.terms(s, 1)
		te.q = append(te.q, q)
		te.cAug = append(te.cAug, c)
		te.h = append(te.h, h)
		te.wcr = append(te.wcr, w)
	}
	te.reprobed += len(e.set)
}

func (te *ttpEngine) recomputeDegraded(e *Engine) {
	te.dq = te.dq[:0]
	te.dcAug = te.dcAug[:0]
	te.dh = te.dh[:0]
	te.dwcr = te.dwcr[:0]
	for _, s := range e.set {
		q, c, h, w := te.terms(s, te.avail)
		te.dq = append(te.dq, q)
		te.dcAug = append(te.dcAug, c)
		te.dh = append(te.dh, h)
		te.dwcr = append(te.dwcr, w)
	}
	te.reprobed += len(e.set)
}

func (te *ttpEngine) applySplice(e *Engine, sp splice) {
	te.reprobed = 0
	if len(e.set) == 0 {
		te.rebuild(e)
		return
	}
	newTTRT := te.t.SelectTTRT(e.set)
	ttrtMoved := math.Float64bits(newTTRT) != math.Float64bits(te.ttrt)
	if ttrtMoved {
		te.ttrt = newTTRT
		te.capacity = te.ttrt - te.overhead
		te.recomputeClean(e)
	} else {
		te.spliceClean(e, sp)
	}
	if e.fm != nil {
		te.budget = te.t.FaultBudgetFor(e.fm, e.set)
		availMoved := math.Float64bits(te.budget.Availability) != math.Float64bits(te.avail)
		te.avail = te.budget.Availability
		if ttrtMoved || availMoved {
			te.recomputeDegraded(e)
		} else {
			te.spliceDegraded(e, sp)
		}
	}
	te.refold()
	te.fillNewSched()
}

func (te *ttpEngine) spliceClean(e *Engine, sp splice) {
	switch sp.op {
	case OpAdd:
		te.insertClean(e, sp.k)
	case OpRemove:
		removeInt(&te.q, sp.j)
		removeF64(&te.cAug, sp.j)
		removeF64(&te.h, sp.j)
		removeF64(&te.wcr, sp.j)
	default:
		removeInt(&te.q, sp.j)
		removeF64(&te.cAug, sp.j)
		removeF64(&te.h, sp.j)
		removeF64(&te.wcr, sp.j)
		te.insertClean(e, sp.k)
	}
}

func (te *ttpEngine) insertClean(e *Engine, k int) {
	q, c, h, w := te.terms(e.set[k], 1)
	insertInt(&te.q, k, q)
	insertF64(&te.cAug, k, c)
	insertF64(&te.h, k, h)
	insertF64(&te.wcr, k, w)
	te.reprobed++
}

func (te *ttpEngine) spliceDegraded(e *Engine, sp splice) {
	switch sp.op {
	case OpAdd:
		te.insertDegraded(e, sp.k)
	case OpRemove:
		removeInt(&te.dq, sp.j)
		removeF64(&te.dcAug, sp.j)
		removeF64(&te.dh, sp.j)
		removeF64(&te.dwcr, sp.j)
	default:
		removeInt(&te.dq, sp.j)
		removeF64(&te.dcAug, sp.j)
		removeF64(&te.dh, sp.j)
		removeF64(&te.dwcr, sp.j)
		te.insertDegraded(e, sp.k)
	}
}

func (te *ttpEngine) insertDegraded(e *Engine, k int) {
	q, c, h, w := te.terms(e.set[k], te.avail)
	insertInt(&te.dq, k, q)
	insertF64(&te.dcAug, k, c)
	insertF64(&te.dh, k, h)
	insertF64(&te.dwcr, k, w)
	te.reprobed++
}

func (te *ttpEngine) verdict(e *Engine) Verdict {
	if len(e.set) == 0 {
		return Verdict{Protocol: ProtocolTTP, Schedulable: true}
	}
	v := Verdict{
		Protocol:        ProtocolTTP,
		Schedulable:     te.total <= te.capacity,
		Utilization:     e.util,
		TTRT:            te.ttrt,
		Overhead:        te.overhead,
		TotalAllocation: te.total,
		Capacity:        te.capacity,
		Streams:         make([]StreamVerdict, len(e.set)),
	}
	for i, s := range e.set {
		v.Streams[i] = StreamVerdict{
			ID:                e.ids[i],
			Name:              s.Name,
			PeriodMs:          s.Period * 1e3,
			Q:                 te.q[i],
			AugmentedLength:   te.cAug[i],
			Allocation:        te.h[i],
			WorstCaseResponse: te.wcr[i],
			Schedulable:       te.q[i] >= 2,
		}
	}
	if e.fm != nil {
		v.Degraded = &DegradedVerdict{
			Schedulable:     te.dtotal <= te.capacity,
			Availability:    te.avail,
			TotalAllocation: te.dtotal,
			Capacity:        te.capacity,
		}
	}
	return v
}

// Splice helpers shared by the TTP arrays.

func insertF64(a *[]float64, i int, v float64) {
	*a = append(*a, 0)
	copy((*a)[i+1:], (*a)[i:])
	(*a)[i] = v
}

func removeF64(a *[]float64, i int) {
	copy((*a)[i:], (*a)[i+1:])
	*a = (*a)[:len(*a)-1]
}

func insertInt(a *[]int, i, v int) {
	*a = append(*a, 0)
	copy((*a)[i+1:], (*a)[i:])
	(*a)[i] = v
}

func removeInt(a *[]int, i int) {
	copy((*a)[i:], (*a)[i+1:])
	*a = (*a)[:len(*a)-1]
}
