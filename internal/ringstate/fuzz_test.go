package ringstate

import "testing"

// op builds one 5-byte script op for the seed corpus. kind: 0 add,
// 4 remove, 6 modify (see replayEditScript).
func op(kind, target, period, bits, name byte) []byte {
	return []byte{kind, target, period, bits, name}
}

func script(header []byte, ops ...[]byte) []byte {
	out := append([]byte(nil), header...)
	for _, o := range ops {
		out = append(out, o...)
	}
	return out
}

// FuzzRingEditSequence replays arbitrary edit scripts through the
// incremental engine and the from-scratch reference, failing on the
// first bitwise divergence. The seed corpus covers the known-hard
// cases: exact priority ties (identical period/length/name), duplicate
// periods distinguished only by name, edits that move a stream across
// its ties, TTRT shifts from a new minimum period, and allocation loads
// that flip the TTP aggregate Σh ≤ TTRT − θ verdict.
func FuzzRingEditSequence(f *testing.F) {
	// Exact priority ties: three indistinguishable streams, then remove
	// and modify among them (ID attribution must still match the
	// reference's stable sort).
	f.Add(script([]byte{0, 0, 0},
		op(0, 0, 3, 2, 3), op(0, 0, 3, 2, 3), op(0, 0, 3, 2, 3),
		op(4, 1, 0, 0, 0), op(6, 0, 3, 2, 3), op(4, 0, 0, 0, 0)))
	// Duplicate periods, different lengths/names; modifies that hop
	// between the tied groups.
	f.Add(script([]byte{0, 1, 0},
		op(0, 0, 1, 0, 1), op(0, 0, 2, 1, 2), op(0, 0, 1, 3, 3),
		op(0, 0, 4, 2, 4), op(6, 2, 1, 0, 2), op(6, 0, 4, 4, 0)))
	// TTRT shift: adds at 10 ms, then a 2 ms stream drops Pmin (every
	// TTP term recomputes), then removing it restores the old TTRT.
	f.Add(script([]byte{3, 0, 0},
		op(0, 0, 3, 1, 0), op(0, 0, 3, 1, 1), op(0, 0, 0, 0, 2),
		op(4, 2, 0, 0, 0), op(0, 0, 7, 2, 0)))
	// TTP aggregate flip: big payloads at the narrow 4 Mbps bandwidth
	// push Σh past TTRT − θ, then removals pull it back under.
	f.Add(script([]byte{3, 2, 0},
		op(0, 0, 3, 4, 0), op(0, 0, 3, 4, 1), op(0, 0, 3, 4, 2),
		op(0, 0, 3, 4, 3), op(4, 0, 0, 0, 0), op(4, 0, 0, 0, 0)))
	// Degraded ring: lossy-token scenario with blocking-moving edits
	// (every PDP edit rebases B' = B + Nloss·R).
	f.Add(script([]byte{0, 0, 2},
		op(0, 0, 7, 3, 0), op(0, 0, 0, 1, 1), op(6, 0, 7, 3, 1),
		op(4, 1, 0, 0, 0), op(0, 0, 2, 2, 2)))
	// Drain to empty and refill across the empty boundary.
	f.Add(script([]byte{4, 1, 1},
		op(0, 0, 3, 2, 0), op(4, 0, 0, 0, 0), op(0, 0, 1, 1, 1),
		op(6, 0, 5, 0, 2), op(4, 0, 0, 0, 0), op(0, 0, 0, 4, 3)))
	f.Fuzz(func(t *testing.T, data []byte) {
		replayEditScript(t, data)
	})
}
