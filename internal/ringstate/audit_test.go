package ringstate

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"time"
)

func TestAuditRecordsEdits(t *testing.T) {
	st := NewStore(0, 0)
	meta := EditMeta{TraceID: "cafe", Client: "tester", Time: time.Unix(100, 0)}
	ring, err := st.CreateMeta(Config{BandwidthMbps: 16}, []Stream{
		{Name: "seed", PeriodMs: 50, LengthBits: 8000},
	}, meta)
	if err != nil {
		t.Fatal(err)
	}
	v, id, _, err := ring.AddStreamMeta(0, Stream{Name: "a", PeriodMs: 20, LengthBits: 16000}, meta)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ring.ModifyStreamMeta(v, id, Stream{Name: "a", PeriodMs: 10, LengthBits: 16000}, meta); err != nil {
		t.Fatal(err)
	}
	if _, _, err := ring.RemoveStreamMeta(0, id, meta); err != nil {
		t.Fatal(err)
	}

	h, err := ring.History()
	if err != nil {
		t.Fatal(err)
	}
	if h.RingID != ring.ID() || h.Version != 4 || h.Compacted != 0 {
		t.Fatalf("history header = %+v", h)
	}
	// Seed stream lives in the baseline, not the record stream.
	if len(h.Baseline) != 1 || h.Baseline[0].Name != "seed" {
		t.Fatalf("baseline = %+v", h.Baseline)
	}
	wantOps := []string{OpCreate, OpAdd, OpModify, OpRemove}
	if len(h.Records) != len(wantOps) {
		t.Fatalf("%d records, want %d", len(h.Records), len(wantOps))
	}
	for i, rec := range h.Records {
		if rec.Op != wantOps[i] {
			t.Fatalf("record %d op = %q, want %q", i, rec.Op, wantOps[i])
		}
		if rec.Seq != uint64(i+1) || rec.Version != uint64(i+1) {
			t.Fatalf("record %d seq=%d version=%d", i, rec.Seq, rec.Version)
		}
		if rec.VersionBefore != rec.Version-1 {
			t.Fatalf("record %d versionBefore=%d version=%d", i, rec.VersionBefore, rec.Version)
		}
		if rec.TraceID != "cafe" || rec.Client != "tester" {
			t.Fatalf("record %d meta = %q/%q", i, rec.TraceID, rec.Client)
		}
		if !rec.Time.Equal(time.Unix(100, 0).UTC()) {
			t.Fatalf("record %d time = %v", i, rec.Time)
		}
	}
	if h.Records[1].Stream == nil || h.Records[1].Stream.PeriodMs != 20 {
		t.Fatalf("add record params = %+v", h.Records[1].Stream)
	}
	if h.Records[2].Stream == nil || h.Records[2].Stream.PeriodMs != 10 {
		t.Fatalf("modify record params = %+v", h.Records[2].Stream)
	}
	if h.Records[3].StreamID != id {
		t.Fatalf("remove record streamId = %d, want %d", h.Records[3].StreamID, id)
	}

	// The trail is part of the wire surface: it must marshal.
	if _, err := json.Marshal(h); err != nil {
		t.Fatalf("marshal history: %v", err)
	}
}

func TestAuditRecordsVerdictFlips(t *testing.T) {
	st := NewStore(0, 0)
	ring, err := st.Create(Config{BandwidthMbps: 1, Protocols: []string{"modified-802.5"}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// An empty ring is schedulable; loading it far past capacity must
	// flip the ring verdict, and the flip must land in the audit record.
	v := uint64(0)
	var flipped bool
	for i := 0; i < 40 && !flipped; i++ {
		nv, _, _, err := ring.AddStream(v, Stream{PeriodMs: 2, LengthBits: 100000})
		if err != nil {
			t.Fatal(err)
		}
		v = nv
		h, err := ring.History()
		if err != nil {
			t.Fatal(err)
		}
		last := h.Records[len(h.Records)-1]
		for _, f := range last.Flips {
			if f.Was && !f.Now {
				flipped = true
			}
		}
	}
	if !flipped {
		t.Fatal("no audit record carried a schedulable→unschedulable flip")
	}
}

// replayHistory rebuilds a ring state from its audit trail alone:
// baseline adds, then the retained records, against a fresh engine.
func replayHistory(t *testing.T, h History) *Engine {
	t.Helper()
	eng, err := NewEngine(h.Config)
	if err != nil {
		t.Fatal(err)
	}
	ids := map[uint64]uint64{} // trail stream ID → replay engine ID
	for _, s := range h.Baseline {
		id, _, err := eng.Add(s.Stream)
		if err != nil {
			t.Fatalf("replay baseline add: %v", err)
		}
		ids[s.ID] = id
	}
	for _, rec := range h.Records {
		switch rec.Op {
		case OpCreate:
		case OpAdd:
			id, _, err := eng.Add(*rec.Stream)
			if err != nil {
				t.Fatalf("replay add seq %d: %v", rec.Seq, err)
			}
			ids[rec.StreamID] = id
		case OpModify:
			if _, err := eng.Modify(ids[rec.StreamID], *rec.Stream); err != nil {
				t.Fatalf("replay modify seq %d: %v", rec.Seq, err)
			}
		case OpRemove:
			if _, err := eng.Remove(ids[rec.StreamID]); err != nil {
				t.Fatalf("replay remove seq %d: %v", rec.Seq, err)
			}
		default:
			t.Fatalf("unknown op %q", rec.Op)
		}
	}
	return eng
}

// assertVerdictsBitIdentical compares two verdict sets: ring-level
// numerics via Float64bits, per-stream verdicts as multisets ignoring
// the ring-assigned IDs and names (replay handles differ from original
// names; canonical-order ties have identical parameters, so the
// position multiset — and hence every numeric — matches).
func assertVerdictsBitIdentical(t *testing.T, want, got []Verdict) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("verdict count %d vs %d", len(want), len(got))
	}
	f64 := func(v float64) uint64 { return math.Float64bits(v) }
	for i := range want {
		a, b := want[i], got[i]
		if a.Protocol != b.Protocol || a.Schedulable != b.Schedulable {
			t.Fatalf("protocol %d: %s/%v vs %s/%v", i, a.Protocol, a.Schedulable, b.Protocol, b.Schedulable)
		}
		ringScalars := [][2]float64{
			{a.Utilization, b.Utilization},
			{a.AugmentedUtilization, b.AugmentedUtilization},
			{a.Blocking, b.Blocking},
			{a.Theta, b.Theta},
			{a.FrameTime, b.FrameTime},
			{a.TTRT, b.TTRT},
			{a.Overhead, b.Overhead},
			{a.TotalAllocation, b.TotalAllocation},
			{a.Capacity, b.Capacity},
		}
		for j, pair := range ringScalars {
			if f64(pair[0]) != f64(pair[1]) {
				t.Fatalf("protocol %s scalar %d: %v vs %v", a.Protocol, j, pair[0], pair[1])
			}
		}
		if (a.Degraded == nil) != (b.Degraded == nil) {
			t.Fatalf("protocol %s degraded presence mismatch", a.Protocol)
		}
		if a.Degraded != nil {
			da, db := *a.Degraded, *b.Degraded
			if da.Schedulable != db.Schedulable ||
				f64(da.Availability) != f64(db.Availability) ||
				f64(da.Losses) != f64(db.Losses) ||
				f64(da.Recovery) != f64(db.Recovery) ||
				f64(da.Blocking) != f64(db.Blocking) ||
				f64(da.TotalAllocation) != f64(db.TotalAllocation) ||
				f64(da.Capacity) != f64(db.Capacity) {
				t.Fatalf("protocol %s degraded: %+v vs %+v", a.Protocol, da, db)
			}
		}
		key := func(sv StreamVerdict) string {
			sv.ID, sv.Name = 0, ""
			return fmt.Sprintf("%x %x %d %d %x %x %x %x %v",
				f64(sv.PeriodMs), f64(sv.AugmentedLength), sv.Frames, sv.Q,
				f64(sv.ResponseTime), f64(sv.Allocation), f64(sv.WorstCaseResponse),
				f64(sv.PeriodMs), sv.Schedulable)
		}
		ka := make([]string, len(a.Streams))
		kb := make([]string, len(b.Streams))
		for j := range a.Streams {
			ka[j] = key(a.Streams[j])
		}
		for j := range b.Streams {
			kb[j] = key(b.Streams[j])
		}
		sort.Strings(ka)
		sort.Strings(kb)
		if strings.Join(ka, "\n") != strings.Join(kb, "\n") {
			t.Fatalf("protocol %s per-stream verdict multiset mismatch:\n%v\nvs\n%v", a.Protocol, ka, kb)
		}
	}
}

func TestAuditCompactionReplaysToCurrentVerdicts(t *testing.T) {
	for _, faultSpec := range []string{"", "loss:p=1e-3"} {
		t.Run("fault="+faultSpec, func(t *testing.T) {
			st := NewStore(0, 0)
			st.SetAuditCap(8) // force heavy compaction
			ring, err := st.Create(Config{BandwidthMbps: 16, FaultSpec: faultSpec}, []Stream{
				{Name: "x", PeriodMs: 40, LengthBits: 12000},
				{Name: "y", PeriodMs: 40, LengthBits: 12000}, // canonical tie
			})
			if err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(7))
			var live []uint64
			_, _, snap, _, _ := ring.State()
			for _, s := range snap {
				live = append(live, s.ID)
			}
			for i := 0; i < 100; i++ {
				s := Stream{
					Name:       fmt.Sprintf("s%d", i),
					PeriodMs:   float64(1+rng.Intn(50)) / 3, // non-representable thirds
					LengthBits: float64(1000 + rng.Intn(20000)),
				}
				switch op := rng.Intn(3); {
				case op == 0 || len(live) == 0:
					_, id, _, err := ring.AddStream(0, s)
					if err != nil {
						t.Fatal(err)
					}
					live = append(live, id)
				case op == 1:
					id := live[rng.Intn(len(live))]
					if _, _, err := ring.ModifyStream(0, id, s); err != nil {
						t.Fatal(err)
					}
				default:
					j := rng.Intn(len(live))
					if _, _, err := ring.RemoveStream(0, live[j]); err != nil {
						t.Fatal(err)
					}
					live = append(live[:j], live[j+1:]...)
				}
			}
			h, err := ring.History()
			if err != nil {
				t.Fatal(err)
			}
			if h.Compacted == 0 || len(h.Records) > 8 {
				t.Fatalf("expected compaction: compacted=%d retained=%d", h.Compacted, len(h.Records))
			}
			eng := replayHistory(t, h)
			_, _, _, want, err := ring.State()
			if err != nil {
				t.Fatal(err)
			}
			assertVerdictsBitIdentical(t, want, eng.Verdicts())
		})
	}
}

func TestHistoryScriptDump(t *testing.T) {
	st := NewStore(0, 0)
	st.SetAuditCap(4)
	ring, err := st.Create(Config{BandwidthMbps: 16, FaultSpec: "loss:p=1e-3"}, []Stream{
		{Name: "seed", PeriodMs: 1.0 / 3, LengthBits: 8000},
	})
	if err != nil {
		t.Fatal(err)
	}
	v, id, _, err := ring.AddStream(0, Stream{PeriodMs: 20, LengthBits: 16000})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := ring.ModifyStream(v, id, Stream{PeriodMs: 10, LengthBits: 16000}); err != nil {
		t.Fatal(err)
	}
	h, err := ring.History()
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	h.Script(&b)
	out := b.String()
	for _, want := range []string{
		"# ring " + ring.ID() + " history (version 3)",
		"# bandwidth-mbps: 16",
		"# fault-model: loss:p=0.001",
		"add s1 " + formatMs(1.0/3) + " 8000",
		fmt.Sprintf("add s%d 20 16000", id),
		fmt.Sprintf("modify s%d 10 16000", id),
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("script dump missing %q:\n%s", want, out)
		}
	}
	// The shortest-round-trip float must survive a parse.
	var back float64
	if _, err := fmt.Sscanf(formatMs(1.0/3), "%g", &back); err != nil || back != 1.0/3 {
		t.Fatalf("float round-trip: %v %v", back, err)
	}
}

func BenchmarkAuditAppend(b *testing.B) {
	a := newAuditLog(DefaultRingAudit)
	s := Stream{PeriodMs: 10, LengthBits: 8000}
	rec := AuditRecord{
		VersionBefore: 1, Version: 2, Op: OpAdd, StreamID: 3,
		Stream: &s, Reprobed: 2, Time: time.Unix(0, 0),
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.VersionBefore++
		rec.Version++
		a.append(rec)
	}
}
