package ringstate

import (
	"math"
	"math/rand"
	"testing"

	"ringsched/internal/core"
	"ringsched/internal/faults"
	"ringsched/internal/message"
)

// The differential harness: every edit script is replayed through the
// incremental engine AND recomputed from scratch (FullVerdicts, an
// independent mapping over core.Report/FaultReport), asserting bitwise
// identical verdicts after every single step. Scripts are byte strings
// so the fuzz target and the seeded test share one replayer.
//
// Script layout: 3 header bytes select (protocol subset, bandwidth,
// fault spec); each following 5-byte group is one op
// [kind, target, period, bits, name].

var (
	diffPeriodsMs = []float64{2, 5, 5, 10, 10, 10, 20, 50}
	diffBits      = []float64{512, 1024, 4096, 65536, 2e5}
	diffNames     = []string{"", "a", "b", "dup", "dup"}
	diffBWs       = []float64{16, 100, 4}
	diffProtocols = [][]string{
		nil, // all three
		{ProtocolModifiedPDP},
		{ProtocolStandardPDP},
		{ProtocolTTP},
		{ProtocolModifiedPDP, ProtocolTTP},
	}
)

// diffFaultSpecs is "" (clean) plus every active built-in scenario.
func diffFaultSpecs() []string {
	specs := []string{""}
	for _, sc := range faults.Scenarios() {
		if sc.Model.Active() {
			specs = append(specs, sc.Model.Spec())
		}
	}
	return specs
}

func scriptConfig(h []byte) Config {
	specs := diffFaultSpecs()
	return Config{
		Protocols:     diffProtocols[int(h[0])%len(diffProtocols)],
		BandwidthMbps: diffBWs[int(h[1])%len(diffBWs)],
		FaultSpec:     specs[int(h[2])%len(specs)],
	}
}

func scriptStream(b []byte) Stream {
	return Stream{
		Name:       diffNames[int(b[4])%len(diffNames)],
		PeriodMs:   diffPeriodsMs[int(b[2])%len(diffPeriodsMs)],
		LengthBits: diffBits[int(b[3])%len(diffBits)],
	}
}

const (
	maxScriptOps     = 48
	maxScriptStreams = 40
)

// replayEditScript drives one script through the engine and the mirror,
// checking bit-identity at every step. The mirror models edits exactly
// as a stateless caller would: adds and modifies append to an
// arrival-ordered list that FullVerdicts canonicalizes itself.
func replayEditScript(t *testing.T, data []byte) {
	t.Helper()
	if len(data) < 3 {
		return
	}
	cfg := scriptConfig(data)
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatalf("NewEngine(%+v): %v", cfg, err)
	}
	checkStep(t, cfg, eng, nil, -1)
	var mirror []SnapshotStream
	ops := data[3:]
	for step := 0; len(ops) >= 5 && step < maxScriptOps; step++ {
		b := ops[:5]
		ops = ops[5:]
		kind := int(b[0]) % 8
		switch {
		case kind < 4 || len(mirror) == 0: // add
			if len(mirror) >= maxScriptStreams {
				continue
			}
			s := scriptStream(b)
			id, d, err := eng.Add(s)
			if err != nil {
				t.Fatalf("step %d: Add(%+v): %v", step, s, err)
			}
			checkDeltaShape(t, eng, d, OpAdd, id, step)
			mirror = append(mirror, SnapshotStream{ID: id, Stream: s})
		case kind < 6: // remove
			i := int(b[1]) % len(mirror)
			id := mirror[i].ID
			d, err := eng.Remove(id)
			if err != nil {
				t.Fatalf("step %d: Remove(%d): %v", step, id, err)
			}
			checkDeltaShape(t, eng, d, OpRemove, id, step)
			mirror = append(mirror[:i], mirror[i+1:]...)
		default: // modify: the stream keeps its ID, takes its new canonical slot
			i := int(b[1]) % len(mirror)
			id := mirror[i].ID
			s := scriptStream(b)
			d, err := eng.Modify(id, s)
			if err != nil {
				t.Fatalf("step %d: Modify(%d, %+v): %v", step, id, s, err)
			}
			checkDeltaShape(t, eng, d, OpModify, id, step)
			mirror = append(mirror[:i], mirror[i+1:]...)
			mirror = append(mirror, SnapshotStream{ID: id, Stream: s})
		}
		checkStep(t, cfg, eng, mirror, step)
	}
	// A missing stream must be a typed error and a no-op.
	if _, err := eng.Remove(1 << 60); err != ErrStreamNotFound {
		t.Fatalf("Remove(missing) = %v, want ErrStreamNotFound", err)
	}
	checkStep(t, cfg, eng, mirror, maxScriptOps)
}

// checkDeltaShape validates the structural fields of an edit delta.
func checkDeltaShape(t *testing.T, eng *Engine, d *Delta, op string, id uint64, step int) {
	t.Helper()
	if d == nil {
		t.Fatalf("step %d: nil delta", step)
	}
	if d.Op != op || d.StreamID != id {
		t.Fatalf("step %d: delta (%s, %d), want (%s, %d)", step, d.Op, d.StreamID, op, id)
	}
	if len(d.Protocols) != len(eng.Config().Protocols) {
		t.Fatalf("step %d: %d protocol deltas, want %d", step, len(d.Protocols), len(eng.Config().Protocols))
	}
	sum := 0
	for _, pd := range d.Protocols {
		if pd.Reprobed < 0 {
			t.Fatalf("step %d: negative reprobe count in %+v", step, pd)
		}
		sum += pd.Reprobed
	}
	if sum != d.Reprobed {
		t.Fatalf("step %d: delta reprobed %d != protocol sum %d", step, d.Reprobed, sum)
	}
}

// checkStep asserts engine state is bit-identical to the from-scratch
// reference, and cross-checks the clean ring verdict against the
// analyzer's pooled batch probe.
func checkStep(t *testing.T, cfg Config, eng *Engine, mirror []SnapshotStream, step int) {
	t.Helper()
	got := eng.Verdicts()
	want, err := FullVerdicts(cfg, mirror)
	if err != nil {
		t.Fatalf("step %d: FullVerdicts: %v", step, err)
	}
	if len(got) != len(want) {
		t.Fatalf("step %d: %d verdicts, reference has %d", step, len(got), len(want))
	}
	for i := range got {
		compareVerdicts(t, step, got[i], want[i])
	}
	// Snapshot must be the canonicalized mirror.
	snap := eng.Snapshot()
	if len(snap) != len(mirror) {
		t.Fatalf("step %d: snapshot has %d streams, mirror %d", step, len(snap), len(mirror))
	}
	crossCheckBatch(t, cfg, eng, step)
}

// crossCheckBatch verifies the clean ring-level verdict against
// core.AnalyzeBatch at scale 1 — a third, workspace-pooled code path.
func crossCheckBatch(t *testing.T, cfg Config, eng *Engine, step int) {
	t.Helper()
	if eng.Len() == 0 {
		return
	}
	set := make(message.Set, 0, eng.Len())
	for _, s := range eng.Snapshot() {
		set = append(set, message.Stream{Name: s.Name, Period: s.PeriodMs / 1e3, LengthBits: s.LengthBits})
	}
	norm, _, err := cfg.Normalize()
	if err != nil {
		t.Fatal(err)
	}
	for vi, proto := range norm.Protocols {
		var a core.Analyzer
		if proto == ProtocolTTP {
			a = ttpFor(eng.bw, len(set))
		} else {
			a = pdpFor(proto, eng.bw, len(set))
		}
		verdicts, err := core.AnalyzeBatch(a, set, []float64{1})
		if err != nil {
			t.Fatalf("step %d: AnalyzeBatch(%s): %v", step, proto, err)
		}
		if got := eng.Verdicts()[vi].Schedulable; got != verdicts[0] {
			t.Fatalf("step %d: %s engine schedulable=%v, AnalyzeBatch=%v", step, proto, got, verdicts[0])
		}
	}
}

func eqBits(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

// compareVerdicts asserts bitwise equality of every field, including
// -0 vs +0 and per-stream response times.
func compareVerdicts(t *testing.T, step int, got, want Verdict) {
	t.Helper()
	if got.Protocol != want.Protocol || got.Schedulable != want.Schedulable {
		t.Fatalf("step %d %s: (schedulable=%v) != reference (%s, schedulable=%v)",
			step, got.Protocol, got.Schedulable, want.Protocol, want.Schedulable)
	}
	type pair struct {
		name     string
		got, ref float64
	}
	for _, p := range []pair{
		{"utilization", got.Utilization, want.Utilization},
		{"augmentedUtilization", got.AugmentedUtilization, want.AugmentedUtilization},
		{"blocking", got.Blocking, want.Blocking},
		{"theta", got.Theta, want.Theta},
		{"frameTime", got.FrameTime, want.FrameTime},
		{"ttrt", got.TTRT, want.TTRT},
		{"overhead", got.Overhead, want.Overhead},
		{"totalAllocation", got.TotalAllocation, want.TotalAllocation},
		{"capacity", got.Capacity, want.Capacity},
	} {
		if !eqBits(p.got, p.ref) {
			t.Fatalf("step %d %s: %s = %v (bits %x), reference %v (bits %x)",
				step, got.Protocol, p.name, p.got, math.Float64bits(p.got), p.ref, math.Float64bits(p.ref))
		}
	}
	if (got.Degraded == nil) != (want.Degraded == nil) {
		t.Fatalf("step %d %s: degraded presence %v != reference %v",
			step, got.Protocol, got.Degraded != nil, want.Degraded != nil)
	}
	if got.Degraded != nil {
		g, w := *got.Degraded, *want.Degraded
		if g.Schedulable != w.Schedulable ||
			!eqBits(g.Availability, w.Availability) || !eqBits(g.Losses, w.Losses) ||
			!eqBits(g.Recovery, w.Recovery) || !eqBits(g.Blocking, w.Blocking) ||
			!eqBits(g.TotalAllocation, w.TotalAllocation) || !eqBits(g.Capacity, w.Capacity) {
			t.Fatalf("step %d %s: degraded %+v != reference %+v", step, got.Protocol, g, w)
		}
	}
	if len(got.Streams) != len(want.Streams) {
		t.Fatalf("step %d %s: %d stream verdicts, reference %d",
			step, got.Protocol, len(got.Streams), len(want.Streams))
	}
	for i := range got.Streams {
		g, w := got.Streams[i], want.Streams[i]
		if g.ID != w.ID || g.Name != w.Name || g.Frames != w.Frames || g.Q != w.Q ||
			g.Schedulable != w.Schedulable ||
			!eqBits(g.PeriodMs, w.PeriodMs) || !eqBits(g.AugmentedLength, w.AugmentedLength) ||
			!eqBits(g.ResponseTime, w.ResponseTime) || !eqBits(g.Allocation, w.Allocation) ||
			!eqBits(g.WorstCaseResponse, w.WorstCaseResponse) {
			t.Fatalf("step %d %s stream %d: %+v != reference %+v", step, got.Protocol, i, g, w)
		}
	}
}

// TestDifferentialEditScripts is the acceptance harness: ≥1000 random
// edit scripts per protocol, every step compared bitwise against full
// re-analysis. The first 1000 seeds run all three protocols at once;
// the rest rotate narrower protocol subsets, bandwidths, and fault
// specs.
func TestDifferentialEditScripts(t *testing.T) {
	scripts := 1250
	if testing.Short() {
		scripts = 120
	}
	for seed := 0; seed < scripts; seed++ {
		rng := rand.New(rand.NewSource(int64(seed)))
		nops := 8 + rng.Intn(28)
		data := make([]byte, 3+5*nops)
		rng.Read(data)
		if seed < 1000 {
			data[0] = 0 // all three protocols
		}
		data[1] = byte(seed % len(diffBWs))
		replayEditScript(t, data)
		if t.Failed() {
			t.Fatalf("seed %d failed (script %x)", seed, data)
		}
	}
}

// TestDifferentialEmptyAndRefill pins the empty-ring boundary: verdicts
// stay reference-identical as a ring drains to zero streams and refills.
func TestDifferentialEmptyAndRefill(t *testing.T) {
	for _, spec := range diffFaultSpecs() {
		cfg := Config{BandwidthMbps: 16, FaultSpec: spec}
		eng, err := NewEngine(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var mirror []SnapshotStream
		add := func(s Stream) {
			id, _, err := eng.Add(s)
			if err != nil {
				t.Fatal(err)
			}
			mirror = append(mirror, SnapshotStream{ID: id, Stream: s})
		}
		for cycle := 0; cycle < 3; cycle++ {
			add(Stream{Name: "x", PeriodMs: 10, LengthBits: 4096})
			add(Stream{Name: "y", PeriodMs: 5, LengthBits: 1024})
			checkStep(t, cfg, eng, mirror, cycle)
			for len(mirror) > 0 {
				if _, err := eng.Remove(mirror[0].ID); err != nil {
					t.Fatal(err)
				}
				mirror = mirror[1:]
				checkStep(t, cfg, eng, mirror, cycle)
			}
		}
	}
}
