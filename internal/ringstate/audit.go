package ringstate

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"time"
)

// The ring audit trail: every CAS mutation appends a compact record to a
// bounded per-ring log. The log never forgets state — records evicted
// past the cap are *folded* into a baseline stream set (WAL-style
// compaction), so "baseline adds + retained records" always replays to
// exactly the ring's current stream set. The dump format is
// cmd/ringadmit's script grammar, which makes the trail the future
// durable-rings WAL's serialization, differentially checked today by
// replaying a dump and asserting verdict equality.

// DefaultRingAudit is the per-ring retained audit-record cap.
const DefaultRingAudit = 256

// EditMeta carries request-scoped identity into the audit trail.
type EditMeta struct {
	// TraceID is the request's trace ID ("" when untraced).
	TraceID string
	// Client identifies the caller (X-Ringsched-Client or peer host).
	Client string
	// Time is the mutation wall time; zero means "now".
	Time time.Time
}

func (m EditMeta) when() time.Time {
	if m.Time.IsZero() {
		return time.Now().UTC()
	}
	return m.Time.UTC()
}

// ProtocolFlip records one protocol whose ring-level verdict changed on
// an edit.
type ProtocolFlip struct {
	Protocol string `json:"protocol"`
	// Degraded marks a flip of the fault-degraded verdict rather than
	// the clean one.
	Degraded bool `json:"degraded,omitempty"`
	Was      bool `json:"was"`
	Now      bool `json:"now"`
}

// AuditRecord is one mutation in a ring's history.
type AuditRecord struct {
	// Seq numbers records monotonically from 1 across the ring's whole
	// life, surviving compaction.
	Seq uint64 `json:"seq"`
	// VersionBefore/Version bracket the CAS: the mutation moved the ring
	// from VersionBefore to Version.
	VersionBefore uint64 `json:"versionBefore"`
	Version       uint64 `json:"version"`
	// Op is create, add, modify, or remove (the edit ops reuse the
	// script grammar's verbs).
	Op string `json:"op"`
	// StreamID is the affected stream (0 for create).
	StreamID uint64 `json:"streamId,omitempty"`
	// Stream holds the add/modify parameters.
	Stream *Stream `json:"stream,omitempty"`
	// Reprobed counts per-stream re-analyses the edit cost.
	Reprobed int `json:"reprobed"`
	// Flips lists ring-level verdict changes caused by the edit.
	Flips []ProtocolFlip `json:"flips,omitempty"`

	Time    time.Time `json:"time"`
	TraceID string    `json:"traceId,omitempty"`
	Client  string    `json:"client,omitempty"`
}

// OpCreate labels the ring-creation audit record (the stream ops reuse
// OpAdd/OpModify/OpRemove).
const OpCreate = "create"

// auditLog is the bounded, compacting per-ring record log. It is not
// self-locking: the owning Ring's mutex guards it.
type auditLog struct {
	cap       int
	records   []AuditRecord
	baseline  map[uint64]Stream
	seq       uint64
	compacted uint64
}

func newAuditLog(cap int) *auditLog {
	if cap < 1 {
		cap = 1
	}
	return &auditLog{cap: cap, baseline: map[uint64]Stream{}}
}

// seed installs a stream into the baseline directly (ring creation's
// initial stream set predates record 1).
func (a *auditLog) seed(id uint64, s Stream) { a.baseline[id] = s }

// append stores one record, folding the oldest into the baseline when
// the cap is exceeded.
func (a *auditLog) append(rec AuditRecord) {
	a.seq++
	rec.Seq = a.seq
	if len(a.records) == a.cap {
		a.fold(a.records[0])
		// Shift in place; the log is small and bounded.
		copy(a.records, a.records[1:])
		a.records = a.records[:len(a.records)-1]
	}
	a.records = append(a.records, rec)
}

// fold applies one evicted record to the baseline so the trail still
// replays to the current state.
func (a *auditLog) fold(rec AuditRecord) {
	a.compacted++
	switch rec.Op {
	case OpAdd, OpModify:
		if rec.Stream != nil {
			a.baseline[rec.StreamID] = *rec.Stream
		}
	case OpRemove:
		delete(a.baseline, rec.StreamID)
	}
	// OpCreate folds to nothing: the config lives on the engine.
}

// History is a consistent view of one ring's audit trail.
type History struct {
	RingID  string `json:"ringId"`
	Version uint64 `json:"version"`
	Config  Config `json:"config"`
	// Baseline is the stream set at the oldest retained record —
	// compacted history folded down to state.
	Baseline []SnapshotStream `json:"baseline,omitempty"`
	// Records are the retained mutations, oldest first.
	Records []AuditRecord `json:"records"`
	// Compacted counts records folded into the baseline.
	Compacted uint64 `json:"compacted"`
}

// History returns the ring's audit trail under the read lock.
func (r *Ring) History() (History, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.deleted {
		return History{}, ErrRingNotFound
	}
	h := History{
		RingID:    r.id,
		Version:   r.version,
		Config:    r.engine.Config(),
		Records:   append([]AuditRecord(nil), r.audit.records...),
		Compacted: r.audit.compacted,
	}
	for id, s := range r.audit.baseline {
		h.Baseline = append(h.Baseline, SnapshotStream{ID: id, Stream: s})
	}
	sort.Slice(h.Baseline, func(i, j int) bool { return h.Baseline[i].ID < h.Baseline[j].ID })
	return h, nil
}

// streamHandle is the script-dump name for a ring stream: unique and
// whitespace-free, so the grammar's name-addressing is unambiguous.
func streamHandle(id uint64) string { return "s" + strconv.FormatUint(id, 10) }

func formatMs(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Script renders the history in cmd/ringadmit's script grammar. Header
// comments carry the ring config so an operator can replay with the
// matching -bw/-protocols/-fault-model flags; replaying the emitted
// add/modify/remove lines against an empty engine with that config
// reproduces the ring's current verdicts exactly (stream names become
// s<ID> handles; verdict numerics are unaffected because the engine's
// canonical order ties only between identical (period, bits) pairs).
func (h History) Script(w io.Writer) {
	fmt.Fprintf(w, "# ring %s history (version %d)\n", h.RingID, h.Version)
	fmt.Fprintf(w, "# bandwidth-mbps: %s\n", formatMs(h.Config.BandwidthMbps))
	if len(h.Config.Protocols) > 0 {
		fmt.Fprintf(w, "# protocols:")
		for _, p := range h.Config.Protocols {
			fmt.Fprintf(w, " %s", p)
		}
		fmt.Fprintln(w)
	}
	if h.Config.FaultSpec != "" {
		fmt.Fprintf(w, "# fault-model: %s\n", h.Config.FaultSpec)
	}
	if len(h.Baseline) > 0 || h.Compacted > 0 {
		fmt.Fprintf(w, "# baseline: %d streams (%d records compacted)\n", len(h.Baseline), h.Compacted)
	}
	for _, s := range h.Baseline {
		fmt.Fprintf(w, "add %s %s %s\n", streamHandle(s.ID), formatMs(s.PeriodMs), formatMs(s.LengthBits))
	}
	for _, rec := range h.Records {
		switch rec.Op {
		case OpCreate:
			fmt.Fprintf(w, "# v%d create by %q trace %q\n", rec.Version, rec.Client, rec.TraceID)
		case OpAdd:
			fmt.Fprintf(w, "add %s %s %s\n", streamHandle(rec.StreamID), formatMs(rec.Stream.PeriodMs), formatMs(rec.Stream.LengthBits))
		case OpModify:
			fmt.Fprintf(w, "modify %s %s %s\n", streamHandle(rec.StreamID), formatMs(rec.Stream.PeriodMs), formatMs(rec.Stream.LengthBits))
		case OpRemove:
			fmt.Fprintf(w, "remove %s\n", streamHandle(rec.StreamID))
		}
	}
}

// auditFlips extracts ring-level verdict flips from an edit delta.
func auditFlips(d *Delta) []ProtocolFlip {
	var flips []ProtocolFlip
	for _, p := range d.Protocols {
		if p.WasSchedulable != p.Schedulable {
			flips = append(flips, ProtocolFlip{Protocol: p.Protocol, Was: p.WasSchedulable, Now: p.Schedulable})
		}
		if p.HasDegraded && p.DegradedWasSchedulable != p.DegradedSchedulable {
			flips = append(flips, ProtocolFlip{Protocol: p.Protocol, Degraded: true, Was: p.DegradedWasSchedulable, Now: p.DegradedSchedulable})
		}
	}
	return flips
}
