package ringstate

import (
	"errors"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"
)

// goroutineLeakCheck snapshots the goroutines running this package's
// code and registers a cleanup that fails the test if any are still
// alive shortly after it ends (same idiom as internal/service).
func goroutineLeakCheck(t *testing.T) {
	t.Helper()
	before := ringstateGoroutines()
	t.Cleanup(func() {
		if t.Failed() {
			return
		}
		var after []string
		for deadline := time.Now().Add(3 * time.Second); ; {
			after = ringstateGoroutines()
			if len(after) <= len(before) {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Errorf("goroutine leak: %d ringsched goroutines before, %d after:\n%s",
			len(before), len(after), strings.Join(after, "\n---\n"))
	})
}

func ringstateGoroutines() []string {
	buf := make([]byte, 1<<20)
	buf = buf[:runtime.Stack(buf, true)]
	var out []string
	for _, g := range strings.Split(string(buf), "\n\n") {
		if strings.Contains(g, "ringsched/") && !strings.Contains(g, "ringstateGoroutines") {
			out = append(out, g)
		}
	}
	return out
}

func testConfig() Config { return Config{BandwidthMbps: 16} }

func TestStoreCreateGetDelete(t *testing.T) {
	st := NewStore(2, 4)
	r1, err := st.Create(testConfig(), []Stream{{Name: "a", PeriodMs: 10, LengthBits: 1024}})
	if err != nil {
		t.Fatal(err)
	}
	if r1.ID() != "r1" || r1.Version() != 1 {
		t.Fatalf("first ring: id=%s version=%d, want r1 v1", r1.ID(), r1.Version())
	}
	if got, err := st.Get("r1"); err != nil || got != r1 {
		t.Fatalf("Get(r1) = %v, %v", got, err)
	}
	if _, err := st.Get("r9"); err != ErrRingNotFound {
		t.Fatalf("Get(missing) = %v, want ErrRingNotFound", err)
	}
	r2, err := st.Create(testConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Create(testConfig(), nil); !errors.Is(err, ErrTooManyRings) {
		t.Fatalf("third ring: %v, want ErrTooManyRings", err)
	}
	if ids := st.List(); len(ids) != 2 || ids[0] != r1 || ids[1] != r2 {
		t.Fatalf("List() = %v", ids)
	}
	// CAS delete: stale version refused, matching version wins.
	if err := st.Delete("r1", 7); err == nil {
		t.Fatal("stale delete succeeded")
	} else {
		var ce *ConflictError
		if !errors.As(err, &ce) || ce.Expected != 7 || ce.Current != 1 {
			t.Fatalf("stale delete: %v, want ConflictError{7, 1}", err)
		}
	}
	if err := st.Delete("r1", 1); err != nil {
		t.Fatal(err)
	}
	if st.Len() != 1 {
		t.Fatalf("Len() = %d after delete, want 1", st.Len())
	}
	if _, _, _, err := r1.AddStream(0, Stream{PeriodMs: 10, LengthBits: 100}); err != ErrRingNotFound {
		t.Fatalf("edit after delete: %v, want ErrRingNotFound", err)
	}
	if _, _, _, _, err := r1.State(); err != ErrRingNotFound {
		t.Fatalf("State after delete: %v, want ErrRingNotFound", err)
	}
}

func TestStoreStreamLimitAndCAS(t *testing.T) {
	st := NewStore(0, 2)
	r, err := st.Create(testConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	v, id1, _, err := r.AddStream(1, Stream{Name: "a", PeriodMs: 10, LengthBits: 1024})
	if err != nil || v != 2 {
		t.Fatalf("first add: v=%d err=%v", v, err)
	}
	// Stale expected version: typed conflict, nothing changes.
	if _, _, _, err := r.AddStream(1, Stream{Name: "b", PeriodMs: 10, LengthBits: 1024}); err == nil {
		t.Fatal("stale add succeeded")
	} else {
		var ce *ConflictError
		if !errors.As(err, &ce) || ce.Expected != 1 || ce.Current != 2 {
			t.Fatalf("stale add: %v, want ConflictError{1, 2}", err)
		}
	}
	if r.Version() != 2 {
		t.Fatalf("version moved on conflict: %d", r.Version())
	}
	// Expected 0 is unconditional.
	if _, _, _, err := r.AddStream(0, Stream{Name: "b", PeriodMs: 20, LengthBits: 1024}); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := r.AddStream(0, Stream{Name: "c", PeriodMs: 30, LengthBits: 1024}); !errors.Is(err, ErrTooManyStreams) {
		t.Fatalf("over-limit add: %v, want ErrTooManyStreams", err)
	}
	if v, _, err := r.RemoveStream(3, id1); err != nil || v != 4 {
		t.Fatalf("remove: v=%d err=%v", v, err)
	}
	if _, _, err := r.ModifyStream(4, id1, Stream{PeriodMs: 10, LengthBits: 1}); err != ErrStreamNotFound {
		t.Fatalf("modify removed stream: %v, want ErrStreamNotFound", err)
	}
	if r.Version() != 4 {
		t.Fatalf("failed modify moved version: %d", r.Version())
	}
}

// TestStoreParallelCASEditors races N writers per round, all naming the
// same expected version: exactly one must win each round.
func TestStoreParallelCASEditors(t *testing.T) {
	goroutineLeakCheck(t)
	st := NewStore(0, 0)
	r, err := st.Create(testConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	const editors = 8
	const rounds = 24
	for round := 1; round <= rounds; round++ {
		var wg sync.WaitGroup
		wins := make(chan uint64, editors)
		for e := 0; e < editors; e++ {
			wg.Add(1)
			go func(e int) {
				defer wg.Done()
				v, _, _, err := r.AddStream(uint64(round), Stream{
					Name: "w", PeriodMs: float64(10 + e), LengthBits: 512,
				})
				switch {
				case err == nil:
					wins <- v
				default:
					var ce *ConflictError
					if !errors.As(err, &ce) {
						t.Errorf("round %d editor %d: %v, want ConflictError", round, e, err)
					} else if ce.Current != uint64(round+1) {
						t.Errorf("round %d editor %d: conflict current=%d, want %d", round, e, ce.Current, round+1)
					}
				}
			}(e)
		}
		wg.Wait()
		close(wins)
		var winners []uint64
		for v := range wins {
			winners = append(winners, v)
		}
		if len(winners) != 1 || winners[0] != uint64(round+1) {
			t.Fatalf("round %d: winners %v, want exactly one at version %d", round, winners, round+1)
		}
	}
	if got := r.Version(); got != rounds+1 {
		t.Fatalf("final version %d, want %d", got, rounds+1)
	}
	if got := len(r.engine.ids); got != rounds {
		t.Fatalf("%d streams admitted, want %d", got, rounds)
	}
}

// TestStoreConcurrentReadsDuringEdits hammers State() while a writer
// edits; -race verifies the locking, the assertions verify snapshot
// consistency (every observed state is internally coherent).
func TestStoreConcurrentReadsDuringEdits(t *testing.T) {
	goroutineLeakCheck(t)
	st := NewStore(0, 0)
	r, err := st.Create(testConfig(), []Stream{{Name: "base", PeriodMs: 50, LengthBits: 1024}})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-done:
					return
				default:
				}
				v, _, snap, verdicts, err := r.State()
				if err != nil {
					t.Errorf("State: %v", err)
					return
				}
				if v == 0 || len(verdicts) == 0 {
					t.Errorf("incoherent state: v=%d verdicts=%d", v, len(verdicts))
					return
				}
				for _, vd := range verdicts {
					if len(vd.Streams) != len(snap) {
						t.Errorf("verdict has %d streams, snapshot %d", len(vd.Streams), len(snap))
						return
					}
				}
			}
		}()
	}
	for i := 0; i < 200; i++ {
		_, id, _, err := r.AddStream(0, Stream{PeriodMs: 10 + float64(i%11), LengthBits: 2048})
		if err != nil {
			t.Fatal(err)
		}
		if i%2 == 1 {
			if _, _, err := r.RemoveStream(0, id); err != nil {
				t.Fatal(err)
			}
		}
	}
	close(done)
	wg.Wait()
}

// TestStoreDeleteWithInflightEdits deletes a ring while editors are mid
// flight: edits before the delete succeed, edits after it fail with
// ErrRingNotFound, and no goroutine outlives the test.
func TestStoreDeleteWithInflightEdits(t *testing.T) {
	goroutineLeakCheck(t)
	st := NewStore(0, 0)
	r, err := st.Create(testConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	start := make(chan struct{})
	for e := 0; e < 6; e++ {
		wg.Add(1)
		go func(e int) {
			defer wg.Done()
			<-start
			for i := 0; ; i++ {
				_, _, _, err := r.AddStream(0, Stream{PeriodMs: float64(10 + e), LengthBits: 256})
				if err != nil {
					if err != ErrRingNotFound {
						t.Errorf("editor %d: %v, want ErrRingNotFound", e, err)
					}
					return
				}
			}
		}(e)
	}
	close(start)
	time.Sleep(5 * time.Millisecond)
	if err := st.Delete(r.ID(), 0); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	if _, err := st.Get(r.ID()); err != ErrRingNotFound {
		t.Fatalf("Get after delete: %v", err)
	}
}
