//go:build !race

package ringstate

// raceEnabled reports that this build carries race-detector
// instrumentation, which distorts timing gates.
const raceEnabled = false
