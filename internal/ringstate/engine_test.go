package ringstate

import (
	"errors"
	"fmt"
	"testing"
)

func mustEngine(t *testing.T, cfg Config) *Engine {
	t.Helper()
	eng, err := NewEngine(cfg)
	if err != nil {
		t.Fatalf("NewEngine(%+v): %v", cfg, err)
	}
	return eng
}

func TestEngineEmptyRingVerdicts(t *testing.T) {
	eng := mustEngine(t, Config{BandwidthMbps: 16, FaultSpec: "loss:p=1e-3"})
	vs := eng.Verdicts()
	if len(vs) != 3 {
		t.Fatalf("empty ring has %d verdicts, want 3", len(vs))
	}
	for _, v := range vs {
		if !v.Schedulable || v.Degraded != nil || len(v.Streams) != 0 {
			t.Fatalf("empty ring verdict %+v: want vacuously schedulable, no degraded, no streams", v)
		}
	}
}

func TestEngineRejectsBadConfigAndStreams(t *testing.T) {
	if _, err := NewEngine(Config{BandwidthMbps: 0}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("zero bandwidth: %v, want ErrBadConfig", err)
	}
	if _, err := NewEngine(Config{BandwidthMbps: 16, Protocols: []string{"token-bus"}}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("unknown protocol: %v, want ErrBadConfig", err)
	}
	if _, err := NewEngine(Config{BandwidthMbps: 16, FaultSpec: "no-such-scenario"}); !errors.Is(err, ErrBadConfig) {
		t.Fatalf("bad fault spec: %v, want ErrBadConfig", err)
	}
	eng := mustEngine(t, Config{BandwidthMbps: 16})
	if _, _, err := eng.Add(Stream{PeriodMs: -1, LengthBits: 100}); !errors.Is(err, ErrBadStream) {
		t.Fatalf("negative period: %v, want ErrBadStream", err)
	}
	if _, _, err := eng.Add(Stream{PeriodMs: 10, LengthBits: 0}); !errors.Is(err, ErrBadStream) {
		t.Fatalf("zero length: %v, want ErrBadStream", err)
	}
	if eng.Len() != 0 {
		t.Fatalf("rejected adds mutated the engine: %d streams", eng.Len())
	}
	if _, err := eng.Modify(99, Stream{PeriodMs: 10, LengthBits: 100}); err != ErrStreamNotFound {
		t.Fatalf("Modify(missing): %v, want ErrStreamNotFound", err)
	}
}

// TestEnginePDPSuffixReprobe pins the tentpole property: an edit at the
// lowest rate-monotonic priority re-probes only itself on the PDP path
// and one stream on the TTP path (TTRT unchanged).
func TestEnginePDPSuffixReprobe(t *testing.T) {
	eng := mustEngine(t, Config{BandwidthMbps: 16})
	for i := 0; i < 10; i++ {
		if _, _, err := eng.Add(Stream{PeriodMs: float64(10 * (i + 1)), LengthBits: 2048}); err != nil {
			t.Fatal(err)
		}
	}
	_, d, err := eng.Add(Stream{PeriodMs: 500, LengthBits: 2048})
	if err != nil {
		t.Fatal(err)
	}
	for _, pd := range d.Protocols {
		if pd.Reprobed != 1 {
			t.Fatalf("%s reprobed %d streams for a lowest-priority add, want 1", pd.Protocol, pd.Reprobed)
		}
		if !pd.EditedSchedulable {
			t.Fatalf("%s: lightly loaded add reported infeasible: %+v", pd.Protocol, pd)
		}
	}
	// A new minimum period moves TTRT: the TTP pass must recompute every
	// stream, the PDP passes the whole (lower-priority) suffix.
	n := eng.Len()
	_, d, err = eng.Add(Stream{PeriodMs: 2, LengthBits: 512})
	if err != nil {
		t.Fatal(err)
	}
	for _, pd := range d.Protocols {
		if pd.Protocol == ProtocolTTP && pd.Reprobed != n+1 {
			t.Fatalf("TTP reprobed %d after a TTRT shift, want %d", pd.Reprobed, n+1)
		}
		if pd.Protocol != ProtocolTTP && pd.Reprobed != n+1 {
			t.Fatalf("%s reprobed %d for a highest-priority add, want %d", pd.Protocol, pd.Reprobed, n+1)
		}
	}
}

// TestEngineStationGrowthRebuild crosses the 100-station plant boundary:
// past it every edit re-plants the ring (Θ changes), and verdicts must
// still match the reference bitwise.
func TestEngineStationGrowthRebuild(t *testing.T) {
	cfg := Config{BandwidthMbps: 100, Protocols: []string{ProtocolTTP, ProtocolModifiedPDP}}
	eng := mustEngine(t, cfg)
	var mirror []SnapshotStream
	for i := 0; i < 103; i++ {
		s := Stream{Name: fmt.Sprintf("s%03d", i), PeriodMs: 200 + float64(i%7), LengthBits: 256}
		id, d, err := eng.Add(s)
		if err != nil {
			t.Fatal(err)
		}
		mirror = append(mirror, SnapshotStream{ID: id, Stream: s})
		if i+1 > 100 {
			for _, pd := range d.Protocols {
				if pd.Reprobed < i+1 {
					t.Fatalf("add %d (stations grew): %s reprobed %d, want full rebuild ≥ %d",
						i+1, pd.Protocol, pd.Reprobed, i+1)
				}
			}
		}
	}
	checkStep(t, cfg, eng, mirror, 0)
	// Shrinking back across the boundary rebuilds too.
	if _, err := eng.Remove(mirror[0].ID); err != nil {
		t.Fatal(err)
	}
	mirror = mirror[1:]
	checkStep(t, cfg, eng, mirror, 1)
}

// TestEngineDeltaFlips forces another stream's verdict to flip: a heavy
// high-priority arrival pushes an existing low-priority stream past its
// deadline, and the delta must name it.
func TestEngineDeltaFlips(t *testing.T) {
	cfg := Config{BandwidthMbps: 4, Protocols: []string{ProtocolStandardPDP}}
	eng := mustEngine(t, cfg)
	victim, _, err := eng.Add(Stream{Name: "victim", PeriodMs: 12, LengthBits: 16384})
	if err != nil {
		t.Fatal(err)
	}
	var flipped bool
	var mirror = []SnapshotStream{{ID: victim, Stream: Stream{Name: "victim", PeriodMs: 12, LengthBits: 16384}}}
	for i := 0; i < 12 && !flipped; i++ {
		s := Stream{Name: fmt.Sprintf("h%d", i), PeriodMs: 6, LengthBits: 16384}
		id, d, err := eng.Add(s)
		if err != nil {
			t.Fatal(err)
		}
		mirror = append(mirror, SnapshotStream{ID: id, Stream: s})
		for _, f := range d.Protocols[0].Flipped {
			if f.ID == victim && !f.Schedulable {
				flipped = true
			}
		}
		checkStep(t, cfg, eng, mirror, i)
	}
	if !flipped {
		t.Fatal("no delta ever reported the victim stream flipping to infeasible")
	}
	if eng.Verdicts()[0].Schedulable {
		t.Fatal("ring still schedulable after overload")
	}
}

// TestEngineModifyKeepsID pins modify semantics: same ID, new canonical
// position after all tied keys.
func TestEngineModifyKeepsID(t *testing.T) {
	eng := mustEngine(t, Config{BandwidthMbps: 16})
	a, _, _ := eng.Add(Stream{Name: "dup", PeriodMs: 10, LengthBits: 1024})
	b, _, _ := eng.Add(Stream{Name: "dup", PeriodMs: 10, LengthBits: 1024})
	if _, err := eng.Modify(a, Stream{Name: "dup", PeriodMs: 10, LengthBits: 1024}); err != nil {
		t.Fatal(err)
	}
	snap := eng.Snapshot()
	if len(snap) != 2 || snap[0].ID != b || snap[1].ID != a {
		t.Fatalf("modify among exact ties: snapshot order %+v, want [%d %d]", snap, b, a)
	}
}
