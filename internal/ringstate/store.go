package ringstate

import (
	"fmt"
	"sort"
	"strconv"
	"sync"
)

// Defaults for Store capacity limits when the caller passes 0.
const (
	DefaultMaxRings       = 4096
	DefaultMaxRingStreams = 4096
)

// Store holds the server's long-lived rings. All methods are safe for
// concurrent use; each ring serializes its own edits under a per-ring
// lock so two rings never contend with each other.
//
// Lock order is always store → ring: Store methods may take a ring lock
// while holding the store lock, ring methods never reach back into the
// store.
type Store struct {
	mu         sync.Mutex
	rings      map[string]*Ring
	nextID     uint64
	maxRings   int
	maxStreams int
	auditCap   int
}

// NewStore builds an empty store; zero limits select the defaults.
func NewStore(maxRings, maxStreams int) *Store {
	if maxRings <= 0 {
		maxRings = DefaultMaxRings
	}
	if maxStreams <= 0 {
		maxStreams = DefaultMaxRingStreams
	}
	return &Store{
		rings:      map[string]*Ring{},
		nextID:     1,
		maxRings:   maxRings,
		maxStreams: maxStreams,
		auditCap:   DefaultRingAudit,
	}
}

// SetAuditCap overrides the per-ring retained audit-record cap for rings
// created afterwards (test hook for compaction behavior).
func (st *Store) SetAuditCap(n int) {
	st.mu.Lock()
	st.auditCap = n
	st.mu.Unlock()
}

// Ring is one versioned, long-lived ring. Versions start at 1 and
// advance by one per successful mutation; a mutation naming a non-zero
// expected version that does not match fails with ConflictError and
// changes nothing. Expected version 0 is unconditional.
type Ring struct {
	id         string
	maxStreams int

	mu      sync.RWMutex
	version uint64
	engine  *Engine
	audit   *auditLog
	deleted bool
}

// Create builds a new ring from a config and an optional initial stream
// set (admitted in order, as a sequence of adds at version-build time).
func (st *Store) Create(cfg Config, streams []Stream) (*Ring, error) {
	return st.CreateMeta(cfg, streams, EditMeta{})
}

// CreateMeta is Create with audit metadata: the seed streams land in the
// audit baseline and a create record opens the trail.
func (st *Store) CreateMeta(cfg Config, streams []Stream, meta EditMeta) (*Ring, error) {
	eng, err := NewEngine(cfg)
	if err != nil {
		return nil, err
	}
	if len(streams) > st.maxStreams {
		return nil, fmt.Errorf("%w: %d streams, limit %d", ErrTooManyStreams, len(streams), st.maxStreams)
	}
	audit := newAuditLog(st.auditCap)
	for _, s := range streams {
		id, _, err := eng.Add(s)
		if err != nil {
			return nil, err
		}
		audit.seed(id, s)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if len(st.rings) >= st.maxRings {
		return nil, fmt.Errorf("%w: limit %d", ErrTooManyRings, st.maxRings)
	}
	r := &Ring{
		id:         "r" + strconv.FormatUint(st.nextID, 10),
		maxStreams: st.maxStreams,
		version:    1,
		engine:     eng,
		audit:      audit,
	}
	audit.append(AuditRecord{
		VersionBefore: 0,
		Version:       1,
		Op:            OpCreate,
		Time:          meta.when(),
		TraceID:       meta.TraceID,
		Client:        meta.Client,
	})
	st.nextID++
	st.rings[r.id] = r
	return r, nil
}

// Get returns the ring with the given ID.
func (st *Store) Get(id string) (*Ring, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	r, ok := st.rings[id]
	if !ok {
		return nil, ErrRingNotFound
	}
	return r, nil
}

// List returns every resident ring in ID order.
func (st *Store) List() []*Ring {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]*Ring, 0, len(st.rings))
	for _, r := range st.rings {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		// Numeric order: "r10" after "r9".
		a, b := out[i].id, out[j].id
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		return a < b
	})
	return out
}

// Len returns the resident ring count.
func (st *Store) Len() int {
	st.mu.Lock()
	defer st.mu.Unlock()
	return len(st.rings)
}

// Delete removes a ring, CAS-guarded like any other mutation. In-flight
// edits that already hold the ring lock finish first; edits that arrive
// after removal fail with ErrRingNotFound.
func (st *Store) Delete(id string, expected uint64) error {
	st.mu.Lock()
	r, ok := st.rings[id]
	if !ok {
		st.mu.Unlock()
		return ErrRingNotFound
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if expected != 0 && expected != r.version {
		st.mu.Unlock()
		return &ConflictError{Expected: expected, Current: r.version}
	}
	r.deleted = true
	delete(st.rings, id)
	st.mu.Unlock()
	return nil
}

// ID returns the ring's store-assigned identifier.
func (r *Ring) ID() string { return r.id }

// Version returns the ring's current version.
func (r *Ring) Version() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.version
}

// State returns a consistent (version, config, snapshot, verdicts)
// quadruple under the read lock.
func (r *Ring) State() (uint64, Config, []SnapshotStream, []Verdict, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if r.deleted {
		return 0, Config{}, nil, nil, ErrRingNotFound
	}
	return r.version, r.engine.Config(), r.engine.Snapshot(), r.engine.Verdicts(), nil
}

// edit runs one CAS-guarded mutation. The op must return the engine's
// scratch delta; edit clones it before releasing the lock so the caller
// owns the result. On success an audit record built from the cloned
// delta (plus the add/modify stream params) is appended to the trail.
func (r *Ring) edit(expected uint64, meta EditMeta, params *Stream, op func(*Engine) (*Delta, error)) (uint64, *Delta, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.deleted {
		return 0, nil, ErrRingNotFound
	}
	if expected != 0 && expected != r.version {
		return 0, nil, &ConflictError{Expected: expected, Current: r.version}
	}
	d, err := op(r.engine)
	if err != nil {
		return 0, nil, err
	}
	before := r.version
	r.version++
	out := d.Clone()
	r.audit.append(AuditRecord{
		VersionBefore: before,
		Version:       r.version,
		Op:            out.Op,
		StreamID:      out.StreamID,
		Stream:        params,
		Reprobed:      out.Reprobed,
		Flips:         auditFlips(out),
		Time:          meta.when(),
		TraceID:       meta.TraceID,
		Client:        meta.Client,
	})
	return r.version, out, nil
}

// AddStream admits a stream under CAS, returning the new version, the
// assigned stream ID, and the incremental delta.
func (r *Ring) AddStream(expected uint64, s Stream) (uint64, uint64, *Delta, error) {
	return r.AddStreamMeta(expected, s, EditMeta{})
}

// AddStreamMeta is AddStream with audit metadata.
func (r *Ring) AddStreamMeta(expected uint64, s Stream, meta EditMeta) (uint64, uint64, *Delta, error) {
	var id uint64
	v, d, err := r.edit(expected, meta, &s, func(e *Engine) (*Delta, error) {
		if e.Len() >= r.maxStreams {
			return nil, fmt.Errorf("%w: limit %d", ErrTooManyStreams, r.maxStreams)
		}
		newID, delta, err := e.Add(s)
		id = newID
		return delta, err
	})
	return v, id, d, err
}

// RemoveStream evicts a stream under CAS.
func (r *Ring) RemoveStream(expected, id uint64) (uint64, *Delta, error) {
	return r.RemoveStreamMeta(expected, id, EditMeta{})
}

// RemoveStreamMeta is RemoveStream with audit metadata.
func (r *Ring) RemoveStreamMeta(expected, id uint64, meta EditMeta) (uint64, *Delta, error) {
	return r.edit(expected, meta, nil, func(e *Engine) (*Delta, error) {
		return e.Remove(id)
	})
}

// ModifyStream replaces a stream under CAS.
func (r *Ring) ModifyStream(expected, id uint64, s Stream) (uint64, *Delta, error) {
	return r.ModifyStreamMeta(expected, id, s, EditMeta{})
}

// ModifyStreamMeta is ModifyStream with audit metadata.
func (r *Ring) ModifyStreamMeta(expected, id uint64, s Stream, meta EditMeta) (uint64, *Delta, error) {
	return r.edit(expected, meta, &s, func(e *Engine) (*Delta, error) {
		return e.Modify(id, s)
	})
}
