package ringstate

import (
	"fmt"
	"testing"
)

// benchRing builds a 96-stream engine plus the matching snapshot for
// the full-reanalysis side. 96 keeps the probe add below the 100-station
// plant boundary — crossing it re-plants the ring (Θ changes), which is
// a legitimate full rebuild, not the steady-state edit being measured.
// Periods are spread so the probe stream lands at the lowest RM
// priority (the common "can I add one more?" admission-control shape).
func benchRing(b testing.TB, cfg Config) (*Engine, []SnapshotStream) {
	eng, err := NewEngine(cfg)
	if err != nil {
		b.Fatal(err)
	}
	var snap []SnapshotStream
	for i := 0; i < 96; i++ {
		s := Stream{Name: fmt.Sprintf("s%03d", i), PeriodMs: 10 + float64(i), LengthBits: 2048}
		id, _, err := eng.Add(s)
		if err != nil {
			b.Fatal(err)
		}
		snap = append(snap, SnapshotStream{ID: id, Stream: s})
	}
	return eng, snap
}

var benchProbe = Stream{Name: "probe", PeriodMs: 400, LengthBits: 4096}

// BenchmarkRingEditIncremental measures one admission probe as the ring
// subsystem performs it: an incremental add followed by an incremental
// remove on a resident 100-stream, all-protocols ring.
func BenchmarkRingEditIncremental(b *testing.B) {
	eng, _ := benchRing(b, Config{BandwidthMbps: 16})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id, _, err := eng.Add(benchProbe)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eng.Remove(id); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRingEditFull measures the same probe answered the stateless
// way: a from-scratch analysis of the grown set, then of the shrunk set.
func BenchmarkRingEditFull(b *testing.B) {
	cfg := Config{BandwidthMbps: 16}
	_, snap := benchRing(b, cfg)
	grown := append(append([]SnapshotStream(nil), snap...), SnapshotStream{ID: 999, Stream: benchProbe})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := FullVerdicts(cfg, grown); err != nil {
			b.Fatal(err)
		}
		if _, err := FullVerdicts(cfg, snap); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRingEditIncrementalTTP isolates the O(1) TTP path.
func BenchmarkRingEditIncrementalTTP(b *testing.B) {
	eng, _ := benchRing(b, Config{BandwidthMbps: 16, Protocols: []string{ProtocolTTP}})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		id, _, err := eng.Add(benchProbe)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := eng.Remove(id); err != nil {
			b.Fatal(err)
		}
	}
}

// TestRingEditTTPAllocs gates the satellite requirement: the
// steady-state TTP edit path allocates nothing.
func TestRingEditTTPAllocs(t *testing.T) {
	eng, _ := benchRing(t, Config{BandwidthMbps: 16, Protocols: []string{ProtocolTTP}})
	allocs := testing.AllocsPerRun(200, func() {
		id, _, err := eng.Add(benchProbe)
		if err != nil {
			panic(err)
		}
		if _, err := eng.Remove(id); err != nil {
			panic(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("TTP edit path allocates %v per op, want 0", allocs)
	}
}

// TestRingEditPDPAllocs pins the clean PDP edit path at zero
// allocations too (not required by the gate, but cheap to keep).
func TestRingEditPDPAllocs(t *testing.T) {
	eng, _ := benchRing(t, Config{BandwidthMbps: 16, Protocols: []string{ProtocolModifiedPDP}})
	allocs := testing.AllocsPerRun(200, func() {
		id, _, err := eng.Add(benchProbe)
		if err != nil {
			panic(err)
		}
		if _, err := eng.Remove(id); err != nil {
			panic(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("PDP edit path allocates %v per op, want 0", allocs)
	}
}

// TestRingEditSpeedupGate enforces the acceptance criterion: a
// single-stream incremental edit is ≥10× cheaper than full re-analysis
// on a 100-stream ring. The expected gap is two orders of magnitude, so
// the 10× floor holds even on loaded CI machines.
func TestRingEditSpeedupGate(t *testing.T) {
	if testing.Short() {
		t.Skip("timing gate skipped in -short")
	}
	if raceEnabled {
		t.Skip("timing gate skipped under the race detector")
	}
	inc := testing.Benchmark(BenchmarkRingEditIncremental)
	full := testing.Benchmark(BenchmarkRingEditFull)
	if inc.N == 0 || full.N == 0 {
		t.Fatal("empty benchmark result")
	}
	incNs := float64(inc.T.Nanoseconds()) / float64(inc.N)
	fullNs := float64(full.T.Nanoseconds()) / float64(full.N)
	ratio := fullNs / incNs
	t.Logf("incremental %.0f ns/edit, full %.0f ns/edit, speedup %.1fx", incNs, fullNs, ratio)
	if ratio < 10 {
		t.Fatalf("incremental edit only %.1fx faster than full re-analysis, gate requires ≥10x", ratio)
	}
}
