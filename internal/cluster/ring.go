package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"
	"strconv"
)

// placementDomain versions the placement hash. Changing how members or
// keys map onto the ring is a cluster-wide migration (every replica must
// agree on ownership), so the domain string is part of the contract: bump
// it and the whole key space reshuffles at once, never piecemeal.
const placementDomain = "ringsched/cluster/v1"

// DefaultVNodes is the virtual-node count per member. 128 points per
// member keeps the expected ownership imbalance within a few percent for
// the single-digit member counts a ringschedd cluster runs at, while the
// whole ring stays small enough to rebuild on every membership change.
const DefaultVNodes = 128

// Ring is an immutable consistent-hash ring over a set of member
// addresses. Placement is deterministic: every process that builds a Ring
// from the same member set (in any order) computes identical ownership
// for every key, which is what lets replicas and the front door route
// without consulting each other. Methods on *Ring are safe for concurrent
// use; membership changes produce a new Ring (WithMember/WithoutMember).
type Ring struct {
	vnodes  int
	members []string // sorted, deduped
	points  []point  // sorted by hash
}

// point is one virtual node: a position on the 64-bit hash circle owned
// by a member.
type point struct {
	hash   uint64
	member string
}

// New builds a ring with vnodes virtual nodes per member (non-positive
// selects DefaultVNodes). Duplicate members collapse; order is
// irrelevant. An empty member list yields a ring that owns nothing.
func New(vnodes int, members ...string) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	seen := make(map[string]bool, len(members))
	uniq := make([]string, 0, len(members))
	for _, m := range members {
		if m != "" && !seen[m] {
			seen[m] = true
			uniq = append(uniq, m)
		}
	}
	sort.Strings(uniq)
	r := &Ring{vnodes: vnodes, members: uniq, points: make([]point, 0, vnodes*len(uniq))}
	for _, m := range uniq {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, point{hash: placementHash(m, i), member: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// A 64-bit collision between virtual nodes is astronomically
		// unlikely; break it by member so placement stays deterministic
		// anyway.
		return r.points[i].member < r.points[j].member
	})
	return r
}

// placementHash positions one virtual node on the circle.
func placementHash(member string, vnode int) uint64 {
	sum := sha256.Sum256([]byte(placementDomain + "|member|" + member + "|" + strconv.Itoa(vnode)))
	return binary.BigEndian.Uint64(sum[:8])
}

// keyHash positions a request key on the circle. Keys are hashed in a
// domain separate from members, so a key can never be mistaken for a
// virtual node.
func keyHash(key string) uint64 {
	sum := sha256.Sum256([]byte(placementDomain + "|key|" + key))
	return binary.BigEndian.Uint64(sum[:8])
}

// Owner returns the member owning key: the first virtual node clockwise
// from the key's position. An empty ring owns nothing and returns "".
func (r *Ring) Owner(key string) string {
	if r == nil || len(r.points) == 0 {
		return ""
	}
	h := keyHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].member
}

// Members returns the member set in sorted order. The slice is shared;
// callers must not modify it.
func (r *Ring) Members() []string {
	if r == nil {
		return nil
	}
	return r.members
}

// Size returns the member count.
func (r *Ring) Size() int {
	if r == nil {
		return 0
	}
	return len(r.members)
}

// Has reports whether m is a member.
func (r *Ring) Has(m string) bool {
	if r == nil {
		return false
	}
	i := sort.SearchStrings(r.members, m)
	return i < len(r.members) && r.members[i] == m
}

// WithMember returns a ring with m added (the receiver unchanged).
func (r *Ring) WithMember(m string) *Ring {
	return New(r.vnodes, append([]string{m}, r.members...)...)
}

// WithoutMember returns a ring with m removed (the receiver unchanged).
func (r *Ring) WithoutMember(m string) *Ring {
	kept := make([]string, 0, len(r.members))
	for _, x := range r.members {
		if x != m {
			kept = append(kept, x)
		}
	}
	return New(r.vnodes, kept...)
}
