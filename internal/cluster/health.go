package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"
)

// CheckerConfig tunes a Checker. The zero value probes http://<member>/healthz
// every 500ms with a 1s timeout and 2/2 rise/fall hysteresis.
type CheckerConfig struct {
	// Interval is the probe period (default 500ms).
	Interval time.Duration
	// Timeout bounds one probe (default 1s).
	Timeout time.Duration
	// Rise is how many consecutive successes flip an unhealthy member
	// healthy (default 2); Fall is the symmetric failure threshold
	// (default 2). The very first probe result is adopted immediately —
	// hysteresis exists to damp flapping, not to delay startup.
	Rise, Fall int
	// Probe checks one member; nil selects an HTTP GET of
	// http://<member>/healthz expecting a 2xx.
	Probe func(ctx context.Context, member string) error
	// OnChange, when non-nil, is called (outside the checker's lock) each
	// time a member's health flips.
	OnChange func(member string, healthy bool)
}

func (c CheckerConfig) withDefaults() CheckerConfig {
	if c.Interval <= 0 {
		c.Interval = 500 * time.Millisecond
	}
	if c.Timeout <= 0 {
		c.Timeout = time.Second
	}
	if c.Rise <= 0 {
		c.Rise = 2
	}
	if c.Fall <= 0 {
		c.Fall = 2
	}
	if c.Probe == nil {
		hc := &http.Client{}
		c.Probe = func(ctx context.Context, member string) error {
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, "http://"+member+"/healthz", nil)
			if err != nil {
				return err
			}
			resp, err := hc.Do(req)
			if err != nil {
				return err
			}
			resp.Body.Close()
			if resp.StatusCode < 200 || resp.StatusCode >= 300 {
				return fmt.Errorf("cluster: %s /healthz: %s", member, resp.Status)
			}
			return nil
		}
	}
	return c
}

// MemberHealth is one member's observable state.
type MemberHealth struct {
	Member  string
	Healthy bool
	// Streak counts consecutive same-outcome probes (positive =
	// successes, negative = failures).
	Streak int
	// LastErr is the most recent probe error ("" after a success).
	LastErr string
	// Checked reports whether at least one probe has completed.
	Checked bool
}

// memberState is the internal mutable form.
type memberState struct {
	healthy bool
	streak  int
	lastErr string
	checked bool
}

// Checker polls a fixed member set for health with rise/fall hysteresis.
// It is the front door's routing input: a member must fail Fall probes in
// a row to stop receiving traffic and answer Rise in a row to get it
// back, so one dropped packet neither blackholes nor flaps the routing
// table. Members start optimistically healthy (a cold-starting lb routes
// immediately; the breaker in the per-backend client absorbs the first
// errors if a member is actually down) until their first probe lands.
type Checker struct {
	cfg     CheckerConfig
	members []string

	mu    sync.Mutex
	state map[string]*memberState
}

// NewChecker builds a checker over members (deduped, sorted).
func NewChecker(members []string, cfg CheckerConfig) *Checker {
	c := &Checker{cfg: cfg.withDefaults(), state: map[string]*memberState{}}
	for _, m := range members {
		if m == "" {
			continue
		}
		if _, ok := c.state[m]; !ok {
			c.members = append(c.members, m)
			c.state[m] = &memberState{healthy: true}
		}
	}
	sort.Strings(c.members)
	return c
}

// CheckOnce probes every member once, in parallel, and applies the
// results. It returns when every probe has resolved; callers can run it
// before serving so the first routing decisions see fresh state.
func (c *Checker) CheckOnce(ctx context.Context) {
	pctx, cancel := context.WithTimeout(ctx, c.cfg.Timeout)
	defer cancel()
	var wg sync.WaitGroup
	for _, m := range c.members {
		wg.Add(1)
		go func(m string) {
			defer wg.Done()
			c.apply(m, c.cfg.Probe(pctx, m))
		}(m)
	}
	wg.Wait()
}

// Run probes on the configured interval until ctx is cancelled.
func (c *Checker) Run(ctx context.Context) {
	t := time.NewTicker(c.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			c.CheckOnce(ctx)
		}
	}
}

// apply folds one probe outcome into the member's state.
func (c *Checker) apply(member string, err error) {
	c.mu.Lock()
	st, ok := c.state[member]
	if !ok {
		c.mu.Unlock()
		return
	}
	success := err == nil
	if success {
		if st.streak < 0 {
			st.streak = 0
		}
		st.streak++
		st.lastErr = ""
	} else {
		if st.streak > 0 {
			st.streak = 0
		}
		st.streak--
		st.lastErr = err.Error()
	}
	was := st.healthy
	switch {
	case !st.checked:
		// First verdict: adopt immediately, no hysteresis.
		st.healthy = success
	case success && !st.healthy && st.streak >= c.cfg.Rise:
		st.healthy = true
	case !success && st.healthy && -st.streak >= c.cfg.Fall:
		st.healthy = false
	}
	st.checked = true
	flipped := st.healthy != was
	healthy := st.healthy
	c.mu.Unlock()
	if flipped && c.cfg.OnChange != nil {
		c.cfg.OnChange(member, healthy)
	}
}

// Healthy reports whether member is currently considered healthy.
// Unknown members are unhealthy.
func (c *Checker) Healthy(member string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	st, ok := c.state[member]
	return ok && st.healthy
}

// HealthyMembers returns the currently healthy members in sorted order.
func (c *Checker) HealthyMembers() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []string
	for _, m := range c.members {
		if c.state[m].healthy {
			out = append(out, m)
		}
	}
	return out
}

// Members returns every checked member in sorted order.
func (c *Checker) Members() []string { return c.members }

// States snapshots every member's health for metrics and debug pages.
func (c *Checker) States() []MemberHealth {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]MemberHealth, 0, len(c.members))
	for _, m := range c.members {
		st := c.state[m]
		out = append(out, MemberHealth{
			Member: m, Healthy: st.healthy, Streak: st.streak,
			LastErr: st.lastErr, Checked: st.checked,
		})
	}
	return out
}
