// Package cluster turns N independent ringschedd processes into one
// cache-coherent cluster. It provides the two deterministic building
// blocks the sharding layer needs and nothing more:
//
//   - a consistent-hash ring (ring.go): virtual nodes hashed with
//     SHA-256 over a versioned domain string, so every member computes
//     the identical placement for the canonical request keys of
//     internal/service, and membership changes move a bounded ~1/N
//     fraction of the key space, and
//   - a health checker (health.go): /healthz polling with rise/fall
//     hysteresis, feeding the ringsched-lb front door's routing table.
//
// Peer cache fill, cluster-wide coalescing, and the front door itself
// live in internal/service and cmd/ringsched-lb; they compose this
// package with the ringschedclient resilience stack (retries, breakers,
// hedging) rather than duplicating any of it here.
package cluster
