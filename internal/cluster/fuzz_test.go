package cluster

import (
	"fmt"
	"testing"
)

// FuzzMembershipChurn drives a ring through an arbitrary add/remove
// sequence and checks the invariants that keep the cluster routable:
// every key always resolves to a current member (never "" while members
// exist, never a departed member), and each individual change only moves
// keys the change itself explains (adds pull keys to the new member,
// removes scatter only the removed member's keys).
func FuzzMembershipChurn(f *testing.F) {
	f.Add([]byte{0, 1, 2, 0x81, 3, 0x80, 4})
	f.Add([]byte{0x80})
	f.Add([]byte{0, 0, 0x80, 0x80, 1, 1})
	f.Fuzz(func(t *testing.T, ops []byte) {
		if len(ops) > 64 {
			ops = ops[:64]
		}
		keys := testKeys(200)
		// Small vnode count keeps the fuzzer fast; the invariants hold for
		// any vnode count.
		ring := New(16)
		for _, op := range ops {
			member := fmt.Sprintf("m%d:1", op&0x0f)
			var next *Ring
			if op&0x80 != 0 {
				next = ring.WithoutMember(member)
			} else {
				next = ring.WithMember(member)
			}
			for _, key := range keys {
				was, is := ring.Owner(key), next.Owner(key)
				if next.Size() > 0 {
					if is == "" {
						t.Fatalf("key %q orphaned: no owner with %d members", key, next.Size())
					}
					if !next.Has(is) {
						t.Fatalf("key %q owned by non-member %q", key, is)
					}
				} else if is != "" {
					t.Fatalf("empty ring owns key %q via %q", key, is)
				}
				if was == is {
					continue
				}
				if op&0x80 != 0 {
					// Removal: only keys the departed member owned may move.
					if was != member {
						t.Fatalf("remove(%s) moved key %q from surviving %q to %q", member, key, was, is)
					}
				} else {
					// Add: keys only move to the new member (no-op if it was
					// already present).
					if !ring.Has(member) && is != member {
						t.Fatalf("add(%s) moved key %q from %q to %q", member, key, was, is)
					}
					if ring.Has(member) && was != is {
						t.Fatalf("re-adding existing %s moved key %q", member, key)
					}
				}
			}
			ring = next
		}
	})
}
