package cluster

import (
	"fmt"
	"testing"
)

// testKeys derives a deterministic key population shaped like the real
// ones (canonical request hashes are hex strings; any string works).
func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("key-%04d", i)
	}
	return keys
}

// TestGoldenPlacement pins the exact placement of fixed keys on a fixed
// membership. Placement is a cross-process contract — every replica and
// the front door must compute identical owners — so any change to the
// hash domain, the vnode scheme, or the tie-breaking shows up here as a
// deliberate golden update, never an accident.
func TestGoldenPlacement(t *testing.T) {
	r := New(64, "10.0.0.1:8080", "10.0.0.2:8080", "10.0.0.3:8080")
	golden := map[string]string{
		"key-0000": "10.0.0.3:8080",
		"key-0001": "10.0.0.2:8080",
		"key-0002": "10.0.0.1:8080",
		"key-0003": "10.0.0.2:8080",
		"key-0004": "10.0.0.2:8080",
		"key-0005": "10.0.0.2:8080",
		"key-0006": "10.0.0.3:8080",
		"key-0007": "10.0.0.3:8080",
	}
	for key, want := range golden {
		if got := r.Owner(key); got != want {
			t.Errorf("Owner(%q) = %q, want %q", key, got, want)
		}
	}
}

// TestDeterministicAcrossOrder checks that member order and duplicates
// never affect placement.
func TestDeterministicAcrossOrder(t *testing.T) {
	a := New(64, "m1:1", "m2:1", "m3:1")
	b := New(64, "m3:1", "m1:1", "m2:1", "m1:1")
	for _, key := range testKeys(500) {
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("placement depends on construction order for %q: %q vs %q",
				key, a.Owner(key), b.Owner(key))
		}
	}
}

// TestMovementBoundOnAdd checks the consistent-hashing contract: adding a
// member to an N-ring moves roughly 1/(N+1) of the keys, and every moved
// key moves TO the new member — no key ever shuffles between surviving
// members.
func TestMovementBoundOnAdd(t *testing.T) {
	members := []string{"a:1", "b:1", "c:1", "d:1"}
	before := New(0, members...)
	after := before.WithMember("e:1")
	keys := testKeys(4000)
	moved := 0
	for _, key := range keys {
		was, is := before.Owner(key), after.Owner(key)
		if was == is {
			continue
		}
		moved++
		if is != "e:1" {
			t.Fatalf("key %q moved %q → %q, not to the new member", key, was, is)
		}
	}
	// Expected movement is 1/5 = 20%; allow generous slack for vnode
	// placement variance but fail on anything structurally wrong.
	frac := float64(moved) / float64(len(keys))
	if frac > 0.35 {
		t.Errorf("adding 5th member moved %.1f%% of keys, want ≤ 35%%", 100*frac)
	}
	if frac < 0.05 {
		t.Errorf("adding 5th member moved only %.1f%% of keys — new member is underweighted", 100*frac)
	}
}

// TestMovementBoundOnRemove checks the mirror property: removing a member
// moves exactly the keys it owned, and nothing else.
func TestMovementBoundOnRemove(t *testing.T) {
	before := New(0, "a:1", "b:1", "c:1", "d:1")
	after := before.WithoutMember("d:1")
	for _, key := range testKeys(4000) {
		was, is := before.Owner(key), after.Owner(key)
		if was != "d:1" && was != is {
			t.Fatalf("key %q owned by surviving %q moved to %q on unrelated removal", key, was, is)
		}
		if is == "d:1" {
			t.Fatalf("key %q still owned by removed member", key)
		}
	}
}

// TestBalance bounds ownership skew: with DefaultVNodes, no member of a
// 4-ring should own less than half or more than twice its fair share.
func TestBalance(t *testing.T) {
	members := []string{"a:1", "b:1", "c:1", "d:1"}
	r := New(0, members...)
	counts := map[string]int{}
	keys := testKeys(8000)
	for _, key := range keys {
		counts[r.Owner(key)]++
	}
	fair := float64(len(keys)) / float64(len(members))
	for _, m := range members {
		share := float64(counts[m])
		if share < fair/2 || share > fair*2 {
			t.Errorf("member %q owns %d keys, fair share %.0f — outside [0.5x, 2x]", m, counts[m], fair)
		}
	}
}

// TestEmptyAndSingle pins the degenerate rings: an empty ring owns
// nothing; a singleton owns everything.
func TestEmptyAndSingle(t *testing.T) {
	if got := New(0).Owner("k"); got != "" {
		t.Errorf("empty ring Owner = %q, want \"\"", got)
	}
	var nilRing *Ring
	if got := nilRing.Owner("k"); got != "" {
		t.Errorf("nil ring Owner = %q, want \"\"", got)
	}
	solo := New(0, "only:1")
	for _, key := range testKeys(50) {
		if got := solo.Owner(key); got != "only:1" {
			t.Fatalf("singleton ring Owner(%q) = %q", key, got)
		}
	}
	if !solo.Has("only:1") || solo.Has("other:1") {
		t.Error("Has is wrong on singleton ring")
	}
}
