package cluster

import (
	"context"
	"errors"
	"sync"
	"testing"
)

// scriptedProbe returns a probe whose outcome is controlled per member.
type scriptedProbe struct {
	mu   sync.Mutex
	fail map[string]bool
}

func (p *scriptedProbe) set(member string, failing bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.fail == nil {
		p.fail = map[string]bool{}
	}
	p.fail[member] = failing
}

func (p *scriptedProbe) probe(_ context.Context, member string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.fail[member] {
		return errors.New("scripted failure")
	}
	return nil
}

func newTestChecker(members []string, probe *scriptedProbe, onChange func(string, bool)) *Checker {
	return NewChecker(members, CheckerConfig{
		Rise: 2, Fall: 2, Probe: probe.probe, OnChange: onChange,
	})
}

// TestCheckerFirstProbeAdopts verifies members start optimistically
// healthy but the first completed probe is adopted immediately, without
// waiting out the Fall threshold.
func TestCheckerFirstProbeAdopts(t *testing.T) {
	probe := &scriptedProbe{}
	probe.set("down:1", true)
	c := newTestChecker([]string{"up:1", "down:1"}, probe, nil)

	if !c.Healthy("up:1") || !c.Healthy("down:1") {
		t.Fatal("members must start optimistically healthy before any probe")
	}
	c.CheckOnce(context.Background())
	if !c.Healthy("up:1") {
		t.Error("up:1 unhealthy after successful first probe")
	}
	if c.Healthy("down:1") {
		t.Error("down:1 still healthy after failing first probe — first verdict must adopt immediately")
	}
}

// TestCheckerHysteresis verifies flips require Rise/Fall consecutive
// same-outcome probes once the first verdict has landed.
func TestCheckerHysteresis(t *testing.T) {
	probe := &scriptedProbe{}
	c := newTestChecker([]string{"m:1"}, probe, nil)
	ctx := context.Background()

	c.CheckOnce(ctx) // first verdict: healthy
	probe.set("m:1", true)
	c.CheckOnce(ctx)
	if !c.Healthy("m:1") {
		t.Fatal("one failure flipped a healthy member; Fall=2 requires two")
	}
	c.CheckOnce(ctx)
	if c.Healthy("m:1") {
		t.Fatal("two consecutive failures must flip the member unhealthy")
	}

	// One success then a failure must not rise (streak resets).
	probe.set("m:1", false)
	c.CheckOnce(ctx)
	probe.set("m:1", true)
	c.CheckOnce(ctx)
	if c.Healthy("m:1") {
		t.Fatal("interrupted success streak must not flip the member healthy")
	}
	probe.set("m:1", false)
	c.CheckOnce(ctx)
	if c.Healthy("m:1") {
		t.Fatal("single success after reset must not satisfy Rise=2")
	}
	c.CheckOnce(ctx)
	if !c.Healthy("m:1") {
		t.Fatal("two consecutive successes must flip the member healthy")
	}
}

// TestCheckerOnChange verifies the flip callback fires exactly on
// transitions, outside the lock, with the new state.
func TestCheckerOnChange(t *testing.T) {
	probe := &scriptedProbe{}
	var mu sync.Mutex
	var flips []string
	onChange := func(member string, healthy bool) {
		mu.Lock()
		defer mu.Unlock()
		state := "down"
		if healthy {
			state = "up"
		}
		flips = append(flips, member+"="+state)
	}
	c := newTestChecker([]string{"m:1"}, probe, onChange)
	ctx := context.Background()

	c.CheckOnce(ctx) // healthy → healthy (first verdict, no flip)
	probe.set("m:1", true)
	c.CheckOnce(ctx)
	c.CheckOnce(ctx) // flips down
	probe.set("m:1", false)
	c.CheckOnce(ctx)
	c.CheckOnce(ctx) // flips up

	mu.Lock()
	defer mu.Unlock()
	want := []string{"m:1=down", "m:1=up"}
	if len(flips) != len(want) {
		t.Fatalf("flips = %v, want %v", flips, want)
	}
	for i := range want {
		if flips[i] != want[i] {
			t.Fatalf("flips = %v, want %v", flips, want)
		}
	}
}

// TestCheckerStates verifies the snapshot content used by lb metrics.
func TestCheckerStates(t *testing.T) {
	probe := &scriptedProbe{}
	probe.set("b:1", true)
	c := newTestChecker([]string{"b:1", "a:1", "a:1", ""}, probe, nil)

	if got := c.Members(); len(got) != 2 || got[0] != "a:1" || got[1] != "b:1" {
		t.Fatalf("Members() = %v, want [a:1 b:1] (deduped, sorted, no empties)", got)
	}
	c.CheckOnce(context.Background())
	states := c.States()
	if len(states) != 2 {
		t.Fatalf("States() returned %d entries", len(states))
	}
	for _, st := range states {
		if !st.Checked {
			t.Errorf("%s not marked checked after CheckOnce", st.Member)
		}
		switch st.Member {
		case "a:1":
			if !st.Healthy || st.LastErr != "" {
				t.Errorf("a:1 state = %+v, want healthy with no error", st)
			}
		case "b:1":
			if st.Healthy || st.LastErr == "" {
				t.Errorf("b:1 state = %+v, want unhealthy with error", st)
			}
		}
	}
	hm := c.HealthyMembers()
	if len(hm) != 1 || hm[0] != "a:1" {
		t.Errorf("HealthyMembers() = %v, want [a:1]", hm)
	}
	if c.Healthy("nope:1") {
		t.Error("unknown member reported healthy")
	}
}
