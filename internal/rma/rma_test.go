package rma

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// liuLayland73 is the classic example: three tasks at the Liu–Layland
// bound boundary.
func liuLayland73() TaskSet {
	return TaskSet{
		{Cost: 40e-3, Period: 100e-3},
		{Cost: 40e-3, Period: 150e-3},
		{Cost: 100e-3, Period: 350e-3},
	}
}

func TestValidate(t *testing.T) {
	if err := (TaskSet{}).Validate(); !errors.Is(err, ErrEmptyTaskSet) {
		t.Errorf("empty: %v, want ErrEmptyTaskSet", err)
	}
	if err := (TaskSet{{Cost: -1, Period: 1}}).Validate(); !errors.Is(err, ErrBadTask) {
		t.Errorf("negative cost: %v, want ErrBadTask", err)
	}
	if err := (TaskSet{{Cost: 1, Period: 0}}).Validate(); !errors.Is(err, ErrBadTask) {
		t.Errorf("zero period: %v, want ErrBadTask", err)
	}
	if err := (TaskSet{{Cost: 0, Period: 1}}).Validate(); err != nil {
		t.Errorf("zero cost should be legal: %v", err)
	}
}

func TestBlockingValidation(t *testing.T) {
	ts := liuLayland73()
	if _, err := ResponseTimeAnalysis(ts, -1); !errors.Is(err, ErrBadBlocking) {
		t.Errorf("negative blocking: %v, want ErrBadBlocking", err)
	}
	if _, err := ExactTest(ts, math.NaN()); !errors.Is(err, ErrBadBlocking) {
		t.Errorf("NaN blocking: %v, want ErrBadBlocking", err)
	}
}

func TestClassicLiuLaylandExample(t *testing.T) {
	// U = 0.4 + 0.267 + 0.286 ≈ 0.953 — far above the LL bound, yet
	// exactly schedulable (a textbook case for the exact test).
	ts := liuLayland73()
	res, err := ResponseTimeAnalysis(ts, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schedulable {
		t.Fatalf("classic set should be schedulable; responses %v", res.ResponseTimes)
	}
	if LiuLaylandSchedulable(ts) {
		t.Error("LL bound should NOT admit this set (it is only sufficient)")
	}
	// Hand-computed worst-case response times: R1 = 40; R2 = 40+40 = 80;
	// R3 = 100 + 3·40 + 2·40 = 300 ms (fixpoint of the RTA recurrence).
	want := []float64{40e-3, 80e-3, 300e-3}
	for i, w := range want {
		if math.Abs(res.ResponseTimes[i]-w) > 1e-12 {
			t.Errorf("R[%d] = %v, want %v", i, res.ResponseTimes[i], w)
		}
	}
}

func TestUnschedulableDetected(t *testing.T) {
	ts := TaskSet{
		{Cost: 60e-3, Period: 100e-3},
		{Cost: 60e-3, Period: 140e-3},
	}
	res, err := ResponseTimeAnalysis(ts, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedulable {
		t.Fatal("overloaded set reported schedulable")
	}
	if res.FirstFailure != 1 {
		t.Errorf("FirstFailure = %d, want 1", res.FirstFailure)
	}
}

func TestBlockingTipsTheBalance(t *testing.T) {
	// Schedulable without blocking (R2 = 100ms exactly), but 2ms of
	// blocking pushes a second task-1 instance into R2's window.
	ts := TaskSet{
		{Cost: 50e-3, Period: 100e-3},
		{Cost: 50e-3, Period: 150e-3},
	}
	res, err := ResponseTimeAnalysis(ts, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schedulable {
		t.Fatal("set should be schedulable without blocking")
	}
	res, err = ResponseTimeAnalysis(ts, 2e-3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedulable {
		t.Fatal("set should NOT be schedulable with 2ms blocking")
	}
}

func TestExactTestMatchesRTA(t *testing.T) {
	// The scheduling-point criterion (eq. 4) and response-time analysis
	// are both exact, hence must agree on random workloads.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 300; trial++ {
		n := 2 + rng.Intn(8)
		ts := make(TaskSet, n)
		for i := range ts {
			period := 10e-3 + rng.Float64()*90e-3
			ts[i] = Task{Period: period, Cost: rng.Float64() * period * 0.4}
		}
		ts = ts.SortRM()
		blocking := rng.Float64() * 5e-3
		rta, err := ResponseTimeAnalysis(ts, blocking)
		if err != nil {
			t.Fatal(err)
		}
		exact, err := ExactTest(ts, blocking)
		if err != nil {
			t.Fatal(err)
		}
		if rta.Schedulable != exact.Schedulable {
			t.Fatalf("trial %d: RTA=%v exact=%v for %+v (B=%v)",
				trial, rta.Schedulable, exact.Schedulable, ts, blocking)
		}
		if !rta.Schedulable && rta.FirstFailure != exact.FirstFailure {
			t.Fatalf("trial %d: first failure RTA=%d exact=%d",
				trial, rta.FirstFailure, exact.FirstFailure)
		}
	}
}

func TestSchedulingPoints(t *testing.T) {
	ts := TaskSet{
		{Cost: 1, Period: 10},
		{Cost: 1, Period: 25},
	}
	got := SchedulingPoints(ts, 1)
	want := []float64{10, 20, 25}
	if len(got) != len(want) {
		t.Fatalf("points = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("points = %v, want %v", got, want)
		}
	}
}

func TestSchedulingPointsDeduplicated(t *testing.T) {
	ts := TaskSet{
		{Cost: 1, Period: 10},
		{Cost: 1, Period: 20},
	}
	got := SchedulingPoints(ts, 1)
	want := []float64{10, 20}
	if len(got) != len(want) {
		t.Fatalf("points = %v, want %v (10 appears via both tasks)", got, want)
	}
}

func TestLiuLaylandBound(t *testing.T) {
	if got := LiuLaylandBound(1); got != 1 {
		t.Errorf("LL(1) = %v, want 1", got)
	}
	if got := LiuLaylandBound(2); math.Abs(got-0.8284) > 1e-3 {
		t.Errorf("LL(2) = %v, want ≈0.8284", got)
	}
	if got := LiuLaylandBound(1000); math.Abs(got-math.Ln2) > 1e-3 {
		t.Errorf("LL(1000) = %v, want ≈ln2", got)
	}
	if got := LiuLaylandBound(0); got != 0 {
		t.Errorf("LL(0) = %v, want 0", got)
	}
}

func TestSufficientBoundsAreSound(t *testing.T) {
	// Any set admitted by LL or hyperbolic bound must pass the exact test.
	rng := rand.New(rand.NewSource(7))
	checked := 0
	for trial := 0; trial < 500; trial++ {
		n := 2 + rng.Intn(6)
		ts := make(TaskSet, n)
		for i := range ts {
			period := 10e-3 + rng.Float64()*90e-3
			ts[i] = Task{Period: period, Cost: rng.Float64() * period / float64(n)}
		}
		ts = ts.SortRM()
		if !LiuLaylandSchedulable(ts) && !HyperbolicSchedulable(ts) {
			continue
		}
		checked++
		res, err := ResponseTimeAnalysis(ts, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Schedulable {
			t.Fatalf("bound admitted an unschedulable set: %+v", ts)
		}
	}
	if checked < 50 {
		t.Fatalf("only %d sets passed the bounds; test too weak", checked)
	}
}

func TestHyperbolicDominatesLL(t *testing.T) {
	// Bini–Buttazzo: everything LL admits, hyperbolic admits too.
	f := func(c1, c2, c3 uint8) bool {
		ts := TaskSet{
			{Cost: float64(c1%50) / 1000, Period: 0.1},
			{Cost: float64(c2%50) / 1000, Period: 0.15},
			{Cost: float64(c3%50) / 1000, Period: 0.3},
		}
		if LiuLaylandSchedulable(ts) && !HyperbolicSchedulable(ts) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestUtilization(t *testing.T) {
	ts := liuLayland73()
	want := 0.4 + 40.0/150 + 100.0/350
	if got := ts.Utilization(); math.Abs(got-want) > 1e-12 {
		t.Errorf("Utilization = %v, want %v", got, want)
	}
}

func TestSortRMDoesNotMutate(t *testing.T) {
	ts := TaskSet{{Cost: 1, Period: 5}, {Cost: 1, Period: 2}}
	sorted := ts.SortRM()
	if ts[0].Period != 5 {
		t.Error("SortRM mutated its receiver")
	}
	if sorted[0].Period != 2 {
		t.Error("SortRM did not sort")
	}
}

func TestHarmonicSetFullUtilization(t *testing.T) {
	// Harmonic periods reach utilization 1.0 under RM.
	ts := TaskSet{
		{Cost: 5e-3, Period: 10e-3},
		{Cost: 5e-3, Period: 20e-3},
		{Cost: 20e-3, Period: 80e-3},
	}
	if u := ts.Utilization(); math.Abs(u-1.0) > 1e-12 {
		t.Fatalf("test setup: utilization %v, want exactly 1.0", u)
	}
	res, err := ResponseTimeAnalysis(ts, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Schedulable {
		t.Fatalf("harmonic set at U=%.3f should be schedulable", ts.Utilization())
	}
}
