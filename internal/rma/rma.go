// Package rma implements fixed-priority rate-monotonic schedulability
// analysis for periodic tasks with deadlines at the end of their periods.
//
// It provides the exact Lehoczky–Sha–Ding criterion (the form used by
// Theorem 4.1 of Kamat & Zhao 1993, extended with a blocking term), the
// equivalent response-time analysis used as the fast production test, and
// the classical Liu–Layland and hyperbolic sufficient bounds as baselines.
//
// Tasks here are abstract (cost, period) pairs: the token-ring analyzers
// map message streams to tasks by computing the protocol-specific augmented
// lengths C'_i and blocking bound B first.
package rma

import (
	"errors"
	"math"
	"sort"
)

// Errors returned by the analyses.
var (
	ErrEmptyTaskSet = errors.New("rma: task set is empty")
	ErrBadTask      = errors.New("rma: task cost and period must be positive (cost may be zero)")
	ErrBadBlocking  = errors.New("rma: blocking must be non-negative and finite")
)

// validBlocking reports whether a blocking term is admissible: finite and
// non-negative, the same constraints Validate puts on costs and periods.
func validBlocking(blocking float64) bool {
	return blocking >= 0 && !math.IsNaN(blocking) && !math.IsInf(blocking, 0)
}

// Task is a periodic task with execution cost and period in seconds and an
// implicit deadline equal to its period.
type Task struct {
	Cost   float64
	Period float64
}

// TaskSet is an ordered collection of tasks. The exact analyses require
// rate-monotonic order (shortest period first); use SortRM to establish it.
type TaskSet []Task

// Validate reports the first invalid task, or nil.
func (ts TaskSet) Validate() error {
	if len(ts) == 0 {
		return ErrEmptyTaskSet
	}
	for _, t := range ts {
		if t.Period <= 0 || t.Cost < 0 ||
			math.IsNaN(t.Cost) || math.IsNaN(t.Period) ||
			math.IsInf(t.Cost, 0) || math.IsInf(t.Period, 0) {
			return ErrBadTask
		}
	}
	return nil
}

// Utilization is Σ C_i/P_i.
func (ts TaskSet) Utilization() float64 {
	var u float64
	for _, t := range ts {
		u += t.Cost / t.Period
	}
	return u
}

// SortRM returns a copy in rate-monotonic order (shortest period first,
// stable).
func (ts TaskSet) SortRM() TaskSet {
	out := make(TaskSet, len(ts))
	copy(out, ts)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Period < out[j].Period })
	return out
}

// Result is the detailed outcome of an exact schedulability test.
type Result struct {
	// Schedulable reports whether every task meets its deadline.
	Schedulable bool
	// FirstFailure is the index (in the analyzed order) of the first task
	// that misses its deadline, or -1 if schedulable.
	FirstFailure int
	// ResponseTimes holds the worst-case response time of each task when
	// computed by response-time analysis. For tasks at or after a failure
	// the value is the (diverged) bound at which iteration stopped.
	ResponseTimes []float64
}

// ResponseTimeAnalysis runs the exact iterative test: task i is schedulable
// iff the least fixpoint of
//
//	R = blocking + C_i + Σ_{j<i} C_j · ceil(R/P_j)
//
// satisfies R ≤ P_i. The task set must be in RM order; blocking is the
// worst-case priority-inversion term B applied to every task (Theorem 4.1
// uses B = 2·max(F, Θ)). For synchronous periodic tasks with implicit
// deadlines this is equivalent to the Lehoczky–Sha–Ding criterion.
func ResponseTimeAnalysis(ts TaskSet, blocking float64) (Result, error) {
	if err := ts.Validate(); err != nil {
		return Result{}, err
	}
	if !validBlocking(blocking) {
		return Result{}, ErrBadBlocking
	}
	res := Result{
		Schedulable:   true,
		FirstFailure:  -1,
		ResponseTimes: make([]float64, len(ts)),
	}
	for i, t := range ts {
		r := blocking + t.Cost
		for j := 0; j < i; j++ {
			r += ts[j].Cost
		}
		for {
			if r > t.Period {
				res.ResponseTimes[i] = r
				if res.Schedulable {
					res.Schedulable = false
					res.FirstFailure = i
				}
				break
			}
			next := blocking + t.Cost
			for j := 0; j < i; j++ {
				next += ts[j].Cost * math.Ceil(r/ts[j].Period)
			}
			if next <= r {
				// Fixpoint (demand can only step down due to float
				// rounding; the first r was a lower bound).
				res.ResponseTimes[i] = r
				break
			}
			r = next
		}
	}
	return res, nil
}

// SchedulingPoints returns R_i = { l·P_k | 1 ≤ k ≤ i+1, l = 1..floor(P_i/P_k) }
// for the task at index i of an RM-ordered set: the points at which the
// Lehoczky–Sha–Ding criterion must be evaluated. Points are deduplicated
// and sorted ascending.
func SchedulingPoints(ts TaskSet, i int) []float64 {
	pi := ts[i].Period
	var pts []float64
	for k := 0; k <= i; k++ {
		pk := ts[k].Period
		lmax := int(math.Floor(pi / pk))
		for l := 1; l <= lmax; l++ {
			pts = append(pts, float64(l)*pk)
		}
	}
	sort.Float64s(pts)
	// Deduplicate in place.
	out := pts[:0]
	for _, p := range pts {
		if len(out) == 0 || p != out[len(out)-1] {
			out = append(out, p)
		}
	}
	return out
}

// ExactTest runs the Lehoczky–Sha–Ding criterion with a blocking term
// directly over the scheduling points (eq. (4) of the paper):
//
//	task i schedulable ⟺ ∃ t ∈ R_i : Σ_{j<i} C_j·ceil(t/P_j) + C_i + B ≤ t.
//
// It is O(n · |R_i| · n) and exists as the reference implementation; the
// breakdown engine uses ResponseTimeAnalysis, which is provably equivalent
// (asserted by property tests).
func ExactTest(ts TaskSet, blocking float64) (Result, error) {
	if err := ts.Validate(); err != nil {
		return Result{}, err
	}
	if !validBlocking(blocking) {
		return Result{}, ErrBadBlocking
	}
	res := Result{Schedulable: true, FirstFailure: -1}
	for i := range ts {
		if taskSchedulableAtPoints(ts, i, blocking) {
			continue
		}
		res.Schedulable = false
		res.FirstFailure = i
		break
	}
	return res, nil
}

func taskSchedulableAtPoints(ts TaskSet, i int, blocking float64) bool {
	for _, t := range SchedulingPoints(ts, i) {
		demand := blocking + ts[i].Cost
		for j := 0; j < i; j++ {
			demand += ts[j].Cost * math.Ceil(t/ts[j].Period)
		}
		if demand <= t {
			return true
		}
	}
	return false
}

// LiuLaylandBound is the classical sufficient utilization bound
// n·(2^{1/n} − 1) for n tasks; it tends to ln 2 ≈ 0.693.
func LiuLaylandBound(n int) float64 {
	if n <= 0 {
		return 0
	}
	return float64(n) * (math.Pow(2, 1/float64(n)) - 1)
}

// LiuLaylandSchedulable is the sufficient (not necessary) test
// U ≤ n·(2^{1/n} − 1).
func LiuLaylandSchedulable(ts TaskSet) bool {
	return ts.Utilization() <= LiuLaylandBound(len(ts))
}

// HyperbolicSchedulable is the Bini–Buttazzo sufficient test
// Π (U_i + 1) ≤ 2, tighter than Liu–Layland.
func HyperbolicSchedulable(ts TaskSet) bool {
	prod := 1.0
	for _, t := range ts {
		prod *= t.Cost/t.Period + 1
	}
	return prod <= 2
}
