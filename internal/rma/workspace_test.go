package rma

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// randomTaskSet draws a task set exercising the analyzers' interesting
// regimes: mixed utilizations, occasional zero costs, occasional equal
// periods.
func randomTaskSet(rng *rand.Rand) TaskSet {
	n := 1 + rng.Intn(20)
	ts := make(TaskSet, n)
	var period float64
	for i := range ts {
		// 1 in 8 tasks reuses the previous period (ties exercise the
		// stable sort and scheduling-point dedupe).
		if i == 0 || rng.Intn(8) != 0 {
			period = math.Exp(rng.Float64()*4 - 2) // ~[0.14, 7.4)
		}
		cost := rng.Float64() * period * 0.4
		if rng.Intn(10) == 0 {
			cost = 0
		}
		ts[i] = Task{Cost: cost, Period: period}
	}
	return ts
}

// TestWorkspaceDifferentialParity is the rma half of the differential
// suite: over 1000+ seeded random task sets, the workspace kernels must
// return verdicts, failure indices, and response times bit-identical to
// the retained reference implementations — including while costs are
// rescaled between probes the way the saturation search does.
func TestWorkspaceDifferentialParity(t *testing.T) {
	sets := 1200
	if testing.Short() {
		sets = 300
	}
	rng := rand.New(rand.NewSource(41))
	var ws Workspace
	for k := 0; k < sets; k++ {
		ts := randomTaskSet(rng)
		blocking := rng.Float64() * 0.1
		if rng.Intn(6) == 0 {
			blocking = 0
		}
		if err := ws.Load(ts); err != nil {
			t.Fatalf("set %d: Load: %v", k, err)
		}
		// Probe a bisection-like ladder of scale factors on one loaded
		// workspace, comparing each probe against the references applied
		// to a freshly scaled copy.
		scales := []float64{1, 2, 4, 8, 4.7, 2.3, 1.1, 0.9, 0.5, 0.25, 1.7, 1}
		for _, scale := range scales {
			scaled := ts.SortRM()
			for i := range scaled {
				scaled[i].Cost *= scale
			}
			ws.ScaleCosts(scale)

			refRTA, err := ResponseTimeAnalysis(scaled, blocking)
			if err != nil {
				t.Fatalf("set %d scale %g: reference RTA: %v", k, scale, err)
			}
			refExact, err := ExactTest(scaled, blocking)
			if err != nil {
				t.Fatalf("set %d scale %g: reference ExactTest: %v", k, scale, err)
			}
			if refRTA.Schedulable != refExact.Schedulable {
				t.Fatalf("set %d scale %g: reference RTA and ExactTest disagree", k, scale)
			}

			got, err := ws.Schedulable(blocking)
			if err != nil {
				t.Fatalf("set %d scale %g: workspace Schedulable: %v", k, scale, err)
			}
			if got != refRTA.Schedulable {
				t.Fatalf("set %d scale %g: workspace verdict %v, reference %v",
					k, scale, got, refRTA.Schedulable)
			}

			wsExact, err := ws.ExactTest(blocking)
			if err != nil {
				t.Fatalf("set %d scale %g: workspace ExactTest: %v", k, scale, err)
			}
			if wsExact.Schedulable != refExact.Schedulable || wsExact.FirstFailure != refExact.FirstFailure {
				t.Fatalf("set %d scale %g: workspace ExactTest (%v,%d) != reference (%v,%d)",
					k, scale, wsExact.Schedulable, wsExact.FirstFailure,
					refExact.Schedulable, refExact.FirstFailure)
			}

			wsRTA, err := ws.ResponseTimeAnalysis(blocking)
			if err != nil {
				t.Fatalf("set %d scale %g: workspace RTA: %v", k, scale, err)
			}
			if wsRTA.Schedulable != refRTA.Schedulable || wsRTA.FirstFailure != refRTA.FirstFailure {
				t.Fatalf("set %d scale %g: workspace RTA verdict mismatch", k, scale)
			}
			for i := range refRTA.ResponseTimes {
				if math.Float64bits(wsRTA.ResponseTimes[i]) != math.Float64bits(refRTA.ResponseTimes[i]) {
					t.Fatalf("set %d scale %g task %d: response %v != reference %v",
						k, scale, i, wsRTA.ResponseTimes[i], refRTA.ResponseTimes[i])
				}
			}
		}
	}
}

// TestWorkspaceDegenerateParity pins the degenerate corners the random
// draw only occasionally hits: all-zero costs, all-equal periods, a
// single task, and blocking exactly at the boundary.
func TestWorkspaceDegenerateParity(t *testing.T) {
	cases := []struct {
		name     string
		ts       TaskSet
		blocking float64
	}{
		{"all-zero-costs", TaskSet{{0, 1}, {0, 2}, {0, 4}}, 0.5},
		{"equal-periods", TaskSet{{0.2, 1}, {0.3, 1}, {0.4, 1}}, 0.05},
		{"single", TaskSet{{0.7, 1}}, 0.3},
		{"blocking-fills-period", TaskSet{{0.25, 1}, {0.25, 2}}, 0.75},
		{"harmonic", TaskSet{{0.2, 1}, {0.2, 2}, {0.2, 4}, {0.2, 8}}, 0},
		{"unschedulable", TaskSet{{0.9, 1}, {0.9, 1.5}}, 0.1},
	}
	var ws Workspace
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := ws.Load(tc.ts); err != nil {
				t.Fatalf("Load: %v", err)
			}
			sorted := tc.ts.SortRM()
			ref, err := ResponseTimeAnalysis(sorted, tc.blocking)
			if err != nil {
				t.Fatalf("reference: %v", err)
			}
			got, err := ws.Schedulable(tc.blocking)
			if err != nil {
				t.Fatalf("workspace: %v", err)
			}
			if got != ref.Schedulable {
				t.Fatalf("verdict %v, reference %v", got, ref.Schedulable)
			}
			refExact, err := ExactTest(sorted, tc.blocking)
			if err != nil {
				t.Fatalf("reference exact: %v", err)
			}
			wsExact, err := ws.ExactTest(tc.blocking)
			if err != nil {
				t.Fatalf("workspace exact: %v", err)
			}
			if wsExact.Schedulable != refExact.Schedulable || wsExact.FirstFailure != refExact.FirstFailure {
				t.Fatalf("exact %+v, reference %+v", wsExact, refExact)
			}
		})
	}
}

// TestSchedulingPointsHarmonicDedupe is the regression test for duplicated
// points under harmonically related periods: every l·P_k collision (2·1 ==
// 1·2, 4·1 == 2·2 == 1·4, ...) must appear exactly once, for both the
// reference SchedulingPoints and the workspace's cached arrays.
func TestSchedulingPointsHarmonicDedupe(t *testing.T) {
	ts := TaskSet{{0.1, 1}, {0.1, 2}, {0.1, 4}, {0.1, 8}}
	want := [][]float64{
		{1},
		{1, 2},
		{1, 2, 3, 4},
		{1, 2, 3, 4, 5, 6, 7, 8},
	}
	var ws Workspace
	if err := ws.Load(ts); err != nil {
		t.Fatalf("Load: %v", err)
	}
	ws.ensurePoints() // the cache is built lazily, on first ExactTest
	for i := range ts {
		pts := SchedulingPoints(ts, i)
		if len(pts) != len(want[i]) {
			t.Fatalf("task %d: %d points %v, want %v", i, len(pts), pts, want[i])
		}
		cached := ws.taskPoints(i)
		if len(cached) != len(want[i]) {
			t.Fatalf("task %d: %d cached points %v, want %v", i, len(cached), cached, want[i])
		}
		for j := range pts {
			if pts[j] != want[i][j] || cached[j] != want[i][j] {
				t.Fatalf("task %d point %d: reference %v cached %v, want %v",
					i, j, pts[j], cached[j], want[i][j])
			}
		}
		// No duplicates may survive, however the periods collide.
		for j := 1; j < len(pts); j++ {
			if pts[j] == pts[j-1] {
				t.Fatalf("task %d: duplicate point %v", i, pts[j])
			}
		}
	}
}

// TestInfiniteBlockingRejected pins the satellite fix: ±Inf blocking is now
// rejected by both reference tests and the workspace, like NaN and negative
// values.
func TestInfiniteBlockingRejected(t *testing.T) {
	ts := TaskSet{{0.1, 1}}
	var ws Workspace
	if err := ws.Load(ts); err != nil {
		t.Fatalf("Load: %v", err)
	}
	for _, b := range []float64{math.NaN(), math.Inf(1), math.Inf(-1), -0.1} {
		if _, err := ResponseTimeAnalysis(ts, b); !errors.Is(err, ErrBadBlocking) {
			t.Errorf("RTA blocking %v: err %v, want ErrBadBlocking", b, err)
		}
		if _, err := ExactTest(ts, b); !errors.Is(err, ErrBadBlocking) {
			t.Errorf("ExactTest blocking %v: err %v, want ErrBadBlocking", b, err)
		}
		if _, err := ws.Schedulable(b); !errors.Is(err, ErrBadBlocking) {
			t.Errorf("workspace blocking %v: err %v, want ErrBadBlocking", b, err)
		}
	}
	if _, err := ResponseTimeAnalysis(ts, 0); err != nil {
		t.Errorf("zero blocking rejected: %v", err)
	}
}

// TestWorkspaceUncachedFallback drives a period spread too wide for the
// point cache (floor(P_max/P_min) alone exceeds the cache bound) and checks
// parity against the references on the fallback path: pure RTA for
// Schedulable, scratch-built points for ExactTest.
func TestWorkspaceUncachedFallback(t *testing.T) {
	ts := TaskSet{{1e-6, 2e-5}, {0.5, 30}}
	var ws Workspace
	if err := ws.Load(ts); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if ws.cached {
		t.Fatalf("expected the point cache to be skipped for spread %v", ts)
	}
	for _, scale := range []float64{0.5, 1, 2, 10, 15, 30} {
		ws.ScaleCosts(scale)
		scaled := ts.SortRM()
		for i := range scaled {
			scaled[i].Cost *= scale
		}
		ref, err := ResponseTimeAnalysis(scaled, 1e-6)
		if err != nil {
			t.Fatalf("scale %g: reference: %v", scale, err)
		}
		got, err := ws.Schedulable(1e-6)
		if err != nil {
			t.Fatalf("scale %g: workspace: %v", scale, err)
		}
		if got != ref.Schedulable {
			t.Fatalf("scale %g: verdict %v, reference %v", scale, got, ref.Schedulable)
		}
	}
	// The scratch-built exact test is expensive for this spread (1.5M
	// points), so check it at a single scale.
	ws.ScaleCosts(1)
	refExact, err := ExactTest(ts.SortRM(), 1e-6)
	if err != nil {
		t.Fatalf("reference exact: %v", err)
	}
	wsExact, err := ws.ExactTest(1e-6)
	if err != nil {
		t.Fatalf("workspace exact: %v", err)
	}
	if wsExact.Schedulable != refExact.Schedulable || wsExact.FirstFailure != refExact.FirstFailure {
		t.Fatalf("exact %+v, reference %+v", wsExact, refExact)
	}
}

// TestWorkspaceLoadErrors checks Load rejects what the references reject.
func TestWorkspaceLoadErrors(t *testing.T) {
	var ws Workspace
	if err := ws.Load(nil); !errors.Is(err, ErrEmptyTaskSet) {
		t.Errorf("empty: %v, want ErrEmptyTaskSet", err)
	}
	if err := ws.Load(TaskSet{{-1, 1}}); !errors.Is(err, ErrBadTask) {
		t.Errorf("negative cost: %v, want ErrBadTask", err)
	}
	if err := ws.Load(TaskSet{{1, math.NaN()}}); !errors.Is(err, ErrBadTask) {
		t.Errorf("NaN period: %v, want ErrBadTask", err)
	}
	// An unloaded (or failed-load) workspace reports the empty-set error.
	var empty Workspace
	if _, err := empty.Schedulable(0); !errors.Is(err, ErrEmptyTaskSet) {
		t.Errorf("unloaded Schedulable: %v, want ErrEmptyTaskSet", err)
	}
}
