package rma

import (
	"context"
	"testing"

	"ringsched/internal/trace"
)

// TestKernelHotPathZeroAllocs pins the workspace probe loop at 0 allocs/op
// as a plain test, so the allocation property gates every `go test` run and
// not only the benchmark harness. The loop body is the saturation search's
// inner step — ScaleCosts + Schedulable + ExactTest — executed with tracing
// disabled, exactly as the Monte Carlo workers run it: trace.Start on a
// span-less context must stay on its nil-span fast path and add nothing.
func TestKernelHotPathZeroAllocs(t *testing.T) {
	ts := benchTaskSet(100, 0.88, 1)
	var ws Workspace
	if err := ws.Load(ts); err != nil {
		t.Fatal(err)
	}
	// Warm the lazy caches outside the measured region.
	if _, err := ws.ExactTest(1e-4); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	k := 0
	allocs := testing.AllocsPerRun(200, func() {
		_, sp := trace.Start(ctx, "kernel.probe")
		ws.ScaleCosts(benchScales[k%len(benchScales)])
		k++
		if _, err := ws.Schedulable(1e-4); err != nil {
			t.Fatal(err)
		}
		if _, err := ws.ExactTest(1e-4); err != nil {
			t.Fatal(err)
		}
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("kernel hot path with tracing disabled allocates: %v allocs/op", allocs)
	}
}

// TestWorkspaceCounters checks the kernel telemetry: counters reset on
// Load, tally each probe kind, and record the shortcut hits the saturation
// search relies on.
func TestWorkspaceCounters(t *testing.T) {
	ts := benchTaskSet(40, 0.85, 7)
	var ws Workspace
	if err := ws.Load(ts); err != nil {
		t.Fatal(err)
	}
	if got := ws.Counters(); got != (Counters{}) {
		t.Fatalf("counters not zero after Load: %+v", got)
	}

	for _, scale := range benchScales {
		ws.ScaleCosts(scale)
		if _, err := ws.Schedulable(1e-4); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := ws.ExactTest(1e-4); err != nil {
		t.Fatal(err)
	}
	if _, err := ws.ResponseTimeAnalysis(1e-4); err != nil {
		t.Fatal(err)
	}

	c := ws.Counters()
	if c.Schedulable != len(benchScales) {
		t.Errorf("Schedulable = %d, want %d", c.Schedulable, len(benchScales))
	}
	if c.ExactTests != 1 || c.RTAs != 1 {
		t.Errorf("ExactTests=%d RTAs=%d, want 1 and 1", c.ExactTests, c.RTAs)
	}
	// The probe ladder repeats passing scales, so witnesses must have
	// settled at least some checks; it also repeats failing scales right
	// after failures, so the lastFail shortcut must have fired.
	if c.WitnessHits == 0 {
		t.Error("witness shortcut never fired across the probe ladder")
	}
	if c.LastFailHits == 0 {
		t.Error("lastFail shortcut never fired across the probe ladder")
	}

	if err := ws.Load(ts); err != nil {
		t.Fatal(err)
	}
	if got := ws.Counters(); got != (Counters{}) {
		t.Fatalf("counters survive reload: %+v", got)
	}
}
