package rma

import "math"

// Incremental is a response-time-analysis workspace for long-lived,
// RM-ordered task sets that are edited one task at a time. It keeps the
// task array and every computed response time resident, so a single-task
// edit at RM index k only re-runs the fixpoint iteration for tasks at or
// below the edited priority (indices ≥ k): a task's response time depends
// exclusively on the blocking term and on the cost/period of tasks at
// higher priority, so the prefix [0, k) is untouched by construction.
//
// The recomputation loop is a verbatim copy of ResponseTimeAnalysis's
// arithmetic — same operations in the same order — so the retained
// response times are bit-identical to a from-scratch analysis of the
// current task array at every edit. The differential tests in this
// package and the ring-edit harness in internal/ringstate pin that
// property.
//
// The workspace reuses its buffers across edits: a steady-state
// add/remove cycle allocates nothing. It is not safe for concurrent use.
type Incremental struct {
	tasks    []Task
	resp     []float64
	blocking float64
}

// Reset empties the workspace and installs the blocking term applied to
// every task (B in Theorem 4.1). Buffer capacity is retained.
func (w *Incremental) Reset(blocking float64) error {
	if !validBlocking(blocking) {
		return ErrBadBlocking
	}
	w.tasks = w.tasks[:0]
	w.resp = w.resp[:0]
	w.blocking = blocking
	return nil
}

// Len returns the resident task count.
func (w *Incremental) Len() int { return len(w.tasks) }

// Blocking returns the blocking term the workspace currently applies.
func (w *Incremental) Blocking() float64 { return w.blocking }

// Task returns the task at RM index i.
func (w *Incremental) Task(i int) Task { return w.tasks[i] }

// ResponseTime returns the retained worst-case response time of the task
// at RM index i. For an unschedulable task it is the diverged bound at
// which iteration stopped, exactly as ResponseTimeAnalysis reports it.
func (w *Incremental) ResponseTime(i int) float64 { return w.resp[i] }

// ResponseTimes returns the live response-time slice in RM order. The
// slice aliases workspace state: it is valid until the next edit and must
// not be mutated.
func (w *Incremental) ResponseTimes() []float64 { return w.resp }

// TaskSchedulable reports whether the task at RM index i meets its
// deadline: response time ≤ period.
func (w *Incremental) TaskSchedulable(i int) bool {
	return w.resp[i] <= w.tasks[i].Period
}

// Schedulable reports whether every resident task meets its deadline. An
// empty workspace is vacuously schedulable.
func (w *Incremental) Schedulable() bool { return w.FirstFailure() < 0 }

// FirstFailure returns the RM index of the first task that misses its
// deadline, or -1 if every task is schedulable.
func (w *Incremental) FirstFailure() int {
	for i := range w.tasks {
		if w.resp[i] > w.tasks[i].Period {
			return i
		}
	}
	return -1
}

// validTask mirrors TaskSet.Validate for a single task.
func validTask(t Task) bool {
	return t.Period > 0 && t.Cost >= 0 &&
		!math.IsNaN(t.Cost) && !math.IsNaN(t.Period) &&
		!math.IsInf(t.Cost, 0) && !math.IsInf(t.Period, 0)
}

// orderedAt reports whether period p keeps the array RM-sorted when
// placed at index i (with the current occupant shifted right for
// inserts — hence the two bounds are checked against i-1 and i).
func (w *Incremental) orderedInsert(i int, p float64) bool {
	if i > 0 && w.tasks[i-1].Period > p {
		return false
	}
	if i < len(w.tasks) && p > w.tasks[i].Period {
		return false
	}
	return true
}

// Insert places t at RM index i (0 ≤ i ≤ Len), shifts lower-priority
// tasks down, and recomputes the response times of every task at or
// below the insertion point. It returns how many tasks were re-probed
// (Len − i after the insert). The period must preserve RM order;
// ErrBadTask is returned for an invalid task or index.
func (w *Incremental) Insert(i int, t Task) (int, error) {
	if i < 0 || i > len(w.tasks) || !validTask(t) || !w.orderedInsert(i, t.Period) {
		return 0, ErrBadTask
	}
	w.tasks = append(w.tasks, Task{})
	copy(w.tasks[i+1:], w.tasks[i:])
	w.tasks[i] = t
	w.resp = append(w.resp, 0)
	copy(w.resp[i+1:], w.resp[i:])
	return w.recomputeFrom(i), nil
}

// Remove deletes the task at RM index i and recomputes the response
// times of every task that was below it. It returns how many tasks were
// re-probed.
func (w *Incremental) Remove(i int) (int, error) {
	if i < 0 || i >= len(w.tasks) {
		return 0, ErrBadTask
	}
	copy(w.tasks[i:], w.tasks[i+1:])
	w.tasks = w.tasks[:len(w.tasks)-1]
	copy(w.resp[i:], w.resp[i+1:])
	w.resp = w.resp[:len(w.resp)-1]
	return w.recomputeFrom(i), nil
}

// Set replaces the task at RM index i in place (the new period must keep
// the array RM-sorted at the same index) and recomputes from i.
func (w *Incremental) Set(i int, t Task) (int, error) {
	if i < 0 || i >= len(w.tasks) || !validTask(t) {
		return 0, ErrBadTask
	}
	if i > 0 && w.tasks[i-1].Period > t.Period {
		return 0, ErrBadTask
	}
	if i+1 < len(w.tasks) && t.Period > w.tasks[i+1].Period {
		return 0, ErrBadTask
	}
	w.tasks[i] = t
	return w.recomputeFrom(i), nil
}

// Rebase installs a new blocking term and recomputes every response
// time: blocking enters every task's fixpoint, so no prefix survives a
// change to it. The degraded-mode PDP engine rebases on every edit
// (its recovery-augmented blocking B' depends on the whole set).
func (w *Incremental) Rebase(blocking float64) (int, error) {
	if !validBlocking(blocking) {
		return 0, ErrBadBlocking
	}
	w.blocking = blocking
	return w.recomputeFrom(0), nil
}

// RecomputeAll re-runs the analysis for every resident task.
func (w *Incremental) RecomputeAll() int { return w.recomputeFrom(0) }

// recomputeFrom re-runs the exact response-time fixpoint for tasks
// [k, Len). The loop body must stay operation-for-operation identical to
// ResponseTimeAnalysis: the bit-identity guarantee of every incremental
// edit rests on it.
func (w *Incremental) recomputeFrom(k int) int {
	blocking := w.blocking
	n := len(w.tasks)
	for i := k; i < n; i++ {
		t := w.tasks[i]
		r := blocking + t.Cost
		for j := 0; j < i; j++ {
			r += w.tasks[j].Cost
		}
		for {
			if r > t.Period {
				w.resp[i] = r
				break
			}
			next := blocking + t.Cost
			for j := 0; j < i; j++ {
				next += w.tasks[j].Cost * math.Ceil(r/w.tasks[j].Period)
			}
			if next <= r {
				// Fixpoint (demand can only step down due to float
				// rounding; the first r was a lower bound).
				w.resp[i] = r
				break
			}
			r = next
		}
	}
	return n - k
}
