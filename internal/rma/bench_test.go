package rma

import (
	"math/rand"
	"testing"
)

// benchTaskSet draws an RM-ordered n-task set with the paper's period
// spread (max/min = 10 around a 100 ms mean) scaled to the given
// utilization, so the exact test does representative work near the
// schedulability threshold.
func benchTaskSet(n int, util float64, seed int64) TaskSet {
	rng := rand.New(rand.NewSource(seed))
	ts := make(TaskSet, n)
	var u float64
	for i := range ts {
		p := 100e-3 * (2.0/11.0 + rng.Float64()*(20.0/11.0-2.0/11.0))
		c := p * rng.Float64()
		ts[i] = Task{Cost: c, Period: p}
		u += c / p
	}
	for i := range ts {
		ts[i].Cost *= util / u
	}
	return ts.SortRM()
}

// benchScales is the probe ladder the benchmarks cycle through; it mimics
// a saturation search's bracketing pattern (passes and failures mixed) so
// the witness and lastFail shortcuts are exercised realistically.
var benchScales = []float64{0.5, 1.0, 1.2, 0.9, 1.05, 0.97, 1.01, 0.99}

// BenchmarkExactTestReference measures the reference scheduling-point test
// (sort + merge per call) on a 100-task set — the pre-workspace baseline.
func BenchmarkExactTestReference(b *testing.B) {
	ts := benchTaskSet(100, 0.88, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ExactTest(ts, 1e-4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRTAReference measures the reference response-time analysis on
// the same set.
func BenchmarkRTAReference(b *testing.B) {
	ts := benchTaskSet(100, 0.88, 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ResponseTimeAnalysis(ts, 1e-4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorkspaceExactTest measures the workspace exact test with the
// scheduling points cached at Load; the inner loop must not allocate.
func BenchmarkWorkspaceExactTest(b *testing.B) {
	var ws Workspace
	if err := ws.Load(benchTaskSet(100, 0.88, 1)); err != nil {
		b.Fatal(err)
	}
	if _, err := ws.ExactTest(1e-4); err != nil { // build the lazy point cache
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws.ScaleCosts(benchScales[i%len(benchScales)])
		if _, err := ws.ExactTest(1e-4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorkspaceRTA measures the workspace response-time analysis
// (buffer-reusing, allocation-free).
func BenchmarkWorkspaceRTA(b *testing.B) {
	var ws Workspace
	if err := ws.Load(benchTaskSet(100, 0.88, 1)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws.ScaleCosts(benchScales[i%len(benchScales)])
		if _, err := ws.ResponseTimeAnalysis(1e-4); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWorkspaceProbe measures the verdict-only saturation probe —
// the innermost loop of every Monte Carlo breakdown sample, with the
// witness-point and lastFail shortcuts live.
func BenchmarkWorkspaceProbe(b *testing.B) {
	var ws Workspace
	if err := ws.Load(benchTaskSet(100, 0.88, 1)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ws.ScaleCosts(benchScales[i%len(benchScales)])
		if _, err := ws.Schedulable(1e-4); err != nil {
			b.Fatal(err)
		}
	}
}

// TestWorkspaceProbesAllocationFree pins the headline performance claim as
// a plain test: once a set is loaded, re-scaling and re-testing performs
// zero heap allocations per probe, on all three entry points.
func TestWorkspaceProbesAllocationFree(t *testing.T) {
	var ws Workspace
	if err := ws.Load(benchTaskSet(60, 0.85, 7)); err != nil {
		t.Fatal(err)
	}
	// Warm the witness and lastFail state the way a search would.
	for _, s := range []float64{0.5, 1.3, 1.0} {
		ws.ScaleCosts(s)
		if _, err := ws.Schedulable(0); err != nil {
			t.Fatal(err)
		}
	}
	i := 0
	allocs := testing.AllocsPerRun(200, func() {
		ws.ScaleCosts(benchScales[i%len(benchScales)])
		i++
		if _, err := ws.Schedulable(1e-4); err != nil {
			t.Error(err)
		}
		if _, err := ws.ExactTest(1e-4); err != nil {
			t.Error(err)
		}
		if _, err := ws.ResponseTimeAnalysis(1e-4); err != nil {
			t.Error(err)
		}
	})
	if allocs != 0 {
		t.Errorf("workspace probes allocated %.1f times per run, want 0", allocs)
	}
}
