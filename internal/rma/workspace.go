package rma

import (
	"math"
	"slices"
)

// maxCachedPoints bounds the total number of scheduling points a Workspace
// materializes at Load. Sets whose period spread would need more (e.g.
// nanosecond next to second periods) fall back to uncached evaluation:
// Schedulable uses pure response-time analysis and ExactTest rebuilds each
// task's points into a reusable scratch buffer.
const maxCachedPoints = 1 << 20

// Workspace evaluates the exact schedulability tests repeatedly over one
// task set without per-call allocation. It is the hot-path kernel behind
// the breakdown saturation search: Load once, then mutate costs (Tasks,
// ScaleCosts) and re-test as often as needed.
//
// A Workspace caches everything that depends only on the periods — the
// rate-monotonic order and (lazily, on first ExactTest) the merged,
// deduplicated scheduling-point array of every task — plus two incremental
// hints that exploit the saturation search's structure:
//
//   - a per-task witness: the time (or scheduling point) that proved the
//     task schedulable on the previous call is re-tested first (the
//     existence check is order-independent, so the verdict is unchanged);
//   - the first failing task of the previous failing call is re-tested
//     first, so a probe above a known-failing load exits after one task.
//
// Every demand term is computed with arithmetic identical to the reference
// implementations (ExactTest, ResponseTimeAnalysis); the differential
// property suite asserts bit-identical verdicts. The zero value is ready
// to use; a Workspace must not be shared between goroutines.
type Workspace struct {
	tasks TaskSet   // RM-sorted working copy; costs mutable via Tasks
	base  []float64 // costs as loaded, for ScaleCosts
	resp  []float64 // response-time buffer aliased by Result

	pts      []float64 // flattened per-task scheduling points
	ptsEnd   []int     // points of task i are pts[ptsStart(i):ptsEnd[i]]
	ptsBuilt bool      // buildPoints ran for the loaded periods
	cached   bool      // pts/ptsEnd materialized (subject to maxCachedPoints)
	scratch  []float64 // per-task point buffer for the uncached ExactTest

	witness  []int     // per-task index of the last passing point, -1 unknown
	witnessT []float64 // per-task time of the last passing probe, 0 unknown
	lastFail int       // first failing task of the last failing probe, -1

	counters Counters
}

// Counters is the workspace's cumulative probe telemetry since the last
// Load — plain integers incremented on the hot path, so reading them costs
// nothing and recording them cannot allocate. Saturation-search spans and
// benchmarks use them to attribute time: a healthy search shows most
// verdict probes settled by witnesses or the last-fail shortcut.
type Counters struct {
	// Schedulable counts verdict-only probes answered.
	Schedulable int
	// ExactTests counts full Lehoczky–Sha–Ding evaluations.
	ExactTests int
	// RTAs counts full response-time analyses.
	RTAs int
	// WitnessHits counts per-task checks settled by a remembered witness
	// (one demand evaluation instead of an iteration or a point scan).
	WitnessHits int
	// LastFailHits counts probes short-circuited by re-testing the
	// previous failing task first.
	LastFailHits int
}

// Counters returns the probe telemetry accumulated since Load.
func (w *Workspace) Counters() Counters { return w.counters }

// Load binds the workspace to a task set: validates it, establishes
// rate-monotonic order (stable, identical to TaskSet.SortRM), and caches
// the scheduling points. Subsequent probes are allocation-free. Load may
// allocate only to grow the reusable buffers, so reloading sets of similar
// size is cheap.
func (w *Workspace) Load(ts TaskSet) error {
	if err := ts.Validate(); err != nil {
		return err
	}
	w.tasks = append(w.tasks[:0], ts...)
	slices.SortStableFunc(w.tasks, func(a, b Task) int {
		switch {
		case a.Period < b.Period:
			return -1
		case a.Period > b.Period:
			return 1
		default:
			return 0
		}
	})
	w.base = w.base[:0]
	for _, t := range w.tasks {
		w.base = append(w.base, t.Cost)
	}
	w.resp = grow(w.resp, len(w.tasks))
	w.witness = w.witness[:0]
	w.witnessT = w.witnessT[:0]
	for range w.tasks {
		w.witness = append(w.witness, -1)
		w.witnessT = append(w.witnessT, 0)
	}
	w.lastFail = -1
	w.counters = Counters{}
	// The scheduling-point cache is built lazily by the first ExactTest:
	// the verdict-only Schedulable path never consults it, and the
	// saturation search that dominates the Monte Carlo workload only calls
	// Schedulable, so eager construction would pay the per-set sort for
	// nothing.
	w.ptsBuilt = false
	w.cached = false
	return nil
}

// ensurePoints materializes the scheduling-point cache on first use.
func (w *Workspace) ensurePoints() {
	if !w.ptsBuilt {
		w.buildPoints()
		w.ptsBuilt = true
	}
}

// grow returns a slice of length n reusing buf's capacity.
func grow(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// buildPoints materializes every task's scheduling points into the
// flattened pts/ptsEnd arrays, unless the total would exceed
// maxCachedPoints.
func (w *Workspace) buildPoints() {
	var total float64
	for i := range w.tasks {
		pi := w.tasks[i].Period
		for k := 0; k <= i; k++ {
			total += math.Floor(pi / w.tasks[k].Period)
			if total > maxCachedPoints {
				w.cached = false
				w.pts = w.pts[:0]
				w.ptsEnd = w.ptsEnd[:0]
				return
			}
		}
	}
	w.cached = true
	w.pts = w.pts[:0]
	w.ptsEnd = w.ptsEnd[:0]
	for i := range w.tasks {
		start := len(w.pts)
		w.pts = appendPoints(w.pts, w.tasks, i)
		seg := w.pts[start:]
		slices.Sort(seg)
		w.pts = w.pts[:start+dedupe(seg)]
		w.ptsEnd = append(w.ptsEnd, len(w.pts))
	}
}

// appendPoints appends task i's raw (unsorted, undeduplicated) scheduling
// points — the same generation loop as SchedulingPoints.
func appendPoints(dst []float64, ts TaskSet, i int) []float64 {
	pi := ts[i].Period
	for k := 0; k <= i; k++ {
		pk := ts[k].Period
		lmax := int(math.Floor(pi / pk))
		for l := 1; l <= lmax; l++ {
			dst = append(dst, float64(l)*pk)
		}
	}
	return dst
}

// dedupe removes adjacent duplicates from a sorted slice in place and
// returns the deduplicated length.
func dedupe(seg []float64) int {
	n := 0
	for _, p := range seg {
		if n == 0 || p != seg[n-1] {
			seg[n] = p
			n++
		}
	}
	return n
}

// Tasks returns the workspace's RM-sorted working copy. Callers may mutate
// Cost fields between probes (the incremental mode used by the protocol
// analyzers' batched probes); mutating Period fields invalidates the
// cached scheduling points and is not supported — Load a new set instead.
func (w *Workspace) Tasks() TaskSet { return w.tasks }

// ScaleCosts sets every working cost to loadedCost·factor — the rma-level
// incremental rescale used when only a common scale factor changes between
// probes. The multiplication is exactly the one the reference path applies
// to a pre-scaled task set, so results stay bit-identical.
func (w *Workspace) ScaleCosts(factor float64) {
	for i := range w.tasks {
		w.tasks[i].Cost = w.base[i] * factor
	}
}

// validate re-checks the working tasks (costs are mutated between probes)
// and the blocking term, mirroring the reference implementations'
// validation order and errors.
func (w *Workspace) validate(blocking float64) error {
	if len(w.tasks) == 0 {
		return ErrEmptyTaskSet
	}
	for _, t := range w.tasks {
		if t.Period <= 0 || t.Cost < 0 ||
			math.IsNaN(t.Cost) || math.IsNaN(t.Period) ||
			math.IsInf(t.Cost, 0) || math.IsInf(t.Period, 0) {
			return ErrBadTask
		}
	}
	if !validBlocking(blocking) {
		return ErrBadBlocking
	}
	return nil
}

func (w *Workspace) ptsStart(i int) int {
	if i == 0 {
		return 0
	}
	return w.ptsEnd[i-1]
}

// taskPoints returns task i's cached scheduling points, or nil when the
// cache was skipped at Load.
func (w *Workspace) taskPoints(i int) []float64 {
	if !w.cached {
		return nil
	}
	return w.pts[w.ptsStart(i):w.ptsEnd[i]]
}

// pointDemand is the Lehoczky–Sha–Ding demand of task i at time t, with
// the reference ExactTest's exact summation order.
func (w *Workspace) pointDemand(i int, blocking, t float64) float64 {
	demand := blocking + w.tasks[i].Cost
	for j := 0; j < i; j++ {
		demand += w.tasks[j].Cost * math.Ceil(t/w.tasks[j].Period)
	}
	return demand
}

// rtaTask runs the reference response-time iteration for one task,
// returning the bound at which iteration stopped and whether it converged
// within the period. The arithmetic is identical to ResponseTimeAnalysis.
func (w *Workspace) rtaTask(i int, blocking float64) (r float64, ok bool) {
	t := w.tasks[i]
	r = blocking + t.Cost
	for j := 0; j < i; j++ {
		r += w.tasks[j].Cost
	}
	for {
		if r > t.Period {
			return r, false
		}
		next := blocking + t.Cost
		for j := 0; j < i; j++ {
			next += w.tasks[j].Cost * math.Ceil(r/w.tasks[j].Period)
		}
		if next <= r {
			return r, true
		}
		r = next
	}
}

// taskAtPoints is the per-task existence check of the exact test over the
// cached (or scratch-built) points, trying the remembered witness first.
// The verdict is independent of evaluation order, so the witness shortcut
// cannot change it.
func (w *Workspace) taskAtPoints(i int, blocking float64) bool {
	pts := w.taskPoints(i)
	if pts == nil {
		w.scratch = appendPoints(w.scratch[:0], w.tasks, i)
		slices.Sort(w.scratch)
		w.scratch = w.scratch[:dedupe(w.scratch)]
		pts = w.scratch
	}
	if wi := w.witness[i]; wi >= 0 && wi < len(pts) &&
		w.pointDemand(i, blocking, pts[wi]) <= pts[wi] {
		w.counters.WitnessHits++
		return true
	}
	for k, t := range pts {
		if w.pointDemand(i, blocking, t) <= t {
			w.witness[i] = k
			return true
		}
	}
	return false
}

// taskOK is the verdict-only per-task check used by Schedulable: the
// witness time first (one demand evaluation), then the response-time
// iteration. The task is schedulable iff demand(t) ≤ t for some
// t ∈ (0, P_i] — any such time certifies it, not only a scheduling point —
// so a passing witness settles the verdict, and on a miss the reference
// iteration decides. Both sides compute reference-identical arithmetic and
// the two criteria are equivalent for this task model, so the verdict
// matches the reference tests.
func (w *Workspace) taskOK(i int, blocking float64) bool {
	if wt := w.witnessT[i]; wt > 0 &&
		w.pointDemand(i, blocking, wt) <= wt {
		w.counters.WitnessHits++
		return true
	}
	r, ok := w.rtaTask(i, blocking)
	if ok {
		// The converged response time satisfies demand(r) ≤ r and
		// r ≤ P_i, so it is the next probe's one-shot witness.
		w.witnessT[i] = r
	}
	return ok
}

// Schedulable reports the verdict of the exact test for the current costs
// with zero allocations. It is the saturation search's probe: the first
// failing task of the previous failing call is re-tested first, so probes
// at loads above a known failure exit after one task.
func (w *Workspace) Schedulable(blocking float64) (bool, error) {
	if err := w.validate(blocking); err != nil {
		return false, err
	}
	w.counters.Schedulable++
	if lf := w.lastFail; lf >= 0 && lf < len(w.tasks) {
		if !w.taskOK(lf, blocking) {
			w.counters.LastFailHits++
			return false, nil
		}
		w.lastFail = -1
	}
	for i := range w.tasks {
		if !w.taskOK(i, blocking) {
			w.lastFail = i
			return false, nil
		}
	}
	w.lastFail = -1
	return true, nil
}

// ExactTest evaluates the Lehoczky–Sha–Ding criterion over the cached
// scheduling points with zero allocations (for sets within the point-cache
// bound), bit-identical to the package-level ExactTest reference.
func (w *Workspace) ExactTest(blocking float64) (Result, error) {
	if err := w.validate(blocking); err != nil {
		return Result{}, err
	}
	w.counters.ExactTests++
	w.ensurePoints()
	res := Result{Schedulable: true, FirstFailure: -1}
	for i := range w.tasks {
		if w.taskAtPoints(i, blocking) {
			continue
		}
		res.Schedulable = false
		res.FirstFailure = i
		break
	}
	return res, nil
}

// ResponseTimeAnalysis runs the reference response-time iteration over the
// current costs without allocating. The returned Result's ResponseTimes
// slice aliases an internal buffer that is overwritten by the next call
// (and by Load); copy it if it must outlive the next probe.
func (w *Workspace) ResponseTimeAnalysis(blocking float64) (Result, error) {
	if err := w.validate(blocking); err != nil {
		return Result{}, err
	}
	w.counters.RTAs++
	res := Result{
		Schedulable:   true,
		FirstFailure:  -1,
		ResponseTimes: w.resp[:len(w.tasks)],
	}
	for i, t := range w.tasks {
		r := blocking + t.Cost
		for j := 0; j < i; j++ {
			r += w.tasks[j].Cost
		}
		for {
			if r > t.Period {
				res.ResponseTimes[i] = r
				if res.Schedulable {
					res.Schedulable = false
					res.FirstFailure = i
				}
				break
			}
			next := blocking + t.Cost
			for j := 0; j < i; j++ {
				next += w.tasks[j].Cost * math.Ceil(r/w.tasks[j].Period)
			}
			if next <= r {
				res.ResponseTimes[i] = r
				break
			}
			r = next
		}
	}
	return res, nil
}
