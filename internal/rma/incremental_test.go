package rma

import (
	"math"
	"math/rand"
	"testing"
)

// fullResp runs the retained reference analysis and returns its response
// times (valid even when the set is unschedulable).
func fullResp(t *testing.T, ts TaskSet, blocking float64) []float64 {
	t.Helper()
	res, err := ResponseTimeAnalysis(ts, blocking)
	if err != nil {
		t.Fatalf("ResponseTimeAnalysis: %v", err)
	}
	return res.ResponseTimes
}

// checkAgainstFull asserts the workspace state is bit-identical to a
// from-scratch analysis of the same task array.
func checkAgainstFull(t *testing.T, w *Incremental, step int) {
	t.Helper()
	if w.Len() == 0 {
		if !w.Schedulable() || w.FirstFailure() != -1 {
			t.Fatalf("step %d: empty workspace must be vacuously schedulable", step)
		}
		return
	}
	ts := make(TaskSet, w.Len())
	for i := range ts {
		ts[i] = w.Task(i)
	}
	res, err := ResponseTimeAnalysis(ts, w.Blocking())
	if err != nil {
		t.Fatalf("step %d: reference analysis: %v", step, err)
	}
	for i, want := range res.ResponseTimes {
		if got := w.ResponseTime(i); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("step %d task %d: incremental response %v != full %v", step, i, got, want)
		}
	}
	if got, want := w.Schedulable(), res.Schedulable; got != want {
		t.Fatalf("step %d: incremental schedulable=%v, full=%v", step, got, want)
	}
	wantFF := res.FirstFailure
	if res.Schedulable {
		wantFF = -1
	}
	if got := w.FirstFailure(); got != wantFF {
		t.Fatalf("step %d: incremental firstFailure=%d, full=%d", step, got, wantFF)
	}
}

// rmIndex returns a stable insertion index for period p: after every
// resident task with Period ≤ p.
func rmIndex(w *Incremental, p float64) int {
	i := 0
	for i < w.Len() && w.Task(i).Period <= p {
		i++
	}
	return i
}

func TestIncrementalMatchesFullAnalysis(t *testing.T) {
	periods := []float64{0.002, 0.005, 0.005, 0.01, 0.01, 0.01, 0.02, 0.05}
	costs := []float64{50e-6, 120e-6, 256e-6, 400e-6, 900e-6, 2.2e-3}
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		blocking := []float64{0, 16e-6, 1.1e-3}[seed%3]
		var w Incremental
		if err := w.Reset(blocking); err != nil {
			t.Fatalf("Reset: %v", err)
		}
		for step := 0; step < 60; step++ {
			switch op := rng.Intn(10); {
			case op < 5 || w.Len() == 0: // add
				task := Task{Cost: costs[rng.Intn(len(costs))], Period: periods[rng.Intn(len(periods))]}
				i := rmIndex(&w, task.Period)
				re, err := w.Insert(i, task)
				if err != nil {
					t.Fatalf("seed %d step %d: Insert: %v", seed, step, err)
				}
				if want := w.Len() - i; re != want {
					t.Fatalf("seed %d step %d: Insert reprobed %d, want %d", seed, step, re, want)
				}
			case op < 7: // remove
				i := rng.Intn(w.Len())
				re, err := w.Remove(i)
				if err != nil {
					t.Fatalf("seed %d step %d: Remove: %v", seed, step, err)
				}
				if want := w.Len() - i; re != want {
					t.Fatalf("seed %d step %d: Remove reprobed %d, want %d", seed, step, re, want)
				}
			case op < 9: // modify cost in place
				i := rng.Intn(w.Len())
				task := w.Task(i)
				task.Cost = costs[rng.Intn(len(costs))]
				if _, err := w.Set(i, task); err != nil {
					t.Fatalf("seed %d step %d: Set: %v", seed, step, err)
				}
			default: // rebase blocking
				if _, err := w.Rebase(float64(rng.Intn(3)) * 333e-6); err != nil {
					t.Fatalf("seed %d step %d: Rebase: %v", seed, step, err)
				}
			}
			checkAgainstFull(t, &w, step)
		}
	}
}

func TestIncrementalPrefixUntouched(t *testing.T) {
	// Editing at index k must leave response times of tasks < k bitwise
	// untouched — not merely recomputed to equal values.
	var w Incremental
	if err := w.Reset(1e-4); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		task := Task{Cost: 200e-6, Period: 0.005 * float64(i+1)}
		if _, err := w.Insert(w.Len(), task); err != nil {
			t.Fatal(err)
		}
	}
	before := append([]float64(nil), w.ResponseTimes()...)
	re, err := w.Insert(5, Task{Cost: 333e-6, Period: 0.025})
	if err != nil {
		t.Fatal(err)
	}
	if re != w.Len()-5 {
		t.Fatalf("reprobed %d, want %d", re, w.Len()-5)
	}
	for i := 0; i < 5; i++ {
		if math.Float64bits(w.ResponseTime(i)) != math.Float64bits(before[i]) {
			t.Fatalf("prefix response %d changed: %v -> %v", i, before[i], w.ResponseTime(i))
		}
	}
	checkAgainstFull(t, &w, 0)
}

func TestIncrementalRejectsBadEdits(t *testing.T) {
	var w Incremental
	if err := w.Reset(0); err != nil {
		t.Fatal(err)
	}
	if err := w.Reset(math.NaN()); err == nil {
		t.Fatal("Reset(NaN) must fail")
	}
	if _, err := w.Insert(1, Task{Cost: 1, Period: 1}); err == nil {
		t.Fatal("Insert out of range must fail")
	}
	if _, err := w.Insert(0, Task{Cost: -1, Period: 1}); err == nil {
		t.Fatal("Insert negative cost must fail")
	}
	if _, err := w.Insert(0, Task{Cost: 1, Period: 0.010}); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Insert(0, Task{Cost: 1, Period: 0.020}); err == nil {
		t.Fatal("Insert violating RM order must fail")
	}
	if _, err := w.Insert(1, Task{Cost: 1, Period: 0.005}); err == nil {
		t.Fatal("Insert violating RM order must fail")
	}
	if _, err := w.Set(0, Task{Cost: 1, Period: math.Inf(1)}); err == nil {
		t.Fatal("Set infinite period must fail")
	}
	if _, err := w.Remove(3); err == nil {
		t.Fatal("Remove out of range must fail")
	}
	if _, err := w.Rebase(-1); err == nil {
		t.Fatal("Rebase(-1) must fail")
	}
}

func TestIncrementalEditAllocs(t *testing.T) {
	// A steady-state add/remove cycle at stable capacity allocates nothing.
	var w Incremental
	if err := w.Reset(1e-4); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 64; i++ {
		if _, err := w.Insert(w.Len(), Task{Cost: 20e-6, Period: 0.01 * float64(i+1)}); err != nil {
			t.Fatal(err)
		}
	}
	task := Task{Cost: 40e-6, Period: 0.3}
	allocs := testing.AllocsPerRun(100, func() {
		i := rmIndex(&w, task.Period)
		if _, err := w.Insert(i, task); err != nil {
			panic(err)
		}
		if _, err := w.Remove(i); err != nil {
			panic(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state edit allocates %v per op, want 0", allocs)
	}
}
