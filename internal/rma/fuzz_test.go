package rma

import (
	"math"
	"math/rand"
	"testing"
)

// FuzzExactTest cross-checks the allocation-free workspace kernels against
// the reference implementations on fuzzer-chosen task sets: same verdict,
// same first failure, bit-identical response times. The corpus entry is a
// (seed, size, blocking, scale) tuple; the set itself is derived
// deterministically so crashes replay.
func FuzzExactTest(f *testing.F) {
	f.Add(int64(1), uint8(3), 0.01, 1.0)
	f.Add(int64(7), uint8(1), 0.0, 4.0)
	f.Add(int64(42), uint8(17), 0.2, 0.25)
	f.Add(int64(9), uint8(8), 1e-9, 1e3)
	f.Fuzz(func(t *testing.T, seed int64, n uint8, blocking, scale float64) {
		if n == 0 || n > 24 {
			return
		}
		if !(blocking >= 0) || math.IsInf(blocking, 0) {
			return
		}
		if !(scale > 0) || math.IsInf(scale, 0) {
			return
		}
		rng := rand.New(rand.NewSource(seed))
		ts := make(TaskSet, n)
		for i := range ts {
			period := math.Exp(rng.Float64()*6 - 3)
			ts[i] = Task{Cost: rng.Float64() * period * 0.5, Period: period}
		}

		var ws Workspace
		if err := ws.Load(ts); err != nil {
			t.Fatalf("Load: %v", err)
		}
		ws.ScaleCosts(scale)
		scaled := ts.SortRM()
		for i := range scaled {
			scaled[i].Cost *= scale
		}
		for i := range scaled {
			if math.IsInf(scaled[i].Cost, 0) {
				return // overflowed cost: both paths reject, nothing to compare
			}
		}

		refExact, err := ExactTest(scaled, blocking)
		if err != nil {
			t.Fatalf("reference ExactTest: %v", err)
		}
		wsExact, err := ws.ExactTest(blocking)
		if err != nil {
			t.Fatalf("workspace ExactTest: %v", err)
		}
		if wsExact.Schedulable != refExact.Schedulable || wsExact.FirstFailure != refExact.FirstFailure {
			t.Fatalf("workspace ExactTest (%v,%d) != reference (%v,%d) for seed=%d n=%d blocking=%g scale=%g",
				wsExact.Schedulable, wsExact.FirstFailure,
				refExact.Schedulable, refExact.FirstFailure, seed, n, blocking, scale)
		}

		refRTA, err := ResponseTimeAnalysis(scaled, blocking)
		if err != nil {
			t.Fatalf("reference RTA: %v", err)
		}
		if refRTA.Schedulable != refExact.Schedulable {
			t.Fatalf("reference RTA and ExactTest disagree for seed=%d n=%d blocking=%g scale=%g",
				seed, n, blocking, scale)
		}
		wsRTA, err := ws.ResponseTimeAnalysis(blocking)
		if err != nil {
			t.Fatalf("workspace RTA: %v", err)
		}
		for i := range refRTA.ResponseTimes {
			if math.Float64bits(wsRTA.ResponseTimes[i]) != math.Float64bits(refRTA.ResponseTimes[i]) {
				t.Fatalf("task %d response %v != reference %v", i, wsRTA.ResponseTimes[i], refRTA.ResponseTimes[i])
			}
		}

		ok, err := ws.Schedulable(blocking)
		if err != nil {
			t.Fatalf("workspace Schedulable: %v", err)
		}
		if ok != refExact.Schedulable {
			t.Fatalf("workspace Schedulable %v != reference %v", ok, refExact.Schedulable)
		}
	})
}
