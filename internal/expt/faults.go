package expt

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"ringsched/internal/breakdown"
	"ringsched/internal/core"
	"ringsched/internal/message"
	"ringsched/internal/progress"
	"ringsched/internal/tokensim"
)

func extensionFaultTolerance() Experiment {
	return Experiment{
		ID:    "EXT-FAULT",
		Title: "Extension: deadline misses under token-loss faults (survivability, per SAFENET motivation)",
		Run: func(ctx context.Context, cfg Config, obs progress.Progress) (Report, error) {
			cfg = cfg.withDefaults()
			const (
				n      = 12
				bw     = 100e6
				margin = 0.6 // run well inside the guarantee so slack exists
			)
			lossProbs := []float64{0, 1e-4, 1e-3, 1e-2}
			if cfg.Quick {
				lossProbs = []float64{0, 1e-3}
			}
			const recovery = 2e-3 // claim process ≈ 2 ms per loss

			gen := message.Generator{Streams: n, MeanPeriod: 100e-3, PeriodRatio: 10}
			set, err := gen.Draw(rand.New(rand.NewSource(cfg.Seed)))
			if err != nil {
				return Report{}, err
			}

			var b strings.Builder
			fmt.Fprintf(&b, "token-loss faults, recovery %.1f ms, load %.0f%% of saturation, horizon 10 s\n",
				recovery*1e3, margin*100)
			fmt.Fprintf(&b, "%12s %16s %10s %16s %10s\n",
				"loss prob", "pdp misses", "losses", "fddi misses", "losses")
			rep := Report{ID: "EXT-FAULT", Title: "Fault tolerance", Pass: true}

			// PDP (modified) at 60 % of its saturation.
			pdp := core.NewModifiedPDP(bw)
			pdp.Net = pdp.Net.WithStations(n)
			satP, err := breakdown.Saturate(set, pdp, bw, breakdown.SaturateOptions{})
			if err != nil {
				return Report{}, err
			}
			// TTP at 60 % of its saturation.
			ttp := core.NewTTP(bw)
			ttp.Net = ttp.Net.WithStations(n)
			satT, err := breakdown.Saturate(set, ttp, bw, breakdown.SaturateOptions{})
			if err != nil {
				return Report{}, err
			}
			if !satP.Feasible || !satT.Feasible {
				return Report{}, fmt.Errorf("fault experiment workload infeasible")
			}

			for _, p := range lossProbs {
				var faultsP, faultsT *tokensim.Faults
				if p > 0 {
					faultsP = &tokensim.Faults{TokenLossProb: p, RecoveryTime: recovery,
						Rng: rand.New(rand.NewSource(cfg.Seed + 1))}
					faultsT = &tokensim.Faults{TokenLossProb: p, RecoveryTime: recovery,
						Rng: rand.New(rand.NewSource(cfg.Seed + 2))}
				}

				testP := satP.Set.Scale(margin)
				wP, err := tokensim.NewWorkload(testP, n, tokensim.PhasingSynchronized, nil)
				if err != nil {
					return Report{}, err
				}
				resP, err := tokensim.PDPSim{
					Net: pdp.Net, Frame: pdp.Frame, Variant: core.Modified8025,
					Workload: wP, AsyncSaturated: true,
					TokenPass: tokensim.PassAverageHalfTheta,
					Horizon:   10, Faults: faultsP,
					Progress: obs,
				}.RunContext(ctx)
				if err != nil {
					return Report{}, err
				}

				testT := satT.Set.Scale(margin)
				wT, err := tokensim.NewWorkload(testT, n, tokensim.PhasingSynchronized, nil)
				if err != nil {
					return Report{}, err
				}
				simT, err := tokensim.NewTTPSimFromAnalysis(ttp, testT, wT)
				if err != nil {
					return Report{}, err
				}
				simT.AsyncSaturated = true
				simT.Horizon = 10
				simT.Faults = faultsT
				simT.Progress = obs
				resT, err := simT.RunContext(ctx)
				if err != nil {
					return Report{}, err
				}

				fmt.Fprintf(&b, "%12.4g %16d %10d %16d %10d\n",
					p, resP.DeadlineMisses, resP.TokenLosses,
					resT.DeadlineMisses, resT.TokenLosses)
				rep.addValue(fmt.Sprintf("pdp_misses_p%g", p), float64(resP.DeadlineMisses))
				rep.addValue(fmt.Sprintf("fddi_misses_p%g", p), float64(resT.DeadlineMisses))

				if p == 0 && (resP.DeadlineMisses > 0 || resT.DeadlineMisses > 0) {
					rep.Pass = false
					rep.notef("fault-free baseline missed deadlines")
				}
			}
			rep.notef("both protocols absorb rare faults within their slack; misses appear as loss rate × recovery approaches the per-period slack")
			rep.Text = b.String()
			return rep, nil
		},
	}
}
