package expt

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"ringsched/internal/breakdown"
	"ringsched/internal/core"
	"ringsched/internal/faults"
	"ringsched/internal/message"
	"ringsched/internal/progress"
	"ringsched/internal/tokensim"
)

// faultBench is the fixed plant EXT-FAULT sweeps: both protocols at 60 % of
// their own saturation load, so slack exists for rare faults to be absorbed
// and sustained faults to consume.
type faultBench struct {
	n          int
	pdp        core.PDP
	ttp        core.TTP
	setP, setT message.Set
	horizon    float64
	obs        progress.Progress
}

func newFaultBench(cfg Config, obs progress.Progress) (faultBench, error) {
	const (
		n      = 12
		bw     = 100e6
		margin = 0.6 // run well inside the guarantee so slack exists
	)
	gen := message.Generator{Streams: n, MeanPeriod: 100e-3, PeriodRatio: 10}
	set, err := gen.Draw(rand.New(rand.NewSource(cfg.Seed)))
	if err != nil {
		return faultBench{}, err
	}
	pdp := core.NewModifiedPDP(bw)
	pdp.Net = pdp.Net.WithStations(n)
	satP, err := breakdown.Saturate(set, pdp, bw, breakdown.SaturateOptions{})
	if err != nil {
		return faultBench{}, err
	}
	ttp := core.NewTTP(bw)
	ttp.Net = ttp.Net.WithStations(n)
	satT, err := breakdown.Saturate(set, ttp, bw, breakdown.SaturateOptions{})
	if err != nil {
		return faultBench{}, err
	}
	if !satP.Feasible || !satT.Feasible {
		return faultBench{}, fmt.Errorf("fault experiment workload infeasible")
	}
	return faultBench{
		n: n, pdp: pdp, ttp: ttp,
		setP: satP.Set.Scale(margin), setT: satT.Set.Scale(margin),
		horizon: 10, obs: obs,
	}, nil
}

// point runs both simulators under one fault model (nil for a clean ring)
// and returns their results.
func (fb faultBench) point(ctx context.Context, fm *tokensim.Faults) (resP, resT tokensim.Result, err error) {
	wP, err := tokensim.NewWorkload(fb.setP, fb.n, tokensim.PhasingSynchronized, nil)
	if err != nil {
		return resP, resT, err
	}
	resP, err = tokensim.PDPSim{
		Net: fb.pdp.Net, Frame: fb.pdp.Frame, Variant: core.Modified8025,
		Workload: wP, AsyncSaturated: true,
		TokenPass: tokensim.PassAverageHalfTheta,
		Horizon:   fb.horizon, Faults: fm,
		Progress: fb.obs,
	}.RunContext(ctx)
	if err != nil {
		return resP, resT, err
	}
	wT, err := tokensim.NewWorkload(fb.setT, fb.n, tokensim.PhasingSynchronized, nil)
	if err != nil {
		return resP, resT, err
	}
	simT, err := tokensim.NewTTPSimFromAnalysis(fb.ttp, fb.setT, wT)
	if err != nil {
		return resP, resT, err
	}
	simT.AsyncSaturated = true
	simT.Horizon = fb.horizon
	simT.Faults = fm
	simT.Progress = fb.obs
	resT, err = simT.RunContext(ctx)
	return resP, resT, err
}

// worstStreamMisses is the per-stream view of a run: the heaviest-hit
// station's missed plus backlogged-past-deadline count. The aggregate can
// hide a single starved stream; this column cannot.
func worstStreamMisses(r tokensim.Result) (station, misses int) {
	for _, st := range r.Stations {
		if m := st.Missed + st.Backlogged; m > misses {
			station, misses = st.Station, m
		}
	}
	return station, misses
}

// verdict renders a schedulability outcome as a fixed-width cell.
func verdict(ok bool) string {
	if ok {
		return "GUAR"
	}
	return "no"
}

// faultRow runs one sweep point and renders one table row. Exposed to the
// tests so the zero-fault regression can assert byte equality between a nil
// model and an inactive (all-probabilities-zero) model.
func (fb faultBench) faultRow(ctx context.Context, label string, fm *tokensim.Faults) (string, tokensim.Result, tokensim.Result, error) {
	resP, resT, err := fb.point(ctx, fm)
	if err != nil {
		return "", resP, resT, err
	}
	bP := fb.pdp.FaultBudgetFor(fm, fb.setP)
	repP, err := fb.pdp.FaultReport(fb.setP, bP)
	if err != nil {
		return "", resP, resT, err
	}
	bT := fb.ttp.FaultBudgetFor(fm, fb.setT)
	repT, err := fb.ttp.FaultReport(fb.setT, bT)
	if err != nil {
		return "", resP, resT, err
	}
	_, worstP := worstStreamMisses(resP)
	_, worstT := worstStreamMisses(resT)
	row := fmt.Sprintf("%-22s %9d %6d %6d %6s %9d %6d %6d %6s\n",
		label,
		resP.DeadlineMisses, worstP, resP.TokenLosses, verdict(repP.Schedulable),
		resT.DeadlineMisses, worstT, resT.TokenLosses, verdict(repT.Schedulable))
	return row, resP, resT, nil
}

func faultTableHeader() string {
	return fmt.Sprintf("%-22s %9s %6s %6s %6s %9s %6s %6s %6s\n",
		"fault model", "pdp miss", "worst", "loss", "bound",
		"fddi miss", "worst", "loss", "bound")
}

func extensionFaultTolerance() Experiment {
	return Experiment{
		ID:    "EXT-FAULT",
		Title: "Extension: degraded-mode sweep under token-loss, bursty-corruption and crash faults (survivability, per SAFENET motivation)",
		Run: func(ctx context.Context, cfg Config, obs progress.Progress) (Report, error) {
			cfg = cfg.withDefaults()
			fb, err := newFaultBench(cfg, obs)
			if err != nil {
				return Report{}, err
			}
			const recovery = 2e-3 // claim process ≈ 2 ms per loss

			lossProbs := []float64{0, 1e-4, 1e-3, 1e-2}
			burstLens := []float64{4, 16, 64}
			if cfg.Quick {
				lossProbs = []float64{0, 1e-3}
				burstLens = []float64{16}
			}

			var b strings.Builder
			fmt.Fprintf(&b, "load 60%% of saturation, horizon %g s, recovery %.1f ms; 'worst' = heaviest-hit stream's misses, 'bound' = fault-aware analytic verdict\n",
				fb.horizon, recovery*1e3)
			b.WriteString(faultTableHeader())
			rep := Report{ID: "EXT-FAULT", Title: "Fault tolerance", Pass: true}

			record := func(key string, resP, resT tokensim.Result) {
				_, worstP := worstStreamMisses(resP)
				_, worstT := worstStreamMisses(resT)
				rep.addValue("pdp_misses_"+key, float64(resP.DeadlineMisses))
				rep.addValue("pdp_worst_stream_"+key, float64(worstP))
				rep.addValue("fddi_misses_"+key, float64(resT.DeadlineMisses))
				rep.addValue("fddi_worst_stream_"+key, float64(worstT))
			}

			// Token-loss sweep: each loss costs a fixed claim/beacon recovery.
			prevP, prevT := -1, -1
			for _, p := range lossProbs {
				var fm *tokensim.Faults
				if p > 0 {
					fm = &tokensim.Faults{
						TokenLossProb: p,
						Recovery:      faults.Recovery{Fixed: recovery},
						Seed:          cfg.Seed,
					}
				}
				row, resP, resT, err := fb.faultRow(ctx, fmt.Sprintf("loss p=%g", p), fm)
				if err != nil {
					return Report{}, err
				}
				b.WriteString(row)
				record(fmt.Sprintf("p%g", p), resP, resT)
				if p == 0 && (resP.DeadlineMisses > 0 || resT.DeadlineMisses > 0) {
					rep.Pass = false
					rep.notef("fault-free baseline missed deadlines")
				}
				if resP.DeadlineMisses < prevP || resT.DeadlineMisses < prevT {
					rep.notef("non-monotone misses across loss sweep (statistical slack)")
				}
				prevP, prevT = resP.DeadlineMisses, resT.DeadlineMisses
			}

			// Bursty-corruption sweep: Gilbert–Elliott channel, growing burst
			// length at fixed mean gap — same steady-state corruption applied
			// in longer clumps.
			for _, burst := range burstLens {
				fm := &tokensim.Faults{
					Channel: faults.Channel{
						Kind:             faults.ChannelGilbertElliott,
						BurstCorruptProb: 0.5,
						MeanBurst:        burst,
						MeanGap:          1000,
					},
					Seed: cfg.Seed,
				}
				row, resP, resT, err := fb.faultRow(ctx, fmt.Sprintf("gilbert burst=%g", burst), fm)
				if err != nil {
					return Report{}, err
				}
				b.WriteString(row)
				record(fmt.Sprintf("burst%g", burst), resP, resT)
				if resP.CorruptedFrames == 0 && resT.CorruptedFrames == 0 {
					rep.Pass = false
					rep.notef("gilbert channel corrupted no frames at burst=%g", burst)
				}
			}

			// Crash/restart point: flaky stations with bypass latency.
			if !cfg.Quick {
				fm := &tokensim.Faults{
					Crash: faults.Crash{Rate: 0.5, MeanDowntime: 50e-3, Bypass: 1e-4},
					Seed:  cfg.Seed,
				}
				row, resP, resT, err := fb.faultRow(ctx, "crash rate=0.5/s", fm)
				if err != nil {
					return Report{}, err
				}
				b.WriteString(row)
				record("crash", resP, resT)
				rep.addValue("pdp_crashes", float64(resP.Crashes))
				rep.addValue("fddi_crashes", float64(resT.Crashes))
			}

			rep.notef("both protocols absorb rare faults within their slack; sustained faults starve individual streams before the aggregate shows it")
			rep.Text = b.String()
			return rep, nil
		},
	}
}
