package expt

import (
	"context"
	"errors"
	"math"
	"testing"

	"ringsched/internal/breakdown"
)

// seriesOf builds a breakdown.Series from raw means for helper tests.
func seriesOf(name string, bws, means []float64) breakdown.Series {
	s := breakdown.Series{Name: name}
	for i := range bws {
		s.Points = append(s.Points, breakdown.Point{
			BandwidthBPS: bws[i],
			Estimate:     breakdown.Estimate{Mean: means[i]},
		})
	}
	return s
}

func isNaN(x float64) bool { return math.IsNaN(x) }

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"ABL-ALLOC", "ABL-FRAME", "ABL-N", "ABL-PERIOD",
		"BASE-RM88", "CLAIM-33PCT", "CLAIM-HIGHBW", "CLAIM-LOWBW",
		"CLAIM-MOD", "CLAIM-TTRT", "EXT-FAULT", "EXT-PHASE", "EXT-PRIO", "FIG1", "VAL-SIM",
	}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("registry has %d experiments, want %d", len(all), len(want))
	}
	for i, e := range all {
		if e.ID != want[i] {
			t.Errorf("experiment %d = %q, want %q (sorted)", i, e.ID, want[i])
		}
		if e.Title == "" || e.Run == nil {
			t.Errorf("%s: missing title or runner", e.ID)
		}
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("FIG1")
	if err != nil {
		t.Fatal(err)
	}
	if e.ID != "FIG1" {
		t.Errorf("ByID returned %q", e.ID)
	}
	if _, err := ByID("NOPE"); !errors.Is(err, ErrUnknownExperiment) {
		t.Errorf("unknown id: %v, want ErrUnknownExperiment", err)
	}
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.Samples != 100 || cfg.Seed != 1993 || cfg.PointsPerDecade != 3 {
		t.Errorf("defaults = %+v", cfg)
	}
	quick := Config{Quick: true, Samples: 500, PointsPerDecade: 5}.withDefaults()
	if quick.Samples > 25 || quick.PointsPerDecade > 2 {
		t.Errorf("quick config not trimmed: %+v", quick)
	}
	keep := Config{Samples: 7, Seed: 3, PointsPerDecade: 1}.withDefaults()
	if keep.Samples != 7 || keep.Seed != 3 || keep.PointsPerDecade != 1 {
		t.Errorf("explicit config overridden: %+v", keep)
	}
}

func TestReportHelpers(t *testing.T) {
	var r Report
	r.addValue("k", 1.5)
	if r.Values["k"] != 1.5 {
		t.Error("addValue")
	}
	r.notef("x=%d", 3)
	if len(r.Notes) != 1 || r.Notes[0] != "x=3" {
		t.Errorf("notef: %v", r.Notes)
	}
}

// TestClaimExperimentsQuick runs the cheap analytic experiments end to end
// in quick mode; the full suite runs via the benchmark harness.
func TestClaimExperimentsQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments skipped in -short mode")
	}
	cfg := Config{Quick: true, Samples: 15}
	for _, id := range []string{"CLAIM-33PCT", "CLAIM-TTRT", "BASE-RM88"} {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			e, err := ByID(id)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := e.Run(context.Background(), cfg, nil)
			if err != nil {
				t.Fatal(err)
			}
			if !rep.Pass {
				t.Errorf("%s did not reproduce the claim: %v", id, rep.Notes)
			}
			if rep.Text == "" {
				t.Errorf("%s produced no table", id)
			}
		})
	}
}

func TestFig1Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments skipped in -short mode")
	}
	e, err := ByID("FIG1")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run(context.Background(), Config{Quick: true, Samples: 20}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Errorf("FIG1 shape checks failed: %v", rep.Notes)
	}
	for _, key := range []string{"crossover_bw_mbps", "modified_peak_util", "fddi_at_1gbps"} {
		if _, ok := rep.Values[key]; !ok {
			t.Errorf("FIG1 missing value %q", key)
		}
	}
}

func TestValSimQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiments skipped in -short mode")
	}
	e, err := ByID("VAL-SIM")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := e.Run(context.Background(), Config{Quick: true}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Errorf("VAL-SIM failed: %v", rep.Notes)
	}
	if rep.Values["total_misses"] != 0 {
		t.Errorf("total misses = %v, want 0", rep.Values["total_misses"])
	}
}

func TestCrossoverBandwidth(t *testing.T) {
	a := seriesOf("a", []float64{1e6, 1e7, 1e8}, []float64{0.5, 0.4, 0.1})
	b := seriesOf("b", []float64{1e6, 1e7, 1e8}, []float64{0.1, 0.4, 0.8})
	cross := crossoverBandwidth(a, b)
	if cross < 1e6 || cross > 1e8 {
		t.Errorf("crossover = %v, want inside the grid", cross)
	}
	// No crossover when a always leads.
	c := seriesOf("c", []float64{1e6, 1e7}, []float64{0.9, 0.9})
	d := seriesOf("d", []float64{1e6, 1e7}, []float64{0.1, 0.2})
	if got := crossoverBandwidth(c, d); !isNaN(got) {
		t.Errorf("crossover = %v, want NaN", got)
	}
}

func TestPeak(t *testing.T) {
	s := seriesOf("s", []float64{1, 2, 3}, []float64{0.2, 0.9, 0.5})
	bw, mean := peak(s)
	if bw != 2 || mean != 0.9 {
		t.Errorf("peak = (%v, %v), want (2, 0.9)", bw, mean)
	}
}
