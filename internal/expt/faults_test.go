package expt

import (
	"context"
	"reflect"
	"strings"
	"testing"

	"ringsched/internal/tokensim"
)

// The acceptance bar: with every fault probability zero, the experiment
// table rows must be byte-identical whether no fault model is configured at
// all or an inactive one is passed through the full simulation pipeline.
func TestFaultRowInactiveModelByteEqual(t *testing.T) {
	cfg := Config{Quick: true}.withDefaults()
	fb, err := newFaultBench(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	rowNil, resPNil, resTNil, err := fb.faultRow(ctx, "clean", nil)
	if err != nil {
		t.Fatal(err)
	}
	rowZero, resPZero, resTZero, err := fb.faultRow(ctx, "clean", &tokensim.Faults{Seed: cfg.Seed})
	if err != nil {
		t.Fatal(err)
	}
	if rowNil != rowZero {
		t.Errorf("zero-fault rows differ:\nnil:  %q\nzero: %q", rowNil, rowZero)
	}
	if !reflect.DeepEqual(resPNil, resPZero) {
		t.Error("PDP results diverge between nil and inactive fault model")
	}
	if !reflect.DeepEqual(resTNil, resTZero) {
		t.Error("TTP results diverge between nil and inactive fault model")
	}
}

// The whole EXT-FAULT table must be deterministic for a fixed seed: two
// full quick runs render byte-identical text.
func TestFaultExperimentDeterministicTable(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment run")
	}
	e, err := ByID("EXT-FAULT")
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{Quick: true}
	first, err := RunOne(context.Background(), e, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	second, err := RunOne(context.Background(), e, cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if first.Text != second.Text {
		t.Errorf("EXT-FAULT table not deterministic:\n--- first ---\n%s--- second ---\n%s",
			first.Text, second.Text)
	}
	if !first.Pass {
		t.Errorf("EXT-FAULT failed: %v\n%s", first.Notes, first.Text)
	}
	if !strings.Contains(first.Text, "worst") {
		t.Error("table lacks the per-stream 'worst' column")
	}
	for _, key := range []string{"pdp_worst_stream_p0", "fddi_worst_stream_p0"} {
		if _, ok := first.Values[key]; !ok {
			t.Errorf("missing per-stream value %q in %v", key, first.Values)
		}
	}
}
