package expt

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"ringsched/internal/breakdown"
	"ringsched/internal/core"
	"ringsched/internal/message"
	"ringsched/internal/progress"
	"ringsched/internal/stats"
	"ringsched/internal/tokensim"
)

func extensionPhasing() Experiment {
	return Experiment{
		ID: "EXT-PHASE",
		Title: "Extension: critical-instant pessimism — worst responses under synchronized vs " +
			"random phasings",
		Run: func(ctx context.Context, cfg Config, obs progress.Progress) (Report, error) {
			cfg = cfg.withDefaults()
			const (
				n      = 12
				bw     = 100e6
				margin = 0.85
			)
			phasings := 8
			if cfg.Quick {
				phasings = 3
			}

			gen := message.Generator{Streams: n, MeanPeriod: 100e-3, PeriodRatio: 10}
			set, err := gen.Draw(rand.New(rand.NewSource(cfg.Seed)))
			if err != nil {
				return Report{}, err
			}
			ttp := core.NewTTP(bw)
			ttp.Net = ttp.Net.WithStations(n)
			sat, err := breakdown.Saturate(set, ttp, bw, breakdown.SaturateOptions{})
			if err != nil {
				return Report{}, err
			}
			if !sat.Feasible {
				return Report{}, fmt.Errorf("phasing workload infeasible")
			}
			test := sat.Set.Scale(margin)

			runOne := func(ph tokensim.Phasing, rng *rand.Rand) (float64, int, error) {
				w, err := tokensim.NewWorkload(test, n, ph, rng)
				if err != nil {
					return 0, 0, err
				}
				sim, err := tokensim.NewTTPSimFromAnalysis(ttp, test, w)
				if err != nil {
					return 0, 0, err
				}
				sim.AsyncSaturated = true
				sim.Horizon = 3
				sim.Progress = obs
				res, err := sim.RunContext(ctx)
				if err != nil {
					return 0, 0, err
				}
				// Normalize responses by periods so streams are
				// comparable; take the worst across stations.
				worst := 0.0
				for _, s := range res.Stations {
					if v := s.MaxResponse / s.Stream.Period; v > worst {
						worst = v
					}
				}
				return worst, res.DeadlineMisses, nil
			}

			syncWorst, syncMisses, err := runOne(tokensim.PhasingSynchronized, nil)
			if err != nil {
				return Report{}, err
			}
			var randomAcc stats.Running
			randMisses := 0
			for i := 0; i < phasings; i++ {
				worst, misses, err := runOne(tokensim.PhasingRandom,
					rand.New(rand.NewSource(cfg.Seed+int64(i)+100)))
				if err != nil {
					return Report{}, err
				}
				randomAcc.Add(worst)
				randMisses += misses
			}

			var b strings.Builder
			fmt.Fprintf(&b, "FDDI at %.0f Mbps, load %.0f%% of saturation; worst response/period\n",
				bw/1e6, margin*100)
			fmt.Fprintf(&b, "%24s %16s %10s\n", "phasing", "worst resp/P", "misses")
			fmt.Fprintf(&b, "%24s %16.4f %10d\n", "synchronized (critical)", syncWorst, syncMisses)
			fmt.Fprintf(&b, "%24s %16.4f %10d  (max over %d phasings: %.4f)\n",
				"random (mean)", randomAcc.Mean(), randMisses, phasings, randomAcc.Max())

			rep := Report{ID: "EXT-PHASE", Title: "Phasing sensitivity", Text: b.String(), Pass: true}
			rep.addValue("sync_worst_resp_over_period", syncWorst)
			rep.addValue("random_mean_worst_resp_over_period", randomAcc.Mean())
			rep.addValue("total_misses", float64(syncMisses+randMisses))
			if syncMisses+randMisses > 0 {
				rep.Pass = false
				rep.notef("guaranteed set missed deadlines (%d sync, %d random)", syncMisses, randMisses)
			}
			if randomAcc.Max() > syncWorst*1.05 {
				rep.Pass = false
				rep.notef("a random phasing (%.4f) beat the critical instant (%.4f): analysis assumption violated",
					randomAcc.Max(), syncWorst)
			} else {
				rep.notef("synchronized arrivals dominate every sampled random phasing, as the critical-instant analyses assume")
			}
			return rep, nil
		},
	}
}
