package expt

import (
	"context"
	"fmt"
	"strings"

	"ringsched/internal/breakdown"
	"ringsched/internal/core"
	"ringsched/internal/frame"
	"ringsched/internal/message"
	"ringsched/internal/progress"
	"ringsched/internal/ttpalloc"
)

// ablationBandwidths is the small grid used by the "results were similar"
// ablations: one low-speed point where PDP leads, one high-speed point
// where TTP leads.
var _ablationBandwidths = []float64{4e6, 100e6}

func ablationPeriods() Experiment {
	return Experiment{
		ID:    "ABL-PERIOD",
		Title: "Sensitivity to mean period and max/min period ratio (paper: \"results were similar\")",
		Run: func(ctx context.Context, cfg Config, obs progress.Progress) (Report, error) {
			cfg = cfg.withDefaults()
			means := []float64{20e-3, 100e-3, 500e-3}
			ratios := []float64{2, 10, 100}
			if cfg.Quick {
				means = []float64{100e-3}
				ratios = []float64{2, 10}
			}
			var b strings.Builder
			fmt.Fprintf(&b, "%10s %8s %10s %16s %16s %16s\n",
				"mean (ms)", "ratio", "BW (Mbps)", "Modified 802.5", "IEEE 802.5", "FDDI")
			rep := Report{ID: "ABL-PERIOD", Title: "Period distribution ablation", Pass: true}
			for _, mean := range means {
				for _, ratio := range ratios {
					for _, bw := range _ablationBandwidths {
						est := cfg.estimator(breakdown.Estimator{
							Generator: message.Generator{Streams: 100, MeanPeriod: mean, PeriodRatio: ratio},
							Samples:   cfg.Samples,
							Seed:      cfg.Seed,
						}, obs)
						var row [3]float64
						for i, p := range protocolFactories() {
							e, err := est.EstimateContext(ctx, p.factory(bw), bw)
							if err != nil {
								return Report{}, err
							}
							row[i] = e.Mean
						}
						fmt.Fprintf(&b, "%10.0f %8.0f %10.0f %16.4f %16.4f %16.4f\n",
							mean*1e3, ratio, bw/1e6, row[0], row[1], row[2])
						key := fmt.Sprintf("mean%gms_ratio%g_bw%gmbps", mean*1e3, ratio, bw/1e6)
						rep.addValue(key+"_pdp_mod", row[0])
						rep.addValue(key+"_fddi", row[2])
						// The qualitative ordering should persist: PDP
						// leads at 4 Mbps, FDDI at 100 Mbps (allowing the
						// degenerate all-zero low-bandwidth cases).
						if bw == 100e6 && row[2] <= row[0] {
							rep.Pass = false
							rep.notef("FDDI did not lead at 100 Mbps for mean=%g ms ratio=%g", mean*1e3, ratio)
						}
					}
				}
			}
			if rep.Pass {
				rep.notef("protocol ordering is stable across period distributions")
			}
			rep.Text = b.String()
			return rep, nil
		},
	}
}

func ablationFrameSize() Experiment {
	return Experiment{
		ID:    "ABL-FRAME",
		Title: "Frame size trade-off: responsiveness vs per-frame overhead (Section 4.2)",
		Run: func(ctx context.Context, cfg Config, obs progress.Progress) (Report, error) {
			cfg = cfg.withDefaults()
			payloads := []float64{128, 512, 2048, 8192} // bits: 16 B – 1 KiB
			if cfg.Quick {
				payloads = []float64{128, 512, 2048}
			}
			var b strings.Builder
			fmt.Fprintf(&b, "%12s %10s %16s %16s %16s\n",
				"payload (B)", "BW (Mbps)", "Modified 802.5", "IEEE 802.5", "FDDI")
			rep := Report{ID: "ABL-FRAME", Title: "Frame size ablation", Pass: true}
			est := cfg.estimator(breakdown.PaperEstimator(cfg.Samples, cfg.Seed), obs)
			for _, info := range payloads {
				spec := frame.Spec{InfoBits: info, OvhdBits: frame.PaperOvhdBits}
				for _, bw := range _ablationBandwidths {
					mkPDP := func(v core.Variant) core.Analyzer {
						p := core.NewStandardPDP(bw)
						p.Frame = spec
						p.Variant = v
						return p
					}
					ttp := core.NewTTP(bw)
					ttp.SyncFrame = spec
					ttp.AsyncFrame = spec
					var row [3]float64
					for i, a := range []core.Analyzer{mkPDP(core.Modified8025), mkPDP(core.Standard8025), ttp} {
						e, err := est.EstimateContext(ctx, a, bw)
						if err != nil {
							return Report{}, err
						}
						row[i] = e.Mean
					}
					fmt.Fprintf(&b, "%12.0f %10.0f %16.4f %16.4f %16.4f\n",
						info/8, bw/1e6, row[0], row[1], row[2])
					key := fmt.Sprintf("info%gb_bw%gmbps", info, bw/1e6)
					rep.addValue(key+"_pdp_mod", row[0])
					rep.addValue(key+"_pdp_std", row[1])
					rep.addValue(key+"_fddi", row[2])
				}
			}
			rep.notef("larger frames amortize per-frame overhead but coarsen preemption; see the table for the trade-off")
			rep.Text = b.String()
			return rep, nil
		},
	}
}

func ablationStations() Experiment {
	return Experiment{
		ID:    "ABL-N",
		Title: "Sensitivity to station count",
		Run: func(ctx context.Context, cfg Config, obs progress.Progress) (Report, error) {
			cfg = cfg.withDefaults()
			counts := []int{10, 50, 100, 200}
			if cfg.Quick {
				counts = []int{10, 100}
			}
			var b strings.Builder
			fmt.Fprintf(&b, "%6s %10s %16s %16s %16s\n",
				"n", "BW (Mbps)", "Modified 802.5", "IEEE 802.5", "FDDI")
			rep := Report{ID: "ABL-N", Title: "Station count ablation", Pass: true}
			for _, n := range counts {
				est := cfg.estimator(breakdown.Estimator{
					Generator: message.Generator{Streams: n, MeanPeriod: 100e-3, PeriodRatio: 10},
					Samples:   cfg.Samples,
					Seed:      cfg.Seed,
				}, obs)
				for _, bw := range _ablationBandwidths {
					mkPDP := func(v core.Variant) core.Analyzer {
						p := core.NewStandardPDP(bw)
						p.Net = p.Net.WithStations(n)
						p.Variant = v
						return p
					}
					ttp := core.NewTTP(bw)
					ttp.Net = ttp.Net.WithStations(n)
					var row [3]float64
					for i, a := range []core.Analyzer{mkPDP(core.Modified8025), mkPDP(core.Standard8025), ttp} {
						e, err := est.EstimateContext(ctx, a, bw)
						if err != nil {
							return Report{}, err
						}
						row[i] = e.Mean
					}
					fmt.Fprintf(&b, "%6d %10.0f %16.4f %16.4f %16.4f\n",
						n, bw/1e6, row[0], row[1], row[2])
					key := fmt.Sprintf("n%d_bw%gmbps", n, bw/1e6)
					rep.addValue(key+"_pdp_mod", row[0])
					rep.addValue(key+"_fddi", row[2])
				}
			}
			rep.notef("per-message and per-station overheads grow with n; breakdown utilization falls accordingly")
			rep.Text = b.String()
			return rep, nil
		},
	}
}

func ablationAllocationSchemes() Experiment {
	return Experiment{
		ID:    "ABL-ALLOC",
		Title: "TTP synchronous bandwidth allocation schemes: local vs baselines",
		Run: func(ctx context.Context, cfg Config, obs progress.Progress) (Report, error) {
			cfg = cfg.withDefaults()
			schemes := []ttpalloc.Scheme{
				ttpalloc.Local{},
				ttpalloc.FullLength{},
				ttpalloc.Proportional{},
				ttpalloc.EqualPartition{},
				ttpalloc.NormalizedProportional{},
			}
			bws := []float64{10e6, 100e6, 1000e6}
			if cfg.Quick {
				bws = []float64{100e6}
			}
			var b strings.Builder
			fmt.Fprintf(&b, "%10s", "BW (Mbps)")
			for _, s := range schemes {
				fmt.Fprintf(&b, " %24s", s.Name())
			}
			b.WriteByte('\n')
			rep := Report{ID: "ABL-ALLOC", Title: "Allocation scheme comparison", Pass: true}
			est := cfg.estimator(breakdown.PaperEstimator(cfg.Samples, cfg.Seed), obs)
			localBeatsAll := true
			for _, bw := range bws {
				fmt.Fprintf(&b, "%10.0f", bw/1e6)
				var localMean float64
				for si, s := range schemes {
					a := ttpalloc.Analyzer{TTP: core.NewTTP(bw), Scheme: s}
					e, err := est.EstimateContext(ctx, a, bw)
					if err != nil {
						return Report{}, err
					}
					fmt.Fprintf(&b, " %24.4f", e.Mean)
					rep.addValue(fmt.Sprintf("%s_bw%gmbps", s.Name(), bw/1e6), e.Mean)
					if si == 0 {
						localMean = e.Mean
					} else if e.Mean > localMean+0.01 {
						localBeatsAll = false
						rep.notef("%s beat local at %g Mbps (%.4f vs %.4f)", s.Name(), bw/1e6, e.Mean, localMean)
					}
				}
				b.WriteByte('\n')
			}
			if localBeatsAll {
				rep.notef("the local scheme matches or beats every baseline at every bandwidth")
			}
			rep.Pass = true // comparative table; no acceptance threshold
			rep.Text = b.String()
			return rep, nil
		},
	}
}
