package expt

import (
	"context"
	"fmt"
	"math"
	"strings"

	"ringsched/internal/breakdown"
	"ringsched/internal/core"
	"ringsched/internal/message"
	"ringsched/internal/progress"
)

// compareAt estimates all three protocols at the given bandwidths and
// formats the rows.
func compareAt(ctx context.Context, cfg Config, obs progress.Progress, bandwidths []float64) ([]breakdown.Series, string, error) {
	series, err := runFig1Sweep(ctx, cfg, obs, bandwidths)
	if err != nil {
		return nil, "", err
	}
	table, err := breakdown.FormatTable(series)
	if err != nil {
		return nil, "", err
	}
	return series, table, nil
}

func claimLowBandwidth() Experiment {
	return Experiment{
		ID:    "CLAIM-LOWBW",
		Title: "PDP outperforms TTP at low bandwidths (1–10 Mbps)",
		Run: func(ctx context.Context, cfg Config, obs progress.Progress) (Report, error) {
			cfg = cfg.withDefaults()
			bws := []float64{1e6, 2e6, 4e6, 10e6}
			series, text, err := compareAt(ctx, cfg, obs, bws)
			if err != nil {
				return Report{}, err
			}
			rep := Report{ID: "CLAIM-LOWBW", Title: "Low-bandwidth comparison", Text: text, Pass: true}
			mod, fddi := series[0], series[2]
			wins := 0
			for i := range bws {
				p, f := mod.Points[i].Estimate.Mean, fddi.Points[i].Estimate.Mean
				rep.addValue(fmt.Sprintf("pdp_minus_fddi_at_%gmbps", bws[i]/1e6), p-f)
				if p >= f {
					wins++
				}
			}
			// At 1 Mbps the paper's parameters leave both protocols near
			// zero; the claim is judged on the 2–10 Mbps points.
			if wins < 3 {
				rep.Pass = false
				rep.notef("PDP won only %d of %d low-bandwidth points", wins, len(bws))
			} else {
				rep.notef("PDP (modified) ≥ FDDI at %d of %d points in [%s] Mbps", wins, len(bws), fmtMbps(bws))
			}
			return rep, nil
		},
	}
}

func claimHighBandwidth() Experiment {
	return Experiment{
		ID:    "CLAIM-HIGHBW",
		Title: "TTP outperforms PDP at high bandwidths (≥ 100 Mbps)",
		Run: func(ctx context.Context, cfg Config, obs progress.Progress) (Report, error) {
			cfg = cfg.withDefaults()
			bws := []float64{100e6, 300e6, 1000e6}
			series, text, err := compareAt(ctx, cfg, obs, bws)
			if err != nil {
				return Report{}, err
			}
			rep := Report{ID: "CLAIM-HIGHBW", Title: "High-bandwidth comparison", Text: text, Pass: true}
			mod, fddi := series[0], series[2]
			for i := range bws {
				p, f := mod.Points[i].Estimate.Mean, fddi.Points[i].Estimate.Mean
				rep.addValue(fmt.Sprintf("fddi_minus_pdp_at_%gmbps", bws[i]/1e6), f-p)
				if f <= p {
					rep.Pass = false
					rep.notef("PDP beat FDDI at %g Mbps (%.3f vs %.3f)", bws[i]/1e6, p, f)
				}
			}
			if rep.Pass {
				rep.notef("FDDI > PDP at every point in [%s] Mbps", fmtMbps(bws))
			}
			return rep, nil
		},
	}
}

func claimModifiedDominates() Experiment {
	return Experiment{
		ID:    "CLAIM-MOD",
		Title: "Modified 802.5 outperforms the standard IEEE 802.5 implementation everywhere",
		Run: func(ctx context.Context, cfg Config, obs progress.Progress) (Report, error) {
			cfg = cfg.withDefaults()
			series, err := runFig1Sweep(ctx, cfg, obs, breakdown.PaperBandwidths(cfg.PointsPerDecade))
			if err != nil {
				return Report{}, err
			}
			table, err := breakdown.FormatTable(series[:2])
			if err != nil {
				return Report{}, err
			}
			rep := Report{
				ID:    "CLAIM-MOD",
				Title: "Modified vs standard 802.5",
				Text:  table,
				Pass:  true,
			}
			mod, std := series[0], series[1]
			minAdv, maxAdv := math.Inf(1), math.Inf(-1)
			for i := range mod.Points {
				adv := mod.Points[i].Estimate.Mean - std.Points[i].Estimate.Mean
				minAdv = math.Min(minAdv, adv)
				maxAdv = math.Max(maxAdv, adv)
				noise := mod.Points[i].Estimate.CI95 + std.Points[i].Estimate.CI95
				if adv < -noise {
					rep.Pass = false
					rep.notef("standard beat modified at %.3g Mbps by %.4f",
						mod.Points[i].BandwidthBPS/1e6, -adv)
				}
			}
			rep.addValue("min_advantage", minAdv)
			rep.addValue("max_advantage", maxAdv)
			if rep.Pass {
				rep.notef("modified ≥ standard at every bandwidth (advantage %.4f … %.4f)", minAdv, maxAdv)
			}
			return rep, nil
		},
	}
}

// equalPeriodBreakdown computes the (deterministic) breakdown utilization
// of an n-stream equal-period set under TTP with a fixed TTRT.
func equalPeriodBreakdown(n int, period, ttrt, bandwidthBPS float64) (float64, error) {
	set := make(message.Set, n)
	for i := range set {
		set[i] = message.Stream{Name: fmt.Sprintf("S%d", i+1), Period: period, LengthBits: 1}
	}
	t := core.NewTTP(bandwidthBPS)
	t.Net = t.Net.WithStations(n)
	t.Rule = core.TTRTFixed
	t.FixedTTRT = ttrt
	sat, err := breakdown.Saturate(set, t, bandwidthBPS, breakdown.SaturateOptions{})
	if err != nil {
		return 0, err
	}
	if !sat.Feasible {
		return 0, nil
	}
	return sat.Utilization, nil
}

func claimTTRTSelection() Experiment {
	return Experiment{
		ID:    "CLAIM-TTRT",
		Title: "TTRT ≈ √(θ·P) maximizes breakdown utilization for equal periods; √(θ·Pmin) is a good general heuristic",
		Run: func(ctx context.Context, cfg Config, obs progress.Progress) (Report, error) {
			cfg = cfg.withDefaults()
			const (
				bw     = 100e6
				period = 100e-3
				n      = 100
			)
			probe := core.NewTTP(bw)
			probe.Net = probe.Net.WithStations(n)
			theta := probe.Overhead()
			optimal := math.Sqrt(theta * period)

			// Sweep TTRT across [2θ, P/2] on a log grid and find the
			// empirical optimum for the equal-period workload.
			var b strings.Builder
			fmt.Fprintf(&b, "equal periods P=%.0f ms, n=%d, bw=%.0f Mbps, θ=%.3g ms\n", period*1e3, n, bw/1e6, theta*1e3)
			fmt.Fprintf(&b, "%12s %12s\n", "TTRT (ms)", "breakdown U")
			lo, hi := 2*theta, period/2
			grid := 25
			if cfg.Quick {
				grid = 12
			}
			bestU, bestTTRT := -1.0, 0.0
			for i := 0; i <= grid; i++ {
				if err := ctx.Err(); err != nil {
					return Report{}, err
				}
				ttrt := lo * math.Pow(hi/lo, float64(i)/float64(grid))
				u, err := equalPeriodBreakdown(n, period, ttrt, bw)
				if err != nil {
					return Report{}, err
				}
				fmt.Fprintf(&b, "%12.4f %12.4f\n", ttrt*1e3, u)
				if u > bestU {
					bestU, bestTTRT = u, ttrt
				}
			}
			uAtSqrt, err := equalPeriodBreakdown(n, period, optimal, bw)
			if err != nil {
				return Report{}, err
			}
			uAtHalf, err := equalPeriodBreakdown(n, period, period/2, bw)
			if err != nil {
				return Report{}, err
			}

			// The paper's second assertion: the √(θ·Pmin) bid rule "is
			// found to give good results in the more general case of
			// unequal periods". Compare the two built-in rules on the
			// paper's random workload.
			fmt.Fprintf(&b, "\ngeneral (unequal periods, paper workload) at %.0f Mbps:\n", bw/1e6)
			est := cfg.estimator(breakdown.Estimator{
				Generator: message.PaperGenerator(),
				Samples:   cfg.Samples,
				Seed:      cfg.Seed,
			}, obs)
			generalRules := []struct {
				name string
				rule core.TTRTRule
			}{
				{"sqrt(theta*Pmin)", core.TTRTSqrtHeuristic},
				{"Pmin/2", core.TTRTHalfMinPeriod},
			}
			var generalSqrt, generalHalf float64
			for i, gr := range generalRules {
				t := core.NewTTP(bw)
				t.Rule = gr.rule
				e, err := est.EstimateContext(ctx, t, bw)
				if err != nil {
					return Report{}, err
				}
				fmt.Fprintf(&b, "  %-18s avg breakdown U = %.4f ±%.4f\n", gr.name, e.Mean, e.CI95)
				if i == 0 {
					generalSqrt = e.Mean
				} else {
					generalHalf = e.Mean
				}
			}

			rep := Report{ID: "CLAIM-TTRT", Title: "TTRT selection", Text: b.String(), Pass: true}
			rep.addValue("general_sqrt_rule", generalSqrt)
			rep.addValue("general_half_rule", generalHalf)
			if generalSqrt <= generalHalf {
				rep.Pass = false
				rep.notef("√(θ·Pmin) (%.4f) did not beat Pmin/2 (%.4f) on the general workload",
					generalSqrt, generalHalf)
			}
			rep.addValue("sqrt_rule_ttrt_ms", optimal*1e3)
			rep.addValue("empirical_best_ttrt_ms", bestTTRT*1e3)
			rep.addValue("breakdown_at_sqrt_rule", uAtSqrt)
			rep.addValue("breakdown_at_empirical_best", bestU)
			rep.addValue("breakdown_at_half_min_period", uAtHalf)

			// Accept when the √ rule achieves ≥ 97 % of the empirical
			// optimum and beats the naive Pmin/2 rule.
			if uAtSqrt < 0.97*bestU {
				rep.Pass = false
				rep.notef("√(θP) rule reached only %.4f vs empirical best %.4f", uAtSqrt, bestU)
			}
			if uAtSqrt <= uAtHalf {
				rep.Pass = false
				rep.notef("√(θP) rule (%.4f) did not beat Pmin/2 rule (%.4f)", uAtSqrt, uAtHalf)
			}
			rep.notef("√(θP)=%.3f ms achieves %.4f; empirical best %.4f at %.3f ms; Pmin/2 achieves %.4f",
				optimal*1e3, uAtSqrt, bestU, bestTTRT*1e3, uAtHalf)
			return rep, nil
		},
	}
}

func claimMinimumBreakdownTTP() Experiment {
	return Experiment{
		ID:    "CLAIM-33PCT",
		Title: "TTP with the local scheme guarantees ≈ 33 % utilization in the worst case",
		Run: func(ctx context.Context, cfg Config, obs progress.Progress) (Report, error) {
			cfg = cfg.withDefaults()
			// Adversarial construction: every period just below
			// (q+1)·TTRT keeps q_i = q token visits, so the local scheme
			// must reserve C_i/(q−1) while the message only contributes
			// C_i/P_i ≈ C_i/((q+1)·TTRT) to utilization. The ratio
			// (q−1)/(q+1) is worst at q = 2: breakdown → 1/3 as overheads
			// vanish.
			const (
				bw = 1000e6 // high bandwidth: overheads nearly vanish
				n  = 16
			)
			t := core.NewTTP(bw)
			t.Net = t.Net.WithStations(n)
			t.Rule = core.TTRTFixed

			var b strings.Builder
			fmt.Fprintf(&b, "adversarial equal-period sets, n=%d, bw=%.0f Mbps\n", n, bw/1e6)
			fmt.Fprintf(&b, "%6s %12s %12s %14s\n", "q", "P (ms)", "TTRT (ms)", "breakdown U")
			worst := math.Inf(1)
			for _, q := range []int{2, 3, 4, 6, 10} {
				if err := ctx.Err(); err != nil {
					return Report{}, err
				}
				const ttrt = 4e-3
				period := (float64(q+1) - 1e-6) * ttrt
				t.FixedTTRT = ttrt
				set := make(message.Set, n)
				for i := range set {
					set[i] = message.Stream{Period: period, LengthBits: 1}
				}
				sat, err := breakdown.Saturate(set, t, bw, breakdown.SaturateOptions{})
				if err != nil {
					return Report{}, err
				}
				u := 0.0
				if sat.Feasible {
					u = sat.Utilization
				}
				fmt.Fprintf(&b, "%6d %12.4f %12.4f %14.4f\n", q, period*1e3, ttrt*1e3, u)
				worst = math.Min(worst, u)
			}
			rep := Report{ID: "CLAIM-33PCT", Title: "TTP minimum breakdown utilization", Text: b.String(), Pass: true}
			rep.addValue("worst_breakdown", worst)
			// The worst case should sit near 1/3 (slightly above zero
			// overhead would give exactly (q−1)/(q+1) = 1/3 at q=2).
			if worst < 0.25 || worst > 0.40 {
				rep.Pass = false
				rep.notef("worst-case breakdown %.4f outside the ≈33%% band", worst)
			} else {
				rep.notef("worst-case breakdown utilization %.4f ≈ 1/3, matching the 33%% bound", worst)
			}
			return rep, nil
		},
	}
}

func baselineIdealRM() Experiment {
	return Experiment{
		ID:    "BASE-RM88",
		Title: "Ideal rate-monotonic average breakdown utilization ≈ 88 % (Lehoczky–Sha–Ding baseline)",
		Run: func(ctx context.Context, cfg Config, obs progress.Progress) (Report, error) {
			cfg = cfg.withDefaults()
			var b strings.Builder
			fmt.Fprintf(&b, "%6s %14s %12s\n", "n", "breakdown U", "±95%")
			rep := Report{ID: "BASE-RM88", Title: "Ideal RM baseline", Pass: true}
			for _, n := range []int{10, 30, 100} {
				// Lehoczky–Sha–Ding drew periods over a wide range (ratio
				// 100) with computation times independent of the periods;
				// that is the setting in which the ≈88 % figure holds.
				est := cfg.estimator(breakdown.Estimator{
					Generator: message.Generator{
						Streams:     n,
						MeanPeriod:  100e-3,
						PeriodRatio: 100,
						Lengths:     message.LengthsUniform,
					},
					Samples: cfg.Samples,
					Seed:    cfg.Seed,
				}, obs)
				// Bandwidth 1: LengthBits is the execution time (s).
				e, err := est.EstimateContext(ctx, core.IdealRM{}, 1)
				if err != nil {
					return Report{}, err
				}
				fmt.Fprintf(&b, "%6d %14.4f %12.4f\n", n, e.Mean, e.CI95)
				rep.addValue(fmt.Sprintf("breakdown_n%d", n), e.Mean)
				if n == 100 {
					if e.Mean < 0.84 || e.Mean > 0.93 {
						rep.Pass = false
						rep.notef("ideal RM breakdown at n=100 was %.4f, outside the ≈88%% band", e.Mean)
					} else {
						rep.notef("ideal RM breakdown at n=100 is %.4f ≈ 0.88, matching [10]", e.Mean)
					}
				}
			}
			rep.Text = b.String()
			return rep, nil
		},
	}
}
