package expt

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"ringsched/internal/breakdown"
	"ringsched/internal/core"
	"ringsched/internal/message"
	"ringsched/internal/progress"
	"ringsched/internal/tokensim"
)

func validateSimulation() Experiment {
	return Experiment{
		ID:    "VAL-SIM",
		Title: "Operational validation: analytically guaranteed sets never miss deadlines in simulation",
		Run: func(ctx context.Context, cfg Config, obs progress.Progress) (Report, error) {
			cfg = cfg.withDefaults()
			const (
				n = 20
				// PDP sets are validated at 95 % of analytic saturation.
				marginPDP = 0.95
				// TTP sets are validated at 90 %: the paper's θ = Θ + F
				// (eq. 11) budgets one asynchronous overrun per rotation,
				// but with saturated async traffic every station can
				// overrun in the same rotation, stretching rotations
				// toward 2·TTRT. At 95 % of the eq.-(11) saturation the
				// simulator reproduces that corner (sub-millisecond
				// lateness on ~100 ms periods); 90 % clears it, and the
				// OverrunPerStation budget restores 95 % (see the
				// tokensim tests and EXPERIMENTS.md).
				marginTTP = 0.90
			)
			bws := []float64{4e6, 100e6}
			samples := 4
			if cfg.Quick {
				samples = 2
			}
			gen := message.Generator{Streams: n, MeanPeriod: 100e-3, PeriodRatio: 10}

			var b strings.Builder
			fmt.Fprintf(&b, "%16s %10s %8s %10s %12s %12s\n",
				"protocol", "BW (Mbps)", "set", "sat U", "sim misses", "rot max/2TTRT")
			rep := Report{ID: "VAL-SIM", Title: "Simulation vs analysis", Pass: true}
			totalMisses := 0

			for _, bw := range bws {
				for s := 0; s < samples; s++ {
					if err := ctx.Err(); err != nil {
						return Report{}, err
					}
					rng := rand.New(rand.NewSource(cfg.Seed + int64(s)))
					set, err := gen.Draw(rng)
					if err != nil {
						return Report{}, err
					}

					// PDP, both variants, under saturated asynchronous
					// interference and the analysis's Θ/2 token-pass model.
					for _, variant := range []core.Variant{core.Modified8025, core.Standard8025} {
						pdp := core.NewStandardPDP(bw)
						pdp.Net = pdp.Net.WithStations(n)
						pdp.Variant = variant
						sat, err := breakdown.Saturate(set, pdp, bw, breakdown.SaturateOptions{})
						if err != nil {
							return Report{}, err
						}
						if !sat.Feasible {
							continue
						}
						// Margin sanity through the pooled batch probe: the
						// validated load must be analytically guaranteed and
						// the load just past breakdown must be rejected,
						// before trusting the simulator comparison.
						margins, err := core.AnalyzeBatch(pdp, set,
							[]float64{sat.Scale * marginPDP, sat.Scale * 1.02})
						if err != nil {
							return Report{}, err
						}
						if !margins[0] || margins[1] {
							rep.Pass = false
							rep.notef("%s margin check failed at %.0f Mbps (set %d): schedulable(%.2f·sat)=%v, schedulable(1.02·sat)=%v",
								variant, bw/1e6, s, marginPDP, margins[0], margins[1])
							continue
						}
						test := sat.Set.Scale(marginPDP)
						w, err := tokensim.NewWorkload(test, n, tokensim.PhasingSynchronized, nil)
						if err != nil {
							return Report{}, err
						}
						res, err := tokensim.PDPSim{
							Net: pdp.Net, Frame: pdp.Frame, Variant: variant,
							Workload: w, AsyncSaturated: true,
							TokenPass: tokensim.PassAverageHalfTheta,
							Progress:  obs,
						}.RunContext(ctx)
						if err != nil {
							return Report{}, err
						}
						totalMisses += res.DeadlineMisses
						fmt.Fprintf(&b, "%16s %10.0f %8d %10.4f %12d %12s\n",
							variant, bw/1e6, s, sat.Utilization*marginPDP, res.DeadlineMisses, "-")
						if res.DeadlineMisses > 0 {
							rep.Pass = false
							rep.notef("%s missed %d deadlines at %.0f Mbps (set %d)",
								variant, res.DeadlineMisses, bw/1e6, s)
						}
					}

					// TTP with the analyzed TTRT and allocations.
					ttp := core.NewTTP(bw)
					ttp.Net = ttp.Net.WithStations(n)
					sat, err := breakdown.Saturate(set, ttp, bw, breakdown.SaturateOptions{})
					if err != nil {
						return Report{}, err
					}
					if !sat.Feasible {
						continue
					}
					margins, err := core.AnalyzeBatch(ttp, set,
						[]float64{sat.Scale * marginTTP, sat.Scale * 1.02})
					if err != nil {
						return Report{}, err
					}
					if !margins[0] || margins[1] {
						rep.Pass = false
						rep.notef("FDDI margin check failed at %.0f Mbps (set %d): schedulable(%.2f·sat)=%v, schedulable(1.02·sat)=%v",
							bw/1e6, s, marginTTP, margins[0], margins[1])
						continue
					}
					test := sat.Set.Scale(marginTTP)
					w, err := tokensim.NewWorkload(test, n, tokensim.PhasingSynchronized, nil)
					if err != nil {
						return Report{}, err
					}
					simc, err := tokensim.NewTTPSimFromAnalysis(ttp, test, w)
					if err != nil {
						return Report{}, err
					}
					simc.AsyncSaturated = true
					simc.Progress = obs
					res, err := simc.RunContext(ctx)
					if err != nil {
						return Report{}, err
					}
					totalMisses += res.DeadlineMisses
					rot := res.RotationMax / (2 * simc.TTRT)
					fmt.Fprintf(&b, "%16s %10.0f %8d %10.4f %12d %12.3f\n",
						"FDDI", bw/1e6, s, sat.Utilization*marginTTP, res.DeadlineMisses, rot)
					if res.DeadlineMisses > 0 {
						rep.Pass = false
						rep.notef("FDDI missed %d deadlines at %.0f Mbps (set %d)", res.DeadlineMisses, bw/1e6, s)
					}
					if rot > 1 {
						rep.Pass = false
						rep.notef("token rotation exceeded Johnson's 2·TTRT bound (%.3f) at %.0f Mbps", rot, bw/1e6)
					}
				}
			}
			rep.addValue("total_misses", float64(totalMisses))
			if rep.Pass {
				rep.notef("no deadline misses across all validated configurations; rotation times within 2·TTRT")
			}
			rep.Text = b.String()
			return rep, nil
		},
	}
}
