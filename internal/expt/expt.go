// Package expt defines the reproduction experiments: one entry per figure,
// table, and quantitative claim of the paper's evaluation (see DESIGN.md's
// experiment index), plus the ablations the paper mentions running but
// omits for space. The command-line tools and the benchmark harness both
// drive experiments through this package, so the printed rows are identical
// everywhere.
package expt

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"ringsched/internal/breakdown"
	"ringsched/internal/progress"
	"ringsched/internal/trace"
)

// ErrUnknownExperiment is returned by ByID for unregistered IDs.
var ErrUnknownExperiment = errors.New("expt: unknown experiment id")

// Config scales every experiment's cost. The zero value takes defaults
// suitable for regenerating the paper's numbers in a few minutes.
type Config struct {
	// Samples is the Monte Carlo sample count per estimate (default 100).
	Samples int
	// Seed makes runs reproducible (default 1993, the paper's year).
	Seed int64
	// PointsPerDecade sets the bandwidth grid density for sweeps
	// (default 3).
	PointsPerDecade int
	// Quick trims grids and sample counts for use in -short tests.
	Quick bool
	// Workers is the total parallelism budget (0 = GOMAXPROCS). Within one
	// experiment it bounds the Monte Carlo pools; RunAll splits it across
	// concurrently executing experiments. Results never depend on the
	// worker count — only wall-clock time does.
	Workers int
}

// estimator applies the Config's worker budget and the run's observer to
// an estimator; every experiment routes its estimators through this so
// -workers and progress reporting reach the sample level.
func (c Config) estimator(e breakdown.Estimator, obs progress.Progress) breakdown.Estimator {
	e.Workers = c.Workers
	e.Progress = obs
	return e
}

func (c Config) withDefaults() Config {
	if c.Samples <= 0 {
		c.Samples = 100
	}
	if c.Seed == 0 {
		c.Seed = 1993
	}
	if c.PointsPerDecade <= 0 {
		c.PointsPerDecade = 3
	}
	if c.Quick {
		if c.Samples > 25 {
			c.Samples = 25
		}
		if c.PointsPerDecade > 2 {
			c.PointsPerDecade = 2
		}
	}
	return c
}

// Report is one experiment's outcome.
type Report struct {
	// ID and Title echo the experiment.
	ID, Title string
	// Text is the formatted human-readable result (tables, plots).
	Text string
	// Values holds headline scalar results keyed by a stable name, so
	// benchmarks can report them as metrics and tests can assert on them.
	Values map[string]float64
	// Pass is false when the experiment's acceptance check (the paper's
	// qualitative claim) did not hold.
	Pass bool
	// Notes lists qualitative observations, including any failures.
	Notes []string
}

func (r *Report) addValue(key string, v float64) {
	if r.Values == nil {
		r.Values = map[string]float64{}
	}
	r.Values[key] = v
}

func (r *Report) notef(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Experiment is a named, runnable reproduction unit.
type Experiment struct {
	// ID is the index key from DESIGN.md (e.g. "FIG1").
	ID string
	// Title summarizes what the paper reports.
	Title string
	// Run executes the experiment. Cancelling ctx aborts the experiment's
	// sweeps, estimates, and simulations promptly with ctx.Err(); obs (may
	// be nil) observes per-sample and per-point progress. Prefer RunOne,
	// which adds the lifecycle callbacks.
	Run func(ctx context.Context, cfg Config, obs progress.Progress) (Report, error)
}

// RunOne executes one experiment, wrapping it in ExperimentStarted /
// ExperimentFinished progress callbacks.
func RunOne(ctx context.Context, e Experiment, cfg Config, obs progress.Progress) (Report, error) {
	ctx, sp := trace.Start(ctx, "expt.run")
	defer sp.End()
	sp.SetAttr("id", e.ID)
	sp.SetAttr("title", e.Title)
	o := progress.OrNop(obs)
	o.ExperimentStarted(e.ID, e.Title)
	rep, err := e.Run(ctx, cfg, obs)
	o.ExperimentFinished(e.ID, err == nil && rep.Pass, err)
	sp.SetError(err)
	sp.SetAttr("pass", err == nil && rep.Pass)
	return rep, err
}

// Outcome is one experiment's result within a RunAll batch.
type Outcome struct {
	// Experiment identifies the unit that ran.
	Experiment Experiment
	// Report is the result when Err is nil.
	Report Report
	// Err is the execution error; ctx.Err() for experiments that were
	// never dispatched because the batch was canceled.
	Err error
	// Elapsed is the experiment's own wall-clock time (zero when it never
	// ran).
	Elapsed time.Duration
}

// RunAll executes independent experiments concurrently and returns one
// Outcome per experiment in deterministic ID order, regardless of
// completion order. The Config's worker budget is split between
// experiment-level concurrency and each experiment's Monte Carlo pools.
// Cancelling ctx stops dispatching new experiments; already-running ones
// abort promptly via their own ctx plumbing, and never-dispatched ones are
// reported with Err = ctx.Err().
func RunAll(ctx context.Context, cfg Config, obs progress.Progress, exps []Experiment) []Outcome {
	if len(exps) == 0 {
		return nil
	}
	total := cfg.Workers
	if total <= 0 {
		total = runtime.GOMAXPROCS(0)
	}
	expWorkers := total
	if expWorkers > len(exps) {
		expWorkers = len(exps)
	}
	childCfg := cfg
	childCfg.Workers = total / expWorkers
	if childCfg.Workers < 1 {
		childCfg.Workers = 1
	}

	outcomes := make([]Outcome, len(exps))
	ran := make([]bool, len(exps))
	for i, e := range exps {
		outcomes[i] = Outcome{Experiment: e}
	}

	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < expWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				ran[i] = true
				start := time.Now()
				rep, err := RunOne(ctx, exps[i], childCfg, obs)
				outcomes[i] = Outcome{
					Experiment: exps[i],
					Report:     rep,
					Err:        err,
					Elapsed:    time.Since(start),
				}
			}
		}()
	}
dispatch:
	for i := range exps {
		select {
		case next <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(next)
	wg.Wait()

	for i := range outcomes {
		if !ran[i] {
			// Never dispatched: the batch was canceled first.
			outcomes[i].Err = ctx.Err()
		}
	}
	sort.Slice(outcomes, func(i, j int) bool {
		return outcomes[i].Experiment.ID < outcomes[j].Experiment.ID
	})
	return outcomes
}

// All returns every experiment, sorted by ID. The registry is rebuilt on
// each call (experiments are cheap descriptors; only Run costs anything).
func All() []Experiment {
	out := []Experiment{
		fig1Experiment(),
		claimLowBandwidth(),
		claimHighBandwidth(),
		claimModifiedDominates(),
		claimTTRTSelection(),
		claimMinimumBreakdownTTP(),
		baselineIdealRM(),
		ablationPeriods(),
		ablationFrameSize(),
		ablationStations(),
		ablationAllocationSchemes(),
		validateSimulation(),
		extensionFaultTolerance(),
		extensionPriorityLevels(),
		extensionPhasing(),
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID looks up one experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("%w: %q", ErrUnknownExperiment, id)
}
