// Package expt defines the reproduction experiments: one entry per figure,
// table, and quantitative claim of the paper's evaluation (see DESIGN.md's
// experiment index), plus the ablations the paper mentions running but
// omits for space. The command-line tools and the benchmark harness both
// drive experiments through this package, so the printed rows are identical
// everywhere.
package expt

import (
	"errors"
	"fmt"
	"sort"
)

// ErrUnknownExperiment is returned by ByID for unregistered IDs.
var ErrUnknownExperiment = errors.New("expt: unknown experiment id")

// Config scales every experiment's cost. The zero value takes defaults
// suitable for regenerating the paper's numbers in a few minutes.
type Config struct {
	// Samples is the Monte Carlo sample count per estimate (default 100).
	Samples int
	// Seed makes runs reproducible (default 1993, the paper's year).
	Seed int64
	// PointsPerDecade sets the bandwidth grid density for sweeps
	// (default 3).
	PointsPerDecade int
	// Quick trims grids and sample counts for use in -short tests.
	Quick bool
}

func (c Config) withDefaults() Config {
	if c.Samples <= 0 {
		c.Samples = 100
	}
	if c.Seed == 0 {
		c.Seed = 1993
	}
	if c.PointsPerDecade <= 0 {
		c.PointsPerDecade = 3
	}
	if c.Quick {
		if c.Samples > 25 {
			c.Samples = 25
		}
		if c.PointsPerDecade > 2 {
			c.PointsPerDecade = 2
		}
	}
	return c
}

// Report is one experiment's outcome.
type Report struct {
	// ID and Title echo the experiment.
	ID, Title string
	// Text is the formatted human-readable result (tables, plots).
	Text string
	// Values holds headline scalar results keyed by a stable name, so
	// benchmarks can report them as metrics and tests can assert on them.
	Values map[string]float64
	// Pass is false when the experiment's acceptance check (the paper's
	// qualitative claim) did not hold.
	Pass bool
	// Notes lists qualitative observations, including any failures.
	Notes []string
}

func (r *Report) addValue(key string, v float64) {
	if r.Values == nil {
		r.Values = map[string]float64{}
	}
	r.Values[key] = v
}

func (r *Report) notef(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Experiment is a named, runnable reproduction unit.
type Experiment struct {
	// ID is the index key from DESIGN.md (e.g. "FIG1").
	ID string
	// Title summarizes what the paper reports.
	Title string
	// Run executes the experiment.
	Run func(Config) (Report, error)
}

// All returns every experiment, sorted by ID. The registry is rebuilt on
// each call (experiments are cheap descriptors; only Run costs anything).
func All() []Experiment {
	out := []Experiment{
		fig1Experiment(),
		claimLowBandwidth(),
		claimHighBandwidth(),
		claimModifiedDominates(),
		claimTTRTSelection(),
		claimMinimumBreakdownTTP(),
		baselineIdealRM(),
		ablationPeriods(),
		ablationFrameSize(),
		ablationStations(),
		ablationAllocationSchemes(),
		validateSimulation(),
		extensionFaultTolerance(),
		extensionPriorityLevels(),
		extensionPhasing(),
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// ByID looks up one experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	return Experiment{}, fmt.Errorf("%w: %q", ErrUnknownExperiment, id)
}
