package expt

import (
	"context"
	"fmt"
	"math"
	"strings"

	"ringsched/internal/breakdown"
	"ringsched/internal/core"
	"ringsched/internal/progress"
	"ringsched/internal/textplot"
)

// protocolFactories returns the three Figure 1 protocols as analyzer
// factories keyed in plot order.
func protocolFactories() []struct {
	name    string
	factory breakdown.AnalyzerFactory
} {
	return []struct {
		name    string
		factory breakdown.AnalyzerFactory
	}{
		{"Modified 802.5", func(bw float64) core.Analyzer { return core.NewModifiedPDP(bw) }},
		{"IEEE 802.5", func(bw float64) core.Analyzer { return core.NewStandardPDP(bw) }},
		{"FDDI", func(bw float64) core.Analyzer { return core.NewTTP(bw) }},
	}
}

// runFig1Sweep produces the three breakdown-vs-bandwidth series. The
// protocols run sequentially; within each protocol the bandwidth points
// run on the sweep's parallel worker pool.
func runFig1Sweep(ctx context.Context, cfg Config, obs progress.Progress, bandwidths []float64) ([]breakdown.Series, error) {
	est := cfg.estimator(breakdown.PaperEstimator(cfg.Samples, cfg.Seed), obs)
	var series []breakdown.Series
	for _, p := range protocolFactories() {
		s, err := est.SweepContext(ctx, p.name, p.factory, bandwidths)
		if err != nil {
			return nil, err
		}
		series = append(series, s)
	}
	return series, nil
}

// crossoverBandwidth locates the first bandwidth at which series b
// overtakes series a, interpolating between grid points on a log axis.
// It returns NaN when no crossover occurs within the grid.
func crossoverBandwidth(a, b breakdown.Series) float64 {
	for i := 1; i < len(a.Points); i++ {
		prevGap := a.Points[i-1].Estimate.Mean - b.Points[i-1].Estimate.Mean
		gap := a.Points[i].Estimate.Mean - b.Points[i].Estimate.Mean
		if prevGap > 0 && gap <= 0 {
			// Linear interpolation of the sign change in log-bandwidth.
			x0 := math.Log10(a.Points[i-1].BandwidthBPS)
			x1 := math.Log10(a.Points[i].BandwidthBPS)
			t := prevGap / (prevGap - gap)
			return math.Pow(10, x0+t*(x1-x0))
		}
	}
	return math.NaN()
}

// peak returns the maximum mean and its bandwidth.
func peak(s breakdown.Series) (bw, mean float64) {
	mean = math.Inf(-1)
	for _, p := range s.Points {
		if p.Estimate.Mean > mean {
			mean = p.Estimate.Mean
			bw = p.BandwidthBPS
		}
	}
	return bw, mean
}

func renderFig1(series []breakdown.Series) (string, error) {
	var b strings.Builder
	table, err := breakdown.FormatTable(series)
	if err != nil {
		return "", err
	}
	b.WriteString(table)
	plot := textplot.Plot{
		Title:  "Figure 1: Average breakdown utilization vs bandwidth",
		XLabel: "bandwidth (bps, log)",
		YLabel: "avg breakdown utilization",
		LogX:   true,
		YMax:   1,
	}
	for _, s := range series {
		ts := textplot.Series{Name: s.Name}
		for _, p := range s.Points {
			ts.X = append(ts.X, p.BandwidthBPS)
			ts.Y = append(ts.Y, p.Estimate.Mean)
		}
		plot.Add(ts)
	}
	rendered, err := plot.Render()
	if err != nil {
		return "", err
	}
	b.WriteByte('\n')
	b.WriteString(rendered)
	return b.String(), nil
}

func fig1Experiment() Experiment {
	return Experiment{
		ID:    "FIG1",
		Title: "Average breakdown utilization vs bandwidth, 1 Mbps – 1 Gbps (Figure 1)",
		Run: func(ctx context.Context, cfg Config, obs progress.Progress) (Report, error) {
			cfg = cfg.withDefaults()
			series, err := runFig1Sweep(ctx, cfg, obs, breakdown.PaperBandwidths(cfg.PointsPerDecade))
			if err != nil {
				return Report{}, err
			}
			text, err := renderFig1(series)
			if err != nil {
				return Report{}, err
			}
			rep := Report{ID: "FIG1", Title: "Figure 1 reproduction", Text: text, Pass: true}

			mod, std, fddi := series[0], series[1], series[2]
			modPeakBW, modPeak := peak(mod)
			stdPeakBW, stdPeak := peak(std)
			fddiLast := fddi.Points[len(fddi.Points)-1].Estimate.Mean
			rep.addValue("modified_peak_util", modPeak)
			rep.addValue("modified_peak_bw_mbps", modPeakBW/1e6)
			rep.addValue("standard_peak_util", stdPeak)
			rep.addValue("standard_peak_bw_mbps", stdPeakBW/1e6)
			rep.addValue("fddi_at_1gbps", fddiLast)

			// Paper shapes: both PDP curves rise then fall; FDDI improves
			// monotonically (within noise); a PDP→FDDI crossover exists.
			cross := crossoverBandwidth(mod, fddi)
			rep.addValue("crossover_bw_mbps", cross/1e6)
			if math.IsNaN(cross) {
				rep.Pass = false
				rep.notef("no PDP→FDDI crossover found in the sweep")
			} else {
				rep.notef("modified-802.5 → FDDI crossover at %.1f Mbps", cross/1e6)
			}
			lastPDP := mod.Points[len(mod.Points)-1].Estimate.Mean
			if !(lastPDP < modPeak) {
				rep.Pass = false
				rep.notef("PDP curve did not fall after its peak")
			}
			firstFDDI := fddi.Points[0].Estimate.Mean
			if !(fddiLast > firstFDDI) {
				rep.Pass = false
				rep.notef("FDDI curve did not improve with bandwidth")
			}
			rep.notef("modified 802.5 peaks at %.3f (%.1f Mbps); IEEE 802.5 peaks at %.3f (%.1f Mbps); FDDI reaches %.3f at 1 Gbps",
				modPeak, modPeakBW/1e6, stdPeak, stdPeakBW/1e6, fddiLast)
			return rep, nil
		},
	}
}

// fmtMbps renders a bandwidth list for notes.
func fmtMbps(bws []float64) string {
	parts := make([]string, len(bws))
	for i, bw := range bws {
		parts[i] = fmt.Sprintf("%g", bw/1e6)
	}
	return strings.Join(parts, ", ")
}
