package expt

import (
	"context"
	"fmt"
	"math/rand"
	"strings"

	"ringsched/internal/breakdown"
	"ringsched/internal/core"
	"ringsched/internal/message"
	"ringsched/internal/progress"
	"ringsched/internal/tokensim"
)

func extensionPriorityLevels() Experiment {
	return Experiment{
		ID: "EXT-PRIO",
		Title: "Extension: rate-monotonic arbitration quality vs available ring priority levels " +
			"(IEEE 802.5 has 8)",
		Run: func(ctx context.Context, cfg Config, obs progress.Progress) (Report, error) {
			cfg = cfg.withDefaults()
			const (
				n      = 16
				bw     = 4e6
				margin = 0.55
			)
			levels := []int{1, 2, 4, 8, 0} // 0 = one level per stream (ideal)
			if cfg.Quick {
				levels = []int{1, 8, 0}
			}

			gen := message.Generator{Streams: n, MeanPeriod: 100e-3, PeriodRatio: 10}
			set, err := gen.Draw(rand.New(rand.NewSource(cfg.Seed)))
			if err != nil {
				return Report{}, err
			}
			pdp := core.NewStandardPDP(bw)
			pdp.Net = pdp.Net.WithStations(n)
			sat, err := breakdown.Saturate(set, pdp, bw, breakdown.SaturateOptions{})
			if err != nil {
				return Report{}, err
			}
			if !sat.Feasible {
				return Report{}, fmt.Errorf("priority-level workload infeasible")
			}
			test := sat.Set.Scale(margin)

			var b strings.Builder
			fmt.Fprintf(&b, "reservation MAC, n=%d, %.0f Mbps, load %.0f%% of Theorem 4.1 saturation\n",
				n, bw/1e6, margin*100)
			fmt.Fprintf(&b, "%8s %10s %12s %22s\n", "levels", "misses", "inversions", "fastest maxResp (ms)")
			rep := Report{ID: "EXT-PRIO", Title: "Priority level granularity", Pass: true}

			fastestIdx := 0
			for i, s := range test {
				if s.Period < test[fastestIdx].Period {
					fastestIdx = i
				}
			}

			var idealResp, eightResp float64
			for _, l := range levels {
				w, err := tokensim.NewWorkload(test, n, tokensim.PhasingSynchronized, nil)
				if err != nil {
					return Report{}, err
				}
				res, err := tokensim.ReservationSim{
					Net:            pdp.Net,
					Frame:          pdp.Frame,
					Workload:       w,
					PriorityLevels: l,
					AsyncSaturated: true,
					Horizon:        4,
					Progress:       obs,
				}.RunContext(ctx)
				if err != nil {
					return Report{}, err
				}
				fastResp := res.Stations[fastestIdx].MaxResponse
				label := fmt.Sprintf("%d", l)
				if l == 0 {
					label = "ideal"
					idealResp = fastResp
				}
				if l == 8 {
					eightResp = fastResp
				}
				fmt.Fprintf(&b, "%8s %10d %12d %22.3f\n",
					label, res.DeadlineMisses, res.PriorityInversions, fastResp*1e3)
				rep.addValue(fmt.Sprintf("fast_resp_ms_levels_%s", label), fastResp*1e3)
				rep.addValue(fmt.Sprintf("misses_levels_%s", label), float64(res.DeadlineMisses))
			}

			// The engineering claim behind Strosnider's 802.5 RM
			// implementation: 8 hardware levels get close to ideal
			// per-stream priorities.
			if eightResp > 2*idealResp {
				rep.Pass = false
				rep.notef("8 levels degraded the fastest stream %.1f× vs ideal", eightResp/idealResp)
			} else {
				rep.notef("8 ring priority levels track ideal per-stream priorities (fastest-stream response %.3f ms vs %.3f ms)",
					eightResp*1e3, idealResp*1e3)
			}
			rep.Text = b.String()
			return rep, nil
		},
	}
}
