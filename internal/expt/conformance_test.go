package expt

import (
	"math/rand"
	"testing"

	"ringsched/internal/breakdown"
	"ringsched/internal/core"
	"ringsched/internal/message"
	"ringsched/internal/rma"
	"ringsched/internal/tokensim"
)

// TestSimulatorAnalysisConformance cross-checks the analytic verdicts
// against the operational simulator on saturated random sets:
//
//   - a set the analysis guarantees (at 95 % of its breakdown load) must
//     not miss a single deadline in simulation under critical-instant
//     phasing and saturated asynchronous interference;
//   - a set the analysis rejects (just above breakdown) must come with a
//     consistent analytic witness: the exact test, the response-time
//     analysis, and the allocation-free workspace kernels all agree on the
//     verdict and on the first failing task.
func TestSimulatorAnalysisConformance(t *testing.T) {
	const (
		n      = 15
		bw     = 4e6
		margin = 0.95
	)
	samples := 6
	if testing.Short() {
		samples = 2
	}
	gen := message.Generator{Streams: n, MeanPeriod: 100e-3, PeriodRatio: 10}
	for _, variant := range []core.Variant{core.Modified8025, core.Standard8025} {
		pdp := core.NewStandardPDP(bw)
		pdp.Net = pdp.Net.WithStations(n)
		pdp.Variant = variant
		for s := 0; s < samples; s++ {
			rng := rand.New(rand.NewSource(int64(2000 + s)))
			set, err := gen.Draw(rng)
			if err != nil {
				t.Fatalf("Draw: %v", err)
			}
			sat, err := breakdown.Saturate(set, pdp, bw, breakdown.SaturateOptions{})
			if err != nil {
				t.Fatalf("%v set %d: Saturate: %v", variant, s, err)
			}
			if !sat.Feasible {
				continue
			}

			// Guaranteed side: analysis says yes at the margin, and the
			// simulator agrees operationally.
			test := sat.Set.Scale(margin)
			ok, err := pdp.Schedulable(test)
			if err != nil {
				t.Fatalf("%v set %d: Schedulable: %v", variant, s, err)
			}
			if !ok {
				t.Fatalf("%v set %d: set at %.0f%% of breakdown not analytically schedulable", variant, s, margin*100)
			}
			w, err := tokensim.NewWorkload(test, n, tokensim.PhasingSynchronized, nil)
			if err != nil {
				t.Fatalf("%v set %d: NewWorkload: %v", variant, s, err)
			}
			res, err := tokensim.PDPSim{
				Net: pdp.Net, Frame: pdp.Frame, Variant: variant,
				Workload: w, AsyncSaturated: true,
				TokenPass: tokensim.PassAverageHalfTheta,
			}.Run()
			if err != nil {
				t.Fatalf("%v set %d: simulate: %v", variant, s, err)
			}
			if res.MissedAny() {
				t.Errorf("%v set %d: analysis guaranteed the set but simulation missed %d deadlines",
					variant, s, res.DeadlineMisses)
			}

			// Rejected side: just above breakdown the analysis must say no,
			// and every analytic route must point at the same witness.
			rejected := sat.Set.Scale(1.02)
			ok, err = pdp.Schedulable(rejected)
			if err != nil {
				t.Fatalf("%v set %d: Schedulable(rejected): %v", variant, s, err)
			}
			if ok {
				t.Fatalf("%v set %d: set above breakdown still schedulable", variant, s)
			}
			tasks := pdp.Tasks(rejected)
			blocking := pdp.Blocking()
			exact, err := rma.ExactTest(tasks, blocking)
			if err != nil {
				t.Fatalf("%v set %d: ExactTest: %v", variant, s, err)
			}
			rta, err := rma.ResponseTimeAnalysis(tasks, blocking)
			if err != nil {
				t.Fatalf("%v set %d: RTA: %v", variant, s, err)
			}
			var ws rma.Workspace
			if err := ws.Load(tasks); err != nil {
				t.Fatalf("%v set %d: Load: %v", variant, s, err)
			}
			wsExact, err := ws.ExactTest(blocking)
			if err != nil {
				t.Fatalf("%v set %d: workspace ExactTest: %v", variant, s, err)
			}
			if exact.Schedulable || rta.Schedulable || wsExact.Schedulable {
				t.Errorf("%v set %d: witness routes disagree with the rejection (exact %v, rta %v, workspace %v)",
					variant, s, exact.Schedulable, rta.Schedulable, wsExact.Schedulable)
			}
			if exact.FirstFailure != rta.FirstFailure || exact.FirstFailure != wsExact.FirstFailure {
				t.Errorf("%v set %d: witness task differs: exact %d, rta %d, workspace %d",
					variant, s, exact.FirstFailure, rta.FirstFailure, wsExact.FirstFailure)
			}
			if i := rta.FirstFailure; i >= 0 {
				sorted := rejected.SortRM()
				if rta.ResponseTimes[i] <= sorted[i].Period {
					t.Errorf("%v set %d: witness task %d has response %g within its period %g",
						variant, s, i, rta.ResponseTimes[i], sorted[i].Period)
				}
			}
		}
	}
}
