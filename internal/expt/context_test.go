package expt

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"ringsched/internal/progress"
)

// fakeExperiment builds a cheap synthetic experiment for batch-level tests
// so RunAll behavior is checked without Monte Carlo cost.
func fakeExperiment(id string, delay time.Duration, err error) Experiment {
	return Experiment{
		ID:    id,
		Title: "fake " + id,
		Run: func(ctx context.Context, cfg Config, obs progress.Progress) (Report, error) {
			if e := ctx.Err(); e != nil {
				return Report{}, e
			}
			if delay > 0 {
				select {
				case <-time.After(delay):
				case <-ctx.Done():
					return Report{}, ctx.Err()
				}
			}
			if err != nil {
				return Report{}, err
			}
			return Report{ID: id, Title: "fake " + id, Pass: true,
				Values: map[string]float64{"workers": float64(cfg.Workers)}}, nil
		},
	}
}

func TestRunOneLifecycleCallbacks(t *testing.T) {
	var counter progress.Counter
	rep, err := RunOne(context.Background(), fakeExperiment("X1", 0, nil),
		Config{}, &counter)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Pass {
		t.Error("fake experiment should pass")
	}
	if counter.ExperimentsStarted() != 1 || counter.ExperimentsFinished() != 1 {
		t.Errorf("lifecycle callbacks = %d started / %d finished, want 1/1",
			counter.ExperimentsStarted(), counter.ExperimentsFinished())
	}
}

func TestRunAllOrderedAndDeterministicAcrossWorkers(t *testing.T) {
	exps := []Experiment{
		fakeExperiment("C", 0, nil),
		fakeExperiment("A", 0, nil),
		fakeExperiment("B", 0, errors.New("b fails")),
	}
	shape := func(workers int) []string {
		var ids []string
		for _, o := range RunAll(context.Background(), Config{Workers: workers}, nil, exps) {
			s := o.Experiment.ID
			if o.Err != nil {
				s += "!"
			}
			ids = append(ids, s)
		}
		return ids
	}
	serial := shape(1)
	parallel := shape(8)
	want := []string{"A", "B!", "C"}
	if !reflect.DeepEqual(serial, want) {
		t.Errorf("Workers=1 outcomes = %v, want %v", serial, want)
	}
	if !reflect.DeepEqual(parallel, want) {
		t.Errorf("Workers=8 outcomes = %v, want %v", parallel, want)
	}
}

func TestRunAllSplitsWorkerBudget(t *testing.T) {
	// 8 total workers over 2 experiments: each child pool gets 4.
	exps := []Experiment{fakeExperiment("A", 0, nil), fakeExperiment("B", 0, nil)}
	for _, o := range RunAll(context.Background(), Config{Workers: 8}, nil, exps) {
		if o.Err != nil {
			t.Fatal(o.Err)
		}
		if got := o.Report.Values["workers"]; got != 4 {
			t.Errorf("%s child workers = %g, want 4", o.Experiment.ID, got)
		}
	}
}

func TestRunAllPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var counter progress.Counter
	exps := []Experiment{fakeExperiment("A", 0, nil), fakeExperiment("B", 0, nil)}
	outcomes := RunAll(ctx, Config{}, &counter, exps)
	if len(outcomes) != len(exps) {
		t.Fatalf("%d outcomes for %d experiments", len(outcomes), len(exps))
	}
	for _, o := range outcomes {
		if !errors.Is(o.Err, context.Canceled) {
			t.Errorf("%s: Err = %v, want context.Canceled", o.Experiment.ID, o.Err)
		}
	}
}

func TestRunAllCancelMidBatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	// A is instant; the rest would block for a minute without cancellation.
	exps := []Experiment{
		fakeExperiment("A", 0, nil),
		fakeExperiment("B", time.Minute, nil),
		fakeExperiment("C", time.Minute, nil),
		fakeExperiment("D", time.Minute, nil),
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	outcomes := RunAll(ctx, Config{Workers: 2}, nil, exps)
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Fatalf("RunAll took %v after cancellation, want prompt abort", elapsed)
	}
	canceled := 0
	for _, o := range outcomes {
		if errors.Is(o.Err, context.Canceled) {
			canceled++
		}
	}
	if canceled == 0 {
		t.Error("no outcome reports context.Canceled after mid-batch cancellation")
	}
	// Partial results survive: A (dispatched first, instant) completed.
	if outcomes[0].Experiment.ID != "A" || outcomes[0].Err != nil {
		t.Errorf("first outcome = %s err=%v, want completed A",
			outcomes[0].Experiment.ID, outcomes[0].Err)
	}
}

func TestRegisteredExperimentsHonorCancellation(t *testing.T) {
	// Every registered experiment must return promptly with ctx.Err() under
	// a pre-canceled context — this is the contract the CLIs rely on.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, e := range All() {
		start := time.Now()
		_, err := e.Run(ctx, Config{Quick: true, Samples: 5}, nil)
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", e.ID, err)
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Errorf("%s: took %v under a pre-canceled context", e.ID, elapsed)
		}
	}
}
