package expt

import (
	"context"
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files with current results")

// TestFig1Golden pins the FIG1 experiment's headline values at a fixed
// seed and quick configuration. The estimator's results are independent of
// the worker count and the saturation search is deterministic, so the
// values must reproduce bit-for-bit; any change to the kernels, the
// generator, or the search that shifts them is caught here. Refresh with
// `go test ./internal/expt -run TestFig1Golden -update` and review the
// diff.
func TestFig1Golden(t *testing.T) {
	cfg := Config{Quick: true, Samples: 10, Seed: 1993, PointsPerDecade: 2, Workers: 4}
	exp, err := ByID("FIG1")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := exp.Run(context.Background(), cfg, nil)
	if err != nil {
		t.Fatalf("FIG1: %v", err)
	}
	if !rep.Pass {
		t.Fatalf("FIG1 failed its own acceptance checks: %v", rep.Notes)
	}

	golden := filepath.Join("testdata", "fig1_golden.json")
	if *updateGolden {
		blob, err := json.MarshalIndent(rep.Values, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", golden)
		return
	}

	blob, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	var want map[string]float64
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatalf("parse golden: %v", err)
	}

	keys := make([]string, 0, len(want))
	for k := range want {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	if len(rep.Values) != len(want) {
		t.Errorf("value count %d, golden %d", len(rep.Values), len(want))
	}
	for _, k := range keys {
		got, ok := rep.Values[k]
		if !ok {
			t.Errorf("missing value %q", k)
			continue
		}
		if math.Float64bits(got) != math.Float64bits(want[k]) {
			t.Errorf("%s = %v (%x), golden %v (%x)", k, got, math.Float64bits(got), want[k], math.Float64bits(want[k]))
		}
	}
}
