package sim

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestEventsFireInTimeOrder(t *testing.T) {
	var g Engine
	var fired []float64
	times := []float64{5, 1, 3, 2, 4}
	for _, tm := range times {
		tm := tm
		if _, err := g.At(tm, func() { fired = append(fired, tm) }); err != nil {
			t.Fatal(err)
		}
	}
	g.RunUntil(10)
	want := []float64{1, 2, 3, 4, 5}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired = %v, want %v", fired, want)
		}
	}
	if g.Now() != 10 {
		t.Errorf("Now = %v, want 10 (queue drained, clock advances to horizon)", g.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	var g Engine
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		if _, err := g.At(1, func() { order = append(order, i) }); err != nil {
			t.Fatal(err)
		}
	}
	g.RunUntil(2)
	for i, got := range order {
		if got != i {
			t.Fatalf("tie order = %v, want FIFO", order)
		}
	}
}

func TestScheduleFromHandler(t *testing.T) {
	var g Engine
	var trace []float64
	if _, err := g.At(1, func() {
		trace = append(trace, g.Now())
		if _, err := g.After(2, func() { trace = append(trace, g.Now()) }); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	g.RunUntil(10)
	if len(trace) != 2 || trace[0] != 1 || trace[1] != 3 {
		t.Fatalf("trace = %v, want [1 3]", trace)
	}
}

func TestCancel(t *testing.T) {
	var g Engine
	fired := false
	ev, err := g.At(1, func() { fired = true })
	if err != nil {
		t.Fatal(err)
	}
	g.Cancel(ev)
	g.RunUntil(5)
	if fired {
		t.Error("canceled event fired")
	}
	if !ev.Canceled() {
		t.Error("Canceled() false after Cancel")
	}
	// Double-cancel and nil-cancel are no-ops.
	g.Cancel(ev)
	g.Cancel(nil)
}

func TestCancelOneOfMany(t *testing.T) {
	var g Engine
	var fired []int
	var events []*Event
	for i := 0; i < 5; i++ {
		i := i
		ev, err := g.At(float64(i+1), func() { fired = append(fired, i) })
		if err != nil {
			t.Fatal(err)
		}
		events = append(events, ev)
	}
	g.Cancel(events[2])
	g.RunUntil(10)
	want := []int{0, 1, 3, 4}
	if len(fired) != len(want) {
		t.Fatalf("fired = %v, want %v", fired, want)
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("fired = %v, want %v", fired, want)
		}
	}
}

func TestPastAndInvalidTimes(t *testing.T) {
	var g Engine
	if _, err := g.At(5, func() {}); err != nil {
		t.Fatal(err)
	}
	g.RunUntil(10)
	if _, err := g.At(1, func() {}); !errors.Is(err, ErrPastEvent) {
		t.Errorf("past event: %v, want ErrPastEvent", err)
	}
	if _, err := g.At(math.NaN(), func() {}); !errors.Is(err, ErrBadTime) {
		t.Errorf("NaN: %v, want ErrBadTime", err)
	}
	if _, err := g.At(math.Inf(1), func() {}); !errors.Is(err, ErrBadTime) {
		t.Errorf("Inf: %v, want ErrBadTime", err)
	}
}

func TestRunUntilHorizon(t *testing.T) {
	var g Engine
	fired := 0
	for _, tm := range []float64{1, 2, 3, 10, 20} {
		if _, err := g.At(tm, func() { fired++ }); err != nil {
			t.Fatal(err)
		}
	}
	g.RunUntil(5)
	if fired != 3 {
		t.Errorf("fired = %d, want 3 (events past horizon stay queued)", fired)
	}
	if g.Pending() != 2 {
		t.Errorf("Pending = %d, want 2", g.Pending())
	}
	// Resume to a later horizon.
	g.RunUntil(50)
	if fired != 5 {
		t.Errorf("fired = %d, want 5 after resuming", fired)
	}
}

func TestRunUntilAdvancesClockWhenDrained(t *testing.T) {
	var g Engine
	g.RunUntil(7)
	if g.Now() != 7 {
		t.Errorf("Now = %v, want 7 when queue drained", g.Now())
	}
}

func TestStep(t *testing.T) {
	var g Engine
	if g.Step() {
		t.Error("Step on empty queue should return false")
	}
	n := 0
	if _, err := g.At(1, func() { n++ }); err != nil {
		t.Fatal(err)
	}
	if !g.Step() {
		t.Error("Step should fire the event")
	}
	if n != 1 || g.Fired() != 1 {
		t.Errorf("n=%d Fired=%d, want 1/1", n, g.Fired())
	}
}

func TestRandomizedOrderProperty(t *testing.T) {
	// Whatever order events are scheduled in, they fire sorted by time.
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 30; trial++ {
		var g Engine
		var fired []float64
		n := 50 + rng.Intn(100)
		for i := 0; i < n; i++ {
			tm := rng.Float64() * 100
			if _, err := g.At(tm, func() { fired = append(fired, g.Now()) }); err != nil {
				t.Fatal(err)
			}
		}
		g.RunUntil(101)
		if len(fired) != n {
			t.Fatalf("fired %d of %d", len(fired), n)
		}
		if !sort.Float64sAreSorted(fired) {
			t.Fatal("events fired out of order")
		}
	}
}

func TestEventTime(t *testing.T) {
	var g Engine
	ev, err := g.At(3.5, func() {})
	if err != nil {
		t.Fatal(err)
	}
	if ev.Time() != 3.5 {
		t.Errorf("Time = %v, want 3.5", ev.Time())
	}
}
