package sim

import (
	"context"
	"errors"
	"testing"
)

// chain schedules a self-rescheduling event every dt seconds, so the run
// only stops when the horizon, the context, or the event budget says so.
func chain(t *testing.T, g *Engine, dt float64) {
	t.Helper()
	var tick func()
	tick = func() {
		if _, err := g.After(dt, tick); err != nil {
			t.Errorf("reschedule: %v", err)
		}
	}
	if _, err := g.After(dt, tick); err != nil {
		t.Fatal(err)
	}
}

func TestRunUntilContextPreCanceled(t *testing.T) {
	var g Engine
	chain(t, &g, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := g.RunUntilContext(ctx, 1000, RunOptions{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The context is polled before the very first event fires.
	if g.Fired() != 0 {
		t.Errorf("fired %d events under a pre-canceled context, want 0", g.Fired())
	}
}

func TestRunUntilContextCancelMidRun(t *testing.T) {
	var g Engine
	chain(t, &g, 1)
	ctx, cancel := context.WithCancel(context.Background())
	fired := 0
	err := g.RunUntilContext(ctx, 1e9, RunOptions{
		CheckEvery: 10,
		OnAdvance: func(n int, _ float64) {
			fired = n
			if n >= 50 {
				cancel()
			}
		},
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Cancellation is detected within one CheckEvery window.
	if fired > 70 {
		t.Errorf("ran %d events past cancellation, want detection within a poll window", fired)
	}
}

func TestRunUntilContextMaxEvents(t *testing.T) {
	var g Engine
	chain(t, &g, 1)
	err := g.RunUntilContext(context.Background(), 1e9, RunOptions{MaxEvents: 25})
	if !errors.Is(err, ErrMaxEvents) {
		t.Fatalf("err = %v, want ErrMaxEvents", err)
	}
	if g.Fired() != 25 {
		t.Errorf("fired %d events, want exactly the 25-event budget", g.Fired())
	}
}

func TestRunUntilContextOnAdvanceFinalReport(t *testing.T) {
	var g Engine
	chain(t, &g, 1)
	var lastFired int
	var lastNow float64
	calls := 0
	err := g.RunUntilContext(context.Background(), 10.5, RunOptions{
		CheckEvery: 4,
		OnAdvance: func(fired int, now float64) {
			calls++
			lastFired, lastNow = fired, now
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls == 0 {
		t.Fatal("OnAdvance never called")
	}
	// Final report carries the complete run: 10 events fired (t=1..10),
	// clock parked at the last fired event.
	if lastFired != 10 || lastNow != 10 {
		t.Errorf("final OnAdvance = (%d, %g), want (10, 10)", lastFired, lastNow)
	}
}

func TestRunUntilContextNoBudgetMatchesRunUntil(t *testing.T) {
	var a, b Engine
	chain(t, &a, 1)
	chain(t, &b, 1)
	a.RunUntil(100)
	if err := b.RunUntilContext(context.Background(), 100, RunOptions{}); err != nil {
		t.Fatal(err)
	}
	if a.Fired() != b.Fired() || a.Now() != b.Now() {
		t.Errorf("RunUntilContext (%d events, t=%g) diverges from RunUntil (%d events, t=%g)",
			b.Fired(), b.Now(), a.Fired(), a.Now())
	}
}
