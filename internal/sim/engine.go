// Package sim is a minimal deterministic discrete-event simulation engine:
// a priority queue of timestamped events with stable FIFO ordering among
// simultaneous events, a simulation clock, and cancellation.
//
// The token-ring simulators in internal/tokensim are built on it; they are
// the operational counterpart used to validate the analytical
// schedulability criteria.
package sim

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"math"
)

// Errors returned by the engine.
var (
	ErrPastEvent = errors.New("sim: cannot schedule an event in the past")
	ErrBadTime   = errors.New("sim: event time must be finite")
	// ErrMaxEvents reports that a run exhausted its event budget before the
	// horizon — the runaway guard for event loops that keep rescheduling
	// themselves.
	ErrMaxEvents = errors.New("sim: event budget exhausted")
)

// Handler is the code run when an event fires. It executes at the event's
// timestamp; Engine.Now() inside a handler returns that time.
type Handler func()

// Event is a scheduled occurrence. The zero value is inert; obtain events
// from Engine.At / Engine.After.
type Event struct {
	time     float64
	seq      uint64
	index    int // heap index, -1 once removed
	canceled bool
	fn       Handler
}

// Time returns the simulation time at which the event fires.
func (e *Event) Time() float64 { return e.time }

// Canceled reports whether Cancel was called on the event.
func (e *Event) Canceled() bool { return e.canceled }

// Engine is the simulation core. The zero value is ready to use and starts
// at time 0.
type Engine struct {
	now    float64
	seq    uint64
	queue  eventHeap
	fired  int
	ranOut bool
}

// Now returns the current simulation time.
func (g *Engine) Now() float64 { return g.now }

// Fired returns the number of events processed so far.
func (g *Engine) Fired() int { return g.fired }

// Pending returns the number of events currently scheduled.
func (g *Engine) Pending() int { return len(g.queue) }

// At schedules fn at absolute time t and returns a cancelable handle.
func (g *Engine) At(t float64, fn Handler) (*Event, error) {
	if math.IsNaN(t) || math.IsInf(t, 0) {
		return nil, ErrBadTime
	}
	if t < g.now {
		return nil, ErrPastEvent
	}
	g.seq++
	ev := &Event{time: t, seq: g.seq, fn: fn}
	heap.Push(&g.queue, ev)
	return ev, nil
}

// After schedules fn delay seconds from now.
func (g *Engine) After(delay float64, fn Handler) (*Event, error) {
	return g.At(g.now+delay, fn)
}

// Cancel removes a scheduled event. Canceling an already-fired or
// already-canceled event is a no-op.
func (g *Engine) Cancel(ev *Event) {
	if ev == nil || ev.canceled || ev.index < 0 {
		if ev != nil {
			ev.canceled = true
		}
		return
	}
	ev.canceled = true
	heap.Remove(&g.queue, ev.index)
}

// Step fires the earliest pending event and returns true, or returns false
// if no events remain.
func (g *Engine) Step() bool {
	for len(g.queue) > 0 {
		ev, ok := heap.Pop(&g.queue).(*Event)
		if !ok {
			return false
		}
		if ev.canceled {
			continue
		}
		g.now = ev.time
		g.fired++
		ev.fn()
		return true
	}
	return false
}

// RunUntil fires events in order until the queue drains or the next event
// would fire strictly after horizon. The clock is left at the last fired
// event (or horizon if that is later and the queue drained).
func (g *Engine) RunUntil(horizon float64) {
	// Uncancelable and unbounded, so no error can occur.
	_ = g.RunUntilContext(context.Background(), horizon, RunOptions{})
}

// RunOptions tunes a context-aware engine run.
type RunOptions struct {
	// CheckEvery is the number of fired events between context polls and
	// OnAdvance callbacks (default 1024). Smaller values cancel faster but
	// add per-event overhead.
	CheckEvery int
	// MaxEvents bounds the events fired by this call; 0 means unlimited.
	// Exceeding the budget aborts the run with ErrMaxEvents — the guard
	// against handler chains that reschedule themselves forever.
	MaxEvents int
	// OnAdvance, when non-nil, observes loop progress: it is called every
	// CheckEvery events and once when the run stops, with the events fired
	// by this call and the current simulation time.
	OnAdvance func(fired int, now float64)
}

// RunUntilContext is RunUntil with cancellation, an event budget, and a
// progress callback. It fires events in order until the queue drains, the
// next event would fire strictly after horizon, ctx is canceled (polled
// every CheckEvery events), or MaxEvents events have fired. It returns
// ctx.Err() on cancellation, ErrMaxEvents on budget exhaustion, and nil
// otherwise. The clock is left at the last fired event (or horizon if that
// is later and the queue drained).
func (g *Engine) RunUntilContext(ctx context.Context, horizon float64, opts RunOptions) error {
	every := opts.CheckEvery
	if every <= 0 {
		every = 1024
	}
	fired := 0
	report := func() {
		if opts.OnAdvance != nil {
			opts.OnAdvance(fired, g.now)
		}
	}
	for {
		for len(g.queue) > 0 && g.queue[0].canceled {
			heap.Pop(&g.queue)
		}
		if len(g.queue) == 0 {
			if g.now < horizon {
				g.now = horizon
			}
			report()
			return nil
		}
		if g.queue[0].time > horizon {
			report()
			return nil
		}
		if fired%every == 0 {
			if err := ctx.Err(); err != nil {
				report()
				return err
			}
			if fired > 0 {
				report()
			}
		}
		if opts.MaxEvents > 0 && fired >= opts.MaxEvents {
			report()
			return fmt.Errorf("%w: %d events fired before t=%g of horizon %g",
				ErrMaxEvents, fired, g.now, horizon)
		}
		g.Step()
		fired++
	}
}

// eventHeap orders events by (time, seq): earliest first, FIFO among ties.
type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev, ok := x.(*Event)
	if !ok {
		return
	}
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}
