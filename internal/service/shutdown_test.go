package service

import (
	"bufio"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"
)

// goroutineLeakCheck snapshots the goroutines running this package's code
// and registers a cleanup that fails the test if any are still alive
// shortly after it ends. Stacks are filtered to "ringsched/" frames so
// runtime and net/http housekeeping goroutines don't flake the check.
func goroutineLeakCheck(t *testing.T) {
	t.Helper()
	before := ringschedGoroutines()
	t.Cleanup(func() {
		if t.Failed() {
			return
		}
		var after []string
		for deadline := time.Now().Add(3 * time.Second); ; {
			after = ringschedGoroutines()
			if len(after) <= len(before) {
				return
			}
			if time.Now().After(deadline) {
				break
			}
			time.Sleep(10 * time.Millisecond)
		}
		t.Errorf("goroutine leak: %d ringsched goroutines before, %d after:\n%s",
			len(before), len(after), strings.Join(after, "\n---\n"))
	})
}

// ringschedGoroutines returns the stacks of goroutines currently
// executing this module's code.
func ringschedGoroutines() []string {
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	var out []string
	for _, st := range strings.Split(string(buf[:n]), "\n\n") {
		if strings.Contains(st, "ringsched/") && !strings.Contains(st, "ringschedGoroutines") {
			out = append(out, st)
		}
	}
	return out
}

// TestDrainCompletesInflightSSEStream exercises the documented shutdown
// sequence — BeginDrain, let the listener drain, then Close — with a
// progress stream in flight: the stream must run to completion, new work
// must bounce with 503, and nothing may leak.
func TestDrainCompletesInflightSSEStream(t *testing.T) {
	goroutineLeakCheck(t)
	s := New(Config{Workers: 2, SampleEvery: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/sweep",
		strings.NewReader(`{"bandwidthsMbps": [10, 50, 100], "streams": 8, "samples": 64, "seed": 11}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status = %d", resp.StatusCode)
	}

	// Drain as soon as the stream is confirmed open.
	s.BeginDrain()
	if resp, body := post(t, ts.URL+"/v1/analyze", analyzeBody); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining server accepted new work: %d %s", resp.StatusCode, body)
	}

	sawResult := false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if sc.Text() == "event: result" {
			sawResult = true
			break
		}
	}
	if !sawResult {
		t.Errorf("in-flight stream was cut off by drain (scan err %v)", sc.Err())
	}
}

// TestCloseReapsStreamWithSlowReadingClient verifies the other half of
// shutdown: a client that opened a stream and stopped reading cannot pin
// the server. Close cancels the base context, the sweep aborts, and the
// handler goroutine exits even though the client never drains the body.
func TestCloseReapsStreamWithSlowReadingClient(t *testing.T) {
	goroutineLeakCheck(t)
	s := New(Config{Workers: 1, SampleEvery: 1, SSEKeepAlive: -1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	// A deliberately huge sweep: it cannot finish before Close.
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/sweep",
		strings.NewReader(`{"bandwidthsMbps": [10, 100], "streams": 12, "samples": 2000000, "seed": 5}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	// Read nothing: the client stalls right after the headers.
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status = %d", resp.StatusCode)
	}
	// Give the handler a moment to enter the computation, then pull the
	// plug the way main does after the listener drains.
	for deadline := time.Now().Add(2 * time.Second); ; {
		if _, running := s.flight.Depth(); running == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("sweep never started")
		}
		time.Sleep(time.Millisecond)
	}
	s.Close()

	for deadline := time.Now().Add(3 * time.Second); ; {
		if s.InFlight() == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("handler still in flight after Close (inflight=%d)", s.InFlight())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDrainThenCloseUnderLoad drains while several concurrent cached and
// computing requests are in various stages, asserting the sequence never
// wedges and the pool empties.
func TestDrainThenCloseUnderLoad(t *testing.T) {
	goroutineLeakCheck(t)
	s := New(Config{Workers: 2})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	defer s.Close()

	done := make(chan int, 6)
	for i := 0; i < 6; i++ {
		go func(i int) {
			body := fmt.Sprintf(`{"bandwidthMbps": %d, "streams": [{"name": "s", "periodMs": 10, "lengthBits": 4096}]}`, 50+i)
			resp, _ := post(t, ts.URL+"/v1/analyze", body)
			done <- resp.StatusCode
		}(i)
	}
	for i := 0; i < 6; i++ {
		if code := <-done; code != http.StatusOK {
			t.Errorf("request %d finished %d", i, code)
		}
	}
	s.BeginDrain()
	s.Close()
	if q, r := s.flight.Depth(); q != 0 || r != 0 {
		t.Errorf("pool not empty after shutdown: queued=%d running=%d", q, r)
	}
}
