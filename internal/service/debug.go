package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"net/url"

	"ringsched/internal/trace"
)

// registerDebug mounts the debugging surface next to the API: the span
// ring at /debug/traces (federated across the cluster in -peers mode),
// the request flight recorder at /debug/requests, and the standard pprof
// profiles. All of it stays up while draining — it is exactly what an
// operator wants to look at when a deploy is going sideways — so it
// bypasses instrument.
func (s *Server) registerDebug() {
	ds := &trace.DebugServer{Ring: s.spans}
	if s.clust != nil {
		ds.Self = s.clust.self
		ds.Peers = func() []string {
			var peers []string
			for _, m := range s.Members() {
				if m != s.clust.self {
					peers = append(peers, m)
				}
			}
			return peers
		}
		ds.Fetch = s.fetchPeerTrace
		ds.ScatterTimeout = s.cfg.PeerFillTimeout
	}
	s.mux.Handle("/debug/traces", ds)
	s.mux.HandleFunc("/debug/requests", s.handleRequests)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// fetchPeerTrace retrieves one peer's span records for a trace, riding
// the same breaker-isolated peer client pool as cache fills. The local=1
// parameter stops the peer from scattering in turn — each member answers
// with its own spans only, so federation stays one hop deep.
func (s *Server) fetchPeerTrace(ctx context.Context, member, traceID string) ([]trace.Record, error) {
	body, err := s.clust.pool.Client(member).Call(ctx, http.MethodGet,
		"/debug/traces?local=1&trace="+url.QueryEscape(traceID), nil)
	if err != nil {
		return nil, err
	}
	var resp struct {
		Spans []trace.Record `json:"spans"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		return nil, fmt.Errorf("service: bad peer trace response from %s: %v", member, err)
	}
	return resp.Spans, nil
}
