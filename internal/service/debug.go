package service

import (
	"net/http"
	"net/http/pprof"

	"ringsched/internal/trace"
)

// registerDebug mounts the debugging surface next to the API: the span
// ring at /debug/traces and the standard pprof profiles. Both stay up
// while draining — they are exactly what an operator wants to look at
// when a deploy is going sideways — so they bypass instrument.
func (s *Server) registerDebug() {
	s.mux.HandleFunc("/debug/traces", s.handleTraces)
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// handleTraces serves the retained spans, oldest first. ?trace=<id>
// narrows to one trace: the id is what a /v1/* response returned in its
// X-Ringsched-Trace header, so `curl -i` + `curl /debug/traces?trace=`
// reconstructs any recent request's span tree without extra tooling.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	var recs []trace.Record
	if id := r.URL.Query().Get("trace"); id != "" {
		recs = s.spans.Trace(id)
	} else {
		recs = s.spans.Snapshot()
	}
	if recs == nil {
		recs = []trace.Record{}
	}
	body, err := Encode(map[string]any{
		"total":    s.spans.Total(),
		"retained": len(recs),
		"spans":    recs,
	})
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}
