package service

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
)

func TestCacheRoundtripAndCounters(t *testing.T) {
	c := NewCache(1 << 20)
	if _, ok := c.Get("k"); ok {
		t.Fatal("hit on empty cache")
	}
	if c.Misses() != 1 || c.Hits() != 0 {
		t.Fatalf("counters after miss: hits=%d misses=%d", c.Hits(), c.Misses())
	}
	body := []byte(`{"answer": 42}`)
	c.Put("k", body)
	got, ok := c.Get("k")
	if !ok || !bytes.Equal(got, body) {
		t.Fatalf("Get after Put = %q, %v", got, ok)
	}
	if c.Hits() != 1 || c.Misses() != 1 || c.Entries() != 1 {
		t.Fatalf("counters after hit: hits=%d misses=%d entries=%d", c.Hits(), c.Misses(), c.Entries())
	}
	if c.Bytes() <= int64(len(body)) {
		t.Fatalf("Bytes()=%d should include key and overhead", c.Bytes())
	}

	// In-place update replaces the body and adjusts the byte count.
	bigger := bytes.Repeat([]byte("x"), 500)
	before := c.Bytes()
	c.Put("k", bigger)
	got, _ = c.Get("k")
	if !bytes.Equal(got, bigger) {
		t.Fatal("update did not replace body")
	}
	if c.Entries() != 1 || c.Bytes() != before+int64(len(bigger)-len(body)) {
		t.Fatalf("update bookkeeping: entries=%d bytes=%d", c.Entries(), c.Bytes())
	}
}

func TestCacheEvictsLRUUnderBudget(t *testing.T) {
	// A tiny budget: shardBudget = 4096/16 = 256 bytes, so one ~100-byte
	// body plus overhead fills a shard and a second entry in the same
	// shard evicts the older one.
	c := NewCache(4096)
	var keys []string
	for i := 0; len(keys) < 2; i++ {
		k := fmt.Sprintf("key-%d", i)
		if c.shard(k) == &c.shards[0] {
			keys = append(keys, k)
		}
	}
	body := bytes.Repeat([]byte("v"), 100)
	c.Put(keys[0], body)
	c.Put(keys[1], body)
	if c.Evictions() != 1 {
		t.Fatalf("evictions=%d, want 1", c.Evictions())
	}
	if _, ok := c.Get(keys[0]); ok {
		t.Error("LRU victim still resident")
	}
	if _, ok := c.Get(keys[1]); !ok {
		t.Error("newest entry evicted instead of oldest")
	}
}

func TestCacheSkipsOversizedBodies(t *testing.T) {
	c := NewCache(4096) // shardBudget 256
	c.Put("huge", bytes.Repeat([]byte("x"), 1024))
	if _, ok := c.Get("huge"); ok {
		t.Error("oversized body was cached")
	}
	if c.Entries() != 0 || c.Bytes() != 0 || c.Evictions() != 0 {
		t.Errorf("oversized Put disturbed state: entries=%d bytes=%d evictions=%d",
			c.Entries(), c.Bytes(), c.Evictions())
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	c := NewCache(1 << 20)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := fmt.Sprintf("key-%d", i%32)
				c.Put(k, []byte(k))
				if body, ok := c.Get(k); ok && string(body) != k {
					t.Errorf("goroutine %d: Get(%q) = %q", g, k, body)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Entries() != 32 {
		t.Errorf("entries=%d, want 32", c.Entries())
	}
}
