package service

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"reflect"
	"strings"
	"testing"

	"ringsched/internal/message"
	"ringsched/internal/topology"
)

// lineTopologySpec is a bridged 3-ring line mixing all three protocols,
// mirroring the analysis- and simulation-layer fixtures.
const lineTopologySpec = "ring:name=a,proto=8025mod,bw=16e6" +
	" + ring:name=b,proto=fddi,bw=100e6" +
	" + ring:name=c,proto=8025,bw=16e6" +
	" + bridge:a=a,b=b,latency=100us" +
	" + bridge:a=b,b=c,latency=100us" +
	" + flow:name=cross,src=a,dst=c,period=100ms,bits=4096" +
	" + flow:name=feed,src=b,dst=c,period=50ms,bits=2048" +
	" + flow:name=local,src=b,period=20ms,bits=1024"

// TestTopologySingleRingVerdictMatchesAnalyze pins the refactor's service
// contract: a 1-node topology's ring verdict is identical — field for
// field — to what /v1/analyze reports for the same streams, for every
// workload preset and every protocol.
func TestTopologySingleRingVerdictMatchesAnalyze(t *testing.T) {
	ctx := context.Background()
	protos := map[topology.Protocol]string{
		topology.Standard8025: ProtocolStandardPDP,
		topology.Modified8025: ProtocolModifiedPDP,
		topology.FDDI:         ProtocolTTP,
	}
	for _, preset := range message.Presets() {
		for pspec, slug := range protos {
			var flows []FlowSpec
			var streams []StreamSpec
			for _, s := range preset.Set {
				flows = append(flows, FlowSpec{
					Name: s.Name, Src: "r", PeriodMs: s.Period * 1e3, LengthBits: s.LengthBits,
				})
				streams = append(streams, StreamSpec{
					Name: s.Name, PeriodMs: s.Period * 1e3, LengthBits: s.LengthBits,
				})
			}
			topoResp, err := AnalyzeTopology(ctx, TopologyRequest{
				Topology: fmt.Sprintf("ring:name=r,proto=%s,bw=80e6", pspec),
				Flows:    flows,
				Detail:   true,
			})
			if err != nil {
				t.Fatalf("%s/%s: %v", preset.Name, slug, err)
			}
			direct, err := Analyze(ctx, AnalyzeRequest{
				Protocols:     []string{slug},
				BandwidthMbps: 80,
				Streams:       streams,
				Detail:        true,
			})
			if err != nil {
				t.Fatalf("%s/%s: %v", preset.Name, slug, err)
			}
			if len(topoResp.Rings) != 1 || topoResp.Rings[0].Verdict == nil {
				t.Fatalf("%s/%s: want 1 ring with a verdict, got %+v", preset.Name, slug, topoResp.Rings)
			}
			got := *topoResp.Rings[0].Verdict
			want := direct.Verdicts[0]
			// The topology path zeroes non-finite stream fields before
			// marshaling; apply the same to the direct verdict so the
			// comparison is field-for-field fair.
			sanitizeVerdict(&want)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s/%s: topology ring verdict differs from /v1/analyze:\n got  %+v\n want %+v",
					preset.Name, slug, got, want)
			}
			if topoResp.Rings[0].Schedulable != want.Schedulable {
				t.Errorf("%s/%s: ring schedulable %v != verdict %v",
					preset.Name, slug, topoResp.Rings[0].Schedulable, want.Schedulable)
			}
			// Every flow is local, so each must be bounded by its ring
			// response alone with no bridge delays.
			for _, f := range topoResp.Flows {
				if len(f.BridgeDelaysMs) != 0 || len(f.Path) != 1 {
					t.Errorf("%s/%s: local flow %q crossed bridges: %+v", preset.Name, slug, f.Name, f)
				}
			}
		}
	}
}

// TestTopologyRequestCanonicalization pins that structured flows and spec
// clauses canonicalize to the same request — and the same cache key.
func TestTopologyRequestCanonicalization(t *testing.T) {
	viaSpec := TopologyRequest{
		Topology: "ring:name=r,proto=8025,bw=16e6" +
			" + flow:name=x,src=r,period=10ms,bits=2048" +
			" + flow:name=y,src=r,period=25ms,bits=4096",
	}
	viaFlows := TopologyRequest{
		Topology: "ring:name=r,proto=8025,bw=16000000",
		Flows: []FlowSpec{
			// Reversed order and defaulted Dst; canonicalization sorts.
			{Name: "y", Src: "r", PeriodMs: 25, LengthBits: 4096},
			{Name: "x", Src: "r", Dst: "r", PeriodMs: 10, LengthBits: 2048},
		},
	}
	a, err := viaSpec.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	b, err := viaFlows.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	if a.Topology != b.Topology {
		t.Errorf("canonical specs differ:\n %q\n %q", a.Topology, b.Topology)
	}
	if a.CacheKey() != b.CacheKey() {
		t.Error("equivalent requests hash differently")
	}
	detailed := a
	detailed.Detail = true
	if detailed.CacheKey() == a.CacheKey() {
		t.Error("detail flag must change the cache key")
	}

	for _, bad := range []TopologyRequest{
		{},
		{Topology: "ring:name=r,proto=nope"},
		{Topology: "ring:name=r", Flows: []FlowSpec{{Src: "ghost", PeriodMs: 10, LengthBits: 1}}},
		{Topology: "ring:name=r", Flows: []FlowSpec{{Src: "r", PeriodMs: -1, LengthBits: 1}}},
	} {
		if _, err := bad.Canonicalize(); err == nil {
			t.Errorf("invalid request accepted: %+v", bad)
		}
	}
}

// TestTopologyEndpointServesBridgedLine exercises the full HTTP path: a
// bridged 3-ring request returns per-ring verdicts and finite end-to-end
// bounds, repeats hit the cache bit-identically, and bad specs get 400.
func TestTopologyEndpointServesBridgedLine(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body, err := json.Marshal(TopologyRequest{Topology: lineTopologySpec, Detail: true})
	if err != nil {
		t.Fatal(err)
	}

	resp1, b1 := post(t, ts.URL+"/v1/topology/analyze", string(body))
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp1.StatusCode, b1)
	}
	if got := resp1.Header.Get("X-Cache"); got != "miss" {
		t.Errorf("first request X-Cache = %q", got)
	}
	var out TopologyResponse
	if err := json.Unmarshal(b1, &out); err != nil {
		t.Fatal(err)
	}
	if !out.Schedulable || !out.Bounded {
		t.Errorf("fixture must be schedulable and bounded: %+v", out)
	}
	if len(out.Rings) != 3 || len(out.Flows) != 3 || len(out.Bridges) == 0 {
		t.Fatalf("%d rings, %d flows, %d bridges", len(out.Rings), len(out.Flows), len(out.Bridges))
	}
	for _, rv := range out.Rings {
		if rv.Verdict == nil || len(rv.Verdict.Streams) == 0 {
			t.Errorf("ring %q missing detailed verdict", rv.Name)
		}
	}
	for _, f := range out.Flows {
		if !f.Bounded || f.BoundMs <= 0 {
			t.Errorf("flow %q not bounded: %+v", f.Name, f)
		}
		if len(f.RingDelaysMs) != len(f.Path) {
			t.Errorf("flow %q: %d ring delays for %d hops", f.Name, len(f.RingDelaysMs), len(f.Path))
		}
	}
	// The cross flow spans a—b—c and pays two bridge delays.
	for _, f := range out.Flows {
		if f.Name == "cross" && (len(f.Path) != 3 || len(f.BridgeDelaysMs) != 2) {
			t.Errorf("cross flow path %v bridges %v", f.Path, f.BridgeDelaysMs)
		}
	}

	resp2, b2 := post(t, ts.URL+"/v1/topology/analyze", string(body))
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("repeat request X-Cache = %q", got)
	}
	if string(b1) != string(b2) {
		t.Error("cached response not bit-identical")
	}

	if resp, b := post(t, ts.URL+"/v1/topology/analyze", `{"topology": "ring:name=r,proto=nope"}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad spec: status %d: %s", resp.StatusCode, b)
	}
	if resp, _ := post(t, ts.URL+"/v1/topology/analyze", `{`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad JSON: status %d", resp.StatusCode)
	}
	getResp, err := http.Get(ts.URL + "/v1/topology/analyze")
	if err != nil {
		t.Fatal(err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET: status %d", getResp.StatusCode)
	}
}

// TestTopologyUnstableBridgeStillMarshals pins the JSON contract for
// infinite bounds: an overloaded bridge direction yields Stable=false and
// Bounded=false with the infinite fields omitted, never a marshal error.
func TestTopologyUnstableBridgeStillMarshals(t *testing.T) {
	spec := "ring:name=a,proto=8025,bw=16e6 + ring:name=b,proto=8025,bw=16e6" +
		" + bridge:a=a,b=b,rate=1e3" +
		" + flow:name=f,src=a,dst=b,period=100ms,bits=4096"
	resp, err := AnalyzeTopology(context.Background(), TopologyRequest{Topology: spec})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Bounded || resp.Schedulable {
		t.Errorf("overloaded bridge reported bounded/schedulable: %+v", resp)
	}
	var unstable *TopologyBridgeVerdict
	for i := range resp.Bridges {
		if !resp.Bridges[i].Stable {
			unstable = &resp.Bridges[i]
		}
	}
	if unstable == nil {
		t.Fatal("no unstable bridge direction reported")
	}
	if unstable.DelayBoundMs != 0 || unstable.BurstBits != 0 {
		t.Errorf("unstable direction carries bound fields: %+v", unstable)
	}
	b, err := Encode(resp)
	if err != nil {
		t.Fatalf("response with infinite analytical bounds failed to marshal: %v", err)
	}
	if strings.Contains(string(b), "Inf") {
		t.Errorf("marshaled response leaks an infinity:\n%s", b)
	}
	for _, f := range resp.Flows {
		if f.Bounded || f.BoundMs != 0 || f.RingDelaysMs != nil {
			t.Errorf("unbounded flow carries bound fields: %+v", f)
		}
	}
}
