package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"ringsched/internal/promtext"
)

// The request flight recorder: a bounded, lock-sharded ring buffer of
// per-request digests behind /debug/requests. Where a span ring answers
// "what happened inside request X", the recorder answers "which requests
// happened" — slow ones, errored ones, per endpoint — each row carrying
// the trace ID that unlocks the full federated trace. It also feeds the
// ringschedd_slo_* burn-rate counters and the latency-histogram
// exemplars, so an alerting pipeline lands on a trace ID in two hops.

// RequestRecord is one request digest.
type RequestRecord struct {
	Time     time.Time `json:"time"`
	Method   string    `json:"method"`
	Endpoint string    `json:"endpoint"`
	// Key is the canonical cache key, when the request reached the
	// cached path ("" otherwise). Two rows with equal keys asked for the
	// same computation, whatever their wire bodies looked like.
	Key  string `json:"key,omitempty"`
	Code int    `json:"code"`
	// Cache is the X-Cache disposition: hit, coalesced, peer, miss, or
	// "" for endpoints outside the cached path.
	Cache     string  `json:"cache,omitempty"`
	LatencyMs float64 `json:"latencyMs"`
	TraceID   string  `json:"traceId"`
}

// digestKey carries the mutable per-request digest through the handler
// chain: instrument allocates it, serveCached fills in the canonical key.
type digestCtxKey struct{}

type requestDigest struct {
	key string
}

func withDigest(ctx context.Context) (context.Context, *requestDigest) {
	d := &requestDigest{}
	return context.WithValue(ctx, digestCtxKey{}, d), d
}

// setDigestKey records the canonical cache key on the request digest, if
// the request is being recorded.
func setDigestKey(ctx context.Context, key string) {
	if d, ok := ctx.Value(digestCtxKey{}).(*requestDigest); ok {
		d.key = key
	}
}

const recorderShards = 16

type recorderShard struct {
	mu   sync.Mutex
	buf  []RequestRecord
	next int
	full bool
}

// recorder is the sharded ring buffer. Records land in the shard picked
// by their trace ID, so concurrent requests contend on different locks
// while one request's retries stay colocated.
type recorder struct {
	shards [recorderShards]recorderShard
	total  atomic.Uint64
}

func newRecorder(capacity int) *recorder {
	if capacity < recorderShards {
		capacity = recorderShards
	}
	r := &recorder{}
	per := (capacity + recorderShards - 1) / recorderShards
	for i := range r.shards {
		r.shards[i].buf = make([]RequestRecord, per)
	}
	return r
}

// fnv1a hashes a string without allocating (hash/fnv's interface forces
// a []byte conversion; the record path budget is ≤1 alloc).
func fnv1a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// Record stores one digest.
func (r *recorder) Record(rec RequestRecord) {
	sh := &r.shards[fnv1a(rec.TraceID)%recorderShards]
	sh.mu.Lock()
	sh.buf[sh.next] = rec
	sh.next++
	if sh.next == len(sh.buf) {
		sh.next = 0
		sh.full = true
	}
	sh.mu.Unlock()
	r.total.Add(1)
}

// Total counts records ever stored.
func (r *recorder) Total() uint64 { return r.total.Load() }

// Snapshot returns the retained records ordered newest first (the order
// an operator debugging "what just happened" wants).
func (r *recorder) Snapshot() []RequestRecord {
	var out []RequestRecord
	for i := range r.shards {
		sh := &r.shards[i]
		sh.mu.Lock()
		if sh.full {
			out = append(out, sh.buf[sh.next:]...)
		}
		out = append(out, sh.buf[:sh.next]...)
		sh.mu.Unlock()
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Time.After(out[j].Time) })
	return out
}

// requestsQuery is the /debug/requests filter set.
type requestsQuery struct {
	minLatency time.Duration // 0 = no latency floor
	errorsOnly bool          // code >= 400
	endpoint   string
	limit      int
}

func (q requestsQuery) match(rec RequestRecord) bool {
	if q.minLatency > 0 && rec.LatencyMs < float64(q.minLatency)/float64(time.Millisecond) {
		return false
	}
	if q.errorsOnly && rec.Code < 400 {
		return false
	}
	if q.endpoint != "" && rec.Endpoint != q.endpoint {
		return false
	}
	return true
}

// handleRequests serves GET /debug/requests with ?slow= (minimum
// latency in ms; a bare "slow" uses the configured SLO threshold),
// ?errors=1, ?endpoint=, and ?limit= filters.
func (s *Server) handleRequests(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	params := r.URL.Query()
	q := requestsQuery{endpoint: params.Get("endpoint"), limit: 100}
	fail := func(msg string) {
		w.WriteHeader(http.StatusBadRequest)
		out, _ := json.Marshal(map[string]string{"error": msg, "code": "bad_request"})
		w.Write(append(out, '\n'))
	}
	if _, ok := params["slow"]; ok {
		raw := params.Get("slow")
		if raw == "" {
			q.minLatency = s.cfg.SlowThreshold
		} else {
			ms, err := strconv.ParseFloat(raw, 64)
			if err != nil || ms < 0 {
				fail("bad slow: want a non-negative number of milliseconds")
				return
			}
			q.minLatency = time.Duration(ms * float64(time.Millisecond))
		}
	}
	if raw := params.Get("errors"); raw != "" && raw != "0" && raw != "false" {
		q.errorsOnly = true
	}
	if raw := params.Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 0 {
			fail("bad limit: want a non-negative integer")
			return
		}
		q.limit = n
	}

	all := s.recorder.Snapshot()
	matched := make([]RequestRecord, 0, len(all))
	for _, rec := range all {
		if q.match(rec) {
			matched = append(matched, rec)
		}
	}
	if q.limit > 0 && len(matched) > q.limit {
		matched = matched[:q.limit]
	}
	out, err := json.Marshal(map[string]any{
		"total":    s.recorder.Total(),
		"retained": len(matched),
		"requests": matched,
	})
	if err != nil {
		w.WriteHeader(http.StatusInternalServerError)
		body, _ := json.Marshal(map[string]string{"error": err.Error(), "code": "internal"})
		w.Write(append(body, '\n'))
		return
	}
	w.Write(append(out, '\n'))
}

// sloClass buckets one finished request for the burn-rate counters:
// error (5xx), slow (over the threshold), or good. 4xx is "good" — the
// server answered correctly; client mistakes must not burn the budget.
func sloClass(code int, elapsed, slowThreshold time.Duration) string {
	switch {
	case code >= 500:
		return "error"
	case elapsed > slowThreshold:
		return "slow"
	default:
		return "good"
	}
}

// exemplarKey identifies one (endpoint, histogram bucket) cell.
type exemplarKey struct {
	endpoint string
	bucket   int // index into promtext.LatencyBuckets; len() = +Inf
}

type exemplar struct {
	traceID string
	seconds float64
}

// exemplarVec keeps the most recent trace exemplar per latency bucket.
// The text exposition format (0.0.4) has no native exemplar syntax —
// that's OpenMetrics — so Write renders them as a sibling gauge family
// (<name>_exemplars{endpoint, le, traceId} = seconds), which any
// text-format scraper accepts and an operator can join by le.
type exemplarVec struct {
	name, help string
	mu         sync.Mutex
	cells      map[exemplarKey]exemplar
}

func newExemplarVec(name, help string) *exemplarVec {
	return &exemplarVec{name: name, help: help, cells: map[exemplarKey]exemplar{}}
}

// Observe files one sample into its bucket cell, last write wins.
func (e *exemplarVec) Observe(endpoint, traceID string, seconds float64) {
	bucket := len(promtext.LatencyBuckets)
	for i, le := range promtext.LatencyBuckets {
		if seconds <= le {
			bucket = i
			break
		}
	}
	e.mu.Lock()
	e.cells[exemplarKey{endpoint, bucket}] = exemplar{traceID, seconds}
	e.mu.Unlock()
}

// Write renders the exemplar gauge family.
func (e *exemplarVec) Write(w io.Writer) {
	e.mu.Lock()
	keys := make([]exemplarKey, 0, len(e.cells))
	for k := range e.cells {
		keys = append(keys, k)
	}
	e.mu.Unlock()
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].endpoint != keys[j].endpoint {
			return keys[i].endpoint < keys[j].endpoint
		}
		return keys[i].bucket < keys[j].bucket
	})
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n", e.name, promtext.EscapeHelp(e.help), e.name)
	for _, k := range keys {
		e.mu.Lock()
		cell, ok := e.cells[k]
		e.mu.Unlock()
		if !ok {
			continue
		}
		le := "+Inf"
		if k.bucket < len(promtext.LatencyBuckets) {
			le = strconv.FormatFloat(promtext.LatencyBuckets[k.bucket], 'g', -1, 64)
		}
		fmt.Fprintf(w, "%s%s %s\n", e.name,
			promtext.Labels("endpoint", k.endpoint, "le", le, "traceId", cell.traceID),
			promtext.FormatSample(cell.seconds))
	}
}
