package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"ringsched/internal/progress"
	"ringsched/internal/trace"
)

// Config tunes a Server. The zero value serves with sensible defaults.
type Config struct {
	// CacheBytes is the result cache budget (default 64 MiB).
	CacheBytes int64
	// Workers bounds concurrent computations (default GOMAXPROCS).
	Workers int
	// JobTimeout deadlines each computation (default 5m; negative
	// disables).
	JobTimeout time.Duration
	// SampleEvery coalesces SSE sample events (default 64).
	SampleEvery int64
	// Logger receives one structured record per API request (and drain /
	// lifecycle events from the daemon). nil discards logs.
	Logger *slog.Logger
	// TraceSpans is the capacity of the in-memory span ring behind
	// /debug/traces (default 4096).
	TraceSpans int
	// TraceSink, when non-nil, additionally receives every finished span
	// (e.g. a JSONL file sink); the in-memory ring and the stage-latency
	// histograms are always fed regardless.
	TraceSink trace.Sink
}

func (c Config) withDefaults() Config {
	if c.CacheBytes <= 0 {
		c.CacheBytes = 64 << 20
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.JobTimeout == 0 {
		c.JobTimeout = 5 * time.Minute
	}
	if c.JobTimeout < 0 {
		c.JobTimeout = 0
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 64
	}
	if c.TraceSpans <= 0 {
		c.TraceSpans = 4096
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	return c
}

// Server is the ringschedd HTTP API: /v1/analyze, /v1/sweep,
// /v1/experiments, /healthz and /metrics. Create one with New, expose it
// via Handler, and stop it with BeginDrain (reject new work) followed by
// Close (cancel whatever is still running).
type Server struct {
	cfg    Config
	mux    *http.ServeMux
	cache  *Cache
	flight *flightGroup

	baseCtx    context.Context
	baseCancel context.CancelFunc
	draining   atomic.Bool
	inflight   atomic.Int64

	tracer *trace.Tracer
	spans  *trace.Ring
	logger *slog.Logger

	requests  *counterVec   // endpoint, code
	latency   *histogramVec // endpoint
	computes  *counterVec   // endpoint
	verdicts  *counterVec   // protocol, schedulable
	canceled  *counterVec   // endpoint
	sseStream *counterVec   // endpoint (streams opened)
	stages    *histogramVec // stage (trace-derived)
}

// stageForSpan maps span names to the /metrics stage label, so the
// trace pipeline doubles as the per-stage latency instrumentation:
// ringschedd_stage_seconds is derived from the same spans /debug/traces
// shows, and the two can never disagree.
var stageForSpan = map[string]string{
	"canonicalize": "canonicalize",
	"cache.lookup": "cache",
	"kernel":       "kernel",
	"encode":       "encode",
}

// New builds a Server ready to serve.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	baseCtx, baseCancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		mux:        http.NewServeMux(),
		cache:      NewCache(cfg.CacheBytes),
		baseCtx:    baseCtx,
		baseCancel: baseCancel,
		spans:      trace.NewRing(cfg.TraceSpans),
		logger:     cfg.Logger,
		requests:   newCounterVec("ringschedd_requests_total", "HTTP requests by endpoint and status code."),
		latency:    newHistogramVec("ringschedd_request_seconds", "HTTP request latency by endpoint."),
		computes:   newCounterVec("ringschedd_computations_total", "Underlying computations performed (cache misses that were not coalesced)."),
		verdicts:   newCounterVec("ringschedd_verdicts_total", "Analysis verdicts by protocol and outcome."),
		canceled:   newCounterVec("ringschedd_canceled_total", "Requests that ended with a canceled or expired context."),
		sseStream:  newCounterVec("ringschedd_sse_streams_total", "Progress streams opened by endpoint."),
		stages:     newHistogramVec("ringschedd_stage_seconds", "Trace-derived latency by request stage (canonicalize, cache, kernel, encode)."),
	}
	stageSink := trace.SinkFunc(func(rec trace.Record) {
		if stage, ok := stageForSpan[rec.Name]; ok {
			s.stages.observe(labels("stage", stage), rec.DurationUS/1e6)
		}
	})
	s.tracer = trace.New(trace.Tee(s.spans, stageSink, cfg.TraceSink))
	s.flight = newFlightGroup(baseCtx, cfg.Workers, cfg.JobTimeout)
	s.mux.HandleFunc("/v1/analyze", s.instrument("analyze", s.handleAnalyze))
	s.mux.HandleFunc("/v1/topology/analyze", s.instrument("topology", s.handleTopology))
	s.mux.HandleFunc("/v1/sweep", s.instrument("sweep", s.handleSweep))
	s.mux.HandleFunc("/v1/experiments", s.instrument("experiments", s.handleExperiments))
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.registerDebug()
	return s
}

// Handler returns the root handler.
func (s *Server) Handler() http.Handler { return s.mux }

// BeginDrain switches the server to draining: /healthz turns 503 (so load
// balancers stop routing here) and new API requests are rejected with
// 503, while requests already in flight run to completion.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Close cancels every remaining computation. Call it after the HTTP
// listener has drained (http.Server.Shutdown).
func (s *Server) Close() { s.baseCancel() }

// InFlight returns the number of API requests currently being served.
func (s *Server) InFlight() int64 { return s.inflight.Load() }

// statusWriter records the response code and passes Flush through so SSE
// works behind the instrumentation wrapper.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps an API handler with draining rejection, in-flight
// tracking, request/latency metrics, a root span, and one structured log
// record per request. A well-formed X-Ringsched-Trace request header is
// adopted as the trace ID (letting clients stitch our spans into their own
// traces); the response always carries the header so a curl user can plug
// its value straight into /debug/traces?trace=.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		s.inflight.Add(1)

		// A malformed header must not fail the request: fall back to a
		// fresh trace ID and note the rejection on the span.
		id, idErr := trace.ParseTraceID(r.Header.Get("X-Ringsched-Trace"))
		ctx := trace.WithTracer(r.Context(), s.tracer)
		ctx, sp := trace.StartRoot(ctx, "http."+endpoint, id)
		sp.SetAttr("method", r.Method)
		if idErr != nil {
			sp.SetAttr("badTraceHeader", true)
		}
		sw.Header().Set("X-Ringsched-Trace", sp.TraceID().String())
		r = r.WithContext(ctx)

		defer func() {
			s.inflight.Add(-1)
			elapsed := time.Since(start)
			s.requests.add(labels("code", strconv.Itoa(sw.code), "endpoint", endpoint), 1)
			s.latency.observe(labels("endpoint", endpoint), elapsed.Seconds())
			sp.SetAttr("code", sw.code)
			sp.End()
			s.logger.LogAttrs(ctx, slog.LevelInfo, "request",
				slog.String("endpoint", endpoint),
				slog.String("method", r.Method),
				slog.Int("code", sw.code),
				slog.Duration("elapsed", elapsed),
				slog.String("cache", sw.Header().Get("X-Cache")))
		}()
		if s.draining.Load() {
			writeError(sw, http.StatusServiceUnavailable, errors.New("service: draining, not accepting new work"))
			return
		}
		h(sw, r)
	}
}

// writeError emits a JSON error body with the given status.
func writeError(w http.ResponseWriter, code int, err error) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	body, _ := json.Marshal(map[string]string{"error": err.Error()})
	w.Write(append(body, '\n'))
}

// statusFor maps computation errors to HTTP statuses.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrBadRequest) || errors.Is(err, ErrUnknownProtocol):
		return http.StatusBadRequest
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) noteCancel(endpoint string, err error) {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		s.canceled.add(labels("endpoint", endpoint), 1)
	}
}

// decode parses a request body strictly.
func decode(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return nil
}

// serveCached runs the cache → coalesce → compute path shared by analyze
// and non-streaming sweep and writes the response body. compute must
// return the exact bytes to serve; they are cached under key.
func (s *Server) serveCached(w http.ResponseWriter, r *http.Request, endpoint, key string, compute func(context.Context) ([]byte, error)) {
	_, lookup := trace.Start(r.Context(), "cache.lookup")
	body, cached := s.cache.Get(key)
	if cached {
		lookup.SetAttr("outcome", "hit")
	} else {
		lookup.SetAttr("outcome", "miss")
	}
	lookup.End()
	if cached {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Cache", "hit")
		w.Write(body)
		return
	}
	// The flight group's compute context derives from the server's base
	// context, not from this request (the computation must survive the
	// first caller hanging up while followers wait). Graft this request's
	// span onto it so the kernel span still lands in this trace — and in
	// the leader's trace only: coalesced followers never run fn, so their
	// traces record just the wait below.
	parent := trace.SpanFromContext(r.Context())
	body, shared, err := s.flight.do(r.Context(), key, func(ctx context.Context) ([]byte, error) {
		kctx, ksp := trace.Start(trace.ContextWithSpan(ctx, parent), "kernel")
		defer ksp.End()
		ksp.SetAttr("endpoint", endpoint)
		s.computes.add(labels("endpoint", endpoint), 1)
		b, err := compute(kctx)
		if err != nil {
			ksp.SetError(err)
			return nil, err
		}
		s.cache.Put(key, b)
		return b, nil
	})
	if sp := trace.SpanFromContext(r.Context()); sp != nil {
		sp.SetAttr("coalesced", shared)
	}
	if err != nil {
		s.noteCancel(endpoint, err)
		writeError(w, statusFor(err), err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if shared {
		w.Header().Set("X-Cache", "coalesced")
	} else {
		w.Header().Set("X-Cache", "miss")
	}
	w.Write(body)
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("service: POST required"))
		return
	}
	var req AnalyzeRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	_, csp := trace.Start(r.Context(), "canonicalize")
	canon, err := req.Canonicalize()
	csp.SetError(err)
	csp.End()
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	key := canon.CacheKey()
	s.serveCached(w, r, "analyze", key, func(ctx context.Context) ([]byte, error) {
		resp, err := analyzeCanonical(ctx, canon, key)
		if err != nil {
			return nil, err
		}
		for _, v := range resp.Verdicts {
			s.verdicts.add(labels("protocol", v.Protocol, "schedulable", strconv.FormatBool(v.Schedulable)), 1)
		}
		return encodeTraced(ctx, resp)
	})
}

// handleTopology serves /v1/topology/analyze through the same
// canonicalize → cache → coalesce → compute path as /v1/analyze; a 1-node
// topology therefore reports exactly the verdict the direct endpoint
// would, cached under its own canonical key.
func (s *Server) handleTopology(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("service: POST required"))
		return
	}
	var req TopologyRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	_, csp := trace.Start(r.Context(), "canonicalize")
	canon, err := req.Canonicalize()
	csp.SetError(err)
	csp.End()
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	key := canon.CacheKey()
	s.serveCached(w, r, "topology", key, func(ctx context.Context) ([]byte, error) {
		resp, err := topologyCanonical(ctx, canon, key)
		if err != nil {
			return nil, err
		}
		for _, rv := range resp.Rings {
			s.verdicts.add(labels("protocol", rv.Protocol, "schedulable", strconv.FormatBool(rv.Schedulable)), 1)
		}
		return encodeTraced(ctx, resp)
	})
}

// wantsSSE reports whether the client asked for a progress stream.
func wantsSSE(r *http.Request) bool {
	return r.Header.Get("Accept") == "text/event-stream" || r.URL.Query().Get("stream") == "sse"
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("service: POST required"))
		return
	}
	var req SweepRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	_, csp := trace.Start(r.Context(), "canonicalize")
	canon, err := req.Canonicalize()
	csp.SetError(err)
	csp.End()
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	key := canon.CacheKey()
	if wantsSSE(r) {
		s.streamSweep(w, r, canon, key)
		return
	}
	s.serveCached(w, r, "sweep", key, func(ctx context.Context) ([]byte, error) {
		resp, err := sweepCanonical(ctx, canon, key, s.cfg.Workers, nil)
		if err != nil {
			return nil, err
		}
		return encodeTraced(ctx, resp)
	})
}

// streamSweep serves one sweep as an SSE stream: progress frames while
// the Monte Carlo pools run, then a final "result" (or "error") frame.
// The job runs under the request context — closing the stream cancels the
// workers promptly — but still occupies a pool slot and still feeds the
// result cache, so a later identical request is a hit.
func (s *Server) streamSweep(w http.ResponseWriter, r *http.Request, canon SweepRequest, key string) {
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("service: streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	s.sseStream.add(labels("endpoint", "sweep"), 1)

	sse := progress.NewSSE(w, flusher.Flush, s.cfg.SampleEvery)
	if body, ok := s.cache.Get(key); ok {
		sse.Event("result", json.RawMessage(body))
		return
	}
	// The sweep runs inline on this handler goroutine — never in the
	// flight group — because its progress frames write through a
	// ResponseWriter that dies when this handler returns; a detached
	// worker would write into a reclaimed response. It still takes a pool
	// slot, so streams and coalesced jobs share one computation budget.
	// The job context closes with the client (cancelling the Monte Carlo
	// workers promptly), with the server's base context (so Close reaps
	// lingering streams), and with the job timeout.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stop := context.AfterFunc(s.baseCtx, cancel)
	defer stop()
	if s.cfg.JobTimeout > 0 {
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeout(ctx, s.cfg.JobTimeout)
		defer tcancel()
	}
	if err := s.flight.acquire(ctx); err != nil {
		s.noteCancel("sweep", err)
		sse.Event("error", map[string]string{"error": err.Error()})
		return
	}
	defer s.flight.release()
	s.computes.add(labels("endpoint", "sweep"), 1)
	resp, err := sweepCanonical(ctx, canon, key, s.cfg.Workers, sse)
	if err != nil {
		s.noteCancel("sweep", err)
		sse.Event("error", map[string]string{"error": err.Error()})
		return
	}
	body, err := Encode(resp)
	if err != nil {
		sse.Event("error", map[string]string{"error": err.Error()})
		return
	}
	s.cache.Put(key, body)
	sse.Event("result", json.RawMessage(body))
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		body, err := Encode(map[string][]ExperimentInfo{"experiments": ListExperiments()})
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
	case http.MethodPost:
		var req ExperimentsRequest
		if err := decode(r, &req); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		// Experiment batches are not cached: they are operator-initiated
		// rarities, and their reports can be large.
		resp, err := RunExperiments(r.Context(), req, s.cfg.Workers, nil)
		if err != nil {
			s.noteCancel("experiments", err)
			writeError(w, statusFor(err), err)
			return
		}
		body, err := Encode(resp)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
	default:
		writeError(w, http.StatusMethodNotAllowed, errors.New("service: GET or POST required"))
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"draining"}`)
		return
	}
	fmt.Fprintln(w, `{"status":"ok"}`)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.requests.write(w)
	s.latency.write(w)
	s.computes.write(w)
	s.verdicts.write(w)
	s.canceled.write(w)
	s.sseStream.write(w)
	s.stages.write(w)
	buildInfo(w)
	for _, g := range []gaugeFunc{
		{"ringschedd_cache_hits_total", "Result cache hits.", "counter", func() float64 { return float64(s.cache.Hits()) }},
		{"ringschedd_cache_misses_total", "Result cache misses.", "counter", func() float64 { return float64(s.cache.Misses()) }},
		{"ringschedd_cache_evictions_total", "Result cache evictions.", "counter", func() float64 { return float64(s.cache.Evictions()) }},
		{"ringschedd_cache_bytes", "Resident result cache size in bytes.", "", func() float64 { return float64(s.cache.Bytes()) }},
		{"ringschedd_cache_entries", "Resident result cache entries.", "", func() float64 { return float64(s.cache.Entries()) }},
		{"ringschedd_coalesced_total", "Callers that joined an in-flight identical computation.", "counter", func() float64 { return float64(s.flight.coalesced.Load()) }},
		{"ringschedd_abandoned_total", "Computations cancelled because every caller left.", "counter", func() float64 { return float64(s.flight.abandoned.Load()) }},
		{"ringschedd_pool_queued", "Jobs waiting for a worker slot.", "", func() float64 { q, _ := s.flight.Depth(); return float64(q) }},
		{"ringschedd_pool_running", "Jobs currently computing.", "", func() float64 { _, r := s.flight.Depth(); return float64(r) }},
		{"ringschedd_http_in_flight", "API requests currently being served.", "", func() float64 { return float64(s.InFlight()) }},
	} {
		g.write(w)
	}
}
