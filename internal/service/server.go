package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"runtime"
	"strconv"
	"sync/atomic"
	"time"

	"ringsched/internal/progress"
	"ringsched/internal/resilience"
	"ringsched/internal/ringstate"
	"ringsched/internal/trace"
)

// Config tunes a Server. The zero value serves with sensible defaults.
type Config struct {
	// CacheBytes is the result cache budget (default 64 MiB).
	CacheBytes int64
	// Workers bounds concurrent computations (default GOMAXPROCS).
	Workers int
	// JobTimeout deadlines each computation (default 5m; negative
	// disables).
	JobTimeout time.Duration
	// SampleEvery coalesces SSE sample events (default 64).
	SampleEvery int64
	// Logger receives one structured record per API request (and drain /
	// lifecycle events from the daemon). nil discards logs.
	Logger *slog.Logger
	// TraceSpans is the capacity of the in-memory span ring behind
	// /debug/traces (default 4096).
	TraceSpans int
	// TraceSink, when non-nil, additionally receives every finished span
	// (e.g. a JSONL file sink); the in-memory ring and the stage-latency
	// histograms are always fed regardless.
	TraceSink trace.Sink
	// QueueDepth bounds computations waiting for a worker slot before
	// arrivals are shed with 503 (default 4×Workers; negative disables
	// the bound — deadline-infeasibility shedding still applies).
	QueueDepth int
	// ClientRPS enables per-client token-bucket rate limiting at this
	// many requests per second (0 disables).
	ClientRPS float64
	// ClientBurst is the per-client burst allowance (default 2×ClientRPS,
	// minimum 1). Only meaningful when ClientRPS > 0.
	ClientBurst float64
	// MaxClients bounds resident rate-limiter buckets (default 1024).
	MaxClients int
	// Chaos configures deterministic fault injection on the API
	// endpoints; the zero model injects nothing.
	Chaos resilience.ChaosModel
	// SSEKeepAlive is the idle heartbeat interval for progress streams
	// (default 15s; negative disables).
	SSEKeepAlive time.Duration
	// Advertise is this process's own cluster member address (host:port)
	// as peers reach it. Empty disables the cluster layer entirely.
	Advertise string
	// Peers lists the other members' advertise addresses. The member set
	// every process computes is Peers ∪ {Advertise}, so all replicas must
	// be configured with the same total set (in any order).
	Peers []string
	// PeerFillTimeout bounds one outbound peer cache-fill round trip
	// (default 2s); on expiry the process computes locally.
	PeerFillTimeout time.Duration
	// PeerVNodes is the consistent-hash virtual-node count per member
	// (default cluster.DefaultVNodes). All members must agree.
	PeerVNodes int
	// MaxRings bounds resident /v1/rings sessions (default
	// ringstate.DefaultMaxRings).
	MaxRings int
	// MaxRingStreams bounds streams per ring session (default
	// ringstate.DefaultMaxRingStreams).
	MaxRingStreams int
	// RequestLog is the capacity of the request flight recorder behind
	// /debug/requests (default 4096).
	RequestLog int
	// SlowThreshold classifies a request as "slow" for the SLO burn-rate
	// counters and the bare ?slow filter (default 1s).
	SlowThreshold time.Duration
}

func (c Config) withDefaults() Config {
	if c.CacheBytes <= 0 {
		c.CacheBytes = 64 << 20
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.JobTimeout == 0 {
		c.JobTimeout = 5 * time.Minute
	}
	if c.JobTimeout < 0 {
		c.JobTimeout = 0
	}
	if c.SampleEvery <= 0 {
		c.SampleEvery = 64
	}
	if c.TraceSpans <= 0 {
		c.TraceSpans = 4096
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.QueueDepth < 0 {
		c.QueueDepth = 0
	}
	if c.ClientRPS > 0 && c.ClientBurst <= 0 {
		c.ClientBurst = 2 * c.ClientRPS
		if c.ClientBurst < 1 {
			c.ClientBurst = 1
		}
	}
	if c.SSEKeepAlive == 0 {
		c.SSEKeepAlive = 15 * time.Second
	}
	if c.SSEKeepAlive < 0 {
		c.SSEKeepAlive = 0
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	if c.RequestLog <= 0 {
		c.RequestLog = 4096
	}
	if c.SlowThreshold <= 0 {
		c.SlowThreshold = time.Second
	}
	return clusterDefaults(c)
}

// Server is the ringschedd HTTP API: /v1/analyze, /v1/sweep,
// /v1/experiments, /healthz and /metrics. Create one with New, expose it
// via Handler, and stop it with BeginDrain (reject new work) followed by
// Close (cancel whatever is still running).
type Server struct {
	cfg    Config
	mux    *http.ServeMux
	cache  *Cache
	flight *flightGroup

	baseCtx    context.Context
	baseCancel context.CancelFunc
	draining   atomic.Bool
	inflight   atomic.Int64

	tracer *trace.Tracer
	spans  *trace.Ring
	logger *slog.Logger

	admission *resilience.Admission
	limiter   *resilience.Limiter
	chaos     *resilience.Chaos
	clust     *clusterState
	rings     *ringstate.Store

	requests    *counterVec   // endpoint, code
	latency     *histogramVec // endpoint
	computes    *counterVec   // endpoint
	verdicts    *counterVec   // protocol, schedulable
	canceled    *counterVec   // endpoint
	sseStream   *counterVec   // endpoint (streams opened)
	stages      *histogramVec // stage (trace-derived)
	shed        *counterVec   // endpoint, reason (queue_full | deadline)
	ratelimited *counterVec   // endpoint
	panics      *counterVec   // endpoint
	chaosInj    *counterVec   // kind (latency | error | reset)
	peerFill    *counterVec   // result (hit | miss | error); nil unless clustered

	ringEdits      *counterVec   // op (create | add | modify | remove | delete), outcome
	reprobeStreams *histogramVec // op — streams re-analyzed per incremental edit

	recorder  *recorder
	slo       *counterVec // endpoint, class (good | slow | error)
	exemplars *exemplarVec
}

// stageForSpan maps span names to the /metrics stage label, so the
// trace pipeline doubles as the per-stage latency instrumentation:
// ringschedd_stage_seconds is derived from the same spans /debug/traces
// shows, and the two can never disagree.
var stageForSpan = map[string]string{
	"canonicalize": "canonicalize",
	"cache.lookup": "cache",
	"kernel":       "kernel",
	"encode":       "encode",
}

// New builds a Server ready to serve.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	baseCtx, baseCancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:        cfg,
		mux:        http.NewServeMux(),
		cache:      NewCache(cfg.CacheBytes),
		baseCtx:    baseCtx,
		baseCancel: baseCancel,
		spans:      trace.NewRing(cfg.TraceSpans),
		logger:     cfg.Logger,
		requests:   newCounterVec("ringschedd_requests_total", "HTTP requests by endpoint and status code."),
		latency:    newHistogramVec("ringschedd_request_seconds", "HTTP request latency by endpoint."),
		computes:   newCounterVec("ringschedd_computations_total", "Underlying computations performed (cache misses that were not coalesced)."),
		verdicts:   newCounterVec("ringschedd_verdicts_total", "Analysis verdicts by protocol and outcome."),
		canceled:   newCounterVec("ringschedd_canceled_total", "Requests that ended with a canceled or expired context."),
		sseStream:  newCounterVec("ringschedd_sse_streams_total", "Progress streams opened by endpoint."),
		stages:     newHistogramVec("ringschedd_stage_seconds", "Trace-derived latency by request stage (canonicalize, cache, kernel, encode)."),
		shed:       newCounterVec("ringschedd_shed_total", "Requests shed on arrival by the admission controller, by endpoint and reason."),
		ratelimited: newCounterVec("ringschedd_ratelimited_total",
			"Requests rejected by the per-client rate limiter."),
		panics: newCounterVec("ringschedd_panics_total", "Handler panics recovered and answered with 500."),
		chaosInj: newCounterVec("ringschedd_chaos_injections_total",
			"Faults injected by the chaos middleware, by kind."),
		ringEdits: newCounterVec("ringschedd_ring_edits_total",
			"Ring-session mutations by operation and outcome (ok | conflict | error)."),
		reprobeStreams: newHistogramVec("ringschedd_reprobe_streams",
			"Streams re-analyzed per incremental ring edit, by operation."),
		recorder: newRecorder(cfg.RequestLog),
		slo: newCounterVec("ringschedd_slo_requests_total",
			"Finished requests by endpoint and SLO class (good | slow | error), for burn-rate alerting."),
		exemplars: newExemplarVec("ringschedd_request_seconds_exemplars",
			"Most recent trace exemplar per request-latency bucket; value is that sample's latency in seconds."),
	}
	s.rings = ringstate.NewStore(cfg.MaxRings, cfg.MaxRingStreams)
	s.admission = resilience.NewAdmission(cfg.Workers, cfg.QueueDepth)
	if cfg.ClientRPS > 0 {
		s.limiter = resilience.NewLimiter(cfg.ClientRPS, cfg.ClientBurst, cfg.MaxClients)
	}
	if cfg.Chaos.Enabled() {
		s.chaos = resilience.NewChaos(cfg.Chaos)
		s.chaos.OnInject = func(kind string) { s.chaosInj.Add(labels("kind", kind), 1) }
	}
	stageSink := trace.SinkFunc(func(rec trace.Record) {
		if stage, ok := stageForSpan[rec.Name]; ok {
			s.stages.Observe(labels("stage", stage), rec.DurationUS/1e6)
		}
	})
	s.tracer = trace.New(trace.Tee(s.spans, stageSink, cfg.TraceSink))
	s.flight = newFlightGroup(baseCtx, cfg.Workers, cfg.JobTimeout)
	s.flight.observe = s.admission.Observe
	s.mux.HandleFunc("/v1/analyze", s.instrument("analyze", s.handleAnalyze))
	s.mux.HandleFunc("/v1/topology/analyze", s.instrument("topology", s.handleTopology))
	s.mux.HandleFunc("/v1/sweep", s.instrument("sweep", s.handleSweep))
	s.mux.HandleFunc("/v1/experiments", s.instrument("experiments", s.handleExperiments))
	s.mux.HandleFunc("/v1/rings", s.instrument("rings", s.handleRings))
	s.mux.HandleFunc("/v1/rings/", s.instrument("rings", s.handleRingItem))
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/metrics", s.handleMetrics)
	s.initCluster(cfg)
	s.registerDebug()
	return s
}

// Handler returns the root handler.
func (s *Server) Handler() http.Handler { return s.mux }

// BeginDrain switches the server to draining: /healthz turns 503 (so load
// balancers stop routing here) and new API requests are rejected with
// 503, while requests already in flight run to completion.
func (s *Server) BeginDrain() { s.draining.Store(true) }

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Close cancels every remaining computation. Call it after the HTTP
// listener has drained (http.Server.Shutdown).
func (s *Server) Close() { s.baseCancel() }

// InFlight returns the number of API requests currently being served.
func (s *Server) InFlight() int64 { return s.inflight.Load() }

// statusWriter records the response code and passes Flush through so SSE
// works behind the instrumentation wrapper. wrote tracks whether any
// response bytes are committed, so the panic-recovery middleware knows
// whether a 500 can still be written.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// errDraining is the typed rejection for a draining server; the caller
// should retry against another replica almost immediately.
var errDraining = &resilience.Error{
	Code: resilience.CodeUnavailable, Status: http.StatusServiceUnavailable,
	Message: "service: draining, not accepting new work", RetryAfter: time.Second,
}

// clientKey identifies a client for rate limiting: the peer host,
// qualified by the X-Ringsched-Client header when present (load
// generators and tests use it to simulate distinct tenants). The header
// refines the transport identity rather than replacing it, so a caller
// minting header values stays inside its own host's keyspace instead of
// impersonating other tenants or spraying arbitrary global keys.
func clientKey(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		host = r.RemoteAddr
	}
	if k := r.Header.Get("X-Ringsched-Client"); k != "" {
		return host + "|" + k
	}
	return host
}

// deadlineHeader is the client deadline propagation header: the number
// of milliseconds the client is still willing to wait. The server turns
// it into a context deadline, so admission control can shed requests
// whose answers could only arrive too late.
const deadlineHeader = "X-Ringsched-Deadline-Ms"

// instrument wraps an API handler with the serving middleware chain, from
// the outside in: panic recovery (a handler bug answers 500 instead of
// killing the daemon), in-flight tracking, request/latency metrics, a
// root span and one structured log record, draining rejection, per-client
// rate limiting, client deadline propagation, and deterministic chaos
// injection. A well-formed X-Ringsched-Trace request header is adopted as
// the trace ID (letting clients stitch our spans into their own traces);
// the response always carries the header so a curl user can plug its
// value straight into /debug/traces?trace=.
func (s *Server) instrument(endpoint string, h http.HandlerFunc) http.HandlerFunc {
	return s.instrumentOpts(endpoint, h, false)
}

// instrumentOpts is instrument with the peer escape hatch: peerExempt
// skips per-client rate limiting, because peer fills are infrastructure
// traffic between replicas, not tenant traffic — throttling them would
// turn one tenant's burst into cluster-wide fill failures.
func (s *Server) instrumentOpts(endpoint string, h http.HandlerFunc, peerExempt bool) http.HandlerFunc {
	// Chaos wraps the innermost handler so injected faults see the final
	// request context (deadline included) and pay the same metrics as
	// real responses; a nil/disabled chaos is a free passthrough.
	inner := s.chaos.Wrap(http.HandlerFunc(h))
	return func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		start := time.Now()
		s.inflight.Add(1)

		// A malformed header must not fail the request: fall back to a
		// fresh trace ID and note the rejection on the span.
		id, idErr := trace.ParseTraceID(r.Header.Get("X-Ringsched-Trace"))
		ctx := trace.WithTracer(r.Context(), s.tracer)
		ctx, sp := trace.StartRoot(ctx, "http."+endpoint, id)
		sp.SetAttr("method", r.Method)
		if idErr != nil {
			sp.SetAttr("badTraceHeader", true)
		}
		sw.Header().Set("X-Ringsched-Trace", sp.TraceID().String())
		ctx, dig := withDigest(ctx)

		defer func() {
			s.inflight.Add(-1)
			elapsed := time.Since(start)
			s.requests.Add(labels("code", strconv.Itoa(sw.code), "endpoint", endpoint), 1)
			s.latency.Observe(labels("endpoint", endpoint), elapsed.Seconds())
			traceID := sp.TraceID().String()
			s.slo.Add(labels("class", sloClass(sw.code, elapsed, s.cfg.SlowThreshold), "endpoint", endpoint), 1)
			s.exemplars.Observe(endpoint, traceID, elapsed.Seconds())
			s.recorder.Record(RequestRecord{
				Time:      start,
				Method:    r.Method,
				Endpoint:  endpoint,
				Key:       dig.key,
				Code:      sw.code,
				Cache:     sw.Header().Get("X-Cache"),
				LatencyMs: float64(elapsed) / float64(time.Millisecond),
				TraceID:   traceID,
			})
			sp.SetAttr("code", sw.code)
			sp.End()
			s.logger.LogAttrs(ctx, slog.LevelInfo, "request",
				slog.String("endpoint", endpoint),
				slog.String("method", r.Method),
				slog.Int("code", sw.code),
				slog.Duration("elapsed", elapsed),
				slog.String("cache", sw.Header().Get("X-Cache")))
		}()
		// Registered after the metrics defer so it runs first (LIFO): it
		// converts the panic into a 500 and the metrics/log record above
		// then observes that code instead of a torn request.
		defer func() {
			p := recover()
			if p == nil {
				return
			}
			if p == http.ErrAbortHandler {
				// Deliberate connection abort (the chaos middleware's
				// reset process) — let net/http sever the connection.
				sp.SetAttr("aborted", true)
				sw.code = http.StatusServiceUnavailable
				panic(p)
			}
			s.panics.Add(labels("endpoint", endpoint), 1)
			sp.SetError(fmt.Errorf("panic: %v", p))
			s.logger.LogAttrs(ctx, slog.LevelError, "panic",
				slog.String("endpoint", endpoint), slog.String("value", fmt.Sprint(p)))
			if !sw.wrote {
				writeError(sw, http.StatusInternalServerError,
					resilience.Errorf(resilience.CodeInternal, http.StatusInternalServerError,
						"service: internal error"))
			} else {
				sw.code = http.StatusInternalServerError
			}
		}()
		if s.draining.Load() {
			writeError(sw, http.StatusServiceUnavailable, errDraining)
			return
		}
		if s.limiter != nil && !peerExempt {
			if ok, retryAfter := s.limiter.Allow(clientKey(r), time.Now()); !ok {
				s.ratelimited.Add(labels("endpoint", endpoint), 1)
				writeError(sw, http.StatusTooManyRequests,
					resilience.ErrRateLimited.WithRetryAfter(retryAfter))
				return
			}
		}
		if raw := r.Header.Get(deadlineHeader); raw != "" {
			ms, err := strconv.ParseInt(raw, 10, 64)
			if err != nil || ms <= 0 {
				writeError(sw, http.StatusBadRequest,
					resilience.Errorf(resilience.CodeBadRequest, http.StatusBadRequest,
						"service: bad %s header %q: want a positive integer", deadlineHeader, raw))
				return
			}
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, time.Duration(ms)*time.Millisecond)
			defer cancel()
			sp.SetAttr("deadlineMs", ms)
		}
		inner.ServeHTTP(sw, r.WithContext(ctx))
	}
}

// errorBody is the wire shape of every error response: a human-readable
// message, a stable machine code, and an optional retry hint.
type errorBody struct {
	Error        string `json:"error"`
	Code         string `json:"code"`
	RetryAfterMs int64  `json:"retryAfterMs,omitempty"`
	// CurrentVersion rides along on ring CAS conflicts (409): the ring's
	// actual version, so the client can rebase without an extra GET.
	CurrentVersion uint64 `json:"currentVersion,omitempty"`
}

// codeForStatus backfills a taxonomy code for untyped errors.
func codeForStatus(status int) resilience.Code {
	switch status {
	case http.StatusBadRequest, http.StatusMethodNotAllowed:
		return resilience.CodeBadRequest
	case http.StatusNotFound:
		return resilience.CodeNotFound
	case http.StatusConflict:
		return resilience.CodeConflict
	case http.StatusTooManyRequests:
		return resilience.CodeRateLimited
	case http.StatusServiceUnavailable:
		return resilience.CodeUnavailable
	case http.StatusGatewayTimeout:
		return resilience.CodeDeadline
	default:
		return resilience.CodeInternal
	}
}

// writeError emits the structured JSON error body with the given status.
// Every 429/503/504 response carries a Retry-After header: the typed
// error's hint when it has one (rounded up to whole seconds, minimum 1),
// else a default of 1s — so even naive clients that only honor the
// header back off instead of hammering a saturated server.
func writeError(w http.ResponseWriter, code int, err error) {
	body := errorBody{Error: err.Error(), Code: string(codeForStatus(code))}
	var retryAfter time.Duration
	if te, ok := resilience.AsError(err); ok {
		body.Code = string(te.Code)
		retryAfter = te.RetryAfter
	}
	switch code {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		if retryAfter <= 0 {
			retryAfter = time.Second
		}
	}
	if retryAfter > 0 {
		body.RetryAfterMs = int64(retryAfter / time.Millisecond)
		secs := int64((retryAfter + time.Second - 1) / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	out, _ := json.Marshal(body)
	w.Write(append(out, '\n'))
}

// statusFor maps computation errors to HTTP statuses.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrBadRequest) || errors.Is(err, ErrUnknownProtocol):
		return http.StatusBadRequest
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) noteCancel(endpoint string, err error) {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		s.canceled.Add(labels("endpoint", endpoint), 1)
	}
}

// deadlineRemaining extracts the request's remaining deadline budget.
func deadlineRemaining(ctx context.Context) (time.Duration, bool) {
	dl, ok := ctx.Deadline()
	if !ok {
		return 0, false
	}
	return time.Until(dl), true
}

// admit runs the admission decision for one cache-missing request:
// requests that would coalesce onto an in-flight computation are always
// admitted (they add no work to the pool); everything else is checked
// against the queue bound and deadline feasibility. A non-nil error has
// already been counted in the shed metric and is ready for writeError.
func (s *Server) admit(ctx context.Context, endpoint, key string) error {
	if s.flight.joinable(key) {
		return nil
	}
	queued, _ := s.flight.Depth()
	remaining, hasDeadline := deadlineRemaining(ctx)
	retryAfter, err := s.admission.Admit(queued, remaining, hasDeadline)
	if err == nil {
		return nil
	}
	reason := "queue_full"
	if errors.Is(err, resilience.ErrDeadlineInfeasible) {
		reason = "deadline"
	}
	s.shed.Add(labels("endpoint", endpoint, "reason", reason), 1)
	if sp := trace.SpanFromContext(ctx); sp != nil {
		sp.SetAttr("shed", reason)
	}
	te, _ := resilience.AsError(err)
	return te.WithRetryAfter(retryAfter)
}

// decode parses a request body strictly.
func decode(r *http.Request, v any) error {
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return nil
}

// serveCached runs the cache → coalesce → compute path shared by analyze,
// topology, and non-streaming sweep and writes the response body. compute
// must return the exact bytes to serve; they are cached under key. In
// cluster mode, a miss on a key some other member owns is first filled
// from that owner (peerReq is the canonical request, re-marshaled onto
// the wire); a failed fill falls back to computing locally. The X-Cache
// header tells the caller what happened: hit, coalesced, miss (computed
// here), or peer (fetched from the owning shard).
func (s *Server) serveCached(w http.ResponseWriter, r *http.Request, endpoint, key string, peerReq any, compute func(context.Context) ([]byte, error)) {
	setDigestKey(r.Context(), key)
	_, lookup := trace.Start(r.Context(), "cache.lookup")
	body, cached := s.cache.Get(key)
	if cached {
		lookup.SetAttr("outcome", "hit")
	} else {
		lookup.SetAttr("outcome", "miss")
	}
	lookup.End()
	if cached {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("X-Cache", "hit")
		w.Write(body)
		return
	}
	// Load shedding happens here — after the cache, before the pool — so
	// a saturated server still answers every request it can answer for
	// free, and sheds only work that needs a worker. Peer-filled requests
	// pass admission too: a fill can always fall back to local compute,
	// so it must hold a reservation the fallback is allowed to spend.
	if err := s.admit(r.Context(), endpoint, key); err != nil {
		te, _ := resilience.AsError(err)
		writeError(w, te.Status, err)
		return
	}
	owner := ""
	if peerReq != nil {
		owner = s.peerOwner(r, key)
	}
	// The flight group's compute context derives from the server's base
	// context, not from this request (the computation must survive the
	// first caller hanging up while followers wait). Graft this request's
	// span onto it so the kernel span still lands in this trace — and in
	// the leader's trace only: coalesced followers never run fn, so their
	// traces record just the wait below.
	parent := trace.SpanFromContext(r.Context())
	viaPeer := false
	body, shared, err := s.flight.do(r.Context(), key, func(ctx context.Context) ([]byte, error) {
		// The peer fill runs inside the flight group on purpose: every
		// concurrent identical request on this process coalesces onto ONE
		// outbound fill, and the owner coalesces fills from different
		// members onto one computation — cluster-wide, an identical burst
		// costs exactly one kernel run.
		if owner != "" {
			if b, ok := s.fillFromPeer(ctx, parent, owner, endpoint, key, peerReq); ok {
				viaPeer = true
				return b, nil
			}
		}
		kctx, ksp := trace.Start(trace.ContextWithSpan(ctx, parent), "kernel")
		defer ksp.End()
		ksp.SetAttr("endpoint", endpoint)
		s.computes.Add(labels("endpoint", endpoint), 1)
		b, err := compute(kctx)
		if err != nil {
			ksp.SetError(err)
			return nil, err
		}
		s.cache.Put(key, b)
		return b, nil
	})
	if sp := trace.SpanFromContext(r.Context()); sp != nil {
		sp.SetAttr("coalesced", shared)
	}
	if err != nil {
		s.noteCancel(endpoint, err)
		writeError(w, statusFor(err), err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	switch {
	case shared:
		w.Header().Set("X-Cache", "coalesced")
	case viaPeer:
		w.Header().Set("X-Cache", "peer")
	default:
		w.Header().Set("X-Cache", "miss")
	}
	w.Write(body)
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("service: POST required"))
		return
	}
	var req AnalyzeRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.serveAnalyze(w, r, req)
}

// serveAnalyze is the decoded-request half of /v1/analyze, shared with
// the peer-fill door.
func (s *Server) serveAnalyze(w http.ResponseWriter, r *http.Request, req AnalyzeRequest) {
	_, csp := trace.Start(r.Context(), "canonicalize")
	canon, err := req.Canonicalize()
	csp.SetError(err)
	csp.End()
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	key := canon.CacheKey()
	s.serveCached(w, r, "analyze", key, canon, func(ctx context.Context) ([]byte, error) {
		resp, err := analyzeCanonical(ctx, canon, key)
		if err != nil {
			return nil, err
		}
		for _, v := range resp.Verdicts {
			s.verdicts.Add(labels("protocol", v.Protocol, "schedulable", strconv.FormatBool(v.Schedulable)), 1)
		}
		return encodeTraced(ctx, resp)
	})
}

// handleTopology serves /v1/topology/analyze through the same
// canonicalize → cache → coalesce → compute path as /v1/analyze; a 1-node
// topology therefore reports exactly the verdict the direct endpoint
// would, cached under its own canonical key.
func (s *Server) handleTopology(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("service: POST required"))
		return
	}
	var req TopologyRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.serveTopology(w, r, req)
}

// serveTopology is the decoded-request half of /v1/topology/analyze,
// shared with the peer-fill door.
func (s *Server) serveTopology(w http.ResponseWriter, r *http.Request, req TopologyRequest) {
	_, csp := trace.Start(r.Context(), "canonicalize")
	canon, err := req.Canonicalize()
	csp.SetError(err)
	csp.End()
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	key := canon.CacheKey()
	s.serveCached(w, r, "topology", key, canon, func(ctx context.Context) ([]byte, error) {
		resp, err := topologyCanonical(ctx, canon, key)
		if err != nil {
			return nil, err
		}
		for _, rv := range resp.Rings {
			s.verdicts.Add(labels("protocol", rv.Protocol, "schedulable", strconv.FormatBool(rv.Schedulable)), 1)
		}
		return encodeTraced(ctx, resp)
	})
}

// wantsSSE reports whether the client asked for a progress stream.
func wantsSSE(r *http.Request) bool {
	return r.Header.Get("Accept") == "text/event-stream" || r.URL.Query().Get("stream") == "sse"
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("service: POST required"))
		return
	}
	var req SweepRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	s.serveSweep(w, r, req)
}

// serveSweep is the decoded-request half of /v1/sweep, shared with the
// peer-fill door (which never asks for the SSE variant).
func (s *Server) serveSweep(w http.ResponseWriter, r *http.Request, req SweepRequest) {
	_, csp := trace.Start(r.Context(), "canonicalize")
	canon, err := req.Canonicalize()
	csp.SetError(err)
	csp.End()
	if err != nil {
		writeError(w, statusFor(err), err)
		return
	}
	key := canon.CacheKey()
	if wantsSSE(r) {
		s.streamSweep(w, r, canon, key)
		return
	}
	s.serveCached(w, r, "sweep", key, canon, func(ctx context.Context) ([]byte, error) {
		resp, err := sweepCanonical(ctx, canon, key, s.cfg.Workers, nil)
		if err != nil {
			return nil, err
		}
		return encodeTraced(ctx, resp)
	})
}

// streamSweep serves one sweep as an SSE stream: progress frames while
// the Monte Carlo pools run, then a final "result" (or "error") frame.
// The job runs under the request context — closing the stream cancels the
// workers promptly — but still occupies a pool slot and still feeds the
// result cache, so a later identical request is a hit.
func (s *Server) streamSweep(w http.ResponseWriter, r *http.Request, canon SweepRequest, key string) {
	setDigestKey(r.Context(), key)
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, errors.New("service: streaming unsupported"))
		return
	}
	// Admission runs before the stream is committed, so a shed request is
	// a plain 503 with Retry-After — not a 200 stream that immediately
	// errors. A cached result is always served.
	cachedBody, cached := s.cache.Get(key)
	if !cached {
		if err := s.admit(r.Context(), "sweep", key); err != nil {
			te, _ := resilience.AsError(err)
			writeError(w, te.Status, err)
			return
		}
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	flusher.Flush()
	s.sseStream.Add(labels("endpoint", "sweep"), 1)

	sse := progress.NewSSE(w, flusher.Flush, s.cfg.SampleEvery)
	if cached {
		sse.Event("result", json.RawMessage(cachedBody))
		return
	}
	// The sweep runs inline on this handler goroutine — never in the
	// flight group — because its progress frames write through a
	// ResponseWriter that dies when this handler returns; a detached
	// worker would write into a reclaimed response. It still takes a pool
	// slot, so streams and coalesced jobs share one computation budget.
	// The job context closes with the client (cancelling the Monte Carlo
	// workers promptly), with the server's base context (so Close reaps
	// lingering streams), and with the job timeout.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stop := context.AfterFunc(s.baseCtx, cancel)
	defer stop()
	if s.cfg.JobTimeout > 0 {
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeout(ctx, s.cfg.JobTimeout)
		defer tcancel()
	}
	// Heartbeat while the stream waits for a slot or grinds through a
	// quiet stretch of the sweep: intermediaries with idle timeouts see
	// comment frames instead of silence.
	stopKeepAlive := sse.KeepAlive(ctx, s.cfg.SSEKeepAlive)
	defer stopKeepAlive()
	if err := s.flight.acquire(ctx); err != nil {
		s.noteCancel("sweep", err)
		sse.Event("error", errorBody{Error: err.Error(), Code: string(codeForStatus(statusFor(err)))})
		return
	}
	defer s.flight.release()
	s.computes.Add(labels("endpoint", "sweep"), 1)
	started := time.Now()
	resp, err := sweepCanonical(ctx, canon, key, s.cfg.Workers, sse)
	if err != nil {
		s.noteCancel("sweep", err)
		sse.Event("error", errorBody{Error: err.Error(), Code: string(codeForStatus(statusFor(err)))})
		return
	}
	s.admission.Observe(time.Since(started))
	body, err := Encode(resp)
	if err != nil {
		sse.Event("error", errorBody{Error: err.Error(), Code: string(resilience.CodeInternal)})
		return
	}
	s.cache.Put(key, body)
	sse.Event("result", json.RawMessage(body))
}

func (s *Server) handleExperiments(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		body, err := Encode(map[string][]ExperimentInfo{"experiments": ListExperiments()})
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
	case http.MethodPost:
		var req ExperimentsRequest
		if err := decode(r, &req); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		// Experiment batches are not cached: they are operator-initiated
		// rarities, and their reports can be large. They still compete
		// for the shared computation budget — admission first, then a
		// pool slot held for the whole batch — so a burst of experiment
		// posts queues behind the regular traffic instead of stacking
		// N×Workers uncontrolled computations on the box. The batch runs
		// inline under the request context (its report streams nowhere,
		// so coalescing buys nothing), bounded by the job timeout and
		// reaped by Close like any other computation.
		ctx, cancel := context.WithCancel(r.Context())
		defer cancel()
		stop := context.AfterFunc(s.baseCtx, cancel)
		defer stop()
		if s.cfg.JobTimeout > 0 {
			var tcancel context.CancelFunc
			ctx, tcancel = context.WithTimeout(ctx, s.cfg.JobTimeout)
			defer tcancel()
		}
		if err := s.admit(ctx, "experiments", ""); err != nil {
			te, _ := resilience.AsError(err)
			writeError(w, te.Status, err)
			return
		}
		if err := s.flight.acquire(ctx); err != nil {
			s.noteCancel("experiments", err)
			writeError(w, statusFor(err), err)
			return
		}
		defer s.flight.release()
		s.computes.Add(labels("endpoint", "experiments"), 1)
		started := time.Now()
		resp, err := RunExperiments(ctx, req, s.cfg.Workers, nil)
		if err != nil {
			s.noteCancel("experiments", err)
			writeError(w, statusFor(err), err)
			return
		}
		s.admission.Observe(time.Since(started))
		body, err := Encode(resp)
		if err != nil {
			writeError(w, http.StatusInternalServerError, err)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
	default:
		writeError(w, http.StatusMethodNotAllowed, errors.New("service: GET or POST required"))
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if s.draining.Load() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, `{"status":"draining"}`)
		return
	}
	fmt.Fprintln(w, `{"status":"ok"}`)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	s.requests.Write(w)
	s.latency.Write(w)
	s.computes.Write(w)
	s.verdicts.Write(w)
	s.canceled.Write(w)
	s.sseStream.Write(w)
	s.stages.Write(w)
	s.shed.Write(w)
	s.ratelimited.Write(w)
	s.panics.Write(w)
	s.chaosInj.Write(w)
	s.ringEdits.Write(w)
	s.reprobeStreams.Write(w)
	s.slo.Write(w)
	s.exemplars.Write(w)
	if s.clust != nil {
		s.peerFill.Write(w)
	}
	buildInfo(w)
	gauges := []gaugeFunc{
		{Name: "ringschedd_cache_hits_total", Help: "Result cache hits.", Type: "counter", Fn: func() float64 { return float64(s.cache.Hits()) }},
		{Name: "ringschedd_cache_misses_total", Help: "Result cache misses.", Type: "counter", Fn: func() float64 { return float64(s.cache.Misses()) }},
		{Name: "ringschedd_cache_evictions_total", Help: "Result cache evictions.", Type: "counter", Fn: func() float64 { return float64(s.cache.Evictions()) }},
		{Name: "ringschedd_cache_bytes", Help: "Resident result cache size in bytes.", Fn: func() float64 { return float64(s.cache.Bytes()) }},
		{Name: "ringschedd_cache_entries", Help: "Resident result cache entries.", Fn: func() float64 { return float64(s.cache.Entries()) }},
		{Name: "ringschedd_coalesced_total", Help: "Callers that joined an in-flight identical computation.", Type: "counter", Fn: func() float64 { return float64(s.flight.coalesced.Load()) }},
		{Name: "ringschedd_abandoned_total", Help: "Computations cancelled because every caller left.", Type: "counter", Fn: func() float64 { return float64(s.flight.abandoned.Load()) }},
		{Name: "ringschedd_pool_queued", Help: "Jobs waiting for a worker slot.", Fn: func() float64 { q, _ := s.flight.Depth(); return float64(q) }},
		{Name: "ringschedd_pool_running", Help: "Jobs currently computing.", Fn: func() float64 { _, r := s.flight.Depth(); return float64(r) }},
		{Name: "ringschedd_http_in_flight", Help: "API requests currently being served.", Fn: func() float64 { return float64(s.InFlight()) }},
		{Name: "ringschedd_rings", Help: "Resident ring sessions.", Fn: func() float64 { return float64(s.rings.Len()) }},
		{Name: "ringschedd_request_log_total", Help: "Requests ever recorded by the flight recorder.", Type: "counter",
			Fn: func() float64 { return float64(s.recorder.Total()) }},
		{Name: "ringschedd_admission_service_seconds", Help: "EWMA of completed computation service times feeding the admission controller.",
			Fn: func() float64 { return s.admission.ServiceTime().Seconds() }},
		{Name: "ringschedd_admission_est_wait_seconds", Help: "Estimated queue wait a new arrival would see right now.",
			Fn: func() float64 { q, _ := s.flight.Depth(); return s.admission.EstimatedWait(q).Seconds() }},
		{Name: "ringschedd_ratelimit_clients", Help: "Resident per-client rate-limiter buckets.",
			Fn: func() float64 {
				if s.limiter == nil {
					return 0
				}
				return float64(s.limiter.Clients())
			}},
	}
	if s.clust != nil {
		gauges = append(gauges,
			gaugeFunc{Name: "ringschedd_cluster_members", Help: "Members of the consistent-hash cluster ring, this process included.",
				Fn: func() float64 { return float64(s.clust.ring.Size()) }})
	}
	for _, g := range gauges {
		g.Write(w)
	}
}
