package service

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"ringsched/internal/core"
	"ringsched/internal/ring"
)

func TestPayloadScalesCanonicalization(t *testing.T) {
	a := baseRequest()
	a.PayloadScales = []float64{4, 1, 0.5, 1, 4}
	canon := mustCanon(t, a)
	want := []float64{0.5, 1, 4}
	if len(canon.PayloadScales) != len(want) {
		t.Fatalf("canonical scales %v, want %v", canon.PayloadScales, want)
	}
	for i, s := range want {
		if canon.PayloadScales[i] != s {
			t.Fatalf("canonical scales %v, want %v", canon.PayloadScales, want)
		}
	}

	// Reordered and duplicated scale lists share one cache key; a different
	// scale set keys differently, and so does the no-scales request.
	b := baseRequest()
	b.PayloadScales = []float64{0.5, 4, 1}
	if analyzeKey(t, a) != analyzeKey(t, b) {
		t.Error("equivalent scale lists produced different cache keys")
	}
	c := baseRequest()
	c.PayloadScales = []float64{0.5, 2}
	if analyzeKey(t, a) == analyzeKey(t, c) {
		t.Error("different scale lists share a cache key")
	}
	if analyzeKey(t, a) == analyzeKey(t, baseRequest()) {
		t.Error("scaled and unscaled requests share a cache key")
	}

	for _, bad := range []float64{0, -1, math.NaN(), math.Inf(1)} {
		r := baseRequest()
		r.PayloadScales = []float64{1, bad}
		if _, err := r.Canonicalize(); !errors.Is(err, ErrBadRequest) {
			t.Errorf("scale %v: err %v, want ErrBadRequest", bad, err)
		}
	}
}

// TestPayloadScaleVerdictsMatchDirectAnalysis checks the batched per-scale
// verdicts against analyzing each scaled set through its own request.
func TestPayloadScaleVerdictsMatchDirectAnalysis(t *testing.T) {
	req := baseRequest()
	req.PayloadScales = []float64{0.25, 1, 2, 4, 8, 16, 64}
	resp, err := Analyze(context.Background(), req)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if len(resp.Verdicts) != 3 {
		t.Fatalf("verdicts: %d, want 3", len(resp.Verdicts))
	}
	set := mustCanon(t, req).messageSet()
	bw := ring.Mbps(req.BandwidthMbps)
	for _, v := range resp.Verdicts {
		if len(v.ScaleVerdicts) != len(req.PayloadScales) {
			t.Fatalf("%s: %d scale verdicts, want %d", v.Protocol, len(v.ScaleVerdicts), len(req.PayloadScales))
		}
		var a core.Analyzer
		switch v.Protocol {
		case ProtocolModifiedPDP:
			a = core.NewModifiedPDP(bw)
		case ProtocolStandardPDP:
			a = core.NewStandardPDP(bw)
		case ProtocolTTP:
			a = core.NewTTP(bw)
		default:
			t.Fatalf("unknown protocol %q", v.Protocol)
		}
		for _, sv := range v.ScaleVerdicts {
			direct, err := a.Schedulable(set.Scale(sv.Scale))
			if err != nil {
				t.Fatalf("%s scale %g: %v", v.Protocol, sv.Scale, err)
			}
			if sv.Schedulable != direct {
				t.Errorf("%s scale %g: batched verdict %v, direct %v", v.Protocol, sv.Scale, sv.Schedulable, direct)
			}
		}
		// Monotone presentation: once unschedulable, larger scales stay so.
		seenFalse := false
		for _, sv := range v.ScaleVerdicts {
			if seenFalse && sv.Schedulable {
				t.Errorf("%s: verdicts not monotone across scales: %+v", v.Protocol, v.ScaleVerdicts)
			}
			if !sv.Schedulable {
				seenFalse = true
			}
		}
	}

	// The response is cache-stable: a permuted scale list returns the very
	// same canonical body.
	perm := baseRequest()
	perm.PayloadScales = []float64{64, 8, 2, 16, 1, 0.25, 4, 4}
	resp2, err := Analyze(context.Background(), perm)
	if err != nil {
		t.Fatalf("Analyze (permuted): %v", err)
	}
	b1, err := Encode(resp)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := Encode(resp2)
	if err != nil {
		t.Fatal(err)
	}
	if string(b1) != string(b2) {
		t.Errorf("permuted scale list changed the response body:\n%s\nvs\n%s",
			firstDiff(string(b1), string(b2)), "")
	}
}

// firstDiff returns a short context around the first differing byte.
func firstDiff(a, b string) string {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			lo := i - 40
			if lo < 0 {
				lo = 0
			}
			return strings.ReplaceAll(a[lo:i]+" <<< "+a[i:min(i+40, len(a))], "\n", "\\n")
		}
	}
	return "length mismatch"
}
