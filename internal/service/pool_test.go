package service

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestFlightGroupCoalescesConcurrentCallers(t *testing.T) {
	g := newFlightGroup(context.Background(), 4, 0)
	var executions atomic.Int64
	release := make(chan struct{})
	entered := make(chan struct{}, 16)

	const callers = 8
	var wg sync.WaitGroup
	results := make([][]byte, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], _, errs[i] = g.do(context.Background(), "same-key", func(ctx context.Context) ([]byte, error) {
				executions.Add(1)
				entered <- struct{}{}
				<-release
				return []byte("shared result"), nil
			})
		}(i)
	}

	// Wait for the single computation to start, give stragglers time to
	// join it, then let it finish.
	<-entered
	for deadline := time.Now().Add(time.Second); g.coalesced.Load() < callers-1; {
		if time.Now().After(deadline) {
			t.Fatalf("only %d callers coalesced", g.coalesced.Load())
		}
		time.Sleep(time.Millisecond)
	}
	close(release)
	wg.Wait()

	if n := executions.Load(); n != 1 {
		t.Fatalf("fn executed %d times, want 1", n)
	}
	for i := 0; i < callers; i++ {
		if errs[i] != nil || string(results[i]) != "shared result" {
			t.Errorf("caller %d: body=%q err=%v", i, results[i], errs[i])
		}
	}
	if g.started.Load() != 1 || g.coalesced.Load() != callers-1 {
		t.Errorf("started=%d coalesced=%d", g.started.Load(), g.coalesced.Load())
	}
}

func TestFlightGroupSequentialCallsRunSeparately(t *testing.T) {
	g := newFlightGroup(context.Background(), 1, 0)
	var executions atomic.Int64
	for i := 0; i < 3; i++ {
		body, shared, err := g.do(context.Background(), "k", func(ctx context.Context) ([]byte, error) {
			executions.Add(1)
			return []byte("v"), nil
		})
		if err != nil || shared || string(body) != "v" {
			t.Fatalf("call %d: body=%q shared=%v err=%v", i, body, shared, err)
		}
	}
	if executions.Load() != 3 {
		t.Errorf("sequential calls should each execute; got %d", executions.Load())
	}
}

func TestFlightGroupLastWaiterCancelsComputation(t *testing.T) {
	g := newFlightGroup(context.Background(), 2, 0)
	jobCancelled := make(chan struct{})
	entered := make(chan struct{})

	callerCtx, callerCancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, _, err := g.do(callerCtx, "k", func(ctx context.Context) ([]byte, error) {
			close(entered)
			<-ctx.Done()
			close(jobCancelled)
			return nil, ctx.Err()
		})
		done <- err
	}()

	<-entered
	callerCancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("caller error = %v, want Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("caller did not return after its context fired")
	}
	select {
	case <-jobCancelled:
	case <-time.After(2 * time.Second):
		t.Fatal("abandoned computation was not cancelled")
	}
	if g.abandoned.Load() != 1 {
		t.Errorf("abandoned=%d, want 1", g.abandoned.Load())
	}

	// The group stays usable: the key is free for a fresh computation.
	waitForKeyFree(t, g, "k")
	body, shared, err := g.do(context.Background(), "k", func(ctx context.Context) ([]byte, error) {
		return []byte("fresh"), nil
	})
	if err != nil || shared || string(body) != "fresh" {
		t.Errorf("post-abandon call: body=%q shared=%v err=%v", body, shared, err)
	}
}

func TestFlightGroupSurvivingWaiterKeepsComputationAlive(t *testing.T) {
	g := newFlightGroup(context.Background(), 2, 0)
	release := make(chan struct{})
	entered := make(chan struct{})

	// First caller starts the job, then a second joins it.
	firstDone := make(chan error, 1)
	go func() {
		_, _, err := g.do(context.Background(), "k", func(ctx context.Context) ([]byte, error) {
			close(entered)
			select {
			case <-release:
				return []byte("v"), nil
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		})
		firstDone <- err
	}()
	<-entered

	impatient, impatientCancel := context.WithCancel(context.Background())
	secondDone := make(chan error, 1)
	go func() {
		_, _, err := g.do(impatient, "k", func(ctx context.Context) ([]byte, error) {
			t.Error("joined caller must not start a second execution")
			return nil, nil
		})
		secondDone <- err
	}()
	// Wait until the second caller has actually joined before bailing it out.
	for deadline := time.Now().Add(time.Second); g.coalesced.Load() == 0; {
		if time.Now().After(deadline) {
			t.Fatal("second caller never coalesced")
		}
		time.Sleep(time.Millisecond)
	}
	impatientCancel()
	if err := <-secondDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("impatient caller error = %v", err)
	}

	// The first caller still gets its result — the departure of a
	// non-last waiter must not cancel the shared computation.
	close(release)
	if err := <-firstDone; err != nil {
		t.Fatalf("surviving caller error = %v", err)
	}
	if g.abandoned.Load() != 0 {
		t.Errorf("abandoned=%d, want 0", g.abandoned.Load())
	}
}

func TestFlightGroupBoundsConcurrency(t *testing.T) {
	const workers = 2
	g := newFlightGroup(context.Background(), workers, 0)
	var inFlight, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			g.do(context.Background(), string(rune('a'+i)), func(ctx context.Context) ([]byte, error) {
				n := inFlight.Add(1)
				for {
					p := peak.Load()
					if n <= p || peak.CompareAndSwap(p, n) {
						break
					}
				}
				time.Sleep(10 * time.Millisecond)
				inFlight.Add(-1)
				return nil, nil
			})
		}(i)
	}
	wg.Wait()
	if p := peak.Load(); p > workers {
		t.Errorf("observed %d concurrent computations, pool bound is %d", p, workers)
	}
	if q, r := g.Depth(); q != 0 || r != 0 {
		t.Errorf("Depth after drain = %d,%d", q, r)
	}
}

func TestFlightGroupJobTimeout(t *testing.T) {
	g := newFlightGroup(context.Background(), 1, 20*time.Millisecond)
	_, _, err := g.do(context.Background(), "k", func(ctx context.Context) ([]byte, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

// waitForKeyFree blocks until no in-flight call holds key, so a follow-up
// do() is guaranteed to start a fresh computation.
func waitForKeyFree(t *testing.T, g *flightGroup, key string) {
	t.Helper()
	for deadline := time.Now().Add(2 * time.Second); ; {
		g.mu.Lock()
		_, busy := g.calls[key]
		g.mu.Unlock()
		if !busy {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("key never freed")
		}
		time.Sleep(time.Millisecond)
	}
}

// Regression: the last waiter's departure must unmap the key
// immediately. Before the fix, the dying call lingered in g.calls until
// its run goroutine published, so a fresh caller arriving in that window
// coalesced onto the cancelled computation and got a spurious
// context.Canceled instead of a fresh result.
func TestFlightGroupAbandonedKeyFreedBeforePublish(t *testing.T) {
	g := newFlightGroup(context.Background(), 2, 0)
	block := make(chan struct{})
	entered := make(chan struct{})

	callerCtx, callerCancel := context.WithCancel(context.Background())
	firstDone := make(chan error, 1)
	go func() {
		_, _, err := g.do(callerCtx, "k", func(ctx context.Context) ([]byte, error) {
			close(entered)
			// Keep running after cancellation: a real kernel takes a
			// moment to notice ctx and unwind. The publish is therefore
			// delayed past the last waiter's departure.
			<-block
			return nil, ctx.Err()
		})
		firstDone <- err
	}()
	<-entered
	callerCancel()
	if err := <-firstDone; !errors.Is(err, context.Canceled) {
		t.Fatalf("abandoning caller error = %v, want Canceled", err)
	}

	// The abandoned computation has NOT published yet (fn still blocked),
	// but the key must already be free: this caller gets a fresh
	// execution and a real result.
	body, shared, err := g.do(context.Background(), "k", func(ctx context.Context) ([]byte, error) {
		return []byte("fresh"), nil
	})
	if err != nil || shared || string(body) != "fresh" {
		t.Fatalf("caller in the abandon window: body=%q shared=%v err=%v", body, shared, err)
	}
	close(block)
	waitForKeyFree(t, g, "k")
}

// Regression: a last-waiter departure must stop the per-job timeout
// timer by cancelling the job context promptly — not leave the job
// running until the timeout expires.
func TestFlightGroupAbandonStopsJobTimer(t *testing.T) {
	g := newFlightGroup(context.Background(), 1, time.Hour)
	entered := make(chan struct{})
	jobErr := make(chan error, 1)

	callerCtx, callerCancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		g.do(callerCtx, "k", func(ctx context.Context) ([]byte, error) {
			close(entered)
			<-ctx.Done()
			jobErr <- ctx.Err()
			return nil, ctx.Err()
		})
		close(done)
	}()
	<-entered
	callerCancel()
	<-done
	select {
	case err := <-jobErr:
		// The job context fired from cancellation, hours before the
		// timeout could.
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("job ctx err = %v, want Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("job context still alive after the last waiter left — the timeout timer is the only thing that would stop it")
	}
}

// The publish of an abandoned call must not unmap a successor
// computation that reused the key meanwhile.
func TestFlightGroupAbandonedPublishDoesNotEvictSuccessor(t *testing.T) {
	g := newFlightGroup(context.Background(), 2, 0)
	blockOld := make(chan struct{})
	enteredOld := make(chan struct{})

	callerCtx, callerCancel := context.WithCancel(context.Background())
	oldDone := make(chan struct{})
	go func() {
		g.do(callerCtx, "k", func(ctx context.Context) ([]byte, error) {
			close(enteredOld)
			<-blockOld
			return nil, ctx.Err()
		})
		close(oldDone)
	}()
	<-enteredOld
	callerCancel()
	<-oldDone

	// Start a successor under the same key and hold it in-flight.
	blockNew := make(chan struct{})
	enteredNew := make(chan struct{})
	newDone := make(chan error, 1)
	go func() {
		_, _, err := g.do(context.Background(), "k", func(ctx context.Context) ([]byte, error) {
			close(enteredNew)
			<-blockNew
			return []byte("v"), nil
		})
		newDone <- err
	}()
	<-enteredNew

	// Let the abandoned call publish now; it must leave the successor's
	// mapping alone, so a third caller coalesces instead of starting a
	// duplicate execution.
	close(blockOld)
	for deadline := time.Now().Add(time.Second); !g.joinable("k"); {
		if time.Now().After(deadline) {
			t.Fatal("successor call evicted by the abandoned publish")
		}
		time.Sleep(time.Millisecond)
	}
	thirdDone := make(chan error, 1)
	go func() {
		_, shared, err := g.do(context.Background(), "k", func(ctx context.Context) ([]byte, error) {
			t.Error("third caller must coalesce, not execute")
			return nil, nil
		})
		if err == nil && !shared {
			t.Error("third caller reported shared=false")
		}
		thirdDone <- err
	}()
	for deadline := time.Now().Add(time.Second); g.coalesced.Load() == 0; {
		if time.Now().After(deadline) {
			t.Fatal("third caller never coalesced")
		}
		time.Sleep(time.Millisecond)
	}
	close(blockNew)
	if err := <-newDone; err != nil {
		t.Fatalf("successor err = %v", err)
	}
	if err := <-thirdDone; err != nil {
		t.Fatalf("coalesced caller err = %v", err)
	}
}

func TestFlightGroupObserveFeedsCompletedDurationsOnly(t *testing.T) {
	g := newFlightGroup(context.Background(), 2, 0)
	var observed atomic.Int64
	g.observe = func(d time.Duration) {
		if d <= 0 {
			t.Errorf("observed non-positive duration %v", d)
		}
		observed.Add(1)
	}
	if _, _, err := g.do(context.Background(), "ok", func(ctx context.Context) ([]byte, error) {
		time.Sleep(time.Millisecond)
		return []byte("v"), nil
	}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := g.do(context.Background(), "fail", func(ctx context.Context) ([]byte, error) {
		return nil, errors.New("boom")
	}); err == nil {
		t.Fatal("want error")
	}
	if n := observed.Load(); n != 1 {
		t.Errorf("observe called %d times, want 1 (failures excluded)", n)
	}
}
