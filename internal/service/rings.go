package service

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"strings"

	"ringsched/internal/resilience"
	"ringsched/internal/ringstate"
	"ringsched/internal/trace"
)

// This file is the stateful half of the API: /v1/rings sessions backed
// by the ringstate incremental engine. Where /v1/analyze answers one
// stateless question per request, a ring session holds a long-lived
// stream set and answers "can I admit one more?" by re-probing only the
// streams whose verdict can change — with optimistic concurrency so
// concurrent controllers never clobber each other's admissions.

// RingCreateRequest creates a ring session. The analysis parameters are
// exactly /v1/analyze's (FaultModel and Scenario mutually exclusive);
// Streams optionally seeds the ring.
type RingCreateRequest struct {
	Protocols     []string     `json:"protocols,omitempty"`
	BandwidthMbps float64      `json:"bandwidthMbps"`
	FaultModel    string       `json:"faultModel,omitempty"`
	Scenario      string       `json:"scenario,omitempty"`
	Streams       []StreamSpec `json:"streams,omitempty"`
}

// RingStream is one resident stream with its server-assigned handle.
type RingStream struct {
	ID         string  `json:"id"`
	Name       string  `json:"name,omitempty"`
	PeriodMs   float64 `json:"periodMs"`
	LengthBits float64 `json:"lengthBits"`
}

// RingResponse is the full state of a ring at one version: config,
// resident streams in canonical order, and the verdicts /v1/analyze
// would report for the same snapshot. SnapshotKey is that equivalent
// analyze request's cache key ("" for an empty ring), so a client can
// check the stateless endpoint agrees without re-posting the set.
type RingResponse struct {
	ID            string       `json:"id"`
	Version       uint64       `json:"version"`
	Protocols     []string     `json:"protocols"`
	BandwidthMbps float64      `json:"bandwidthMbps"`
	FaultModel    string       `json:"faultModel,omitempty"`
	SnapshotKey   string       `json:"snapshotKey,omitempty"`
	Streams       []RingStream `json:"streams"`
	Verdicts      []Verdict    `json:"verdicts"`
}

// RingListResponse is the /v1/rings listing.
type RingListResponse struct {
	Rings []RingSummary `json:"rings"`
}

// RingSummary is one ring in the listing.
type RingSummary struct {
	ID      string `json:"id"`
	Version uint64 `json:"version"`
	Streams int    `json:"streams"`
}

// RingEditRequest is the body of a stream add (POST .../streams) or
// modify (PUT .../streams/{id}). ExpectedVersion 0 is unconditional;
// any other value must match the ring's current version or the edit
// fails with 409 and changes nothing.
type RingEditRequest struct {
	ExpectedVersion uint64     `json:"expectedVersion,omitempty"`
	Stream          StreamSpec `json:"stream"`
}

// RingStreamFlip names a resident stream (other than the edited one)
// whose per-stream verdict changed because of an edit.
type RingStreamFlip struct {
	ID          string `json:"id"`
	Name        string `json:"name,omitempty"`
	Schedulable bool   `json:"schedulable"`
}

// RingProtocolDelta is one protocol's incremental verdict delta for a
// single edit. Degraded fields appear only when the ring has a fault
// model; EditedSchedulable only for add/modify.
type RingProtocolDelta struct {
	Protocol               string           `json:"protocol"`
	Reprobed               int              `json:"reprobed"`
	WasSchedulable         bool             `json:"wasSchedulable"`
	Schedulable            bool             `json:"schedulable"`
	DegradedWasSchedulable *bool            `json:"degradedWasSchedulable,omitempty"`
	DegradedSchedulable    *bool            `json:"degradedSchedulable,omitempty"`
	EditedSchedulable      *bool            `json:"editedSchedulable,omitempty"`
	Flipped                []RingStreamFlip `json:"flipped,omitempty"`
}

// RingEditResponse reports one applied edit: the new version, the edit's
// subject, how much analysis it cost, and the per-protocol deltas. A
// 200 does not mean the stream is schedulable — read the deltas; an
// infeasible admission is a successful edit with a negative verdict.
type RingEditResponse struct {
	RingID   string              `json:"ringId"`
	Version  uint64              `json:"version"`
	Op       string              `json:"op"`
	StreamID string              `json:"streamId"`
	Reprobed int                 `json:"reprobed"`
	Deltas   []RingProtocolDelta `json:"deltas"`
}

// editMeta captures the mutating request's identity for the ring audit
// trail: the root span's trace ID (the same one the response header
// carries, so a history row links straight into /debug/traces) and the
// rate-limiter's client key.
func editMeta(r *http.Request) ringstate.EditMeta {
	meta := ringstate.EditMeta{Client: clientKey(r)}
	if sp := trace.SpanFromContext(r.Context()); sp != nil {
		meta.TraceID = sp.TraceID().String()
	}
	return meta
}

// ringStreamID renders an engine stream ID on the wire.
func ringStreamID(id uint64) string { return "s" + strconv.FormatUint(id, 10) }

// parseRingStreamID inverts ringStreamID.
func parseRingStreamID(s string) (uint64, bool) {
	rest, ok := strings.CutPrefix(s, "s")
	if !ok || rest == "" {
		return 0, false
	}
	id, err := strconv.ParseUint(rest, 10, 64)
	return id, err == nil
}

// ringError maps ringstate errors onto the wire. Conflicts get a
// dedicated body carrying the ring's current version, so a client can
// rebase its edit without an extra GET.
func (s *Server) ringError(w http.ResponseWriter, err error) {
	var conflict *ringstate.ConflictError
	switch {
	case errors.As(err, &conflict):
		body := errorBody{
			Error:          err.Error(),
			Code:           string(resilience.CodeConflict),
			CurrentVersion: conflict.Current,
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusConflict)
		out, _ := json.Marshal(body)
		w.Write(append(out, '\n'))
	case errors.Is(err, ringstate.ErrRingNotFound), errors.Is(err, ringstate.ErrStreamNotFound):
		writeError(w, http.StatusNotFound,
			resilience.Errorf(resilience.CodeNotFound, http.StatusNotFound, "%v", err))
	case errors.Is(err, ringstate.ErrTooManyRings), errors.Is(err, ringstate.ErrTooManyStreams):
		writeError(w, http.StatusTooManyRequests,
			resilience.Errorf(resilience.CodeOverloaded, http.StatusTooManyRequests, "%v", err))
	default:
		writeError(w, http.StatusBadRequest, err)
	}
}

// ringSnapshotKey computes the cache key of the /v1/analyze request
// equivalent to this ring snapshot (Detail on, so per-stream verdicts
// are included — the shape RingResponse.Verdicts carries).
func ringSnapshotKey(cfg ringstate.Config, snap []ringstate.SnapshotStream) string {
	if len(snap) == 0 {
		return ""
	}
	req := AnalyzeRequest{
		Protocols:     cfg.Protocols,
		BandwidthMbps: cfg.BandwidthMbps,
		FaultModel:    cfg.FaultSpec,
		Detail:        true,
		Streams:       make([]StreamSpec, len(snap)),
	}
	for i, st := range snap {
		req.Streams[i] = StreamSpec{Name: st.Name, PeriodMs: st.PeriodMs, LengthBits: st.LengthBits}
	}
	canon, err := req.Canonicalize()
	if err != nil {
		// A resident ring only holds streams that already passed the same
		// validation; an error here is a programming bug, not a request
		// problem — surface it as a missing key rather than a 500.
		return ""
	}
	return canon.CacheKey()
}

// ringVerdicts converts engine verdicts to the wire shape shared with
// /v1/analyze, stamping wire stream IDs in.
func ringVerdicts(vs []ringstate.Verdict) []Verdict {
	out := make([]Verdict, len(vs))
	for i, v := range vs {
		out[i] = Verdict{
			Protocol:             v.Protocol,
			Schedulable:          v.Schedulable,
			Utilization:          v.Utilization,
			AugmentedUtilization: v.AugmentedUtilization,
			Blocking:             v.Blocking,
			Theta:                v.Theta,
			FrameTime:            v.FrameTime,
			TTRT:                 v.TTRT,
			Overhead:             v.Overhead,
			TotalAllocation:      v.TotalAllocation,
			Capacity:             v.Capacity,
		}
		if v.Degraded != nil {
			d := DegradedVerdict(*v.Degraded)
			d.TotalAllocation = wireAllocation(d.TotalAllocation)
			out[i].Degraded = &d
		}
		if len(v.Streams) > 0 {
			out[i].Streams = make([]StreamVerdict, len(v.Streams))
			for j, sv := range v.Streams {
				out[i].Streams[j] = StreamVerdict{
					ID:                ringStreamID(sv.ID),
					Name:              sv.Name,
					PeriodMs:          sv.PeriodMs,
					Frames:            sv.Frames,
					Q:                 sv.Q,
					AugmentedLength:   sv.AugmentedLength,
					ResponseTime:      sv.ResponseTime,
					Allocation:        sv.Allocation,
					WorstCaseResponse: sv.WorstCaseResponse,
					Schedulable:       sv.Schedulable,
				}
			}
		}
	}
	return out
}

// ringResponse renders a ring's full state at its current version.
func ringResponse(r *ringstate.Ring) (RingResponse, error) {
	version, cfg, snap, verdicts, err := r.State()
	if err != nil {
		return RingResponse{}, err
	}
	resp := RingResponse{
		ID:            r.ID(),
		Version:       version,
		Protocols:     cfg.Protocols,
		BandwidthMbps: cfg.BandwidthMbps,
		FaultModel:    cfg.FaultSpec,
		SnapshotKey:   ringSnapshotKey(cfg, snap),
		Streams:       make([]RingStream, len(snap)),
		Verdicts:      ringVerdicts(verdicts),
	}
	for i, st := range snap {
		resp.Streams[i] = RingStream{
			ID:         ringStreamID(st.ID),
			Name:       st.Name,
			PeriodMs:   st.PeriodMs,
			LengthBits: st.LengthBits,
		}
	}
	return resp, nil
}

// ringDeltas converts an engine delta to the wire shape.
func ringDeltas(d *ringstate.Delta) []RingProtocolDelta {
	out := make([]RingProtocolDelta, len(d.Protocols))
	for i, pd := range d.Protocols {
		out[i] = RingProtocolDelta{
			Protocol:       pd.Protocol,
			Reprobed:       pd.Reprobed,
			WasSchedulable: pd.WasSchedulable,
			Schedulable:    pd.Schedulable,
		}
		if pd.HasDegraded {
			was, now := pd.DegradedWasSchedulable, pd.DegradedSchedulable
			out[i].DegradedWasSchedulable = &was
			out[i].DegradedSchedulable = &now
		}
		if d.Op != ringstate.OpRemove {
			ok := pd.EditedSchedulable
			out[i].EditedSchedulable = &ok
		}
		for _, f := range pd.Flipped {
			out[i].Flipped = append(out[i].Flipped, RingStreamFlip{
				ID: ringStreamID(f.ID), Name: f.Name, Schedulable: f.Schedulable,
			})
		}
	}
	return out
}

func (s *Server) writeRingJSON(w http.ResponseWriter, status int, v any) {
	body, err := Encode(v)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body)
}

// handleRings serves the /v1/rings collection: POST creates a session,
// GET lists resident rings.
func (s *Server) handleRings(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodPost:
		var req RingCreateRequest
		if err := decode(r, &req); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		// Resolve FaultModel/Scenario exactly like /v1/analyze, so a ring
		// and the stateless endpoint can never disagree on fault semantics.
		spec, err := canonFaultSpec(req.FaultModel, req.Scenario)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		cfg := ringstate.Config{
			Protocols:     req.Protocols,
			BandwidthMbps: req.BandwidthMbps,
			FaultSpec:     spec,
		}
		streams := make([]ringstate.Stream, len(req.Streams))
		for i, sp := range req.Streams {
			streams[i] = ringstate.Stream{Name: sp.Name, PeriodMs: sp.PeriodMs, LengthBits: sp.LengthBits}
		}
		ring, err := s.rings.CreateMeta(cfg, streams, editMeta(r))
		if err != nil {
			s.ringEdits.Add(labels("op", "create", "outcome", "error"), 1)
			s.ringError(w, err)
			return
		}
		s.ringEdits.Add(labels("op", "create", "outcome", "ok"), 1)
		resp, err := ringResponse(ring)
		if err != nil {
			s.ringError(w, err)
			return
		}
		s.writeRingJSON(w, http.StatusCreated, resp)
	case http.MethodGet:
		list := RingListResponse{Rings: []RingSummary{}}
		for _, ring := range s.rings.List() {
			version, _, snap, _, err := ring.State()
			if err != nil {
				continue // deleted between List and State
			}
			list.Rings = append(list.Rings, RingSummary{ID: ring.ID(), Version: version, Streams: len(snap)})
		}
		s.writeRingJSON(w, http.StatusOK, list)
	default:
		writeError(w, http.StatusMethodNotAllowed, errors.New("service: GET or POST required"))
	}
}

// expectedVersionParam reads the CAS precondition for bodyless methods
// (DELETE) from the query string; absent means unconditional.
func expectedVersionParam(r *http.Request) (uint64, error) {
	raw := r.URL.Query().Get("expectedVersion")
	if raw == "" {
		return 0, nil
	}
	v, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return 0, errors.New("service: bad expectedVersion query parameter: want an unsigned integer")
	}
	return v, nil
}

// handleRingItem routes /v1/rings/{id}[...]:
//
//	GET    /v1/rings/{id}                    — full state
//	GET    /v1/rings/{id}/history[?format=script] — audit trail
//	DELETE /v1/rings/{id}[?expectedVersion=] — delete session
//	POST   /v1/rings/{id}/streams            — add a stream
//	PUT    /v1/rings/{id}/streams/{sid}      — modify a stream
//	DELETE /v1/rings/{id}/streams/{sid}[?expectedVersion=] — remove
func (s *Server) handleRingItem(w http.ResponseWriter, r *http.Request) {
	parts := strings.Split(strings.Trim(strings.TrimPrefix(r.URL.Path, "/v1/rings/"), "/"), "/")
	if len(parts) == 0 || parts[0] == "" {
		writeError(w, http.StatusNotFound,
			resilience.Errorf(resilience.CodeNotFound, http.StatusNotFound, "service: missing ring id"))
		return
	}
	ringID := parts[0]
	switch {
	case len(parts) == 1:
		s.handleRing(w, r, ringID)
	case len(parts) == 2 && parts[1] == "history":
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, errors.New("service: GET required"))
			return
		}
		s.handleRingHistory(w, r, ringID)
	case len(parts) == 2 && parts[1] == "streams" && r.Method == http.MethodPost:
		s.handleRingEdit(w, r, ringID, ringstate.OpAdd, 0)
	case len(parts) == 3 && parts[1] == "streams":
		sid, ok := parseRingStreamID(parts[2])
		if !ok {
			writeError(w, http.StatusNotFound,
				resilience.Errorf(resilience.CodeNotFound, http.StatusNotFound,
					"service: bad stream id %q", parts[2]))
			return
		}
		switch r.Method {
		case http.MethodPut:
			s.handleRingEdit(w, r, ringID, ringstate.OpModify, sid)
		case http.MethodDelete:
			s.handleRingEdit(w, r, ringID, ringstate.OpRemove, sid)
		default:
			writeError(w, http.StatusMethodNotAllowed, errors.New("service: PUT or DELETE required"))
		}
	default:
		writeError(w, http.StatusNotFound,
			resilience.Errorf(resilience.CodeNotFound, http.StatusNotFound,
				"service: no such route under /v1/rings/"))
	}
}

func (s *Server) handleRing(w http.ResponseWriter, r *http.Request, ringID string) {
	switch r.Method {
	case http.MethodGet:
		ring, err := s.rings.Get(ringID)
		if err != nil {
			s.ringError(w, err)
			return
		}
		resp, err := ringResponse(ring)
		if err != nil {
			s.ringError(w, err)
			return
		}
		s.writeRingJSON(w, http.StatusOK, resp)
	case http.MethodDelete:
		expected, err := expectedVersionParam(r)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		if err := s.rings.Delete(ringID, expected); err != nil {
			s.ringEdits.Add(labels("op", "delete", "outcome", outcomeFor(err)), 1)
			s.ringError(w, err)
			return
		}
		s.ringEdits.Add(labels("op", "delete", "outcome", "ok"), 1)
		w.WriteHeader(http.StatusNoContent)
	default:
		writeError(w, http.StatusMethodNotAllowed, errors.New("service: GET or DELETE required"))
	}
}

// handleRingHistory serves the ring's audit trail: JSON by default, or
// the ringadmit script serialization with ?format=script. The script is
// the future durable-WAL format — replaying it offline (ringadmit
// -script with the config the header comments name) reproduces the
// ring's current verdicts exactly, which scripts/obs_demo.sh asserts.
func (s *Server) handleRingHistory(w http.ResponseWriter, r *http.Request, ringID string) {
	ring, err := s.rings.Get(ringID)
	if err != nil {
		s.ringError(w, err)
		return
	}
	h, err := ring.History()
	if err != nil {
		s.ringError(w, err)
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		s.writeRingJSON(w, http.StatusOK, h)
	case "script":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		h.Script(w)
	default:
		writeError(w, http.StatusBadRequest,
			errors.New("service: bad format query parameter: want json or script"))
	}
}

// outcomeFor labels the edit-counter outcome for a failed mutation.
func outcomeFor(err error) string {
	var conflict *ringstate.ConflictError
	if errors.As(err, &conflict) {
		return "conflict"
	}
	return "error"
}

// handleRingEdit applies one stream mutation and reports the
// incremental delta. The edit runs under a "ring.edit" span; the
// engine's re-probe count lands both on the span and in the
// ringschedd_reprobe_streams histogram, so the "incremental analysis
// stays incremental" claim is observable in production.
func (s *Server) handleRingEdit(w http.ResponseWriter, r *http.Request, ringID, op string, sid uint64) {
	var expected uint64
	var stream ringstate.Stream
	if op == ringstate.OpRemove {
		v, err := expectedVersionParam(r)
		if err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		expected = v
	} else {
		var req RingEditRequest
		if err := decode(r, &req); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		expected = req.ExpectedVersion
		stream = ringstate.Stream{
			Name:       req.Stream.Name,
			PeriodMs:   req.Stream.PeriodMs,
			LengthBits: req.Stream.LengthBits,
		}
	}
	ring, err := s.rings.Get(ringID)
	if err != nil {
		s.ringError(w, err)
		return
	}

	_, sp := trace.Start(r.Context(), "ring.edit")
	sp.SetAttr("ring", ringID)
	sp.SetAttr("op", op)
	var version uint64
	var delta *ringstate.Delta
	meta := editMeta(r)
	switch op {
	case ringstate.OpAdd:
		version, sid, delta, err = ring.AddStreamMeta(expected, stream, meta)
	case ringstate.OpModify:
		version, delta, err = ring.ModifyStreamMeta(expected, sid, stream, meta)
	case ringstate.OpRemove:
		version, delta, err = ring.RemoveStreamMeta(expected, sid, meta)
	}
	if err != nil {
		sp.SetError(err)
		sp.End()
		s.ringEdits.Add(labels("op", op, "outcome", outcomeFor(err)), 1)
		s.ringError(w, err)
		return
	}
	sp.SetAttr("version", version)
	sp.SetAttr("reprobed", delta.Reprobed)
	// ring.reprobe is the span a trace reader greps for to see edit cost;
	// its wall time is inside ring.edit, so it is recorded zero-width
	// with the stream count as its payload.
	_, rsp := trace.Start(r.Context(), "ring.reprobe")
	rsp.SetAttr("streams", delta.Reprobed)
	rsp.End()
	sp.End()
	s.ringEdits.Add(labels("op", op, "outcome", "ok"), 1)
	s.reprobeStreams.Observe(labels("op", op), float64(delta.Reprobed))

	s.writeRingJSON(w, http.StatusOK, RingEditResponse{
		RingID:   ringID,
		Version:  version,
		Op:       op,
		StreamID: ringStreamID(sid),
		Reprobed: delta.Reprobed,
		Deltas:   ringDeltas(delta),
	})
}
