package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// testCluster is N in-process replicas listening on real loopback ports,
// each configured with the full member set. Real listeners (not httptest)
// because the advertise addresses must be known before service.New runs.
type testCluster struct {
	addrs   []string
	servers []*Server
}

func startTestCluster(t *testing.T, n int, tweak func(i int, cfg *Config)) *testCluster {
	t.Helper()
	tc := &testCluster{}
	listeners := make([]net.Listener, n)
	for i := range listeners {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		listeners[i] = ln
		tc.addrs = append(tc.addrs, ln.Addr().String())
	}
	for i, ln := range listeners {
		var peers []string
		for j, a := range tc.addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		cfg := Config{
			Advertise:       tc.addrs[i],
			Peers:           peers,
			PeerFillTimeout: 2 * time.Second,
		}
		if tweak != nil {
			tweak(i, &cfg)
		}
		srv := New(cfg)
		tc.servers = append(tc.servers, srv)
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(ln)
		t.Cleanup(func() {
			hs.Close()
			srv.Close()
		})
	}
	return tc
}

// analyzeOwnedBy searches bandwidths from minBW up until it finds an
// analyze request whose canonical key the given member owns, returning
// the request and its key.
func (tc *testCluster) analyzeOwnedBy(t *testing.T, srv *Server, member string, minBW int) (AnalyzeRequest, string) {
	t.Helper()
	for bw := minBW; bw < minBW+4096; bw++ {
		req := AnalyzeRequest{
			BandwidthMbps: float64(bw),
			Streams:       []StreamSpec{{Name: "s", PeriodMs: 10, LengthBits: 4096}},
		}
		canon, err := req.Canonicalize()
		if err != nil {
			t.Fatal(err)
		}
		key := canon.CacheKey()
		if srv.clust.ring.Owner(key) == member {
			return req, key
		}
	}
	t.Fatal("no bandwidth found with the desired owner")
	return AnalyzeRequest{}, ""
}

// post sends req to addr's endpoint and returns the status, X-Cache
// header, and body.
func postJSON(t *testing.T, addr, path string, req any, hdr map[string]string) (int, string, []byte) {
	t.Helper()
	payload, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := http.NewRequest(http.MethodPost, "http://"+addr+path, bytes.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	hr.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		hr.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(hr)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	return resp.StatusCode, resp.Header.Get("X-Cache"), body
}

func computes(s *Server, endpoint string) float64 {
	return s.computes.Value(labels("endpoint", endpoint))
}

func TestPeerFillMissThenHit(t *testing.T) {
	tc := startTestCluster(t, 2, nil)
	a, b := tc.servers[0], tc.servers[1]

	// A request B owns, posted to A: A must fill from B, which computes.
	req, _ := tc.analyzeOwnedBy(t, a, tc.addrs[1], 1)
	code, xc, body := postJSON(t, tc.addrs[0], "/v1/analyze", req, nil)
	if code != http.StatusOK || xc != "peer" {
		t.Fatalf("non-owner answered %d X-Cache=%q, want 200 peer", code, xc)
	}
	if !bytes.Contains(body, []byte("verdicts")) {
		t.Fatalf("peer-filled body looks wrong: %s", body)
	}
	if got := computes(a, "analyze"); got != 0 {
		t.Errorf("non-owner computed %v times, want 0", got)
	}
	if got := computes(b, "analyze"); got != 1 {
		t.Errorf("owner computed %v times, want 1", got)
	}
	if got := a.peerFill.Value(labels("result", "miss")); got != 1 {
		t.Errorf("peer_fill_total{result=miss} = %v, want 1", got)
	}

	// Same request again: now in A's local cache.
	if _, xc, _ := postJSON(t, tc.addrs[0], "/v1/analyze", req, nil); xc != "hit" {
		t.Errorf("second post X-Cache = %q, want hit", xc)
	}

	// A fresh B-owned request B has already cached: fill reports a hit.
	req2, _ := tc.analyzeOwnedBy(t, a, tc.addrs[1], int(req.BandwidthMbps)+1)
	if _, xc, _ := postJSON(t, tc.addrs[1], "/v1/analyze", req2, nil); xc != "miss" {
		t.Fatalf("owner warm-up X-Cache = %q, want miss", xc)
	}
	if _, xc, _ := postJSON(t, tc.addrs[0], "/v1/analyze", req2, nil); xc != "peer" {
		t.Fatalf("filled-from-cache X-Cache = %q, want peer", xc)
	}
	if got := a.peerFill.Value(labels("result", "hit")); got != 1 {
		t.Errorf("peer_fill_total{result=hit} = %v, want 1", got)
	}
}

func TestPeerFillSelfOwnedComputesLocally(t *testing.T) {
	tc := startTestCluster(t, 2, nil)
	a := tc.servers[0]
	req, _ := tc.analyzeOwnedBy(t, a, tc.addrs[0], 1)
	if _, xc, _ := postJSON(t, tc.addrs[0], "/v1/analyze", req, nil); xc != "miss" {
		t.Fatalf("self-owned X-Cache = %q, want miss", xc)
	}
	if got := computes(a, "analyze"); got != 1 {
		t.Errorf("owner computed %v times, want 1", got)
	}
	if got := a.peerFill.Value(labels("result", "miss")) + a.peerFill.Value(labels("result", "hit")); got != 0 {
		t.Errorf("self-owned request issued %v peer fills", got)
	}
}

// TestPeerFillHopGuard: a request already carrying the hop header is
// never forwarded again, even by a non-owner — the loop guard that keeps
// disagreeing ring configurations from bouncing a request forever.
func TestPeerFillHopGuard(t *testing.T) {
	tc := startTestCluster(t, 2, nil)
	a, b := tc.servers[0], tc.servers[1]
	req, _ := tc.analyzeOwnedBy(t, a, tc.addrs[1], 1)
	_, xc, _ := postJSON(t, tc.addrs[0], "/v1/analyze", req, map[string]string{peerHopHeader: "1"})
	if xc != "miss" {
		t.Fatalf("hopped request X-Cache = %q, want miss (computed locally)", xc)
	}
	if got := computes(a, "analyze"); got != 1 {
		t.Errorf("non-owner computed %v times, want 1 (local fallback)", got)
	}
	if got := computes(b, "analyze"); got != 0 {
		t.Errorf("owner computed %v times, want 0", got)
	}
}

// TestPeerFillOwnerDownFallsBack: a dead owner degrades the cluster to
// per-process caching, not to errors. The "owner" here is a port that
// was briefly bound and then released, so the fill fails fast with a
// connection refused.
func TestPeerFillOwnerDownFallsBack(t *testing.T) {
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()

	tc := startTestCluster(t, 1, func(i int, cfg *Config) {
		cfg.Peers = []string{deadAddr}
		cfg.PeerFillTimeout = 300 * time.Millisecond
	})
	a := tc.servers[0]
	req, _ := tc.analyzeOwnedBy(t, a, deadAddr, 1)
	code, xc, _ := postJSON(t, tc.addrs[0], "/v1/analyze", req, nil)
	if code != http.StatusOK || xc != "miss" {
		t.Fatalf("dead-owner request answered %d X-Cache=%q, want 200 miss (local fallback)", code, xc)
	}
	if got := a.peerFill.Value(labels("result", "error")); got != 1 {
		t.Errorf("peer_fill_total{result=error} = %v, want 1", got)
	}
	if got := computes(a, "analyze"); got != 1 {
		t.Errorf("fallback computed %v times, want 1", got)
	}
}

// TestPeerFillClusterWideCoalescing is the tentpole invariant: an
// identical burst hitting EVERY replica concurrently still costs exactly
// one computation cluster-wide. Non-owners coalesce their local callers
// onto one outbound fill; the owner coalesces the fills and its own
// callers onto one kernel run.
func TestPeerFillClusterWideCoalescing(t *testing.T) {
	tc := startTestCluster(t, 3, nil)
	req, _ := tc.analyzeOwnedBy(t, tc.servers[0], tc.addrs[2], 1)

	const perReplica = 4
	var wg sync.WaitGroup
	errs := make(chan error, perReplica*len(tc.addrs))
	for _, addr := range tc.addrs {
		for i := 0; i < perReplica; i++ {
			wg.Add(1)
			go func(addr string) {
				defer wg.Done()
				code, _, _ := postJSON(t, addr, "/v1/analyze", req, nil)
				if code != http.StatusOK {
					errs <- fmt.Errorf("%s answered %d", addr, code)
				}
			}(addr)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	var total float64
	for _, s := range tc.servers {
		total += computes(s, "analyze")
	}
	if total != 1 {
		t.Errorf("cluster computed %v times for one identical burst, want exactly 1", total)
	}
}

// TestPeerFillTracePropagation: the trace ID a client sends to a
// non-owner must appear in the owner's span ring too, stitched through
// the peer-fill hop.
func TestPeerFillTracePropagation(t *testing.T) {
	tc := startTestCluster(t, 2, nil)
	a := tc.servers[0]
	req, _ := tc.analyzeOwnedBy(t, a, tc.addrs[1], 1)

	traceID := "00112233445566778899aabbccddeeff"
	_, xc, _ := postJSON(t, tc.addrs[0], "/v1/analyze", req, map[string]string{"X-Ringsched-Trace": traceID})
	if xc != "peer" {
		t.Fatalf("X-Cache = %q, want peer", xc)
	}
	for i, addr := range tc.addrs {
		resp, err := http.Get("http://" + addr + "/debug/traces?trace=" + traceID)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if !strings.Contains(string(body), traceID) {
			t.Errorf("replica %d has no spans for trace %s: %s", i, traceID, body)
		}
	}
}

// TestPeerFillEndpointRejectsGarbage pins the wire validation.
func TestPeerFillEndpointRejectsGarbage(t *testing.T) {
	tc := startTestCluster(t, 2, nil)
	code, _, body := postJSON(t, tc.addrs[0], "/v1/peer/fill",
		map[string]any{"endpoint": "nonsense", "request": map[string]any{}}, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("unknown fill endpoint answered %d: %s", code, body)
	}
	code, _, _ = postJSON(t, tc.addrs[0], "/v1/peer/fill",
		map[string]any{"endpoint": "analyze", "request": map[string]any{"bogus": true}}, nil)
	if code != http.StatusBadRequest {
		t.Fatalf("malformed inner request answered %d", code)
	}
}

// TestSingleProcessModeUnchanged: without Advertise the cluster layer is
// absent — no peer endpoint, no ring, identical single-node behavior.
func TestSingleProcessModeUnchanged(t *testing.T) {
	srv := New(Config{})
	defer srv.Close()
	if srv.clust != nil || srv.Members() != nil {
		t.Fatal("cluster state exists without Advertise")
	}
	r, _ := http.NewRequest(http.MethodPost, "/v1/peer/fill", bytes.NewReader([]byte("{}")))
	_, pattern := srv.mux.Handler(r)
	if pattern == "/v1/peer/fill" {
		t.Error("/v1/peer/fill registered in single-process mode")
	}
}
