package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
)

func ringJSON(t *testing.T, ts string, method, path, body string) (*http.Response, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, ts+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

func decodeJSON[T any](t *testing.T, b []byte) T {
	t.Helper()
	var v T
	if err := json.Unmarshal(b, &v); err != nil {
		t.Fatalf("unmarshal %T from %s: %v", v, b, err)
	}
	return v
}

const ringCreateBody = `{
  "bandwidthMbps": 16,
  "streams": [
    {"name": "gyro", "periodMs": 10, "lengthBits": 4096},
    {"name": "telemetry", "periodMs": 50, "lengthBits": 65536}
  ]
}`

func TestRingsCRUD(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp, b := ringJSON(t, ts.URL, http.MethodPost, "/v1/rings", ringCreateBody)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d %s", resp.StatusCode, b)
	}
	ring := decodeJSON[RingResponse](t, b)
	if ring.ID == "" || ring.Version != 1 {
		t.Fatalf("create: id %q version %d, want non-empty id at version 1", ring.ID, ring.Version)
	}
	if len(ring.Streams) != 2 || len(ring.Verdicts) != 3 {
		t.Fatalf("create: %d streams, %d verdicts, want 2 and 3", len(ring.Streams), len(ring.Verdicts))
	}
	// Canonical order: gyro (10ms) before telemetry (50ms).
	if ring.Streams[0].Name != "gyro" || ring.Streams[1].Name != "telemetry" {
		t.Fatalf("create: stream order %+v, want canonical (gyro first)", ring.Streams)
	}
	for _, v := range ring.Verdicts {
		if !v.Schedulable {
			t.Fatalf("light 16 Mbps set reported infeasible on %s", v.Protocol)
		}
		for _, sv := range v.Streams {
			if sv.ID == "" {
				t.Fatalf("%s per-stream verdict missing id: %+v", v.Protocol, sv)
			}
		}
	}

	resp, b = ringJSON(t, ts.URL, http.MethodGet, "/v1/rings/"+ring.ID, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get: %d %s", resp.StatusCode, b)
	}
	got := decodeJSON[RingResponse](t, b)
	if got.Version != 1 || len(got.Streams) != 2 {
		t.Fatalf("get: version %d streams %d, want 1 and 2", got.Version, len(got.Streams))
	}

	resp, b = ringJSON(t, ts.URL, http.MethodGet, "/v1/rings", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("list: %d %s", resp.StatusCode, b)
	}
	list := decodeJSON[RingListResponse](t, b)
	if len(list.Rings) != 1 || list.Rings[0].ID != ring.ID || list.Rings[0].Streams != 2 {
		t.Fatalf("list: %+v, want one ring %s with 2 streams", list.Rings, ring.ID)
	}

	resp, b = ringJSON(t, ts.URL, http.MethodGet, "/v1/rings/r999", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("get missing ring: %d %s, want 404", resp.StatusCode, b)
	}
	eb := decodeJSON[errorBody](t, b)
	if eb.Code != "not_found" {
		t.Fatalf("get missing ring: code %q, want not_found", eb.Code)
	}

	// Stale-version delete conflicts and leaves the ring resident.
	resp, b = ringJSON(t, ts.URL, http.MethodDelete, "/v1/rings/"+ring.ID+"?expectedVersion=7", "")
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale delete: %d %s, want 409", resp.StatusCode, b)
	}
	eb = decodeJSON[errorBody](t, b)
	if eb.Code != "conflict" || eb.CurrentVersion != 1 {
		t.Fatalf("stale delete body: %+v, want code conflict currentVersion 1", eb)
	}
	resp, _ = ringJSON(t, ts.URL, http.MethodDelete, "/v1/rings/"+ring.ID+"?expectedVersion=1", "")
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: %d, want 204", resp.StatusCode)
	}
	resp, _ = ringJSON(t, ts.URL, http.MethodGet, "/v1/rings/"+ring.ID, "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("get after delete: %d, want 404", resp.StatusCode)
	}
}

func TestRingsEditCASAndDelta(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, b := ringJSON(t, ts.URL, http.MethodPost, "/v1/rings", ringCreateBody)
	ring := decodeJSON[RingResponse](t, b)

	// A lowest-priority add against the right version succeeds and
	// re-probes just itself on every protocol.
	add := `{"expectedVersion": 1, "stream": {"name": "bulk", "periodMs": 500, "lengthBits": 2048}}`
	resp, b := ringJSON(t, ts.URL, http.MethodPost, "/v1/rings/"+ring.ID+"/streams", add)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("add: %d %s", resp.StatusCode, b)
	}
	edit := decodeJSON[RingEditResponse](t, b)
	if edit.Version != 2 || edit.Op != "add" || edit.StreamID == "" {
		t.Fatalf("add response %+v, want version 2 op add with a stream id", edit)
	}
	for _, d := range edit.Deltas {
		if d.Reprobed != 1 {
			t.Fatalf("%s reprobed %d for a lowest-priority add, want 1", d.Protocol, d.Reprobed)
		}
		if d.EditedSchedulable == nil || !*d.EditedSchedulable {
			t.Fatalf("%s: editedSchedulable %v, want true", d.Protocol, d.EditedSchedulable)
		}
	}

	// Replaying the same edit against the now-stale version conflicts.
	resp, b = ringJSON(t, ts.URL, http.MethodPost, "/v1/rings/"+ring.ID+"/streams", add)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("stale add: %d %s, want 409", resp.StatusCode, b)
	}
	eb := decodeJSON[errorBody](t, b)
	if eb.Code != "conflict" || eb.CurrentVersion != 2 {
		t.Fatalf("stale add body %+v, want code conflict currentVersion 2", eb)
	}

	// Modify and remove round-trip through the wire stream ID.
	mod := `{"expectedVersion": 2, "stream": {"name": "bulk", "periodMs": 250, "lengthBits": 4096}}`
	resp, b = ringJSON(t, ts.URL, http.MethodPut, "/v1/rings/"+ring.ID+"/streams/"+edit.StreamID, mod)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("modify: %d %s", resp.StatusCode, b)
	}
	if got := decodeJSON[RingEditResponse](t, b); got.Version != 3 || got.StreamID != edit.StreamID {
		t.Fatalf("modify response %+v, want version 3 same stream id", got)
	}
	resp, b = ringJSON(t, ts.URL, http.MethodDelete,
		"/v1/rings/"+ring.ID+"/streams/"+edit.StreamID+"?expectedVersion=3", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("remove: %d %s", resp.StatusCode, b)
	}
	if got := decodeJSON[RingEditResponse](t, b); got.Version != 4 || got.Op != "remove" {
		t.Fatalf("remove response %+v, want version 4 op remove", got)
	}

	// Unknown stream id and malformed id both 404.
	resp, _ = ringJSON(t, ts.URL, http.MethodDelete, "/v1/rings/"+ring.ID+"/streams/"+edit.StreamID, "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("remove removed stream: %d, want 404", resp.StatusCode)
	}
	resp, _ = ringJSON(t, ts.URL, http.MethodDelete, "/v1/rings/"+ring.ID+"/streams/bogus", "")
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("remove bogus stream id: %d, want 404", resp.StatusCode)
	}

	// Edit metrics and the reprobe histogram are live.
	if n := metricValue(t, ts.URL, `ringschedd_ring_edits_total\{.*op="add".*outcome="ok"`); n != 1 {
		t.Fatalf("ring_edits_total{add,ok} = %v, want 1", n)
	}
	if n := metricValue(t, ts.URL, `ringschedd_reprobe_streams_count\{.*op="add"`); n != 1 {
		t.Fatalf("reprobe_streams_count{add} = %v, want 1", n)
	}
}

// TestRingSnapshotMatchesAnalyze is the snapshot-consistency satellite:
// the verdicts a ring session reports at one version must be exactly the
// verdicts /v1/analyze computes for the same snapshot, and the ring's
// snapshotKey must be the analyze request's cache key.
func TestRingSnapshotMatchesAnalyze(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	create := `{
	  "bandwidthMbps": 4,
	  "scenario": "lossy-token",
	  "streams": [{"name": "a", "periodMs": 12, "lengthBits": 16384}]
	}`
	_, b := ringJSON(t, ts.URL, http.MethodPost, "/v1/rings", create)
	ring := decodeJSON[RingResponse](t, b)

	// Grow the ring through the incremental path so the comparison
	// exercises edited state, not just the bulk-create path.
	for i := 0; i < 4; i++ {
		body := fmt.Sprintf(`{"stream": {"name": "h%d", "periodMs": 6, "lengthBits": 16384}}`, i)
		resp, eb := ringJSON(t, ts.URL, http.MethodPost, "/v1/rings/"+ring.ID+"/streams", body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("add %d: %d %s", i, resp.StatusCode, eb)
		}
	}
	_, b = ringJSON(t, ts.URL, http.MethodGet, "/v1/rings/"+ring.ID, "")
	ring = decodeJSON[RingResponse](t, b)

	// Rebuild the equivalent stateless request from the ring snapshot.
	areq := AnalyzeRequest{
		BandwidthMbps: ring.BandwidthMbps,
		FaultModel:    ring.FaultModel,
		Detail:        true,
	}
	for _, st := range ring.Streams {
		areq.Streams = append(areq.Streams, StreamSpec{Name: st.Name, PeriodMs: st.PeriodMs, LengthBits: st.LengthBits})
	}
	body, err := json.Marshal(areq)
	if err != nil {
		t.Fatal(err)
	}
	resp, b := post(t, ts.URL+"/v1/analyze", string(body))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze: %d %s", resp.StatusCode, b)
	}
	analyzed := decodeJSON[AnalyzeResponse](t, b)

	if ring.SnapshotKey == "" || ring.SnapshotKey != analyzed.CacheKey {
		t.Fatalf("snapshotKey %q != analyze cacheKey %q", ring.SnapshotKey, analyzed.CacheKey)
	}
	// The verdicts must be identical except for the ring-only stream IDs.
	stripped := ring.Verdicts
	for i := range stripped {
		for j := range stripped[i].Streams {
			stripped[i].Streams[j].ID = ""
		}
	}
	want, err := json.Marshal(analyzed.Verdicts)
	if err != nil {
		t.Fatal(err)
	}
	got, err := json.Marshal(stripped)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("ring verdicts diverge from /v1/analyze:\nring:    %s\nanalyze: %s", got, want)
	}
}

// TestRingsParallelEditors drives concurrent CAS editors through the
// HTTP surface: every round has exactly one winner, and losers learn the
// current version from the 409 body.
func TestRingsParallelEditors(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	_, b := ringJSON(t, ts.URL, http.MethodPost, "/v1/rings", `{"bandwidthMbps": 16}`)
	ring := decodeJSON[RingResponse](t, b)

	const editors, rounds = 4, 8
	var wins [rounds + 2]int32
	var mu sync.Mutex
	var wg sync.WaitGroup
	for e := 0; e < editors; e++ {
		wg.Add(1)
		go func(e int) {
			defer wg.Done()
			version := uint64(1)
			for r := 0; r < rounds; r++ {
				body := fmt.Sprintf(`{"expectedVersion": %d, "stream": {"name": "e%d-%d", "periodMs": 100, "lengthBits": 1024}}`,
					version, e, r)
				resp, rb := ringJSON(t, ts.URL, http.MethodPost, "/v1/rings/"+ring.ID+"/streams", body)
				switch resp.StatusCode {
				case http.StatusOK:
					edit := decodeJSON[RingEditResponse](t, rb)
					mu.Lock()
					wins[edit.Version]++
					mu.Unlock()
					version = edit.Version
				case http.StatusConflict:
					eb := decodeJSON[errorBody](t, rb)
					if eb.CurrentVersion == 0 {
						t.Errorf("conflict body missing currentVersion: %s", rb)
						return
					}
					version = eb.CurrentVersion
				default:
					t.Errorf("editor %d: unexpected status %d: %s", e, resp.StatusCode, rb)
					return
				}
			}
		}(e)
	}
	wg.Wait()
	total := 0
	for v, n := range wins {
		if n > 1 {
			t.Fatalf("version %d produced by %d edits, want at most 1", v, n)
		}
		total += int(n)
	}
	if total == 0 {
		t.Fatal("no editor ever won a round")
	}
}

// TestRingsLimits exercises the capacity guards on the wire.
func TestRingsLimits(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxRings: 1, MaxRingStreams: 2})
	resp, _ := ringJSON(t, ts.URL, http.MethodPost, "/v1/rings", `{"bandwidthMbps": 16}`)
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("create: %d", resp.StatusCode)
	}
	resp, b := ringJSON(t, ts.URL, http.MethodPost, "/v1/rings", `{"bandwidthMbps": 16}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second ring: %d %s, want 429", resp.StatusCode, b)
	}
	if eb := decodeJSON[errorBody](t, b); eb.Code != "overloaded" {
		t.Fatalf("second ring code %q, want overloaded", eb.Code)
	}

	add := `{"stream": {"periodMs": 10, "lengthBits": 1024}}`
	for i := 0; i < 2; i++ {
		resp, b = ringJSON(t, ts.URL, http.MethodPost, "/v1/rings/r1/streams", add)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("add %d: %d %s", i, resp.StatusCode, b)
		}
	}
	resp, b = ringJSON(t, ts.URL, http.MethodPost, "/v1/rings/r1/streams", add)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("third stream: %d %s, want 429", resp.StatusCode, b)
	}

	// Bad requests stay 400 with bad_request.
	resp, b = ringJSON(t, ts.URL, http.MethodPost, "/v1/rings", `{"bandwidthMbps": -1}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad create: %d %s, want 400", resp.StatusCode, b)
	}
}
