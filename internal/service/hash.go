package service

import (
	"crypto/sha256"
	"encoding/hex"
	"strconv"
	"strings"
)

// The cache key is a SHA-256 over a stable serialization of the
// *canonical* request, prefixed with an endpoint tag and a schema version
// so analyze and sweep keys can never collide and a wire-format change
// invalidates old entries. Canonicalization (api.go) has already sorted
// streams to RM order, resolved the fault spec to its normal form, and
// collapsed -0 to +0; the serialization below finishes the job by
// rendering every float through strconv's shortest round-trip form, so
// "100", "100.0" and "1e2" — which decode to the same float64 — key
// identically.

const keySchema = "ringsched/v1"

// hasher accumulates the canonical serialization.
type hasher struct {
	b strings.Builder
}

func newHasher(endpoint string) *hasher {
	h := &hasher{}
	h.b.WriteString(keySchema)
	h.b.WriteByte('/')
	h.b.WriteString(endpoint)
	return h
}

// field appends one named field; names are fixed literals, values are
// pre-escaped by the typed helpers below.
func (h *hasher) field(name, value string) {
	h.b.WriteByte('|')
	h.b.WriteString(name)
	h.b.WriteByte('=')
	h.b.WriteString(value)
}

func (h *hasher) str(name, v string) { h.field(name, strconv.Quote(v)) }

func (h *hasher) float(name string, v float64) {
	h.field(name, strconv.FormatFloat(canonFloat(v), 'g', -1, 64))
}

func (h *hasher) int(name string, v int64) { h.field(name, strconv.FormatInt(v, 10)) }

func (h *hasher) bool(name string, v bool) { h.field(name, strconv.FormatBool(v)) }

func (h *hasher) strs(name string, vs []string) {
	quoted := make([]string, len(vs))
	for i, v := range vs {
		quoted[i] = strconv.Quote(v)
	}
	h.field(name, strings.Join(quoted, ","))
}

func (h *hasher) floats(name string, vs []float64) {
	parts := make([]string, len(vs))
	for i, v := range vs {
		parts[i] = strconv.FormatFloat(canonFloat(v), 'g', -1, 64)
	}
	h.field(name, strings.Join(parts, ","))
}

func (h *hasher) sum() string {
	sum := sha256.Sum256([]byte(h.b.String()))
	return hex.EncodeToString(sum[:])
}

// CacheKey returns the canonical cache key of the request. The receiver
// must already be canonical (see Canonicalize); the server and CLIs only
// hash canonicalized requests.
func (r AnalyzeRequest) CacheKey() string {
	h := newHasher("analyze")
	h.strs("protocols", r.Protocols)
	h.float("bw", r.BandwidthMbps)
	h.str("fault", r.FaultModel)
	h.bool("detail", r.Detail)
	h.floats("scales", r.PayloadScales)
	for _, s := range r.Streams {
		h.str("s.name", s.Name)
		h.float("s.period", s.PeriodMs)
		h.float("s.bits", s.LengthBits)
	}
	return h.sum()
}

// CacheKey returns the canonical cache key of the request. The receiver
// must already be canonical (see Canonicalize).
func (r SweepRequest) CacheKey() string {
	h := newHasher("sweep")
	h.strs("protocols", r.Protocols)
	h.floats("bw", r.BandwidthsMbps)
	h.int("streams", int64(r.Streams))
	h.float("meanPeriod", r.MeanPeriodMs)
	h.float("periodRatio", r.PeriodRatio)
	h.int("samples", int64(r.Samples))
	h.int("seed", r.Seed)
	return h.sum()
}
