package service

import (
	"io"

	"ringsched/internal/promtext"
)

// The Prometheus text-format primitives the service uses (labeled
// counters, labeled latency histograms, callback gauges) live in
// internal/promtext so ringsched-lb can share them; the aliases below
// keep this package's call sites terse.

type (
	counterVec   = promtext.CounterVec
	histogramVec = promtext.HistogramVec
	gaugeFunc    = promtext.GaugeFunc
)

var (
	newCounterVec   = promtext.NewCounterVec
	newHistogramVec = promtext.NewHistogramVec
	labels          = promtext.Labels
)

// buildInfo renders the ringschedd_build_info gauge.
func buildInfo(w io.Writer) { promtext.BuildInfo(w, "ringschedd") }
