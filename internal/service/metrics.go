package service

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// This file is a minimal Prometheus text-format (version 0.0.4) exporter.
// The repository deliberately has no dependencies, so the three
// primitives the service needs — labeled counters, labeled latency
// histograms, and callback gauges — are hand-rolled. Families render
// sorted by name and label set, so /metrics output is deterministic and
// trivially greppable in smoke tests.

// counterVec is a monotonically increasing counter family keyed by a
// rendered label string (`{a="b"}` or "" for no labels).
type counterVec struct {
	name, help string
	mu         sync.Mutex
	vals       map[string]float64
}

func newCounterVec(name, help string) *counterVec {
	return &counterVec{name: name, help: help, vals: map[string]float64{}}
}

func (c *counterVec) add(labels string, v float64) {
	c.mu.Lock()
	c.vals[labels] += v
	c.mu.Unlock()
}

func (c *counterVec) write(w io.Writer) {
	c.mu.Lock()
	keys := make([]string, 0, len(c.vals))
	for k := range c.vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", c.name, escapeHelp(c.help), c.name)
	if len(keys) == 0 {
		fmt.Fprintf(w, "%s 0\n", c.name)
	}
	for _, k := range keys {
		fmt.Fprintf(w, "%s%s %s\n", c.name, k, formatSample(c.vals[k]))
	}
	c.mu.Unlock()
}

// latencyBuckets are the histogram upper bounds in seconds, spanning
// cache hits (sub-millisecond) through multi-minute sweeps.
var latencyBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10, 60, 300}

// histogramVec is a labeled latency histogram family.
type histogramVec struct {
	name, help string
	mu         sync.Mutex
	series     map[string]*histogram
}

type histogram struct {
	buckets []uint64 // one per latencyBuckets entry
	count   uint64
	sum     float64
}

func newHistogramVec(name, help string) *histogramVec {
	return &histogramVec{name: name, help: help, series: map[string]*histogram{}}
}

func (h *histogramVec) observe(labels string, seconds float64) {
	h.mu.Lock()
	s, ok := h.series[labels]
	if !ok {
		s = &histogram{buckets: make([]uint64, len(latencyBuckets))}
		h.series[labels] = s
	}
	for i, le := range latencyBuckets {
		if seconds <= le {
			s.buckets[i]++
		}
	}
	s.count++
	s.sum += seconds
	h.mu.Unlock()
}

func (h *histogramVec) write(w io.Writer) {
	h.mu.Lock()
	keys := make([]string, 0, len(h.series))
	for k := range h.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", h.name, escapeHelp(h.help), h.name)
	for _, k := range keys {
		s := h.series[k]
		for i, le := range latencyBuckets {
			fmt.Fprintf(w, "%s_bucket%s %d\n", h.name,
				withLabel(k, "le", strconv.FormatFloat(le, 'g', -1, 64)), s.buckets[i])
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", h.name, withLabel(k, "le", "+Inf"), s.count)
		fmt.Fprintf(w, "%s_sum%s %s\n", h.name, k, formatSample(s.sum))
		fmt.Fprintf(w, "%s_count%s %d\n", h.name, k, s.count)
	}
	h.mu.Unlock()
}

// gaugeFunc reads its value at scrape time, so pool depth and cache size
// need no write-path instrumentation. typ overrides the metric type for
// monotone values kept elsewhere (cache counters); "" means gauge.
type gaugeFunc struct {
	name, help, typ string
	fn              func() float64
}

func (g gaugeFunc) write(w io.Writer) {
	typ := g.typ
	if typ == "" {
		typ = "gauge"
	}
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %s\n",
		g.name, escapeHelp(g.help), g.name, typ, g.name, formatSample(g.fn()))
}

// labels renders key=value pairs as a Prometheus label string. Pairs must
// come pre-sorted by key; values are escaped per the text format.
func labels(pairs ...string) string {
	if len(pairs) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(pairs); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(pairs[i])
		b.WriteString(`="`)
		b.WriteString(escapeLabel(pairs[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// withLabel appends one more label to an already-rendered label string
// (used for histogram "le" bounds).
func withLabel(rendered, key, value string) string {
	extra := key + `="` + escapeLabel(value) + `"`
	if rendered == "" {
		return "{" + extra + "}"
	}
	return strings.TrimSuffix(rendered, "}") + "," + extra + "}"
}

// labelEscaper and helpEscaper implement the text format's two escaping
// rules: label values escape backslash, double-quote, and newline; HELP
// text escapes only backslash and newline (quotes are legal there). The
// replacers are hoisted to package level — building one per escaped value
// made /metrics rendering allocate per label.
var (
	labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	helpEscaper  = strings.NewReplacer(`\`, `\\`, "\n", `\n`)
)

func escapeLabel(v string) string { return labelEscaper.Replace(v) }

func escapeHelp(v string) string { return helpEscaper.Replace(v) }

// buildInfo renders the ringschedd_build_info gauge: constant 1, with the
// module version and Go runtime version as labels — the standard pattern
// for joining any other series to "what build was serving then".
func buildInfo(w io.Writer) {
	version := "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		version = bi.Main.Version
	}
	fmt.Fprintf(w, "# HELP ringschedd_build_info Build metadata; constant 1.\n# TYPE ringschedd_build_info gauge\nringschedd_build_info%s 1\n",
		labels("goversion", runtime.Version(), "version", version))
}

func formatSample(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
