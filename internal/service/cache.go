package service

import (
	"container/list"
	"hash/fnv"
	"sync"
	"sync/atomic"
)

// cacheShards is the fixed shard count. Sixteen shards keep lock
// contention negligible at the request rates one process serves while
// keeping the per-shard byte budget large enough for whole sweep bodies.
const cacheShards = 16

// entryOverhead approximates the per-entry bookkeeping cost (map bucket,
// list element, entry struct) charged against the byte budget.
const entryOverhead = 128

// Cache is a sharded LRU mapping canonical request keys to encoded
// response bodies under a global byte budget. All methods are safe for
// concurrent use; hit/miss/eviction counters are atomic so the metrics
// endpoint can read them without taking shard locks.
type Cache struct {
	shards      [cacheShards]cacheShard
	shardBudget int64

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	bytes     atomic.Int64
	entries   atomic.Int64
}

type cacheShard struct {
	mu    sync.Mutex
	lru   *list.List // front = most recent; values are *cacheEntry
	items map[string]*list.Element
}

type cacheEntry struct {
	key  string
	body []byte
}

func (e *cacheEntry) size() int64 {
	return int64(len(e.key)) + int64(len(e.body)) + entryOverhead
}

// NewCache returns a cache bounded by budgetBytes across all shards;
// non-positive budgets fall back to 64 MiB.
func NewCache(budgetBytes int64) *Cache {
	if budgetBytes <= 0 {
		budgetBytes = 64 << 20
	}
	c := &Cache{shardBudget: budgetBytes / cacheShards}
	if c.shardBudget < 1 {
		c.shardBudget = 1
	}
	for i := range c.shards {
		c.shards[i].lru = list.New()
		c.shards[i].items = map[string]*list.Element{}
	}
	return c
}

func (c *Cache) shard(key string) *cacheShard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return &c.shards[h.Sum32()%cacheShards]
}

// Get returns the cached body for key, marking it most recently used.
// The returned slice is shared — callers must not modify it.
func (c *Cache) Get(key string) ([]byte, bool) {
	s := c.shard(key)
	s.mu.Lock()
	el, ok := s.items[key]
	var body []byte
	if ok {
		s.lru.MoveToFront(el)
		// Read the body under the lock: a concurrent Put may replace
		// el.Value in place.
		body = el.Value.(*cacheEntry).body
	}
	s.mu.Unlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return body, true
}

// Put stores body under key, evicting least-recently-used entries until
// the shard fits its budget. A body larger than a whole shard's budget is
// not cached at all — evicting everything for one entry nobody may ask
// for again is worse than recomputing it.
func (c *Cache) Put(key string, body []byte) {
	e := &cacheEntry{key: key, body: body}
	if e.size() > c.shardBudget {
		return
	}
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		old := el.Value.(*cacheEntry)
		c.bytes.Add(e.size() - old.size())
		el.Value = e
		s.lru.MoveToFront(el)
		return
	}
	s.items[key] = s.lru.PushFront(e)
	c.bytes.Add(e.size())
	c.entries.Add(1)
	for shardBytes := c.shardUsage(s); shardBytes > c.shardBudget; {
		tail := s.lru.Back()
		if tail == nil || tail == s.lru.Front() {
			break
		}
		victim := tail.Value.(*cacheEntry)
		s.lru.Remove(tail)
		delete(s.items, victim.key)
		c.bytes.Add(-victim.size())
		c.entries.Add(-1)
		c.evictions.Add(1)
		shardBytes -= victim.size()
	}
}

// shardUsage sums the shard's resident bytes; called with the shard lock
// held. Walking the list is fine: shards hold few, large entries.
func (c *Cache) shardUsage(s *cacheShard) int64 {
	var total int64
	for el := s.lru.Front(); el != nil; el = el.Next() {
		total += el.Value.(*cacheEntry).size()
	}
	return total
}

// Hits returns the number of Get calls served from the cache.
func (c *Cache) Hits() int64 { return c.hits.Load() }

// Misses returns the number of Get calls that found nothing.
func (c *Cache) Misses() int64 { return c.misses.Load() }

// Evictions returns the number of entries displaced by the byte budget.
func (c *Cache) Evictions() int64 { return c.evictions.Load() }

// Bytes returns the resident size of the cache, bookkeeping included.
func (c *Cache) Bytes() int64 { return c.bytes.Load() }

// Entries returns the number of resident entries.
func (c *Cache) Entries() int64 { return c.entries.Load() }
