package service

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// flightGroup is a bounded worker pool with request coalescing: concurrent
// calls with the same key share one underlying computation, and at most
// `workers` computations run at once across all keys.
//
// Unlike the classic singleflight, a shared computation's context is NOT
// any one caller's request context: it derives from the group's base
// (server-lifetime) context plus the per-job timeout, and is cancelled
// when the last interested caller walks away. A caller that times out or
// disconnects therefore never kills a computation other callers are still
// waiting on — but an abandoned computation stops promptly instead of
// running to completion for nobody.
type flightGroup struct {
	baseCtx    context.Context
	jobTimeout time.Duration
	sem        chan struct{}

	// observe, when non-nil, receives the duration of every computation
	// that ran to completion — the admission controller's service-time
	// feed. Cancelled and failed jobs are excluded: they finish early and
	// would bias the estimate optimistic.
	observe func(time.Duration)

	mu    sync.Mutex
	calls map[string]*flightCall

	queued    atomic.Int64 // jobs waiting for a pool slot
	running   atomic.Int64 // jobs holding a pool slot
	started   atomic.Int64 // computations started (not coalesced, not cached)
	coalesced atomic.Int64 // callers that joined an in-flight computation
	abandoned atomic.Int64 // computations cancelled because every caller left
}

type flightCall struct {
	done    chan struct{}
	cancel  context.CancelFunc
	waiters int
	body    []byte
	err     error
}

// newFlightGroup builds a group whose jobs live under baseCtx. workers
// bounds concurrent computations (non-positive means 1); jobTimeout, when
// positive, deadlines each computation.
func newFlightGroup(baseCtx context.Context, workers int, jobTimeout time.Duration) *flightGroup {
	if workers < 1 {
		workers = 1
	}
	return &flightGroup{
		baseCtx:    baseCtx,
		jobTimeout: jobTimeout,
		sem:        make(chan struct{}, workers),
		calls:      map[string]*flightCall{},
	}
}

// do returns the result of fn for key, sharing one execution among
// concurrent callers. shared reports whether this caller coalesced onto
// a computation another caller started. ctx bounds only this caller's
// wait; fn receives the job context described on flightGroup.
func (g *flightGroup) do(ctx context.Context, key string, fn func(context.Context) ([]byte, error)) (body []byte, shared bool, err error) {
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		c.waiters++
		g.mu.Unlock()
		g.coalesced.Add(1)
		return g.wait(ctx, key, c, true)
	}
	var jobCtx context.Context
	var cancel context.CancelFunc
	if g.jobTimeout > 0 {
		jobCtx, cancel = context.WithTimeout(g.baseCtx, g.jobTimeout)
	} else {
		jobCtx, cancel = context.WithCancel(g.baseCtx)
	}
	c := &flightCall{done: make(chan struct{}), cancel: cancel, waiters: 1}
	g.calls[key] = c
	g.mu.Unlock()
	g.started.Add(1)

	go g.run(key, c, jobCtx, fn)
	return g.wait(ctx, key, c, false)
}

// run executes one computation under its pool slot and publishes the
// result.
func (g *flightGroup) run(key string, c *flightCall, jobCtx context.Context, fn func(context.Context) ([]byte, error)) {
	g.queued.Add(1)
	select {
	case g.sem <- struct{}{}:
		g.queued.Add(-1)
	case <-jobCtx.Done():
		g.queued.Add(-1)
		g.finish(key, c, nil, jobCtx.Err())
		return
	}
	g.running.Add(1)
	start := time.Now()
	body, err := fn(jobCtx)
	if err == nil && g.observe != nil {
		g.observe(time.Since(start))
	}
	g.running.Add(-1)
	<-g.sem
	g.finish(key, c, body, err)
}

func (g *flightGroup) finish(key string, c *flightCall, body []byte, err error) {
	g.mu.Lock()
	// Only remove the mapping if it is still ours: an abandoned call's
	// last waiter already unmapped it, and a fresh computation may have
	// taken the key since — deleting unconditionally would orphan that
	// successor's entry and let a third caller start a duplicate.
	if g.calls[key] == c {
		delete(g.calls, key)
	}
	c.body, c.err = body, err
	g.mu.Unlock()
	c.cancel()
	close(c.done)
}

// wait blocks until the shared computation completes or the caller's own
// context fires; a departing last waiter cancels the computation.
func (g *flightGroup) wait(ctx context.Context, key string, c *flightCall, shared bool) ([]byte, bool, error) {
	select {
	case <-c.done:
		return c.body, shared, c.err
	case <-ctx.Done():
		g.mu.Lock()
		c.waiters--
		last := c.waiters == 0
		if last && g.calls[key] == c {
			// Unmap the dying call immediately. Cancellation is not
			// instantaneous — the run goroutine only publishes after fn
			// observes jobCtx and returns — and a fresh caller arriving
			// in that window must start a new computation, not coalesce
			// onto one that is already being torn down and inherit its
			// spurious context.Canceled.
			delete(g.calls, key)
		}
		g.mu.Unlock()
		if last {
			// Nobody is listening anymore: stop the workers instead of
			// computing into the void. The run goroutine still publishes
			// (and cache-misses) the cancellation cleanly.
			g.abandoned.Add(1)
			c.cancel()
		}
		return nil, shared, ctx.Err()
	}
}

// joinable reports whether a caller for key would coalesce onto an
// in-flight computation right now. The admission controller consults it
// so requests that add no work to the pool are never shed.
func (g *flightGroup) joinable(key string) bool {
	g.mu.Lock()
	_, ok := g.calls[key]
	g.mu.Unlock()
	return ok
}

// acquire blocks until a pool slot is free or ctx fires, maintaining the
// depth gauges. Callers that must run work inline on their own goroutine
// (SSE streams, whose writer dies with the handler) use it to share the
// computation budget with the coalesced jobs.
func (g *flightGroup) acquire(ctx context.Context) error {
	g.queued.Add(1)
	defer g.queued.Add(-1)
	select {
	case g.sem <- struct{}{}:
		g.running.Add(1)
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release returns a slot taken with acquire.
func (g *flightGroup) release() {
	g.running.Add(-1)
	<-g.sem
}

// Depth returns the pool gauges: jobs waiting for a slot and jobs
// currently computing.
func (g *flightGroup) Depth() (queued, running int64) {
	return g.queued.Load(), g.running.Load()
}
