package service

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"ringsched/internal/resilience"
)

// errBody mirrors the structured wire error for assertions.
type errBody struct {
	Error        string `json:"error"`
	Code         string `json:"code"`
	RetryAfterMs int64  `json:"retryAfterMs"`
}

func decodeErrBody(t *testing.T, b []byte) errBody {
	t.Helper()
	var eb errBody
	if err := json.Unmarshal(b, &eb); err != nil {
		t.Fatalf("error body %q is not the structured shape: %v", b, err)
	}
	if eb.Error == "" || eb.Code == "" {
		t.Fatalf("error body %q missing message or code", b)
	}
	return eb
}

// postWith issues a POST with extra headers.
func postWith(t *testing.T, url, body string, headers map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// occupyPool takes the server's only worker slot and returns a release
// function, so tests can build a deterministic backlog.
func occupyPool(t *testing.T, s *Server) (release func()) {
	t.Helper()
	if err := s.flight.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Idempotent so tests can release explicitly mid-test and still
	// defer release() for the failure paths.
	var once sync.Once
	return func() { once.Do(s.flight.release) }
}

// waitForQueued polls until exactly n jobs wait for a pool slot.
func waitForQueued(t *testing.T, s *Server, n int64) {
	t.Helper()
	for deadline := time.Now().Add(2 * time.Second); ; {
		if q, _ := s.flight.Depth(); q == n {
			return
		}
		if time.Now().After(deadline) {
			q, r := s.flight.Depth()
			t.Fatalf("queue never reached %d (queued=%d running=%d)", n, q, r)
		}
		time.Sleep(time.Millisecond)
	}
}

const analyzeBodyB = `{
  "bandwidthMbps": 80,
  "streams": [{"name": "alt", "periodMs": 20, "lengthBits": 8192}]
}`

const analyzeBodyC = `{
  "bandwidthMbps": 90,
  "streams": [{"name": "third", "periodMs": 30, "lengthBits": 16384}]
}`

func TestAdmissionShedsOnQueueFull(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})

	release := occupyPool(t, s)
	// First distinct request queues behind the occupied slot.
	firstDone := make(chan int, 1)
	go func() {
		resp, _ := post(t, ts.URL+"/v1/analyze", analyzeBody)
		firstDone <- resp.StatusCode
	}()
	waitForQueued(t, s, 1)

	// The queue is at its bound: a second distinct request is shed on
	// arrival with the full structured rejection.
	resp, body := post(t, ts.URL+"/v1/analyze", analyzeBodyB)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503; body %s", resp.StatusCode, body)
	}
	eb := decodeErrBody(t, body)
	if eb.Code != string(resilience.CodeOverloaded) {
		t.Errorf("code = %q, want overloaded", eb.Code)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("shed response missing Retry-After")
	}

	release()
	if code := <-firstDone; code != http.StatusOK {
		t.Errorf("queued request finished %d, want 200", code)
	}
	if n := metricValue(t, ts.URL, `^ringschedd_shed_total\{endpoint="analyze",reason="queue_full"\}`); n != 1 {
		t.Errorf("shed_total{queue_full} = %g, want 1", n)
	}
	// After the backlog clears, the same request is admitted.
	resp, body = post(t, ts.URL+"/v1/analyze", analyzeBodyB)
	if resp.StatusCode != http.StatusOK {
		t.Errorf("post-backlog status = %d: %s", resp.StatusCode, body)
	}
}

func TestAdmissionShedsInfeasibleDeadlines(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: -1})
	// Teach the admission controller that computations take ~1s each.
	s.admission.Observe(time.Second)

	release := occupyPool(t, s)
	defer release()
	queuedDone := make(chan struct{})
	go func() {
		post(t, ts.URL+"/v1/analyze", analyzeBody)
		close(queuedDone)
	}()
	waitForQueued(t, s, 1)

	// Estimated wait is ~1s; a 100ms deadline cannot be met, so the
	// request is rejected on arrival instead of wasting a worker.
	resp, body := postWith(t, ts.URL+"/v1/analyze", analyzeBodyB,
		map[string]string{"X-Ringsched-Deadline-Ms": "100"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503; body %s", resp.StatusCode, body)
	}
	eb := decodeErrBody(t, body)
	if eb.Code != string(resilience.CodeOverloaded) || eb.RetryAfterMs < 500 {
		t.Errorf("body = %+v, want overloaded with the ~1s estimated wait as the hint", eb)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("missing Retry-After")
	}
	if n := metricValue(t, ts.URL, `^ringschedd_shed_total\{endpoint="analyze",reason="deadline"\}`); n != 1 {
		t.Errorf("shed_total{deadline} = %g, want 1", n)
	}

	// The identical backlog with a roomy deadline is admitted.
	admitted := make(chan int, 1)
	go func() {
		resp, _ := postWith(t, ts.URL+"/v1/analyze", analyzeBodyC,
			map[string]string{"X-Ringsched-Deadline-Ms": "30000"})
		admitted <- resp.StatusCode
	}()
	waitForQueued(t, s, 2)
	release()
	<-queuedDone
	if code := <-admitted; code != http.StatusOK {
		t.Errorf("feasible-deadline request finished %d, want 200", code)
	}
}

func TestAdmissionNeverShedsCacheHitsOrCoalescibleRequests(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})

	// Warm the cache while the server is idle.
	if resp, body := post(t, ts.URL+"/v1/analyze", analyzeBody); resp.StatusCode != http.StatusOK {
		t.Fatalf("warm: %d %s", resp.StatusCode, body)
	}

	release := occupyPool(t, s)
	queuedDone := make(chan struct{})
	go func() {
		post(t, ts.URL+"/v1/analyze", analyzeBodyB)
		close(queuedDone)
	}()
	waitForQueued(t, s, 1)

	// The queue is full, but a cache hit needs no worker: served.
	resp, _ := post(t, ts.URL+"/v1/analyze", analyzeBody)
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != "hit" {
		t.Errorf("cache hit under saturation: status=%d X-Cache=%q", resp.StatusCode, resp.Header.Get("X-Cache"))
	}

	// A request identical to the queued one coalesces — it adds no work,
	// so the full queue must not shed it either.
	coalesced := make(chan int, 1)
	go func() {
		resp, _ := post(t, ts.URL+"/v1/analyze", analyzeBodyB)
		coalesced <- resp.StatusCode
	}()
	for deadline := time.Now().Add(2 * time.Second); s.flight.coalesced.Load() == 0; {
		if time.Now().After(deadline) {
			t.Fatal("identical request never coalesced")
		}
		time.Sleep(time.Millisecond)
	}
	release()
	<-queuedDone
	if code := <-coalesced; code != http.StatusOK {
		t.Errorf("coalescible request finished %d, want 200", code)
	}
	if n := metricValue(t, ts.URL, `^ringschedd_shed_total`); n != 0 {
		t.Errorf("shed_total = %g, want 0", n)
	}
}

func TestPerClientRateLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{ClientRPS: 0.001, ClientBurst: 2})

	alice := map[string]string{"X-Ringsched-Client": "alice"}
	for i := 0; i < 2; i++ {
		if resp, body := postWith(t, ts.URL+"/v1/analyze", analyzeBody, alice); resp.StatusCode != http.StatusOK {
			t.Fatalf("burst request %d: %d %s", i, resp.StatusCode, body)
		}
	}
	resp, body := postWith(t, ts.URL+"/v1/analyze", analyzeBody, alice)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429; body %s", resp.StatusCode, body)
	}
	eb := decodeErrBody(t, body)
	if eb.Code != string(resilience.CodeRateLimited) || eb.RetryAfterMs <= 0 {
		t.Errorf("429 body = %+v", eb)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 missing Retry-After")
	}

	// Another client's bucket is untouched.
	if resp, body := postWith(t, ts.URL+"/v1/analyze", analyzeBody,
		map[string]string{"X-Ringsched-Client": "bob"}); resp.StatusCode != http.StatusOK {
		t.Errorf("bob limited by alice's bucket: %d %s", resp.StatusCode, body)
	}
	if n := metricValue(t, ts.URL, `^ringschedd_ratelimited_total\{endpoint="analyze"\}`); n != 1 {
		t.Errorf("ratelimited_total = %g, want 1", n)
	}
	if n := metricValue(t, ts.URL, `^ringschedd_ratelimit_clients`); n != 2 {
		t.Errorf("ratelimit_clients = %g, want 2", n)
	}
}

func TestDeadlineHeaderValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, bad := range []string{"abc", "-5", "0", "1.5"} {
		resp, body := postWith(t, ts.URL+"/v1/analyze", analyzeBody,
			map[string]string{"X-Ringsched-Deadline-Ms": bad})
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("deadline %q: status = %d, want 400", bad, resp.StatusCode)
			continue
		}
		if eb := decodeErrBody(t, body); eb.Code != string(resilience.CodeBadRequest) {
			t.Errorf("deadline %q: code = %q", bad, eb.Code)
		}
	}
}

func TestDeadlineExpiryAnswers504(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	// Hold the only slot so the request waits out its whole deadline in
	// the queue. With no completed observations the estimated wait is
	// zero, so admission lets it in.
	release := occupyPool(t, s)
	defer release()

	resp, body := postWith(t, ts.URL+"/v1/analyze", analyzeBody,
		map[string]string{"X-Ringsched-Deadline-Ms": "80"})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status = %d, want 504; body %s", resp.StatusCode, body)
	}
	if eb := decodeErrBody(t, body); eb.Code != string(resilience.CodeDeadline) {
		t.Errorf("code = %q, want deadline_exceeded", eb.Code)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("504 missing Retry-After")
	}
}

func TestPanicRecoveryAnswers500AndKeepsServing(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.mux.HandleFunc("/boom", s.instrument("boom", func(w http.ResponseWriter, r *http.Request) {
		panic("kaboom")
	}))

	resp, err := http.Get(ts.URL + "/boom")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", resp.StatusCode)
	}
	if eb := decodeErrBody(t, body); eb.Code != string(resilience.CodeInternal) {
		t.Errorf("code = %q, want internal", eb.Code)
	}
	if n := metricValue(t, ts.URL, `^ringschedd_panics_total\{endpoint="boom"\}`); n != 1 {
		t.Errorf("panics_total = %g, want 1", n)
	}
	// The daemon survived and still serves real traffic.
	if resp, body := post(t, ts.URL+"/v1/analyze", analyzeBody); resp.StatusCode != http.StatusOK {
		t.Errorf("post-panic analyze: %d %s", resp.StatusCode, body)
	}
}

func TestDrainingRejectionCarriesRetryAfter(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	s.BeginDrain()
	resp, body := post(t, ts.URL+"/v1/analyze", analyzeBody)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if eb := decodeErrBody(t, body); eb.Code != string(resilience.CodeUnavailable) {
		t.Errorf("code = %q, want unavailable", eb.Code)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("draining 503 missing Retry-After")
	}
}

func TestChaosMiddlewareThreadedThroughServer(t *testing.T) {
	model := resilience.ChaosModel{Seed: 3, ErrorProb: 0.5, ErrorStatus: 503}
	_, ts := newTestServer(t, Config{Chaos: model})

	var ok, injected int
	for i := 0; i < 24; i++ {
		resp, body := post(t, ts.URL+"/v1/analyze", analyzeBody)
		switch resp.StatusCode {
		case http.StatusOK:
			ok++
		case http.StatusServiceUnavailable:
			injected++
			var eb errBody
			if err := json.Unmarshal(body, &eb); err != nil || eb.Code != string(resilience.CodeInjected) {
				t.Fatalf("injected body %q (err %v)", body, err)
			}
		default:
			t.Fatalf("unexpected status %d: %s", resp.StatusCode, body)
		}
	}
	if ok == 0 || injected == 0 {
		t.Fatalf("ok=%d injected=%d, want a mix at p=0.5", ok, injected)
	}
	if n := metricValue(t, ts.URL, `^ringschedd_chaos_injections_total\{kind="error"\}`); n != float64(injected) {
		t.Errorf("chaos_injections_total{error} = %g, want %d", n, injected)
	}
}

func TestSweepStreamShedBeforeHeaders(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 1})
	release := occupyPool(t, s)
	defer release()
	queuedDone := make(chan struct{})
	go func() {
		post(t, ts.URL+"/v1/analyze", analyzeBody)
		close(queuedDone)
	}()
	waitForQueued(t, s, 1)

	// A shed stream request is a plain 503 — not a 200 SSE stream that
	// dies immediately — so clients retry through one code path.
	resp, body := postWith(t, ts.URL+"/v1/sweep?stream=sse", smallSweepBody, nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503; body %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Errorf("Content-Type = %q, want JSON error, not a stream", ct)
	}
	decodeErrBody(t, body)
	release()
	<-queuedDone
}

func TestSweepStreamHeartbeatsWhileStalled(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4, SSEKeepAlive: 25 * time.Millisecond})
	// Occupy the pool so the stream stalls in acquire — from the client's
	// side, total silence without keepalives.
	release := occupyPool(t, s)
	released := false
	defer func() {
		if !released {
			release()
		}
	}()

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/sweep", strings.NewReader(smallSweepBody))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream status = %d", resp.StatusCode)
	}

	sc := bufio.NewScanner(resp.Body)
	keepalives, sawResult := 0, false
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, ": keepalive") {
			keepalives++
			if keepalives == 2 && !released {
				released = true
				release()
			}
		}
		if line == "event: result" {
			sawResult = true
			break
		}
	}
	if keepalives < 2 {
		t.Errorf("saw %d keepalive comments while stalled, want >= 2", keepalives)
	}
	if !sawResult {
		t.Errorf("stream never delivered the result after the stall (scan err %v)", sc.Err())
	}
	_ = s
}

// TestExperimentsSharesComputationBudget pins /v1/experiments to the
// shared worker pool: with the only slot held, a posted batch waits for
// capacity (timing out at its deadline) instead of running an
// uncontrolled inline computation that bypasses overload protection.
func TestExperimentsSharesComputationBudget(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 4})
	release := occupyPool(t, s)
	released := false
	defer func() {
		if !released {
			release()
		}
	}()

	resp, body := postWith(t, ts.URL+"/v1/experiments", `{"ids":["E1"],"quick":true}`,
		map[string]string{"X-Ringsched-Deadline-Ms": "80"})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("saturated pool: status = %d %s, want 504", resp.StatusCode, body)
	}
	eb := decodeErrBody(t, body)
	if eb.Code != string(resilience.CodeDeadline) {
		t.Errorf("504 code = %q, want %q", eb.Code, resilience.CodeDeadline)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("504 missing Retry-After")
	}

	// With the slot free the handler proceeds past admission into
	// RunExperiments, which rejects the unknown ID — proof the 504 above
	// came from the saturated pool, not from the request itself.
	released = true
	release()
	resp, body = postWith(t, ts.URL+"/v1/experiments", `{"ids":["E1"],"quick":true}`, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("freed pool: status = %d %s, want 400 for the unknown ID", resp.StatusCode, body)
	}
}
