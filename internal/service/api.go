// Package service implements ringschedd, the schedulability-analysis
// service: an HTTP JSON API over the library's analyzers, breakdown
// engine, and reproduction experiments. The serving layer adds what a
// parameter-sweeping practitioner needs at scale and the CLIs cannot
// give them:
//
//   - a canonical request form and hasher, so permuted, reformatted, or
//     otherwise equivalent requests map to one cache key (hash.go),
//   - a sharded LRU result cache with a byte budget, serving repeated
//     questions without recomputation (cache.go),
//   - a bounded worker pool with request coalescing, so N concurrent
//     identical requests perform exactly one computation (pool.go),
//   - Prometheus-text metrics and SSE progress streaming (metrics.go,
//     server.go), and
//   - graceful shutdown: drain in-flight jobs, reject new work with 503.
//
// The same Analyze/Sweep entry points back the -json modes of the
// schedcheck and breakdown CLIs, so CLI and server outputs are
// byte-comparable.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"ringsched/internal/breakdown"
	"ringsched/internal/core"
	"ringsched/internal/expt"
	"ringsched/internal/faults"
	"ringsched/internal/message"
	"ringsched/internal/progress"
	"ringsched/internal/ring"
	"ringsched/internal/trace"
)

// Protocol slugs accepted in request "protocols" lists.
const (
	// ProtocolModifiedPDP is the modified IEEE 802.5 implementation
	// (Theorem 4.1, token pass paid once per message).
	ProtocolModifiedPDP = "modified-802.5"
	// ProtocolStandardPDP is the standard IEEE 802.5 implementation
	// (Theorem 4.1, token pass paid per frame).
	ProtocolStandardPDP = "standard-802.5"
	// ProtocolTTP is FDDI under the timed token protocol (Theorem 5.1).
	ProtocolTTP = "fddi"
)

// AllProtocols returns every protocol slug in canonical report order.
func AllProtocols() []string {
	return []string{ProtocolModifiedPDP, ProtocolStandardPDP, ProtocolTTP}
}

// Errors returned by request validation.
var (
	ErrBadRequest      = errors.New("service: bad request")
	ErrUnknownProtocol = errors.New("service: unknown protocol")
)

// protocolOrder fixes the canonical position of each slug; canonicalized
// requests list protocols in this order regardless of input order.
var protocolOrder = map[string]int{
	ProtocolModifiedPDP: 0,
	ProtocolStandardPDP: 1,
	ProtocolTTP:         2,
}

// protocolNames maps slugs to the display names the analyzers report.
var protocolNames = map[string]string{
	ProtocolModifiedPDP: "Modified 802.5",
	ProtocolStandardPDP: "IEEE 802.5",
	ProtocolTTP:         "FDDI",
}

// StreamSpec is the wire form of one synchronous message stream; it
// matches the schedcheck -set file format (periods in milliseconds).
type StreamSpec struct {
	Name       string  `json:"name,omitempty"`
	PeriodMs   float64 `json:"periodMs"`
	LengthBits float64 `json:"lengthBits"`
}

// AnalyzeRequest asks whether a message set is schedulable on the
// requested protocols at one bandwidth, optionally under a fault model.
// FaultModel (a spec string such as "loss:p=1e-3+gilbert:burst=16") and
// Scenario (a named preset) are mutually exclusive.
type AnalyzeRequest struct {
	// Protocols lists the protocol slugs to analyze; empty means all three.
	Protocols []string `json:"protocols,omitempty"`
	// BandwidthMbps is the network bandwidth in Mbps.
	BandwidthMbps float64 `json:"bandwidthMbps"`
	// Streams is the synchronous message set.
	Streams []StreamSpec `json:"streams"`
	// FaultModel is a fault-model spec string for a side-by-side
	// degraded-mode verdict ("" or "none" disables it).
	FaultModel string `json:"faultModel,omitempty"`
	// Scenario is a named built-in fault scenario.
	Scenario string `json:"scenario,omitempty"`
	// Detail includes per-stream verdicts in the response.
	Detail bool `json:"detail,omitempty"`
	// PayloadScales optionally asks, for each factor, whether the set stays
	// schedulable with every payload multiplied by it ("how much headroom
	// does this set have?"). The whole list is evaluated through one pooled
	// batch probe per protocol; verdicts are identical to analyzing each
	// scaled set separately.
	PayloadScales []float64 `json:"payloadScales,omitempty"`
}

// ScaleVerdict is one payload-scale probe's outcome within a Verdict.
type ScaleVerdict struct {
	Scale       float64 `json:"scale"`
	Schedulable bool    `json:"schedulable"`
}

// StreamVerdict is one stream's analysis outcome. PDP verdicts carry
// Frames/ResponseTime; TTP verdicts carry Q/Allocation/WorstCaseResponse.
// All durations are seconds.
type StreamVerdict struct {
	// ID is the server-assigned stream handle, present only in verdicts
	// served from a stateful /v1/rings session; stateless /v1/analyze
	// verdicts omit it (stateless responses stay byte-stable).
	ID                string  `json:"id,omitempty"`
	Name              string  `json:"name,omitempty"`
	PeriodMs          float64 `json:"periodMs"`
	Frames            int     `json:"frames,omitempty"`
	Q                 int     `json:"q,omitempty"`
	AugmentedLength   float64 `json:"augmentedLength"`
	ResponseTime      float64 `json:"responseTime,omitempty"`
	Allocation        float64 `json:"allocation,omitempty"`
	WorstCaseResponse float64 `json:"worstCaseResponse,omitempty"`
	// Schedulable is the per-stream guarantee: ResponseTime ≤ Period for
	// PDP, a finite allocation (q ≥ 2) for TTP.
	Schedulable bool `json:"schedulable"`
}

// DegradedVerdict is the fault-aware analysis outcome. Durations are
// seconds.
type DegradedVerdict struct {
	Schedulable  bool    `json:"schedulable"`
	Availability float64 `json:"availability"`
	// Losses and Recovery echo the PDP budget (Nloss, R).
	Losses   float64 `json:"losses,omitempty"`
	Recovery float64 `json:"recovery,omitempty"`
	// Blocking is the PDP B' = B + Nloss·R.
	Blocking float64 `json:"blocking,omitempty"`
	// TotalAllocation and Capacity are the TTP degraded Σh and TTRT − θ.
	TotalAllocation float64 `json:"totalAllocation,omitempty"`
	Capacity        float64 `json:"capacity,omitempty"`
}

// Verdict is one protocol's analysis outcome. PDP verdicts carry
// Blocking/Theta/FrameTime/AugmentedUtilization; TTP verdicts carry
// TTRT/Overhead/TotalAllocation/Capacity. All durations are seconds.
type Verdict struct {
	Protocol             string           `json:"protocol"`
	Schedulable          bool             `json:"schedulable"`
	Utilization          float64          `json:"utilization"`
	AugmentedUtilization float64          `json:"augmentedUtilization,omitempty"`
	Blocking             float64          `json:"blocking,omitempty"`
	Theta                float64          `json:"theta,omitempty"`
	FrameTime            float64          `json:"frameTime,omitempty"`
	TTRT                 float64          `json:"ttrt,omitempty"`
	Overhead             float64          `json:"overhead,omitempty"`
	TotalAllocation      float64          `json:"totalAllocation,omitempty"`
	Capacity             float64          `json:"capacity,omitempty"`
	Degraded             *DegradedVerdict `json:"degraded,omitempty"`
	Streams              []StreamVerdict  `json:"streams,omitempty"`
	// ScaleVerdicts holds one entry per requested payload scale, in the
	// canonical (ascending, deduped) order.
	ScaleVerdicts []ScaleVerdict `json:"scaleVerdicts,omitempty"`
}

// AnalyzeResponse is the /v1/analyze result. FaultModel echoes the
// canonical fault spec the verdicts assumed ("" for a clean ring).
type AnalyzeResponse struct {
	CacheKey      string    `json:"cacheKey"`
	BandwidthMbps float64   `json:"bandwidthMbps"`
	FaultModel    string    `json:"faultModel,omitempty"`
	Verdicts      []Verdict `json:"verdicts"`
}

// SweepRequest asks for a Figure 1-style breakdown-utilization sweep.
// The zero value of every field selects the paper's defaults.
type SweepRequest struct {
	// Protocols lists the protocol slugs to sweep; empty means all three.
	Protocols []string `json:"protocols,omitempty"`
	// BandwidthsMbps is the sweep grid; empty derives the paper's
	// log-spaced 1 Mbps – 1 Gbps grid from PointsPerDecade.
	BandwidthsMbps []float64 `json:"bandwidthsMbps,omitempty"`
	// PointsPerDecade sets the default grid density (default 3).
	PointsPerDecade int `json:"pointsPerDecade,omitempty"`
	// Streams is the station/stream count of the random workload
	// (default 100).
	Streams int `json:"streams,omitempty"`
	// MeanPeriodMs is the mean message period in ms (default 100).
	MeanPeriodMs float64 `json:"meanPeriodMs,omitempty"`
	// PeriodRatio is the max/min period ratio (default 10).
	PeriodRatio float64 `json:"periodRatio,omitempty"`
	// Samples is the Monte Carlo sample count per point (default 100).
	Samples int `json:"samples,omitempty"`
	// Seed makes the sweep reproducible (default 1993).
	Seed int64 `json:"seed,omitempty"`
}

// SweepPoint is one (bandwidth, estimate) pair.
type SweepPoint struct {
	BandwidthMbps float64 `json:"bandwidthMbps"`
	Mean          float64 `json:"mean"`
	CI95          float64 `json:"ci95"`
	P10           float64 `json:"p10"`
	Median        float64 `json:"median"`
	P90           float64 `json:"p90"`
	Infeasible    int     `json:"infeasible,omitempty"`
}

// SweepSeries is one protocol's breakdown curve.
type SweepSeries struct {
	Protocol string       `json:"protocol"`
	Name     string       `json:"name"`
	Points   []SweepPoint `json:"points"`
}

// SweepResponse is the /v1/sweep result; Request echoes the canonical
// request with every default resolved.
type SweepResponse struct {
	CacheKey string        `json:"cacheKey"`
	Request  SweepRequest  `json:"request"`
	Series   []SweepSeries `json:"series"`
}

// ExperimentInfo describes one runnable reproduction experiment.
type ExperimentInfo struct {
	ID    string `json:"id"`
	Title string `json:"title"`
}

// ExperimentsRequest runs a batch of reproduction experiments.
type ExperimentsRequest struct {
	// IDs selects experiments; empty runs all of them.
	IDs []string `json:"ids,omitempty"`
	// Samples, Seed, PointsPerDecade and Quick scale the runs as
	// expt.Config does.
	Samples         int   `json:"samples,omitempty"`
	Seed            int64 `json:"seed,omitempty"`
	PointsPerDecade int   `json:"pointsPerDecade,omitempty"`
	Quick           bool  `json:"quick,omitempty"`
}

// ExperimentResult is one experiment's outcome within a batch.
type ExperimentResult struct {
	ID     string             `json:"id"`
	Title  string             `json:"title"`
	Pass   bool               `json:"pass"`
	Error  string             `json:"error,omitempty"`
	Values map[string]float64 `json:"values,omitempty"`
	Notes  []string           `json:"notes,omitempty"`
}

// ExperimentsResponse is the /v1/experiments result.
type ExperimentsResponse struct {
	Results []ExperimentResult `json:"results"`
}

// Encode renders a response body in the canonical form shared by the
// server and the -json CLI modes: two-space-indented JSON with a trailing
// newline. Cache entries store exactly these bytes, so a cache hit is
// bit-identical to the original response.
func Encode(v any) ([]byte, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// encodeTraced is Encode under an "encode" span, so response marshalling
// shows up as its own stage in traces and the stage-latency histograms.
func encodeTraced(ctx context.Context, v any) ([]byte, error) {
	_, sp := trace.Start(ctx, "encode")
	defer sp.End()
	b, err := Encode(v)
	sp.SetError(err)
	return b, err
}

// canonFloat collapses a float to its canonical value: -0 becomes +0, so
// both zeros hash and marshal identically. NaN and ±Inf are rejected by
// validation before canonicalization.
func canonFloat(v float64) float64 {
	if v == 0 {
		return 0
	}
	return v
}

func badFloat(v float64) bool { return math.IsNaN(v) || math.IsInf(v, 0) }

// canonProtocols validates, dedupes, and orders a protocol list; empty
// input selects all protocols.
func canonProtocols(in []string) ([]string, error) {
	if len(in) == 0 {
		return AllProtocols(), nil
	}
	seen := map[string]bool{}
	var out []string
	for _, p := range in {
		slug := strings.ToLower(strings.TrimSpace(p))
		if _, ok := protocolOrder[slug]; !ok {
			return nil, fmt.Errorf("%w: %q (valid: %s)",
				ErrUnknownProtocol, p, strings.Join(AllProtocols(), ", "))
		}
		if !seen[slug] {
			seen[slug] = true
			out = append(out, slug)
		}
	}
	sort.Slice(out, func(i, j int) bool { return protocolOrder[out[i]] < protocolOrder[out[j]] })
	return out, nil
}

// canonFaultSpec resolves the FaultModel/Scenario pair to the canonical
// spec string of the parsed model: "" for an inactive model, otherwise
// faults.Model.Spec(), which renders equivalent specs (reordered atoms,
// reformatted numbers, scenario names) identically.
func canonFaultSpec(spec, scenario string) (string, error) {
	if spec != "" && scenario != "" {
		return "", fmt.Errorf("%w: faultModel and scenario are mutually exclusive", ErrBadRequest)
	}
	var m faults.Model
	switch {
	case spec != "":
		parsed, err := faults.ParseModel(spec)
		if err != nil {
			return "", fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		m = parsed
	case scenario != "":
		sc, err := faults.ScenarioByName(strings.TrimSpace(scenario))
		if err != nil {
			return "", fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		m = sc.Model
	default:
		return "", nil
	}
	if !m.Active() {
		return "", nil
	}
	return m.Spec(), nil
}

// Canonicalize validates the request and returns its canonical form: the
// protocol list deduped and ordered, the fault spec resolved and
// normalized, floats collapsed (-0 → +0), and the streams sorted to
// rate-monotonic order with deterministic tie-breaking. Two requests that
// differ only in stream order, float formatting, or fault-spec spelling
// canonicalize identically — and therefore share one cache key and one
// bit-identical response body.
//
// Stream multiplicity is preserved: two identical streams are two
// stations' worth of load, not a duplicate to drop.
func (r AnalyzeRequest) Canonicalize() (AnalyzeRequest, error) {
	out := r
	var err error
	if out.Protocols, err = canonProtocols(r.Protocols); err != nil {
		return AnalyzeRequest{}, err
	}
	if out.BandwidthMbps <= 0 || badFloat(out.BandwidthMbps) {
		return AnalyzeRequest{}, fmt.Errorf("%w: bandwidthMbps must be positive and finite, got %v",
			ErrBadRequest, out.BandwidthMbps)
	}
	out.BandwidthMbps = canonFloat(out.BandwidthMbps)
	spec, err := canonFaultSpec(r.FaultModel, r.Scenario)
	if err != nil {
		return AnalyzeRequest{}, err
	}
	out.FaultModel, out.Scenario = spec, ""
	out.Streams = make([]StreamSpec, len(r.Streams))
	for i, s := range r.Streams {
		out.Streams[i] = StreamSpec{
			Name:       s.Name,
			PeriodMs:   canonFloat(s.PeriodMs),
			LengthBits: canonFloat(s.LengthBits),
		}
	}
	sort.SliceStable(out.Streams, func(i, j int) bool {
		a, b := out.Streams[i], out.Streams[j]
		if a.PeriodMs != b.PeriodMs {
			return a.PeriodMs < b.PeriodMs
		}
		if a.LengthBits != b.LengthBits {
			return a.LengthBits < b.LengthBits
		}
		return a.Name < b.Name
	})
	if len(r.PayloadScales) > 0 {
		out.PayloadScales = make([]float64, 0, len(r.PayloadScales))
		for _, s := range r.PayloadScales {
			if s <= 0 || badFloat(s) {
				return AnalyzeRequest{}, fmt.Errorf("%w: payloadScales must be positive and finite, got %v",
					ErrBadRequest, s)
			}
			out.PayloadScales = append(out.PayloadScales, canonFloat(s))
		}
		// Ascending and deduped: probing one scale twice is pure waste, and
		// the order carries no meaning beyond presentation.
		sort.Float64s(out.PayloadScales)
		n := 0
		for _, s := range out.PayloadScales {
			if n == 0 || s != out.PayloadScales[n-1] {
				out.PayloadScales[n] = s
				n++
			}
		}
		out.PayloadScales = out.PayloadScales[:n]
	} else {
		out.PayloadScales = nil
	}
	if err := out.messageSet().Validate(); err != nil {
		return AnalyzeRequest{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return out, nil
}

// messageSet converts the wire streams to the analysis model.
func (r AnalyzeRequest) messageSet() message.Set {
	set := make(message.Set, len(r.Streams))
	for i, s := range r.Streams {
		set[i] = message.Stream{Name: s.Name, Period: s.PeriodMs / 1e3, LengthBits: s.LengthBits}
	}
	return set
}

// Canonicalize validates the request and resolves every default, so
// equivalent sweeps (explicit defaults vs omitted fields, permuted or
// duplicated grid points) share one cache key. The bandwidth grid is
// sorted ascending and deduped — estimating one point twice is pure
// waste, and per-point RNG streams depend only on (seed, bandwidth,
// sample), never on grid position.
func (r SweepRequest) Canonicalize() (SweepRequest, error) {
	out := r
	var err error
	if out.Protocols, err = canonProtocols(r.Protocols); err != nil {
		return SweepRequest{}, err
	}
	if out.PointsPerDecade <= 0 {
		out.PointsPerDecade = 3
	}
	if out.Streams <= 0 {
		out.Streams = 100
	}
	if out.MeanPeriodMs == 0 {
		out.MeanPeriodMs = 100
	}
	if out.PeriodRatio == 0 {
		out.PeriodRatio = 10
	}
	if out.Samples <= 0 {
		out.Samples = 100
	}
	if out.Seed == 0 {
		out.Seed = 1993
	}
	if out.MeanPeriodMs <= 0 || badFloat(out.MeanPeriodMs) ||
		out.PeriodRatio < 1 || badFloat(out.PeriodRatio) {
		return SweepRequest{}, fmt.Errorf("%w: meanPeriodMs must be positive and periodRatio ≥ 1",
			ErrBadRequest)
	}
	out.MeanPeriodMs = canonFloat(out.MeanPeriodMs)
	out.PeriodRatio = canonFloat(out.PeriodRatio)
	if len(r.BandwidthsMbps) == 0 {
		grid := paperBandwidthsMbps(out.PointsPerDecade)
		out.BandwidthsMbps = grid
	} else {
		bws := make([]float64, 0, len(r.BandwidthsMbps))
		for _, bw := range r.BandwidthsMbps {
			if bw <= 0 || badFloat(bw) {
				return SweepRequest{}, fmt.Errorf("%w: bandwidthsMbps must be positive and finite, got %v",
					ErrBadRequest, bw)
			}
			bws = append(bws, canonFloat(bw))
		}
		sort.Float64s(bws)
		deduped := bws[:1]
		for _, bw := range bws[1:] {
			if bw != deduped[len(deduped)-1] {
				deduped = append(deduped, bw)
			}
		}
		out.BandwidthsMbps = deduped
	}
	return out, nil
}

// canonExperimentIDs validates and orders an experiment ID list; empty
// selects every registered experiment.
func canonExperimentIDs(in []string) ([]expt.Experiment, error) {
	if len(in) == 0 {
		return expt.All(), nil
	}
	seen := map[string]bool{}
	var out []expt.Experiment
	for _, id := range in {
		id = strings.ToUpper(strings.TrimSpace(id))
		if seen[id] {
			continue
		}
		seen[id] = true
		e, err := expt.ByID(id)
		if err != nil {
			all := expt.All()
			ids := make([]string, len(all))
			for i, e := range all {
				ids[i] = e.ID
			}
			return nil, fmt.Errorf("%w: %v (valid: %s)", ErrBadRequest, err, strings.Join(ids, ", "))
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out, nil
}

// ListExperiments returns every registered reproduction experiment in ID
// order.
func ListExperiments() []ExperimentInfo {
	all := expt.All()
	out := make([]ExperimentInfo, len(all))
	for i, e := range all {
		out[i] = ExperimentInfo{ID: e.ID, Title: e.Title}
	}
	return out
}

// Analyze answers one analyze request. It canonicalizes the request
// itself, so callers may pass the raw wire form; the response (including
// its CacheKey) is a pure function of the canonical request — the
// property the result cache and the CLI/server byte-comparability tests
// rely on.
func Analyze(ctx context.Context, req AnalyzeRequest) (AnalyzeResponse, error) {
	canon, err := req.Canonicalize()
	if err != nil {
		return AnalyzeResponse{}, err
	}
	return analyzeCanonical(ctx, canon, canon.CacheKey())
}

// analyzeCanonical runs the analysis for an already-canonical request.
func analyzeCanonical(ctx context.Context, req AnalyzeRequest, key string) (AnalyzeResponse, error) {
	set := req.messageSet()
	bw := ring.Mbps(req.BandwidthMbps)
	var fm *faults.Model
	if req.FaultModel != "" {
		m, err := faults.ParseModel(req.FaultModel)
		if err != nil {
			return AnalyzeResponse{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
		fm = &m
	}
	resp := AnalyzeResponse{
		CacheKey:      key,
		BandwidthMbps: req.BandwidthMbps,
		FaultModel:    req.FaultModel,
	}
	for _, proto := range req.Protocols {
		if err := ctx.Err(); err != nil {
			return AnalyzeResponse{}, err
		}
		_, sp := trace.Start(ctx, "analyze.protocol")
		sp.SetAttr("protocol", proto)
		var v Verdict
		var err error
		if proto == ProtocolTTP {
			v, err = analyzeTTP(bw, set, fm, req.Detail, req.PayloadScales)
		} else {
			v, err = analyzePDP(proto, bw, set, fm, req.Detail, req.PayloadScales)
		}
		if err != nil {
			sp.SetError(err)
			sp.End()
			return AnalyzeResponse{}, err
		}
		sp.SetAttr("schedulable", v.Schedulable)
		sp.End()
		resp.Verdicts = append(resp.Verdicts, v)
	}
	return resp, nil
}

// scaleVerdicts evaluates the canonical payload-scale list through the
// analyzer's pooled batch probe (one workspace for the whole list).
func scaleVerdicts(a core.Analyzer, set message.Set, scales []float64) ([]ScaleVerdict, error) {
	if len(scales) == 0 {
		return nil, nil
	}
	verdicts, err := core.AnalyzeBatch(a, set, scales)
	if err != nil {
		return nil, err
	}
	out := make([]ScaleVerdict, len(scales))
	for i, s := range scales {
		out[i] = ScaleVerdict{Scale: s, Schedulable: verdicts[i]}
	}
	return out, nil
}

// pdpVerdict maps a PDP report to the wire verdict. It is shared by
// /v1/analyze and the per-ring verdicts of /v1/topology/analyze, so a
// 1-node topology reports exactly the values the direct endpoint reports.
func pdpVerdict(proto string, rep core.PDPReport, detail bool) Verdict {
	v := Verdict{
		Protocol:             proto,
		Schedulable:          rep.Schedulable,
		Utilization:          rep.Utilization,
		AugmentedUtilization: rep.AugmentedUtilization,
		Blocking:             rep.Blocking,
		Theta:                rep.Theta,
		FrameTime:            rep.FrameTime,
	}
	if detail {
		for _, s := range rep.Streams {
			v.Streams = append(v.Streams, StreamVerdict{
				Name:            s.Stream.Name,
				PeriodMs:        s.Stream.Period * 1e3,
				Frames:          s.Frames,
				AugmentedLength: s.AugmentedLength,
				ResponseTime:    s.ResponseTime,
				Schedulable:     s.Schedulable,
			})
		}
	}
	return v
}

// ttpVerdict maps a TTP report to the wire verdict (see pdpVerdict).
func ttpVerdict(rep core.TTPReport, detail bool) Verdict {
	v := Verdict{
		Protocol:        ProtocolTTP,
		Schedulable:     rep.Schedulable,
		Utilization:     rep.Utilization,
		TTRT:            rep.TTRT,
		Overhead:        rep.Overhead,
		TotalAllocation: rep.TotalAllocation,
		Capacity:        rep.Capacity,
	}
	if detail {
		for _, s := range rep.Streams {
			v.Streams = append(v.Streams, StreamVerdict{
				Name:              s.Stream.Name,
				PeriodMs:          s.Stream.Period * 1e3,
				Q:                 s.Q,
				AugmentedLength:   s.AugmentedLength,
				Allocation:        s.Allocation,
				WorstCaseResponse: s.WorstCaseResponse,
				Schedulable:       s.Q >= 2,
			})
		}
	}
	return v
}

func analyzePDP(proto string, bw float64, set message.Set, fm *faults.Model, detail bool, scales []float64) (Verdict, error) {
	p := core.NewStandardPDP(bw)
	if proto == ProtocolModifiedPDP {
		p = core.NewModifiedPDP(bw)
	}
	if len(set) > p.Net.Stations {
		p.Net = p.Net.WithStations(len(set))
	}
	rep, err := p.Report(set)
	if err != nil {
		return Verdict{}, err
	}
	v := pdpVerdict(proto, rep, detail)
	if v.ScaleVerdicts, err = scaleVerdicts(p, set, scales); err != nil {
		return Verdict{}, err
	}
	if fm != nil {
		budget := p.FaultBudgetFor(fm, set)
		deg, err := p.FaultReport(set, budget)
		if err != nil {
			return Verdict{}, err
		}
		v.Degraded = &DegradedVerdict{
			Schedulable:  deg.Schedulable,
			Availability: budget.Availability,
			Losses:       budget.Losses,
			Recovery:     budget.Recovery,
			Blocking:     deg.Blocking,
		}
	}
	return v, nil
}

func analyzeTTP(bw float64, set message.Set, fm *faults.Model, detail bool, scales []float64) (Verdict, error) {
	t := core.NewTTP(bw)
	if len(set) > t.Net.Stations {
		t.Net = t.Net.WithStations(len(set))
	}
	rep, err := t.Report(set)
	if err != nil {
		return Verdict{}, err
	}
	v := ttpVerdict(rep, detail)
	if v.ScaleVerdicts, err = scaleVerdicts(t, set, scales); err != nil {
		return Verdict{}, err
	}
	if fm != nil {
		budget := t.FaultBudgetFor(fm, set)
		deg, err := t.FaultReport(set, budget)
		if err != nil {
			return Verdict{}, err
		}
		v.Degraded = &DegradedVerdict{
			Schedulable:     deg.Schedulable,
			Availability:    deg.Availability,
			TotalAllocation: wireAllocation(deg.TotalAllocation),
			Capacity:        deg.Capacity,
		}
	}
	return v, nil
}

// wireAllocation renders a TTP allocation total on the wire. JSON has no
// +Inf, so an unbounded Σh — some stream's q fell below 2 under the
// availability discount, meaning no finite synchronous allocation exists
// — is reported as -1 (the verdict is necessarily unschedulable).
func wireAllocation(v float64) float64 {
	if math.IsInf(v, 1) {
		return -1
	}
	return v
}

// Sweep answers one sweep request. Like Analyze it canonicalizes the raw
// request; workers bounds the estimator's parallelism (0 = all cores) and
// never affects the result, and obs (may be nil) observes per-sample and
// per-point progress. Cancelling ctx aborts the Monte Carlo workers
// promptly.
func Sweep(ctx context.Context, req SweepRequest, workers int, obs progress.Progress) (SweepResponse, error) {
	canon, err := req.Canonicalize()
	if err != nil {
		return SweepResponse{}, err
	}
	return sweepCanonical(ctx, canon, canon.CacheKey(), workers, obs)
}

func sweepCanonical(ctx context.Context, req SweepRequest, key string, workers int, obs progress.Progress) (SweepResponse, error) {
	est := breakdown.Estimator{
		Generator: message.Generator{
			Streams:     req.Streams,
			MeanPeriod:  req.MeanPeriodMs / 1e3,
			PeriodRatio: req.PeriodRatio,
		},
		Samples:  req.Samples,
		Seed:     req.Seed,
		Workers:  workers,
		Progress: obs,
	}
	bandwidths := make([]float64, len(req.BandwidthsMbps))
	for i, bw := range req.BandwidthsMbps {
		bandwidths[i] = ring.Mbps(bw)
	}
	resp := SweepResponse{CacheKey: key, Request: req}
	for _, proto := range req.Protocols {
		factory := analyzerFactory(proto, req.Streams)
		s, err := est.SweepContext(ctx, protocolNames[proto], factory, bandwidths)
		if err != nil {
			return SweepResponse{}, err
		}
		series := SweepSeries{Protocol: proto, Name: s.Name}
		for _, p := range s.Points {
			series.Points = append(series.Points, SweepPoint{
				BandwidthMbps: p.BandwidthBPS / 1e6,
				Mean:          p.Estimate.Mean,
				CI95:          p.Estimate.CI95,
				P10:           p.Estimate.P10,
				Median:        p.Estimate.Median,
				P90:           p.Estimate.P90,
				Infeasible:    p.Estimate.Infeasible,
			})
		}
		resp.Series = append(resp.Series, series)
	}
	return resp, nil
}

// analyzerFactory builds the per-bandwidth analyzer for one protocol with
// the plant resized to the workload's station count, mirroring the
// breakdown CLI.
func analyzerFactory(proto string, stations int) breakdown.AnalyzerFactory {
	switch proto {
	case ProtocolModifiedPDP:
		return func(bw float64) core.Analyzer {
			p := core.NewModifiedPDP(bw)
			p.Net = p.Net.WithStations(stations)
			return p
		}
	case ProtocolStandardPDP:
		return func(bw float64) core.Analyzer {
			p := core.NewStandardPDP(bw)
			p.Net = p.Net.WithStations(stations)
			return p
		}
	default:
		return func(bw float64) core.Analyzer {
			t := core.NewTTP(bw)
			t.Net = t.Net.WithStations(stations)
			return t
		}
	}
}

// RunExperiments executes a batch of reproduction experiments; workers
// bounds the parallelism and obs (may be nil) observes lifecycle and
// progress. Results come back in deterministic ID order.
func RunExperiments(ctx context.Context, req ExperimentsRequest, workers int, obs progress.Progress) (ExperimentsResponse, error) {
	exps, err := canonExperimentIDs(req.IDs)
	if err != nil {
		return ExperimentsResponse{}, err
	}
	cfg := expt.Config{
		Samples:         req.Samples,
		Seed:            req.Seed,
		PointsPerDecade: req.PointsPerDecade,
		Quick:           req.Quick,
		Workers:         workers,
	}
	var resp ExperimentsResponse
	for _, o := range expt.RunAll(ctx, cfg, obs, exps) {
		r := ExperimentResult{
			ID:     o.Experiment.ID,
			Title:  o.Experiment.Title,
			Pass:   o.Err == nil && o.Report.Pass,
			Values: o.Report.Values,
			Notes:  o.Report.Notes,
		}
		if o.Err != nil {
			r.Error = o.Err.Error()
		}
		resp.Results = append(resp.Results, r)
	}
	if err := ctx.Err(); err != nil {
		return ExperimentsResponse{}, err
	}
	return resp, nil
}

// paperBandwidthsMbps is the default sweep grid in Mbps.
func paperBandwidthsMbps(pointsPerDecade int) []float64 {
	bws := breakdown.PaperBandwidths(pointsPerDecade)
	out := make([]float64, len(bws))
	for i, bw := range bws {
		out[i] = bw / 1e6
	}
	return out
}
