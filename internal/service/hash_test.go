package service

import (
	"context"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

func mustCanon(t *testing.T, r AnalyzeRequest) AnalyzeRequest {
	t.Helper()
	c, err := r.Canonicalize()
	if err != nil {
		t.Fatalf("Canonicalize: %v", err)
	}
	return c
}

func analyzeKey(t *testing.T, r AnalyzeRequest) string {
	t.Helper()
	return mustCanon(t, r).CacheKey()
}

func baseRequest() AnalyzeRequest {
	return AnalyzeRequest{
		BandwidthMbps: 100,
		Streams: []StreamSpec{
			{Name: "telemetry", PeriodMs: 50, LengthBits: 65536},
			{Name: "gyro", PeriodMs: 10, LengthBits: 4096},
			{Name: "video", PeriodMs: 100, LengthBits: 1 << 20},
		},
	}
}

func TestPermutedStreamOrderHashesIdentically(t *testing.T) {
	a := baseRequest()
	b := baseRequest()
	b.Streams[0], b.Streams[2] = b.Streams[2], b.Streams[0]
	c := baseRequest()
	c.Streams[0], c.Streams[1] = c.Streams[1], c.Streams[0]
	want := analyzeKey(t, a)
	if got := analyzeKey(t, b); got != want {
		t.Errorf("permuted streams changed key: %s vs %s", got, want)
	}
	if got := analyzeKey(t, c); got != want {
		t.Errorf("permuted streams changed key: %s vs %s", got, want)
	}
}

func TestCanonFloatCollapsesNegativeZero(t *testing.T) {
	neg := math.Copysign(0, -1)
	if math.Signbit(canonFloat(neg)) {
		t.Error("canonFloat(-0) kept the sign bit")
	}
	if canonFloat(neg) != canonFloat(0) {
		t.Error("+0 and -0 canonicalize differently")
	}
	// The property end to end: two canonical requests differing only in
	// the zero's sign serialize identically. Zero is invalid for every
	// request float, so exercise the hasher directly.
	ha, hb := newHasher("probe"), newHasher("probe")
	ha.float("v", 0)
	hb.float("v", neg)
	if ha.sum() != hb.sum() {
		t.Error("hasher distinguishes +0 from -0")
	}
}

func TestFloatFormattingVariantsHashIdentically(t *testing.T) {
	// "100", "100.0", "1e2" and "0.1e3" all decode to the same float64;
	// the round-trip through strconv must key them identically.
	bodies := []string{
		`{"bandwidthMbps":100,"streams":[{"periodMs":10,"lengthBits":4096}]}`,
		`{"bandwidthMbps":100.0,"streams":[{"periodMs":10.00,"lengthBits":4096.0}]}`,
		`{"bandwidthMbps":1e2,"streams":[{"periodMs":0.1e2,"lengthBits":4.096e3}]}`,
	}
	var keys []string
	for _, body := range bodies {
		var req AnalyzeRequest
		if err := json.Unmarshal([]byte(body), &req); err != nil {
			t.Fatal(err)
		}
		keys = append(keys, analyzeKey(t, req))
	}
	if keys[0] != keys[1] || keys[1] != keys[2] {
		t.Errorf("float formatting changed keys: %v", keys)
	}
}

func TestEquivalentFaultSpecsHashIdentically(t *testing.T) {
	a := baseRequest()
	a.FaultModel = "loss:p=1e-3+gilbert:burst=16"
	b := baseRequest()
	b.FaultModel = "gilbert:burst=16+loss:p=0.001" // reordered atoms, reformatted number
	if ka, kb := analyzeKey(t, a), analyzeKey(t, b); ka != kb {
		t.Errorf("equivalent fault specs keyed differently:\n%s\n%s", ka, kb)
	}

	// A named scenario and its spelled-out spec are the same question.
	c := baseRequest()
	c.Scenario = "lossy-token"
	d := baseRequest()
	d.FaultModel = "loss:p=0.001,detect=1ms,rounds=2"
	if kc, kd := analyzeKey(t, c), analyzeKey(t, d); kc != kd {
		t.Errorf("scenario and equivalent spec keyed differently:\n%s\n%s", kc, kd)
	}

	// "none" and the clean scenario mean a healthy ring, like no spec.
	e := baseRequest()
	e.FaultModel = "none"
	f := baseRequest()
	f.Scenario = "clean"
	if analyzeKey(t, e) != analyzeKey(t, baseRequest()) || analyzeKey(t, f) != analyzeKey(t, baseRequest()) {
		t.Error("inactive fault specs keyed differently from no spec")
	}
}

func TestDistinctRequestsHashDifferently(t *testing.T) {
	base := analyzeKey(t, baseRequest())
	bw := baseRequest()
	bw.BandwidthMbps = 16
	detail := baseRequest()
	detail.Detail = true
	fault := baseRequest()
	fault.Scenario = "degraded"
	protos := baseRequest()
	protos.Protocols = []string{ProtocolTTP}
	dup := baseRequest()
	dup.Streams = append(dup.Streams, dup.Streams[0]) // multiplicity is load, not a duplicate
	seen := map[string]string{base: "base"}
	for name, r := range map[string]AnalyzeRequest{
		"bandwidth": bw, "detail": detail, "fault": fault, "protocols": protos, "duplicate-stream": dup,
	} {
		k := analyzeKey(t, r)
		if prev, ok := seen[k]; ok {
			t.Errorf("%s collides with %s", name, prev)
		}
		seen[k] = name
	}
}

func TestCanonicalProtocolOrderAndAliases(t *testing.T) {
	a := baseRequest()
	a.Protocols = []string{"FDDI", "modified-802.5", "fddi"}
	canon := mustCanon(t, a)
	if len(canon.Protocols) != 2 || canon.Protocols[0] != ProtocolModifiedPDP || canon.Protocols[1] != ProtocolTTP {
		t.Errorf("canonical protocols = %v", canon.Protocols)
	}

	bad := baseRequest()
	bad.Protocols = []string{"token-bus"}
	if _, err := bad.Canonicalize(); err == nil || !strings.Contains(err.Error(), ProtocolStandardPDP) {
		t.Errorf("unknown protocol error should list valid slugs, got %v", err)
	}
}

func TestSweepCanonicalizationDefaultsAndGrid(t *testing.T) {
	canon, err := SweepRequest{}.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	if canon.Streams != 100 || canon.Samples != 100 || canon.Seed != 1993 ||
		canon.MeanPeriodMs != 100 || canon.PeriodRatio != 10 {
		t.Errorf("defaults not resolved: %+v", canon)
	}
	if len(canon.BandwidthsMbps) == 0 || canon.BandwidthsMbps[0] != 1 {
		t.Errorf("default grid wrong: %v", canon.BandwidthsMbps)
	}

	// An explicit grid equal to the derived one keys identically, and a
	// permuted, duplicated grid keys identically to the sorted one.
	explicit := SweepRequest{BandwidthsMbps: canon.BandwidthsMbps}
	ce, err := explicit.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	if ce.CacheKey() != canon.CacheKey() {
		t.Error("explicit default grid keyed differently")
	}
	messy := SweepRequest{BandwidthsMbps: []float64{100, 10, 100, 4}}
	tidy := SweepRequest{BandwidthsMbps: []float64{4, 10, 100}}
	cm, err := messy.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	ct, err := tidy.Canonicalize()
	if err != nil {
		t.Fatal(err)
	}
	if cm.CacheKey() != ct.CacheKey() {
		t.Error("permuted/duplicated grid keyed differently")
	}
}

func TestAnalyzeResponseIsPureFunctionOfCanonicalRequest(t *testing.T) {
	a := baseRequest()
	b := baseRequest()
	b.Streams[0], b.Streams[2] = b.Streams[2], b.Streams[0]
	b.FaultModel = "none"
	ra, err := Analyze(context.Background(), a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Analyze(context.Background(), b)
	if err != nil {
		t.Fatal(err)
	}
	ba, err := Encode(ra)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := Encode(rb)
	if err != nil {
		t.Fatal(err)
	}
	if string(ba) != string(bb) {
		t.Errorf("equivalent requests produced different bodies:\n%s\nvs\n%s", ba, bb)
	}
	if ra.CacheKey == "" || len(ra.Verdicts) != 3 {
		t.Errorf("unexpected response: %+v", ra)
	}
}

func TestAnalyzeRequestValidation(t *testing.T) {
	cases := map[string]AnalyzeRequest{
		"no streams":    {BandwidthMbps: 100},
		"zero bw":       {Streams: []StreamSpec{{PeriodMs: 10, LengthBits: 64}}},
		"negative bw":   {BandwidthMbps: -1, Streams: []StreamSpec{{PeriodMs: 10, LengthBits: 64}}},
		"nan bw":        {BandwidthMbps: math.NaN(), Streams: []StreamSpec{{PeriodMs: 10, LengthBits: 64}}},
		"bad period":    {BandwidthMbps: 100, Streams: []StreamSpec{{PeriodMs: -1, LengthBits: 64}}},
		"both faults":   {BandwidthMbps: 100, Streams: []StreamSpec{{PeriodMs: 10, LengthBits: 64}}, FaultModel: "loss", Scenario: "degraded"},
		"bad fault":     {BandwidthMbps: 100, Streams: []StreamSpec{{PeriodMs: 10, LengthBits: 64}}, FaultModel: "bogus:x=1"},
		"bad scenario":  {BandwidthMbps: 100, Streams: []StreamSpec{{PeriodMs: 10, LengthBits: 64}}, Scenario: "bogus"},
		"bad protocols": {BandwidthMbps: 100, Streams: []StreamSpec{{PeriodMs: 10, LengthBits: 64}}, Protocols: []string{"x"}},
	}
	for name, req := range cases {
		if _, err := req.Canonicalize(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}
