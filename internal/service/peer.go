package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"time"

	"ringsched/internal/cluster"
	"ringsched/internal/trace"
	"ringsched/ringschedclient"
)

// peerHopHeader is the peer-fill loop guard. Every outbound fill carries
// it, and a request that arrives with it is never forwarded again — so a
// fill can hop at most once regardless of how stale or disagreeing the
// members' ring configurations are.
const peerHopHeader = "X-Ringsched-Peer-Hop"

// clusterState is the per-process view of the sharded cluster: the
// consistent-hash ring every member computes identically from the flag
// configuration, this process's own advertise address, and one resilient
// client per peer (each peer gets its own circuit breaker, so one dead
// member never stops fills toward the others).
type clusterState struct {
	ring *cluster.Ring
	self string
	pool *ringschedclient.Pool
}

// initCluster wires the peer-fill layer into a Server being built by New.
// It is a no-op without an Advertise address (single-process mode).
func (s *Server) initCluster(cfg Config) {
	if cfg.Advertise == "" {
		return
	}
	members := append([]string{cfg.Advertise}, cfg.Peers...)
	s.clust = &clusterState{
		ring: cluster.New(cfg.PeerVNodes, members...),
		self: cfg.Advertise,
		pool: ringschedclient.NewPool(ringschedclient.Options{
			// A failed fill falls back to a local computation immediately;
			// retrying the peer first would spend the caller's deadline on
			// a member the breaker already suspects.
			MaxRetries: -1,
			Deadline:   cfg.PeerFillTimeout,
			ClientID:   "peer:" + cfg.Advertise,
			Headers:    map[string]string{peerHopHeader: "1"},
		}),
	}
	s.peerFill = newCounterVec("ringschedd_peer_fill_total",
		"Outbound peer cache fills by result (hit: peer had it cached or coalesced, miss: peer computed it, error: fill failed and this process computed locally).")
	s.mux.HandleFunc("/v1/peer/fill", s.instrumentOpts("peer.fill", s.handlePeerFill, true))
}

// Members returns the cluster member set (nil in single-process mode).
func (s *Server) Members() []string {
	if s.clust == nil {
		return nil
	}
	out := append([]string(nil), s.clust.ring.Members()...)
	sort.Strings(out)
	return out
}

// peerFillRequest is the /v1/peer/fill wire format: the logical endpoint
// plus the original request body, verbatim. The owner re-canonicalizes
// the request itself — canonicalization is idempotent, so both sides
// derive the same cache key without trusting each other's hashing.
type peerFillRequest struct {
	Endpoint string          `json:"endpoint"`
	Request  json.RawMessage `json:"request"`
}

// peerOwner returns the owning member for key when it is some other
// member and this request is still allowed to hop: forwarding is off in
// single-process mode, for requests that already hopped once (the loop
// guard), and of course for keys this process owns.
func (s *Server) peerOwner(r *http.Request, key string) string {
	if s.clust == nil || r.Header.Get(peerHopHeader) != "" {
		return ""
	}
	owner := s.clust.ring.Owner(key)
	if owner == s.clust.self {
		return ""
	}
	return owner
}

// fillFromPeer asks owner to serve key's computation over /v1/peer/fill
// and installs the result in the local cache. It reports whether the
// fill succeeded; on any failure the caller computes locally, so a dead
// or shedding owner degrades the cluster to per-process caching rather
// than to errors. It runs inside the flight group's compute function, so
// concurrent identical local requests coalesce onto one outbound fill.
func (s *Server) fillFromPeer(ctx context.Context, parent *trace.Span, owner, endpoint, key string, peerReq any) ([]byte, bool) {
	fctx, fsp := trace.Start(trace.ContextWithSpan(ctx, parent), "peer.fill")
	defer fsp.End()
	fsp.SetAttr("owner", owner)
	fsp.SetAttr("endpoint", endpoint)
	raw, err := json.Marshal(peerReq)
	if err != nil {
		fsp.SetError(err)
		s.peerFill.Add(labels("result", "error"), 1)
		return nil, false
	}
	body, hdr, err := s.clust.pool.Client(owner).CallHeader(fctx, http.MethodPost, "/v1/peer/fill",
		peerFillRequest{Endpoint: endpoint, Request: raw}, nil)
	if err != nil {
		fsp.SetError(err)
		s.peerFill.Add(labels("result", "error"), 1)
		return nil, false
	}
	result := "miss"
	if xc := hdr.Get("X-Cache"); xc == "hit" || xc == "coalesced" {
		result = "hit"
	}
	fsp.SetAttr("peerCache", hdr.Get("X-Cache"))
	s.peerFill.Add(labels("result", result), 1)
	s.cache.Put(key, body)
	return body, true
}

// handlePeerFill serves /v1/peer/fill: a peer that does not own a key
// asks this process (the owner) to serve the computation. The request
// runs through the exact cache → coalesce → compute path of the public
// endpoint it wraps, under the same computes/verdicts metrics, so a
// computation looks identical no matter which door it came through. The
// inbound request carries the hop header, so it can never forward again.
func (s *Server) handlePeerFill(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, errors.New("service: POST required"))
		return
	}
	var req peerFillRequest
	if err := decode(r, &req); err != nil {
		writeError(w, http.StatusBadRequest, err)
		return
	}
	if sp := trace.SpanFromContext(r.Context()); sp != nil {
		sp.SetAttr("fillEndpoint", req.Endpoint)
	}
	switch req.Endpoint {
	case "analyze":
		var inner AnalyzeRequest
		if err := unmarshalStrict(req.Request, &inner); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		s.serveAnalyze(w, r, inner)
	case "topology":
		var inner TopologyRequest
		if err := unmarshalStrict(req.Request, &inner); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		s.serveTopology(w, r, inner)
	case "sweep":
		var inner SweepRequest
		if err := unmarshalStrict(req.Request, &inner); err != nil {
			writeError(w, http.StatusBadRequest, err)
			return
		}
		s.serveSweep(w, r, inner)
	default:
		writeError(w, http.StatusBadRequest,
			fmt.Errorf("%w: unknown fill endpoint %q", ErrBadRequest, req.Endpoint))
	}
}

// unmarshalStrict is decode's body-less twin for embedded payloads.
func unmarshalStrict(raw json.RawMessage, v any) error {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return nil
}

// clusterDefaults fills the cluster-specific Config defaults.
func clusterDefaults(c Config) Config {
	if c.PeerFillTimeout <= 0 {
		c.PeerFillTimeout = 2 * time.Second
	}
	return c
}
