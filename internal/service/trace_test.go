package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"ringsched/internal/trace"
)

// tracesFor fetches /debug/traces?trace=id and decodes the span list.
func tracesFor(t *testing.T, base, id string) []trace.Record {
	t.Helper()
	resp, err := http.Get(base + "/debug/traces?trace=" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/traces: %d", resp.StatusCode)
	}
	var body struct {
		Total    uint64         `json:"total"`
		Retained int            `json:"retained"`
		Spans    []trace.Record `json:"spans"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return body.Spans
}

func spanByName(recs []trace.Record, name string) *trace.Record {
	for i := range recs {
		if recs[i].Name == name {
			return &recs[i]
		}
	}
	return nil
}

// TestAnalyzeTraceRetrievable is the observability acceptance check: one
// /v1/analyze request yields a trace, addressable by the response's
// X-Ringsched-Trace header, whose spans cover handler → canonicalize →
// cache lookup → kernel → encode with the cache outcome recorded — and a
// repeat of the same request records a hit with no kernel span.
func TestAnalyzeTraceRetrievable(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp, body := post(t, ts.URL+"/v1/analyze", analyzeBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze: %d %s", resp.StatusCode, body)
	}
	id := resp.Header.Get("X-Ringsched-Trace")
	if _, err := trace.ParseTraceID(id); err != nil || id == "" {
		t.Fatalf("X-Ringsched-Trace = %q: %v", id, err)
	}

	recs := tracesFor(t, ts.URL, id)
	root := spanByName(recs, "http.analyze")
	if root == nil {
		t.Fatalf("trace %s has no http.analyze root span; got %d spans", id, len(recs))
	}
	if root.ParentID != "" {
		t.Errorf("root span has parent %q", root.ParentID)
	}
	if got := root.Attrs["coalesced"]; got != false {
		t.Errorf("root coalesced attr = %v, want false", got)
	}
	for _, name := range []string{"canonicalize", "cache.lookup", "kernel", "encode", "analyze.protocol"} {
		sp := spanByName(recs, name)
		if sp == nil {
			t.Errorf("trace lacks a %q span", name)
			continue
		}
		if sp.TraceID != id {
			t.Errorf("%s span in trace %s, want %s", name, sp.TraceID, id)
		}
		if sp.ParentID == "" {
			t.Errorf("%s span has no parent", name)
		}
	}
	if sp := spanByName(recs, "cache.lookup"); sp != nil && sp.Attrs["outcome"] != "miss" {
		t.Errorf("first request cache.lookup outcome = %v, want miss", sp.Attrs["outcome"])
	}
	// The kernel span must parent to this request's tree even though the
	// flight group ran it on a context detached from the request.
	if k := spanByName(recs, "kernel"); k != nil && k.ParentID != root.SpanID {
		t.Errorf("kernel span parent = %s, want root %s", k.ParentID, root.SpanID)
	}

	// Same request again: served from cache — hit outcome, no kernel.
	resp2, _ := post(t, ts.URL+"/v1/analyze", analyzeBody)
	id2 := resp2.Header.Get("X-Ringsched-Trace")
	if id2 == "" || id2 == id {
		t.Fatalf("second request trace id = %q (first %q)", id2, id)
	}
	recs2 := tracesFor(t, ts.URL, id2)
	if sp := spanByName(recs2, "cache.lookup"); sp == nil || sp.Attrs["outcome"] != "hit" {
		t.Errorf("cache.lookup on repeat = %+v, want outcome hit", sp)
	}
	if sp := spanByName(recs2, "kernel"); sp != nil {
		t.Errorf("cache hit still ran a kernel span: %+v", sp)
	}
}

// TestClientTraceIDAdopted checks that a well-formed X-Ringsched-Trace
// request header is adopted as the trace ID, a malformed one is replaced
// (not an error), and every /v1/* endpoint sets the response header.
func TestClientTraceIDAdopted(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	const id = "00112233445566778899aabbccddeeff"
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/analyze", strings.NewReader(analyzeBody))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Ringsched-Trace", id)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Ringsched-Trace"); got != id {
		t.Errorf("adopted trace id = %q, want %q", got, id)
	}
	if recs := tracesFor(t, ts.URL, id); spanByName(recs, "http.analyze") == nil {
		t.Error("spans not filed under the client-supplied trace id")
	}

	req, _ = http.NewRequest(http.MethodPost, ts.URL+"/v1/analyze", strings.NewReader(analyzeBody))
	req.Header.Set("X-Ringsched-Trace", "not-hex")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("malformed trace header failed the request: %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Ringsched-Trace"); got == "not-hex" || got == "" {
		t.Errorf("malformed header echoed back instead of replaced: %q", got)
	}

	for _, ep := range []string{"/v1/sweep", "/v1/experiments"} {
		resp, _ := post(t, ts.URL+ep, `{`) // invalid body; header must still be set
		if resp.Header.Get("X-Ringsched-Trace") == "" {
			t.Errorf("%s response lacks X-Ringsched-Trace", ep)
		}
	}
}

// TestRequestLogCarriesTraceID checks the structured request log: one
// record per request, JSON, with the traceId field matching the response
// header.
func TestRequestLogCarriesTraceID(t *testing.T) {
	var buf syncBuffer
	logger, err := trace.NewLogger(&buf, "info", "json")
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Config{Logger: logger})

	resp, _ := post(t, ts.URL+"/v1/analyze", analyzeBody)
	id := resp.Header.Get("X-Ringsched-Trace")

	var rec map[string]any
	line := strings.TrimSpace(buf.String())
	if err := json.Unmarshal([]byte(line), &rec); err != nil {
		t.Fatalf("request log is not one JSON record: %q: %v", line, err)
	}
	if rec["msg"] != "request" || rec["endpoint"] != "analyze" {
		t.Errorf("unexpected log record: %v", rec)
	}
	if rec["traceId"] != id {
		t.Errorf("log traceId = %v, want %s", rec["traceId"], id)
	}
	if rec["cache"] != "miss" {
		t.Errorf("log cache = %v, want miss", rec["cache"])
	}
}

// syncBuffer guards a bytes.Buffer for concurrent slog handlers.
type syncBuffer struct {
	mu  chan struct{}
	buf bytes.Buffer
}

func (b *syncBuffer) lock() {
	if b.mu == nil {
		b.mu = make(chan struct{}, 1)
	}
	b.mu <- struct{}{}
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.lock()
	defer func() { <-b.mu }()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.lock()
	defer func() { <-b.mu }()
	return b.buf.String()
}

// TestStageHistogramsAndBuildInfo checks that the trace-derived stage
// latency histograms and the build-info gauge appear on /metrics after a
// request has flowed through.
func TestStageHistogramsAndBuildInfo(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	post(t, ts.URL+"/v1/analyze", analyzeBody)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(b)
	for _, stage := range []string{"canonicalize", "cache", "kernel", "encode"} {
		if !strings.Contains(text, `ringschedd_stage_seconds_count{stage="`+stage+`"}`) {
			t.Errorf("/metrics lacks stage histogram for %q", stage)
		}
	}
	if !strings.Contains(text, "ringschedd_build_info{goversion=") {
		t.Error("/metrics lacks ringschedd_build_info")
	}
}

// The Prometheus text-format escaping rules are pinned in
// internal/promtext's own tests since the exporter moved there.
