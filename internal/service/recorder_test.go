package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"testing"
	"time"

	"ringsched/internal/promtext"
)

type requestsBody struct {
	Total    uint64          `json:"total"`
	Retained int             `json:"retained"`
	Requests []RequestRecord `json:"requests"`
}

func getRequests(t *testing.T, base, query string) requestsBody {
	t.Helper()
	resp, err := http.Get(base + "/debug/requests" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/requests%s: code %d", query, resp.StatusCode)
	}
	var rb requestsBody
	if err := json.NewDecoder(resp.Body).Decode(&rb); err != nil {
		t.Fatal(err)
	}
	return rb
}

func TestFlightRecorderDigests(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// Miss, then hit: same body, two dispositions, two trace IDs.
	missResp, _ := post(t, ts.URL+"/v1/analyze", analyzeBody)
	hitResp, _ := post(t, ts.URL+"/v1/analyze", analyzeBody)
	missTrace := missResp.Header.Get("X-Ringsched-Trace")
	hitTrace := hitResp.Header.Get("X-Ringsched-Trace")
	if missTrace == "" || hitTrace == "" || missTrace == hitTrace {
		t.Fatalf("want two distinct trace IDs, got %q and %q", missTrace, hitTrace)
	}

	rb := getRequests(t, ts.URL, "")
	if rb.Total != 2 || rb.Retained != 2 {
		t.Fatalf("want total=2 retained=2, got total=%d retained=%d", rb.Total, rb.Retained)
	}
	byTrace := map[string]RequestRecord{}
	for _, rec := range rb.Requests {
		byTrace[rec.TraceID] = rec
	}
	miss, ok := byTrace[missTrace]
	if !ok {
		t.Fatalf("no record for miss trace %q in %+v", missTrace, rb.Requests)
	}
	hit, ok := byTrace[hitTrace]
	if !ok {
		t.Fatalf("no record for hit trace %q in %+v", hitTrace, rb.Requests)
	}
	for name, rec := range map[string]RequestRecord{"miss": miss, "hit": hit} {
		if rec.Method != http.MethodPost || rec.Endpoint != "analyze" || rec.Code != http.StatusOK {
			t.Fatalf("%s record wrong shape: %+v", name, rec)
		}
		if rec.Key == "" {
			t.Fatalf("%s record missing canonical cache key: %+v", name, rec)
		}
		if rec.LatencyMs < 0 {
			t.Fatalf("%s record has negative latency: %+v", name, rec)
		}
		if rec.Time.IsZero() {
			t.Fatalf("%s record missing time: %+v", name, rec)
		}
	}
	if miss.Cache != "miss" || hit.Cache != "hit" {
		t.Fatalf("want dispositions miss/hit, got %q/%q", miss.Cache, hit.Cache)
	}
	if miss.Key != hit.Key {
		t.Fatalf("same body must canonicalize to one key, got %q vs %q", miss.Key, hit.Key)
	}

	// Newest first: the hit happened after the miss.
	if rb.Requests[0].TraceID != hitTrace {
		t.Fatalf("want newest-first ordering, got %q first", rb.Requests[0].TraceID)
	}
}

func TestRequestsFilters(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	post(t, ts.URL+"/v1/analyze", analyzeBody)               // 200 analyze
	post(t, ts.URL+"/v1/analyze", `{"bandwidthMbps": -3}`)   // 400 analyze
	post(t, ts.URL+"/v1/sweep", smallSweepBody)              // 200 sweep

	if rb := getRequests(t, ts.URL, "?endpoint=analyze"); rb.Retained != 2 {
		t.Fatalf("endpoint=analyze: want 2, got %d", rb.Retained)
	}
	rb := getRequests(t, ts.URL, "?errors=1")
	if rb.Retained != 1 || rb.Requests[0].Code != http.StatusBadRequest {
		t.Fatalf("errors=1: want the one 400, got %+v", rb.Requests)
	}
	if rb := getRequests(t, ts.URL, "?errors=1&endpoint=sweep"); rb.Retained != 0 {
		t.Fatalf("errors on sweep: want 0, got %d", rb.Retained)
	}
	if rb := getRequests(t, ts.URL, "?limit=1"); rb.Retained != 1 {
		t.Fatalf("limit=1: want 1, got %d", rb.Retained)
	}
	// Nothing here took an hour.
	if rb := getRequests(t, ts.URL, "?slow=3600000"); rb.Retained != 0 {
		t.Fatalf("slow=3600000: want 0, got %d", rb.Retained)
	}
	// A bare ?slow uses the configured threshold (default 1s) — these
	// requests are fast, so the set is empty but the request is valid.
	if rb := getRequests(t, ts.URL, "?slow"); rb.Retained != 0 {
		t.Fatalf("bare slow: want 0, got %d", rb.Retained)
	}

	for _, bad := range []string{"?slow=frog", "?slow=-1", "?limit=frog", "?limit=-2"} {
		resp, err := http.Get(ts.URL + "/debug/requests" + bad)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("GET /debug/requests%s: want 400, got %d", bad, resp.StatusCode)
		}
	}
}

func TestSLOCountersAndExemplars(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// The 400 goes first: exemplar cells are last-write-wins, and both
	// requests are fast enough to share a latency bucket, so the trace
	// we assert on must come from the final request.
	post(t, ts.URL+"/v1/analyze", `{"bandwidthMbps": -3}`) // 400 is still "good"
	resp, _ := post(t, ts.URL+"/v1/analyze", analyzeBody)
	traceID := resp.Header.Get("X-Ringsched-Trace")

	if v := metricValue(t, ts.URL, `ringschedd_slo_requests_total\{class="good",endpoint="analyze"\}`); v != 2 {
		t.Fatalf("slo good analyze: want 2, got %v", v)
	}
	if v := metricValue(t, ts.URL, `ringschedd_request_log_total`); v != 2 {
		t.Fatalf("request_log_total: want 2, got %v", v)
	}

	// The exemplar family carries the trace ID of a recent sample.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	fams, err := promtext.Parse(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range fams {
		if f.Name != "ringschedd_request_seconds_exemplars" {
			continue
		}
		for _, sm := range f.Samples {
			if sm.Labels["endpoint"] == "analyze" && sm.Labels["traceId"] == traceID {
				found = true
			}
			if sm.Labels["le"] == "" || sm.Labels["traceId"] == "" {
				t.Fatalf("exemplar sample missing le or traceId: %+v", sm)
			}
		}
	}
	if !found {
		t.Fatalf("no exemplar carries trace %q", traceID)
	}
}

// TestMetricsConformance feeds the daemon's entire exposition through the
// strict parser and linter: every family must have HELP and a known TYPE,
// no duplicate registrations or series, histograms well-formed.
func TestMetricsConformance(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	// Touch enough surface that the optional families have samples.
	post(t, ts.URL+"/v1/analyze", analyzeBody)
	post(t, ts.URL+"/v1/analyze", analyzeBody)
	post(t, ts.URL+"/v1/sweep", smallSweepBody)
	_, b := ringJSON(t, ts.URL, http.MethodPost, "/v1/rings", ringCreateBody)
	ring := decodeJSON[RingResponse](t, b)
	ringJSON(t, ts.URL, http.MethodPost, "/v1/rings/"+ring.ID+"/streams",
		`{"stream": {"name": "x", "periodMs": 5, "lengthBits": 1024}}`)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	fams, err := promtext.Parse(resp.Body)
	if err != nil {
		t.Fatalf("metrics exposition does not parse: %v", err)
	}
	if errs := promtext.Lint(fams); len(errs) > 0 {
		for _, e := range errs {
			t.Errorf("lint: %v", e)
		}
		t.Fatalf("%d lint violations in /metrics", len(errs))
	}
	for _, want := range []string{
		"ringschedd_requests_total", "ringschedd_request_seconds",
		"ringschedd_slo_requests_total", "ringschedd_request_seconds_exemplars",
		"ringschedd_request_log_total", "ringschedd_build_info", "ringschedd_rings",
	} {
		found := false
		for _, f := range fams {
			if f.Name == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("family %q missing from /metrics", want)
		}
	}
}

func TestRingHistoryEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	_, b := ringJSON(t, ts.URL, http.MethodPost, "/v1/rings", ringCreateBody)
	ring := decodeJSON[RingResponse](t, b)
	resp, b := ringJSON(t, ts.URL, http.MethodPost, "/v1/rings/"+ring.ID+"/streams",
		`{"stream": {"name": "audio", "periodMs": 20, "lengthBits": 8192}}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("add stream: %d %s", resp.StatusCode, b)
	}

	// JSON view: create record then add record, version chain intact.
	resp, b = ringJSON(t, ts.URL, http.MethodGet, "/v1/rings/"+ring.ID+"/history", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET history: %d %s", resp.StatusCode, b)
	}
	var h struct {
		RingID  string `json:"ringId"`
		Version uint64 `json:"version"`
		Records []struct {
			Seq           uint64 `json:"seq"`
			Op            string `json:"op"`
			VersionBefore uint64 `json:"versionBefore"`
			Version       uint64 `json:"version"`
			TraceID       string `json:"traceId"`
			Client        string `json:"client"`
			Time          time.Time `json:"time"`
		} `json:"records"`
	}
	if err := json.Unmarshal(b, &h); err != nil {
		t.Fatalf("history JSON: %v\n%s", err, b)
	}
	if h.RingID != ring.ID || h.Version != 2 || len(h.Records) != 2 {
		t.Fatalf("want ring %s at v2 with 2 records, got %+v", ring.ID, h)
	}
	if h.Records[0].Op != "create" || h.Records[1].Op != "add" {
		t.Fatalf("want ops create,add got %q,%q", h.Records[0].Op, h.Records[1].Op)
	}
	if h.Records[1].VersionBefore != 1 || h.Records[1].Version != 2 {
		t.Fatalf("version chain broken: %+v", h.Records[1])
	}
	for i, rec := range h.Records {
		if rec.TraceID == "" || rec.Client == "" || rec.Time.IsZero() {
			t.Fatalf("record %d missing meta: %+v", i, rec)
		}
	}

	// Script view: the ringadmit/WAL serialization.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/rings/"+ring.ID+"/history?format=script", nil)
	sresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	if ct := sresp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("script Content-Type: %q", ct)
	}
	var sb strings.Builder
	if _, err := fmt.Fprint(&sb, readAll(t, sresp)); err != nil {
		t.Fatal(err)
	}
	script := sb.String()
	for _, want := range []string{"# ring " + ring.ID + " history", "# bandwidth-mbps: 16", "add "} {
		if !strings.Contains(script, want) {
			t.Fatalf("script missing %q:\n%s", want, script)
		}
	}

	if resp, _ := ringJSON(t, ts.URL, http.MethodGet, "/v1/rings/"+ring.ID+"/history?format=xml", ""); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad format: want 400, got %d", resp.StatusCode)
	}
	if resp, _ := ringJSON(t, ts.URL, http.MethodGet, "/v1/rings/nosuch/history", ""); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing ring history: want 404, got %d", resp.StatusCode)
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var sb strings.Builder
	buf := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return sb.String()
}

// BenchmarkFlightRecorderRecord holds the record path to its budget:
// at most one allocation per stored digest.
func BenchmarkFlightRecorderRecord(b *testing.B) {
	r := newRecorder(4096)
	rec := RequestRecord{
		Time: time.Now(), Method: "POST", Endpoint: "analyze",
		Key: "analyze|v1|16|2|...", Code: 200, Cache: "hit",
		LatencyMs: 0.42, TraceID: "f0a1b2c3d4e5f607",
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Record(rec)
	}
	if allocs := testing.AllocsPerRun(100, func() { r.Record(rec) }); allocs > 1 {
		b.Fatalf("Record allocates %v times per op; budget is 1", allocs)
	}
}
