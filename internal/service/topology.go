package service

import (
	"context"
	"fmt"
	"math"
	"strings"

	"ringsched/internal/core"
	"ringsched/internal/topology"
	"ringsched/internal/trace"
)

// FlowSpec is the wire form of one end-to-end flow, layered on top of the
// flows already present in the topology spec. Periods are in milliseconds
// to match StreamSpec; an empty Dst means the flow stays on Src's ring.
type FlowSpec struct {
	Name       string  `json:"name,omitempty"`
	Src        string  `json:"src"`
	Dst        string  `json:"dst,omitempty"`
	PeriodMs   float64 `json:"periodMs"`
	LengthBits float64 `json:"lengthBits"`
}

// TopologyRequest asks for per-ring verdicts and end-to-end delay bounds
// over a bridged ring-of-rings topology.
type TopologyRequest struct {
	// Topology is the compact spec grammar of internal/topology:
	// "ring:name=a,proto=8025mod,bw=16e6 + ring:name=b + bridge:a=a,b=b,
	// latency=100us + flow:name=f,src=a,dst=b,period=100ms,bits=4096" —
	// clauses joined by "+".
	Topology string `json:"topology"`
	// Flows optionally adds structured flows beyond the spec's own.
	Flows []FlowSpec `json:"flows,omitempty"`
	// Detail includes per-stream verdicts inside each ring verdict.
	Detail bool `json:"detail,omitempty"`
}

// Canonicalize parses and validates the spec, merges the structured flows,
// and re-renders the canonical spec string so equivalent requests share a
// cache key. All topology errors surface as ErrBadRequest.
func (r TopologyRequest) Canonicalize() (TopologyRequest, error) {
	if strings.TrimSpace(r.Topology) == "" {
		return TopologyRequest{}, fmt.Errorf("%w: topology spec is required", ErrBadRequest)
	}
	topo, err := topology.Parse(r.Topology)
	if err != nil {
		return TopologyRequest{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	for _, f := range r.Flows {
		dst := f.Dst
		if dst == "" {
			dst = f.Src
		}
		topo.Flows = append(topo.Flows, topology.Flow{
			Name:       f.Name,
			Src:        f.Src,
			Dst:        dst,
			Period:     f.PeriodMs / 1e3,
			LengthBits: f.LengthBits,
		})
	}
	topo = topo.Canonicalize()
	if err := topo.Validate(); err != nil {
		return TopologyRequest{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return TopologyRequest{Topology: topo.Spec(), Detail: r.Detail}, nil
}

// CacheKey returns the canonical hash of the request. Call on the result
// of Canonicalize.
func (r TopologyRequest) CacheKey() string {
	h := newHasher("topology/analyze")
	h.str("spec", r.Topology)
	h.bool("detail", r.Detail)
	return h.sum()
}

// TopologyRingVerdict is one ring's slice of the topology response. The
// embedded Verdict carries exactly the fields /v1/analyze would report for
// the ring's effective message set (local plus transit flows).
type TopologyRingVerdict struct {
	Name        string   `json:"name"`
	Protocol    string   `json:"protocol"`
	Streams     int      `json:"streams"`
	Schedulable bool     `json:"schedulable"`
	Utilization float64  `json:"utilization"`
	Verdict     *Verdict `json:"verdict,omitempty"`
}

// TopologyBridgeVerdict is the network-calculus verdict for one loaded
// bridge direction. BurstBits and DelayBound are omitted when the
// direction is unstable (they would be infinite); Stable carries the
// information instead.
type TopologyBridgeVerdict struct {
	From           string  `json:"from"`
	To             string  `json:"to"`
	RateBPS        float64 `json:"rateBPS"`
	LatencyMs      float64 `json:"latencyMs"`
	Flows          int     `json:"flows"`
	ArrivalRateBPS float64 `json:"arrivalRateBPS"`
	Stable         bool    `json:"stable"`
	BurstBits      float64 `json:"burstBits,omitempty"`
	DelayBoundMs   float64 `json:"delayBoundMs,omitempty"`
	BufferBits     float64 `json:"bufferBits,omitempty"`
	BufferOK       bool    `json:"bufferOK"`
}

// TopologyFlowVerdict is one flow's end-to-end verdict. Delay fields are
// in milliseconds and omitted when the bound is infinite; Bounded carries
// the information instead.
type TopologyFlowVerdict struct {
	Name           string    `json:"name"`
	Src            string    `json:"src"`
	Dst            string    `json:"dst"`
	PeriodMs       float64   `json:"periodMs"`
	LengthBits     float64   `json:"lengthBits"`
	Path           []string  `json:"path"`
	RingDelaysMs   []float64 `json:"ringDelaysMs,omitempty"`
	BridgeDelaysMs []float64 `json:"bridgeDelaysMs,omitempty"`
	BoundMs        float64   `json:"boundMs,omitempty"`
	Bounded        bool      `json:"bounded"`
	Schedulable    bool      `json:"schedulable"`
}

// TopologyResponse is the answer to /v1/topology/analyze.
type TopologyResponse struct {
	// CacheKey is the canonical request hash the response was cached under.
	CacheKey string `json:"cacheKey"`
	// Topology is the canonical spec actually analyzed.
	Topology string `json:"topology"`
	// Schedulable reports every ring schedulable and every flow bounded
	// within its period; Bounded reports every flow's bound finite.
	Schedulable bool                    `json:"schedulable"`
	Bounded     bool                    `json:"bounded"`
	Rings       []TopologyRingVerdict   `json:"rings"`
	Bridges     []TopologyBridgeVerdict `json:"bridges,omitempty"`
	Flows       []TopologyFlowVerdict   `json:"flows"`
}

// protocolSlug maps a topology protocol to the service wire slug.
func protocolSlug(p topology.Protocol) string {
	switch p {
	case topology.Modified8025:
		return ProtocolModifiedPDP
	case topology.Standard8025:
		return ProtocolStandardPDP
	default:
		return ProtocolTTP
	}
}

// sanitizeVerdict zeroes non-finite per-stream fields so the verdict
// always marshals — an unschedulable TTP stream has an infinite
// allocation, and JSON has no encoding for it. The per-stream Schedulable
// flag already carries the outcome.
func sanitizeVerdict(v *Verdict) {
	if v == nil {
		return
	}
	for i := range v.Streams {
		s := &v.Streams[i]
		for _, f := range []*float64{
			&s.AugmentedLength, &s.ResponseTime, &s.Allocation, &s.WorstCaseResponse,
		} {
			if badFloat(*f) {
				*f = 0
			}
		}
	}
}

// AnalyzeTopology answers one topology request: canonicalize, analyze,
// map to the wire response. CLI frontends use it to serve byte-identical
// JSON to the daemon's.
func AnalyzeTopology(ctx context.Context, req TopologyRequest) (TopologyResponse, error) {
	canon, err := req.Canonicalize()
	if err != nil {
		return TopologyResponse{}, err
	}
	return topologyCanonical(ctx, canon, canon.CacheKey())
}

// topologyCanonical computes the response for an already-canonical
// request.
func topologyCanonical(ctx context.Context, req TopologyRequest, key string) (TopologyResponse, error) {
	topo, err := topology.Parse(req.Topology)
	if err != nil {
		return TopologyResponse{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	_, span := trace.Start(ctx, "topology.compose")
	rep, err := core.AnalyzeTopology(topo)
	if err != nil {
		span.End()
		return TopologyResponse{}, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	span.SetAttr("rings", len(rep.Rings))
	span.SetAttr("flows", len(rep.Flows))
	span.SetAttr("schedulable", rep.Schedulable)
	span.End()

	resp := TopologyResponse{
		CacheKey:    key,
		Topology:    req.Topology,
		Schedulable: rep.Schedulable,
		Bounded:     rep.Bounded,
	}
	for _, rv := range rep.Rings {
		out := TopologyRingVerdict{
			Name:        rv.Name,
			Protocol:    protocolSlug(rv.Protocol),
			Streams:     len(rv.Set),
			Schedulable: rv.Schedulable,
			Utilization: canonFloat(rv.Utilization),
		}
		switch {
		case rv.PDP != nil:
			v := pdpVerdict(out.Protocol, *rv.PDP, req.Detail)
			out.Verdict = &v
		case rv.TTP != nil:
			v := ttpVerdict(*rv.TTP, req.Detail)
			out.Verdict = &v
		}
		sanitizeVerdict(out.Verdict)
		resp.Rings = append(resp.Rings, out)
	}
	for _, b := range rep.Bridges {
		out := TopologyBridgeVerdict{
			From:           b.From,
			To:             b.To,
			RateBPS:        b.RateBPS,
			LatencyMs:      b.Latency * 1e3,
			Flows:          b.Flows,
			ArrivalRateBPS: canonFloat(b.ArrivalRateBPS),
			Stable:         b.Stable,
			BufferBits:     b.BufferBits,
			BufferOK:       b.BufferOK,
		}
		if b.Stable && !math.IsInf(b.BurstBits, 1) {
			out.BurstBits = canonFloat(b.BurstBits)
			out.DelayBoundMs = canonFloat(b.DelayBound * 1e3)
		}
		resp.Bridges = append(resp.Bridges, out)
	}
	for _, f := range rep.Flows {
		out := TopologyFlowVerdict{
			Name:        f.Flow.Name,
			Src:         f.Flow.Src,
			Dst:         f.Flow.Dst,
			PeriodMs:    f.Flow.Period * 1e3,
			LengthBits:  f.Flow.LengthBits,
			Path:        f.Path,
			Bounded:     f.Bounded,
			Schedulable: f.Schedulable,
		}
		if f.Bounded {
			out.BoundMs = canonFloat(f.Bound * 1e3)
			for _, d := range f.RingDelays {
				out.RingDelaysMs = append(out.RingDelaysMs, canonFloat(d*1e3))
			}
			for _, d := range f.BridgeDelays {
				out.BridgeDelaysMs = append(out.BridgeDelaysMs, canonFloat(d*1e3))
			}
		}
		resp.Flows = append(resp.Flows, out)
	}
	return resp, nil
}
