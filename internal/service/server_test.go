package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

const analyzeBody = `{
  "bandwidthMbps": 100,
  "streams": [
    {"name": "gyro", "periodMs": 10, "lengthBits": 4096},
    {"name": "telemetry", "periodMs": 50, "lengthBits": 65536}
  ]
}`

// smallSweepBody finishes in milliseconds; used where the result matters.
const smallSweepBody = `{"bandwidthsMbps": [10, 100], "streams": 5, "samples": 4, "seed": 7}`

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
	})
	return s, ts
}

func post(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// metricValue scrapes /metrics and returns the first sample whose name
// (with any label set) matches pattern, or 0 if absent.
func metricValue(t *testing.T, base, pattern string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	re := regexp.MustCompile(pattern)
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "#") || !re.MatchString(line) {
			continue
		}
		fields := strings.Fields(line)
		v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			t.Fatalf("parse metric line %q: %v", line, err)
		}
		return v
	}
	return 0
}

func TestRepeatedAnalyzeIsBitIdenticalCacheHit(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	first, body1 := post(t, ts.URL+"/v1/analyze", analyzeBody)
	if first.StatusCode != http.StatusOK {
		t.Fatalf("first analyze: %d %s", first.StatusCode, body1)
	}
	if xc := first.Header.Get("X-Cache"); xc != "miss" {
		t.Errorf("first X-Cache = %q, want miss", xc)
	}

	// Same question, different formatting and stream order: still a hit.
	permuted := `{"bandwidthMbps":1e2,"streams":[` +
		`{"name":"telemetry","periodMs":50.0,"lengthBits":65536},` +
		`{"name":"gyro","periodMs":10,"lengthBits":4.096e3}]}`
	second, body2 := post(t, ts.URL+"/v1/analyze", permuted)
	if second.StatusCode != http.StatusOK {
		t.Fatalf("second analyze: %d %s", second.StatusCode, body2)
	}
	if xc := second.Header.Get("X-Cache"); xc != "hit" {
		t.Errorf("second X-Cache = %q, want hit", xc)
	}
	if !bytes.Equal(body1, body2) {
		t.Errorf("cache hit body differs from original:\n%s\nvs\n%s", body1, body2)
	}

	if hits := metricValue(t, ts.URL, `^ringschedd_cache_hits_total `); hits < 1 {
		t.Errorf("ringschedd_cache_hits_total = %g, want >= 1", hits)
	}
	if n := metricValue(t, ts.URL, `^ringschedd_computations_total\{endpoint="analyze"\}`); n != 1 {
		t.Errorf("computations_total{analyze} = %g, want 1", n)
	}

	var parsed AnalyzeResponse
	if err := json.Unmarshal(body1, &parsed); err != nil {
		t.Fatalf("response not an AnalyzeResponse: %v", err)
	}
	if parsed.CacheKey == "" || len(parsed.Verdicts) != 3 {
		t.Errorf("unexpected response: %+v", parsed)
	}
}

func TestConcurrentIdenticalRequestsComputeOnce(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4})

	const callers = 12
	var wg sync.WaitGroup
	bodies := make([][]byte, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := post(t, ts.URL+"/v1/analyze", analyzeBody)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("caller %d: %d %s", i, resp.StatusCode, body)
			}
			bodies[i] = body
		}(i)
	}
	wg.Wait()

	// Whether a given caller hit the cache or coalesced onto the flight
	// depends on timing; the invariant is exactly one computation and
	// identical bytes everywhere.
	if n := metricValue(t, ts.URL, `^ringschedd_computations_total\{endpoint="analyze"\}`); n != 1 {
		t.Errorf("computations_total{analyze} = %g, want 1 for %d concurrent callers", n, callers)
	}
	for i := 1; i < callers; i++ {
		if !bytes.Equal(bodies[0], bodies[i]) {
			t.Errorf("caller %d body differs from caller 0", i)
		}
	}
}

func TestSweepEndpointAndCaching(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	first, body1 := post(t, ts.URL+"/v1/sweep", smallSweepBody)
	if first.StatusCode != http.StatusOK {
		t.Fatalf("sweep: %d %s", first.StatusCode, body1)
	}
	var parsed SweepResponse
	if err := json.Unmarshal(body1, &parsed); err != nil {
		t.Fatal(err)
	}
	if len(parsed.Series) != 3 || len(parsed.Series[0].Points) != 2 {
		t.Fatalf("unexpected sweep shape: %d series", len(parsed.Series))
	}
	if parsed.Request.Samples != 4 || parsed.Request.MeanPeriodMs != 100 {
		t.Errorf("echoed request missing resolved defaults: %+v", parsed.Request)
	}

	second, body2 := post(t, ts.URL+"/v1/sweep", smallSweepBody)
	if xc := second.Header.Get("X-Cache"); xc != "hit" {
		t.Errorf("repeat sweep X-Cache = %q, want hit", xc)
	}
	if !bytes.Equal(body1, body2) {
		t.Error("repeat sweep body differs")
	}
}

func TestSSESweepStreamsProgressAndResult(t *testing.T) {
	_, ts := newTestServer(t, Config{SampleEvery: 1})

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/sweep", strings.NewReader(smallSweepBody))
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	events := map[string]int{}
	var resultData string
	for _, frame := range strings.Split(string(raw), "\n\n") {
		var kind string
		for _, line := range strings.Split(frame, "\n") {
			if k, ok := strings.CutPrefix(line, "event: "); ok {
				kind = k
			}
			if d, ok := strings.CutPrefix(line, "data: "); ok && kind == "result" {
				resultData = d
			}
		}
		if kind != "" {
			events[kind]++
		}
	}
	if events["samples"] == 0 || events["point"] == 0 {
		t.Errorf("missing progress frames: %v", events)
	}
	if events["result"] != 1 {
		t.Fatalf("result frames = %d, want 1 (%v)", events["result"], events)
	}
	var parsed SweepResponse
	if err := json.Unmarshal([]byte(resultData), &parsed); err != nil {
		t.Fatalf("result frame not a SweepResponse: %v", err)
	}

	// The streamed computation fed the cache: a plain repeat is a hit.
	repeat, _ := post(t, ts.URL+"/v1/sweep", smallSweepBody)
	if xc := repeat.Header.Get("X-Cache"); xc != "hit" {
		t.Errorf("post-stream sweep X-Cache = %q, want hit", xc)
	}
}

func TestCancellingInFlightSweepStopsWorkersPromptly(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2, SampleEvery: 1})

	// A sweep big enough to run for many seconds if not cancelled.
	big := `{"streams": 60, "samples": 5000, "seed": 3}`
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/v1/sweep?stream=sse", strings.NewReader(big))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	// Wait until the Monte Carlo pool is actually computing, then hang up.
	buf := make([]byte, 256)
	if _, err := resp.Body.Read(buf); err != nil {
		t.Fatalf("no progress frame arrived: %v", err)
	}
	if _, running := s.flight.Depth(); running == 0 {
		t.Fatal("progress frame arrived but nothing is running")
	}
	cancel()

	deadline := time.Now().Add(5 * time.Second)
	for {
		_, running := s.flight.Depth()
		if running == 0 && s.InFlight() == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("workers still running %v after client cancel", 5*time.Second)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if n := metricValue(t, ts.URL, `^ringschedd_canceled_total\{endpoint="sweep"\}`); n != 1 {
		t.Errorf("canceled_total{sweep} = %g, want 1", n)
	}
	if n := metricValue(t, ts.URL, `^ringschedd_sse_streams_total\{endpoint="sweep"\}`); n != 1 {
		t.Errorf("sse_streams_total{sweep} = %g, want 1", n)
	}
}

func TestHealthzAndDraining(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}

	s.BeginDrain()
	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining healthz = %d, want 503", resp.StatusCode)
	}
	apiResp, body := post(t, ts.URL+"/v1/analyze", analyzeBody)
	if apiResp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining analyze = %d (%s), want 503", apiResp.StatusCode, body)
	}
}

func TestExperimentsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	resp, err := http.Get(ts.URL + "/v1/experiments")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("experiments list = %d %s", resp.StatusCode, body)
	}
	var list map[string][]ExperimentInfo
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list["experiments"]) == 0 {
		t.Fatal("no experiments listed")
	}

	bad, badBody := post(t, ts.URL+"/v1/experiments", `{"ids": ["NO-SUCH-EXPERIMENT"]}`)
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown experiment = %d, want 400", bad.StatusCode)
	}
	if !strings.Contains(string(badBody), list["experiments"][0].ID) {
		t.Errorf("unknown-experiment error should list valid IDs: %s", badBody)
	}
}

func TestBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	cases := []struct {
		name, method, path, body string
		want                     int
	}{
		{"analyze GET", http.MethodGet, "/v1/analyze", "", http.StatusMethodNotAllowed},
		{"sweep GET", http.MethodGet, "/v1/sweep", "", http.StatusMethodNotAllowed},
		{"experiments PUT", http.MethodPut, "/v1/experiments", "", http.StatusMethodNotAllowed},
		{"analyze bad json", http.MethodPost, "/v1/analyze", "{", http.StatusBadRequest},
		{"analyze unknown field", http.MethodPost, "/v1/analyze", `{"bogus": 1}`, http.StatusBadRequest},
		{"analyze no streams", http.MethodPost, "/v1/analyze", `{"bandwidthMbps": 100, "streams": []}`, http.StatusBadRequest},
		{"analyze bad protocol", http.MethodPost, "/v1/analyze",
			`{"bandwidthMbps": 100, "protocols": ["token-bus"], "streams": [{"periodMs": 10, "lengthBits": 64}]}`,
			http.StatusBadRequest},
		{"analyze bad scenario", http.MethodPost, "/v1/analyze",
			`{"bandwidthMbps": 100, "scenario": "bogus", "streams": [{"periodMs": 10, "lengthBits": 64}]}`,
			http.StatusBadRequest},
		{"sweep bad grid", http.MethodPost, "/v1/sweep", `{"bandwidthsMbps": [-5]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		req, _ := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d (%s), want %d", tc.name, resp.StatusCode, body, tc.want)
		}
		var e map[string]string
		if err := json.Unmarshal(body, &e); err != nil || e["error"] == "" {
			t.Errorf("%s: error body not JSON: %s", tc.name, body)
		}
	}
}

func TestFaultScenarioAnalyzeReportsDegradedVerdicts(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	body := `{"bandwidthMbps": 100, "scenario": "lossy-token", "streams": [{"periodMs": 10, "lengthBits": 4096}]}`
	resp, raw := post(t, ts.URL+"/v1/analyze", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("analyze: %d %s", resp.StatusCode, raw)
	}
	var parsed AnalyzeResponse
	if err := json.Unmarshal(raw, &parsed); err != nil {
		t.Fatal(err)
	}
	if parsed.FaultModel == "" {
		t.Error("response should echo the canonical fault spec")
	}
	for _, v := range parsed.Verdicts {
		if v.Degraded == nil {
			t.Errorf("%s: no degraded verdict", v.Protocol)
			continue
		}
		if v.Degraded.Availability <= 0 || v.Degraded.Availability > 1 {
			t.Errorf("%s: availability %g out of range", v.Protocol, v.Degraded.Availability)
		}
	}
	if n := metricValue(t, ts.URL, `^ringschedd_verdicts_total\{protocol="fddi"`); n != 1 {
		t.Errorf("verdicts_total{fddi} = %g, want 1", n)
	}
}

func TestMetricsEndpointShape(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	post(t, ts.URL+"/v1/analyze", analyzeBody)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(raw)
	for _, want := range []string{
		"# TYPE ringschedd_requests_total counter",
		"# TYPE ringschedd_request_seconds histogram",
		"# TYPE ringschedd_cache_hits_total counter",
		"# TYPE ringschedd_pool_running gauge",
		`ringschedd_requests_total{code="200",endpoint="analyze"} 1`,
		"ringschedd_request_seconds_bucket{endpoint=\"analyze\",le=\"+Inf\"} 1",
		"ringschedd_request_seconds_count{endpoint=\"analyze\"} 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q", want)
		}
	}
}

func TestServerCloseReapsSSEStreams(t *testing.T) {
	s := New(Config{Workers: 2, SampleEvery: 1})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	big := `{"streams": 60, "samples": 5000, "seed": 5}`
	resp, err := http.Post(ts.URL+"/v1/sweep?stream=sse", "application/json", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 256)
	if _, err := resp.Body.Read(buf); err != nil {
		t.Fatalf("no progress frame: %v", err)
	}

	s.Close() // server shutdown must stop the stream's computation
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, running := s.flight.Depth(); running == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("Close did not stop streaming computation")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The stream terminates with an error frame.
	rest, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(buf)+string(rest), "event: error") {
		t.Log("stream ended without an explicit error frame (acceptable on write race)")
	}
}

func TestOversizedResultsStillServe(t *testing.T) {
	// A 1 KiB budget (64-byte shards) rejects every body; the server must
	// still serve correct responses, just without cache hits.
	_, ts := newTestServer(t, Config{CacheBytes: 1024})
	first, body1 := post(t, ts.URL+"/v1/analyze", analyzeBody)
	if first.StatusCode != http.StatusOK {
		t.Fatalf("analyze: %d", first.StatusCode)
	}
	second, body2 := post(t, ts.URL+"/v1/analyze", analyzeBody)
	if xc := second.Header.Get("X-Cache"); xc == "hit" {
		t.Error("body larger than the shard budget must not be cached")
	}
	if !bytes.Equal(body1, body2) {
		t.Error("recomputed body differs — responses are not deterministic")
	}
	if n := metricValue(t, ts.URL, `^ringschedd_cache_bytes `); n != 0 {
		t.Errorf("cache_bytes = %g, want 0", n)
	}
}
