package breakdown

import (
	"errors"
	"math"
	"testing"

	"ringsched/internal/core"
	"ringsched/internal/message"
)

func testEstimator(samples int) Estimator {
	return Estimator{
		Generator: message.Generator{Streams: 10, MeanPeriod: 100e-3, PeriodRatio: 10},
		Samples:   samples,
		Seed:      7,
	}
}

func TestEstimateValidation(t *testing.T) {
	e := testEstimator(0)
	if _, err := e.Estimate(capAnalyzer{Cap: 1e6}, 1e6); !errors.Is(err, ErrNoSamples) {
		t.Errorf("zero samples: %v, want ErrNoSamples", err)
	}
	e = Estimator{Samples: 5}
	if _, err := e.Estimate(capAnalyzer{Cap: 1e6}, 1e6); err == nil {
		t.Error("invalid generator accepted")
	}
}

func TestEstimateAgainstKnownAnalyzer(t *testing.T) {
	// Under capAnalyzer every saturated set has total rate exactly Cap,
	// so every sample's breakdown utilization is Cap/bw.
	e := testEstimator(40)
	est, err := e.Estimate(capAnalyzer{Cap: 5e5}, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(est.Mean-0.5) > 1e-4 {
		t.Errorf("Mean = %v, want 0.5", est.Mean)
	}
	if est.StdDev > 1e-4 {
		t.Errorf("StdDev = %v, want ≈0 (deterministic saturation)", est.StdDev)
	}
	if est.Samples != 40 || est.Infeasible != 0 {
		t.Errorf("Samples=%d Infeasible=%d, want 40/0", est.Samples, est.Infeasible)
	}
	// Deterministic saturation: all percentiles collapse onto the mean.
	if math.Abs(est.P10-0.5) > 1e-4 || math.Abs(est.Median-0.5) > 1e-4 || math.Abs(est.P90-0.5) > 1e-4 {
		t.Errorf("percentiles = %v/%v/%v, want 0.5", est.P10, est.Median, est.P90)
	}
	if est.String() == "" {
		t.Error("String empty")
	}
}

func TestEstimateDeterministicAcrossWorkers(t *testing.T) {
	base := testEstimator(30)
	serial := base
	serial.Workers = 1
	parallel := base
	parallel.Workers = 8
	a := core.NewTTP(100e6)
	a.Net = a.Net.WithStations(10)
	got1, err := serial.Estimate(a, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := parallel.Estimate(a, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	if got1.Mean != got2.Mean || got1.StdDev != got2.StdDev {
		t.Errorf("parallel (%v) != serial (%v)", got2, got1)
	}
}

func TestEstimateSeedChangesResults(t *testing.T) {
	a := core.NewTTP(100e6)
	a.Net = a.Net.WithStations(10)
	e1 := testEstimator(20)
	e2 := testEstimator(20)
	e2.Seed = 8
	got1, err := e1.Estimate(a, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := e2.Estimate(a, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	if got1.Mean == got2.Mean {
		t.Error("different seeds produced identical estimates")
	}
}

func TestEstimatePropagatesErrors(t *testing.T) {
	e := testEstimator(5)
	wantErr := errors.New("kaput")
	if _, err := e.Estimate(errAnalyzer{err: wantErr}, 1e6); !errors.Is(err, wantErr) {
		t.Errorf("err = %v, want kaput", err)
	}
}

func TestEstimateCountsInfeasible(t *testing.T) {
	e := testEstimator(10)
	est, err := e.Estimate(capAnalyzer{Cap: -1}, 1e6)
	if err != nil {
		t.Fatal(err)
	}
	if est.Infeasible != 10 {
		t.Errorf("Infeasible = %d, want 10", est.Infeasible)
	}
	if est.Mean != 0 {
		t.Errorf("Mean = %v, want 0", est.Mean)
	}
}

func TestEstimatePercentileOrdering(t *testing.T) {
	a := core.NewTTP(100e6)
	a.Net = a.Net.WithStations(10)
	est, err := testEstimator(30).Estimate(a, 100e6)
	if err != nil {
		t.Fatal(err)
	}
	if !(est.Min <= est.P10 && est.P10 <= est.Median && est.Median <= est.P90 && est.P90 <= est.Max) {
		t.Errorf("percentile ordering violated: min=%v p10=%v med=%v p90=%v max=%v",
			est.Min, est.P10, est.Median, est.P90, est.Max)
	}
}

func TestSweepShapes(t *testing.T) {
	e := testEstimator(10)
	bws := []float64{4e6, 100e6}
	s, err := e.Sweep("toy", func(bw float64) core.Analyzer {
		return capAnalyzer{Cap: bw / 2}
	}, bws)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "toy" || len(s.Points) != 2 {
		t.Fatalf("series = %+v", s)
	}
	for i, p := range s.Points {
		if p.BandwidthBPS != bws[i] {
			t.Errorf("point %d bandwidth %v, want %v", i, p.BandwidthBPS, bws[i])
		}
		if math.Abs(p.Estimate.Mean-0.5) > 1e-4 {
			t.Errorf("point %d mean %v, want 0.5", i, p.Estimate.Mean)
		}
	}
	if table, err := FormatTable([]Series{s}); err != nil || table == "" {
		t.Errorf("FormatTable = %q, %v", table, err)
	}
	if table, err := FormatTable(nil); err != nil || table != "" {
		t.Errorf("FormatTable(nil) = %q, %v; want empty", table, err)
	}
}

func TestFormatDistributionTable(t *testing.T) {
	e := testEstimator(10)
	s, err := e.Sweep("toy", func(bw float64) core.Analyzer {
		return capAnalyzer{Cap: bw / 2}
	}, []float64{4e6})
	if err != nil {
		t.Fatal(err)
	}
	got, err := FormatDistributionTable([]Series{s})
	if err != nil {
		t.Fatal(err)
	}
	if got == "" {
		t.Fatal("empty distribution table")
	}
	if table, err := FormatDistributionTable(nil); err != nil || table != "" {
		t.Errorf("FormatDistributionTable(nil) = %q, %v; want empty", table, err)
	}
}

func TestPaperBandwidths(t *testing.T) {
	got := PaperBandwidths(3)
	if len(got) != 10 {
		t.Fatalf("len = %d, want 10 (3 decades × 3 + 1)", len(got))
	}
	if math.Abs(got[0]-1e6) > 1 || math.Abs(got[len(got)-1]-1e9) > 1e3 {
		t.Errorf("endpoints = %v .. %v, want 1e6 .. 1e9", got[0], got[len(got)-1])
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatal("grid not increasing")
		}
	}
	if def := PaperBandwidths(0); len(def) != 10 {
		t.Errorf("default grid len = %d, want 10", len(def))
	}
}

func TestHarmonicSetsReachFullUtilizationUnderIdealRM(t *testing.T) {
	// The classic result: rate-monotonic scheduling of harmonic task sets
	// achieves 100 % utilization. The Monte Carlo engine must find
	// breakdown utilization ≈ 1 for harmonic workloads.
	e := Estimator{
		Generator: message.Generator{
			Streams:     20,
			MeanPeriod:  100e-3,
			PeriodRatio: 8,
			Periods:     message.PeriodsHarmonic,
		},
		Samples: 25,
		Seed:    11,
	}
	est, err := e.Estimate(core.IdealRM{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if est.Mean < 0.999 {
		t.Errorf("harmonic ideal-RM breakdown = %v, want ≈1.0", est.Mean)
	}
}

func TestPaperEstimatorDefaults(t *testing.T) {
	e := PaperEstimator(50, 3)
	if e.Samples != 50 || e.Seed != 3 {
		t.Error("PaperEstimator did not set samples/seed")
	}
	if e.Generator.Streams != 100 || e.Generator.MeanPeriod != 100e-3 || e.Generator.PeriodRatio != 10 {
		t.Errorf("PaperEstimator generator = %+v", e.Generator)
	}
}
