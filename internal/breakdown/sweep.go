package breakdown

import (
	"fmt"
	"math"
	"strings"

	"ringsched/internal/core"
)

// AnalyzerFactory builds an analyzer for one plant bandwidth; bandwidth
// sweeps (Figure 1) hold everything else constant.
type AnalyzerFactory func(bandwidthBPS float64) core.Analyzer

// Point is one (bandwidth, estimate) pair of a sweep.
type Point struct {
	BandwidthBPS float64
	Estimate     Estimate
}

// Series is a named breakdown-utilization curve over bandwidth — one line
// of Figure 1.
type Series struct {
	Name   string
	Points []Point
}

// Sweep estimates the average breakdown utilization at each bandwidth.
func (e Estimator) Sweep(name string, factory AnalyzerFactory, bandwidthsBPS []float64) (Series, error) {
	s := Series{Name: name, Points: make([]Point, 0, len(bandwidthsBPS))}
	for _, bw := range bandwidthsBPS {
		est, err := e.Estimate(factory(bw), bw)
		if err != nil {
			return Series{}, fmt.Errorf("sweep %s at %.3g bps: %w", name, bw, err)
		}
		s.Points = append(s.Points, Point{BandwidthBPS: bw, Estimate: est})
	}
	return s, nil
}

// PaperBandwidths returns the Figure 1 sweep grid: 1 Mbps to 1 Gbps,
// log-spaced with pointsPerDecade samples per decade (endpoints included).
func PaperBandwidths(pointsPerDecade int) []float64 {
	if pointsPerDecade <= 0 {
		pointsPerDecade = 3
	}
	var out []float64
	const decades = 3 // 1e6 .. 1e9
	total := decades * pointsPerDecade
	for i := 0; i <= total; i++ {
		out = append(out, math.Pow(10, 6+3*float64(i)/float64(total)))
	}
	return out
}

// FormatDistributionTable renders, for each series, the spread of
// per-set breakdown utilizations (P10 / median / P90) alongside the mean —
// the planners' view: 90 % of workloads break down above the P10 column.
func FormatDistributionTable(series []Series) string {
	if len(series) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%12s", "BW (Mbps)")
	for _, s := range series {
		fmt.Fprintf(&b, " %32s", s.Name+" mean/p10/p50/p90")
	}
	b.WriteByte('\n')
	for i := range series[0].Points {
		fmt.Fprintf(&b, "%12.3f", series[0].Points[i].BandwidthBPS/1e6)
		for _, s := range series {
			e := s.Points[i].Estimate
			fmt.Fprintf(&b, "    %7.4f %7.4f %7.4f %7.4f", e.Mean, e.P10, e.Median, e.P90)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatTable renders series as a fixed-width table: one row per bandwidth,
// one column per series — the tabular form of Figure 1.
func FormatTable(series []Series) string {
	if len(series) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%12s", "BW (Mbps)")
	for _, s := range series {
		fmt.Fprintf(&b, " %22s", s.Name)
	}
	b.WriteByte('\n')
	for i := range series[0].Points {
		fmt.Fprintf(&b, "%12.3f", series[0].Points[i].BandwidthBPS/1e6)
		for _, s := range series {
			p := s.Points[i]
			fmt.Fprintf(&b, " %14.4f ±%.4f", p.Estimate.Mean, p.Estimate.CI95)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
