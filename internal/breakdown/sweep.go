package breakdown

import (
	"context"
	"errors"
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"

	"ringsched/internal/core"
	"ringsched/internal/progress"
	"ringsched/internal/trace"
)

// ErrRaggedSeries is returned by the table formatters when the series do
// not all have the same number of points (e.g. a sweep aborted mid-way).
var ErrRaggedSeries = errors.New("breakdown: series have mismatched point counts")

// AnalyzerFactory builds an analyzer for one plant bandwidth; bandwidth
// sweeps (Figure 1) hold everything else constant. Factories are called
// from sweep worker goroutines and must not share mutable state.
type AnalyzerFactory func(bandwidthBPS float64) core.Analyzer

// Point is one (bandwidth, estimate) pair of a sweep.
type Point struct {
	BandwidthBPS float64
	Estimate     Estimate
}

// Series is a named breakdown-utilization curve over bandwidth — one line
// of Figure 1.
type Series struct {
	Name   string
	Points []Point
}

// Sweep estimates the average breakdown utilization at each bandwidth. It
// is the uncancelable convenience wrapper around SweepContext.
func (e Estimator) Sweep(name string, factory AnalyzerFactory, bandwidthsBPS []float64) (Series, error) {
	return e.SweepContext(context.Background(), name, factory, bandwidthsBPS)
}

// SweepContext runs the sweep with cancellation, estimating the bandwidth
// points in parallel on its own worker pool. The Estimator's Workers budget
// bounds the *total* parallelism: it is split between concurrent points and
// the per-point sample pools. Results are bit-identical at any worker
// count because the RNG stream of (bandwidth, sample) is a pure function of
// (Seed, bandwidth, sample index) — see Estimator.Workers.
//
// On the first point error the remaining points are canceled and the error
// of the lowest-bandwidth failing point is returned; if ctx is canceled
// first, ctx.Err() is returned.
func (e Estimator) SweepContext(ctx context.Context, name string, factory AnalyzerFactory, bandwidthsBPS []float64) (Series, error) {
	if len(bandwidthsBPS) == 0 {
		return Series{Name: name}, nil
	}

	total := e.Workers
	if total <= 0 {
		total = runtime.GOMAXPROCS(0)
	}
	pointWorkers := total
	if pointWorkers > len(bandwidthsBPS) {
		pointWorkers = len(bandwidthsBPS)
	}
	// Split the worker budget: pointWorkers concurrent points, each with an
	// equal share of the sample-level pool.
	inner := e
	inner.Workers = total / pointWorkers
	if inner.Workers < 1 {
		inner.Workers = 1
	}

	ctx, sweepSpan := trace.Start(ctx, "breakdown.sweep")
	defer sweepSpan.End()
	sweepSpan.SetAttr("series", name)
	sweepSpan.SetAttr("points", len(bandwidthsBPS))
	sweepSpan.SetAttr("pointWorkers", pointWorkers)

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	obs := progress.OrNop(e.Progress)

	points := make([]Point, len(bandwidthsBPS))
	errs := make([]error, len(bandwidthsBPS))
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < pointWorkers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				bw := bandwidthsBPS[i]
				ptCtx, ptSpan := trace.Start(runCtx, "breakdown.point")
				ptSpan.SetAttr("series", name)
				ptSpan.SetAttr("bandwidthBPS", bw)
				est, err := inner.EstimateContext(ptCtx, factory(bw), bw)
				if err != nil {
					ptSpan.SetError(err)
					ptSpan.End()
					errs[i] = fmt.Errorf("sweep %s at %.3g bps: %w", name, bw, err)
					cancel()
					continue
				}
				ptSpan.SetAttr("mean", est.Mean)
				ptSpan.End()
				points[i] = Point{BandwidthBPS: bw, Estimate: est}
				obs.SweepPointDone(name, bw)
			}
		}()
	}
dispatch:
	for i := range bandwidthsBPS {
		select {
		case next <- i:
		case <-runCtx.Done():
			break dispatch
		}
	}
	close(next)
	wg.Wait()

	// Prefer the lowest-index real failure; cancellation-induced errors at
	// other indices are a consequence, not the cause.
	var firstErr error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if firstErr == nil {
			firstErr = err
		}
		if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			firstErr = err
			break
		}
	}
	if firstErr != nil && !errors.Is(firstErr, context.Canceled) {
		sweepSpan.SetError(firstErr)
		return Series{}, firstErr
	}
	if err := ctx.Err(); err != nil {
		sweepSpan.SetError(err)
		return Series{}, err
	}
	if firstErr != nil {
		sweepSpan.SetError(firstErr)
		return Series{}, firstErr
	}
	return Series{Name: name, Points: points}, nil
}

// PaperBandwidths returns the Figure 1 sweep grid: 1 Mbps to 1 Gbps,
// log-spaced with pointsPerDecade samples per decade (endpoints included).
func PaperBandwidths(pointsPerDecade int) []float64 {
	if pointsPerDecade <= 0 {
		pointsPerDecade = 3
	}
	var out []float64
	const decades = 3 // 1e6 .. 1e9
	total := decades * pointsPerDecade
	for i := 0; i <= total; i++ {
		out = append(out, math.Pow(10, 6+3*float64(i)/float64(total)))
	}
	return out
}

// checkAligned verifies that every series has the same point count as the
// first, so row-major table rendering cannot index out of range.
func checkAligned(series []Series) error {
	for _, s := range series[1:] {
		if len(s.Points) != len(series[0].Points) {
			return fmt.Errorf("%w: %q has %d points, %q has %d",
				ErrRaggedSeries, series[0].Name, len(series[0].Points), s.Name, len(s.Points))
		}
	}
	return nil
}

// FormatDistributionTable renders, for each series, the spread of
// per-set breakdown utilizations (P10 / median / P90) alongside the mean —
// the planners' view: 90 % of workloads break down above the P10 column.
// All series must have the same point count (ErrRaggedSeries otherwise).
func FormatDistributionTable(series []Series) (string, error) {
	if len(series) == 0 {
		return "", nil
	}
	if err := checkAligned(series); err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%12s", "BW (Mbps)")
	for _, s := range series {
		fmt.Fprintf(&b, " %32s", s.Name+" mean/p10/p50/p90")
	}
	b.WriteByte('\n')
	for i := range series[0].Points {
		fmt.Fprintf(&b, "%12.3f", series[0].Points[i].BandwidthBPS/1e6)
		for _, s := range series {
			e := s.Points[i].Estimate
			fmt.Fprintf(&b, "    %7.4f %7.4f %7.4f %7.4f", e.Mean, e.P10, e.Median, e.P90)
		}
		b.WriteByte('\n')
	}
	return b.String(), nil
}

// FormatTable renders series as a fixed-width table: one row per bandwidth,
// one column per series — the tabular form of Figure 1. All series must
// have the same point count (ErrRaggedSeries otherwise).
func FormatTable(series []Series) (string, error) {
	if len(series) == 0 {
		return "", nil
	}
	if err := checkAligned(series); err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%12s", "BW (Mbps)")
	for _, s := range series {
		fmt.Fprintf(&b, " %22s", s.Name)
	}
	b.WriteByte('\n')
	for i := range series[0].Points {
		fmt.Fprintf(&b, "%12.3f", series[0].Points[i].BandwidthBPS/1e6)
		for _, s := range series {
			p := s.Points[i]
			fmt.Fprintf(&b, " %14.4f ±%.4f", p.Estimate.Mean, p.Estimate.CI95)
		}
		b.WriteByte('\n')
	}
	return b.String(), nil
}
