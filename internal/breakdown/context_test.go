package breakdown

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"ringsched/internal/core"
	"ringsched/internal/message"
	"ringsched/internal/progress"
)

// slowAnalyzer sleeps on every schedulability probe so cancellation tests
// have in-flight work to interrupt.
type slowAnalyzer struct {
	capAnalyzer
	delay time.Duration
	calls *atomic.Int64
}

func (s slowAnalyzer) Schedulable(m message.Set) (bool, error) {
	if s.calls != nil {
		s.calls.Add(1)
	}
	time.Sleep(s.delay)
	return s.capAnalyzer.Schedulable(m)
}

// countingErrAnalyzer fails every probe immediately, counting the probes.
type countingErrAnalyzer struct {
	err   error
	calls *atomic.Int64
}

func (countingErrAnalyzer) Name() string { return "counting-err" }

func (c countingErrAnalyzer) Schedulable(message.Set) (bool, error) {
	c.calls.Add(1)
	return false, c.err
}

func TestSweepDeterministicAcrossWorkers(t *testing.T) {
	bws := []float64{4e6, 16e6, 64e6, 256e6}
	factory := func(bw float64) core.Analyzer {
		a := core.NewTTP(bw)
		a.Net = a.Net.WithStations(10)
		return a
	}
	run := func(workers int) (Series, string) {
		e := testEstimator(12)
		e.Workers = workers
		s, err := e.SweepContext(context.Background(), "fddi", factory, bws)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		table, err := FormatTable([]Series{s})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return s, table
	}
	serial, serialTable := run(1)
	parallel, parallelTable := run(8)
	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("Workers=8 series differs from Workers=1:\n%+v\nvs\n%+v", parallel, serial)
	}
	if serialTable != parallelTable {
		t.Errorf("Workers=8 table not byte-identical to Workers=1:\n%q\nvs\n%q",
			parallelTable, serialTable)
	}
}

func TestEstimateContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var counter progress.Counter
	e := testEstimator(50)
	e.Progress = &counter
	_, err := e.EstimateContext(ctx, capAnalyzer{Cap: 5e5}, 1e6)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := counter.Samples(); got != 0 {
		t.Errorf("%d samples completed under a pre-canceled context, want 0", got)
	}
}

func TestEstimateContextCancelMidway(t *testing.T) {
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	var counter progress.Counter
	e := testEstimator(200)
	e.Workers = 4
	e.Progress = &counter
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := e.EstimateContext(ctx, slowAnalyzer{
		capAnalyzer: capAnalyzer{Cap: 5e5},
		delay:       time.Millisecond,
	}, 1e6)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Dispatch must stop well before the 200-sample drain (~several
	// seconds serial); allow generous slack for loaded CI machines.
	if elapsed > 5*time.Second {
		t.Errorf("cancellation took %v, want prompt return", elapsed)
	}
	if got := counter.Samples(); got >= 200 {
		t.Errorf("all %d samples completed despite cancellation", got)
	}
	// The worker pool must fully drain (no goroutine leaks).
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before {
		t.Errorf("goroutines leaked: %d before, %d after", before, after)
	}
}

func TestEstimateFailsFastOnFirstError(t *testing.T) {
	var calls atomic.Int64
	wantErr := errors.New("kaput")
	var counter progress.Counter
	e := testEstimator(100)
	e.Workers = 4
	e.Progress = &counter
	_, err := e.EstimateContext(context.Background(),
		countingErrAnalyzer{err: wantErr, calls: &calls}, 1e6)
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want kaput", err)
	}
	// Fail-fast: only the samples already in flight when the first error
	// hit may probe the analyzer — far fewer than the configured 100.
	if got := calls.Load(); got >= 100 {
		t.Errorf("%d probes despite first-error cancellation, want far fewer", got)
	}
	if got := counter.Samples(); got != 0 {
		t.Errorf("%d samples reported done, want 0 (every sample errors)", got)
	}
}

func TestSweepContextPreCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var counter progress.Counter
	e := testEstimator(10)
	e.Progress = &counter
	_, err := e.SweepContext(ctx, "toy", func(bw float64) core.Analyzer {
		return capAnalyzer{Cap: bw / 2}
	}, []float64{1e6, 4e6, 16e6})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if got := counter.SweepPoints(); got != 0 {
		t.Errorf("%d sweep points completed under a pre-canceled context, want 0", got)
	}
}

func TestSweepContextFailFast(t *testing.T) {
	var calls atomic.Int64
	wantErr := errors.New("kaput")
	e := testEstimator(10)
	_, err := e.SweepContext(context.Background(), "toy", func(bw float64) core.Analyzer {
		return countingErrAnalyzer{err: wantErr, calls: &calls}
	}, []float64{1e6, 4e6, 16e6, 64e6})
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want kaput", err)
	}
}

func TestSweepEmptyBandwidths(t *testing.T) {
	s, err := testEstimator(5).SweepContext(context.Background(), "empty", func(bw float64) core.Analyzer {
		return capAnalyzer{Cap: bw}
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Name != "empty" || len(s.Points) != 0 {
		t.Errorf("series = %+v, want empty series named %q", s, "empty")
	}
}

func TestFormatTableRaggedSeries(t *testing.T) {
	full := Series{Name: "full", Points: []Point{
		{BandwidthBPS: 1e6}, {BandwidthBPS: 4e6},
	}}
	short := Series{Name: "short", Points: []Point{{BandwidthBPS: 1e6}}}
	if _, err := FormatTable([]Series{full, short}); !errors.Is(err, ErrRaggedSeries) {
		t.Errorf("FormatTable ragged: err = %v, want ErrRaggedSeries", err)
	}
	if _, err := FormatDistributionTable([]Series{full, short}); !errors.Is(err, ErrRaggedSeries) {
		t.Errorf("FormatDistributionTable ragged: err = %v, want ErrRaggedSeries", err)
	}
	// Same lengths stay fine.
	if _, err := FormatTable([]Series{full, full}); err != nil {
		t.Errorf("aligned series: %v", err)
	}
}
