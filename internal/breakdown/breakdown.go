// Package breakdown implements the performance metric of Section 6:
// average breakdown utilization, the expected utilization of message sets
// in the *saturated schedulable class* — sets that are schedulable but
// become unschedulable if any message length is increased.
//
// The engine follows the Lehoczky–Sha–Ding Monte Carlo methodology: draw a
// random message set, scale every payload by a common factor until the set
// saturates (binary search, valid because every analyzer is monotone in the
// lengths), record its utilization, and average over many samples.
package breakdown

import (
	"errors"
	"fmt"

	"ringsched/internal/core"
	"ringsched/internal/message"
)

// Errors returned by the saturation search.
var (
	ErrNotMonotone = errors.New("breakdown: analyzer not monotone: schedulable set became unschedulable when shrunk")
	ErrNoBracket   = errors.New("breakdown: could not bracket the saturation point")
)

// Saturation is the outcome of driving one message set to its breakdown
// load.
type Saturation struct {
	// Feasible is false when the set is unschedulable at any positive
	// load (fixed per-message overheads alone overrun some deadline). Its
	// breakdown utilization is 0 by convention.
	Feasible bool
	// Scale is the length multiplier at which the set saturates.
	Scale float64
	// Set is the saturated message set.
	Set message.Set
	// Utilization is U of the saturated set at the analyzed bandwidth —
	// one sample of breakdown utilization.
	Utilization float64
}

// SaturateOptions tunes the binary search. The zero value gives sensible
// defaults.
type SaturateOptions struct {
	// RelTol is the relative width at which the search stops (default
	// 1e-6).
	RelTol float64
	// MaxBracketSteps bounds the initial exponential bracketing (default
	// 200 doublings/halvings).
	MaxBracketSteps int
}

func (o SaturateOptions) withDefaults() SaturateOptions {
	if o.RelTol <= 0 {
		o.RelTol = 1e-6
	}
	if o.MaxBracketSteps <= 0 {
		o.MaxBracketSteps = 200
	}
	return o
}

// Saturate scales the set's payload lengths by a common factor until it is
// saturated under the analyzer, and returns the saturated sample. The
// bandwidth is used only to report utilization.
//
// Analyzers that implement core.BatchAnalyzer (all protocol analyzers do)
// are probed through an allocation-free pooled workspace; the probe
// sequence and every verdict are bit-identical to the plain per-call
// path, which is retained as the reference oracle for the differential
// tests.
func Saturate(m message.Set, a core.Analyzer, bandwidthBPS float64, opts SaturateOptions) (Saturation, error) {
	o := opts.withDefaults()
	if err := m.Validate(); err != nil {
		return Saturation{}, err
	}
	if ba, ok := a.(core.BatchAnalyzer); ok {
		probe, release, err := ba.NewProbe(m)
		if err != nil {
			return Saturation{}, err
		}
		defer release()
		return saturate(m, probe.Schedulable, bandwidthBPS, o)
	}
	return saturate(m, func(scale float64) (bool, error) {
		return a.Schedulable(m.Scale(scale))
	}, bandwidthBPS, o)
}

// saturateReference is the retained straightforward implementation: every
// probe re-validates, re-sorts and re-analyzes the scaled set through the
// analyzer's plain Schedulable path. The differential suite uses it as
// the oracle the fast path must match bit-for-bit.
func saturateReference(m message.Set, a core.Analyzer, bandwidthBPS float64, opts SaturateOptions) (Saturation, error) {
	o := opts.withDefaults()
	if err := m.Validate(); err != nil {
		return Saturation{}, err
	}
	return saturate(m, func(scale float64) (bool, error) {
		return a.Schedulable(m.Scale(scale))
	}, bandwidthBPS, o)
}

// saturate runs the bracketing and bisection over an arbitrary probe. The
// probe sequence is a pure function of the verdicts, so two probes that
// agree on every verdict produce identical Saturations.
func saturate(m message.Set, sched func(float64) (bool, error), bandwidthBPS float64, o SaturateOptions) (Saturation, error) {
	// Bracket the threshold: lo schedulable, hi unschedulable.
	const floor = 1e-15 // below this the set is deemed infeasible at any load
	lo, hi := 0.0, 0.0
	probe := 1.0
	ok, err := sched(probe)
	if err != nil {
		return Saturation{}, err
	}
	if ok {
		lo = probe
		for i := 0; ; i++ {
			if i >= o.MaxBracketSteps {
				return Saturation{}, fmt.Errorf("%w: still schedulable at scale %g", ErrNoBracket, lo)
			}
			probe *= 2
			ok, err = sched(probe)
			if err != nil {
				return Saturation{}, err
			}
			if !ok {
				hi = probe
				break
			}
			lo = probe
		}
	} else {
		hi = probe
		for i := 0; ; i++ {
			if i >= o.MaxBracketSteps {
				return Saturation{}, fmt.Errorf("%w: still unschedulable at scale %g", ErrNoBracket, hi)
			}
			probe /= 2
			if probe < floor {
				// Unschedulable even at (effectively) zero payload: the
				// fixed overheads alone miss deadlines.
				return Saturation{Feasible: false}, nil
			}
			ok, err = sched(probe)
			if err != nil {
				return Saturation{}, err
			}
			if ok {
				lo = probe
				break
			}
			hi = probe
		}
	}

	// Binary search the threshold down to relative tolerance.
	for hi-lo > o.RelTol*hi {
		mid := lo + (hi-lo)/2
		ok, err = sched(mid)
		if err != nil {
			return Saturation{}, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return Saturation{Feasible: false}, nil
	}

	sat := m.Scale(lo)
	return Saturation{
		Feasible:    true,
		Scale:       lo,
		Set:         sat,
		Utilization: sat.Utilization(bandwidthBPS),
	}, nil
}

// CheckMonotone verifies the analyzer's monotonicity contract on one set:
// if the set is schedulable at some scale it must remain schedulable at
// every smaller probed scale. Property tests use this to validate analyzers
// before trusting the binary search. The verdicts are gathered through
// core.AnalyzeBatch, so one pooled workspace serves the whole scale list.
func CheckMonotone(m message.Set, a core.Analyzer, scales []float64) error {
	verdicts, err := core.AnalyzeBatch(a, m, scales)
	if err != nil {
		return err
	}
	wasSchedulable := false
	// Walk from largest to smallest: once schedulable, must stay so.
	for i := len(scales) - 1; i >= 0; i-- {
		ok := verdicts[i]
		if wasSchedulable && !ok {
			return fmt.Errorf("%w (scale %g)", ErrNotMonotone, scales[i])
		}
		if ok {
			wasSchedulable = true
		}
	}
	return nil
}
