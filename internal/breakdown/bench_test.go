package breakdown

import (
	"math/rand"
	"testing"

	"ringsched/internal/core"
	"ringsched/internal/message"
)

// benchSatSet draws the paper's 100-stream workload for the saturation
// benchmarks.
func benchSatSet(seed int64) message.Set {
	gen := message.Generator{Streams: 100, MeanPeriod: 100e-3, PeriodRatio: 10}
	set, err := gen.Draw(rand.New(rand.NewSource(seed)))
	if err != nil {
		panic(err)
	}
	return set
}

func benchSaturate(b *testing.B, a core.Analyzer, bw float64, ref bool) {
	b.Helper()
	set := benchSatSet(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		if ref {
			_, err = saturateReference(set, a, bw, SaturateOptions{})
		} else {
			_, err = Saturate(set, a, bw, SaturateOptions{})
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSaturateTTP measures one full TTP saturation search through the
// pooled batch-probe fast path — the per-sample cost of every Figure 1
// point.
func BenchmarkSaturateTTP(b *testing.B) { benchSaturate(b, core.NewTTP(100e6), 100e6, false) }

// BenchmarkSaturateTTPReference measures the same search through the
// retained reference oracle (per-probe Scale+Schedulable, allocating).
func BenchmarkSaturateTTPReference(b *testing.B) { benchSaturate(b, core.NewTTP(100e6), 100e6, true) }

// BenchmarkSaturatePDP measures one modified-802.5 saturation search
// through the fast path.
func BenchmarkSaturatePDP(b *testing.B) { benchSaturate(b, core.NewModifiedPDP(4e6), 4e6, false) }

// BenchmarkSaturatePDPReference is its reference-oracle counterpart.
func BenchmarkSaturatePDPReference(b *testing.B) {
	benchSaturate(b, core.NewModifiedPDP(4e6), 4e6, true)
}
