package breakdown

import (
	"math"
	"math/rand"
	"testing"

	"ringsched/internal/core"
	"ringsched/internal/message"
)

// scalePlantPDP returns the analyzer and set with every bit quantity —
// bandwidth, payloads, frame payload/overhead, token length, per-station
// bit delay — multiplied by kappa. For a power-of-two kappa the scaling is
// exact in floating point and every derived time (F, Θ, C', B) is
// unchanged, so the analysis must be invariant.
func scalePlantPDP(p core.PDP, m message.Set, kappa float64) (core.PDP, message.Set) {
	q := p
	q.Net.BandwidthBPS *= kappa
	q.Net.TokenBits *= kappa
	q.Net.BitDelayPerStation *= kappa
	q.Frame.InfoBits *= kappa
	q.Frame.OvhdBits *= kappa
	return q, m.Scale(kappa)
}

// TestMetamorphicBandwidthScalingPDP: multiplying the bandwidth and every
// bit-denominated quantity by the same power of two is a pure change of
// units — verdicts at every payload scale and the breakdown scale itself
// must be bit-identical.
func TestMetamorphicBandwidthScalingPDP(t *testing.T) {
	sets := 120
	if testing.Short() {
		sets = 30
	}
	scales := []float64{0.25, 0.5, 1, 2, 4, 8, 16}
	for _, variant := range []core.Variant{core.Standard8025, core.Modified8025} {
		base := core.NewStandardPDP(4e6)
		base.Variant = variant
		rng := rand.New(rand.NewSource(314159))
		for k := 0; k < sets; k++ {
			set := drawSet(t, rng, 2+rng.Intn(12))
			for _, kappa := range []float64{4, 64, 0.5} {
				scaled, scaledSet := scalePlantPDP(base, set, kappa)

				orig, err := core.AnalyzeBatch(base, set, scales)
				if err != nil {
					t.Fatalf("%v set %d: base batch: %v", variant, k, err)
				}
				got, err := core.AnalyzeBatch(scaled, scaledSet, scales)
				if err != nil {
					t.Fatalf("%v set %d: scaled batch: %v", variant, k, err)
				}
				for i := range scales {
					if got[i] != orig[i] {
						t.Fatalf("%v set %d kappa %g scale %g: verdict %v, original %v",
							variant, k, kappa, scales[i], got[i], orig[i])
					}
				}

				satOrig, err := Saturate(set, base, base.Net.BandwidthBPS, SaturateOptions{})
				if err != nil {
					t.Fatalf("%v set %d: base Saturate: %v", variant, k, err)
				}
				satScaled, err := Saturate(scaledSet, scaled, scaled.Net.BandwidthBPS, SaturateOptions{})
				if err != nil {
					t.Fatalf("%v set %d: scaled Saturate: %v", variant, k, err)
				}
				if satOrig.Feasible != satScaled.Feasible ||
					math.Float64bits(satOrig.Scale) != math.Float64bits(satScaled.Scale) {
					t.Fatalf("%v set %d kappa %g: breakdown scale %v, original %v",
						variant, k, kappa, satScaled.Scale, satOrig.Scale)
				}
			}
		}
	}
}

// TestMetamorphicPermutationInvariance: the analyzers sort into RM order
// themselves, so permuting the input streams must not change any verdict.
// For sets with distinct periods the whole Saturation is bit-identical; the
// test also covers tie-heavy sets at the verdict level.
func TestMetamorphicPermutationInvariance(t *testing.T) {
	sets := 150
	if testing.Short() {
		sets = 40
	}
	analyzers := []core.Analyzer{
		core.NewStandardPDP(4e6),
		core.NewModifiedPDP(4e6),
		core.NewTTP(4e6),
		core.IdealRM{},
	}
	rng := rand.New(rand.NewSource(161803))
	for k := 0; k < sets; k++ {
		set := drawSet(t, rng, 2+rng.Intn(12))
		perm := set.Clone()
		rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		for _, a := range analyzers {
			satA, err := Saturate(set, a, 4e6, SaturateOptions{})
			if err != nil {
				t.Fatalf("%s set %d: %v", a.Name(), k, err)
			}
			satB, err := Saturate(perm, a, 4e6, SaturateOptions{})
			if err != nil {
				t.Fatalf("%s set %d (permuted): %v", a.Name(), k, err)
			}
			// Generator periods are continuous draws: distinct with
			// probability 1, so the stable RM orders coincide and the
			// saturation must match bit-for-bit.
			if satA.Feasible != satB.Feasible ||
				math.Float64bits(satA.Scale) != math.Float64bits(satB.Scale) {
				t.Fatalf("%s set %d: permuted breakdown scale %v != %v",
					a.Name(), k, satB.Scale, satA.Scale)
			}
		}
	}

	// Tie-heavy corner: equal periods make the RM order genuinely
	// ambiguous; the verdict (a property of the multiset) must still be
	// permutation-invariant even though response-time details may reorder.
	tie := message.Set{
		{Name: "a", Period: 50e-3, LengthBits: 3000},
		{Name: "b", Period: 50e-3, LengthBits: 9000},
		{Name: "c", Period: 100e-3, LengthBits: 20000},
		{Name: "d", Period: 100e-3, LengthBits: 1000},
	}
	tiePerm := message.Set{tie[3], tie[1], tie[2], tie[0]}
	for _, a := range analyzers {
		for _, s := range []float64{0.5, 1, 2, 4, 8, 16, 32} {
			v1, err := a.Schedulable(tie.Scale(s))
			if err != nil {
				t.Fatalf("%s: %v", a.Name(), err)
			}
			v2, err := a.Schedulable(tiePerm.Scale(s))
			if err != nil {
				t.Fatalf("%s: %v", a.Name(), err)
			}
			if v1 != v2 {
				t.Fatalf("%s scale %g: verdict changed under permutation of equal-period set", a.Name(), s)
			}
		}
	}
}

// TestMetamorphicSaturateMonotone: the breakdown point must be a genuine
// threshold — schedulable at the returned scale, unschedulable just above
// the bisection bracket, and verdicts along a ladder of scales must be
// monotone (checked through the pooled batch path).
func TestMetamorphicSaturateMonotone(t *testing.T) {
	sets := 100
	if testing.Short() {
		sets = 25
	}
	for _, a := range diffAnalyzers(4e6) {
		a := a
		rng := rand.New(rand.NewSource(577215))
		for k := 0; k < sets; k++ {
			set := drawSet(t, rng, 2+rng.Intn(12))
			sat, err := Saturate(set, a, 4e6, SaturateOptions{})
			if err != nil {
				t.Fatalf("%s set %d: %v", a.Name(), k, err)
			}
			if !sat.Feasible {
				continue
			}
			ok, err := a.Schedulable(set.Scale(sat.Scale))
			if err != nil {
				t.Fatalf("%s set %d: at breakdown: %v", a.Name(), k, err)
			}
			if !ok {
				t.Fatalf("%s set %d: unschedulable at its own breakdown scale %g", a.Name(), k, sat.Scale)
			}
			// The bisection stops with hi ≤ lo/(1−RelTol), so anything a few
			// tolerances above the breakdown scale is at or past the
			// unschedulable bracket.
			above := sat.Scale * (1 + 5e-6)
			ok, err = a.Schedulable(set.Scale(above))
			if err != nil {
				t.Fatalf("%s set %d: above breakdown: %v", a.Name(), k, err)
			}
			if ok {
				t.Fatalf("%s set %d: still schedulable at %g, %.2g above breakdown",
					a.Name(), k, above, above/sat.Scale-1)
			}
			ladder := []float64{
				sat.Scale / 16, sat.Scale / 4, sat.Scale / 2, sat.Scale * 0.9,
				sat.Scale, above, sat.Scale * 2, sat.Scale * 16,
			}
			if err := CheckMonotone(set, a, ladder); err != nil {
				t.Fatalf("%s set %d: %v", a.Name(), k, err)
			}
		}
	}
}
