package breakdown

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"ringsched/internal/core"
	"ringsched/internal/message"
)

// capAnalyzer is a toy analyzer with an exactly known saturation point:
// schedulable iff total payload rate ≤ Cap bits/second.
type capAnalyzer struct {
	Cap float64
}

func (capAnalyzer) Name() string { return "cap" }

func (c capAnalyzer) Schedulable(m message.Set) (bool, error) {
	if err := m.Validate(); err != nil {
		return false, err
	}
	return m.TotalBitsPerSecond() <= c.Cap, nil
}

// errAnalyzer always fails, to exercise error propagation.
type errAnalyzer struct{ err error }

func (errAnalyzer) Name() string { return "err" }

func (e errAnalyzer) Schedulable(message.Set) (bool, error) { return false, e.err }

func twoStreams() message.Set {
	return message.Set{
		{Period: 10e-3, LengthBits: 1000}, // 100 kbit/s
		{Period: 20e-3, LengthBits: 3000}, // 150 kbit/s
	}
}

func TestSaturateFindsExactThreshold(t *testing.T) {
	// Total rate 250 kbit/s; cap 1 Mbit/s ⇒ saturation scale = 4.
	set := twoStreams()
	sat, err := Saturate(set, capAnalyzer{Cap: 1e6}, 1e6, SaturateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !sat.Feasible {
		t.Fatal("feasible set reported infeasible")
	}
	if math.Abs(sat.Scale-4) > 4*1e-5 {
		t.Errorf("Scale = %v, want 4", sat.Scale)
	}
	// Breakdown utilization = 1 Mbit/s over 1 Mbps = 1.0.
	if math.Abs(sat.Utilization-1.0) > 1e-4 {
		t.Errorf("Utilization = %v, want 1.0", sat.Utilization)
	}
	// The saturated set must still be schedulable.
	ok, err := (capAnalyzer{Cap: 1e6}).Schedulable(sat.Set)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("saturated set not schedulable")
	}
	// ... and a slightly inflated one must not be.
	ok, err = (capAnalyzer{Cap: 1e6}).Schedulable(sat.Set.Scale(1.001))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("inflated saturated set still schedulable")
	}
}

func TestSaturateBracketsFromBelow(t *testing.T) {
	// Start unschedulable (scale 1 over cap) and shrink to bracket.
	set := twoStreams() // 250 kbit/s
	sat, err := Saturate(set, capAnalyzer{Cap: 1e3}, 1e6, SaturateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !sat.Feasible {
		t.Fatal("feasible set reported infeasible")
	}
	if math.Abs(sat.Scale-1e3/250e3) > 1e-7 {
		t.Errorf("Scale = %v, want 0.004", sat.Scale)
	}
}

func TestSaturateInfeasible(t *testing.T) {
	// An analyzer that never admits anything.
	sat, err := Saturate(twoStreams(), capAnalyzer{Cap: -1}, 1e6, SaturateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if sat.Feasible {
		t.Fatal("infeasible workload reported feasible")
	}
	if sat.Utilization != 0 {
		t.Errorf("infeasible utilization = %v, want 0", sat.Utilization)
	}
}

func TestSaturatePropagatesErrors(t *testing.T) {
	wantErr := errors.New("boom")
	if _, err := Saturate(twoStreams(), errAnalyzer{err: wantErr}, 1e6, SaturateOptions{}); !errors.Is(err, wantErr) {
		t.Errorf("err = %v, want boom", err)
	}
	if _, err := Saturate(nil, capAnalyzer{Cap: 1}, 1e6, SaturateOptions{}); err == nil {
		t.Error("nil set accepted")
	}
}

func TestSaturateRespectsTolerance(t *testing.T) {
	set := twoStreams()
	loose, err := Saturate(set, capAnalyzer{Cap: 1e6}, 1e6, SaturateOptions{RelTol: 1e-2})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := Saturate(set, capAnalyzer{Cap: 1e6}, 1e6, SaturateOptions{RelTol: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(tight.Scale-4) > math.Abs(loose.Scale-4) {
		t.Errorf("tighter tolerance gave worse scale: %v vs %v", tight.Scale, loose.Scale)
	}
	if math.Abs(tight.Scale-4) > 4e-8 {
		t.Errorf("tight scale = %v, want 4 within 1e-8 relative", tight.Scale)
	}
}

func TestCheckMonotone(t *testing.T) {
	scales := []float64{0.1, 0.5, 1, 2, 4, 8}
	if err := CheckMonotone(twoStreams(), capAnalyzer{Cap: 1e6}, scales); err != nil {
		t.Errorf("monotone analyzer flagged: %v", err)
	}
	// A deliberately non-monotone analyzer must be caught.
	bad := nonMonotone{}
	if err := CheckMonotone(twoStreams(), bad, scales); !errors.Is(err, ErrNotMonotone) {
		t.Errorf("err = %v, want ErrNotMonotone", err)
	}
}

// nonMonotone admits only a band of rates.
type nonMonotone struct{}

func (nonMonotone) Name() string { return "band" }

func (nonMonotone) Schedulable(m message.Set) (bool, error) {
	r := m.TotalBitsPerSecond()
	return r > 400e3 && r < 800e3, nil
}

func TestRealAnalyzersAreMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	gen := message.Generator{Streams: 10, MeanPeriod: 100e-3, PeriodRatio: 10}
	scales := []float64{1e-3, 0.01, 0.1, 0.3, 1, 3, 10, 100}
	for trial := 0; trial < 5; trial++ {
		set, err := gen.Draw(rng)
		if err != nil {
			t.Fatal(err)
		}
		for _, bw := range []float64{4e6, 100e6} {
			pdpS := core.NewStandardPDP(bw)
			pdpS.Net = pdpS.Net.WithStations(10)
			pdpM := core.NewModifiedPDP(bw)
			pdpM.Net = pdpM.Net.WithStations(10)
			ttp := core.NewTTP(bw)
			ttp.Net = ttp.Net.WithStations(10)
			for _, a := range []core.Analyzer{pdpS, pdpM, ttp} {
				if err := CheckMonotone(set, a, scales); err != nil {
					t.Errorf("%s at %g bps: %v", a.Name(), bw, err)
				}
			}
		}
	}
}

func TestSaturatedSetsSitOnTheBoundary(t *testing.T) {
	// For the real analyzers: the saturated set is schedulable and a 0.1 %
	// inflation is not — the definition of the saturated class.
	rng := rand.New(rand.NewSource(31))
	gen := message.Generator{Streams: 10, MeanPeriod: 100e-3, PeriodRatio: 10}
	set, err := gen.Draw(rng)
	if err != nil {
		t.Fatal(err)
	}
	const bw = 16e6
	pdp := core.NewModifiedPDP(bw)
	pdp.Net = pdp.Net.WithStations(10)
	ttp := core.NewTTP(bw)
	ttp.Net = ttp.Net.WithStations(10)
	for _, a := range []core.Analyzer{pdp, ttp} {
		sat, err := Saturate(set, a, bw, SaturateOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if !sat.Feasible {
			t.Fatalf("%s: infeasible", a.Name())
		}
		ok, err := a.Schedulable(sat.Set)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("%s: saturated set not schedulable", a.Name())
		}
		ok, err = a.Schedulable(sat.Set.Scale(1.001))
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Errorf("%s: inflated set still schedulable", a.Name())
		}
	}
}
