package breakdown

import (
	"context"
	"math"
	"testing"

	"ringsched/internal/core"
	"ringsched/internal/ring"
	"ringsched/internal/topology"
)

func breakdownLineTopology() topology.Topology {
	return topology.Topology{
		Nodes: []topology.Node{
			{Name: "a", Protocol: topology.Modified8025, Ring: ring.IEEE8025(16e6)},
			{Name: "b", Protocol: topology.FDDI, Ring: ring.FDDI(100e6)},
			{Name: "c", Protocol: topology.Standard8025, Ring: ring.IEEE8025(16e6)},
		},
		Bridges: []topology.Bridge{
			{A: "a", B: "b", Latency: 100e-6},
			{A: "b", B: "c", Latency: 100e-6},
		},
		Flows: []topology.Flow{
			{Name: "cross", Src: "a", Dst: "c", Period: 100e-3, LengthBits: 4096},
			{Name: "feed", Src: "b", Dst: "c", Period: 50e-3, LengthBits: 2048},
			{Name: "local", Src: "b", Dst: "b", Period: 20e-3, LengthBits: 1024},
		},
	}
}

// TestSaturateTopologyBracketsTheVerdictBoundary pins the defining
// property of the breakdown scale: schedulable just below, unschedulable
// just above.
func TestSaturateTopologyBracketsTheVerdictBoundary(t *testing.T) {
	topo := breakdownLineTopology()
	sat, err := SaturateTopology(topo, SaturateOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !sat.Feasible || !(sat.Scale > 0) || math.IsInf(sat.Scale, 0) {
		t.Fatalf("saturation: %+v", sat)
	}
	if !sat.Report.Schedulable {
		t.Error("report at the saturated load must be schedulable")
	}
	canon := topo.Canonicalize()
	above, err := core.AnalyzeTopology(canon.ScaleFlows(sat.Scale * 1.001))
	if err != nil {
		t.Fatal(err)
	}
	if above.Schedulable {
		t.Errorf("still schedulable just above the breakdown scale %g", sat.Scale)
	}
	// The fixture starts schedulable at scale 1, so saturation can only
	// scale it up.
	if sat.Scale < 1 {
		t.Errorf("breakdown scale %g below the already-schedulable baseline", sat.Scale)
	}
}

// TestSweepTopologyIsMonotoneInBandwidth checks that faster plants carry
// at least as much synchronous load.
func TestSweepTopologyIsMonotoneInBandwidth(t *testing.T) {
	points, err := SweepTopology(context.Background(), breakdownLineTopology(),
		[]float64{0.5, 1, 2}, SaturateOptions{RelTol: 1e-4}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("%d points", len(points))
	}
	for i := 1; i < len(points); i++ {
		prev, cur := points[i-1].Saturation, points[i].Saturation
		if !cur.Feasible {
			t.Fatalf("point %d infeasible", i)
		}
		// Allow the search tolerance when comparing adjacent points.
		if cur.Scale < prev.Scale*(1-1e-3) {
			t.Errorf("breakdown scale fell from %g to %g as bandwidth grew",
				prev.Scale, cur.Scale)
		}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SweepTopology(ctx, breakdownLineTopology(), []float64{1}, SaturateOptions{}, nil); err == nil {
		t.Error("cancelled sweep returned no error")
	}
}
