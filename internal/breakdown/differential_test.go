package breakdown

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"ringsched/internal/core"
	"ringsched/internal/message"
)

// drawSet draws one seeded random message set of moderate size.
func drawSet(t *testing.T, rng *rand.Rand, streams int) message.Set {
	t.Helper()
	gen := message.Generator{Streams: streams, MeanPeriod: 100e-3, PeriodRatio: 10}
	set, err := gen.Draw(rng)
	if err != nil {
		t.Fatalf("Draw: %v", err)
	}
	return set
}

// diffAnalyzers is the protocol matrix for the saturation differential
// suite.
func diffAnalyzers(bw float64) []core.Analyzer {
	return []core.Analyzer{
		core.NewStandardPDP(bw),
		core.NewModifiedPDP(bw),
		core.NewTTP(bw),
		core.IdealRM{},
	}
}

// sameSaturation fails the test unless the two saturations are
// bit-identical: same feasibility, same scale and utilization bits, same
// saturated payloads.
func sameSaturation(t *testing.T, label string, fast, ref Saturation) {
	t.Helper()
	if fast.Feasible != ref.Feasible {
		t.Fatalf("%s: Feasible %v, reference %v", label, fast.Feasible, ref.Feasible)
	}
	if math.Float64bits(fast.Scale) != math.Float64bits(ref.Scale) {
		t.Fatalf("%s: Scale %v (%x), reference %v (%x)", label,
			fast.Scale, math.Float64bits(fast.Scale), ref.Scale, math.Float64bits(ref.Scale))
	}
	if math.Float64bits(fast.Utilization) != math.Float64bits(ref.Utilization) {
		t.Fatalf("%s: Utilization %v, reference %v", label, fast.Utilization, ref.Utilization)
	}
	if len(fast.Set) != len(ref.Set) {
		t.Fatalf("%s: saturated set size %d, reference %d", label, len(fast.Set), len(ref.Set))
	}
	for i := range fast.Set {
		if math.Float64bits(fast.Set[i].LengthBits) != math.Float64bits(ref.Set[i].LengthBits) {
			t.Fatalf("%s stream %d: saturated length %v, reference %v",
				label, i, fast.Set[i].LengthBits, ref.Set[i].LengthBits)
		}
	}
}

// TestSaturateDifferentialParity is the breakdown half of the differential
// suite: over 1000+ seeded sets per protocol, the pooled-probe saturation
// search must reproduce the reference per-call search bit-for-bit —
// feasibility, breakdown scale, utilization, and every saturated payload.
func TestSaturateDifferentialParity(t *testing.T) {
	sets := 350
	if testing.Short() {
		sets = 60
	}
	for _, bw := range []float64{4e6, 16e6, 100e6} {
		for _, a := range diffAnalyzers(bw) {
			a := a
			rng := rand.New(rand.NewSource(271828))
			for k := 0; k < sets; k++ {
				set := drawSet(t, rng, 2+rng.Intn(14))
				fast, err1 := Saturate(set, a, bw, SaturateOptions{})
				ref, err2 := saturateReference(set, a, bw, SaturateOptions{})
				if (err1 == nil) != (err2 == nil) {
					t.Fatalf("%s bw=%g set %d: fast err %v, reference err %v", a.Name(), bw, k, err1, err2)
				}
				if err1 != nil {
					if err1.Error() != err2.Error() {
						t.Fatalf("%s bw=%g set %d: fast err %q, reference err %q", a.Name(), bw, k, err1, err2)
					}
					continue
				}
				sameSaturation(t, a.Name(), fast, ref)
			}
		}
	}
}

// TestSaturateInfeasibleParity checks both paths agree on sets whose fixed
// overheads alone are unschedulable at any payload: a stream with a period
// far below the token circulation time.
func TestSaturateInfeasibleParity(t *testing.T) {
	// At 4 Mbps the 802.5 plant's Θ is ~10 µs; a 1 µs period can never be
	// met regardless of payload.
	set := message.Set{
		{Name: "impossible", Period: 1e-6, LengthBits: 8},
		{Name: "easy", Period: 100e-3, LengthBits: 4096},
	}
	for _, a := range []core.Analyzer{core.NewStandardPDP(4e6), core.NewModifiedPDP(4e6), core.NewTTP(4e6)} {
		fast, err := Saturate(set, a, 4e6, SaturateOptions{})
		if err != nil {
			t.Fatalf("%s: fast: %v", a.Name(), err)
		}
		ref, err := saturateReference(set, a, 4e6, SaturateOptions{})
		if err != nil {
			t.Fatalf("%s: reference: %v", a.Name(), err)
		}
		if fast.Feasible || ref.Feasible {
			t.Fatalf("%s: expected infeasible (fast %v, reference %v)", a.Name(), fast.Feasible, ref.Feasible)
		}
		sameSaturation(t, a.Name(), fast, ref)
	}
}

// TestSaturatePooledConcurrency hammers the pooled probe path from many
// goroutines (the sweep worker pattern) and checks every result against the
// reference. Run with -race this also proves the sync.Pool handoff is
// clean.
func TestSaturatePooledConcurrency(t *testing.T) {
	workers := 8
	each := 25
	if testing.Short() {
		each = 8
	}
	a := core.NewModifiedPDP(4e6)
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			for k := 0; k < each; k++ {
				gen := message.Generator{Streams: 2 + rng.Intn(10), MeanPeriod: 100e-3, PeriodRatio: 10}
				set, err := gen.Draw(rng)
				if err != nil {
					errs <- err
					return
				}
				fast, err := Saturate(set, a, 4e6, SaturateOptions{})
				if err != nil {
					errs <- err
					return
				}
				ref, err := saturateReference(set, a, 4e6, SaturateOptions{})
				if err != nil {
					errs <- err
					return
				}
				if math.Float64bits(fast.Scale) != math.Float64bits(ref.Scale) ||
					fast.Feasible != ref.Feasible {
					t.Errorf("worker %d set %d: fast (%v,%v) != reference (%v,%v)",
						w, k, fast.Feasible, fast.Scale, ref.Feasible, ref.Scale)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
