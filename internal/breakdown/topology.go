package breakdown

import (
	"context"

	"ringsched/internal/core"
	"ringsched/internal/progress"
	"ringsched/internal/topology"
)

// TopologySaturation is the outcome of driving a topology's flows to the
// bridged breakdown load: the largest common payload-scale factor at which
// every ring stays schedulable and every flow's end-to-end bound stays
// within its period.
type TopologySaturation struct {
	// Feasible is false when the topology is unschedulable at any positive
	// load.
	Feasible bool
	// Scale is the flow-payload multiplier at which the topology saturates.
	Scale float64
	// Topology is the saturated topology (canonical, flows scaled).
	Topology topology.Topology
	// Report is the full analysis at the saturated load.
	Report core.TopologyReport
}

// SaturateTopology scales every flow's payload by a common factor until
// the topology stops being end-to-end schedulable, reusing the same
// bracketing and bisection as the single-ring search (valid because ring
// verdicts and bridge bounds are monotone in the payload lengths).
func SaturateTopology(t topology.Topology, opts SaturateOptions) (TopologySaturation, error) {
	o := opts.withDefaults()
	canon := t.Canonicalize()
	if err := canon.Validate(); err != nil {
		return TopologySaturation{}, err
	}
	sat, err := saturate(nil, func(scale float64) (bool, error) {
		rep, err := core.AnalyzeTopology(canon.ScaleFlows(scale))
		if err != nil {
			return false, err
		}
		return rep.Schedulable, nil
	}, 0, o)
	if err != nil {
		return TopologySaturation{}, err
	}
	if !sat.Feasible {
		return TopologySaturation{}, nil
	}
	saturated := canon.ScaleFlows(sat.Scale)
	rep, err := core.AnalyzeTopology(saturated)
	if err != nil {
		return TopologySaturation{}, err
	}
	return TopologySaturation{
		Feasible: true,
		Scale:    sat.Scale,
		Topology: saturated,
		Report:   rep,
	}, nil
}

// TopologyPoint is one point of a topology breakdown sweep.
type TopologyPoint struct {
	// BandwidthScale is the factor every ring bandwidth (and explicit
	// bridge rate) was multiplied by for this point.
	BandwidthScale float64
	// Saturation is the breakdown outcome at that capacity.
	Saturation TopologySaturation
}

// SweepTopology computes the topology's breakdown scale across a grid of
// bandwidth multipliers — the Figure 1 methodology lifted to the bridged
// setting: how much synchronous load the interconnected rings carry as
// the plant gets faster. obs (may be nil) sees one SweepPointDone per
// completed point; cancelling ctx returns promptly with the points
// finished so far discarded.
func SweepTopology(ctx context.Context, t topology.Topology, bandwidthScales []float64, opts SaturateOptions, obs progress.Progress) ([]TopologyPoint, error) {
	canon := t.Canonicalize()
	if err := canon.Validate(); err != nil {
		return nil, err
	}
	points := make([]TopologyPoint, 0, len(bandwidthScales))
	for _, bs := range bandwidthScales {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		sat, err := SaturateTopology(scaleBandwidth(canon, bs), opts)
		if err != nil {
			return nil, err
		}
		points = append(points, TopologyPoint{BandwidthScale: bs, Saturation: sat})
		if obs != nil {
			obs.SweepPointDone("topology", bs)
		}
	}
	return points, nil
}

// scaleBandwidth returns a copy of the topology with every ring bandwidth
// and every explicitly configured bridge rate multiplied by factor
// (derived bridge rates follow the ring bandwidths automatically).
func scaleBandwidth(t topology.Topology, factor float64) topology.Topology {
	out := t
	out.Nodes = append([]topology.Node(nil), t.Nodes...)
	out.Bridges = append([]topology.Bridge(nil), t.Bridges...)
	for i := range out.Nodes {
		out.Nodes[i].Ring.BandwidthBPS *= factor
	}
	for i := range out.Bridges {
		out.Bridges[i].RateBPS *= factor
	}
	return out
}
