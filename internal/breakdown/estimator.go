package breakdown

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"ringsched/internal/core"
	"ringsched/internal/message"
	"ringsched/internal/progress"
	"ringsched/internal/stats"
	"ringsched/internal/trace"
)

// ErrNoSamples is returned when an estimator is configured with a
// non-positive sample count.
var ErrNoSamples = errors.New("breakdown: sample count must be positive")

// Estimate is the Monte Carlo estimate of a protocol's average breakdown
// utilization under one workload distribution and plant.
type Estimate struct {
	// Mean is the average breakdown utilization.
	Mean float64
	// CI95 is the half-width of the 95 % confidence interval on Mean.
	CI95 float64
	// StdDev is the sample standard deviation.
	StdDev float64
	// Min and Max are the extreme breakdown utilizations observed.
	Min, Max float64
	// P10, Median and P90 summarize the distribution of per-set breakdown
	// utilizations — P10 is the operationally interesting tail: 90 % of
	// workloads break down above it.
	P10, Median, P90 float64
	// Samples is the number of message sets drawn.
	Samples int
	// Infeasible counts sets that were unschedulable at any positive load
	// (their breakdown utilization contributes 0).
	Infeasible int
}

// String implements fmt.Stringer.
func (e Estimate) String() string {
	return fmt.Sprintf("%.4f ±%.4f (n=%d, sd=%.4f, range [%.4f, %.4f], infeasible %d)",
		e.Mean, e.CI95, e.Samples, e.StdDev, e.Min, e.Max, e.Infeasible)
}

// Estimator runs the Monte Carlo estimation. The zero value is not usable;
// set Generator and Samples.
type Estimator struct {
	// Generator draws the random message sets.
	Generator message.Generator
	// Samples is the number of sets per estimate.
	Samples int
	// Seed derives a deterministic per-sample RNG stream, making estimates
	// reproducible regardless of goroutine scheduling.
	Seed int64
	// Workers bounds the parallelism; zero means GOMAXPROCS. Results are
	// bit-identical at any worker count: the RNG stream of sample i is a
	// pure function of (Seed, i), never of goroutine scheduling.
	Workers int
	// Saturate tunes the per-sample binary search.
	Saturate SaturateOptions
	// Progress, when non-nil, observes completed samples and sweep points.
	// It is invoked from worker goroutines and must be concurrency-safe.
	Progress progress.Progress
}

// PaperEstimator returns an estimator with the paper's workload
// distribution and a sample count adequate for stable Figure 1 curves.
func PaperEstimator(samples int, seed int64) Estimator {
	return Estimator{Generator: message.PaperGenerator(), Samples: samples, Seed: seed}
}

// Estimate computes the average breakdown utilization of the analyzer. The
// bandwidth is used to express the saturated sets' utilization; pass the
// analyzer's plant bandwidth (or 1 for abstract CPU-style analyzers).
//
// Estimate is the uncancelable convenience wrapper around EstimateContext.
func (e Estimator) Estimate(a core.Analyzer, bandwidthBPS float64) (Estimate, error) {
	return e.EstimateContext(context.Background(), a, bandwidthBPS)
}

// EstimateContext is Estimate with cancellation: the worker pool stops
// dispatching new samples as soon as ctx is canceled (returning ctx.Err())
// or any sample fails (returning that sample's error promptly instead of
// draining the remaining work). Already-dispatched samples run to
// completion — each is one bounded binary search.
func (e Estimator) EstimateContext(ctx context.Context, a core.Analyzer, bandwidthBPS float64) (Estimate, error) {
	if e.Samples <= 0 {
		return Estimate{}, ErrNoSamples
	}
	if err := e.Generator.Validate(); err != nil {
		return Estimate{}, err
	}

	workers := e.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > e.Samples {
		workers = e.Samples
	}

	ctx, sp := trace.Start(ctx, "breakdown.estimate")
	defer sp.End()
	sp.SetAttr("analyzer", a.Name())
	sp.SetAttr("samples", e.Samples)
	sp.SetAttr("workers", workers)

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	obs := progress.OrNop(e.Progress)
	results := make([]sampleOutcome, e.Samples)

	var (
		wg      sync.WaitGroup
		errOnce sync.Once
		failure error
	)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i] = e.sample(a, bandwidthBPS, i)
				if err := results[i].err; err != nil {
					// First error wins; cancel the dispatcher and the
					// sibling workers so the failure surfaces promptly.
					errOnce.Do(func() {
						failure = err
						cancel()
					})
					return
				}
				obs.SampleDone()
			}
		}()
	}
dispatch:
	for i := 0; i < e.Samples; i++ {
		select {
		case next <- i:
		case <-ctx.Done():
			break dispatch
		}
	}
	close(next)
	wg.Wait()

	if failure != nil {
		sp.SetError(failure)
		return Estimate{}, failure
	}
	if err := ctx.Err(); err != nil {
		sp.SetError(err)
		return Estimate{}, err
	}

	var acc stats.Running
	infeasible := 0
	utils := make([]float64, 0, len(results))
	for _, r := range results {
		if r.infeasible {
			infeasible++
		}
		acc.Add(r.util)
		utils = append(utils, r.util)
	}
	p10, err := stats.Percentile(utils, 10)
	if err != nil {
		return Estimate{}, err
	}
	median, err := stats.Percentile(utils, 50)
	if err != nil {
		return Estimate{}, err
	}
	p90, err := stats.Percentile(utils, 90)
	if err != nil {
		return Estimate{}, err
	}
	sp.SetAttr("mean", acc.Mean())
	sp.SetAttr("infeasible", infeasible)
	return Estimate{
		Mean:       acc.Mean(),
		CI95:       acc.CI95(),
		StdDev:     acc.StdDev(),
		Min:        acc.Min(),
		Max:        acc.Max(),
		P10:        p10,
		Median:     median,
		P90:        p90,
		Samples:    acc.N(),
		Infeasible: infeasible,
	}, nil
}

type sampleOutcome struct {
	util       float64
	infeasible bool
	err        error
}

// sample draws set i and drives it to saturation. Each sample gets its own
// RNG derived from (Seed, i) so results do not depend on scheduling.
func (e Estimator) sample(a core.Analyzer, bandwidthBPS float64, i int) (o sampleOutcome) {
	const mix = int64(-7046029254386353131) // golden-ratio mixer (0x9E3779B97F4A7C15 as int64)
	rng := rand.New(rand.NewSource(e.Seed ^ (mix * int64(i+1))))
	set, err := e.Generator.Draw(rng)
	if err != nil {
		o.err = err
		return o
	}
	sat, err := Saturate(set, a, bandwidthBPS, e.Saturate)
	if err != nil {
		o.err = fmt.Errorf("sample %d: %w", i, err)
		return o
	}
	if !sat.Feasible {
		o.infeasible = true
		return o
	}
	o.util = sat.Utilization
	return o
}
