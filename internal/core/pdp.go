package core

import (
	"errors"
	"fmt"
	"math"

	"ringsched/internal/frame"
	"ringsched/internal/message"
	"ringsched/internal/ring"
	"ringsched/internal/rma"
)

// Variant selects which implementation of the priority driven protocol is
// analyzed (Section 4.2 of the paper).
type Variant int

const (
	// Standard8025 is the implementation on the unmodified IEEE 802.5
	// protocol: the token holding timer admits one frame per token
	// capture, so the token-circulation overhead (Θ/2 on average) is paid
	// for every transmitted frame.
	Standard8025 Variant = iota + 1
	// Modified8025 is the paper's more efficient variant: after a frame,
	// the holder keeps transmitting while it is still the highest-priority
	// active station, so the token-circulation overhead is paid once per
	// message.
	Modified8025
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	switch v {
	case Standard8025:
		return "IEEE 802.5"
	case Modified8025:
		return "Modified 802.5"
	default:
		return fmt.Sprintf("Variant(%d)", int(v))
	}
}

// ErrBadVariant reports an unknown PDP variant.
var ErrBadVariant = errors.New("core: unknown PDP variant")

// PDP is the schedulability analyzer for the priority driven protocol
// implementing rate-monotonic scheduling (Theorem 4.1). Messages are split
// into frames (Frame spec); priorities are assigned rate-monotonically; the
// token holding timer admits one frame per capture.
type PDP struct {
	// Net is the physical ring (typically ring.IEEE8025(bw)).
	Net ring.Config
	// Frame is the frame format shared by synchronous and asynchronous
	// traffic (Section 4.2 assumes equal lengths).
	Frame frame.Spec
	// Variant selects the standard or modified implementation.
	Variant Variant
}

var _ Analyzer = PDP{}

// NewStandardPDP returns the Theorem 4.1 analyzer for the unmodified IEEE
// 802.5 implementation on the paper's 802.5 plant at the given bandwidth.
func NewStandardPDP(bandwidthBPS float64) PDP {
	return PDP{Net: ring.IEEE8025(bandwidthBPS), Frame: frame.PaperSpec(), Variant: Standard8025}
}

// NewModifiedPDP returns the Theorem 4.1 analyzer for the modified IEEE
// 802.5 implementation on the paper's 802.5 plant at the given bandwidth.
func NewModifiedPDP(bandwidthBPS float64) PDP {
	return PDP{Net: ring.IEEE8025(bandwidthBPS), Frame: frame.PaperSpec(), Variant: Modified8025}
}

// Name implements Analyzer.
func (p PDP) Name() string { return p.Variant.String() }

// Validate reports the first invalid configuration field, or nil.
func (p PDP) Validate() error {
	if err := p.Net.Validate(); err != nil {
		return err
	}
	if err := p.Frame.Validate(); err != nil {
		return err
	}
	if p.Variant != Standard8025 && p.Variant != Modified8025 {
		return ErrBadVariant
	}
	return nil
}

// Blocking is the Lemma 4.1 bound B = 2·max(F, Θ) on the total priority
// inversion a message can suffer from lower-priority traffic during its
// active interval.
func (p PDP) Blocking() float64 {
	return 2 * math.Max(p.Frame.Time(p.Net.BandwidthBPS), p.Net.Theta())
}

// AugmentedLength is C'_i: the worst-case medium time to transmit one
// message of the stream including framing, priority-arbitration and
// token-circulation overheads (Section 4.3).
func (p PDP) AugmentedLength(s message.Stream) float64 {
	return p.augmentedFromBits(s.LengthBits)
}

// augmentedFromBits computes C' for a payload of the given size in bits.
// The batched probes call it with pre-scaled bit counts, which is exactly
// what AugmentedLength sees on a Scale()d stream, keeping both paths
// bit-identical.
func (p PDP) augmentedFromBits(lengthBits float64) float64 {
	bw := p.Net.BandwidthBPS
	theta := p.Net.Theta()
	f := p.Frame.Time(bw)
	l, k := p.Frame.Split(lengthBits)
	lf, kf := float64(l), float64(k)

	// Token-circulation overhead: Θ/2 on average, per frame for the
	// standard protocol, once per message for the modified one.
	var tokenOverhead float64
	if p.Variant == Standard8025 {
		tokenOverhead = kf * theta / 2
	} else {
		tokenOverhead = theta / 2
	}

	if f <= theta {
		// The header of each frame returns only after Θ; the medium is
		// occupied for Θ per frame regardless of frame size.
		return kf*theta + tokenOverhead
	}

	// F > Θ: each of the L_i full frames occupies the medium for F. A
	// short last frame (K_i = L_i + 1) occupies the greater of its own
	// transmission time and Θ, because the holder must wait for its header
	// to return before arbitration can proceed.
	c := lengthBits / bw
	lastFrame := math.Max(c-lf*p.Frame.InfoTime(bw)+p.Frame.OvhdTime(bw), theta)
	return lf*f + tokenOverhead + (kf-lf)*lastFrame
}

// Tasks maps the message set, in rate-monotonic order, to the abstract
// periodic tasks (C'_i, P_i) analyzed by Theorem 4.1.
func (p PDP) Tasks(m message.Set) rma.TaskSet {
	sorted := m.SortRM()
	ts := make(rma.TaskSet, len(sorted))
	for i, s := range sorted {
		ts[i] = rma.Task{Cost: p.AugmentedLength(s), Period: s.Period}
	}
	return ts
}

// Schedulable implements Analyzer: the Theorem 4.1 criterion, evaluated by
// exact response-time analysis (equivalent to the scheduling-point form).
func (p PDP) Schedulable(m message.Set) (bool, error) {
	res, err := p.analyze(m)
	if err != nil {
		return false, err
	}
	return res.Schedulable, nil
}

// PDPStreamReport describes one stream's analysis outcome.
type PDPStreamReport struct {
	// Stream is the analyzed stream (RM order).
	Stream message.Stream
	// Frames is K_i, the number of frames per message.
	Frames int
	// AugmentedLength is C'_i in seconds.
	AugmentedLength float64
	// ResponseTime is the worst-case time from arrival to completion.
	ResponseTime float64
	// Schedulable reports whether ResponseTime ≤ Period.
	Schedulable bool
}

// PDPReport is the full analysis outcome for a message set.
type PDPReport struct {
	// Variant echoes the analyzed implementation.
	Variant Variant
	// Schedulable reports whether every stream is guaranteed.
	Schedulable bool
	// Blocking is B = 2·max(F, Θ).
	Blocking float64
	// Theta is Θ for the plant.
	Theta float64
	// FrameTime is F for the plant.
	FrameTime float64
	// Utilization is the payload utilization U(M).
	Utilization float64
	// AugmentedUtilization is Σ C'_i/P_i, the utilization including all
	// protocol overheads.
	AugmentedUtilization float64
	// Streams holds per-stream details in rate-monotonic order.
	Streams []PDPStreamReport
}

// Report runs the full Theorem 4.1 analysis and returns per-stream detail.
func (p PDP) Report(m message.Set) (PDPReport, error) {
	return p.reportWith(m, CleanFaultBudget())
}

// reportWith is the shared body of Report and FaultReport: the analysis
// with blocking B' = B + Nloss·R and every augmented length inflated by
// 1/Availability. The clean budget charges B' = B and scale 1 exactly, so
// Report's results are bit-identical to the pre-fault-aware analysis.
func (p PDP) reportWith(m message.Set, b FaultBudget) (PDPReport, error) {
	blocking := p.RecoveryBlocking(b)
	scale := 1 / b.Availability
	res, err := p.analyzeWith(m, blocking, scale)
	if err != nil {
		return PDPReport{}, err
	}
	sorted := m.SortRM()
	rep := PDPReport{
		Variant:     p.Variant,
		Schedulable: res.Schedulable,
		Blocking:    blocking,
		Theta:       p.Net.Theta(),
		FrameTime:   p.Frame.Time(p.Net.BandwidthBPS),
		Utilization: m.Utilization(p.Net.BandwidthBPS),
		Streams:     make([]PDPStreamReport, len(sorted)),
	}
	for i, s := range sorted {
		_, k := p.Frame.Split(s.LengthBits)
		cAug := p.AugmentedLength(s) * scale
		rep.AugmentedUtilization += cAug / s.Period
		rep.Streams[i] = PDPStreamReport{
			Stream:          s,
			Frames:          k,
			AugmentedLength: cAug,
			ResponseTime:    res.ResponseTimes[i],
			Schedulable:     res.ResponseTimes[i] <= s.Period,
		}
	}
	return rep, nil
}

func (p PDP) analyze(m message.Set) (rma.Result, error) {
	return p.analyzeWith(m, p.Blocking(), 1)
}

// analyzeWith runs the response-time analysis with an explicit blocking
// term and task-cost scale factor (the degraded-mode knobs).
func (p PDP) analyzeWith(m message.Set, blocking, costScale float64) (rma.Result, error) {
	if err := p.Validate(); err != nil {
		return rma.Result{}, err
	}
	if err := m.Validate(); err != nil {
		return rma.Result{}, err
	}
	ts := p.Tasks(m)
	if costScale != 1 {
		for i := range ts {
			ts[i].Cost *= costScale
		}
	}
	return rma.ResponseTimeAnalysis(ts, blocking)
}
