package core

import (
	"math/rand"
	"testing"

	"ringsched/internal/message"
)

// benchProbeSet draws the paper's 100-stream workload for the probe
// micro-benchmarks.
func benchProbeSet(seed int64) message.Set {
	gen := message.Generator{Streams: 100, MeanPeriod: 100e-3, PeriodRatio: 10}
	set, err := gen.Draw(rand.New(rand.NewSource(seed)))
	if err != nil {
		panic(err)
	}
	return set
}

// probeScales mirrors a saturation search's bracketing ladder.
var probeScales = []float64{0.5, 1.0, 2.0, 1.5, 1.25, 1.1, 1.05, 0.9}

func benchProbe(b *testing.B, ba BatchAnalyzer) {
	b.Helper()
	set := benchProbeSet(1)
	probe, release, err := ba.NewProbe(set)
	if err != nil {
		b.Fatal(err)
	}
	defer release()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := probe.Schedulable(probeScales[i%len(probeScales)]); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPDPProbe measures one scaled Theorem 4.1 probe on a bound set
// (augmented-cost recompute + workspace exact test, no allocation).
func BenchmarkPDPProbe(b *testing.B) { benchProbe(b, NewModifiedPDP(16e6)) }

// BenchmarkTTPProbe measures one scaled Theorem 5.1 probe: the local
// synchronous-bandwidth allocation and the schedulability criterion are
// recomputed per scale without allocating.
func BenchmarkTTPProbe(b *testing.B) { benchProbe(b, NewTTP(100e6)) }

// BenchmarkTTPProbeBind measures NewProbe+release round trips — the
// sync.Pool recycling cost a sweep pays once per Monte Carlo sample.
func BenchmarkTTPProbeBind(b *testing.B) {
	ttp := NewTTP(100e6)
	set := benchProbeSet(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		probe, release, err := ttp.NewProbe(set)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := probe.Schedulable(1.0); err != nil {
			b.Fatal(err)
		}
		release()
	}
}

// BenchmarkAnalyzeBatch measures the batched entry point end to end
// (bind once, probe the whole scale ladder, release).
func BenchmarkAnalyzeBatch(b *testing.B) {
	pdp := NewModifiedPDP(16e6)
	set := benchProbeSet(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := AnalyzeBatch(pdp, set, probeScales); err != nil {
			b.Fatal(err)
		}
	}
}
