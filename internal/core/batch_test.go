package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	"ringsched/internal/frame"
	"ringsched/internal/message"
	"ringsched/internal/ring"
)

// randomSet draws a message set with mixed periods and payloads, including
// occasional equal periods, sized for fast per-case analysis.
func randomSet(rng *rand.Rand) message.Set {
	n := 1 + rng.Intn(16)
	set := make(message.Set, n)
	var period float64
	for i := range set {
		if i == 0 || rng.Intn(8) != 0 {
			period = 20e-3 + rng.Float64()*180e-3
		}
		set[i] = message.Stream{
			Name:       fmt.Sprintf("S%d", i+1),
			Period:     period,
			LengthBits: 1 + rng.Float64()*20000,
		}
	}
	return set
}

// parityAnalyzers is the protocol matrix the differential suite runs over.
func parityAnalyzers() []BatchAnalyzer {
	return []BatchAnalyzer{
		NewStandardPDP(4e6),
		NewModifiedPDP(4e6),
		NewModifiedPDP(16e6),
		NewTTP(4e6),
		NewTTP(16e6),
		IdealRM{},
	}
}

// TestProbeDifferentialParity is the core half of the differential suite:
// for every protocol analyzer, over 1000+ seeded random message sets, the
// pooled probe's verdict at each scale must equal the reference
// Schedulable(m.Scale(s)) verdict.
func TestProbeDifferentialParity(t *testing.T) {
	sets := 1100
	if testing.Short() {
		sets = 200
	}
	scales := []float64{1, 2, 4, 8, 16, 5.3, 2.9, 1.3, 0.7, 0.31, 0.11, 1}
	for _, a := range parityAnalyzers() {
		a := a
		t.Run(a.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(1993))
			for k := 0; k < sets; k++ {
				m := randomSet(rng)
				probe, release, err := a.NewProbe(m)
				if err != nil {
					t.Fatalf("set %d: NewProbe: %v", k, err)
				}
				for _, s := range scales {
					want, err := a.Schedulable(m.Scale(s))
					if err != nil {
						release()
						t.Fatalf("set %d scale %g: reference: %v", k, s, err)
					}
					got, err := probe.Schedulable(s)
					if err != nil {
						release()
						t.Fatalf("set %d scale %g: probe: %v", k, s, err)
					}
					if got != want {
						release()
						t.Fatalf("set %d scale %g: probe verdict %v, reference %v (set %+v)",
							k, s, got, want, m)
					}
				}
				release()
			}
		})
	}
}

// TestProbeErrorParity checks the degenerate-scale error path: a probe must
// report the same error the reference path reports for scales that destroy
// the payloads (zero, negative, NaN, overflow to +Inf).
func TestProbeErrorParity(t *testing.T) {
	m := message.Set{
		{Name: "a", Period: 50e-3, LengthBits: 4096},
		{Name: "b", Period: 100e-3, LengthBits: 65536},
	}
	for _, a := range parityAnalyzers() {
		a := a
		t.Run(a.Name(), func(t *testing.T) {
			probe, release, err := a.NewProbe(m)
			if err != nil {
				t.Fatalf("NewProbe: %v", err)
			}
			defer release()
			// 1e306 overflows the payloads to +Inf: the probe must report
			// the same first-invalid-stream error as the reference, not a
			// verdict.
			for _, s := range []float64{0, -1, math.NaN(), 1e306} {
				_, refErr := a.Schedulable(m.Scale(s))
				if refErr == nil {
					t.Fatalf("scale %g: reference accepted a degenerate scale", s)
				}
				_, probeErr := probe.Schedulable(s)
				if probeErr == nil {
					t.Fatalf("scale %g: probe accepted a degenerate scale", s)
				}
				if probeErr.Error() != refErr.Error() {
					t.Errorf("scale %g: probe error %q, reference %q", s, probeErr, refErr)
				}
				if !errors.Is(probeErr, message.ErrBadLength) {
					t.Errorf("scale %g: probe error %v does not wrap ErrBadLength", s, probeErr)
				}
			}
			// The probe must still answer correctly after error probes.
			want, err := a.Schedulable(m.Scale(1e-3))
			if err != nil {
				t.Fatalf("reference after errors: %v", err)
			}
			got, err := probe.Schedulable(1e-3)
			if err != nil {
				t.Fatalf("probe after errors: %v", err)
			}
			if got != want {
				t.Errorf("verdict after error probes: %v, reference %v", got, want)
			}
		})
	}
}

// TestProbeFThetaBoundary pins probe parity exactly at the F ≈ Θ boundary,
// where AugmentedLength switches between the header-return-bound branch
// (F ≤ Θ) and the transmission-bound branch (F > Θ). With zero cable length
// both F and Θ are pure bit counts over the bandwidth, so the boundary can
// be hit exactly.
func TestProbeFThetaBoundary(t *testing.T) {
	spec := frame.PaperSpec() // 624 total bits
	mkNet := func(latencyBits float64) ring.Config {
		net := ring.Tiny(10).WithBandwidth(4e6)
		net.BitDelayPerStation = latencyBits / 10
		net.TokenBits = 0 // all ring latency in station delay, none in the token
		return net
	}
	cases := []struct {
		name string
		net  ring.Config
	}{
		{"F>Theta", mkNet(spec.TotalBits() - 100)},
		{"F==Theta", mkNet(spec.TotalBits())},
		{"F<Theta", mkNet(spec.TotalBits() + 100)},
	}
	rng := rand.New(rand.NewSource(7))
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, variant := range []Variant{Standard8025, Modified8025} {
				a := PDP{Net: tc.net, Frame: spec, Variant: variant}
				if got := a.Frame.Time(a.Net.BandwidthBPS) <= a.Net.Theta(); got != (tc.name != "F>Theta") {
					t.Fatalf("boundary setup wrong: F=%g Theta=%g", a.Frame.Time(a.Net.BandwidthBPS), a.Net.Theta())
				}
				for k := 0; k < 50; k++ {
					m := randomSet(rng)
					probe, release, err := a.NewProbe(m)
					if err != nil {
						t.Fatalf("NewProbe: %v", err)
					}
					for _, s := range []float64{0.5, 1, 2, 4, 8} {
						want, err := a.Schedulable(m.Scale(s))
						if err != nil {
							release()
							t.Fatalf("reference: %v", err)
						}
						got, err := probe.Schedulable(s)
						if err != nil {
							release()
							t.Fatalf("probe: %v", err)
						}
						if got != want {
							release()
							t.Fatalf("%v scale %g: probe %v, reference %v", variant, s, got, want)
						}
					}
					release()
				}
			}
		})
	}
}

// opaque hides an analyzer's BatchAnalyzer implementation so AnalyzeBatch
// exercises its fallback path.
type opaque struct{ a Analyzer }

func (o opaque) Name() string                            { return o.a.Name() }
func (o opaque) Schedulable(m message.Set) (bool, error) { return o.a.Schedulable(m) }

// TestAnalyzeBatchFallbackParity checks that AnalyzeBatch returns the same
// verdicts through the pooled fast path and through the plain per-scale
// fallback.
func TestAnalyzeBatchFallbackParity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	scales := []float64{0.25, 0.5, 1, 2, 4, 8}
	for _, a := range parityAnalyzers() {
		for k := 0; k < 40; k++ {
			m := randomSet(rng)
			fast, err := AnalyzeBatch(a, m, scales)
			if err != nil {
				t.Fatalf("%s set %d: fast: %v", a.Name(), k, err)
			}
			slow, err := AnalyzeBatch(opaque{a}, m, scales)
			if err != nil {
				t.Fatalf("%s set %d: fallback: %v", a.Name(), k, err)
			}
			for i := range scales {
				if fast[i] != slow[i] {
					t.Fatalf("%s set %d scale %g: fast %v, fallback %v",
						a.Name(), k, scales[i], fast[i], slow[i])
				}
			}
		}
	}
}

// TestAnalyzeBatchEmptyScales pins the trivial contract.
func TestAnalyzeBatchEmptyScales(t *testing.T) {
	m := message.Set{{Name: "a", Period: 10e-3, LengthBits: 100}}
	verdicts, err := AnalyzeBatch(NewModifiedPDP(4e6), m, nil)
	if err != nil {
		t.Fatalf("AnalyzeBatch: %v", err)
	}
	if len(verdicts) != 0 {
		t.Fatalf("verdicts %v, want empty", verdicts)
	}
}
