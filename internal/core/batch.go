package core

import "ringsched/internal/message"

// Probe evaluates one bound message set at varying common payload-scale
// factors. It is the allocation-free inner loop of the breakdown
// saturation search: Schedulable(s) returns exactly what the analyzer's
// Schedulable(m.Scale(s)) returns — same verdicts bit-for-bit, same errors
// for degenerate scales — without re-validating, re-sorting, or allocating
// per call.
//
// A Probe is bound to the message set passed to NewProbe and must not be
// shared between goroutines.
type Probe interface {
	Schedulable(scale float64) (bool, error)
}

// BatchAnalyzer is implemented by analyzers that provide an
// allocation-free scaled-probe path. The protocol analyzers (PDP, TTP,
// IdealRM) all do; their probes draw reusable workspaces from per-type
// sync.Pools, so a sweep's worker goroutines recycle the same few
// workspaces across millions of samples.
type BatchAnalyzer interface {
	Analyzer
	// NewProbe validates the analyzer and the set once and binds them to a
	// pooled workspace. The release function returns the workspace to the
	// pool; call it (exactly once) when done probing. The set must not be
	// mutated while the probe is live.
	NewProbe(m message.Set) (probe Probe, release func(), err error)
}

// AnalyzeBatch evaluates one message set at each payload scale and returns
// the per-scale verdicts. For BatchAnalyzers the whole batch shares one
// pooled workspace; plain analyzers fall back to per-scale
// Schedulable(m.Scale(s)) calls. Verdicts are identical either way — the
// fast path is bit-compatible by construction, which the differential
// property suite asserts.
func AnalyzeBatch(a Analyzer, m message.Set, scales []float64) ([]bool, error) {
	verdicts := make([]bool, len(scales))
	if ba, ok := a.(BatchAnalyzer); ok {
		probe, release, err := ba.NewProbe(m)
		if err != nil {
			return nil, err
		}
		defer release()
		for i, s := range scales {
			verdicts[i], err = probe.Schedulable(s)
			if err != nil {
				return nil, err
			}
		}
		return verdicts, nil
	}
	for i, s := range scales {
		ok, err := a.Schedulable(m.Scale(s))
		if err != nil {
			return nil, err
		}
		verdicts[i] = ok
	}
	return verdicts, nil
}
