package core

import (
	"errors"
	"math"

	"ringsched/internal/faults"
	"ringsched/internal/message"
)

// ErrBadFaultBudget reports an unusable degraded-mode budget.
var ErrBadFaultBudget = errors.New(
	"core: fault budget requires Losses, Recovery ≥ 0 and Availability in (0, 1]")

// FaultBudget folds a fault model into the quantities the degraded-mode
// analyses charge: how many claim/beacon recoveries to budget in one
// analysis window, what each costs, and what fraction of the medium
// survives the background fault processes. CleanFaultBudget() describes a
// healthy ring; FaultBudgetFor on the analyzers derives a budget from a
// faults.Model.
type FaultBudget struct {
	// Losses is Nloss: the number of token-loss recoveries budgeted within
	// one analysis window (the longest period of the set). It enters the
	// PDP criterion as extra blocking, B' = B + Nloss·R (Lemma 4.1 treats
	// a recovery exactly like a lower-priority frame holding the medium).
	Losses float64
	// Recovery is R, the medium dead time of one claim/beacon recovery.
	Recovery float64
	// Availability is A ∈ (0, 1]: the long-run fraction of medium capacity
	// that survives frame corruption (CRC retransmissions) and crash
	// bypass reconfiguration. The TTP criterion discounts the rotation
	// budget with it — q_i = ⌊A·P_i/TTRT⌋ — and the PDP criterion inflates
	// every augmented length by 1/A.
	Availability float64
}

// CleanFaultBudget is the healthy-ring budget: no losses, full
// availability. Every degraded-mode analysis reproduces the clean result
// bit-identically under it.
func CleanFaultBudget() FaultBudget { return FaultBudget{Availability: 1} }

// Clean reports whether the budget charges nothing.
func (b FaultBudget) Clean() bool {
	return b.Losses == 0 && b.Availability == 1
}

// Validate reports whether the budget is usable.
func (b FaultBudget) Validate() error {
	if b.Losses < 0 || math.IsNaN(b.Losses) || math.IsInf(b.Losses, 0) ||
		b.Recovery < 0 || math.IsNaN(b.Recovery) || math.IsInf(b.Recovery, 0) ||
		b.Availability <= 0 || b.Availability > 1 || math.IsNaN(b.Availability) {
		return ErrBadFaultBudget
	}
	return nil
}

// minAvailability keeps a saturated fault model analyzable: an availability
// this low makes every non-empty set unschedulable instead of dividing by
// zero.
const minAvailability = 1e-9

// mediumAvailability combines the steady-state corruption fraction of the
// channel with the ring time spent in bypass reconfiguration (two
// transitions per crash, Crash.Rate per station per second) and any
// additional loss-recovery fraction the caller charges against the medium.
func mediumAvailability(fm *faults.Model, stations int, lossFraction float64) float64 {
	pi := fm.Channel.SteadyStateCorruption()
	bypass := 2 * fm.Crash.Rate * float64(stations) * fm.Crash.Bypass
	a := (1 - lossFraction - bypass) * (1 - pi)
	return math.Min(1, math.Max(a, minAvailability))
}

// FaultBudgetFor derives the Theorem 4.1 degraded-mode budget from a fault
// model: the PDP simulator rolls one loss opportunity per synchronous frame
// service, so Nloss is the loss probability times the frame services the
// set demands over the longest period; R comes from the claim/beacon
// pricing on this plant's Θ; corruption and crash bypass discount the
// availability. An inactive model yields CleanFaultBudget().
func (p PDP) FaultBudgetFor(fm *faults.Model, m message.Set) FaultBudget {
	if !fm.Active() {
		return CleanFaultBudget()
	}
	var frameRate float64
	for _, s := range m {
		_, k := p.Frame.Split(s.LengthBits)
		frameRate += float64(k) / s.Period
	}
	return FaultBudget{
		Losses:       fm.TokenLossProb * frameRate * m.MaxPeriod(),
		Recovery:     fm.Recovery.Duration(p.Net.Theta()),
		Availability: mediumAvailability(fm, p.Net.Stations, 0),
	}
}

// RecoveryBlocking is the recovery-augmented blocking term
// B' = B + Nloss·R: each budgeted claim/beacon recovery holds the medium
// against a pending message exactly like the lower-priority traffic of
// Lemma 4.1.
func (p PDP) RecoveryBlocking(b FaultBudget) float64 {
	return p.Blocking() + b.Losses*b.Recovery
}

// FaultReport runs the Theorem 4.1 analysis under a degraded-mode budget:
// blocking augmented to B' = B + Nloss·R and every augmented length
// inflated by 1/Availability (the retransmission and reconfiguration tax).
// Under CleanFaultBudget() it reproduces Report bit-identically.
func (p PDP) FaultReport(m message.Set, b FaultBudget) (PDPReport, error) {
	if err := b.Validate(); err != nil {
		return PDPReport{}, err
	}
	return p.reportWith(m, b)
}

// FaultBudgetFor derives the Theorem 5.1 degraded-mode budget from a fault
// model: the TTP simulator rolls one loss opportunity per station visit and
// a loaded ring completes one rotation per TTRT, so the loss process eats a
// TokenLossProb·n·R/TTRT fraction of the medium; corruption and crash
// bypass discount the rest. An inactive model yields CleanFaultBudget().
func (t TTP) FaultBudgetFor(fm *faults.Model, m message.Set) FaultBudget {
	if !fm.Active() {
		return CleanFaultBudget()
	}
	rec := fm.Recovery.Duration(t.Net.Theta())
	ttrt := t.SelectTTRT(m)
	n := float64(t.Net.Stations)
	lossFrac := fm.TokenLossProb * n * rec / ttrt
	return FaultBudget{
		Losses:       fm.TokenLossProb * n * m.MaxPeriod() / ttrt,
		Recovery:     rec,
		Availability: mediumAvailability(fm, t.Net.Stations, lossFrac),
	}
}

// FaultReport runs the Theorem 5.1 analysis under a degraded-mode budget:
// the guaranteed token visits shrink to q_i = ⌊A·P_i/TTRT⌋ and the
// worst-case response stretches to q_i·TTRT/A, so allocations grow and the
// Σh_i ≤ TTRT − θ test tightens. Under CleanFaultBudget() it reproduces
// Report bit-identically.
func (t TTP) FaultReport(m message.Set, b FaultBudget) (TTPReport, error) {
	if err := b.Validate(); err != nil {
		return TTPReport{}, err
	}
	return t.report(m, b.Availability)
}
