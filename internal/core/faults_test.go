package core

import (
	"math"
	"reflect"
	"testing"

	"ringsched/internal/faults"
	"ringsched/internal/message"
)

func faultTestSet() message.Set {
	return message.Set{
		{Name: "x", Period: 20e-3, LengthBits: 4000},
		{Name: "y", Period: 60e-3, LengthBits: 9000},
		{Name: "z", Period: 40e-3, LengthBits: 1000},
	}
}

func TestFaultBudgetValidate(t *testing.T) {
	cases := []struct {
		name string
		b    FaultBudget
		ok   bool
	}{
		{"clean", CleanFaultBudget(), true},
		{"typical", FaultBudget{Losses: 3, Recovery: 1e-3, Availability: 0.9}, true},
		{"negative losses", FaultBudget{Losses: -1, Availability: 1}, false},
		{"negative recovery", FaultBudget{Recovery: -1, Availability: 1}, false},
		{"zero availability", FaultBudget{}, false},
		{"availability above one", FaultBudget{Availability: 1.5}, false},
		{"NaN availability", FaultBudget{Availability: math.NaN()}, false},
		{"infinite losses", FaultBudget{Losses: math.Inf(1), Availability: 1}, false},
	}
	for _, tc := range cases {
		if err := tc.b.Validate(); (err == nil) != tc.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tc.name, err, tc.ok)
		}
	}
	if !CleanFaultBudget().Clean() {
		t.Error("CleanFaultBudget not Clean")
	}
	if (FaultBudget{Losses: 1, Availability: 1}).Clean() {
		t.Error("lossy budget reported Clean")
	}
}

// The acceptance bar: under the clean budget, the fault-aware analyses must
// reproduce the clean reports bit-identically — not approximately.
func TestFaultReportCleanBudgetBitIdentical(t *testing.T) {
	set := faultTestSet()
	for _, p := range []PDP{NewStandardPDP(4e6), NewModifiedPDP(16e6)} {
		clean, err := p.Report(set)
		if err != nil {
			t.Fatal(err)
		}
		faulty, err := p.FaultReport(set, CleanFaultBudget())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(clean, faulty) {
			t.Errorf("%s: FaultReport(clean) diverges from Report", p.Name())
		}
	}
	tt := NewTTP(100e6)
	clean, err := tt.Report(ttpTestSet())
	if err != nil {
		t.Fatal(err)
	}
	faulty, err := tt.FaultReport(ttpTestSet(), CleanFaultBudget())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(clean, faulty) {
		t.Error("TTP FaultReport(clean) diverges from Report")
	}
	if clean.Availability != 1 {
		t.Errorf("clean TTP availability = %v, want 1", clean.Availability)
	}
}

func TestFaultBudgetForInactiveModelIsClean(t *testing.T) {
	p := NewStandardPDP(4e6)
	if b := p.FaultBudgetFor(nil, faultTestSet()); !b.Clean() {
		t.Errorf("nil model budget = %+v, want clean", b)
	}
	if b := p.FaultBudgetFor(&faults.Model{}, faultTestSet()); !b.Clean() {
		t.Errorf("zero model budget = %+v, want clean", b)
	}
	tt := NewTTP(100e6)
	if b := tt.FaultBudgetFor(nil, ttpTestSet()); !b.Clean() {
		t.Errorf("nil model TTP budget = %+v, want clean", b)
	}
}

func TestPDPRecoveryBlockingGrowsWithBudget(t *testing.T) {
	p := NewStandardPDP(4e6)
	base := p.Blocking()
	b := FaultBudget{Losses: 2, Recovery: 3e-3, Availability: 1}
	if got, want := p.RecoveryBlocking(b), base+6e-3; math.Abs(got-want) > 1e-12 {
		t.Errorf("RecoveryBlocking = %v, want %v", got, want)
	}
	if got := p.RecoveryBlocking(CleanFaultBudget()); got != base {
		t.Errorf("clean RecoveryBlocking = %v, want exactly %v", got, base)
	}
}

func TestPDPFaultReportDegradesMonotonically(t *testing.T) {
	set := faultTestSet()
	p := NewModifiedPDP(16e6)
	p.Net = p.Net.WithStations(3)
	prev := -1.0
	for _, loss := range []float64{0, 1e-4, 1e-3, 1e-2} {
		fm := &faults.Model{TokenLossProb: loss}
		b := p.FaultBudgetFor(fm, set)
		rep, err := p.FaultReport(set, b)
		if err != nil {
			t.Fatal(err)
		}
		// Response time of the lowest-priority stream grows with the budget.
		rt := rep.Streams[len(rep.Streams)-1].ResponseTime
		if rt < prev {
			t.Errorf("loss=%g: response %v < previous %v", loss, rt, prev)
		}
		prev = rt
	}
}

func TestPDPFaultReportSevereBudgetUnschedulable(t *testing.T) {
	set := faultTestSet()
	p := NewModifiedPDP(16e6)
	clean, err := p.Report(set)
	if err != nil {
		t.Fatal(err)
	}
	if !clean.Schedulable {
		t.Fatal("setup: clean set should be schedulable")
	}
	// Availability near the floor makes every cost astronomically large.
	rep, err := p.FaultReport(set, FaultBudget{Availability: 1e-9})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schedulable {
		t.Error("near-zero availability reported schedulable")
	}
	// A blocking term longer than the shortest period also kills it.
	rep, err = p.FaultReport(set, FaultBudget{Losses: 10, Recovery: 5e-3, Availability: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schedulable {
		t.Error("50 ms of recovery blocking reported schedulable")
	}
}

func TestTTPFaultReportDiscountsRotations(t *testing.T) {
	set := ttpTestSet()
	tt := NewTTP(100e6)
	clean, err := tt.Report(set)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := tt.FaultReport(set, FaultBudget{Availability: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Availability != 0.5 {
		t.Errorf("Availability = %v, want 0.5", rep.Availability)
	}
	shrunk := false
	for i := range rep.Streams {
		if rep.Streams[i].Q > clean.Streams[i].Q {
			t.Errorf("stream %d: degraded Q %d > clean Q %d",
				i, rep.Streams[i].Q, clean.Streams[i].Q)
		}
		if rep.Streams[i].Q < clean.Streams[i].Q {
			shrunk = true
		}
		// The bound stays a deadline guarantee: q = ⌊A·P/TTRT⌋ keeps
		// q·TTRT/A ≤ P even under the discount.
		if r := rep.Streams[i].WorstCaseResponse; r > rep.Streams[i].Stream.Period {
			t.Errorf("stream %d: degraded response %v exceeds period %v",
				i, r, rep.Streams[i].Stream.Period)
		}
	}
	if !shrunk {
		t.Error("halved availability shrank no stream's guaranteed visits")
	}
	if rep.TotalAllocation <= clean.TotalAllocation {
		t.Errorf("degraded Σh %v not above clean %v",
			rep.TotalAllocation, clean.TotalAllocation)
	}
}

func TestTTPFaultBudgetForChargesLossFraction(t *testing.T) {
	set := ttpTestSet()
	tt := NewTTP(100e6)
	fm := &faults.Model{TokenLossProb: 1e-3, Recovery: faults.Recovery{Fixed: 1e-3}}
	b := tt.FaultBudgetFor(fm, set)
	if b.Availability >= 1 {
		t.Errorf("lossy model availability = %v, want < 1", b.Availability)
	}
	if b.Losses <= 0 || b.Recovery != 1e-3 {
		t.Errorf("budget = %+v, want positive losses and Recovery = 1e-3", b)
	}
	if err := b.Validate(); err != nil {
		t.Errorf("derived budget invalid: %v", err)
	}
}

func TestFaultReportRejectsInvalidBudget(t *testing.T) {
	set := faultTestSet()
	p := NewStandardPDP(4e6)
	if _, err := p.FaultReport(set, FaultBudget{}); err == nil {
		t.Error("PDP accepted zero-availability budget")
	}
	tt := NewTTP(100e6)
	if _, err := tt.FaultReport(ttpTestSet(), FaultBudget{Availability: -1}); err == nil {
		t.Error("TTP accepted negative-availability budget")
	}
}

func TestMediumAvailabilityClamps(t *testing.T) {
	fm := &faults.Model{
		Channel: faults.Channel{Kind: faults.ChannelBernoulli, CorruptProb: 1},
	}
	if a := mediumAvailability(fm, 10, 0); a != minAvailability {
		t.Errorf("fully corrupted channel availability = %v, want floor %v", a, minAvailability)
	}
	if a := mediumAvailability(&faults.Model{}, 10, 0); a != 1 {
		t.Errorf("clean model availability = %v, want 1", a)
	}
	crash := &faults.Model{Crash: faults.Crash{Rate: 1e6, MeanDowntime: 1, Bypass: 1}}
	if a := mediumAvailability(crash, 100, 0); a != minAvailability {
		t.Errorf("crash-saturated availability = %v, want floor", a)
	}
}
