package core

import (
	"fmt"
	"math"
	"sort"

	"ringsched/internal/frame"
	"ringsched/internal/message"
	"ringsched/internal/topology"
)

// This file composes the paper's single-ring verdicts into end-to-end
// guarantees for bridged ring-of-rings topologies, following the network
// calculus approach of Amari & Mifdaoui ("Worst-case timing analysis of
// ring networks with cyclic dependencies", PAPERS.md).
//
// Each flow is a periodic source: arrival curve α(t) = L + ρ·t with burst
// L = LengthBits and rate ρ = L/P. Inside a ring, Kamat & Zhao's exact
// analysis bounds the flow's response time D; traversing the ring inflates
// the burst to L + ρ·D. Each bridge direction is a FIFO rate-latency
// server (rate C, fixed forwarding latency T): the aggregate of the flows
// entering it is delayed by at most T + Σσ/C, is stable iff Σρ ≤ C, and
// never queues more than Σσ bits.
//
// The key structural choice is "shaping for free": every bridge re-shapes
// each transit flow to its original periodic profile (at most L bits per
// period P) before injecting it into the next ring. Re-shaping to a flow's
// own source curve adds nothing to its delay bound, but it means (a) every
// ring sees only periodic/sporadic streams, so the per-ring Kamat–Zhao
// analysis stays exact, and (b) ring delays never depend on bridge delays,
// so the cyclic fixed-point iteration of the general feed-forward analysis
// collapses into one pass: per-ring bounds, then bridge bounds, then sums.
//
// The timed token protocol needs one more idea to compose: its local
// allocation scheme sizes h_i so a message completes within q_i·TTRT,
// which is within one TTRT of the stream's period — the whole deadline is
// spent in one ring, leaving nothing for the rest of the route. So TTP
// rings analyze transit flows under deadline partitioning: a flow crossing
// k rings presents a local deadline of Period/k to each, which inflates
// its synchronous allocation (q_i = ⌊(P/k)/TTRT⌋) and shrinks its
// per-ring bound to q_i·TTRT ≤ P/k. A single-ring path has k = 1, so the
// 1-node special case is untouched. PDP rings need no partitioning: their
// response-time bound is computed from actual interference, not assigned
// from the deadline. Arrival rates are not overstated — partitioning
// tightens only deadlines; re-shaped transit arrivals keep their true
// minimum inter-arrival of one period, which both analyses admit as
// sporadic arrivals.
//
// The end-to-end bound of a flow is the sum of its per-ring response
// bounds and per-bridge delay bounds along its route; it meets its
// deadline iff that sum is at most its period.

// TopologyRingVerdict is one ring's verdict within a topology analysis.
// Exactly one of PDP/TTP is set for a ring that carries streams; a ring
// with no flows routed over it is trivially schedulable and carries
// neither.
type TopologyRingVerdict struct {
	// Name and Protocol echo the ring node.
	Name     string
	Protocol topology.Protocol
	// Set is the analyzed message set — the ring's local flows plus every
	// transit flow routed across it, in canonical flow order.
	Set message.Set
	// Schedulable is the ring-local Kamat–Zhao verdict.
	Schedulable bool
	// Utilization is the payload utilization of Set on this ring.
	Utilization float64
	// PDP and TTP hold the full per-ring report for the ring's protocol.
	PDP *PDPReport
	TTP *TTPReport
}

// TopologyBridgeVerdict is the network-calculus verdict for one direction
// of one bridge. Only directions that carry at least one flow are
// reported.
type TopologyBridgeVerdict struct {
	// From and To name the rings this direction forwards between.
	From, To string
	// RateBPS is the resolved forwarding rate C.
	RateBPS float64
	// Latency is the fixed forwarding latency T.
	Latency float64
	// Flows counts the flows aggregated on this direction.
	Flows int
	// ArrivalRateBPS is Σρ over those flows.
	ArrivalRateBPS float64
	// BurstBits is Σσ over those flows at the bridge input, after burst
	// inflation by the upstream ring's response bound. It is also the
	// direction's worst-case backlog.
	BurstBits float64
	// Stable reports Σρ ≤ C with a finite aggregate burst; an unstable
	// direction has an unbounded queue and DelayBound +Inf.
	Stable bool
	// DelayBound is the FIFO aggregate delay bound T + Σσ/C.
	DelayBound float64
	// BufferBits echoes the configured buffer limit (0 = unlimited);
	// BufferOK reports whether the worst-case backlog fits it.
	BufferBits float64
	BufferOK   bool
}

// TopologyFlowVerdict is one flow's end-to-end verdict.
type TopologyFlowVerdict struct {
	// Flow echoes the canonical flow.
	Flow topology.Flow
	// Path lists the ring names the flow traverses, source first.
	Path []string
	// RingDelays and BridgeDelays are the per-hop delay bounds along the
	// path (len(Path) rings, len(Path)−1 bridges). An unschedulable hop
	// contributes +Inf.
	RingDelays   []float64
	BridgeDelays []float64
	// Bound is the end-to-end delay bound: the sum of every hop.
	Bound float64
	// Bounded reports whether Bound is finite.
	Bounded bool
	// Schedulable reports the end-to-end guarantee: a finite bound within
	// the flow's period, with every bridge buffer on the path sufficient.
	Schedulable bool
}

// TopologyReport is the full analysis outcome for a bridged topology.
type TopologyReport struct {
	// Topology is the canonical topology the verdicts describe.
	Topology topology.Topology
	// Rings holds per-ring verdicts in canonical ring order.
	Rings []TopologyRingVerdict
	// Bridges holds per-direction bridge verdicts, sorted by (From, To).
	Bridges []TopologyBridgeVerdict
	// Flows holds per-flow end-to-end verdicts in canonical flow order.
	Flows []TopologyFlowVerdict
	// Schedulable reports whether every ring is locally schedulable and
	// every flow meets its end-to-end deadline.
	Schedulable bool
	// Bounded reports whether every flow has a finite end-to-end bound.
	Bounded bool
}

// AnalyzerForNode builds the single-ring analyzer for one topology node,
// exactly as the single-ring request path builds it: the node's plant, the
// paper's frame format, and the station count bumped to the stream count
// when more streams than stations are carried. A 1-node topology therefore
// reproduces the direct PDP/TTP analysis bit for bit.
func AnalyzerForNode(n topology.Node, streams int) Analyzer {
	switch n.Protocol {
	case topology.Standard8025, topology.Modified8025:
		p := PDP{Net: n.Ring, Frame: frame.PaperSpec(), Variant: Standard8025}
		if n.Protocol == topology.Modified8025 {
			p.Variant = Modified8025
		}
		if streams > p.Net.Stations {
			p.Net = p.Net.WithStations(streams)
		}
		return p
	default:
		t := TTP{Net: n.Ring, SyncFrame: frame.PaperSpec(), AsyncFrame: frame.PaperSpec(), Rule: TTRTSqrtHeuristic}
		if streams > t.Net.Stations {
			t.Net = t.Net.WithStations(streams)
		}
		return t
	}
}

// RingSets routes every flow and returns the per-ring message sets: ring
// i's local flows plus every transit flow crossing it, in canonical flow
// order, named after their flows. The topology must be canonical.
func RingSets(t topology.Topology) ([]message.Set, [][]int, error) {
	routes, err := t.Routes()
	if err != nil {
		return nil, nil, err
	}
	sets := make([]message.Set, len(t.Nodes))
	for fi, f := range t.Flows {
		for _, ri := range routes[fi] {
			sets[ri] = append(sets[ri], message.Stream{
				Name:       f.Name,
				Period:     f.Period,
				LengthBits: f.LengthBits,
			})
		}
	}
	return sets, routes, nil
}

// bridgeDir keys one direction of one bridge.
type bridgeDir struct {
	bridge  int
	forward bool // true when forwarding from Bridges[bridge].A to .B
}

// AnalyzeTopology runs the composed analysis: canonicalize and validate,
// route every flow, run the exact per-ring analysis on each ring's local
// plus transit streams, bound every bridge direction with the FIFO
// rate-latency aggregate, and sum each flow's hops into its end-to-end
// delay bound.
func AnalyzeTopology(t topology.Topology) (TopologyReport, error) {
	t = t.Canonicalize()
	if err := t.Validate(); err != nil {
		return TopologyReport{}, err
	}
	sets, routes, err := RingSets(t)
	if err != nil {
		return TopologyReport{}, err
	}

	rep := TopologyReport{
		Topology:    t,
		Rings:       make([]TopologyRingVerdict, len(t.Nodes)),
		Flows:       make([]TopologyFlowVerdict, len(t.Flows)),
		Schedulable: true,
		Bounded:     true,
	}

	// Deadline partitioning for TTP rings: a flow crossing k rings asks
	// each TTP ring on its path for completion within Period/k, so the
	// whole route fits the period. k = 1 leaves the period bit-identical
	// (P/1 == P), keeping the single-ring special case exact.
	pathLen := make(map[string]float64, len(t.Flows))
	for fi, f := range t.Flows {
		pathLen[f.Name] = float64(len(routes[fi]))
	}
	analysisSets := make([]message.Set, len(t.Nodes))
	for i, n := range t.Nodes {
		analysisSets[i] = sets[i]
		if n.Protocol != topology.FDDI {
			continue
		}
		scaled := append(message.Set(nil), sets[i]...)
		for j := range scaled {
			scaled[j].Period /= pathLen[scaled[j].Name]
		}
		analysisSets[i] = scaled
	}

	// Per-ring exact analysis; ringDelay[i][flow] is the flow's response
	// bound inside ring i (+Inf when the ring cannot guarantee it).
	ringDelay := make([]map[string]float64, len(t.Nodes))
	for i, n := range t.Nodes {
		v := TopologyRingVerdict{Name: n.Name, Protocol: n.Protocol, Set: analysisSets[i], Schedulable: true}
		ringDelay[i] = make(map[string]float64, len(sets[i]))
		if len(sets[i]) > 0 {
			switch a := AnalyzerForNode(n, len(sets[i])).(type) {
			case PDP:
				r, err := a.Report(analysisSets[i])
				if err != nil {
					return TopologyReport{}, fmt.Errorf("ring %q: %w", n.Name, err)
				}
				v.PDP, v.Schedulable, v.Utilization = &r, r.Schedulable, r.Utilization
				for _, s := range r.Streams {
					d := math.Inf(1)
					if s.Schedulable {
						d = s.ResponseTime
					}
					ringDelay[i][s.Stream.Name] = d
				}
			case TTP:
				r, err := a.Report(analysisSets[i])
				if err != nil {
					return TopologyReport{}, fmt.Errorf("ring %q: %w", n.Name, err)
				}
				v.TTP, v.Schedulable, v.Utilization = &r, r.Schedulable, r.Utilization
				for _, s := range r.Streams {
					d := math.Inf(1)
					// q_i·TTRT holds only when the ring-wide allocation
					// constraint Σh ≤ TTRT − θ is met.
					if r.Schedulable && s.Q >= 2 {
						d = s.WorstCaseResponse
					}
					ringDelay[i][s.Stream.Name] = d
				}
			}
		}
		rep.Rings[i] = v
		rep.Schedulable = rep.Schedulable && v.Schedulable
	}

	// Aggregate the flows entering each bridge direction. A flow's burst at
	// a bridge input is its source burst inflated by the ring it just
	// crossed (it was re-shaped to its source curve at the previous bridge).
	agg := map[bridgeDir]*TopologyBridgeVerdict{}
	flowDirs := make([][]bridgeDir, len(t.Flows))
	for fi, f := range t.Flows {
		path := routes[fi]
		for h := 0; h+1 < len(path); h++ {
			from, to := t.Nodes[path[h]].Name, t.Nodes[path[h+1]].Name
			bi := t.BridgeIndex(from, to)
			key := bridgeDir{bridge: bi, forward: t.Bridges[bi].A == from}
			v := agg[key]
			if v == nil {
				v = &TopologyBridgeVerdict{
					From:       from,
					To:         to,
					RateBPS:    t.BridgeRate(bi),
					Latency:    t.Bridges[bi].Latency,
					BufferBits: t.Bridges[bi].BufferBits,
				}
				agg[key] = v
			}
			v.Flows++
			v.ArrivalRateBPS += f.RateBPS()
			v.BurstBits += f.LengthBits + f.RateBPS()*ringDelay[path[h]][f.Name]
			flowDirs[fi] = append(flowDirs[fi], key)
		}
	}
	for _, v := range agg {
		v.Stable = v.ArrivalRateBPS <= v.RateBPS && !math.IsInf(v.BurstBits, 1)
		if v.Stable {
			v.DelayBound = v.Latency + v.BurstBits/v.RateBPS
		} else {
			v.DelayBound = math.Inf(1)
		}
		v.BufferOK = v.BufferBits == 0 || v.BurstBits <= v.BufferBits
		rep.Bridges = append(rep.Bridges, *v)
	}
	sort.Slice(rep.Bridges, func(i, j int) bool {
		if rep.Bridges[i].From != rep.Bridges[j].From {
			return rep.Bridges[i].From < rep.Bridges[j].From
		}
		return rep.Bridges[i].To < rep.Bridges[j].To
	})

	// End-to-end bounds: sum of the per-hop bounds along each flow's path.
	for fi, f := range t.Flows {
		path := routes[fi]
		v := TopologyFlowVerdict{Flow: f, Path: make([]string, len(path))}
		buffersOK := true
		for h, ri := range path {
			v.Path[h] = t.Nodes[ri].Name
			v.RingDelays = append(v.RingDelays, ringDelay[ri][f.Name])
			v.Bound += ringDelay[ri][f.Name]
		}
		for _, key := range flowDirs[fi] {
			b := agg[key]
			v.BridgeDelays = append(v.BridgeDelays, b.DelayBound)
			v.Bound += b.DelayBound
			buffersOK = buffersOK && b.BufferOK
		}
		v.Bounded = !math.IsInf(v.Bound, 1)
		v.Schedulable = v.Bounded && v.Bound <= f.Period && buffersOK
		rep.Flows[fi] = v
		rep.Schedulable = rep.Schedulable && v.Schedulable
		rep.Bounded = rep.Bounded && v.Bounded
	}
	return rep, nil
}
