package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ringsched/internal/frame"
	"ringsched/internal/message"
	"ringsched/internal/ring"
)

func TestPDPValidate(t *testing.T) {
	p := NewStandardPDP(4e6)
	if err := p.Validate(); err != nil {
		t.Fatalf("paper PDP invalid: %v", err)
	}
	p.Variant = Variant(99)
	if err := p.Validate(); err == nil {
		t.Error("bad variant accepted")
	}
	p = NewStandardPDP(4e6)
	p.Frame.InfoBits = 0
	if err := p.Validate(); err == nil {
		t.Error("bad frame accepted")
	}
	p = NewStandardPDP(0)
	if err := p.Validate(); err == nil {
		t.Error("zero bandwidth accepted")
	}
}

func TestVariantString(t *testing.T) {
	if Standard8025.String() != "IEEE 802.5" || Modified8025.String() != "Modified 802.5" {
		t.Error("variant names wrong")
	}
	if Variant(42).String() == "" {
		t.Error("unknown variant should stringify")
	}
}

func TestBlockingIsTwiceMaxFTheta(t *testing.T) {
	// Low bandwidth: F > Θ, so B = 2F. High bandwidth: Θ > F, so B = 2Θ.
	low := NewStandardPDP(1e6)
	f := low.Frame.Time(1e6)
	if f <= low.Net.Theta() {
		t.Fatalf("setup: expected F > Θ at 1 Mbps (F=%v Θ=%v)", f, low.Net.Theta())
	}
	if got := low.Blocking(); got != 2*f {
		t.Errorf("Blocking = %v, want 2F = %v", got, 2*f)
	}
	high := NewStandardPDP(1e9)
	theta := high.Net.Theta()
	if high.Frame.Time(1e9) >= theta {
		t.Fatalf("setup: expected Θ > F at 1 Gbps")
	}
	if got := high.Blocking(); got != 2*theta {
		t.Errorf("Blocking = %v, want 2Θ = %v", got, 2*theta)
	}
}

// handAugmented recomputes C' from the paper's formulas directly.
func handAugmented(p PDP, s message.Stream) float64 {
	bw := p.Net.BandwidthBPS
	theta := p.Net.Theta()
	fTime := p.Frame.Time(bw)
	l := math.Floor(s.LengthBits / p.Frame.InfoBits)
	k := math.Ceil(s.LengthBits / p.Frame.InfoBits)
	if k == 0 {
		k = 1
	}
	token := theta / 2
	if p.Variant == Standard8025 {
		token = k * theta / 2
	}
	if fTime <= theta {
		return k*theta + token
	}
	c := s.LengthBits / bw
	last := math.Max(c-l*p.Frame.InfoBits/bw+p.Frame.OvhdBits/bw, theta)
	return l*fTime + token + (k-l)*last
}

func TestAugmentedLengthMatchesPaperFormulas(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, bw := range []float64{1e6, 4e6, 16e6, 100e6, 1e9} {
		for _, variant := range []Variant{Standard8025, Modified8025} {
			p := NewStandardPDP(bw)
			p.Variant = variant
			for trial := 0; trial < 50; trial++ {
				s := message.Stream{
					Period:     10e-3,
					LengthBits: 1 + rng.Float64()*20000,
				}
				got := p.AugmentedLength(s)
				want := handAugmented(p, s)
				if math.Abs(got-want) > 1e-15 {
					t.Fatalf("%v@%g: AugmentedLength(%v bits) = %v, want %v",
						variant, bw, s.LengthBits, got, want)
				}
			}
		}
	}
}

func TestAugmentedLengthCases(t *testing.T) {
	// At 4 Mbps: Θ = 44.47us(prop) + 424/4 = 150.47us; F = 156us > Θ.
	p := NewStandardPDP(4e6)
	theta := p.Net.Theta()
	fTime := p.Frame.Time(4e6)
	if fTime <= theta {
		t.Fatalf("setup: F=%v should exceed Θ=%v at 4 Mbps", fTime, theta)
	}

	// Exactly 2 full frames: standard C' = 2F + 2·Θ/2.
	s := message.Stream{Period: 10e-3, LengthBits: 1024}
	if got, want := p.AugmentedLength(s), 2*fTime+theta; math.Abs(got-want) > 1e-15 {
		t.Errorf("standard 2 full frames: %v, want %v", got, want)
	}

	// Modified pays Θ/2 once.
	pm := p
	pm.Variant = Modified8025
	if got, want := pm.AugmentedLength(s), 2*fTime+theta/2; math.Abs(got-want) > 1e-15 {
		t.Errorf("modified 2 full frames: %v, want %v", got, want)
	}

	// Tiny message: one short frame whose wire time is below Θ, so the
	// effective time is Θ (header must return), plus Θ/2 token overhead.
	tiny := message.Stream{Period: 10e-3, LengthBits: 8}
	if got, want := p.AugmentedLength(tiny), theta+theta/2; math.Abs(got-want) > 1e-15 {
		t.Errorf("tiny standard: %v, want %v", got, want)
	}

	// High bandwidth (F ≤ Θ): every frame costs Θ.
	ph := NewStandardPDP(1e9)
	thetaH := ph.Net.Theta()
	s3 := message.Stream{Period: 10e-3, LengthBits: 3 * 512}
	if got, want := ph.AugmentedLength(s3), 3*thetaH+3*thetaH/2; math.Abs(got-want) > 1e-12 {
		t.Errorf("high-bw standard 3 frames: %v, want %v", got, want)
	}
	phm := ph
	phm.Variant = Modified8025
	if got, want := phm.AugmentedLength(s3), 3*thetaH+thetaH/2; math.Abs(got-want) > 1e-12 {
		t.Errorf("high-bw modified 3 frames: %v, want %v", got, want)
	}
}

func TestModifiedNeverCostsMore(t *testing.T) {
	// For any stream and bandwidth, the modified variant's C' is at most
	// the standard's (they differ only in token overhead, K·Θ/2 vs Θ/2).
	f := func(bits uint16, bwSel uint8) bool {
		bw := []float64{1e6, 4e6, 16e6, 100e6, 622e6}[int(bwSel)%5]
		s := message.Stream{Period: 10e-3, LengthBits: float64(bits) + 1}
		std := NewStandardPDP(bw)
		mod := NewModifiedPDP(bw)
		return mod.AugmentedLength(s) <= std.AugmentedLength(s)+1e-18
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestAugmentedLengthMonotoneInLength(t *testing.T) {
	for _, bw := range []float64{1e6, 4e6, 100e6} {
		for _, variant := range []Variant{Standard8025, Modified8025} {
			p := NewStandardPDP(bw)
			p.Variant = variant
			prev := 0.0
			for bits := 1.0; bits < 5000; bits += 7 {
				got := p.AugmentedLength(message.Stream{Period: 1, LengthBits: bits})
				if got < prev-1e-15 {
					t.Fatalf("%v@%g: C' decreased at %v bits: %v < %v", variant, bw, bits, got, prev)
				}
				prev = got
			}
		}
	}
}

func TestAugmentedLengthBoundsProperty(t *testing.T) {
	// For any payload and bandwidth: the augmented length covers at least
	// the payload's wire time and never exceeds K frames each paying the
	// worst per-frame effective cost plus the standard token overhead.
	f := func(bitsRaw uint32, bwSel uint8) bool {
		bits := float64(bitsRaw%200_000) + 1
		bw := []float64{1e6, 4e6, 16e6, 100e6, 1e9}[int(bwSel)%5]
		for _, variant := range []Variant{Standard8025, Modified8025} {
			p := NewStandardPDP(bw)
			p.Variant = variant
			s := message.Stream{Period: 1, LengthBits: bits}
			cAug := p.AugmentedLength(s)
			if cAug < s.Length(bw) {
				return false
			}
			_, k := p.Frame.Split(bits)
			theta := p.Net.Theta()
			perFrame := math.Max(p.Frame.Time(bw), theta)
			if cAug > float64(k)*(perFrame+theta/2)+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBlockingNonNegativeProperty(t *testing.T) {
	f := func(bwRaw uint32) bool {
		bw := 1e6 + float64(bwRaw%1_000_000_0)*100
		p := NewStandardPDP(bw)
		b := p.Blocking()
		return b >= 2*p.Net.Theta()-1e-18 || b >= 2*p.Frame.Time(bw)-1e-18
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPDPSchedulableMonotoneInScale(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	gen := message.Generator{Streams: 12, MeanPeriod: 100e-3, PeriodRatio: 10}
	set, err := gen.Draw(rng)
	if err != nil {
		t.Fatal(err)
	}
	for _, variant := range []Variant{Standard8025, Modified8025} {
		p := NewStandardPDP(16e6)
		p.Net = p.Net.WithStations(12)
		p.Variant = variant
		wasSchedulable := false
		for _, scale := range []float64{10, 3, 1, 0.3, 0.1, 0.03, 0.01, 0.003} {
			ok, err := p.Schedulable(set.Scale(scale))
			if err != nil {
				t.Fatal(err)
			}
			if wasSchedulable && !ok {
				t.Fatalf("%v: schedulability not monotone at scale %v", variant, scale)
			}
			if ok {
				wasSchedulable = true
			}
		}
		if !wasSchedulable {
			t.Fatalf("%v: set never schedulable, test vacuous", variant)
		}
	}
}

func TestPDPReportConsistency(t *testing.T) {
	set := message.Set{
		{Name: "x", Period: 20e-3, LengthBits: 4000},
		{Name: "y", Period: 60e-3, LengthBits: 9000},
		{Name: "z", Period: 40e-3, LengthBits: 1000},
	}
	p := NewModifiedPDP(16e6)
	p.Net = p.Net.WithStations(3)
	rep, err := p.Report(set)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Streams) != 3 {
		t.Fatalf("report has %d streams, want 3", len(rep.Streams))
	}
	// Streams must be in RM order.
	if rep.Streams[0].Stream.Name != "x" || rep.Streams[1].Stream.Name != "z" {
		t.Errorf("report not RM-ordered: %v, %v", rep.Streams[0].Stream.Name, rep.Streams[1].Stream.Name)
	}
	// Schedulable iff every stream is.
	all := true
	for _, s := range rep.Streams {
		if s.AugmentedLength < s.Stream.Length(16e6) {
			t.Errorf("C' %v below payload time %v", s.AugmentedLength, s.Stream.Length(16e6))
		}
		if s.ResponseTime < s.AugmentedLength {
			t.Errorf("response %v below C' %v", s.ResponseTime, s.AugmentedLength)
		}
		all = all && s.Schedulable
	}
	if rep.Schedulable != all {
		t.Errorf("Schedulable=%v inconsistent with streams", rep.Schedulable)
	}
	if rep.AugmentedUtilization <= rep.Utilization {
		t.Errorf("augmented utilization %v should exceed payload utilization %v",
			rep.AugmentedUtilization, rep.Utilization)
	}
}

func TestPDPSchedulableErrors(t *testing.T) {
	p := NewStandardPDP(4e6)
	if _, err := p.Schedulable(nil); err == nil {
		t.Error("nil set accepted")
	}
	if _, err := p.Schedulable(message.Set{{Period: -1, LengthBits: 1}}); err == nil {
		t.Error("invalid stream accepted")
	}
}

func TestPDPKnownSchedulableSet(t *testing.T) {
	// One small stream on an otherwise idle 16 Mbps ring is trivially
	// guaranteed; an absurdly overloaded one is not.
	p := NewModifiedPDP(16e6)
	ok, err := p.Schedulable(message.Set{{Period: 100e-3, LengthBits: 512}})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("single tiny stream should be schedulable")
	}
	ok, err = p.Schedulable(message.Set{{Period: 1e-3, LengthBits: 1e6}})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("62-ms message with 1-ms deadline reported schedulable")
	}
}

func TestPDPNameAndConstructors(t *testing.T) {
	if NewStandardPDP(4e6).Name() != "IEEE 802.5" {
		t.Error("standard name")
	}
	if NewModifiedPDP(4e6).Name() != "Modified 802.5" {
		t.Error("modified name")
	}
	if NewStandardPDP(4e6).Net != ring.IEEE8025(4e6) {
		t.Error("standard plant not the paper's 802.5 plant")
	}
	if NewStandardPDP(4e6).Frame != frame.PaperSpec() {
		t.Error("frame not the paper's spec")
	}
}

func TestPDPTasksOrderAndCosts(t *testing.T) {
	set := message.Set{
		{Period: 50e-3, LengthBits: 1000},
		{Period: 10e-3, LengthBits: 600},
	}
	p := NewStandardPDP(16e6)
	tasks := p.Tasks(set)
	if tasks[0].Period != 10e-3 || tasks[1].Period != 50e-3 {
		t.Fatalf("tasks not RM ordered: %+v", tasks)
	}
	if tasks[0].Cost != p.AugmentedLength(set[1]) {
		t.Error("task cost is not the augmented length")
	}
}
