// Package core implements the primary contribution of Kamat & Zhao (ICDCS
// 1993): exact schedulability criteria for hard-real-time synchronous
// message sets under the two token ring MAC protocols —
//
//   - the priority driven protocol (PDP) of IEEE 802.5 implementing
//     rate-monotonic scheduling, in both the standard and the modified
//     variant (Theorem 4.1), and
//   - the timed token protocol (TTP) of FDDI with the local synchronous
//     bandwidth allocation scheme and √(θ·Pmin) TTRT selection
//     (Theorem 5.1).
//
// Each analyzer answers "is this message set guaranteed?" for a fixed
// network plant, and produces a detailed per-stream report. Analyzers are
// pure: they never mutate the message set, and the same inputs always give
// the same answer.
package core

import "ringsched/internal/message"

// Analyzer decides whether a synchronous message set is schedulable — i.e.
// whether every message of every stream is guaranteed to finish before the
// end of the period it arrived in — under one protocol on one network
// plant.
//
// Implementations must be monotone in the message lengths: if a set is
// schedulable, any set obtained by shrinking payloads (same periods) must
// also be schedulable. The breakdown engine relies on this to binary-search
// the saturation point.
type Analyzer interface {
	// Name identifies the protocol/variant for reports ("IEEE 802.5",
	// "Modified 802.5", "FDDI").
	Name() string
	// Schedulable reports whether the message set is guaranteed. It
	// returns an error only for invalid inputs, never for "not
	// schedulable".
	Schedulable(m message.Set) (bool, error)
}
