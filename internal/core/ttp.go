package core

import (
	"errors"
	"fmt"
	"math"

	"ringsched/internal/frame"
	"ringsched/internal/message"
	"ringsched/internal/ring"
)

// TTRTRule selects how the Target Token Rotation Time is chosen at ring
// initialization (Section 5.2). The protocol determines TTRT by bidding:
// every station submits a bid and the minimum wins.
type TTRTRule int

const (
	// TTRTSqrtHeuristic is the paper's rule: station i bids √(θ·P_i), so
	// the winning value is √(θ·Pmin) (capped at Pmin/2 to keep the
	// deadline constraint meaningful). For equal periods this choice
	// provably maximizes the breakdown utilization.
	TTRTSqrtHeuristic TTRTRule = iota + 1
	// TTRTHalfMinPeriod uses the loosest admissible value Pmin/2 implied
	// by Johnson's 2·TTRT inter-visit bound.
	TTRTHalfMinPeriod
	// TTRTFixed uses the explicitly configured TTP.FixedTTRT value.
	TTRTFixed
)

// String implements fmt.Stringer.
func (r TTRTRule) String() string {
	switch r {
	case TTRTSqrtHeuristic:
		return "sqrt(theta*Pmin)"
	case TTRTHalfMinPeriod:
		return "Pmin/2"
	case TTRTFixed:
		return "fixed"
	default:
		return fmt.Sprintf("TTRTRule(%d)", int(r))
	}
}

// Errors returned by the TTP analyzer.
var (
	ErrBadTTRTRule      = errors.New("core: unknown TTRT rule")
	ErrBadFixedTTRT     = errors.New("core: fixed TTRT must be positive")
	ErrBadOverrunBudget = errors.New("core: unknown overrun budget")
)

// OverrunBudget selects how much asynchronous overrun the per-rotation
// overhead θ includes.
type OverrunBudget int

const (
	// OverrunSingleFrame is the paper's eq. (11): θ = Θ + F, budgeting
	// one maximum-length asynchronous frame of overrun per rotation.
	OverrunSingleFrame OverrunBudget = iota + 1
	// OverrunPerStation budgets θ = Θ + n·F: every station may overrun
	// by one frame in the same rotation. The paper's single-frame budget
	// is marginally optimistic when every station carries saturated
	// asynchronous traffic — the operational simulator demonstrates a
	// deadline miss at 95 % of the eq.-(11) saturation (see
	// EXPERIMENTS.md, VAL-SIM); this budget restores the guarantee.
	OverrunPerStation
)

// String implements fmt.Stringer.
func (o OverrunBudget) String() string {
	switch o {
	case OverrunSingleFrame:
		return "single-frame"
	case OverrunPerStation:
		return "per-station"
	default:
		return fmt.Sprintf("OverrunBudget(%d)", int(o))
	}
}

// TTP is the schedulability analyzer for the timed token protocol with the
// local synchronous bandwidth allocation scheme (Theorem 5.1). Station i is
// assigned synchronous bandwidth h_i = C_i/(q_i − 1) + Fovhd with
// q_i = floor(P_i/TTRT); the set is guaranteed iff the allocations fit in
// one token rotation: Σ h_i ≤ TTRT − θ.
type TTP struct {
	// Net is the physical ring (typically ring.FDDI(bw)).
	Net ring.Config
	// SyncFrame supplies the per-frame overhead Fovhd added to each
	// synchronous transmission burst. (Synchronous frame *length* is the
	// allocation h_i itself; only the overhead bits matter here.)
	SyncFrame frame.Spec
	// AsyncFrame is the maximum-length asynchronous frame; one such frame
	// can overrun the token (θ = Θ + F_async, eq. (11)).
	AsyncFrame frame.Spec
	// Rule selects the TTRT bidding rule; zero value means
	// TTRTSqrtHeuristic.
	Rule TTRTRule
	// FixedTTRT is the TTRT used when Rule == TTRTFixed, in seconds.
	FixedTTRT float64
	// Overrun selects the asynchronous-overrun budget in θ; zero value
	// means OverrunSingleFrame (the paper's eq. 11).
	Overrun OverrunBudget
}

var _ Analyzer = TTP{}

// NewTTP returns the Theorem 5.1 analyzer on the paper's FDDI plant at the
// given bandwidth, with 64-byte frames and the √(θ·Pmin) TTRT rule.
func NewTTP(bandwidthBPS float64) TTP {
	return TTP{
		Net:        ring.FDDI(bandwidthBPS),
		SyncFrame:  frame.PaperSpec(),
		AsyncFrame: frame.PaperSpec(),
		Rule:       TTRTSqrtHeuristic,
	}
}

// Name implements Analyzer.
func (t TTP) Name() string { return "FDDI" }

// Validate reports the first invalid configuration field, or nil.
func (t TTP) Validate() error {
	if err := t.Net.Validate(); err != nil {
		return err
	}
	if err := t.SyncFrame.Validate(); err != nil {
		return err
	}
	if err := t.AsyncFrame.Validate(); err != nil {
		return err
	}
	switch t.Rule {
	case TTRTSqrtHeuristic, TTRTHalfMinPeriod, 0:
	case TTRTFixed:
		if t.FixedTTRT <= 0 {
			return ErrBadFixedTTRT
		}
	default:
		return ErrBadTTRTRule
	}
	switch t.Overrun {
	case OverrunSingleFrame, OverrunPerStation, 0:
	default:
		return ErrBadOverrunBudget
	}
	return nil
}

// Overhead is θ, the per-rotation protocol overhead: the token circulation
// time Θ plus the configured asynchronous-overrun budget — one
// maximum-length asynchronous frame (eq. (11)) by default, or one per
// station under OverrunPerStation. θ decreases as bandwidth increases.
func (t TTP) Overhead() float64 {
	overrun := t.AsyncFrame.Time(t.Net.BandwidthBPS)
	if t.Overrun == OverrunPerStation {
		overrun *= float64(t.Net.Stations)
	}
	return t.Net.Theta() + overrun
}

// SelectTTRT applies the configured bidding rule to the message set and
// returns the winning TTRT. The result is always capped at Pmin/2 so that
// q_i = floor(P_i/TTRT) ≥ 2 for every stream, as the deadline constraint
// requires.
func (t TTP) SelectTTRT(m message.Set) float64 {
	pmin := m.MinPeriod()
	cap := pmin / 2
	switch t.Rule {
	case TTRTHalfMinPeriod:
		return cap
	case TTRTFixed:
		return math.Min(t.FixedTTRT, cap)
	default: // TTRTSqrtHeuristic and zero value
		return math.Min(math.Sqrt(t.Overhead()*pmin), cap)
	}
}

// TTPStreamReport describes one stream's allocation.
type TTPStreamReport struct {
	// Stream is the analyzed stream.
	Stream message.Stream
	// Q is q_i = floor(P_i/TTRT), the guaranteed token visits per period
	// minus one margin visit.
	Q int
	// AugmentedLength is C'_i = C_i + (q_i−1)·Fovhd.
	AugmentedLength float64
	// Allocation is the synchronous bandwidth h_i = C'_i/(q_i−1).
	Allocation float64
	// WorstCaseResponse is the classic analytic bound on the time from a
	// message's arrival to its completion: q_i·TTRT — the first usable
	// visit may be up to 2·TTRT away (Johnson's bound) and the remaining
	// q_i−2 visits arrive at most TTRT apart. It never exceeds the period
	// (q_i = ⌊P_i/TTRT⌋), which is what makes Theorem 5.1 a deadline
	// guarantee.
	WorstCaseResponse float64
}

// TTPReport is the full Theorem 5.1 analysis outcome.
type TTPReport struct {
	// Schedulable reports whether the set is guaranteed.
	Schedulable bool
	// TTRT is the selected target token rotation time.
	TTRT float64
	// Overhead is θ.
	Overhead float64
	// TotalAllocation is Σ h_i.
	TotalAllocation float64
	// Capacity is TTRT − θ, the time available for synchronous
	// allocations in one rotation (the protocol constraint bound).
	Capacity float64
	// Utilization is the payload utilization U(M).
	Utilization float64
	// Availability is the medium availability A the analysis assumed:
	// 1 for the clean Report, the fault budget's discount for FaultReport
	// (q_i = ⌊A·P_i/TTRT⌋).
	Availability float64
	// Streams holds per-stream allocations in input order.
	Streams []TTPStreamReport
}

// Schedulable implements Analyzer: the Theorem 5.1 criterion
//
//	Σ C_i/(floor(P_i/TTRT) − 1) + n·Fovhd ≤ TTRT − θ.
func (t TTP) Schedulable(m message.Set) (bool, error) {
	rep, err := t.Report(m)
	if err != nil {
		return false, err
	}
	return rep.Schedulable, nil
}

// Report runs the full Theorem 5.1 analysis and returns the allocation
// detail. A set whose TTRT leaves no capacity (TTRT ≤ θ) is reported
// unschedulable rather than as an error.
func (t TTP) Report(m message.Set) (TTPReport, error) {
	return t.report(m, 1)
}

// report is the shared body of Report and FaultReport: the Theorem 5.1
// analysis with the rotation budget discounted by the medium availability
// avail — the guaranteed visits per period shrink to q_i = ⌊avail·P_i/TTRT⌋
// and the worst-case response stretches to q_i·TTRT/avail. With avail = 1
// the arithmetic is exactly the clean analysis.
func (t TTP) report(m message.Set, avail float64) (TTPReport, error) {
	if err := t.Validate(); err != nil {
		return TTPReport{}, err
	}
	if err := m.Validate(); err != nil {
		return TTPReport{}, err
	}
	bw := t.Net.BandwidthBPS
	ttrt := t.SelectTTRT(m)
	rep := TTPReport{
		TTRT:         ttrt,
		Overhead:     t.Overhead(),
		Capacity:     ttrt - t.Overhead(),
		Utilization:  m.Utilization(bw),
		Availability: avail,
		Streams:      make([]TTPStreamReport, len(m)),
	}
	fovhd := t.SyncFrame.OvhdTime(bw)
	for i, s := range m {
		q := int(math.Floor(avail * s.Period / ttrt))
		if q < 2 {
			// Cannot guarantee the deadline with fewer than two visits;
			// the Pmin/2 cap makes this unreachable on a clean ring, but a
			// deep availability discount (or a degenerate set) can reach it.
			q = 1
		}
		cAug := s.Length(bw) + float64(q-1)*fovhd
		var h float64
		if q >= 2 {
			h = cAug / float64(q-1)
		} else {
			h = math.Inf(1)
		}
		rep.Streams[i] = TTPStreamReport{
			Stream:            s,
			Q:                 q,
			AugmentedLength:   cAug,
			Allocation:        h,
			WorstCaseResponse: float64(q) * ttrt / avail,
		}
		rep.TotalAllocation += h
	}
	rep.Schedulable = rep.TotalAllocation <= rep.Capacity
	return rep, nil
}
