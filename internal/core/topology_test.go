package core

import (
	"math"
	"reflect"
	"testing"

	"ringsched/internal/ring"
	"ringsched/internal/topology"
)

// lineTopology is a bridged 3-ring line a—b—c mixing all three protocols,
// with a cross flow a→c, a transit-sharing flow b→c, and a local flow on b.
func lineTopology() topology.Topology {
	return topology.Topology{
		Nodes: []topology.Node{
			{Name: "a", Protocol: topology.Modified8025, Ring: ring.IEEE8025(16e6)},
			{Name: "b", Protocol: topology.FDDI, Ring: ring.FDDI(100e6)},
			{Name: "c", Protocol: topology.Standard8025, Ring: ring.IEEE8025(16e6)},
		},
		Bridges: []topology.Bridge{
			{A: "a", B: "b", Latency: 100e-6},
			{A: "b", B: "c", Latency: 100e-6},
		},
		Flows: []topology.Flow{
			{Name: "cross", Src: "a", Dst: "c", Period: 100e-3, LengthBits: 4096},
			{Name: "feed", Src: "b", Dst: "c", Period: 50e-3, LengthBits: 2048},
			{Name: "local", Src: "b", Dst: "b", Period: 20e-3, LengthBits: 1024},
		},
	}
}

func TestAnalyzeTopologyBridgedLine(t *testing.T) {
	rep, err := AnalyzeTopology(lineTopology())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Schedulable || !rep.Bounded {
		t.Fatalf("schedulable = %v, bounded = %v for a lightly loaded line", rep.Schedulable, rep.Bounded)
	}
	if len(rep.Rings) != 3 || len(rep.Flows) != 3 {
		t.Fatalf("%d rings, %d flows", len(rep.Rings), len(rep.Flows))
	}
	// Ring b carries its local flow, the feed flow, and the transit of cross.
	b := rep.Rings[1]
	if b.Name != "b" || len(b.Set) != 3 || b.TTP == nil || b.PDP != nil {
		t.Fatalf("ring b verdict: %+v", b)
	}
	// The cross flow traverses a, b, c and both bridges; its bound is the
	// exact sum of its per-hop bounds and fits its period.
	var cross TopologyFlowVerdict
	for _, f := range rep.Flows {
		if f.Flow.Name == "cross" {
			cross = f
		}
	}
	if !reflect.DeepEqual(cross.Path, []string{"a", "b", "c"}) {
		t.Fatalf("cross path = %v", cross.Path)
	}
	if len(cross.RingDelays) != 3 || len(cross.BridgeDelays) != 2 {
		t.Fatalf("cross hops: %v / %v", cross.RingDelays, cross.BridgeDelays)
	}
	sum := 0.0
	for _, d := range cross.RingDelays {
		sum += d
	}
	for _, d := range cross.BridgeDelays {
		sum += d
	}
	if math.Abs(sum-cross.Bound) > 1e-15 || !cross.Schedulable || cross.Bound > cross.Flow.Period {
		t.Errorf("cross bound %v (hop sum %v), schedulable=%v", cross.Bound, sum, cross.Schedulable)
	}
	// Bridge a→b carries exactly the cross flow, with its burst inflated by
	// the response bound inside ring a.
	var ab TopologyBridgeVerdict
	for _, br := range rep.Bridges {
		if br.From == "a" && br.To == "b" {
			ab = br
		}
	}
	if ab.Flows != 1 || !ab.Stable || !ab.BufferOK {
		t.Fatalf("bridge a→b verdict: %+v", ab)
	}
	rho := cross.Flow.RateBPS()
	wantBurst := cross.Flow.LengthBits + rho*cross.RingDelays[0]
	if math.Abs(ab.BurstBits-wantBurst) > 1e-9 {
		t.Errorf("bridge a→b burst = %v, want %v", ab.BurstBits, wantBurst)
	}
	if want := ab.Latency + ab.BurstBits/ab.RateBPS; math.Abs(ab.DelayBound-want) > 1e-15 {
		t.Errorf("bridge a→b delay bound = %v, want %v", ab.DelayBound, want)
	}
	// Bridge b→c aggregates cross and feed.
	var bc TopologyBridgeVerdict
	for _, br := range rep.Bridges {
		if br.From == "b" && br.To == "c" {
			bc = br
		}
	}
	if bc.Flows != 2 {
		t.Errorf("bridge b→c flows = %d, want 2", bc.Flows)
	}
}

func TestAnalyzeTopologySingleRingMatchesDirectPath(t *testing.T) {
	// The 1-node special case must reproduce the direct single-ring
	// analysis bit for bit, for every protocol.
	flows := []topology.Flow{
		{Name: "s1", Src: "r", Dst: "r", Period: 10e-3, LengthBits: 2048},
		{Name: "s2", Src: "r", Dst: "r", Period: 25e-3, LengthBits: 4096},
		{Name: "s3", Src: "r", Dst: "r", Period: 100e-3, LengthBits: 8192},
	}
	for _, proto := range topology.Protocols() {
		topo := topology.Topology{
			Nodes: []topology.Node{{Name: "r", Protocol: proto, Ring: proto.PlantPreset().New(16e6)}},
			Flows: flows,
		}
		rep, err := AnalyzeTopology(topo)
		if err != nil {
			t.Fatal(err)
		}
		canon := topo.Canonicalize()
		sets, _, err := RingSets(canon)
		if err != nil {
			t.Fatal(err)
		}
		switch a := AnalyzerForNode(canon.Nodes[0], len(sets[0])).(type) {
		case PDP:
			want, err := a.Report(sets[0])
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(*rep.Rings[0].PDP, want) {
				t.Errorf("%s: topology PDP report differs from direct report", proto)
			}
			// End-to-end bound of a local flow is exactly its ring response.
			for _, f := range rep.Flows {
				if len(f.RingDelays) != 1 || f.Bound != f.RingDelays[0] {
					t.Errorf("%s: local flow %q bound %v != ring delay %v",
						proto, f.Flow.Name, f.Bound, f.RingDelays)
				}
			}
		case TTP:
			want, err := a.Report(sets[0])
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(*rep.Rings[0].TTP, want) {
				t.Errorf("%s: topology TTP report differs from direct report", proto)
			}
		}
	}
}

func TestAnalyzeTopologyUnstableBridge(t *testing.T) {
	topo := lineTopology()
	// Choke the a-b bridge below the cross flow's arrival rate.
	topo.Bridges[0].RateBPS = 10 // ρ(cross) = 40960 bps
	rep, err := AnalyzeTopology(topo)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Bounded || rep.Schedulable {
		t.Fatalf("unstable bridge must unbound the topology: %+v", rep)
	}
	for _, f := range rep.Flows {
		wantBounded := f.Flow.Name != "cross"
		if f.Bounded != wantBounded {
			t.Errorf("flow %q bounded = %v, want %v", f.Flow.Name, f.Bounded, wantBounded)
		}
	}
}

func TestAnalyzeTopologyBufferOverflow(t *testing.T) {
	topo := lineTopology()
	topo.Bridges[0].BufferBits = 1 // cannot hold even one frame of burst
	rep, err := AnalyzeTopology(topo)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schedulable {
		t.Fatal("overflowing bridge buffer must not be schedulable")
	}
	if !rep.Bounded {
		t.Fatal("a small buffer bounds loss, not delay: topology should stay bounded")
	}
	for _, br := range rep.Bridges {
		if br.From == "a" && br.BufferOK {
			t.Errorf("bridge a→b buffer should overflow: %+v", br)
		}
	}
}

func TestAnalyzeTopologyOverloadedRingPropagates(t *testing.T) {
	topo := lineTopology()
	// Overload ring a: the cross flow alone needs more than the medium.
	topo.Flows[0].LengthBits = 32e6 // 32 Mbit per 100 ms on a 16 Mbps ring
	rep, err := AnalyzeTopology(topo)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schedulable {
		t.Fatal("overloaded ring must fail the topology")
	}
	var cross TopologyFlowVerdict
	for _, f := range rep.Flows {
		if f.Flow.Name == "cross" {
			cross = f
		}
	}
	if cross.Bounded || !math.IsInf(cross.RingDelays[0], 1) {
		t.Errorf("cross flow should be unbounded at its source ring: %+v", cross)
	}
}

func TestAnalyzeTopologyValidates(t *testing.T) {
	if _, err := AnalyzeTopology(topology.Topology{}); err == nil {
		t.Error("empty topology accepted")
	}
	topo := lineTopology()
	topo.Flows[0].Period = -1
	if _, err := AnalyzeTopology(topo); err == nil {
		t.Error("negative period accepted")
	}
}

// The message set below mirrors the canonical single-ring benchmark load.
var benchFlows = []topology.Flow{
	{Name: "s1", Src: "r", Dst: "r", Period: 5e-3, LengthBits: 1024},
	{Name: "s2", Src: "r", Dst: "r", Period: 10e-3, LengthBits: 2048},
	{Name: "s3", Src: "r", Dst: "r", Period: 20e-3, LengthBits: 4096},
	{Name: "s4", Src: "r", Dst: "r", Period: 50e-3, LengthBits: 8192},
	{Name: "s5", Src: "r", Dst: "r", Period: 100e-3, LengthBits: 8192},
}

var benchTopologyReport TopologyReport

// BenchmarkAnalyzeTopologySingleRing tracks the 1-node fast path: the cost
// of a single-ring verdict served through the topology layer. The
// benchreport baseline gates its allocation count so the special case
// cannot quietly grow graph overhead.
func BenchmarkAnalyzeTopologySingleRing(b *testing.B) {
	topo := topology.Topology{
		Nodes: []topology.Node{{Name: "r", Protocol: topology.Modified8025, Ring: ring.IEEE8025(16e6)}},
		Flows: benchFlows,
	}.Canonicalize()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := AnalyzeTopology(topo)
		if err != nil {
			b.Fatal(err)
		}
		benchTopologyReport = rep
	}
}
