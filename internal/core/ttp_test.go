package core

import (
	"math"
	"math/rand"
	"testing"

	"ringsched/internal/message"
)

func ttpTestSet() message.Set {
	return message.Set{
		{Name: "a", Period: 20e-3, LengthBits: 40_000},
		{Name: "b", Period: 50e-3, LengthBits: 100_000},
		{Name: "c", Period: 100e-3, LengthBits: 400_000},
	}
}

func TestTTPValidate(t *testing.T) {
	tt := NewTTP(100e6)
	if err := tt.Validate(); err != nil {
		t.Fatalf("paper TTP invalid: %v", err)
	}
	tt.Rule = TTRTRule(99)
	if err := tt.Validate(); err == nil {
		t.Error("bad rule accepted")
	}
	tt = NewTTP(100e6)
	tt.Rule = TTRTFixed
	if err := tt.Validate(); err == nil {
		t.Error("fixed rule without value accepted")
	}
	tt.FixedTTRT = 4e-3
	if err := tt.Validate(); err != nil {
		t.Errorf("fixed rule with value rejected: %v", err)
	}
}

func TestOverheadComposition(t *testing.T) {
	tt := NewTTP(100e6)
	want := tt.Net.Theta() + tt.AsyncFrame.Time(100e6)
	if got := tt.Overhead(); math.Abs(got-want) > 1e-18 {
		t.Errorf("Overhead = %v, want Θ+Fasync = %v", got, want)
	}
	// θ decreases with bandwidth (eq. 11 discussion).
	if NewTTP(1e9).Overhead() >= NewTTP(10e6).Overhead() {
		t.Error("θ did not decrease with bandwidth")
	}
}

func TestSelectTTRTRules(t *testing.T) {
	set := ttpTestSet()
	pmin := set.MinPeriod()

	sqrtRule := NewTTP(100e6)
	want := math.Min(math.Sqrt(sqrtRule.Overhead()*pmin), pmin/2)
	if got := sqrtRule.SelectTTRT(set); math.Abs(got-want) > 1e-18 {
		t.Errorf("sqrt rule TTRT = %v, want %v", got, want)
	}

	half := NewTTP(100e6)
	half.Rule = TTRTHalfMinPeriod
	if got := half.SelectTTRT(set); got != pmin/2 {
		t.Errorf("half rule TTRT = %v, want %v", got, pmin/2)
	}

	fixed := NewTTP(100e6)
	fixed.Rule = TTRTFixed
	fixed.FixedTTRT = 3e-3
	if got := fixed.SelectTTRT(set); got != 3e-3 {
		t.Errorf("fixed rule TTRT = %v, want 3ms", got)
	}
	// Fixed values above Pmin/2 are capped.
	fixed.FixedTTRT = 1
	if got := fixed.SelectTTRT(set); got != pmin/2 {
		t.Errorf("fixed rule TTRT = %v, want cap %v", got, pmin/2)
	}
}

func TestSelectTTRTCapAtLowBandwidth(t *testing.T) {
	// At 1 Mbps the FDDI θ is huge; √(θ·Pmin) would exceed Pmin/2 and
	// must be capped to keep q_i ≥ 2.
	tt := NewTTP(1e6)
	set := ttpTestSet()
	ttrt := tt.SelectTTRT(set)
	if ttrt > set.MinPeriod()/2+1e-18 {
		t.Fatalf("TTRT %v exceeds Pmin/2", ttrt)
	}
	if math.Sqrt(tt.Overhead()*set.MinPeriod()) <= set.MinPeriod()/2 {
		t.Skip("setup: sqrt no longer exceeds the cap at this bandwidth")
	}
}

func TestTheorem51ByHand(t *testing.T) {
	// Fixed TTRT for a hand-checkable criterion evaluation.
	const bw = 100e6
	tt := NewTTP(bw)
	tt.Rule = TTRTFixed
	tt.FixedTTRT = 5e-3
	set := ttpTestSet()

	rep, err := tt.Report(set)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TTRT != 5e-3 {
		t.Fatalf("TTRT = %v, want 5ms", rep.TTRT)
	}
	fovhd := tt.SyncFrame.OvhdTime(bw)
	var lhs float64
	for _, s := range set {
		q := math.Floor(s.Period / 5e-3)
		lhs += s.Length(bw) / (q - 1)
	}
	lhs += float64(len(set)) * fovhd
	wantSched := lhs <= 5e-3-tt.Overhead()
	if rep.Schedulable != wantSched {
		t.Errorf("Schedulable = %v, hand criterion says %v (lhs=%v rhs=%v)",
			rep.Schedulable, wantSched, lhs, 5e-3-tt.Overhead())
	}
	if math.Abs(rep.TotalAllocation-lhs) > 1e-15 {
		t.Errorf("TotalAllocation = %v, want Σh = %v", rep.TotalAllocation, lhs)
	}
}

func TestTTPReportStreams(t *testing.T) {
	const bw = 100e6
	tt := NewTTP(bw)
	set := ttpTestSet()
	rep, err := tt.Report(set)
	if err != nil {
		t.Fatal(err)
	}
	fovhd := tt.SyncFrame.OvhdTime(bw)
	for i, sr := range rep.Streams {
		// q_i = floor(P_i/TTRT).
		if want := int(math.Floor(set[i].Period / rep.TTRT)); sr.Q != want {
			t.Errorf("stream %d: Q = %d, want %d", i, sr.Q, want)
		}
		// C'_i = C_i + (q_i − 1)·Fovhd (eq. 8).
		wantAug := set[i].Length(bw) + float64(sr.Q-1)*fovhd
		if math.Abs(sr.AugmentedLength-wantAug) > 1e-15 {
			t.Errorf("stream %d: C' = %v, want %v", i, sr.AugmentedLength, wantAug)
		}
		// h_i = C'_i/(q_i − 1) (eq. 5): the deadline constraint holds with
		// equality by construction: (q−1)·h = C'.
		if math.Abs(float64(sr.Q-1)*sr.Allocation-wantAug) > 1e-12 {
			t.Errorf("stream %d: (q-1)h = %v, want C' = %v",
				i, float64(sr.Q-1)*sr.Allocation, wantAug)
		}
	}
}

func TestTTPMonotoneInScale(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	gen := message.Generator{Streams: 15, MeanPeriod: 100e-3, PeriodRatio: 10}
	set, err := gen.Draw(rng)
	if err != nil {
		t.Fatal(err)
	}
	tt := NewTTP(100e6)
	tt.Net = tt.Net.WithStations(15)
	wasSchedulable := false
	for _, scale := range []float64{30, 10, 3, 1, 0.3, 0.1, 0.01} {
		ok, err := tt.Schedulable(set.Scale(scale))
		if err != nil {
			t.Fatal(err)
		}
		if wasSchedulable && !ok {
			t.Fatalf("TTP schedulability not monotone at scale %v", scale)
		}
		if ok {
			wasSchedulable = true
		}
	}
	if !wasSchedulable {
		t.Fatal("set never schedulable; test vacuous")
	}
}

func TestTTPUnschedulableWhenOverheadDominates(t *testing.T) {
	// At 1 Mbps, 100 stations of frame overhead exceed the rotation
	// capacity: nothing is schedulable (the Figure 1 left edge).
	tt := NewTTP(1e6)
	gen := message.PaperGenerator()
	set, err := gen.Draw(rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	ok, err := tt.Schedulable(set.Scale(1e-9))
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("100-station FDDI at 1 Mbps should be infeasible even near zero load")
	}
}

func TestOverrunBudget(t *testing.T) {
	single := NewTTP(100e6)
	per := NewTTP(100e6)
	per.Overrun = OverrunPerStation
	fa := per.AsyncFrame.Time(100e6)
	wantDiff := float64(per.Net.Stations-1) * fa
	if got := per.Overhead() - single.Overhead(); math.Abs(got-wantDiff) > 1e-15 {
		t.Errorf("overhead difference = %v, want (n-1)·F = %v", got, wantDiff)
	}
	bad := NewTTP(100e6)
	bad.Overrun = OverrunBudget(42)
	if err := bad.Validate(); err == nil {
		t.Error("bad overrun budget accepted")
	}
	if OverrunSingleFrame.String() != "single-frame" || OverrunPerStation.String() != "per-station" {
		t.Error("OverrunBudget strings")
	}
	if OverrunBudget(9).String() == "" {
		t.Error("unknown budget should stringify")
	}
}

func TestPerStationOverrunIsMoreConservative(t *testing.T) {
	// Anything guaranteed under the per-station budget is guaranteed
	// under the paper's single-frame budget.
	rng := rand.New(rand.NewSource(44))
	gen := message.Generator{Streams: 15, MeanPeriod: 100e-3, PeriodRatio: 10}
	single := NewTTP(100e6)
	single.Net = single.Net.WithStations(15)
	per := single
	per.Overrun = OverrunPerStation
	checked := 0
	for trial := 0; trial < 40; trial++ {
		set, err := gen.Draw(rng)
		if err != nil {
			t.Fatal(err)
		}
		set, err = set.ScaleToUtilization(0.1+rng.Float64()*0.8, 100e6)
		if err != nil {
			t.Fatal(err)
		}
		okPer, err := per.Schedulable(set)
		if err != nil {
			t.Fatal(err)
		}
		okSingle, err := single.Schedulable(set)
		if err != nil {
			t.Fatal(err)
		}
		if okPer && !okSingle {
			t.Fatalf("per-station budget admitted a set the single-frame budget rejects")
		}
		if okPer {
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("vacuous: no set admitted under the conservative budget")
	}
}

func TestWorstCaseResponseBound(t *testing.T) {
	tt := NewTTP(100e6)
	rep, err := tt.Report(ttpTestSet())
	if err != nil {
		t.Fatal(err)
	}
	for i, sr := range rep.Streams {
		want := float64(sr.Q) * rep.TTRT
		if math.Abs(sr.WorstCaseResponse-want) > 1e-15 {
			t.Errorf("stream %d: WCR = %v, want q·TTRT = %v", i, sr.WorstCaseResponse, want)
		}
		// The bound never exceeds the period — that is the guarantee.
		if sr.WorstCaseResponse > sr.Stream.Period {
			t.Errorf("stream %d: WCR %v exceeds period %v", i, sr.WorstCaseResponse, sr.Stream.Period)
		}
	}
}

func TestTTPName(t *testing.T) {
	if NewTTP(1e8).Name() != "FDDI" {
		t.Error("TTP name")
	}
}

func TestTTRTRuleStrings(t *testing.T) {
	for rule, want := range map[TTRTRule]string{
		TTRTSqrtHeuristic: "sqrt(theta*Pmin)",
		TTRTHalfMinPeriod: "Pmin/2",
		TTRTFixed:         "fixed",
	} {
		if rule.String() != want {
			t.Errorf("%d.String() = %q, want %q", rule, rule.String(), want)
		}
	}
	if TTRTRule(77).String() == "" {
		t.Error("unknown rule should stringify")
	}
}

func TestTTPSchedulableErrors(t *testing.T) {
	tt := NewTTP(100e6)
	if _, err := tt.Schedulable(nil); err == nil {
		t.Error("nil set accepted")
	}
	bad := NewTTP(100e6)
	bad.SyncFrame.InfoBits = -1
	if _, err := bad.Schedulable(ttpTestSet()); err == nil {
		t.Error("invalid frame accepted")
	}
}

func TestIdealRM(t *testing.T) {
	// Interprets LengthBits as seconds of execution at bandwidth 1.
	sched := message.Set{
		{Period: 100e-3, LengthBits: 40e-3},
		{Period: 150e-3, LengthBits: 40e-3},
		{Period: 350e-3, LengthBits: 100e-3},
	}
	ok, err := IdealRM{}.Schedulable(sched)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("classic RM example should be schedulable")
	}
	over := message.Set{
		{Period: 100e-3, LengthBits: 60e-3},
		{Period: 140e-3, LengthBits: 60e-3},
	}
	ok, err = IdealRM{}.Schedulable(over)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("overloaded set reported schedulable")
	}
	if (IdealRM{}).Name() != "Ideal RM" {
		t.Error("IdealRM name")
	}
	if _, err := (IdealRM{}).Schedulable(nil); err == nil {
		t.Error("nil set accepted")
	}
}
