package core

import (
	"ringsched/internal/message"
	"ringsched/internal/rma"
)

// IdealRM is the methodological baseline of Lehoczky, Sha & Ding [10]: rate
// monotonic scheduling of independent periodic tasks with zero scheduling
// overhead, zero blocking, and perfect preemption — the setting in which
// average breakdown utilization was first shown to be ≈ 88 %.
//
// Message streams are interpreted as abstract tasks at a reference
// bandwidth of 1 bit/second, so LengthBits is the execution time in
// seconds. Use bandwidth 1 when estimating breakdown utilization with it.
type IdealRM struct{}

var _ Analyzer = IdealRM{}

// Name implements Analyzer.
func (IdealRM) Name() string { return "Ideal RM" }

// Schedulable implements Analyzer via exact response-time analysis with no
// blocking or overhead terms.
func (IdealRM) Schedulable(m message.Set) (bool, error) {
	if err := m.Validate(); err != nil {
		return false, err
	}
	sorted := m.SortRM()
	ts := make(rma.TaskSet, len(sorted))
	for i, s := range sorted {
		ts[i] = rma.Task{Cost: s.LengthBits, Period: s.Period}
	}
	res, err := rma.ResponseTimeAnalysis(ts, 0)
	if err != nil {
		return false, err
	}
	return res.Schedulable, nil
}
