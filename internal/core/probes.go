package core

import (
	"math"
	"slices"
	"sync"

	"ringsched/internal/message"
	"ringsched/internal/rma"
)

// The protocol analyzers keep their probe workspaces in per-type pools so
// that sweep worker goroutines recycle a handful of workspaces across
// millions of Monte Carlo samples instead of allocating per sample.
var (
	pdpJobs   = sync.Pool{New: func() any { return new(pdpJob) }}
	ttpJobs   = sync.Pool{New: func() any { return new(ttpJob) }}
	idealJobs = sync.Pool{New: func() any { return new(idealJob) }}
)

var (
	_ BatchAnalyzer = PDP{}
	_ BatchAnalyzer = TTP{}
	_ BatchAnalyzer = IdealRM{}
)

// byPeriod orders streams for slices.SortStableFunc exactly like
// message.Set.SortRM's sort.SliceStable(Period <): both are stable sorts
// under the same strict weak ordering, so they produce the same
// permutation.
func byPeriod(a, b message.Stream) int {
	switch {
	case a.Period < b.Period:
		return -1
	case a.Period > b.Period:
		return 1
	default:
		return 0
	}
}

// scaleError reproduces the error the reference per-call path reports for
// a degenerate scale: validation of the scaled set, first invalid stream
// in input order. It allocates, but only on the error path.
func scaleError(m message.Set, scale float64) error {
	if err := m.Scale(scale).Validate(); err != nil {
		return err
	}
	// Unreachable when called for an invalid scaled payload; fall back to
	// the generic length error rather than reporting success.
	return message.ErrBadLength
}

// --- PDP -------------------------------------------------------------

// pdpJob is the Theorem 4.1 probe: the RM order, blocking term, and the
// workspace's scheduling-point cache are fixed at bind (periods do not
// change under payload scaling); each probe recomputes only the augmented
// lengths C'(scale·bits) and re-runs the allocation-free exact test.
type pdpJob struct {
	p        PDP
	orig     message.Set
	streams  []message.Stream
	bits     []float64
	tasks    rma.TaskSet
	ws       rma.Workspace
	blocking float64
}

// NewProbe implements BatchAnalyzer.
func (p PDP) NewProbe(m message.Set) (Probe, func(), error) {
	if err := p.Validate(); err != nil {
		return nil, nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, nil, err
	}
	j := pdpJobs.Get().(*pdpJob)
	if err := j.bind(p, m); err != nil {
		pdpJobs.Put(j)
		return nil, nil, err
	}
	return j, func() { j.orig = nil; pdpJobs.Put(j) }, nil
}

func (j *pdpJob) bind(p PDP, m message.Set) error {
	j.p = p
	j.orig = m
	j.blocking = p.Blocking()
	j.streams = append(j.streams[:0], m...)
	slices.SortStableFunc(j.streams, byPeriod)
	j.bits = j.bits[:0]
	j.tasks = j.tasks[:0]
	for _, s := range j.streams {
		j.bits = append(j.bits, s.LengthBits)
		j.tasks = append(j.tasks, rma.Task{Cost: p.AugmentedLength(s), Period: s.Period})
	}
	return j.ws.Load(j.tasks)
}

// Schedulable implements Probe: bit-identical to
// p.Schedulable(m.Scale(scale)).
func (j *pdpJob) Schedulable(scale float64) (bool, error) {
	ts := j.ws.Tasks()
	for i, b := range j.bits {
		sb := b * scale
		if !(sb > 0) || math.IsInf(sb, 0) {
			return false, scaleError(j.orig, scale)
		}
		ts[i].Cost = j.p.augmentedFromBits(sb)
	}
	return j.ws.Schedulable(j.blocking)
}

// --- TTP -------------------------------------------------------------

// ttpJob is the Theorem 5.1 probe. TTRT, the rotation capacity, and every
// stream's guaranteed visit count q_i depend only on the periods, so they
// are fixed at bind; a probe is then a single pass accumulating
// Σ h_i(scale) in input order with the reference Report's exact
// arithmetic.
type ttpJob struct {
	t        TTP
	orig     message.Set
	bits     []float64 // input order
	qm1      []float64 // float64(q_i − 1); 0 when q_i < 2
	ovhd     []float64 // float64(q_i − 1)·Fovhd, the framing term of C'_i
	infinite []bool    // q_i < 2: the allocation is +Inf at any load
	bw       float64
	capacity float64 // TTRT − θ
}

// NewProbe implements BatchAnalyzer.
func (t TTP) NewProbe(m message.Set) (Probe, func(), error) {
	if err := t.Validate(); err != nil {
		return nil, nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, nil, err
	}
	j := ttpJobs.Get().(*ttpJob)
	j.bind(t, m)
	return j, func() { j.orig = nil; ttpJobs.Put(j) }, nil
}

func (j *ttpJob) bind(t TTP, m message.Set) {
	j.t = t
	j.orig = m
	j.bw = t.Net.BandwidthBPS
	ttrt := t.SelectTTRT(m)
	j.capacity = ttrt - t.Overhead()
	fovhd := t.SyncFrame.OvhdTime(j.bw)
	j.bits = j.bits[:0]
	j.qm1 = j.qm1[:0]
	j.ovhd = j.ovhd[:0]
	j.infinite = j.infinite[:0]
	for _, s := range m {
		// Identical to the reference report with availability 1: the
		// multiplication by avail is exact for avail == 1.
		q := int(math.Floor(1 * s.Period / ttrt))
		if q < 2 {
			q = 1
		}
		j.bits = append(j.bits, s.LengthBits)
		j.qm1 = append(j.qm1, float64(q-1))
		j.ovhd = append(j.ovhd, float64(q-1)*fovhd)
		j.infinite = append(j.infinite, q < 2)
	}
}

// Schedulable implements Probe: bit-identical to
// t.Schedulable(m.Scale(scale)).
func (j *ttpJob) Schedulable(scale float64) (bool, error) {
	var total float64
	for i, b := range j.bits {
		sb := b * scale
		if !(sb > 0) || math.IsInf(sb, 0) {
			return false, scaleError(j.orig, scale)
		}
		var h float64
		if j.infinite[i] {
			h = math.Inf(1)
		} else {
			h = (sb/j.bw + j.ovhd[i]) / j.qm1[i]
		}
		total += h
	}
	return total <= j.capacity, nil
}

// --- Ideal RM --------------------------------------------------------

// idealJob is the zero-overhead baseline probe: costs are the scaled bit
// counts directly, blocking is zero.
type idealJob struct {
	orig  message.Set
	bits  []float64 // RM-sorted order
	tasks rma.TaskSet
	ws    rma.Workspace
}

// NewProbe implements BatchAnalyzer.
func (IdealRM) NewProbe(m message.Set) (Probe, func(), error) {
	if err := m.Validate(); err != nil {
		return nil, nil, err
	}
	j := idealJobs.Get().(*idealJob)
	if err := j.bind(m); err != nil {
		idealJobs.Put(j)
		return nil, nil, err
	}
	return j, func() { j.orig = nil; idealJobs.Put(j) }, nil
}

func (j *idealJob) bind(m message.Set) error {
	j.orig = m
	j.tasks = j.tasks[:0]
	j.bits = j.bits[:0]
	sorted := m.SortRM()
	for _, s := range sorted {
		j.bits = append(j.bits, s.LengthBits)
		j.tasks = append(j.tasks, rma.Task{Cost: s.LengthBits, Period: s.Period})
	}
	return j.ws.Load(j.tasks)
}

// Schedulable implements Probe: bit-identical to
// IdealRM{}.Schedulable(m.Scale(scale)).
func (j *idealJob) Schedulable(scale float64) (bool, error) {
	ts := j.ws.Tasks()
	for i, b := range j.bits {
		sb := b * scale
		if !(sb > 0) || math.IsInf(sb, 0) {
			return false, scaleError(j.orig, scale)
		}
		ts[i].Cost = sb
	}
	return j.ws.Schedulable(0)
}
