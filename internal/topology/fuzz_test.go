package topology

import (
	"reflect"
	"testing"
)

// FuzzTopologySpec checks the grammar's canonical round trip: any spec that
// parses yields a validated topology whose Spec() rendering re-parses to the
// identical value. This is the same fixed-point property the fault-model
// fuzzer pins for internal/faults.
func FuzzTopologySpec(f *testing.F) {
	f.Add(lineSpec)
	f.Add("ring:name=a")
	f.Add("ring:name=a,proto=8025,bw=4e6,n=10,spacing=50,delay=2,token=24,prop=0.67")
	f.Add("ring:name=a + ring:name=b + bridge:a=a,b=b,latency=100us,rate=1e6,buffer=4096")
	f.Add("ring:name=a + flow:name=x,src=a,period=1ms,bits=8")
	f.Add("ring:name=a+flow:src=a,period=2,bits=1e3+flow:src=a,period=3,bits=9")
	f.Fuzz(func(t *testing.T, spec string) {
		topo, err := Parse(spec)
		if err != nil {
			return // unparsable input is fine; crashes and drift are not
		}
		if err := topo.Validate(); err != nil {
			t.Fatalf("Parse(%q) returned an invalid topology: %v", spec, err)
		}
		if c := topo.Canonicalize(); !reflect.DeepEqual(c, topo) {
			t.Fatalf("Parse(%q) returned a non-canonical topology:\n got  %+v\n want %+v", spec, topo, c)
		}
		rendered := topo.Spec()
		again, err := Parse(rendered)
		if err != nil {
			t.Fatalf("Spec() of a valid topology does not re-parse:\n spec   %q\n render %q\n err    %v",
				spec, rendered, err)
		}
		if !reflect.DeepEqual(again, topo) {
			t.Fatalf("canonical round trip drift:\n spec   %q\n render %q\n first  %+v\n second %+v",
				spec, rendered, topo, again)
		}
	})
}
