package topology

import (
	"errors"
	"math"
	"reflect"
	"testing"

	"ringsched/internal/ring"
)

func threeRings() Topology {
	return Topology{
		Nodes: []Node{
			{Name: "a", Protocol: Modified8025, Ring: ring.IEEE8025(4e6)},
			{Name: "b", Protocol: FDDI, Ring: ring.FDDI(100e6)},
			{Name: "c", Protocol: Standard8025, Ring: ring.IEEE8025(16e6)},
		},
		Bridges: []Bridge{
			{A: "a", B: "b", Latency: 1e-3},
			{A: "b", B: "c", Latency: 2e-3},
		},
		Flows: []Flow{
			{Name: "cross", Src: "a", Dst: "c", Period: 100e-3, LengthBits: 4096},
			{Name: "local", Src: "b", Dst: "b", Period: 10e-3, LengthBits: 1024},
		},
	}
}

func TestValidateAcceptsLine(t *testing.T) {
	if err := threeRings().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Topology)
		want error
	}{
		{"no rings", func(t *Topology) { t.Nodes = nil }, ErrBadTopology},
		{"bad name", func(t *Topology) { t.Nodes[0].Name = "a b" }, ErrBadName},
		{"dup ring", func(t *Topology) { t.Nodes[1].Name = "a" }, ErrBadTopology},
		{"bad protocol", func(t *Topology) { t.Nodes[0].Protocol = "token-bus" }, ErrBadProtocol},
		{"bad plant", func(t *Topology) { t.Nodes[0].Ring.BandwidthBPS = 0 }, ring.ErrNoBandwidth},
		{"nan plant", func(t *Topology) { t.Nodes[0].Ring.TokenBits = math.NaN() }, ErrBadTopology},
		{"too many stations", func(t *Topology) { t.Nodes[0].Ring.Stations = MaxStations + 1 }, ErrBadTopology},
		{"unknown endpoint", func(t *Topology) { t.Bridges[0].B = "zz" }, ErrUnknownRing},
		{"self bridge", func(t *Topology) { t.Bridges[0].B = "a" }, ErrBadTopology},
		{"dup bridge", func(t *Topology) { t.Bridges[1] = Bridge{A: "b", B: "a"} }, ErrBadTopology},
		{"negative latency", func(t *Topology) { t.Bridges[0].Latency = -1 }, ErrBadTopology},
		{"disconnected", func(t *Topology) { t.Bridges = t.Bridges[:1] }, ErrDisconnected},
		{"unnamed flow", func(t *Topology) { t.Flows[0].Name = "" }, ErrBadName},
		{"dup flow", func(t *Topology) { t.Flows[1].Name = "cross" }, ErrBadTopology},
		{"unknown src", func(t *Topology) { t.Flows[0].Src = "zz" }, ErrUnknownRing},
		{"bad period", func(t *Topology) { t.Flows[0].Period = 0 }, ErrBadTopology},
		{"inf bits", func(t *Topology) { t.Flows[0].LengthBits = math.Inf(1) }, ErrBadTopology},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			topo := threeRings()
			tc.mut(&topo)
			if err := topo.Validate(); !errors.Is(err, tc.want) {
				t.Errorf("err = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestCanonicalizeSortsAndNames(t *testing.T) {
	topo := Topology{
		Nodes: []Node{
			{Name: "z", Protocol: FDDI, Ring: ring.FDDI(100e6)},
			{Name: "a", Protocol: FDDI, Ring: ring.FDDI(100e6)},
		},
		Bridges: []Bridge{{A: "z", B: "a", Latency: 1e-3}},
		Flows: []Flow{
			{Src: "z", Dst: "a", Period: 1, LengthBits: 8},
			{Name: "f1", Src: "a", Dst: "a", Period: 1, LengthBits: 8},
		},
	}
	c := topo.Canonicalize()
	if c.Nodes[0].Name != "a" || c.Nodes[1].Name != "z" {
		t.Errorf("rings not sorted: %v, %v", c.Nodes[0].Name, c.Nodes[1].Name)
	}
	if c.Bridges[0].A != "a" || c.Bridges[0].B != "z" {
		t.Errorf("bridge not normalized: %+v", c.Bridges[0])
	}
	// The unnamed flow takes the first free auto name, f2.
	if c.Flows[1].Name != "f2" || c.Flows[1].Src != "z" {
		t.Errorf("flows = %+v", c.Flows)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if again := c.Canonicalize(); !reflect.DeepEqual(again, c) {
		t.Error("Canonicalize is not idempotent")
	}
	// The receiver is not modified.
	if topo.Nodes[0].Name != "z" {
		t.Error("Canonicalize modified its receiver")
	}
}

func TestRouteShortestDeterministic(t *testing.T) {
	topo := threeRings().Canonicalize()
	path, err := topo.Route("a", "c")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{topo.NodeIndex("a"), topo.NodeIndex("b"), topo.NodeIndex("c")}
	if !reflect.DeepEqual(path, want) {
		t.Errorf("path = %v, want %v", path, want)
	}
	local, err := topo.Route("b", "b")
	if err != nil {
		t.Fatal(err)
	}
	if len(local) != 1 || local[0] != topo.NodeIndex("b") {
		t.Errorf("local path = %v", local)
	}
}

func TestRoutePrefersFewestBridges(t *testing.T) {
	// Square a-b-c-d with a diagonal a-c: route a→c must take the diagonal.
	topo := Topology{
		Nodes: []Node{
			{Name: "a", Protocol: FDDI, Ring: ring.FDDI(100e6)},
			{Name: "b", Protocol: FDDI, Ring: ring.FDDI(100e6)},
			{Name: "c", Protocol: FDDI, Ring: ring.FDDI(100e6)},
			{Name: "d", Protocol: FDDI, Ring: ring.FDDI(100e6)},
		},
		Bridges: []Bridge{
			{A: "a", B: "b"}, {A: "b", B: "c"}, {A: "c", B: "d"}, {A: "a", B: "d"}, {A: "a", B: "c"},
		},
	}.Canonicalize()
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	path, err := topo.Route("a", "c")
	if err != nil {
		t.Fatal(err)
	}
	if len(path) != 2 {
		t.Errorf("path = %v, want the 1-bridge diagonal", path)
	}
}

func TestBridgeRateDefaultsToSlowerRing(t *testing.T) {
	topo := threeRings().Canonicalize()
	i := topo.BridgeIndex("a", "b")
	if i < 0 {
		t.Fatal("bridge a-b missing")
	}
	if got := topo.BridgeRate(i); got != 4e6 {
		t.Errorf("rate = %g, want the slower ring's 4e6", got)
	}
	topo.Bridges[i].RateBPS = 1e6
	if got := topo.BridgeRate(i); got != 1e6 {
		t.Errorf("explicit rate = %g, want 1e6", got)
	}
}

func TestScaleFlows(t *testing.T) {
	topo := threeRings()
	scaled := topo.ScaleFlows(2)
	if scaled.Flows[0].LengthBits != 2*topo.Flows[0].LengthBits {
		t.Errorf("scaled bits = %g", scaled.Flows[0].LengthBits)
	}
	if topo.Flows[0].LengthBits != 4096 {
		t.Error("ScaleFlows modified its receiver")
	}
}

func TestProtocolPlantPreset(t *testing.T) {
	if got := Modified8025.PlantPreset().Name; got != "ieee8025" {
		t.Errorf("802.5 preset = %q", got)
	}
	if got := FDDI.PlantPreset().Name; got != "fddi" {
		t.Errorf("fddi preset = %q", got)
	}
}
