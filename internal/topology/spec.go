package topology

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// ErrBadSpec reports an unparsable topology specification.
var ErrBadSpec = errors.New("topology: bad topology spec")

// Parse parses the compact topology specification used by the -topology
// CLI flags and the /v1/topology/analyze endpoint. The grammar mirrors the
// fault-model spec of internal/faults:
//
//	spec    := clause { "+" clause }
//	clause  := kind ":" key "=" value { "," key "=" value }
//	kind    := "ring" | "bridge" | "flow"
//
// Keys per kind (defaults in parentheses):
//
//	ring:   name, proto (fddi), bw (100e6), n, spacing, delay, token, prop
//	bridge: a, b, latency (0), rate (0 ⇒ min ring bandwidth), buffer (0 ⇒ unlimited)
//	flow:   name (auto), src, dst (src), period, bits
//
// A ring's plant parameters default to the canonical preset for its
// protocol (ring.IEEE8025 for 8025/8025mod, ring.FDDI for fddi) at the
// given bandwidth; n, spacing, delay, token and prop override individual
// plant fields. Rates and sizes are plain numbers (bits per second, bits);
// latency and period accept Go duration syntax ("2ms") or a float in
// seconds. Example:
//
//	ring:name=shop,proto=8025mod,bw=4e6 + ring:name=office,proto=fddi +
//	bridge:a=shop,b=office,latency=1ms + flow:src=shop,dst=office,period=50ms,bits=4096
//
// The result is canonicalized and validated; Parse(t.Spec()) reproduces t
// exactly for any canonical t.
func Parse(spec string) (Topology, error) {
	var t Topology
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return Topology{}, fmt.Errorf("%w: empty spec", ErrBadSpec)
	}
	for _, clause := range strings.Split(spec, "+") {
		if err := parseClause(&t, clause); err != nil {
			return Topology{}, err
		}
	}
	t = t.Canonicalize()
	if err := t.Validate(); err != nil {
		return Topology{}, err
	}
	return t, nil
}

func parseClause(t *Topology, clause string) error {
	kind, params, _ := strings.Cut(strings.TrimSpace(clause), ":")
	kv, err := parseParams(params)
	if err != nil {
		return err
	}
	p := clauseParams{kind: kind, kv: kv}
	switch kind {
	case "ring":
		err = parseRing(t, p)
	case "bridge":
		err = parseBridge(t, p)
	case "flow":
		err = parseFlow(t, p)
	default:
		return fmt.Errorf("%w: unknown clause kind %q (valid kinds: bridge, flow, ring)",
			ErrBadSpec, kind)
	}
	if err != nil {
		return err
	}
	return p.leftover()
}

func parseRing(t *Topology, p clauseParams) error {
	name, err := p.requireStr("name")
	if err != nil {
		return err
	}
	proto := Protocol(p.takeStr("proto", string(FDDI)))
	if !proto.Valid() {
		return fmt.Errorf("%w: proto=%q (valid: 8025, 8025mod, fddi)", ErrBadSpec, proto)
	}
	bw, err := p.take("bw", 100e6, false)
	if err != nil {
		return err
	}
	base := proto.PlantPreset().New(bw)
	cfg := base
	n, err := p.take("n", float64(base.Stations), false)
	if err != nil {
		return err
	}
	if !(n >= 1 && n <= MaxStations) || n != float64(int(n)) {
		return fmt.Errorf("%w: n=%g is not an integer in [1, %d]", ErrBadSpec, n, MaxStations)
	}
	cfg.Stations = int(n)
	if cfg.SpacingMeters, err = p.take("spacing", base.SpacingMeters, false); err != nil {
		return err
	}
	if cfg.BitDelayPerStation, err = p.take("delay", base.BitDelayPerStation, false); err != nil {
		return err
	}
	if cfg.TokenBits, err = p.take("token", base.TokenBits, false); err != nil {
		return err
	}
	if cfg.PropagationFraction, err = p.take("prop", base.PropagationFraction, false); err != nil {
		return err
	}
	t.Nodes = append(t.Nodes, Node{Name: name, Protocol: proto, Ring: cfg})
	return nil
}

func parseBridge(t *Topology, p clauseParams) error {
	a, err := p.requireStr("a")
	if err != nil {
		return err
	}
	b, err := p.requireStr("b")
	if err != nil {
		return err
	}
	br := Bridge{A: a, B: b}
	if br.Latency, err = p.take("latency", 0, true); err != nil {
		return err
	}
	if br.RateBPS, err = p.take("rate", 0, false); err != nil {
		return err
	}
	if br.BufferBits, err = p.take("buffer", 0, false); err != nil {
		return err
	}
	t.Bridges = append(t.Bridges, br)
	return nil
}

func parseFlow(t *Topology, p clauseParams) error {
	src, err := p.requireStr("src")
	if err != nil {
		return err
	}
	f := Flow{
		Name: p.takeStr("name", ""),
		Src:  src,
		Dst:  p.takeStr("dst", src),
	}
	if f.Period, err = p.require("period", true); err != nil {
		return err
	}
	if f.LengthBits, err = p.require("bits", false); err != nil {
		return err
	}
	t.Flows = append(t.Flows, f)
	return nil
}

// clauseParams wraps one clause's key/value pairs; taken keys are removed
// so leftover can flag unknown keys.
type clauseParams struct {
	kind string
	kv   map[string]string
}

func (p clauseParams) takeStr(key, def string) string {
	raw, ok := p.kv[key]
	if !ok {
		return def
	}
	delete(p.kv, key)
	return raw
}

func (p clauseParams) requireStr(key string) (string, error) {
	raw, ok := p.kv[key]
	if !ok {
		return "", fmt.Errorf("%w: %s clause needs %s=", ErrBadSpec, p.kind, key)
	}
	delete(p.kv, key)
	return raw, nil
}

func (p clauseParams) take(key string, def float64, duration bool) (float64, error) {
	raw, ok := p.kv[key]
	if !ok {
		return def, nil
	}
	delete(p.kv, key)
	if duration {
		if d, derr := time.ParseDuration(raw); derr == nil {
			return d.Seconds(), nil
		}
	}
	v, perr := strconv.ParseFloat(raw, 64)
	if perr != nil {
		return 0, fmt.Errorf("%w: %s=%q", ErrBadSpec, key, raw)
	}
	return v, nil
}

func (p clauseParams) require(key string, duration bool) (float64, error) {
	if _, ok := p.kv[key]; !ok {
		return 0, fmt.Errorf("%w: %s clause needs %s=", ErrBadSpec, p.kind, key)
	}
	return p.take(key, 0, duration)
}

func (p clauseParams) leftover() error {
	for key := range p.kv {
		return fmt.Errorf("%w: unknown %s key %q (valid %s keys: %s)",
			ErrBadSpec, p.kind, key, p.kind, clauseKeys[p.kind])
	}
	return nil
}

// clauseKeys lists the accepted keys per clause kind, for error messages.
var clauseKeys = map[string]string{
	"ring":   "name, proto, bw, n, spacing, delay, token, prop",
	"bridge": "a, b, latency, rate, buffer",
	"flow":   "name, src, dst, period, bits",
}

func parseParams(params string) (map[string]string, error) {
	kv := map[string]string{}
	if strings.TrimSpace(params) == "" {
		return kv, nil
	}
	for _, pair := range strings.Split(params, ",") {
		key, val, ok := strings.Cut(pair, "=")
		key = strings.TrimSpace(key)
		if !ok || key == "" {
			return nil, fmt.Errorf("%w: want key=value, got %q", ErrBadSpec, pair)
		}
		if _, dup := kv[key]; dup {
			return nil, fmt.Errorf("%w: duplicate key %q", ErrBadSpec, key)
		}
		kv[key] = strings.TrimSpace(val)
	}
	return kv, nil
}

// num renders a float in the shortest form that re-parses exactly, with
// the exponent's "+" stripped ("4e+06" → "4e06") so the rendering never
// collides with the "+" clause separator.
func num(v float64) string {
	return strings.Replace(strconv.FormatFloat(v, 'g', -1, 64), "e+", "e", 1)
}

// Spec renders the topology in the canonical form Parse accepts: rings,
// then bridges, then flows, each in canonical order, with durations as
// float seconds and default-valued keys omitted. Parse(t.Spec()) reproduces
// a canonical t exactly.
func (t Topology) Spec() string {
	var parts []string
	for _, n := range t.Nodes {
		parts = append(parts, ringClause(n))
	}
	for _, b := range t.Bridges {
		s := fmt.Sprintf("bridge:a=%s,b=%s", b.A, b.B)
		if b.Latency != 0 {
			s += fmt.Sprintf(",latency=%s", num(b.Latency))
		}
		if b.RateBPS != 0 {
			s += fmt.Sprintf(",rate=%s", num(b.RateBPS))
		}
		if b.BufferBits != 0 {
			s += fmt.Sprintf(",buffer=%s", num(b.BufferBits))
		}
		parts = append(parts, s)
	}
	for _, f := range t.Flows {
		s := fmt.Sprintf("flow:name=%s,src=%s", f.Name, f.Src)
		if f.Dst != f.Src {
			s += fmt.Sprintf(",dst=%s", f.Dst)
		}
		s += fmt.Sprintf(",period=%s,bits=%s", num(f.Period), num(f.LengthBits))
		parts = append(parts, s)
	}
	return strings.Join(parts, " + ")
}

func ringClause(n Node) string {
	s := fmt.Sprintf("ring:name=%s", n.Name)
	if n.Protocol != FDDI {
		s += fmt.Sprintf(",proto=%s", string(n.Protocol))
	}
	cfg := n.Ring
	if cfg.BandwidthBPS != 100e6 {
		s += fmt.Sprintf(",bw=%s", num(cfg.BandwidthBPS))
	}
	base := n.Protocol.PlantPreset().New(cfg.BandwidthBPS)
	if cfg.Stations != base.Stations {
		s += fmt.Sprintf(",n=%d", cfg.Stations)
	}
	if cfg.SpacingMeters != base.SpacingMeters {
		s += fmt.Sprintf(",spacing=%s", num(cfg.SpacingMeters))
	}
	if cfg.BitDelayPerStation != base.BitDelayPerStation {
		s += fmt.Sprintf(",delay=%s", num(cfg.BitDelayPerStation))
	}
	if cfg.TokenBits != base.TokenBits {
		s += fmt.Sprintf(",token=%s", num(cfg.TokenBits))
	}
	if cfg.PropagationFraction != base.PropagationFraction {
		s += fmt.Sprintf(",prop=%s", num(cfg.PropagationFraction))
	}
	return s
}
