// Package topology models a bridged ring-of-rings network: a validated
// graph of ring.Config plants joined by store-and-forward bridges, plus the
// periodic flows routed across it.
//
// Kamat & Zhao's schedulability analysis is inherently single-ring; real
// token-ring deployments were bridged multi-ring networks. This package
// supplies the shared topology substrate that internal/core composes into
// end-to-end delay bounds (network calculus over the bridges, exact
// per-ring verdicts inside each ring) and internal/tokensim composes into
// a multi-ring discrete-event simulation. A single-ring system is the
// 1-node special case of the graph, not a separate code path.
//
// All times are in seconds, rates in bits per second, sizes in bits.
package topology

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"

	"ringsched/internal/ring"
)

// Validation errors. All are wrapped by fmt.Errorf with detail and match
// with errors.Is.
var (
	ErrBadTopology  = errors.New("topology: invalid topology")
	ErrBadName      = errors.New("topology: bad name")
	ErrUnknownRing  = errors.New("topology: unknown ring")
	ErrDisconnected = errors.New("topology: disconnected topology")
	ErrBadProtocol  = errors.New("topology: unknown protocol")
)

// Protocol selects the MAC protocol a ring runs. The values match the
// -protocol spellings of the ringsim CLI.
type Protocol string

const (
	// Standard8025 is the priority driven protocol with a free token
	// issued after every frame (Theorem 4.1, standard variant).
	Standard8025 Protocol = "8025"
	// Modified8025 is the priority driven protocol where the holder keeps
	// the token across queued frames (Theorem 4.1, modified variant).
	Modified8025 Protocol = "8025mod"
	// FDDI is the timed token protocol (Theorem 5.1).
	FDDI Protocol = "fddi"
)

// Protocols lists the valid protocol values.
func Protocols() []Protocol { return []Protocol{Standard8025, Modified8025, FDDI} }

// Valid reports whether p is a known protocol.
func (p Protocol) Valid() bool {
	switch p {
	case Standard8025, Modified8025, FDDI:
		return true
	}
	return false
}

// PlantPreset returns the canonical plant preset for the protocol's
// hardware: IEEE 802.5 stations for the priority driven variants, FDDI
// stations for the timed token protocol.
func (p Protocol) PlantPreset() ring.Preset {
	name := "ieee8025"
	if p == FDDI {
		name = "fddi"
	}
	preset, err := ring.PresetByName(name)
	if err != nil {
		panic(err) // the table always carries both paper presets
	}
	return preset
}

// Node is one ring of the topology.
type Node struct {
	// Name identifies the ring in bridges, flows and reports.
	Name string
	// Protocol is the MAC protocol the ring runs.
	Protocol Protocol
	// Ring is the physical plant.
	Ring ring.Config
}

// Bridge is a store-and-forward link joining two rings. A bridge serves
// both directions independently: each direction is a FIFO queue drained at
// the forwarding rate, plus a fixed forwarding latency per frame.
type Bridge struct {
	// A and B name the joined rings. Canonical form has A < B; the bridge
	// itself is undirected (analyzed and simulated per direction).
	A, B string
	// Latency is the fixed forwarding (relay processing) delay in seconds.
	Latency float64
	// RateBPS is the forwarding rate of each direction. Zero means the
	// bridge forwards at the slower of the two ring bandwidths.
	RateBPS float64
	// BufferBits bounds the queued bits per direction. Zero means
	// unlimited buffering.
	BufferBits float64
}

// Endpoints returns the bridge's ring names in normalized order.
func (b Bridge) Endpoints() (string, string) {
	if b.B < b.A {
		return b.B, b.A
	}
	return b.A, b.B
}

// Flow is a periodic synchronous message stream injected at its source
// ring and delivered, across zero or more bridges, on its destination ring.
// Its relative deadline is its period, end to end.
type Flow struct {
	// Name identifies the flow in reports. Canonicalize assigns f1, f2, …
	// to unnamed flows.
	Name string
	// Src and Dst name the source and destination rings. A local flow has
	// Src == Dst.
	Src, Dst string
	// Period is the message period in seconds.
	Period float64
	// LengthBits is the message length per period.
	LengthBits float64
}

// RateBPS is the flow's long-run arrival rate ρ = LengthBits/Period.
func (f Flow) RateBPS() float64 { return f.LengthBits / f.Period }

// Local reports whether the flow stays on one ring.
func (f Flow) Local() bool { return f.Src == f.Dst }

// Topology is a bridged ring-of-rings network. The zero value is not
// usable; build one with Parse or fill the fields and call Canonicalize
// then Validate.
type Topology struct {
	Nodes   []Node
	Bridges []Bridge
	Flows   []Flow
}

// SingleRing reports whether the topology is the 1-node special case.
func (t Topology) SingleRing() bool { return len(t.Nodes) == 1 }

// NodeIndex returns the index of the named ring, or -1.
func (t Topology) NodeIndex(name string) int {
	for i, n := range t.Nodes {
		if n.Name == name {
			return i
		}
	}
	return -1
}

// BridgeIndex returns the index of the bridge joining a and b (in either
// orientation), or -1.
func (t Topology) BridgeIndex(a, b string) int {
	for i, br := range t.Bridges {
		if (br.A == a && br.B == b) || (br.A == b && br.B == a) {
			return i
		}
	}
	return -1
}

// BridgeRate resolves the forwarding rate of bridge i: its configured rate,
// or the slower of the two ring bandwidths when unset.
func (t Topology) BridgeRate(i int) float64 {
	br := t.Bridges[i]
	if br.RateBPS > 0 {
		return br.RateBPS
	}
	ra := t.Nodes[t.NodeIndex(br.A)].Ring.BandwidthBPS
	rb := t.Nodes[t.NodeIndex(br.B)].Ring.BandwidthBPS
	return math.Min(ra, rb)
}

// ScaleFlows returns a copy with every flow's payload scaled by factor.
// Breakdown sweeps use this the way message.Set.Scale is used on one ring.
func (t Topology) ScaleFlows(factor float64) Topology {
	t = t.clone()
	for i := range t.Flows {
		t.Flows[i].LengthBits *= factor
	}
	return t
}

func (t Topology) clone() Topology {
	return Topology{
		Nodes:   append([]Node(nil), t.Nodes...),
		Bridges: append([]Bridge(nil), t.Bridges...),
		Flows:   append([]Flow(nil), t.Flows...),
	}
}

// posZero maps negative zero to positive zero so canonical topologies
// compare equal bit for bit after a spec round trip.
func posZero(v float64) float64 {
	if v == 0 {
		return 0
	}
	return v
}

// Canonicalize returns the canonical form of the topology: rings sorted by
// name, bridges normalized (A < B) and sorted, unnamed flows assigned f1,
// f2, … in input order, flows sorted by (src, dst, period, bits, name),
// and every negative zero normalized. Canonicalize is idempotent and does
// not modify the receiver. Parse canonicalizes; hand-built topologies
// should canonicalize before Validate.
func (t Topology) Canonicalize() Topology {
	t = t.clone()
	for i := range t.Nodes {
		r := &t.Nodes[i].Ring
		r.SpacingMeters = posZero(r.SpacingMeters)
		r.BandwidthBPS = posZero(r.BandwidthBPS)
		r.BitDelayPerStation = posZero(r.BitDelayPerStation)
		r.TokenBits = posZero(r.TokenBits)
		r.PropagationFraction = posZero(r.PropagationFraction)
	}
	sort.SliceStable(t.Nodes, func(i, j int) bool { return t.Nodes[i].Name < t.Nodes[j].Name })

	for i := range t.Bridges {
		b := &t.Bridges[i]
		b.A, b.B = b.Endpoints()
		b.Latency = posZero(b.Latency)
		b.RateBPS = posZero(b.RateBPS)
		b.BufferBits = posZero(b.BufferBits)
	}
	sort.SliceStable(t.Bridges, func(i, j int) bool {
		if t.Bridges[i].A != t.Bridges[j].A {
			return t.Bridges[i].A < t.Bridges[j].A
		}
		return t.Bridges[i].B < t.Bridges[j].B
	})

	used := make(map[string]bool, len(t.Flows))
	for _, f := range t.Flows {
		used[f.Name] = true
	}
	next := 1
	for i := range t.Flows {
		if t.Flows[i].Name != "" {
			continue
		}
		for used[fmt.Sprintf("f%d", next)] {
			next++
		}
		t.Flows[i].Name = fmt.Sprintf("f%d", next)
		used[t.Flows[i].Name] = true
	}
	for i := range t.Flows {
		t.Flows[i].Period = posZero(t.Flows[i].Period)
		t.Flows[i].LengthBits = posZero(t.Flows[i].LengthBits)
	}
	sort.SliceStable(t.Flows, func(i, j int) bool {
		a, b := t.Flows[i], t.Flows[j]
		switch {
		case a.Src != b.Src:
			return a.Src < b.Src
		case a.Dst != b.Dst:
			return a.Dst < b.Dst
		case a.Period != b.Period:
			return a.Period < b.Period
		case a.LengthBits != b.LengthBits:
			return a.LengthBits < b.LengthBits
		}
		return a.Name < b.Name
	})
	return t
}

// validName reports whether a ring or flow name is usable inside the spec
// grammar (no separators, no whitespace).
func validName(name string) bool {
	if name == "" {
		return false
	}
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
		case r == '_', r == '-', r == '.':
		default:
			return false
		}
	}
	return true
}

func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// MaxStations bounds the per-ring station count accepted by Validate, so a
// hostile spec cannot demand absurd simulation state.
const MaxStations = 1 << 20

// Validate reports the first structural violation, or nil. It checks ring
// plants, name uniqueness, bridge endpoints, graph connectivity, and flow
// parameters. Flows must be named (Canonicalize names them).
func (t Topology) Validate() error {
	if len(t.Nodes) == 0 {
		return fmt.Errorf("%w: no rings", ErrBadTopology)
	}
	names := make(map[string]bool, len(t.Nodes))
	for _, n := range t.Nodes {
		if !validName(n.Name) {
			return fmt.Errorf("%w: ring name %q (want [A-Za-z0-9_.-]+)", ErrBadName, n.Name)
		}
		if names[n.Name] {
			return fmt.Errorf("%w: duplicate ring %q", ErrBadTopology, n.Name)
		}
		names[n.Name] = true
		if !n.Protocol.Valid() {
			return fmt.Errorf("%w: ring %q protocol %q (valid: 8025, 8025mod, fddi)",
				ErrBadProtocol, n.Name, string(n.Protocol))
		}
		r := n.Ring
		if !finite(r.SpacingMeters) || !finite(r.BandwidthBPS) || !finite(r.BitDelayPerStation) ||
			!finite(r.TokenBits) || !finite(r.PropagationFraction) {
			return fmt.Errorf("%w: ring %q has a non-finite plant parameter", ErrBadTopology, n.Name)
		}
		if r.Stations > MaxStations {
			return fmt.Errorf("%w: ring %q has %d stations (max %d)",
				ErrBadTopology, n.Name, r.Stations, MaxStations)
		}
		if err := r.Validate(); err != nil {
			return fmt.Errorf("ring %q: %w", n.Name, err)
		}
	}
	seen := make(map[[2]string]bool, len(t.Bridges))
	for _, b := range t.Bridges {
		a, bb := b.Endpoints()
		if !names[a] {
			return fmt.Errorf("%w: bridge endpoint %q", ErrUnknownRing, a)
		}
		if !names[bb] {
			return fmt.Errorf("%w: bridge endpoint %q", ErrUnknownRing, bb)
		}
		if a == bb {
			return fmt.Errorf("%w: bridge joins ring %q to itself", ErrBadTopology, a)
		}
		if seen[[2]string{a, bb}] {
			return fmt.Errorf("%w: duplicate bridge %s-%s", ErrBadTopology, a, bb)
		}
		seen[[2]string{a, bb}] = true
		if !finite(b.Latency) || b.Latency < 0 {
			return fmt.Errorf("%w: bridge %s-%s latency %g", ErrBadTopology, a, bb, b.Latency)
		}
		if !finite(b.RateBPS) || b.RateBPS < 0 {
			return fmt.Errorf("%w: bridge %s-%s rate %g", ErrBadTopology, a, bb, b.RateBPS)
		}
		if !finite(b.BufferBits) || b.BufferBits < 0 {
			return fmt.Errorf("%w: bridge %s-%s buffer %g", ErrBadTopology, a, bb, b.BufferBits)
		}
	}
	if err := t.checkConnected(); err != nil {
		return err
	}
	flowNames := make(map[string]bool, len(t.Flows))
	for _, f := range t.Flows {
		if !validName(f.Name) {
			return fmt.Errorf("%w: flow name %q (want [A-Za-z0-9_.-]+)", ErrBadName, f.Name)
		}
		if flowNames[f.Name] {
			return fmt.Errorf("%w: duplicate flow %q", ErrBadTopology, f.Name)
		}
		flowNames[f.Name] = true
		if !names[f.Src] {
			return fmt.Errorf("%w: flow %q source %q", ErrUnknownRing, f.Name, f.Src)
		}
		if !names[f.Dst] {
			return fmt.Errorf("%w: flow %q destination %q", ErrUnknownRing, f.Name, f.Dst)
		}
		if !finite(f.Period) || f.Period <= 0 {
			return fmt.Errorf("%w: flow %q period %g", ErrBadTopology, f.Name, f.Period)
		}
		if !finite(f.LengthBits) || f.LengthBits <= 0 {
			return fmt.Errorf("%w: flow %q length %g bits", ErrBadTopology, f.Name, f.LengthBits)
		}
	}
	return nil
}

func (t Topology) checkConnected() error {
	if len(t.Nodes) <= 1 {
		return nil
	}
	adj := t.adjacency()
	visited := make([]bool, len(t.Nodes))
	queue := []int{0}
	visited[0] = true
	reached := 1
	for len(queue) > 0 {
		i := queue[0]
		queue = queue[1:]
		for _, j := range adj[i] {
			if !visited[j] {
				visited[j] = true
				reached++
				queue = append(queue, j)
			}
		}
	}
	if reached != len(t.Nodes) {
		var missing []string
		for i, ok := range visited {
			if !ok {
				missing = append(missing, t.Nodes[i].Name)
			}
		}
		return fmt.Errorf("%w: no bridge path to %s", ErrDisconnected, strings.Join(missing, ", "))
	}
	return nil
}

// adjacency builds sorted neighbor lists, so traversal order is a function
// of the canonical node order alone.
func (t Topology) adjacency() [][]int {
	adj := make([][]int, len(t.Nodes))
	for _, b := range t.Bridges {
		ia, ib := t.NodeIndex(b.A), t.NodeIndex(b.B)
		if ia < 0 || ib < 0 {
			continue
		}
		adj[ia] = append(adj[ia], ib)
		adj[ib] = append(adj[ib], ia)
	}
	for i := range adj {
		sort.Ints(adj[i])
	}
	return adj
}

// Route returns the ring-index path from src to dst, inclusive, following
// the fewest bridges. Ties break toward lower canonical ring indices, so
// routing is deterministic. The path of a local flow is the single source
// ring.
func (t Topology) Route(src, dst string) ([]int, error) {
	is, id := t.NodeIndex(src), t.NodeIndex(dst)
	if is < 0 {
		return nil, fmt.Errorf("%w: %q", ErrUnknownRing, src)
	}
	if id < 0 {
		return nil, fmt.Errorf("%w: %q", ErrUnknownRing, dst)
	}
	if is == id {
		return []int{is}, nil
	}
	adj := t.adjacency()
	parent := make([]int, len(t.Nodes))
	for i := range parent {
		parent[i] = -1
	}
	parent[is] = is
	queue := []int{is}
	for len(queue) > 0 && parent[id] < 0 {
		i := queue[0]
		queue = queue[1:]
		for _, j := range adj[i] {
			if parent[j] < 0 {
				parent[j] = i
				queue = append(queue, j)
			}
		}
	}
	if parent[id] < 0 {
		return nil, fmt.Errorf("%w: no bridge path %s → %s", ErrDisconnected, src, dst)
	}
	var rev []int
	for i := id; i != is; i = parent[i] {
		rev = append(rev, i)
	}
	rev = append(rev, is)
	for l, r := 0, len(rev)-1; l < r; l, r = l+1, r-1 {
		rev[l], rev[r] = rev[r], rev[l]
	}
	return rev, nil
}

// Routes resolves every flow's path. The i-th entry is the ring-index path
// of t.Flows[i].
func (t Topology) Routes() ([][]int, error) {
	paths := make([][]int, len(t.Flows))
	for i, f := range t.Flows {
		p, err := t.Route(f.Src, f.Dst)
		if err != nil {
			return nil, fmt.Errorf("flow %q: %w", f.Name, err)
		}
		paths[i] = p
	}
	return paths, nil
}
