package topology

import (
	"errors"
	"reflect"
	"strings"
	"testing"
)

const lineSpec = "ring:name=shop,proto=8025mod,bw=4e6 + ring:name=office + " +
	"bridge:a=office,b=shop,latency=1ms + " +
	"flow:src=shop,dst=office,period=50ms,bits=4096 + flow:name=tick,src=office,period=10ms,bits=512"

func TestParseLineSpec(t *testing.T) {
	topo, err := Parse(lineSpec)
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.Nodes) != 2 || len(topo.Bridges) != 1 || len(topo.Flows) != 2 {
		t.Fatalf("parsed %d rings, %d bridges, %d flows", len(topo.Nodes), len(topo.Bridges), len(topo.Flows))
	}
	shop := topo.Nodes[topo.NodeIndex("shop")]
	if shop.Protocol != Modified8025 || shop.Ring.BandwidthBPS != 4e6 {
		t.Errorf("shop = %+v", shop)
	}
	if shop.Ring.BitDelayPerStation != 4 || shop.Ring.TokenBits != 24 {
		t.Errorf("shop plant should default to the IEEE 802.5 preset: %+v", shop.Ring)
	}
	office := topo.Nodes[topo.NodeIndex("office")]
	if office.Protocol != FDDI || office.Ring.BandwidthBPS != 100e6 || office.Ring.TokenBits != 88 {
		t.Errorf("office should default to the 100 Mbps FDDI preset: %+v", office)
	}
	if topo.Bridges[0].A != "office" || topo.Bridges[0].B != "shop" || topo.Bridges[0].Latency != 1e-3 {
		t.Errorf("bridge = %+v", topo.Bridges[0])
	}
	// The unnamed flow was auto-named and flows are in canonical order.
	var names []string
	for _, f := range topo.Flows {
		names = append(names, f.Name)
	}
	if !reflect.DeepEqual(names, []string{"tick", "f1"}) {
		t.Errorf("flow names = %v", names)
	}
}

func TestParsePlantOverrides(t *testing.T) {
	topo, err := Parse("ring:name=r,proto=8025,bw=1e6,n=4,spacing=0,delay=0,token=4")
	if err != nil {
		t.Fatal(err)
	}
	r := topo.Nodes[0].Ring
	if r.Stations != 4 || r.SpacingMeters != 0 || r.BitDelayPerStation != 0 || r.TokenBits != 4 {
		t.Errorf("plant = %+v", r)
	}
	if r.PropagationFraction != 0.75 {
		t.Errorf("prop should keep the preset default, got %g", r.PropagationFraction)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name, spec string
		want       error
	}{
		{"empty", "", ErrBadSpec},
		{"unknown kind", "loop:name=a", ErrBadSpec},
		{"missing name", "ring:proto=fddi", ErrBadSpec},
		{"bad proto", "ring:name=a,proto=atm", ErrBadSpec},
		{"unknown key", "ring:name=a,color=red", ErrBadSpec},
		{"bad number", "ring:name=a,bw=fast", ErrBadSpec},
		{"fractional n", "ring:name=a,n=2.5", ErrBadSpec},
		{"dup key", "ring:name=a,bw=1e6,bw=2e6", ErrBadSpec},
		{"bare pair", "ring:name", ErrBadSpec},
		{"bridge needs b", "ring:name=a + bridge:a=a", ErrBadSpec},
		{"flow needs period", "ring:name=a + flow:src=a,bits=8", ErrBadSpec},
		{"nan bw", "ring:name=a,bw=NaN", ErrBadTopology},
		{"unknown flow dst", "ring:name=a + flow:src=a,dst=b,period=1,bits=8", ErrUnknownRing},
		{"disconnected", "ring:name=a + ring:name=b", ErrDisconnected},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := Parse(tc.spec); !errors.Is(err, tc.want) {
				t.Errorf("Parse(%q) err = %v, want %v", tc.spec, err, tc.want)
			}
		})
	}
}

func TestSpecRoundTrip(t *testing.T) {
	specs := []string{
		lineSpec,
		"ring:name=solo,proto=8025,bw=4e6",
		"ring:name=a + ring:name=b,proto=8025mod,bw=16e6,n=10 + " +
			"bridge:a=a,b=b,latency=250us,rate=2e6,buffer=65536 + " +
			"flow:src=a,dst=b,period=0.1,bits=1024 + flow:src=b,period=5ms,bits=256",
		"ring:name=r,n=3,spacing=10,delay=1,token=16,prop=0.5",
	}
	for _, spec := range specs {
		topo, err := Parse(spec)
		if err != nil {
			t.Fatalf("Parse(%q): %v", spec, err)
		}
		rendered := topo.Spec()
		again, err := Parse(rendered)
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", rendered, err)
		}
		if !reflect.DeepEqual(again, topo) {
			t.Errorf("round trip drift:\n spec   %q\n render %q\n first  %+v\n second %+v",
				spec, rendered, topo, again)
		}
	}
}

func TestSpecOmitsDefaults(t *testing.T) {
	topo, err := Parse("ring:name=a,proto=fddi,bw=100e6,n=100 + ring:name=b + bridge:a=a,b=b")
	if err != nil {
		t.Fatal(err)
	}
	spec := topo.Spec()
	for _, forbidden := range []string{"proto=", "bw=", "n=", "latency="} {
		if strings.Contains(spec, forbidden) {
			t.Errorf("canonical spec %q should omit default %s", spec, forbidden)
		}
	}
}
