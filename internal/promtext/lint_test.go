package promtext

import (
	"strings"
	"testing"
)

func TestParseRoundTripsWriters(t *testing.T) {
	var b strings.Builder
	c := NewCounterVec("reqs_total", "Total requests.")
	c.Add(Labels("endpoint", "analyze", "code", "200"), 3)
	c.Add(Labels("endpoint", "sweep", "code", "500"), 1)
	c.Write(&b)
	h := NewHistogramVec("latency_seconds", "Latency.")
	h.Observe(Labels("endpoint", "analyze"), 0.002)
	h.Observe(Labels("endpoint", "analyze"), 1.7)
	h.Write(&b)
	GaugeFunc{Name: "pool_depth", Help: "Depth.", Fn: func() float64 { return 4 }}.Write(&b)
	BuildInfo(&b, "testd")

	fams, err := Parse(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("Parse: %v\n%s", err, b.String())
	}
	if errs := Lint(fams); len(errs) > 0 {
		t.Fatalf("Lint: %v\n%s", errs, b.String())
	}
	byName := map[string]Family{}
	for _, f := range fams {
		byName[f.Name] = f
	}
	if f := byName["reqs_total"]; f.Type != "counter" ||
		f.Value(map[string]string{"endpoint": "analyze"}) != 3 ||
		f.Value(nil) != 4 {
		t.Fatalf("reqs_total = %+v", f)
	}
	lat := byName["latency_seconds"]
	if lat.Type != "histogram" {
		t.Fatalf("latency type = %q", lat.Type)
	}
	var count, sum float64
	for _, s := range lat.Samples {
		switch s.Name {
		case "latency_seconds_count":
			count = s.Value
		case "latency_seconds_sum":
			sum = s.Value
		}
	}
	if count != 2 || sum < 1.7 {
		t.Fatalf("histogram count=%v sum=%v", count, sum)
	}
	if byName["testd_build_info"].Value(nil) != 1 {
		t.Fatalf("build_info = %+v", byName["testd_build_info"])
	}
}

func TestParseLabelEscaping(t *testing.T) {
	in := `# HELP m Help.
# TYPE m counter
m{v="a\\b\"c\nd"} 2
`
	fams, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if got := fams[0].Samples[0].Labels["v"]; got != "a\\b\"c\nd" {
		t.Fatalf("decoded label = %q", got)
	}
	if errs := Lint(fams); len(errs) > 0 {
		t.Fatalf("Lint: %v", errs)
	}
	// Writers escape what Parse decodes: round-trip a hostile value.
	var b strings.Builder
	c := NewCounterVec("m2", "Help.")
	hostile := "x\\y\"z\nw"
	c.Add(Labels("v", hostile), 1)
	c.Write(&b)
	fams, err = Parse(strings.NewReader(b.String()))
	if err != nil {
		t.Fatalf("Parse(writer output): %v\n%s", err, b.String())
	}
	if got := fams[0].Samples[0].Labels["v"]; got != hostile {
		t.Fatalf("round-trip = %q, want %q", got, hostile)
	}
}

func TestParseErrors(t *testing.T) {
	for _, in := range []string{
		"m{v=\"unterminated} 1\n",
		"m{v=\"x\\q\"} 1\n",      // bad escape
		"m{v=x} 1\n",             // unquoted
		"m{9bad=\"x\"} 1\n",      // bad label name
		"9m 1\n",                 // bad metric name
		"m nope\n",               // bad value
		"m{a=\"1\",a=\"2\"} 1\n", // duplicate label
	} {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Errorf("Parse(%q): want error", in)
		}
	}
}

func TestLintCatchesViolations(t *testing.T) {
	cases := []struct {
		name string
		in   string
		want string
	}{
		{
			"missing HELP",
			"# TYPE m counter\nm 1\n",
			"missing HELP",
		},
		{
			"missing TYPE",
			"# HELP m Help.\nm 1\n",
			"missing TYPE",
		},
		{
			"unknown TYPE",
			"# HELP m Help.\n# TYPE m frobnicator\nm 1\n",
			"unknown TYPE",
		},
		{
			"duplicate registration",
			"# HELP m Help.\n# TYPE m counter\nm 1\n# HELP m Help.\n# TYPE m counter\nm 2\n",
			"duplicate registration",
		},
		{
			"duplicate series",
			"# HELP m Help.\n# TYPE m counter\nm{a=\"1\"} 1\nm{a=\"1\"} 2\n",
			"duplicate series",
		},
		{
			"bucket without le",
			"# HELP m Help.\n# TYPE m histogram\nm_bucket 1\nm_sum 0\nm_count 1\n",
			"without le",
		},
		{
			"orphan sample",
			"m 1\n",
			"missing HELP",
		},
		{
			"le on counter",
			"# HELP m Help.\n# TYPE m counter\nm{le=\"5\"} 1\n",
			"'le' label",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fams, err := Parse(strings.NewReader(tc.in))
			if err != nil {
				t.Fatalf("Parse: %v", err)
			}
			errs := Lint(fams)
			for _, e := range errs {
				if strings.Contains(e.Error(), tc.want) {
					return
				}
			}
			t.Fatalf("Lint = %v, want an error containing %q", errs, tc.want)
		})
	}
}
