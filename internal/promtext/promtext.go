// Package promtext is a minimal Prometheus text-format (version 0.0.4)
// exporter shared by the daemons in this repository (ringschedd and
// ringsched-lb). The repository deliberately has no dependencies, so the
// three primitives a serving process needs — labeled counters, labeled
// latency histograms, and callback gauges — are hand-rolled here.
// Families render sorted by name and label set, so /metrics output is
// deterministic and trivially greppable in smoke tests.
package promtext

import (
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// CounterVec is a monotonically increasing counter family keyed by a
// rendered label string (`{a="b"}` or "" for no labels).
type CounterVec struct {
	name, help string
	mu         sync.Mutex
	vals       map[string]float64
}

// NewCounterVec builds an empty counter family.
func NewCounterVec(name, help string) *CounterVec {
	return &CounterVec{name: name, help: help, vals: map[string]float64{}}
}

// Add increments the series identified by the rendered label string.
func (c *CounterVec) Add(labels string, v float64) {
	c.mu.Lock()
	c.vals[labels] += v
	c.mu.Unlock()
}

// Value returns the current value of one series (0 if never written).
func (c *CounterVec) Value(labels string) float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.vals[labels]
}

// Write renders the family in the text exposition format.
func (c *CounterVec) Write(w io.Writer) {
	c.mu.Lock()
	keys := make([]string, 0, len(c.vals))
	for k := range c.vals {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n", c.name, EscapeHelp(c.help), c.name)
	if len(keys) == 0 {
		fmt.Fprintf(w, "%s 0\n", c.name)
	}
	for _, k := range keys {
		fmt.Fprintf(w, "%s%s %s\n", c.name, k, FormatSample(c.vals[k]))
	}
	c.mu.Unlock()
}

// LatencyBuckets are the default histogram upper bounds in seconds,
// spanning cache hits (sub-millisecond) through multi-minute sweeps.
var LatencyBuckets = []float64{0.001, 0.005, 0.025, 0.1, 0.5, 2.5, 10, 60, 300}

// HistogramVec is a labeled latency histogram family over LatencyBuckets.
type HistogramVec struct {
	name, help string
	mu         sync.Mutex
	series     map[string]*histogram
}

type histogram struct {
	buckets []uint64 // one per LatencyBuckets entry
	count   uint64
	sum     float64
}

// NewHistogramVec builds an empty histogram family.
func NewHistogramVec(name, help string) *HistogramVec {
	return &HistogramVec{name: name, help: help, series: map[string]*histogram{}}
}

// Observe records one latency sample on the series identified by the
// rendered label string.
func (h *HistogramVec) Observe(labels string, seconds float64) {
	h.mu.Lock()
	s, ok := h.series[labels]
	if !ok {
		s = &histogram{buckets: make([]uint64, len(LatencyBuckets))}
		h.series[labels] = s
	}
	for i, le := range LatencyBuckets {
		if seconds <= le {
			s.buckets[i]++
		}
	}
	s.count++
	s.sum += seconds
	h.mu.Unlock()
}

// Write renders the family in the text exposition format.
func (h *HistogramVec) Write(w io.Writer) {
	h.mu.Lock()
	keys := make([]string, 0, len(h.series))
	for k := range h.series {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n", h.name, EscapeHelp(h.help), h.name)
	for _, k := range keys {
		s := h.series[k]
		for i, le := range LatencyBuckets {
			fmt.Fprintf(w, "%s_bucket%s %d\n", h.name,
				WithLabel(k, "le", strconv.FormatFloat(le, 'g', -1, 64)), s.buckets[i])
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", h.name, WithLabel(k, "le", "+Inf"), s.count)
		fmt.Fprintf(w, "%s_sum%s %s\n", h.name, k, FormatSample(s.sum))
		fmt.Fprintf(w, "%s_count%s %d\n", h.name, k, s.count)
	}
	h.mu.Unlock()
}

// GaugeFunc reads its value at scrape time, so pool depth and cache size
// need no write-path instrumentation. Type overrides the metric type for
// monotone values kept elsewhere (cache counters); "" means gauge.
type GaugeFunc struct {
	Name, Help, Type string
	Fn               func() float64
}

// Write renders the gauge in the text exposition format.
func (g GaugeFunc) Write(w io.Writer) {
	typ := g.Type
	if typ == "" {
		typ = "gauge"
	}
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n%s %s\n",
		g.Name, EscapeHelp(g.Help), g.Name, typ, g.Name, FormatSample(g.Fn()))
}

// Labels renders key=value pairs as a Prometheus label string. Pairs must
// come pre-sorted by key; values are escaped per the text format.
func Labels(pairs ...string) string {
	if len(pairs) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i := 0; i+1 < len(pairs); i += 2 {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(pairs[i])
		b.WriteString(`="`)
		b.WriteString(EscapeLabel(pairs[i+1]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// WithLabel appends one more label to an already-rendered label string
// (used for histogram "le" bounds).
func WithLabel(rendered, key, value string) string {
	extra := key + `="` + EscapeLabel(value) + `"`
	if rendered == "" {
		return "{" + extra + "}"
	}
	return strings.TrimSuffix(rendered, "}") + "," + extra + "}"
}

// labelEscaper and helpEscaper implement the text format's two escaping
// rules: label values escape backslash, double-quote, and newline; HELP
// text escapes only backslash and newline (quotes are legal there). The
// replacers are hoisted to package level — building one per escaped value
// made /metrics rendering allocate per label.
var (
	labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	helpEscaper  = strings.NewReplacer(`\`, `\\`, "\n", `\n`)
)

// EscapeLabel escapes a label value for the text format.
func EscapeLabel(v string) string { return labelEscaper.Replace(v) }

// EscapeHelp escapes HELP text for the text format.
func EscapeHelp(v string) string { return helpEscaper.Replace(v) }

// BuildInfo renders a <name>_build_info gauge: constant 1, with the
// module version and Go runtime version as labels — the standard pattern
// for joining any other series to "what build was serving then".
func BuildInfo(w io.Writer, name string) {
	version := "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		version = bi.Main.Version
	}
	fmt.Fprintf(w, "# HELP %s_build_info Build metadata; constant 1.\n# TYPE %s_build_info gauge\n%s_build_info%s 1\n",
		name, name, name, Labels("goversion", runtime.Version(), "version", version))
}

// FormatSample renders a sample value in the shortest round-trip form.
func FormatSample(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
