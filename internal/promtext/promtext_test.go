package promtext

import (
	"bytes"
	"strings"
	"testing"
)

// TestPrometheusEscaping pins the text-format escaping rules: label
// values escape backslash, quote, and newline; HELP text escapes
// backslash and newline but not quotes.
func TestPrometheusEscaping(t *testing.T) {
	if got, want := EscapeLabel("a\\b\"c\nd"), `a\\b\"c\nd`; got != want {
		t.Errorf("EscapeLabel = %q, want %q", got, want)
	}
	if got, want := EscapeHelp("a\\b\"c\nd"), `a\\b"c\nd`; got != want {
		t.Errorf("EscapeHelp = %q, want %q", got, want)
	}
	c := NewCounterVec("x_total", "line one\nline \\two")
	c.Add(Labels("path", `C:\tmp`+"\n"+`"quoted"`), 1)
	var out bytes.Buffer
	c.Write(&out)
	text := out.String()
	if !strings.Contains(text, `# HELP x_total line one\nline \\two`) {
		t.Errorf("HELP not escaped: %s", text)
	}
	if !strings.Contains(text, `x_total{path="C:\\tmp\n\"quoted\""} 1`) {
		t.Errorf("label value not escaped: %s", text)
	}
}

// TestCounterDeterministicOrder pins that families render sorted by label
// set, so /metrics output is greppable and diffable in smoke tests.
func TestCounterDeterministicOrder(t *testing.T) {
	c := NewCounterVec("y_total", "help")
	c.Add(Labels("k", "b"), 2)
	c.Add(Labels("k", "a"), 1)
	var out bytes.Buffer
	c.Write(&out)
	text := out.String()
	ia, ib := strings.Index(text, `k="a"`), strings.Index(text, `k="b"`)
	if ia < 0 || ib < 0 || ia > ib {
		t.Errorf("labels not sorted: %s", text)
	}
	if got := c.Value(Labels("k", "b")); got != 2 {
		t.Errorf("Value = %v, want 2", got)
	}
}

// TestHistogramBuckets checks cumulative bucket counts and the +Inf row.
func TestHistogramBuckets(t *testing.T) {
	h := NewHistogramVec("z_seconds", "help")
	h.Observe("", 0.0005) // below every bound
	h.Observe("", 999)    // above every bound
	var out bytes.Buffer
	h.Write(&out)
	text := out.String()
	if !strings.Contains(text, `z_seconds_bucket{le="0.001"} 1`) {
		t.Errorf("first bucket wrong: %s", text)
	}
	if !strings.Contains(text, `z_seconds_bucket{le="+Inf"} 2`) {
		t.Errorf("+Inf bucket wrong: %s", text)
	}
	if !strings.Contains(text, "z_seconds_count 2") {
		t.Errorf("count wrong: %s", text)
	}
}

// TestGaugeFunc checks the callback gauge renders its live value with the
// requested type.
func TestGaugeFunc(t *testing.T) {
	v := 1.5
	g := GaugeFunc{Name: "g", Help: "h", Fn: func() float64 { return v }}
	var out bytes.Buffer
	g.Write(&out)
	if !strings.Contains(out.String(), "# TYPE g gauge\ng 1.5\n") {
		t.Errorf("gauge render wrong: %s", out.String())
	}
	out.Reset()
	GaugeFunc{Name: "c", Help: "h", Type: "counter", Fn: func() float64 { return 3 }}.Write(&out)
	if !strings.Contains(out.String(), "# TYPE c counter\nc 3\n") {
		t.Errorf("typed gauge render wrong: %s", out.String())
	}
}
