package promtext

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// This file is the read side of the package: a strict parser + linter for
// the text exposition format the Write methods emit. The conformance
// tests feed both daemons' full /metrics bodies through Lint so a new
// metric can't silently ship malformed exposition (missing HELP/TYPE,
// duplicate families, broken label escaping), and cmd/ringtop uses Parse
// as its scrape client.

// Sample is one parsed series sample.
type Sample struct {
	// Name is the full sample name (may carry a _bucket/_sum/_count
	// suffix for histogram families).
	Name string
	// Labels holds the decoded label values.
	Labels map[string]string
	// Value is the parsed sample value.
	Value float64
}

// Label returns one label value ("" when absent).
func (s Sample) Label(key string) string { return s.Labels[key] }

// Family is one metric family: its metadata plus every sample that
// followed it.
type Family struct {
	Name    string
	Help    string
	Type    string
	Samples []Sample
}

// Value sums the family's plain samples whose labels all match want
// (histogram _bucket/_sum/_count samples are skipped). An empty want
// sums the whole family.
func (f Family) Value(want map[string]string) float64 {
	var total float64
	for _, s := range f.Samples {
		if f.Type == "histogram" && s.Name != f.Name {
			continue
		}
		ok := true
		for k, v := range want {
			if s.Labels[k] != v {
				ok = false
				break
			}
		}
		if ok {
			total += s.Value
		}
	}
	return total
}

// Parse reads a text-format 0.0.4 exposition into families, in exposition
// order. It is strict about line syntax — every sample must parse — but
// preserves duplicate HELP/TYPE registrations as separate Family entries
// so Lint can flag them.
func Parse(r io.Reader) ([]Family, error) {
	var (
		families []Family
		byName   = map[string]int{}
		lineNo   int
	)
	ensure := func(name string) int {
		if i, ok := byName[name]; ok {
			return i
		}
		families = append(families, Family{Name: name})
		byName[name] = len(families) - 1
		return len(families) - 1
	}
	// fresh registers a duplicate family entry (re-emitted metadata) and
	// repoints the name at it so following samples attach to the new one.
	fresh := func(name string) int {
		families = append(families, Family{Name: name})
		byName[name] = len(families) - 1
		return len(families) - 1
	}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || (fields[1] != "HELP" && fields[1] != "TYPE") {
				continue // arbitrary comment
			}
			name := fields[2]
			i := ensure(name)
			if fields[1] == "HELP" {
				if families[i].Help != "" {
					i = fresh(name)
				}
				if len(fields) == 4 {
					families[i].Help = fields[3]
				} else {
					families[i].Help = " " // present but empty
				}
			} else {
				if len(fields) != 4 {
					return nil, fmt.Errorf("line %d: TYPE without a type: %q", lineNo, line)
				}
				if families[i].Type != "" {
					i = fresh(name)
				}
				families[i].Type = fields[3]
			}
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", lineNo, err)
		}
		i, ok := familyFor(s.Name, families, byName)
		if !ok {
			i = ensure(s.Name)
		}
		families[i].Samples = append(families[i].Samples, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return families, nil
}

// familyFor maps a sample name to its owning family, stripping histogram
// suffixes when the base family is a histogram.
func familyFor(name string, families []Family, byName map[string]int) (int, bool) {
	if i, ok := byName[name]; ok {
		return i, true
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, suffix)
		if base == name {
			continue
		}
		if i, ok := byName[base]; ok && families[i].Type == "histogram" {
			return i, true
		}
	}
	return 0, false
}

// parseSample parses one `name{labels} value` line.
func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	i := strings.IndexAny(line, "{ ")
	if i < 0 {
		return s, fmt.Errorf("malformed sample line %q", line)
	}
	s.Name = line[:i]
	if !validMetricName(s.Name) {
		return s, fmt.Errorf("invalid metric name %q", s.Name)
	}
	rest := line[i:]
	if rest[0] == '{' {
		end, err := parseLabels(rest, s.Labels)
		if err != nil {
			return s, err
		}
		rest = rest[end:]
	}
	rest = strings.TrimSpace(rest)
	// The value may be followed by an optional timestamp.
	if j := strings.IndexByte(rest, ' '); j >= 0 {
		rest = rest[:j]
	}
	v, err := strconv.ParseFloat(rest, 64)
	if err != nil {
		return s, fmt.Errorf("bad sample value %q: %v", rest, err)
	}
	s.Value = v
	return s, nil
}

// parseLabels parses `{k="v",...}` starting at raw[0] == '{', filling
// into and returning the index just past the closing brace.
func parseLabels(raw string, into map[string]string) (int, error) {
	i := 1
	for {
		if i >= len(raw) {
			return 0, fmt.Errorf("unterminated label set in %q", raw)
		}
		if raw[i] == '}' {
			return i + 1, nil
		}
		if raw[i] == ',' {
			i++
			continue
		}
		eq := strings.IndexByte(raw[i:], '=')
		if eq < 0 {
			return 0, fmt.Errorf("label without '=' in %q", raw)
		}
		key := raw[i : i+eq]
		if !validLabelName(key) {
			return 0, fmt.Errorf("invalid label name %q", key)
		}
		i += eq + 1
		if i >= len(raw) || raw[i] != '"' {
			return 0, fmt.Errorf("unquoted label value for %q", key)
		}
		i++
		var b strings.Builder
		for {
			if i >= len(raw) {
				return 0, fmt.Errorf("unterminated label value for %q", key)
			}
			c := raw[i]
			if c == '"' {
				i++
				break
			}
			if c == '\\' {
				if i+1 >= len(raw) {
					return 0, fmt.Errorf("dangling escape in label %q", key)
				}
				switch raw[i+1] {
				case '\\':
					b.WriteByte('\\')
				case '"':
					b.WriteByte('"')
				case 'n':
					b.WriteByte('\n')
				default:
					return 0, fmt.Errorf("invalid escape \\%c in label %q", raw[i+1], key)
				}
				i += 2
				continue
			}
			b.WriteByte(c)
			i++
		}
		if _, dup := into[key]; dup {
			return 0, fmt.Errorf("duplicate label %q", key)
		}
		into[key] = b.String()
	}
}

func validMetricName(name string) bool {
	if name == "" {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func validLabelName(name string) bool {
	if name == "" || strings.HasPrefix(name, "__") {
		return false
	}
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// Lint applies the strict conformance rules the repo holds its daemons
// to, beyond what Parse already rejects:
//
//   - every family has non-empty HELP and a known TYPE
//   - no family appears twice (Parse keeps re-registered metadata as a
//     second Family entry with the same name)
//   - every sample's name matches its family (exact, or the histogram
//     _bucket/_sum/_count suffixes)
//   - histogram _bucket samples carry an le label; non-bucket samples
//     don't
//   - no two samples in a family share an identical label set
func Lint(families []Family) []error {
	var errs []error
	knownTypes := map[string]bool{"counter": true, "gauge": true, "histogram": true, "summary": true, "untyped": true}
	seenFamily := map[string]bool{}
	for _, f := range families {
		if seenFamily[f.Name] {
			errs = append(errs, fmt.Errorf("family %s: duplicate registration", f.Name))
			continue
		}
		seenFamily[f.Name] = true
		if strings.TrimSpace(f.Help) == "" {
			errs = append(errs, fmt.Errorf("family %s: missing HELP", f.Name))
		}
		if f.Type == "" {
			errs = append(errs, fmt.Errorf("family %s: missing TYPE", f.Name))
		} else if !knownTypes[f.Type] {
			errs = append(errs, fmt.Errorf("family %s: unknown TYPE %q", f.Name, f.Type))
		}
		seenSeries := map[string]bool{}
		for _, s := range f.Samples {
			switch s.Name {
			case f.Name:
				if f.Type == "histogram" {
					errs = append(errs, fmt.Errorf("family %s: bare sample in histogram family", f.Name))
				}
				// le is reserved by aggregation conventions on
				// counters; on a gauge it is an ordinary label (the
				// exemplar sibling families use it to point back at
				// the matching histogram bucket).
				if _, ok := s.Labels["le"]; ok && f.Type == "counter" {
					errs = append(errs, fmt.Errorf("family %s: 'le' label on counter sample", f.Name))
				}
			case f.Name + "_bucket":
				if f.Type != "histogram" {
					errs = append(errs, fmt.Errorf("family %s: _bucket sample in non-histogram family", f.Name))
				}
				if _, ok := s.Labels["le"]; !ok {
					errs = append(errs, fmt.Errorf("family %s: _bucket sample without le label", f.Name))
				}
			case f.Name + "_sum", f.Name + "_count":
				if f.Type != "histogram" {
					errs = append(errs, fmt.Errorf("family %s: %s sample in non-histogram family", f.Name, s.Name))
				}
			default:
				errs = append(errs, fmt.Errorf("family %s: sample %s does not belong", f.Name, s.Name))
			}
			key := s.Name + seriesKey(s.Labels)
			if seenSeries[key] {
				errs = append(errs, fmt.Errorf("family %s: duplicate series %s", f.Name, key))
			}
			seenSeries[key] = true
		}
	}
	return errs
}

// seriesKey renders a label map deterministically for duplicate checks.
func seriesKey(labels map[string]string) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	b.WriteByte('}')
	return b.String()
}
