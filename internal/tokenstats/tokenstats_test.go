package tokenstats_test

import (
	"strings"
	"testing"

	"ringsched/internal/frame"
	"ringsched/internal/message"
	"ringsched/internal/ring"
	"ringsched/internal/tokensim"
	"ringsched/internal/tokenstats"
)

func testPlant(stations int) ring.Config {
	cfg := ring.Tiny(stations)
	cfg.BitDelayPerStation = 1 // non-zero station latency so hops cost wire time
	return cfg
}

func testFrame() frame.Spec { return frame.Spec{InfoBits: 8, OvhdBits: 2} }

func ttpSim(t *testing.T, bits, alloc float64) tokensim.TTPSim {
	t.Helper()
	w, err := tokensim.NewWorkload(
		message.Set{{Name: "s", Period: 1e-3, LengthBits: bits}},
		4, tokensim.PhasingSynchronized, nil)
	if err != nil {
		t.Fatal(err)
	}
	return tokensim.TTPSim{
		Net:         testPlant(4),
		SyncFrame:   testFrame(),
		AsyncFrame:  testFrame(),
		TTRT:        100e-6,
		Allocations: []float64{alloc},
		Workload:    w,
		Horizon:     0.05,
	}
}

func TestCollectorTTPRotationsExceedWalkTime(t *testing.T) {
	sim := ttpSim(t, 16, 20e-6)
	col := tokenstats.New()
	sim.Tracer = col
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	s := col.Summary()
	if s.Rotations == 0 || s.Walks == 0 {
		t.Fatalf("no token telemetry collected: %+v", s)
	}
	theta := sim.Net.Theta()
	// The paper's model: one rotation costs at least the walk time WT = Θ
	// (plus any service time), so observed mean rotation must exceed it.
	if s.RotationMeanSec <= theta {
		t.Errorf("mean rotation %.3g ≤ walk time Θ=%.3g", s.RotationMeanSec, theta)
	}
	// Clean ring at low load: Johnson's bound, mean rotation ≤ TTRT.
	if s.RotationMeanSec > sim.TTRT {
		t.Errorf("mean rotation %.3g > TTRT %.3g on an underloaded clean ring", s.RotationMeanSec, sim.TTRT)
	}
	if s.RotationMaxSec < s.RotationMeanSec || s.RotationP99Sec <= 0 {
		t.Errorf("inconsistent rotation stats: %+v", s)
	}
	// Per-pass walk: Θ spread over the hops.
	hop := theta / float64(sim.Net.Stations)
	if diff := s.WalkMeanSec - hop; diff > hop*1e-6 || diff < -hop*1e-6 {
		t.Errorf("walk mean %.3g, want hop time %.3g", s.WalkMeanSec, hop)
	}
	if s.WalkTotalSec <= 0 {
		t.Errorf("walk total %.3g", s.WalkTotalSec)
	}
}

func TestCollectorObservesLateCounters(t *testing.T) {
	// Saturated asynchronous traffic plus overrun pushes rotations past
	// TTRT, so stations must record late-counter increments.
	sim := ttpSim(t, 16, 20e-6)
	sim.AsyncSaturated = true
	col := tokenstats.New()
	sim.Tracer = col
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	s := col.Summary()
	if s.LateCounts == 0 {
		t.Fatalf("saturated ring recorded no late counters: %+v", s)
	}
	if s.LateMeanSec < 0 {
		t.Errorf("negative late mean: %+v", s)
	}
	if col.Count(tokensim.TraceLateCount) != s.LateCounts {
		t.Errorf("Count(TraceLateCount)=%d, summary %d", col.Count(tokensim.TraceLateCount), s.LateCounts)
	}
}

func TestCollectorObservesReservationBids(t *testing.T) {
	// Two synchronized streams: while the higher-priority station holds
	// the medium, the other writes a reservation bid into the frame.
	w, err := tokensim.NewWorkload(
		message.Set{
			{Name: "hi", Period: 1e-3, LengthBits: 16},
			{Name: "lo", Period: 2e-3, LengthBits: 16},
		},
		4, tokensim.PhasingSynchronized, nil)
	if err != nil {
		t.Fatal(err)
	}
	col := tokenstats.New()
	_, err = tokensim.ReservationSim{
		Net:      testPlant(4),
		Frame:    testFrame(),
		Workload: w,
		Horizon:  0.02,
		Tracer:   col,
	}.Run()
	if err != nil {
		t.Fatal(err)
	}
	s := col.Summary()
	if s.Reservations == 0 {
		t.Fatalf("no reservation bids observed: %+v", s)
	}
	if s.Rotations == 0 {
		t.Fatalf("reservation MAC run produced no rotations: %+v", s)
	}
}

func TestRotationHistogram(t *testing.T) {
	sim := ttpSim(t, 16, 20e-6)
	col := tokenstats.New()
	sim.Tracer = col
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	h, err := col.RotationHistogram(8)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, n := range h.Counts {
		total += n
	}
	if total != col.Summary().Rotations {
		t.Errorf("histogram holds %d samples, summary has %d rotations", total, col.Summary().Rotations)
	}
	if h.Render(40) == "" {
		t.Error("empty histogram rendering")
	}

	empty := tokenstats.New()
	if _, err := empty.RotationHistogram(8); err == nil {
		t.Error("empty collector must refuse a histogram")
	}
}

func TestEventRingSamplesAndWraps(t *testing.T) {
	sim := ttpSim(t, 16, 20e-6)
	col := &tokenstats.Collector{SampleEvery: 2, Cap: 32}
	sim.Tracer = col
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	evs := col.Events()
	if len(evs) != 32 {
		t.Fatalf("ring retained %d events, want cap 32", len(evs))
	}
	s := col.Summary()
	if uint64(s.Sampled) >= s.Events {
		t.Errorf("sampling kept %d of %d events; expected a strict subset", s.Sampled, s.Events)
	}
	// Oldest-first ordering.
	for i := 1; i < len(evs); i++ {
		if evs[i].Time < evs[i-1].Time {
			t.Fatalf("events out of order at %d: %v after %v", i, evs[i].Time, evs[i-1].Time)
		}
	}
}

func TestSummaryFormat(t *testing.T) {
	sim := ttpSim(t, 16, 20e-6)
	col := tokenstats.New()
	sim.Tracer = col
	if _, err := sim.Run(); err != nil {
		t.Fatal(err)
	}
	s := col.Summary()
	out := s.Format(sim.Net.Theta(), sim.TTRT)
	for _, want := range []string{"token stats:", "rotations", "model WT=", "TTRT="} {
		if !strings.Contains(out, want) {
			t.Errorf("Format output missing %q:\n%s", want, out)
		}
	}
	if !strings.Contains(out, "OK") {
		t.Errorf("clean underloaded run should report OK verdicts:\n%s", out)
	}
}
