// Package tokenstats turns the simulators' protocol event streams into the
// time-domain quantities the paper reasons about: token rotation times
// (compared against TTRT for the timed token protocol) and token walk
// times (compared against the geometric walk time WT = Θ the analysis
// takes as input). A Collector is a tokensim.Tracer: attach it to any
// simulator run — alone or teed with other tracers — and read a Summary
// afterwards.
//
// Jain's FDDI work (see PAPERS.md) sets TTRT from observed rotation-time
// distributions, not from pass/fail verdicts; this package is the repo's
// equivalent observation channel.
package tokenstats

import (
	"errors"
	"fmt"
	"math"

	"ringsched/internal/stats"
	"ringsched/internal/tokensim"
)

// DefaultEventCap bounds the sampled raw-event ring when Collector.Cap is
// zero.
const DefaultEventCap = 8192

// maxRotationSamples bounds the per-station rotation samples retained for
// histograms; running moments are exact regardless.
const maxRotationSamples = 1 << 16

// Collector derives token statistics from one simulator run. It is NOT
// safe for concurrent use: simulators call Trace from their single event
// loop, and Summary must only be read after the run returns.
type Collector struct {
	// SampleEvery keeps one raw event in N in the ring buffer (<=1 keeps
	// every event until the ring wraps). Statistics are always computed
	// from every event, sampled or not.
	SampleEvery int
	// Cap is the raw-event ring capacity (default DefaultEventCap).
	Cap int

	rotations stats.Running // per-station inter-visit times
	samples   []float64     // bounded subset of rotations, for histograms
	walks     stats.Running // per-pass token walk durations
	late      stats.Running // late-counter lateness beyond TTRT
	reserves  int
	recovers  int

	lastSeen map[int]float64 // station -> time of previous token visit
	counts   map[tokensim.TraceKind]int
	seen     uint64

	ring     []tokensim.TraceEvent
	ringNext int
	ringFull bool
}

var _ tokensim.Tracer = (*Collector)(nil)

// New returns a Collector with default sampling and capacity.
func New() *Collector { return &Collector{} }

// Trace implements tokensim.Tracer.
func (c *Collector) Trace(e tokensim.TraceEvent) {
	if c.counts == nil {
		c.counts = make(map[tokensim.TraceKind]int)
		c.lastSeen = make(map[int]float64)
	}
	c.seen++
	c.counts[e.Kind]++

	switch e.Kind {
	case tokensim.TraceTokenPass:
		// Walk time: the medium time this pass charged.
		if e.Duration > 0 {
			c.walks.Add(e.Duration)
		}
		// Rotation time: successive passes observed at the same station
		// are one full rotation apart. Every simulator emits passes at a
		// consistent per-station point, so the difference is exact even
		// though the absolute offset differs between protocols.
		if prev, ok := c.lastSeen[e.Station]; ok {
			rot := e.Time - prev
			if rot > 0 {
				c.rotations.Add(rot)
				if len(c.samples) < maxRotationSamples {
					c.samples = append(c.samples, rot)
				}
			}
		}
		c.lastSeen[e.Station] = e.Time
	case tokensim.TraceLateCount:
		c.late.Add(math.Max(0, e.Detail))
	case tokensim.TraceReserve:
		c.reserves++
	case tokensim.TraceRecovery:
		c.recovers++
	}

	// Sampled raw-event ring.
	every := c.SampleEvery
	if every < 1 {
		every = 1
	}
	if (c.seen-1)%uint64(every) != 0 {
		return
	}
	if c.ring == nil {
		capacity := c.Cap
		if capacity <= 0 {
			capacity = DefaultEventCap
		}
		c.ring = make([]tokensim.TraceEvent, capacity)
	}
	c.ring[c.ringNext] = e
	c.ringNext++
	if c.ringNext == len(c.ring) {
		c.ringNext = 0
		c.ringFull = true
	}
}

// Count returns how many events of one kind were observed (before
// sampling).
func (c *Collector) Count(kind tokensim.TraceKind) int { return c.counts[kind] }

// Events returns the sampled raw events, oldest first.
func (c *Collector) Events() []tokensim.TraceEvent {
	if c.ring == nil {
		return nil
	}
	if !c.ringFull {
		return append([]tokensim.TraceEvent(nil), c.ring[:c.ringNext]...)
	}
	out := make([]tokensim.TraceEvent, 0, len(c.ring))
	out = append(out, c.ring[c.ringNext:]...)
	out = append(out, c.ring[:c.ringNext]...)
	return out
}

// Summary is the distilled token telemetry of one run.
type Summary struct {
	// Events is the total number of protocol events observed (before
	// sampling); Sampled is how many raw events were retained.
	Events  uint64 `json:"events"`
	Sampled int    `json:"sampled"`

	// Rotations is the number of per-station token rotations observed.
	// RotationMeanSec is the observed mean token rotation time — the
	// quantity FDDI's TTRT bounds (mean rotation ≤ TTRT on a clean ring,
	// Johnson/Sevcik) and the paper's Θ-based analysis lower-bounds by
	// the walk time WT.
	Rotations         int     `json:"rotations"`
	RotationMeanSec   float64 `json:"rotationMeanSec"`
	RotationMaxSec    float64 `json:"rotationMaxSec"`
	RotationStdDevSec float64 `json:"rotationStdDevSec"`
	RotationP99Sec    float64 `json:"rotationP99Sec"`

	// Walks counts individual token passes; WalkMeanSec is the mean
	// medium time per pass, and WalkTotalSec the total token time — the
	// operational realization of the model's walk time input.
	Walks        int     `json:"walks"`
	WalkMeanSec  float64 `json:"walkMeanSec"`
	WalkTotalSec float64 `json:"walkTotalSec"`

	// LateCounts is the number of FDDI late-counter increments;
	// LateMeanSec the mean lateness beyond TTRT when late.
	LateCounts  int     `json:"lateCounts"`
	LateMeanSec float64 `json:"lateMeanSec,omitempty"`

	// Reservations counts 802.5 priority reservation bids; Recoveries
	// counts claim/beacon recovery periods.
	Reservations int `json:"reservations"`
	Recoveries   int `json:"recoveries"`
}

// Summary distills the collected statistics.
func (c *Collector) Summary() Summary {
	s := Summary{
		Events:            c.seen,
		Sampled:           len(c.Events()),
		Rotations:         c.rotations.N(),
		RotationMeanSec:   c.rotations.Mean(),
		RotationMaxSec:    c.rotations.Max(),
		RotationStdDevSec: c.rotations.StdDev(),
		Walks:             c.walks.N(),
		WalkMeanSec:       c.walks.Mean(),
		WalkTotalSec:      c.walks.Mean() * float64(c.walks.N()),
		LateCounts:        c.late.N(),
		LateMeanSec:       c.late.Mean(),
		Reservations:      c.reserves,
		Recoveries:        c.recovers,
	}
	if len(c.samples) > 0 {
		if p, err := stats.Percentile(c.samples, 99); err == nil {
			s.RotationP99Sec = p
		}
	}
	if s.Rotations == 0 {
		s.RotationMeanSec, s.RotationMaxSec, s.RotationStdDevSec = 0, 0, 0
	}
	if s.Walks == 0 {
		s.WalkMeanSec, s.WalkTotalSec = 0, 0
	}
	if s.LateCounts == 0 {
		s.LateMeanSec = 0
	}
	return s
}

// ErrNoRotations is returned by RotationHistogram when the run observed
// fewer than two token visits to any single station.
var ErrNoRotations = errors.New("tokenstats: no token rotations observed")

// RotationHistogram bins the retained rotation samples into a fixed-width
// histogram spanning the observed range.
func (c *Collector) RotationHistogram(bins int) (*stats.Histogram, error) {
	if len(c.samples) == 0 {
		return nil, ErrNoRotations
	}
	lo, hi := c.rotations.Min(), c.rotations.Max()
	if hi <= lo {
		// Degenerate distribution: widen symmetrically so Add accepts it.
		span := math.Max(math.Abs(lo)*1e-9, 1e-12)
		lo, hi = lo-span, hi+span
	}
	h, err := stats.NewHistogram(lo, hi, bins)
	if err != nil {
		return nil, err
	}
	for _, v := range c.samples {
		h.Add(v)
	}
	return h, nil
}

// FormatSummary renders the summary for CLI output, flagging the model
// comparisons: walkTimeSec is the analysis's walk time WT (= Θ; pass 0 to
// omit), ttrt the negotiated target rotation time (pass 0 to omit).
func (s Summary) Format(walkTimeSec, ttrt float64) string {
	out := fmt.Sprintf("token stats: %d rotations mean=%.3fms max=%.3fms p99=%.3fms stddev=%.3fms\n",
		s.Rotations, s.RotationMeanSec*1e3, s.RotationMaxSec*1e3, s.RotationP99Sec*1e3, s.RotationStdDevSec*1e3)
	out += fmt.Sprintf("             %d walks mean=%.3fus total=%.3fms\n",
		s.Walks, s.WalkMeanSec*1e6, s.WalkTotalSec*1e3)
	if walkTimeSec > 0 && s.Rotations > 0 {
		verdict := "OK (rotation ≥ WT)"
		if s.RotationMeanSec < walkTimeSec {
			verdict = "ANOMALY (rotation < WT)"
		}
		out += fmt.Sprintf("             model WT=%.3fms observed/WT=%.2f %s\n",
			walkTimeSec*1e3, s.RotationMeanSec/walkTimeSec, verdict)
	}
	if ttrt > 0 && s.Rotations > 0 {
		verdict := "OK (mean ≤ TTRT)"
		if s.RotationMeanSec > ttrt {
			verdict = "VIOLATION (mean > TTRT)"
		}
		out += fmt.Sprintf("             TTRT=%.3fms observed/TTRT=%.2f late=%d %s\n",
			ttrt*1e3, s.RotationMeanSec/ttrt, s.LateCounts, verdict)
	}
	if s.Reservations > 0 || s.Recoveries > 0 {
		out += fmt.Sprintf("             reservations=%d recoveries=%d\n", s.Reservations, s.Recoveries)
	}
	return out
}
