package textplot

// sparkRamp is the eight-level block ramp used by Spark.
var sparkRamp = []rune("▁▂▃▄▅▆▇█")

// Spark renders values as a one-line unicode sparkline, scaled to the
// slice's own min..max. A flat (or single-value) series renders at the
// lowest level, and NaN/Inf-free input is the caller's job — non-finite
// values clamp to the edges.
func Spark(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	lo, hi := values[0], values[0]
	for _, v := range values[1:] {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	out := make([]rune, len(values))
	span := hi - lo
	for i, v := range values {
		level := 0
		if span > 0 {
			level = int((v - lo) / span * float64(len(sparkRamp)-1))
		}
		if level < 0 {
			level = 0
		}
		if level >= len(sparkRamp) {
			level = len(sparkRamp) - 1
		}
		out[i] = sparkRamp[level]
	}
	return string(out)
}
