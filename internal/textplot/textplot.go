// Package textplot renders simple ASCII line charts so the command-line
// tools can show Figure 1 directly in the terminal. It supports multiple
// series over a shared (optionally log-scaled) x axis.
package textplot

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// ErrNoSeries is returned when a plot has nothing to draw.
var ErrNoSeries = errors.New("textplot: no series to plot")

// Series is one named line.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Plot is an ASCII chart. Configure axes, add series, then Render.
type Plot struct {
	// Title is printed above the chart.
	Title string
	// XLabel and YLabel name the axes.
	XLabel, YLabel string
	// Width and Height are the chart body size in characters (defaults
	// 72×20).
	Width, Height int
	// LogX plots x on a log10 scale.
	LogX bool
	// YMin and YMax fix the y range; when both are zero the range is
	// computed from the data.
	YMin, YMax float64

	series []Series
}

// markers distinguish up to len(markers) series.
var markers = []byte{'*', 'o', '+', 'x', '#', '@', '%', '&'}

// Add appends a series. X and Y must have equal length; extra points in
// the longer slice are ignored.
func (p *Plot) Add(s Series) {
	n := len(s.X)
	if len(s.Y) < n {
		n = len(s.Y)
	}
	s.X = s.X[:n]
	s.Y = s.Y[:n]
	p.series = append(p.series, s)
}

// Render draws the chart.
func (p *Plot) Render() (string, error) {
	if len(p.series) == 0 {
		return "", ErrNoSeries
	}
	width, height := p.Width, p.Height
	if width <= 0 {
		width = 72
	}
	if height <= 0 {
		height = 20
	}

	xmin, xmax := math.Inf(1), math.Inf(-1)
	ymin, ymax := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range p.series {
		for i := range s.X {
			x := p.xval(s.X[i])
			if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(s.Y[i]) {
				continue
			}
			points++
			xmin = math.Min(xmin, x)
			xmax = math.Max(xmax, x)
			ymin = math.Min(ymin, s.Y[i])
			ymax = math.Max(ymax, s.Y[i])
		}
	}
	if points == 0 {
		return "", ErrNoSeries
	}
	if p.YMin != 0 || p.YMax != 0 {
		ymin, ymax = p.YMin, p.YMax
	}
	if xmax == xmin {
		xmax = xmin + 1
	}
	if ymax == ymin {
		ymax = ymin + 1
	}

	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for si, s := range p.series {
		mark := markers[si%len(markers)]
		for i := range s.X {
			x := p.xval(s.X[i])
			y := s.Y[i]
			if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) {
				continue
			}
			col := int((x - xmin) / (xmax - xmin) * float64(width-1))
			row := int((ymax - y) / (ymax - ymin) * float64(height-1))
			if col < 0 || col >= width || row < 0 || row >= height {
				continue
			}
			grid[row][col] = mark
		}
	}

	var b strings.Builder
	if p.Title != "" {
		fmt.Fprintf(&b, "%s\n", p.Title)
	}
	for si, s := range p.series {
		fmt.Fprintf(&b, "  %c %s", markers[si%len(markers)], s.Name)
	}
	if len(p.series) > 0 {
		b.WriteByte('\n')
	}
	for r, rowBytes := range grid {
		yv := ymax - (ymax-ymin)*float64(r)/float64(height-1)
		fmt.Fprintf(&b, "%8.3f |%s|\n", yv, string(rowBytes))
	}
	fmt.Fprintf(&b, "%8s +%s+\n", "", strings.Repeat("-", width))
	left := p.xlabelAt(xmin)
	right := p.xlabelAt(xmax)
	pad := width - len(left) - len(right)
	if pad < 1 {
		pad = 1
	}
	fmt.Fprintf(&b, "%8s  %s%s%s\n", "", left, strings.Repeat(" ", pad), right)
	if p.XLabel != "" || p.YLabel != "" {
		fmt.Fprintf(&b, "%8s  x: %s   y: %s\n", "", p.XLabel, p.YLabel)
	}
	return b.String(), nil
}

func (p *Plot) xval(x float64) float64 {
	if p.LogX {
		if x <= 0 {
			return math.NaN()
		}
		return math.Log10(x)
	}
	return x
}

func (p *Plot) xlabelAt(x float64) string {
	if p.LogX {
		return fmt.Sprintf("%.3g", math.Pow(10, x))
	}
	return fmt.Sprintf("%.3g", x)
}
