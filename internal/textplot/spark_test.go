package textplot

import "testing"

func TestSpark(t *testing.T) {
	cases := []struct {
		name string
		in   []float64
		want string
	}{
		{"empty", nil, ""},
		{"single", []float64{5}, "▁"},
		{"flat", []float64{2, 2, 2}, "▁▁▁"},
		{"ramp", []float64{0, 1, 2, 3, 4, 5, 6, 7}, "▁▂▃▄▅▆▇█"},
		{"minmax", []float64{1, 100}, "▁█"},
		{"negatives", []float64{-3, 0, 3}, "▁▄█"},
	}
	for _, tc := range cases {
		if got := Spark(tc.in); got != tc.want {
			t.Errorf("%s: Spark(%v) = %q, want %q", tc.name, tc.in, got, tc.want)
		}
	}
}
