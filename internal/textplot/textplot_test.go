package textplot

import (
	"errors"
	"strings"
	"testing"
)

func TestRenderEmptyPlot(t *testing.T) {
	var p Plot
	if _, err := p.Render(); !errors.Is(err, ErrNoSeries) {
		t.Errorf("empty plot: %v, want ErrNoSeries", err)
	}
}

func TestRenderBasic(t *testing.T) {
	p := Plot{Title: "demo", XLabel: "x", YLabel: "y", Width: 40, Height: 10}
	p.Add(Series{Name: "line", X: []float64{0, 1, 2, 3}, Y: []float64{0, 1, 2, 3}})
	out, err := p.Render()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "demo") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "line") {
		t.Error("legend missing")
	}
	if !strings.Contains(out, "*") {
		t.Error("marker missing")
	}
	if !strings.Contains(out, "x: x   y: y") {
		t.Error("axis labels missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + legend + 10 rows + axis + labels + axis names
	if len(lines) != 2+10+3 {
		t.Errorf("rendered %d lines, want 15:\n%s", len(lines), out)
	}
}

func TestRenderMultipleSeriesDistinctMarkers(t *testing.T) {
	var p Plot
	p.Add(Series{Name: "a", X: []float64{0, 1}, Y: []float64{0, 0}})
	p.Add(Series{Name: "b", X: []float64{0, 1}, Y: []float64{1, 1}})
	out, err := p.Render()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Errorf("expected two distinct markers:\n%s", out)
	}
}

func TestRenderLogX(t *testing.T) {
	p := Plot{LogX: true}
	p.Add(Series{Name: "s", X: []float64{1e6, 1e7, 1e8, 1e9}, Y: []float64{1, 2, 3, 4}})
	out, err := p.Render()
	if err != nil {
		t.Fatal(err)
	}
	// Endpoint labels are converted back from log space.
	if !strings.Contains(out, "1e+06") || !strings.Contains(out, "1e+09") {
		t.Errorf("log endpoints missing:\n%s", out)
	}
}

func TestRenderLogXSkipsNonPositive(t *testing.T) {
	p := Plot{LogX: true}
	p.Add(Series{Name: "s", X: []float64{0, -5, 1e6}, Y: []float64{1, 2, 3}})
	if _, err := p.Render(); err != nil {
		t.Fatalf("non-positive x under LogX should be skipped, got %v", err)
	}
	bad := Plot{LogX: true}
	bad.Add(Series{Name: "s", X: []float64{0}, Y: []float64{1}})
	if _, err := bad.Render(); !errors.Is(err, ErrNoSeries) {
		t.Errorf("all-invalid points: %v, want ErrNoSeries", err)
	}
}

func TestRenderFixedYRange(t *testing.T) {
	p := Plot{YMax: 1, Height: 5}
	p.Add(Series{Name: "s", X: []float64{0, 1}, Y: []float64{0.2, 0.4}})
	out, err := p.Render()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "1.000") {
		t.Errorf("fixed y max not used:\n%s", out)
	}
}

func TestAddTrimsMismatchedLengths(t *testing.T) {
	var p Plot
	p.Add(Series{Name: "s", X: []float64{1, 2, 3}, Y: []float64{1}})
	out, err := p.Render()
	if err != nil {
		t.Fatal(err)
	}
	if out == "" {
		t.Error("render empty")
	}
}

func TestRenderConstantSeries(t *testing.T) {
	var p Plot
	p.Add(Series{Name: "flat", X: []float64{5}, Y: []float64{2}})
	if _, err := p.Render(); err != nil {
		t.Fatalf("single-point series: %v", err)
	}
}
