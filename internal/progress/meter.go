package progress

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"time"
)

// Meter is a Progress that renders a single live status line (percent done,
// ETA, the sweep point or experiment currently in flight) to W, typically
// stderr. Updates are throttled to at most one redraw per Interval so the
// meter never becomes the bottleneck of the pipeline it observes.
//
// The zero value is not usable; construct with NewMeter. The meter is safe
// for concurrent use by the estimator and experiment worker pools.
type Meter struct {
	w io.Writer
	// total is the expected SampleDone count; 0 means unknown (the meter
	// then shows raw counts without percent/ETA).
	total    int64
	interval time.Duration
	clock    func() time.Time

	mu        sync.Mutex
	start     time.Time
	samples   int64
	points    int64
	simEvents int64
	simTime   float64
	label     string
	lastDraw  time.Time
	lastWidth int
	closed    bool
}

// NewMeter returns a live progress meter writing to w. totalSamples is the
// expected number of Monte Carlo samples across the whole run (0 when
// unknown); it drives the percent and ETA columns.
func NewMeter(w io.Writer, totalSamples int64) *Meter {
	return &Meter{
		w:        w,
		total:    totalSamples,
		interval: 100 * time.Millisecond,
		clock:    time.Now,
	}
}

// SampleDone implements Progress.
func (m *Meter) SampleDone() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.samples++
	m.draw(false)
}

// SweepPointDone implements Progress.
func (m *Meter) SweepPointDone(series string, bandwidthBPS float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.points++
	m.label = fmt.Sprintf("%s @ %.3g Mbps", series, bandwidthBPS/1e6)
	m.draw(false)
}

// ExperimentStarted implements Progress.
func (m *Meter) ExperimentStarted(id, _ string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.label = id
	m.draw(false)
}

// ExperimentFinished implements Progress.
func (m *Meter) ExperimentFinished(id string, _ bool, _ error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.label = id + " done"
	m.draw(false)
}

// SimulatorAdvanced implements Progress.
func (m *Meter) SimulatorAdvanced(events int, simTime float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.simEvents = int64(events)
	m.simTime = simTime
	m.draw(false)
}

// Close redraws the final state and terminates the status line. Further
// callbacks are ignored.
func (m *Meter) Close() {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return
	}
	m.draw(true)
	if m.lastWidth > 0 {
		fmt.Fprintln(m.w)
	}
	m.closed = true
}

// draw renders the status line; force bypasses throttling (used on Close).
// Callers hold m.mu.
func (m *Meter) draw(force bool) {
	if m.closed || m.w == nil {
		return
	}
	now := m.clock()
	if m.start.IsZero() {
		m.start = now
	}
	if !force && now.Sub(m.lastDraw) < m.interval {
		return
	}
	m.lastDraw = now

	var b strings.Builder
	switch {
	case m.total > 0:
		pct := 100 * float64(m.samples) / float64(m.total)
		fmt.Fprintf(&b, "%d/%d samples (%.0f%%)", m.samples, m.total, pct)
		if eta, ok := m.eta(now); ok {
			fmt.Fprintf(&b, " ETA %s", eta)
		}
	case m.samples > 0:
		fmt.Fprintf(&b, "%d samples", m.samples)
	}
	if m.points > 0 {
		fmt.Fprintf(&b, ", %d points", m.points)
	}
	if m.simEvents > 0 {
		if b.Len() > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%d events, t=%.3gs", m.simEvents, m.simTime)
	}
	if m.label != "" {
		if b.Len() > 0 {
			b.WriteString(" — ")
		}
		b.WriteString(m.label)
	}
	line := b.String()
	pad := m.lastWidth - len(line)
	if pad < 0 {
		pad = 0
	}
	fmt.Fprintf(m.w, "\r%s%s", line, strings.Repeat(" ", pad))
	m.lastWidth = len(line)
}

// eta extrapolates the remaining wall-clock time from the sample rate so
// far. Callers hold m.mu.
func (m *Meter) eta(now time.Time) (string, bool) {
	elapsed := now.Sub(m.start)
	if m.samples == 0 || m.samples >= m.total || elapsed <= 0 {
		return "", false
	}
	remaining := time.Duration(float64(elapsed) / float64(m.samples) * float64(m.total-m.samples))
	return remaining.Round(time.Second).String(), true
}
