package progress

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestSSEFrameFormat(t *testing.T) {
	var buf bytes.Buffer
	flushes := 0
	sse := NewSSE(&buf, func() { flushes++ }, 1)

	if err := sse.Event("result", map[string]string{"k": "v"}); err != nil {
		t.Fatal(err)
	}
	want := "event: result\ndata: {\"k\":\"v\"}\n\n"
	if buf.String() != want {
		t.Errorf("frame = %q, want %q", buf.String(), want)
	}
	if flushes != 1 {
		t.Errorf("flushes = %d, want 1", flushes)
	}

	buf.Reset()
	sse.SweepPointDone("FDDI", 1e8)
	if got := buf.String(); !strings.HasPrefix(got, "event: point\n") || !strings.Contains(got, `"series":"FDDI"`) {
		t.Errorf("point frame = %q", got)
	}
}

func TestSSECoalescesSamples(t *testing.T) {
	var buf bytes.Buffer
	sse := NewSSE(&buf, nil, 10)
	for i := 0; i < 35; i++ {
		sse.SampleDone()
	}
	frames := strings.Count(buf.String(), "event: samples\n")
	if frames != 3 { // at 10, 20, 30
		t.Errorf("sample frames = %d, want 3:\n%s", frames, buf.String())
	}
	if !strings.Contains(buf.String(), `{"samples":30}`) {
		t.Errorf("cumulative count missing: %s", buf.String())
	}
}

type failAfter struct {
	n int
}

func (w *failAfter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("client gone")
	}
	w.n--
	return len(p), nil
}

func TestSSELatchesFirstWriteError(t *testing.T) {
	w := &failAfter{n: 1}
	sse := NewSSE(w, nil, 1)
	if err := sse.Event("a", 1); err != nil {
		t.Fatalf("first event: %v", err)
	}
	if err := sse.Event("b", 2); err == nil {
		t.Fatal("second event should fail")
	}
	if sse.Err() == nil {
		t.Fatal("error did not latch")
	}
	// Latched: further events return the same error without writing.
	if err := sse.Event("c", 3); err == nil || err.Error() != "client gone" {
		t.Errorf("latched error = %v", err)
	}
}

func TestSSEImplementsProgress(t *testing.T) {
	var buf bytes.Buffer
	var p Progress = NewSSE(&buf, nil, 1)
	p.ExperimentStarted("FIG1", "Figure 1")
	p.ExperimentFinished("FIG1", true, nil)
	p.ExperimentFinished("FIG2", false, errors.New("boom"))
	p.SimulatorAdvanced(1, 0.5)
	out := buf.String()
	if strings.Count(out, "event: experiment-started\n") != 1 ||
		strings.Count(out, "event: experiment-finished\n") != 2 {
		t.Errorf("experiment frames wrong:\n%s", out)
	}
	if !strings.Contains(out, `"error":"boom"`) {
		t.Errorf("failure reason missing:\n%s", out)
	}
	if strings.Contains(out, "simulator") {
		t.Error("simulator ticks must be dropped")
	}
}
