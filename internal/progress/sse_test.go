package progress

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSSEFrameFormat(t *testing.T) {
	var buf bytes.Buffer
	flushes := 0
	sse := NewSSE(&buf, func() { flushes++ }, 1)

	if err := sse.Event("result", map[string]string{"k": "v"}); err != nil {
		t.Fatal(err)
	}
	want := "event: result\ndata: {\"k\":\"v\"}\n\n"
	if buf.String() != want {
		t.Errorf("frame = %q, want %q", buf.String(), want)
	}
	if flushes != 1 {
		t.Errorf("flushes = %d, want 1", flushes)
	}

	buf.Reset()
	sse.SweepPointDone("FDDI", 1e8)
	if got := buf.String(); !strings.HasPrefix(got, "event: point\n") || !strings.Contains(got, `"series":"FDDI"`) {
		t.Errorf("point frame = %q", got)
	}
}

func TestSSECoalescesSamples(t *testing.T) {
	var buf bytes.Buffer
	sse := NewSSE(&buf, nil, 10)
	for i := 0; i < 35; i++ {
		sse.SampleDone()
	}
	frames := strings.Count(buf.String(), "event: samples\n")
	if frames != 3 { // at 10, 20, 30
		t.Errorf("sample frames = %d, want 3:\n%s", frames, buf.String())
	}
	if !strings.Contains(buf.String(), `{"samples":30}`) {
		t.Errorf("cumulative count missing: %s", buf.String())
	}
}

type failAfter struct {
	n int
}

func (w *failAfter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("client gone")
	}
	w.n--
	return len(p), nil
}

func TestSSELatchesFirstWriteError(t *testing.T) {
	w := &failAfter{n: 1}
	sse := NewSSE(w, nil, 1)
	if err := sse.Event("a", 1); err != nil {
		t.Fatalf("first event: %v", err)
	}
	if err := sse.Event("b", 2); err == nil {
		t.Fatal("second event should fail")
	}
	if sse.Err() == nil {
		t.Fatal("error did not latch")
	}
	// Latched: further events return the same error without writing.
	if err := sse.Event("c", 3); err == nil || err.Error() != "client gone" {
		t.Errorf("latched error = %v", err)
	}
}

func TestSSEImplementsProgress(t *testing.T) {
	var buf bytes.Buffer
	var p Progress = NewSSE(&buf, nil, 1)
	p.ExperimentStarted("FIG1", "Figure 1")
	p.ExperimentFinished("FIG1", true, nil)
	p.ExperimentFinished("FIG2", false, errors.New("boom"))
	p.SimulatorAdvanced(1, 0.5)
	out := buf.String()
	if strings.Count(out, "event: experiment-started\n") != 1 ||
		strings.Count(out, "event: experiment-finished\n") != 2 {
		t.Errorf("experiment frames wrong:\n%s", out)
	}
	if !strings.Contains(out, `"error":"boom"`) {
		t.Errorf("failure reason missing:\n%s", out)
	}
	if strings.Contains(out, "simulator") {
		t.Error("simulator ticks must be dropped")
	}
}

func TestSSECommentFrameFormat(t *testing.T) {
	var buf bytes.Buffer
	flushes := 0
	sse := NewSSE(&buf, func() { flushes++ }, 1)
	if err := sse.Comment("keepalive"); err != nil {
		t.Fatal(err)
	}
	if got, want := buf.String(), ": keepalive\n\n"; got != want {
		t.Errorf("comment frame = %q, want %q", got, want)
	}
	if flushes != 1 {
		t.Errorf("flushes = %d, want 1", flushes)
	}
	// Newlines cannot be smuggled into the frame.
	buf.Reset()
	sse.Comment("a\nb")
	if strings.Contains(strings.TrimSuffix(buf.String(), "\n\n"), "\n") {
		t.Errorf("comment with newline produced a broken frame: %q", buf.String())
	}
}

func TestSSEKeepAliveHeartbeatsStalledStream(t *testing.T) {
	var buf bytes.Buffer
	sse := NewSSE(&buf, nil, 1)
	stop := sse.KeepAlive(context.Background(), 5*time.Millisecond)
	time.Sleep(60 * time.Millisecond)
	stop() // waits for the goroutine, so reading buf is race-free
	if n := strings.Count(buf.String(), ": keepalive\n\n"); n < 2 {
		t.Errorf("stalled stream got %d keepalives, want >= 2:\n%q", n, buf.String())
	}
}

func TestSSEKeepAliveSuppressedByActiveStream(t *testing.T) {
	var buf syncBuffer
	sse := NewSSE(&buf, nil, 1)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	stop := sse.KeepAlive(ctx, 30*time.Millisecond)
	for i := 0; i < 20; i++ {
		sse.Event("tick", i)
		time.Sleep(5 * time.Millisecond)
	}
	stop()
	if strings.Contains(buf.String(), ": keepalive") {
		t.Errorf("active stream should not heartbeat:\n%q", buf.String())
	}
	// Cancelling the context also stops the heartbeat.
	sse2 := NewSSE(&buf, nil, 1)
	ctx2, cancel2 := context.WithCancel(context.Background())
	stop2 := sse2.KeepAlive(ctx2, time.Millisecond)
	cancel2()
	stop2()
}

func TestSSEKeepAliveDisabled(t *testing.T) {
	sse := NewSSE(&bytes.Buffer{}, nil, 1)
	stop := sse.KeepAlive(context.Background(), 0)
	stop() // must be a no-op, not a panic
}

// syncBuffer is a goroutine-safe bytes.Buffer for tests where the
// keepalive goroutine and the test body both touch the stream.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
