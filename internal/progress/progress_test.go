package progress

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// exercise drives every callback once.
func exercise(p Progress) {
	p.SampleDone()
	p.SweepPointDone("fddi", 16e6)
	p.ExperimentStarted("FIG1", "figure 1")
	p.ExperimentFinished("FIG1", true, nil)
	p.SimulatorAdvanced(42, 0.5)
}

func TestCounterTallies(t *testing.T) {
	var c Counter
	exercise(&c)
	exercise(&c)
	if c.Samples() != 2 || c.SweepPoints() != 2 ||
		c.ExperimentsStarted() != 2 || c.ExperimentsFinished() != 2 {
		t.Errorf("counter = %d/%d/%d/%d, want 2 each",
			c.Samples(), c.SweepPoints(), c.ExperimentsStarted(), c.ExperimentsFinished())
	}
	// SimulatorAdvanced reports a running total, not a delta: the counter
	// keeps the latest value.
	if c.SimEvents() != 42 {
		t.Errorf("SimEvents = %d, want 42", c.SimEvents())
	}
	c.SimulatorAdvanced(100, 1)
	if c.SimEvents() != 100 {
		t.Errorf("SimEvents = %d, want 100 after update", c.SimEvents())
	}
}

func TestNopAndOrNop(t *testing.T) {
	exercise(Nop{}) // must not panic
	if _, ok := OrNop(nil).(Nop); !ok {
		t.Error("OrNop(nil) did not return Nop")
	}
	var c Counter
	if OrNop(&c) != &c {
		t.Error("OrNop(p) did not return p unchanged")
	}
}

func TestFuncsNilFieldsSafe(t *testing.T) {
	exercise(Funcs{}) // all fields nil: every callback must be a no-op
}

func TestFuncsDispatch(t *testing.T) {
	var samples int
	var gotSeries string
	var gotErr error
	f := Funcs{
		OnSample:             func() { samples++ },
		OnSweepPoint:         func(series string, _ float64) { gotSeries = series },
		OnExperimentFinished: func(_ string, _ bool, err error) { gotErr = err },
	}
	wantErr := errors.New("aborted")
	f.SampleDone()
	f.SweepPointDone("toy", 1e6)
	f.ExperimentStarted("X", "unused")
	f.ExperimentFinished("X", false, wantErr)
	f.SimulatorAdvanced(1, 0)
	if samples != 1 || gotSeries != "toy" || !errors.Is(gotErr, wantErr) {
		t.Errorf("dispatch = %d/%q/%v", samples, gotSeries, gotErr)
	}
}

func TestTeeFansOut(t *testing.T) {
	var a, b Counter
	exercise(Tee(&a, &b))
	if a.Samples() != 1 || b.Samples() != 1 {
		t.Errorf("tee samples = %d/%d, want 1/1", a.Samples(), b.Samples())
	}
	if a.SweepPoints() != 1 || b.SweepPoints() != 1 {
		t.Errorf("tee points = %d/%d, want 1/1", a.SweepPoints(), b.SweepPoints())
	}
}

// meterAt builds a meter with a deterministic manual clock.
func meterAt(w *strings.Builder, total int64) (*Meter, *time.Time) {
	m := NewMeter(w, total)
	now := time.Unix(0, 0)
	m.clock = func() time.Time { return now }
	return m, &now
}

func TestMeterRendersPercentAndETA(t *testing.T) {
	var buf strings.Builder
	m, now := meterAt(&buf, 100)
	for i := 0; i < 49; i++ {
		m.SampleDone() // only the first draws; the clock is frozen
	}
	*now = now.Add(time.Second)
	m.SampleDone() // throttle window elapsed: draws 50/100 with an ETA
	out := buf.String()
	if !strings.Contains(out, "50/100 samples (50%)") {
		t.Errorf("meter output %q missing 50%% line", out)
	}
	if !strings.Contains(out, "ETA") {
		t.Errorf("meter output %q missing ETA", out)
	}
}

func TestMeterThrottles(t *testing.T) {
	var buf strings.Builder
	m, _ := meterAt(&buf, 1000)
	// Clock frozen: only the first callback may draw.
	for i := 0; i < 500; i++ {
		m.SampleDone()
	}
	if draws := strings.Count(buf.String(), "\r"); draws != 1 {
		t.Errorf("%d redraws with a frozen clock, want 1 (throttled)", draws)
	}
}

func TestMeterLabelAndClose(t *testing.T) {
	var buf strings.Builder
	m, now := meterAt(&buf, 0)
	m.SweepPointDone("fddi", 16e6)
	*now = now.Add(time.Second)
	m.SimulatorAdvanced(1234, 0.25)
	m.Close()
	out := buf.String()
	if !strings.Contains(out, "fddi @ 16 Mbps") {
		t.Errorf("meter output %q missing sweep label", out)
	}
	if !strings.Contains(out, "1234 events") {
		t.Errorf("meter output %q missing simulator events", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Error("Close did not terminate the status line")
	}
	// Callbacks after Close are ignored.
	before := buf.Len()
	m.SampleDone()
	m.Close()
	if buf.Len() != before {
		t.Error("meter wrote after Close")
	}
}
