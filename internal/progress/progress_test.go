package progress

import (
	"errors"
	"strings"
	"testing"
	"time"
)

// exercise drives every callback once.
func exercise(p Progress) {
	p.SampleDone()
	p.SweepPointDone("fddi", 16e6)
	p.ExperimentStarted("FIG1", "figure 1")
	p.ExperimentFinished("FIG1", true, nil)
	p.SimulatorAdvanced(42, 0.5)
}

func TestCounterTallies(t *testing.T) {
	var c Counter
	exercise(&c)
	exercise(&c)
	if c.Samples() != 2 || c.SweepPoints() != 2 ||
		c.ExperimentsStarted() != 2 || c.ExperimentsFinished() != 2 {
		t.Errorf("counter = %d/%d/%d/%d, want 2 each",
			c.Samples(), c.SweepPoints(), c.ExperimentsStarted(), c.ExperimentsFinished())
	}
	// SimulatorAdvanced reports a running total, not a delta: the counter
	// keeps the latest value.
	if c.SimEvents() != 42 {
		t.Errorf("SimEvents = %d, want 42", c.SimEvents())
	}
	c.SimulatorAdvanced(100, 1)
	if c.SimEvents() != 100 {
		t.Errorf("SimEvents = %d, want 100 after update", c.SimEvents())
	}
}

func TestNopAndOrNop(t *testing.T) {
	exercise(Nop{}) // must not panic
	if _, ok := OrNop(nil).(Nop); !ok {
		t.Error("OrNop(nil) did not return Nop")
	}
	var c Counter
	if OrNop(&c) != &c {
		t.Error("OrNop(p) did not return p unchanged")
	}
}

func TestFuncsNilFieldsSafe(t *testing.T) {
	exercise(Funcs{}) // all fields nil: every callback must be a no-op
}

func TestFuncsDispatch(t *testing.T) {
	var samples int
	var gotSeries string
	var gotErr error
	f := Funcs{
		OnSample:             func() { samples++ },
		OnSweepPoint:         func(series string, _ float64) { gotSeries = series },
		OnExperimentFinished: func(_ string, _ bool, err error) { gotErr = err },
	}
	wantErr := errors.New("aborted")
	f.SampleDone()
	f.SweepPointDone("toy", 1e6)
	f.ExperimentStarted("X", "unused")
	f.ExperimentFinished("X", false, wantErr)
	f.SimulatorAdvanced(1, 0)
	if samples != 1 || gotSeries != "toy" || !errors.Is(gotErr, wantErr) {
		t.Errorf("dispatch = %d/%q/%v", samples, gotSeries, gotErr)
	}
}

func TestTeeFansOut(t *testing.T) {
	var a, b Counter
	exercise(Tee(&a, &b))
	if a.Samples() != 1 || b.Samples() != 1 {
		t.Errorf("tee samples = %d/%d, want 1/1", a.Samples(), b.Samples())
	}
	if a.SweepPoints() != 1 || b.SweepPoints() != 1 {
		t.Errorf("tee points = %d/%d, want 1/1", a.SweepPoints(), b.SweepPoints())
	}
}

// meterAt builds a meter with a deterministic manual clock.
func meterAt(w *strings.Builder, total int64) (*Meter, *time.Time) {
	m := NewMeter(w, total)
	now := time.Unix(0, 0)
	m.clock = func() time.Time { return now }
	return m, &now
}

func TestMeterRendersPercentAndETA(t *testing.T) {
	var buf strings.Builder
	m, now := meterAt(&buf, 100)
	for i := 0; i < 49; i++ {
		m.SampleDone() // only the first draws; the clock is frozen
	}
	*now = now.Add(time.Second)
	m.SampleDone() // throttle window elapsed: draws 50/100 with an ETA
	out := buf.String()
	if !strings.Contains(out, "50/100 samples (50%)") {
		t.Errorf("meter output %q missing 50%% line", out)
	}
	if !strings.Contains(out, "ETA") {
		t.Errorf("meter output %q missing ETA", out)
	}
}

func TestMeterThrottles(t *testing.T) {
	var buf strings.Builder
	m, _ := meterAt(&buf, 1000)
	// Clock frozen: only the first callback may draw.
	for i := 0; i < 500; i++ {
		m.SampleDone()
	}
	if draws := strings.Count(buf.String(), "\r"); draws != 1 {
		t.Errorf("%d redraws with a frozen clock, want 1 (throttled)", draws)
	}
}

func TestMeterThrottleWindowReopens(t *testing.T) {
	var buf strings.Builder
	m, now := meterAt(&buf, 1000)
	m.SampleDone() // first callback always draws
	m.SampleDone() // same instant: suppressed
	*now = now.Add(99 * time.Millisecond)
	m.SampleDone() // still inside the 100ms window: suppressed
	if draws := strings.Count(buf.String(), "\r"); draws != 1 {
		t.Fatalf("%d redraws inside the throttle window, want 1", draws)
	}
	*now = now.Add(time.Millisecond)
	m.SampleDone() // window elapsed: draws again
	if draws := strings.Count(buf.String(), "\r"); draws != 2 {
		t.Errorf("%d redraws after the window reopened, want 2", draws)
	}
}

func TestMeterCloseForcesDraw(t *testing.T) {
	var buf strings.Builder
	m, _ := meterAt(&buf, 100)
	for i := 0; i < 50; i++ {
		m.SampleDone() // frozen clock: only the first draws
	}
	m.Close() // must force a final redraw despite the throttle
	if out := buf.String(); !strings.Contains(out, "50/100 samples") {
		t.Errorf("Close did not render the final state:\n%q", out)
	}
}

func TestMeterWidthReset(t *testing.T) {
	var buf strings.Builder
	m, now := meterAt(&buf, 0)
	long := "a-very-long-experiment-label"
	m.ExperimentStarted(long, "")
	*now = now.Add(time.Second)
	m.ExperimentStarted("short", "")
	*now = now.Add(time.Second)
	m.ExperimentStarted("again", "")

	segs := strings.Split(buf.String(), "\r")[1:] // leading \r yields an empty head
	if len(segs) != 3 {
		t.Fatalf("%d redraws, want 3:\n%q", len(segs), buf.String())
	}
	if segs[0] != long {
		t.Errorf("first draw = %q, want bare %q", segs[0], long)
	}
	// A shorter line must be padded to blank the previous, longer one.
	if want := "short" + strings.Repeat(" ", len(long)-len("short")); segs[1] != want {
		t.Errorf("second draw = %q, want %q (padded to previous width)", segs[1], want)
	}
	// The tracked width must then reset to the short line, not stay at the
	// long one: an equal-length successor needs no padding at all.
	if segs[2] != "again" {
		t.Errorf("third draw = %q, want %q with no padding (width was reset)", segs[2], "again")
	}
}

func TestMeterLabelAndClose(t *testing.T) {
	var buf strings.Builder
	m, now := meterAt(&buf, 0)
	m.SweepPointDone("fddi", 16e6)
	*now = now.Add(time.Second)
	m.SimulatorAdvanced(1234, 0.25)
	m.Close()
	out := buf.String()
	if !strings.Contains(out, "fddi @ 16 Mbps") {
		t.Errorf("meter output %q missing sweep label", out)
	}
	if !strings.Contains(out, "1234 events") {
		t.Errorf("meter output %q missing simulator events", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Error("Close did not terminate the status line")
	}
	// Callbacks after Close are ignored.
	before := buf.Len()
	m.SampleDone()
	m.Close()
	if buf.Len() != before {
		t.Error("meter wrote after Close")
	}
}
