// Package progress defines the lightweight observer interface threaded
// through the analysis pipeline: the Monte Carlo estimator reports finished
// samples, sweeps report finished bandwidth points, the experiment runner
// reports experiment lifecycle, and the discrete-event simulators report
// event-loop advancement. Observers make long-running work visible (live
// CLI meters) and testable (counting observers in cancellation tests)
// without coupling the engines to any output format.
package progress

import (
	"sync/atomic"
)

// Progress observes pipeline milestones. Implementations must be safe for
// concurrent use: the estimator, sweep, and experiment worker pools invoke
// the callbacks from multiple goroutines. Callbacks must be cheap — they
// run on the hot path between samples.
type Progress interface {
	// SampleDone reports one completed Monte Carlo sample.
	SampleDone()
	// SweepPointDone reports one completed (series, bandwidth) sweep point.
	SweepPointDone(series string, bandwidthBPS float64)
	// ExperimentStarted reports that the experiment began executing.
	ExperimentStarted(id, title string)
	// ExperimentFinished reports the experiment's outcome; err is non-nil
	// when the experiment aborted (including cancellation).
	ExperimentFinished(id string, pass bool, err error)
	// SimulatorAdvanced reports that a discrete-event simulator has fired
	// events total events and reached simulation time simTime.
	SimulatorAdvanced(events int, simTime float64)
}

// Nop is a Progress that ignores every callback.
type Nop struct{}

// SampleDone implements Progress.
func (Nop) SampleDone() {}

// SweepPointDone implements Progress.
func (Nop) SweepPointDone(string, float64) {}

// ExperimentStarted implements Progress.
func (Nop) ExperimentStarted(string, string) {}

// ExperimentFinished implements Progress.
func (Nop) ExperimentFinished(string, bool, error) {}

// SimulatorAdvanced implements Progress.
func (Nop) SimulatorAdvanced(int, float64) {}

// OrNop normalizes a possibly-nil observer so callers can invoke callbacks
// unconditionally.
func OrNop(p Progress) Progress {
	if p == nil {
		return Nop{}
	}
	return p
}

// Funcs adapts free functions to Progress; nil fields are ignored. It is
// the ad-hoc observer for callers that care about one or two callbacks.
type Funcs struct {
	OnSample             func()
	OnSweepPoint         func(series string, bandwidthBPS float64)
	OnExperimentStarted  func(id, title string)
	OnExperimentFinished func(id string, pass bool, err error)
	OnSimulatorAdvanced  func(events int, simTime float64)
}

// SampleDone implements Progress.
func (f Funcs) SampleDone() {
	if f.OnSample != nil {
		f.OnSample()
	}
}

// SweepPointDone implements Progress.
func (f Funcs) SweepPointDone(series string, bandwidthBPS float64) {
	if f.OnSweepPoint != nil {
		f.OnSweepPoint(series, bandwidthBPS)
	}
}

// ExperimentStarted implements Progress.
func (f Funcs) ExperimentStarted(id, title string) {
	if f.OnExperimentStarted != nil {
		f.OnExperimentStarted(id, title)
	}
}

// ExperimentFinished implements Progress.
func (f Funcs) ExperimentFinished(id string, pass bool, err error) {
	if f.OnExperimentFinished != nil {
		f.OnExperimentFinished(id, pass, err)
	}
}

// SimulatorAdvanced implements Progress.
func (f Funcs) SimulatorAdvanced(events int, simTime float64) {
	if f.OnSimulatorAdvanced != nil {
		f.OnSimulatorAdvanced(events, simTime)
	}
}

// Counter tallies callbacks atomically. Cancellation tests use it to prove
// that no work is dispatched after a context fires; it is also a cheap way
// to expose aggregate throughput numbers.
type Counter struct {
	samples     atomic.Int64
	sweepPoints atomic.Int64
	started     atomic.Int64
	finished    atomic.Int64
	simEvents   atomic.Int64
}

// SampleDone implements Progress.
func (c *Counter) SampleDone() { c.samples.Add(1) }

// SweepPointDone implements Progress.
func (c *Counter) SweepPointDone(string, float64) { c.sweepPoints.Add(1) }

// ExperimentStarted implements Progress.
func (c *Counter) ExperimentStarted(string, string) { c.started.Add(1) }

// ExperimentFinished implements Progress.
func (c *Counter) ExperimentFinished(string, bool, error) { c.finished.Add(1) }

// SimulatorAdvanced implements Progress.
func (c *Counter) SimulatorAdvanced(events int, _ float64) { c.simEvents.Store(int64(events)) }

// Samples returns the number of SampleDone callbacks observed.
func (c *Counter) Samples() int64 { return c.samples.Load() }

// SweepPoints returns the number of SweepPointDone callbacks observed.
func (c *Counter) SweepPoints() int64 { return c.sweepPoints.Load() }

// ExperimentsStarted returns the number of ExperimentStarted callbacks.
func (c *Counter) ExperimentsStarted() int64 { return c.started.Load() }

// ExperimentsFinished returns the number of ExperimentFinished callbacks.
func (c *Counter) ExperimentsFinished() int64 { return c.finished.Load() }

// SimEvents returns the most recent simulator event count observed.
func (c *Counter) SimEvents() int64 { return c.simEvents.Load() }

// Tee fans every callback out to each observer in order.
func Tee(obs ...Progress) Progress { return tee(obs) }

type tee []Progress

func (t tee) SampleDone() {
	for _, p := range t {
		p.SampleDone()
	}
}

func (t tee) SweepPointDone(series string, bw float64) {
	for _, p := range t {
		p.SweepPointDone(series, bw)
	}
}

func (t tee) ExperimentStarted(id, title string) {
	for _, p := range t {
		p.ExperimentStarted(id, title)
	}
}

func (t tee) ExperimentFinished(id string, pass bool, err error) {
	for _, p := range t {
		p.ExperimentFinished(id, pass, err)
	}
}

func (t tee) SimulatorAdvanced(events int, simTime float64) {
	for _, p := range t {
		p.SimulatorAdvanced(events, simTime)
	}
}
