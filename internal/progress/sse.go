package progress

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// SSE adapts the Progress interface to the server-sent-events wire
// format: each callback becomes an "event: <kind>\ndata: <json>\n\n"
// frame on the underlying writer. It is the bridge between the analysis
// pipeline's observers and a streaming HTTP response.
//
// SampleDone is the hot callback — a long sweep fires it hundreds of
// thousands of times — so samples are coalesced: one "samples" frame per
// SampleEvery completions. The other callbacks are rare and forwarded
// one-to-one. Writes are serialized with a mutex (pipeline callbacks come
// from many goroutines); the first write error latches and silences all
// further frames, so a vanished client costs nothing.
type SSE struct {
	// SampleEvery is the sample coalescing factor; values < 1 mean 64.
	SampleEvery int64

	mu        sync.Mutex
	w         io.Writer
	flush     func()
	err       error
	samples   atomic.Int64
	lastWrite atomic.Int64 // unix nanos of the last successful frame
}

// NewSSE returns an SSE adapter writing frames to w; flush (may be nil)
// is invoked after every frame, typically http.Flusher.Flush.
func NewSSE(w io.Writer, flush func(), sampleEvery int64) *SSE {
	return &SSE{w: w, flush: flush, SampleEvery: sampleEvery}
}

// Event emits one frame outside the Progress callbacks — the server uses
// it for the final "result" and "error" frames. data is JSON-encoded.
func (s *SSE) Event(kind string, data any) error {
	body, err := json.Marshal(data)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	if _, err := fmt.Fprintf(s.w, "event: %s\ndata: %s\n\n", kind, body); err != nil {
		s.err = err
		return err
	}
	s.lastWrite.Store(time.Now().UnixNano())
	if s.flush != nil {
		s.flush()
	}
	return nil
}

// Comment emits an SSE comment frame (": text\n\n"). Comment frames are
// invisible to EventSource consumers but keep the TCP connection and any
// intermediaries (proxies, LBs with idle timeouts) convinced the stream
// is alive — the heartbeat primitive behind KeepAlive.
func (s *SSE) Comment(text string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	if _, err := fmt.Fprintf(s.w, ": %s\n\n", strings.ReplaceAll(text, "\n", " ")); err != nil {
		s.err = err
		return err
	}
	s.lastWrite.Store(time.Now().UnixNano())
	if s.flush != nil {
		s.flush()
	}
	return nil
}

// IdleSince returns how long ago the last frame (event or comment) was
// written; it returns a very large duration before the first frame.
func (s *SSE) IdleSince(now time.Time) time.Duration {
	last := s.lastWrite.Load()
	if last == 0 {
		return time.Duration(1<<63 - 1)
	}
	return now.Sub(time.Unix(0, last))
}

// KeepAlive starts a heartbeat goroutine that writes a ": keepalive"
// comment whenever the stream has been idle for `every` — a sweep stuck
// in a long Monte Carlo phase stops looking like a dead connection. The
// goroutine exits when ctx is cancelled or the returned stop function is
// called (stop also waits for it to finish, so tests can assert no
// frames after stop). every <= 0 disables the heartbeat entirely.
func (s *SSE) KeepAlive(ctx context.Context, every time.Duration) (stop func()) {
	if every <= 0 {
		return func() {}
	}
	done := make(chan struct{})
	finished := make(chan struct{})
	go func() {
		defer close(finished)
		t := time.NewTicker(every)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				if s.IdleSince(time.Now()) >= every {
					s.Comment("keepalive")
				}
			case <-ctx.Done():
				return
			case <-done:
				return
			}
		}
	}()
	var once sync.Once
	return func() {
		once.Do(func() { close(done) })
		<-finished
	}
}

// Err returns the latched write error, if any.
func (s *SSE) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// SampleDone implements Progress, emitting a cumulative count every
// SampleEvery samples.
func (s *SSE) SampleDone() {
	n := s.samples.Add(1)
	every := s.SampleEvery
	if every < 1 {
		every = 64
	}
	if n%every == 0 {
		s.Event("samples", map[string]int64{"samples": n})
	}
}

// SweepPointDone implements Progress.
func (s *SSE) SweepPointDone(series string, bandwidthBPS float64) {
	s.Event("point", map[string]any{"series": series, "bandwidthBPS": bandwidthBPS})
}

// ExperimentStarted implements Progress.
func (s *SSE) ExperimentStarted(id, title string) {
	s.Event("experiment-started", map[string]string{"id": id, "title": title})
}

// ExperimentFinished implements Progress.
func (s *SSE) ExperimentFinished(id string, pass bool, err error) {
	data := map[string]any{"id": id, "pass": pass}
	if err != nil {
		data["error"] = err.Error()
	}
	s.Event("experiment-finished", data)
}

// SimulatorAdvanced implements Progress; simulator ticks are dropped —
// they are too fine-grained for a network stream.
func (s *SSE) SimulatorAdvanced(int, float64) {}
