package progress

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// SSE adapts the Progress interface to the server-sent-events wire
// format: each callback becomes an "event: <kind>\ndata: <json>\n\n"
// frame on the underlying writer. It is the bridge between the analysis
// pipeline's observers and a streaming HTTP response.
//
// SampleDone is the hot callback — a long sweep fires it hundreds of
// thousands of times — so samples are coalesced: one "samples" frame per
// SampleEvery completions. The other callbacks are rare and forwarded
// one-to-one. Writes are serialized with a mutex (pipeline callbacks come
// from many goroutines); the first write error latches and silences all
// further frames, so a vanished client costs nothing.
type SSE struct {
	// SampleEvery is the sample coalescing factor; values < 1 mean 64.
	SampleEvery int64

	mu      sync.Mutex
	w       io.Writer
	flush   func()
	err     error
	samples atomic.Int64
}

// NewSSE returns an SSE adapter writing frames to w; flush (may be nil)
// is invoked after every frame, typically http.Flusher.Flush.
func NewSSE(w io.Writer, flush func(), sampleEvery int64) *SSE {
	return &SSE{w: w, flush: flush, SampleEvery: sampleEvery}
}

// Event emits one frame outside the Progress callbacks — the server uses
// it for the final "result" and "error" frames. data is JSON-encoded.
func (s *SSE) Event(kind string, data any) error {
	body, err := json.Marshal(data)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	if _, err := fmt.Fprintf(s.w, "event: %s\ndata: %s\n\n", kind, body); err != nil {
		s.err = err
		return err
	}
	if s.flush != nil {
		s.flush()
	}
	return nil
}

// Err returns the latched write error, if any.
func (s *SSE) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// SampleDone implements Progress, emitting a cumulative count every
// SampleEvery samples.
func (s *SSE) SampleDone() {
	n := s.samples.Add(1)
	every := s.SampleEvery
	if every < 1 {
		every = 64
	}
	if n%every == 0 {
		s.Event("samples", map[string]int64{"samples": n})
	}
}

// SweepPointDone implements Progress.
func (s *SSE) SweepPointDone(series string, bandwidthBPS float64) {
	s.Event("point", map[string]any{"series": series, "bandwidthBPS": bandwidthBPS})
}

// ExperimentStarted implements Progress.
func (s *SSE) ExperimentStarted(id, title string) {
	s.Event("experiment-started", map[string]string{"id": id, "title": title})
}

// ExperimentFinished implements Progress.
func (s *SSE) ExperimentFinished(id string, pass bool, err error) {
	data := map[string]any{"id": id, "pass": pass}
	if err != nil {
		data["error"] = err.Error()
	}
	s.Event("experiment-finished", data)
}

// SimulatorAdvanced implements Progress; simulator ticks are dropped —
// they are too fine-grained for a network stream.
func (s *SSE) SimulatorAdvanced(int, float64) {}
