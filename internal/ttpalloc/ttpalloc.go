// Package ttpalloc implements synchronous bandwidth allocation schemes for
// the timed token protocol beyond the local scheme of Theorem 5.1 — the
// baselines from the line of work the paper builds on (Agrawal, Chen &
// Zhao): full-length, proportional, equal partition, and normalized
// proportional allocation — together with a generic schedulability test
// valid for any allocation.
//
// A scheme assigns each station a synchronous bandwidth h_i. A message set
// is guaranteed under an allocation iff
//
//   - protocol constraint:  Σ h_i ≤ TTRT − θ, and
//   - deadline constraint:  (⌊P_i/TTRT⌋ − 1)·(h_i − Fovhd) ≥ C_i for all i
//
// (a station gets at least ⌊P_i/TTRT⌋ − 1 visits of h_i within any period,
// each visit paying one frame overhead).
package ttpalloc

import (
	"errors"
	"math"

	"ringsched/internal/core"
	"ringsched/internal/message"
)

// ErrBadScheme reports a nil allocation scheme.
var ErrBadScheme = errors.New("ttpalloc: scheme must not be nil")

// Context carries the quantities an allocation scheme may use.
type Context struct {
	// Set is the synchronous message set (one stream per station).
	Set message.Set
	// TTRT is the negotiated target token rotation time.
	TTRT float64
	// Overhead is θ, the per-rotation protocol overhead.
	Overhead float64
	// FrameOverhead is Fovhd, the per-frame overhead in seconds.
	FrameOverhead float64
	// BandwidthBPS converts payload bits to time.
	BandwidthBPS float64
}

// visits is ⌊P/TTRT⌋ − 1, the guaranteed token visits inside one period.
func (c Context) visits(period float64) float64 {
	return math.Floor(period/c.TTRT) - 1
}

// Scheme assigns synchronous bandwidths h_i, one per stream of c.Set.
type Scheme interface {
	// Name identifies the scheme in reports.
	Name() string
	// Allocate returns h_i for every stream. Allocations may violate the
	// constraints; Schedulable checks them.
	Allocate(c Context) []float64
}

// Local is the paper's scheme: h_i = C'_i/(q_i − 1) with
// C'_i = C_i + (q_i−1)·Fovhd — each station computes its allocation from
// its own stream alone. It satisfies the deadline constraint by
// construction, so schedulability reduces to the protocol constraint
// (Theorem 5.1).
type Local struct{}

// Name implements Scheme.
func (Local) Name() string { return "local" }

// Allocate implements Scheme.
func (Local) Allocate(c Context) []float64 {
	out := make([]float64, len(c.Set))
	for i, s := range c.Set {
		v := c.visits(s.Period)
		if v < 1 {
			out[i] = math.Inf(1)
			continue
		}
		out[i] = s.Length(c.BandwidthBPS)/v + c.FrameOverhead
	}
	return out
}

// FullLength allocates each station enough to send an entire message in a
// single visit: h_i = C_i + Fovhd. Simple, but over-allocates long
// messages and fails the protocol constraint early.
type FullLength struct{}

// Name implements Scheme.
func (FullLength) Name() string { return "full-length" }

// Allocate implements Scheme.
func (FullLength) Allocate(c Context) []float64 {
	out := make([]float64, len(c.Set))
	for i, s := range c.Set {
		out[i] = s.Length(c.BandwidthBPS) + c.FrameOverhead
	}
	return out
}

// Proportional divides the usable rotation capacity in proportion to each
// stream's utilization: h_i = (C_i/P_i)·(TTRT − θ). Its total never
// exceeds the protocol constraint while U ≤ 1, but low-utilization streams
// with tight periods can starve.
type Proportional struct{}

// Name implements Scheme.
func (Proportional) Name() string { return "proportional" }

// Allocate implements Scheme.
func (Proportional) Allocate(c Context) []float64 {
	out := make([]float64, len(c.Set))
	for i, s := range c.Set {
		out[i] = s.Utilization(c.BandwidthBPS) * (c.TTRT - c.Overhead)
	}
	return out
}

// EqualPartition splits the usable rotation capacity evenly:
// h_i = (TTRT − θ)/n, ignoring the workload entirely.
type EqualPartition struct{}

// Name implements Scheme.
func (EqualPartition) Name() string { return "equal-partition" }

// Allocate implements Scheme.
func (EqualPartition) Allocate(c Context) []float64 {
	out := make([]float64, len(c.Set))
	n := float64(len(c.Set))
	for i := range c.Set {
		out[i] = (c.TTRT - c.Overhead) / n
	}
	return out
}

// NormalizedProportional scales the proportional shares so the whole
// usable capacity is always handed out: h_i = (U_i/U)·(TTRT − θ).
type NormalizedProportional struct{}

// Name implements Scheme.
func (NormalizedProportional) Name() string { return "normalized-proportional" }

// Allocate implements Scheme.
func (NormalizedProportional) Allocate(c Context) []float64 {
	out := make([]float64, len(c.Set))
	total := c.Set.Utilization(c.BandwidthBPS)
	if total == 0 {
		return out
	}
	for i, s := range c.Set {
		out[i] = s.Utilization(c.BandwidthBPS) / total * (c.TTRT - c.Overhead)
	}
	return out
}

// Analyzer adapts any allocation scheme to the core.Analyzer interface:
// the plant, TTRT rule and overheads come from an embedded core.TTP
// configuration, the allocation from the scheme, and schedulability from
// the generic protocol + deadline constraints.
type Analyzer struct {
	// TTP supplies the plant, frame formats and TTRT selection rule.
	TTP core.TTP
	// Scheme assigns the synchronous bandwidths.
	Scheme Scheme
}

var _ core.Analyzer = Analyzer{}

// Name implements core.Analyzer.
func (a Analyzer) Name() string {
	if a.Scheme == nil {
		return "FDDI/?"
	}
	return "FDDI/" + a.Scheme.Name()
}

// Context builds the allocation context the scheme will see for this set.
func (a Analyzer) Context(m message.Set) Context {
	return Context{
		Set:           m,
		TTRT:          a.TTP.SelectTTRT(m),
		Overhead:      a.TTP.Overhead(),
		FrameOverhead: a.TTP.SyncFrame.OvhdTime(a.TTP.Net.BandwidthBPS),
		BandwidthBPS:  a.TTP.Net.BandwidthBPS,
	}
}

// Schedulable implements core.Analyzer via the generic two-constraint test.
func (a Analyzer) Schedulable(m message.Set) (bool, error) {
	if a.Scheme == nil {
		return false, ErrBadScheme
	}
	if err := a.TTP.Validate(); err != nil {
		return false, err
	}
	if err := m.Validate(); err != nil {
		return false, err
	}
	ctx := a.Context(m)
	alloc := a.Scheme.Allocate(ctx)

	var total float64
	for i, s := range m {
		h := alloc[i]
		total += h
		v := ctx.visits(s.Period)
		if v < 1 {
			return false, nil
		}
		if v*(h-ctx.FrameOverhead) < s.Length(ctx.BandwidthBPS)-1e-15 {
			return false, nil
		}
	}
	return total <= ctx.TTRT-ctx.Overhead, nil
}
