package ttpalloc

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"ringsched/internal/core"
	"ringsched/internal/message"
)

func testSet() message.Set {
	return message.Set{
		{Name: "a", Period: 20e-3, LengthBits: 40_000},
		{Name: "b", Period: 50e-3, LengthBits: 100_000},
		{Name: "c", Period: 100e-3, LengthBits: 400_000},
	}
}

func testContext(set message.Set) Context {
	tt := core.NewTTP(100e6)
	tt.Net = tt.Net.WithStations(len(set))
	return Analyzer{TTP: tt, Scheme: Local{}}.Context(set)
}

func TestSchemeNames(t *testing.T) {
	for scheme, want := range map[Scheme]string{
		Local{}:                  "local",
		FullLength{}:             "full-length",
		Proportional{}:           "proportional",
		EqualPartition{}:         "equal-partition",
		NormalizedProportional{}: "normalized-proportional",
	} {
		if scheme.Name() != want {
			t.Errorf("Name() = %q, want %q", scheme.Name(), want)
		}
	}
}

func TestLocalAllocationFormula(t *testing.T) {
	set := testSet()
	ctx := testContext(set)
	alloc := Local{}.Allocate(ctx)
	for i, s := range set {
		q := math.Floor(s.Period / ctx.TTRT)
		want := s.Length(ctx.BandwidthBPS)/(q-1) + ctx.FrameOverhead
		if math.Abs(alloc[i]-want) > 1e-15 {
			t.Errorf("stream %d: h = %v, want %v", i, alloc[i], want)
		}
	}
}

func TestLocalSatisfiesDeadlineConstraintByConstruction(t *testing.T) {
	set := testSet()
	ctx := testContext(set)
	alloc := Local{}.Allocate(ctx)
	for i, s := range set {
		v := ctx.visits(s.Period)
		got := v * (alloc[i] - ctx.FrameOverhead)
		want := s.Length(ctx.BandwidthBPS)
		if got < want-1e-12 {
			t.Errorf("stream %d: deadline constraint violated: %v < %v", i, got, want)
		}
	}
}

func TestFullLengthAllocation(t *testing.T) {
	set := testSet()
	ctx := testContext(set)
	alloc := FullLength{}.Allocate(ctx)
	for i, s := range set {
		want := s.Length(ctx.BandwidthBPS) + ctx.FrameOverhead
		if alloc[i] != want {
			t.Errorf("stream %d: h = %v, want %v", i, alloc[i], want)
		}
	}
}

func TestProportionalTotalsRespectCapacity(t *testing.T) {
	set := testSet()
	ctx := testContext(set)
	var totalP, totalN float64
	for _, h := range (Proportional{}).Allocate(ctx) {
		totalP += h
	}
	for _, h := range (NormalizedProportional{}).Allocate(ctx) {
		totalN += h
	}
	capacity := ctx.TTRT - ctx.Overhead
	u := set.Utilization(ctx.BandwidthBPS)
	if math.Abs(totalP-u*capacity) > 1e-12 {
		t.Errorf("proportional total %v, want U·cap = %v", totalP, u*capacity)
	}
	if math.Abs(totalN-capacity) > 1e-12 {
		t.Errorf("normalized total %v, want full capacity %v", totalN, capacity)
	}
}

func TestEqualPartition(t *testing.T) {
	set := testSet()
	ctx := testContext(set)
	alloc := EqualPartition{}.Allocate(ctx)
	want := (ctx.TTRT - ctx.Overhead) / 3
	for i, h := range alloc {
		if math.Abs(h-want) > 1e-18 {
			t.Errorf("stream %d: h = %v, want %v", i, h, want)
		}
	}
}

func TestAnalyzerLocalAgreesWithTheorem51(t *testing.T) {
	// The generic two-constraint test with the local scheme must agree
	// with core.TTP (Theorem 5.1) away from the boundary.
	rng := rand.New(rand.NewSource(13))
	gen := message.Generator{Streams: 20, MeanPeriod: 100e-3, PeriodRatio: 10}
	tt := core.NewTTP(100e6)
	tt.Net = tt.Net.WithStations(20)
	a := Analyzer{TTP: tt, Scheme: Local{}}
	agree := 0
	for trial := 0; trial < 60; trial++ {
		set, err := gen.Draw(rng)
		if err != nil {
			t.Fatal(err)
		}
		set, err = set.ScaleToUtilization(0.05+rng.Float64()*0.9, 100e6)
		if err != nil {
			t.Fatal(err)
		}
		want, err := tt.Schedulable(set)
		if err != nil {
			t.Fatal(err)
		}
		got, err := a.Schedulable(set)
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("trial %d: alloc-analyzer=%v theorem=%v", trial, got, want)
		}
		agree++
	}
	if agree == 0 {
		t.Fatal("vacuous")
	}
}

func TestAnalyzerRejectsNilScheme(t *testing.T) {
	a := Analyzer{TTP: core.NewTTP(100e6)}
	if _, err := a.Schedulable(testSet()); !errors.Is(err, ErrBadScheme) {
		t.Errorf("nil scheme: err = %v, want ErrBadScheme", err)
	}
	if a.Name() != "FDDI/?" {
		t.Errorf("nil scheme Name = %q", a.Name())
	}
	a.Scheme = Local{}
	if a.Name() != "FDDI/local" {
		t.Errorf("Name = %q, want FDDI/local", a.Name())
	}
}

func TestAnalyzerErrors(t *testing.T) {
	a := Analyzer{TTP: core.NewTTP(100e6), Scheme: Local{}}
	if _, err := a.Schedulable(nil); err == nil {
		t.Error("nil set accepted")
	}
	bad := a
	bad.TTP.Net.Stations = 0
	if _, err := bad.Schedulable(testSet()); err == nil {
		t.Error("invalid plant accepted")
	}
}

func TestEqualPartitionStarvesLongMessages(t *testing.T) {
	// A stream whose message cannot fit its equal share within its visits
	// makes the workload unschedulable under equal partition but fine
	// under the local scheme — the reason workload-aware schemes exist.
	set := message.Set{
		{Name: "big", Period: 100e-3, LengthBits: 2_000_000},
		{Name: "s1", Period: 20e-3, LengthBits: 1_000},
		{Name: "s2", Period: 20e-3, LengthBits: 1_000},
		{Name: "s3", Period: 20e-3, LengthBits: 1_000},
		{Name: "s4", Period: 20e-3, LengthBits: 1_000},
		{Name: "s5", Period: 20e-3, LengthBits: 1_000},
	}
	tt := core.NewTTP(100e6)
	tt.Net = tt.Net.WithStations(len(set))
	local := Analyzer{TTP: tt, Scheme: Local{}}
	equal := Analyzer{TTP: tt, Scheme: EqualPartition{}}
	okLocal, err := local.Schedulable(set)
	if err != nil {
		t.Fatal(err)
	}
	okEqual, err := equal.Schedulable(set)
	if err != nil {
		t.Fatal(err)
	}
	if !okLocal {
		t.Fatal("local scheme should guarantee this set")
	}
	if okEqual {
		t.Fatal("equal partition should starve the 2-Mbit stream")
	}
}

func TestSchedulableMonotoneAcrossSchemes(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	gen := message.Generator{Streams: 12, MeanPeriod: 100e-3, PeriodRatio: 10}
	set, err := gen.Draw(rng)
	if err != nil {
		t.Fatal(err)
	}
	tt := core.NewTTP(100e6)
	tt.Net = tt.Net.WithStations(12)
	for _, scheme := range []Scheme{Local{}, FullLength{}, Proportional{}, EqualPartition{}, NormalizedProportional{}} {
		a := Analyzer{TTP: tt, Scheme: scheme}
		was := false
		for _, scale := range []float64{30, 3, 1, 0.1, 0.01, 0.001} {
			ok, err := a.Schedulable(set.Scale(scale))
			if err != nil {
				t.Fatal(err)
			}
			if was && !ok {
				t.Fatalf("%s: not monotone at scale %v", scheme.Name(), scale)
			}
			if ok {
				was = true
			}
		}
	}
}
