package cli

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"os"

	"ringsched/internal/trace"
)

// Obs bundles the observability flags every tool shares: structured
// logging (-log-level, -log-format, to stderr so stdout stays pipeable)
// and span export (-trace-out, JSON lines). Register it on the tool's
// FlagSet, Setup it after parsing, and defer Close.
type Obs struct {
	// Level and Format hold the parsed -log-level / -log-format values.
	Level, Format string
	// TraceOut is the -trace-out path ("" = no span export, "-" = stderr).
	TraceOut string

	sink *trace.JSONL
	file *os.File
	out  io.Writer
}

// Register adds the observability flags to fs.
func (o *Obs) Register(fs *flag.FlagSet) {
	fs.StringVar(&o.Level, "log-level", "info", "log level: debug, info, warn or error")
	fs.StringVar(&o.Format, "log-format", "text", "log format: text or json")
	fs.StringVar(&o.TraceOut, "trace-out", "", "write finished trace spans as JSON lines to this file (- = stderr)")
}

// Setup builds the tool's logger (writing to errw) and, when -trace-out
// was given, installs a tracer on ctx whose finished spans are appended
// to the file as JSON lines. The returned context must be the one passed
// into the library so spans actually flow.
func (o *Obs) Setup(ctx context.Context, errw io.Writer) (context.Context, *slog.Logger, error) {
	logger, err := trace.NewLogger(errw, o.Level, o.Format)
	if err != nil {
		return ctx, nil, err
	}
	switch o.TraceOut {
	case "":
	case "-":
		o.out = errw
		o.sink = trace.NewJSONL(errw)
	default:
		f, err := os.Create(o.TraceOut)
		if err != nil {
			return ctx, nil, fmt.Errorf("trace-out: %w", err)
		}
		o.file = f
		o.out = f
		o.sink = trace.NewJSONL(f)
	}
	if o.sink != nil {
		ctx = trace.WithTracer(ctx, trace.New(o.sink))
	}
	return ctx, logger, nil
}

// Sink returns the span sink, or nil when -trace-out was not given;
// ringschedd hands it to the service so server-side spans reach the same
// file as the daemon's own.
func (o *Obs) Sink() trace.Sink {
	if o.sink == nil {
		return nil
	}
	return o.sink
}

// TraceWriter returns the raw -trace-out stream for tools that append
// extra JSON lines (ringsim's sampled protocol events and token-stats
// summary), or nil when -trace-out was not given.
func (o *Obs) TraceWriter() io.Writer { return o.out }

// Close flushes and closes the trace file, if one was opened.
func (o *Obs) Close() error {
	if o.file == nil {
		return nil
	}
	err := o.file.Close()
	o.file = nil
	return err
}
