package cli

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

func TestWithTimeoutZeroMeansNoDeadline(t *testing.T) {
	ctx, cancel := WithTimeout(context.Background(), 0)
	defer cancel()
	if _, ok := ctx.Deadline(); ok {
		t.Error("timeout 0 set a deadline")
	}
	cancel()
	if !errors.Is(ctx.Err(), context.Canceled) {
		t.Errorf("after cancel: %v, want context.Canceled", ctx.Err())
	}
}

func TestWithTimeoutExpires(t *testing.T) {
	ctx, cancel := WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("deadline never fired")
	}
	if !errors.Is(ctx.Err(), context.DeadlineExceeded) {
		t.Errorf("err = %v, want context.DeadlineExceeded", ctx.Err())
	}
}

func TestApplyWorkers(t *testing.T) {
	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)
	ApplyWorkers(0) // 0 = leave alone
	if got := runtime.GOMAXPROCS(0); got != orig {
		t.Errorf("ApplyWorkers(0) changed GOMAXPROCS to %d", got)
	}
	ApplyWorkers(1)
	if got := runtime.GOMAXPROCS(0); got != 1 {
		t.Errorf("ApplyWorkers(1): GOMAXPROCS = %d, want 1", got)
	}
}
