// Package cli holds the shared scaffolding of the five command-line
// tools: signal-driven cancellation (SIGINT/SIGTERM), the optional
// -timeout deadline, and a uniform exit path. Keeping it here means every
// tool interrupts the same way and main functions stay one line long.
package cli

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"
)

// RunFunc is the body of one command-line tool. The ctx is canceled on
// SIGINT/SIGTERM (and by -timeout when the tool wires one); out is stdout
// and errw is stderr (live progress goes to errw so output stays pipeable).
type RunFunc func(ctx context.Context, args []string, out, errw io.Writer) error

// Main runs a tool body under a signal-cancelable context and exits with
// status 1 on error. A second SIGINT kills the process immediately via the
// restored default handler.
func Main(name string, run RunFunc) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	err := run(ctx, os.Args[1:], os.Stdout, os.Stderr)
	stop()
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, name+": interrupted")
		} else {
			fmt.Fprintln(os.Stderr, name+":", err)
		}
		os.Exit(1)
	}
}

// WithTimeout wraps ctx with a deadline when d is positive; d = 0 returns
// ctx unchanged. The returned cancel func is always safe to call.
func WithTimeout(ctx context.Context, d time.Duration) (context.Context, context.CancelFunc) {
	if d <= 0 {
		return context.WithCancel(ctx)
	}
	return context.WithTimeout(ctx, d)
}

// ApplyWorkers caps the process's OS-thread parallelism for tools whose
// work is a single serial computation (simulators, analyzers); tools with
// their own worker pools pass the value through instead. Zero or negative
// leaves the runtime default in place.
func ApplyWorkers(n int) {
	if n > 0 {
		runtime.GOMAXPROCS(n)
	}
}
