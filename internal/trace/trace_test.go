package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"strings"
	"sync"
	"testing"
)

func TestDisabledFastPathAllocatesNothing(t *testing.T) {
	ctx := context.Background()
	errSentinel := errors.New("x")
	allocs := testing.AllocsPerRun(100, func() {
		c, sp := Start(ctx, "op")
		sp.SetAttr("k", 1)
		sp.SetError(errSentinel)
		sp.End()
		if c != ctx {
			t.Fatal("disabled Start must return the same context")
		}
		if sp != nil {
			t.Fatal("disabled Start must return a nil span")
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing path allocates: %v allocs/op", allocs)
	}
}

func TestNilSpanMethodsAreSafe(t *testing.T) {
	var sp *Span
	sp.SetAttr("k", "v")
	sp.SetError(errors.New("boom"))
	sp.End()
	if sp.Name() != "" || !sp.TraceID().IsZero() || sp.Duration() != 0 {
		t.Fatal("nil span accessors must return zero values")
	}
}

func TestParentChildLinkage(t *testing.T) {
	ring := NewRing(16)
	ctx := WithTracer(context.Background(), New(ring))

	ctx, root := Start(ctx, "root")
	cctx, child := Start(ctx, "child")
	_, grand := Start(cctx, "grandchild")
	grand.End()
	child.End()
	root.SetAttr("code", 200)
	root.End()

	recs := ring.Snapshot()
	if len(recs) != 3 {
		t.Fatalf("got %d records, want 3", len(recs))
	}
	byName := map[string]Record{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	rootRec, childRec, grandRec := byName["root"], byName["child"], byName["grandchild"]
	if rootRec.ParentID != "" {
		t.Fatalf("root has parent %q", rootRec.ParentID)
	}
	if childRec.ParentID != rootRec.SpanID {
		t.Fatalf("child parent %q, want %q", childRec.ParentID, rootRec.SpanID)
	}
	if grandRec.ParentID != childRec.SpanID {
		t.Fatalf("grandchild parent %q, want %q", grandRec.ParentID, childRec.SpanID)
	}
	for _, r := range recs {
		if r.TraceID != rootRec.TraceID {
			t.Fatalf("span %q has trace %q, want %q", r.Name, r.TraceID, rootRec.TraceID)
		}
	}
	if rootRec.Attrs["code"] != float64(200) && rootRec.Attrs["code"] != 200 {
		// Attrs survive in-memory without JSON round-tripping, so the raw
		// int is what we stored.
		t.Fatalf("root attrs = %v", rootRec.Attrs)
	}
}

func TestStartRootAdoptsSuppliedTraceID(t *testing.T) {
	ring := NewRing(4)
	ctx := WithTracer(context.Background(), New(ring))
	want, err := ParseTraceID("000102030405060708090a0b0c0d0e0f")
	if err != nil {
		t.Fatal(err)
	}
	_, sp := StartRoot(ctx, "req", want)
	if sp.TraceID() != want {
		t.Fatalf("trace id %s, want %s", sp.TraceID(), want)
	}
	sp.End()
	if got := ring.Snapshot()[0].TraceID; got != want.String() {
		t.Fatalf("exported trace id %s, want %s", got, want)
	}
}

func TestStartRootIgnoresCurrentSpan(t *testing.T) {
	ring := NewRing(4)
	ctx := WithTracer(context.Background(), New(ring))
	ctx, outer := Start(ctx, "outer")
	_, root := StartRoot(ctx, "fresh", TraceID{})
	if root.TraceID() == outer.TraceID() {
		t.Fatal("StartRoot must begin a new trace")
	}
	root.End()
	outer.End()
	if ring.Snapshot()[0].ParentID != "" {
		t.Fatal("StartRoot span must have no parent")
	}
}

func TestParseTraceID(t *testing.T) {
	if id, err := ParseTraceID(""); err != nil || !id.IsZero() {
		t.Fatalf("empty input: id=%v err=%v", id, err)
	}
	for _, bad := range []string{"zz", "0011", strings.Repeat("0", 32), strings.Repeat("g", 32)} {
		if _, err := ParseTraceID(bad); err == nil {
			t.Fatalf("ParseTraceID(%q) accepted malformed input", bad)
		}
	}
	id := newTraceID()
	back, err := ParseTraceID(id.String())
	if err != nil || back != id {
		t.Fatalf("round trip failed: %v %v", back, err)
	}
}

func TestContextWithSpanGraftsAcrossPools(t *testing.T) {
	// The service's flight group runs compute functions under a job
	// context that does NOT descend from the request context. The request
	// side captures its span and grafts it onto the job context.
	ring := NewRing(8)
	reqCtx := WithTracer(context.Background(), New(ring))
	reqCtx, reqSpan := Start(reqCtx, "request")

	jobCtx := context.Background() // detached, as in flightGroup.run
	done := make(chan struct{})
	go func() {
		defer close(done)
		ctx := ContextWithSpan(jobCtx, SpanFromContext(reqCtx))
		_, sp := Start(ctx, "job")
		sp.End()
	}()
	<-done
	reqSpan.End()

	recs := ring.Snapshot()
	if len(recs) != 2 {
		t.Fatalf("got %d records, want 2", len(recs))
	}
	if recs[0].Name != "job" || recs[0].ParentID == "" {
		t.Fatalf("job span not parented: %+v", recs[0])
	}
	if recs[0].TraceID != recs[1].TraceID {
		t.Fatal("job span lost the request's trace ID")
	}
}

func TestSpanEndIsIdempotentAndConcurrent(t *testing.T) {
	ring := NewRing(64)
	ctx := WithTracer(context.Background(), New(ring))
	_, sp := Start(ctx, "op")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sp.SetAttr("k", i)
			sp.End()
		}(i)
	}
	wg.Wait()
	if got := len(ring.Snapshot()); got != 1 {
		t.Fatalf("span exported %d times, want 1", got)
	}
}

func TestAttrOverwrite(t *testing.T) {
	ring := NewRing(4)
	ctx := WithTracer(context.Background(), New(ring))
	_, sp := Start(ctx, "op")
	sp.SetAttr("outcome", "miss")
	sp.SetAttr("outcome", "hit")
	sp.End()
	if got := ring.Snapshot()[0].Attrs["outcome"]; got != "hit" {
		t.Fatalf("attr = %v, want hit", got)
	}
}

func TestRingWrapAndFilter(t *testing.T) {
	ring := NewRing(4)
	tr := New(ring)
	ctx := WithTracer(context.Background(), tr)
	var last string
	for i := 0; i < 6; i++ {
		_, sp := Start(ctx, "op")
		last = sp.TraceID().String()
		sp.End()
	}
	recs := ring.Snapshot()
	if len(recs) != 4 {
		t.Fatalf("ring holds %d, want 4", len(recs))
	}
	if ring.Total() != 6 {
		t.Fatalf("total %d, want 6", ring.Total())
	}
	if got := recs[len(recs)-1].TraceID; got != last {
		t.Fatalf("newest record %s, want %s", got, last)
	}
	if got := ring.Trace(last); len(got) != 1 || got[0].TraceID != last {
		t.Fatalf("Trace filter returned %v", got)
	}
	if got := ring.Trace("does-not-exist"); len(got) != 0 {
		t.Fatalf("filter for unknown trace returned %d records", len(got))
	}
}

func TestJSONLWritesOneObjectPerLine(t *testing.T) {
	var buf bytes.Buffer
	ctx := WithTracer(context.Background(), New(NewJSONL(&buf)))
	ctx, root := Start(ctx, "outer")
	_, inner := Start(ctx, "inner")
	inner.SetError(errors.New("deadline"))
	inner.End()
	root.End()

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2", len(lines))
	}
	var rec Record
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("line 0 is not JSON: %v", err)
	}
	if rec.Name != "inner" || rec.Error != "deadline" {
		t.Fatalf("unexpected first record: %+v", rec)
	}
}

func TestTeeFansOutAndSkipsNil(t *testing.T) {
	ring := NewRing(2)
	var n int
	sink := Tee(nil, ring, SinkFunc(func(Record) { n++ }))
	ctx := WithTracer(context.Background(), New(sink))
	_, sp := Start(ctx, "op")
	sp.End()
	if n != 1 || len(ring.Snapshot()) != 1 {
		t.Fatalf("tee delivered n=%d ring=%d", n, len(ring.Snapshot()))
	}
}

func TestLoggerStitchesTraceIDs(t *testing.T) {
	var buf bytes.Buffer
	logger, err := NewLogger(&buf, "debug", "json")
	if err != nil {
		t.Fatal(err)
	}
	ctx := WithTracer(context.Background(), New(NewRing(2)))
	ctx, sp := Start(ctx, "op")
	logger.InfoContext(ctx, "hello", "k", "v")
	logger.InfoContext(context.Background(), "plain")
	sp.End()

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d log lines, want 2", len(lines))
	}
	var first map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil {
		t.Fatal(err)
	}
	if first["traceId"] != sp.TraceID().String() {
		t.Fatalf("traceId = %v, want %s", first["traceId"], sp.TraceID())
	}
	if first["spanId"] == nil || first["k"] != "v" {
		t.Fatalf("record missing fields: %v", first)
	}
	if strings.Contains(lines[1], "traceId") {
		t.Fatal("span-less record must not carry a traceId")
	}
}

func TestLoggerRejectsBadConfig(t *testing.T) {
	if _, err := NewLogger(&bytes.Buffer{}, "loud", "text"); err == nil {
		t.Fatal("bad level accepted")
	}
	if _, err := NewLogger(&bytes.Buffer{}, "info", "xml"); err == nil {
		t.Fatal("bad format accepted")
	}
}

func TestLoggerHandlerWrappersPreserveIDs(t *testing.T) {
	var buf bytes.Buffer
	logger, err := NewLogger(&buf, "info", "text")
	if err != nil {
		t.Fatal(err)
	}
	logger = logger.With("component", "test").WithGroup("g")
	ctx := WithTracer(context.Background(), New(NewRing(2)))
	ctx, sp := Start(ctx, "op")
	defer sp.End()
	logger.InfoContext(ctx, "msg", "k", 1)
	if out := buf.String(); !strings.Contains(out, "traceId=") || !strings.Contains(out, "component=test") {
		t.Fatalf("WithAttrs/WithGroup wrapper lost fields: %q", out)
	}
}
