package trace

import (
	"encoding/json"
	"io"
	"sync"
	"time"
)

// Record is the exported, immutable form of a finished span — one JSON
// object per line in -trace-out files, one array element in the
// /debug/traces response.
type Record struct {
	TraceID    string         `json:"traceId"`
	SpanID     string         `json:"spanId"`
	ParentID   string         `json:"parentId,omitempty"`
	Name       string         `json:"name"`
	Start      time.Time      `json:"start"`
	DurationUS float64        `json:"durationUs"`
	Error      string         `json:"error,omitempty"`
	Attrs      map[string]any `json:"attrs,omitempty"`
	// Member is the cluster member that produced the span, stamped by the
	// /debug/traces federation layer (empty on locally exported spans).
	Member string `json:"member,omitempty"`
}

// Sink receives finished spans. Implementations must be safe for
// concurrent Export calls: spans end on whatever goroutine ran the work.
type Sink interface {
	Export(Record)
}

// SinkFunc adapts a function to the Sink interface.
type SinkFunc func(Record)

// Export calls f(rec).
func (f SinkFunc) Export(rec Record) { f(rec) }

// Tee fans each record out to every non-nil sink, in order.
func Tee(sinks ...Sink) Sink {
	kept := make([]Sink, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			kept = append(kept, s)
		}
	}
	return SinkFunc(func(rec Record) {
		for _, s := range kept {
			s.Export(rec)
		}
	})
}

// JSONL writes one JSON object per finished span to an io.Writer, suitable
// for the CLIs' -trace-out files. Writes are serialized by a mutex;
// marshal errors are impossible for Record's field types and encode errors
// on the writer are dropped (tracing must never fail the traced work).
type JSONL struct {
	mu sync.Mutex
	w  io.Writer
}

// NewJSONL returns a JSONL sink writing to w.
func NewJSONL(w io.Writer) *JSONL { return &JSONL{w: w} }

// Export writes rec as one line of JSON.
func (j *JSONL) Export(rec Record) {
	buf, err := json.Marshal(rec)
	if err != nil {
		return
	}
	buf = append(buf, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	j.w.Write(buf)
}

// Ring keeps the most recent finished spans in a fixed-capacity buffer —
// the store behind ringschedd's /debug/traces endpoint. Old spans are
// overwritten; Total counts everything ever exported.
type Ring struct {
	mu    sync.Mutex
	buf   []Record
	next  int
	full  bool
	total uint64
}

// NewRing returns a ring holding up to capacity spans (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Record, capacity)}
}

// Export stores rec, evicting the oldest span once the ring is full.
func (r *Ring) Export(rec Record) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.buf[r.next] = rec
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
	r.total++
}

// Total returns the number of spans ever exported to the ring.
func (r *Ring) Total() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.total
}

// Snapshot returns the retained spans, oldest first.
func (r *Ring) Snapshot() []Record {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.full {
		return append([]Record(nil), r.buf[:r.next]...)
	}
	out := make([]Record, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Trace returns the retained spans of one trace, oldest first.
func (r *Ring) Trace(traceID string) []Record {
	all := r.Snapshot()
	out := all[:0]
	for _, rec := range all {
		if rec.TraceID == traceID {
			out = append(out, rec)
		}
	}
	return out[:len(out):len(out)]
}
