package trace

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"strings"
)

// NewLogger builds a slog.Logger writing to w in the given format ("text"
// or "json") at the given level ("debug", "info", "warn", "error"), with
// trace/span IDs from the record's context stitched into every entry.
// It is the one constructor behind every CLI's -log-level/-log-format
// flags, so all seven commands log identically.
func NewLogger(w io.Writer, level, format string) (*slog.Logger, error) {
	var lvl slog.Level
	switch strings.ToLower(level) {
	case "", "info":
		lvl = slog.LevelInfo
	case "debug":
		lvl = slog.LevelDebug
	case "warn", "warning":
		lvl = slog.LevelWarn
	case "error":
		lvl = slog.LevelError
	default:
		return nil, fmt.Errorf("trace: unknown log level %q (want debug, info, warn or error)", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	var h slog.Handler
	switch strings.ToLower(format) {
	case "", "text":
		h = slog.NewTextHandler(w, opts)
	case "json":
		h = slog.NewJSONHandler(w, opts)
	default:
		return nil, fmt.Errorf("trace: unknown log format %q (want text or json)", format)
	}
	return slog.New(WithLogIDs(h)), nil
}

// WithLogIDs wraps a slog.Handler so that records logged with a context
// carrying a current span gain traceId/spanId attributes. Records without
// a span pass through untouched.
func WithLogIDs(h slog.Handler) slog.Handler { return idHandler{h} }

type idHandler struct {
	inner slog.Handler
}

func (h idHandler) Enabled(ctx context.Context, lvl slog.Level) bool {
	return h.inner.Enabled(ctx, lvl)
}

func (h idHandler) Handle(ctx context.Context, rec slog.Record) error {
	if sp := SpanFromContext(ctx); sp != nil {
		rec = rec.Clone()
		rec.AddAttrs(
			slog.String("traceId", sp.traceID.String()),
			slog.String("spanId", sp.id.String()),
		)
	}
	return h.inner.Handle(ctx, rec)
}

func (h idHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	return idHandler{h.inner.WithAttrs(attrs)}
}

func (h idHandler) WithGroup(name string) slog.Handler {
	return idHandler{h.inner.WithGroup(name)}
}
