package trace

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"
)

// This file is the cross-process half of the tracer: span records that
// X-Ringsched-Trace scattered over several processes' span rings are
// fetched, merged, deduplicated, and assembled into one tree, so a single
// GET /debug/traces?trace=<id> against any member (or the front door)
// reconstructs an entire lb → replica → peer-fill request.

// Query filters span records on the /debug/traces surface.
type Query struct {
	// Trace narrows to one trace ID ("" = all retained spans).
	Trace string
	// Name narrows to spans with this exact operation name.
	Name string
	// MinDurUS drops spans shorter than this many microseconds.
	MinDurUS float64
	// Limit keeps only the most recent N matching spans (0 = all).
	Limit int
}

// ParseQuery reads the wire query parameters (trace, name, limit,
// minDurMs) into a Query.
func ParseQuery(get func(string) string) (Query, error) {
	q := Query{Trace: get("trace"), Name: get("name")}
	if raw := get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 0 {
			return Query{}, fmt.Errorf("trace: bad limit %q: want a non-negative integer", raw)
		}
		q.Limit = n
	}
	if raw := get("minDurMs"); raw != "" {
		ms, err := strconv.ParseFloat(raw, 64)
		if err != nil || ms < 0 {
			return Query{}, fmt.Errorf("trace: bad minDurMs %q: want a non-negative number", raw)
		}
		q.MinDurUS = ms * 1e3
	}
	return q, nil
}

// Match reports whether one record passes the query's per-span filters
// (Limit is applied by Filter, not here).
func (q Query) Match(rec Record) bool {
	if q.Trace != "" && rec.TraceID != q.Trace {
		return false
	}
	if q.Name != "" && rec.Name != q.Name {
		return false
	}
	if q.MinDurUS > 0 && rec.DurationUS < q.MinDurUS {
		return false
	}
	return true
}

// Filter applies the query to an oldest-first record slice, keeping the
// most recent Limit matches.
func Filter(recs []Record, q Query) []Record {
	out := make([]Record, 0, len(recs))
	for _, rec := range recs {
		if q.Match(rec) {
			out = append(out, rec)
		}
	}
	if q.Limit > 0 && len(out) > q.Limit {
		out = out[len(out)-q.Limit:]
	}
	return out
}

// Merge concatenates record groups, deduplicating by (trace, span) ID —
// the lb's fan-out and a replica's peer scatter can both surface the same
// span — and returns the union ordered by start time. Earlier groups win
// dedup ties, so a caller puts its own (already member-stamped) records
// first to keep local attribution.
func Merge(groups ...[]Record) []Record {
	type key struct{ trace, span string }
	seen := map[key]bool{}
	var out []Record
	for _, g := range groups {
		for _, rec := range g {
			k := key{rec.TraceID, rec.SpanID}
			if seen[k] {
				continue
			}
			seen[k] = true
			out = append(out, rec)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if !out[i].Start.Equal(out[j].Start) {
			return out[i].Start.Before(out[j].Start)
		}
		return out[i].SpanID < out[j].SpanID
	})
	return out
}

// Node is one span with its children — the assembled form of a trace.
type Node struct {
	Record
	Children []*Node `json:"children,omitempty"`
}

// Assemble builds span trees from finished records: each span hangs under
// its parent; spans whose parent is absent (the roots, or spans whose
// parent fell out of a bounded ring) become top-level nodes. Children and
// roots are ordered by start time.
func Assemble(recs []Record) []*Node {
	nodes := make(map[string]*Node, len(recs))
	order := make([]*Node, 0, len(recs))
	for _, rec := range recs {
		if _, ok := nodes[rec.SpanID]; ok {
			continue
		}
		n := &Node{Record: rec}
		nodes[rec.SpanID] = n
		order = append(order, n)
	}
	var roots []*Node
	for _, n := range order {
		parent, ok := nodes[n.ParentID]
		if n.ParentID == "" || !ok || parent == n {
			roots = append(roots, n)
			continue
		}
		parent.Children = append(parent.Children, n)
	}
	byStart := func(ns []*Node) {
		sort.SliceStable(ns, func(i, j int) bool {
			if !ns[i].Start.Equal(ns[j].Start) {
				return ns[i].Start.Before(ns[j].Start)
			}
			return ns[i].SpanID < ns[j].SpanID
		})
	}
	byStart(roots)
	for _, n := range order {
		byStart(n.Children)
	}
	return roots
}

// MemberSpans is one member's contribution to a federated trace query.
type MemberSpans struct {
	// Member is the member's advertise address (or display name).
	Member string `json:"member"`
	// Spans counts the records this member contributed.
	Spans int `json:"spans"`
	// Error reports a failed fetch; the merged result simply lacks this
	// member's spans.
	Error string `json:"error,omitempty"`
}

// DebugServer serves a span ring at /debug/traces with filtering and —
// when Peers/Fetch are wired — cluster-wide trace assembly: a ?trace=
// query fans out to every peer, merges the members' records into one
// deduplicated span list, annotates each record with its origin member,
// and assembles the span tree. Both ringschedd and ringsched-lb mount
// this same handler.
type DebugServer struct {
	// Ring holds this process's own finished spans.
	Ring *Ring
	// Self is the member label stamped on local spans ("local" when
	// unset).
	Self string
	// Peers lists the other members to scatter a ?trace= query to; nil
	// disables federation.
	Peers func() []string
	// Fetch retrieves one member's records for a trace. The callee must
	// suppress its own re-scatter when appropriate (the local=1 query
	// parameter); required when Peers is set.
	Fetch func(ctx context.Context, member, traceID string) ([]Record, error)
	// ScatterTimeout bounds the whole fan-out (default 2s).
	ScatterTimeout time.Duration
}

// tracesResponse is the /debug/traces wire shape. Total and the flat
// Spans list predate federation and keep their meaning; Tree and Members
// appear only on ?trace= queries.
type tracesResponse struct {
	Total    uint64        `json:"total"`
	Retained int           `json:"retained"`
	Spans    []Record      `json:"spans"`
	Tree     []*Node       `json:"tree,omitempty"`
	Members  []MemberSpans `json:"members,omitempty"`
}

// ServeHTTP implements the /debug/traces endpoint.
func (d *DebugServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	params := r.URL.Query()
	q, err := ParseQuery(params.Get)
	if err != nil {
		w.WriteHeader(http.StatusBadRequest)
		body, _ := json.Marshal(map[string]string{"error": err.Error(), "code": "bad_request"})
		w.Write(append(body, '\n'))
		return
	}

	self := d.Self
	if self == "" {
		self = "local"
	}
	var local []Record
	if q.Trace != "" {
		local = d.Ring.Trace(q.Trace)
	} else {
		local = d.Ring.Snapshot()
	}
	for i := range local {
		if local[i].Member == "" {
			local[i].Member = self
		}
	}

	resp := tracesResponse{Total: d.Ring.Total()}
	merged := local
	if q.Trace != "" && d.Peers != nil && params.Get("local") == "" {
		groups, members := d.scatter(r.Context(), q.Trace)
		resp.Members = append([]MemberSpans{{Member: self, Spans: len(local)}}, members...)
		merged = Merge(append([][]Record{local}, groups...)...)
	}
	merged = Filter(merged, q)
	if merged == nil {
		merged = []Record{}
	}
	resp.Retained = len(merged)
	resp.Spans = merged
	if q.Trace != "" {
		resp.Tree = Assemble(merged)
	}

	body, err := json.Marshal(resp)
	if err != nil {
		w.WriteHeader(http.StatusInternalServerError)
		out, _ := json.Marshal(map[string]string{"error": err.Error(), "code": "internal"})
		w.Write(append(out, '\n'))
		return
	}
	w.Write(append(body, '\n'))
}

// scatter fans the trace query out to every peer concurrently and stamps
// fetched records with their origin member (unless the peer already
// attributed them — a peer's own federated answer carries members).
func (d *DebugServer) scatter(ctx context.Context, traceID string) ([][]Record, []MemberSpans) {
	timeout := d.ScatterTimeout
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	ctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	peers := d.Peers()
	sort.Strings(peers)
	groups := make([][]Record, len(peers))
	members := make([]MemberSpans, len(peers))
	var wg sync.WaitGroup
	for i, peer := range peers {
		wg.Add(1)
		go func(i int, peer string) {
			defer wg.Done()
			members[i].Member = peer
			recs, err := d.Fetch(ctx, peer, traceID)
			if err != nil {
				members[i].Error = err.Error()
				return
			}
			// "local" is the placeholder a standalone member stamps on
			// its own spans; from the fetching side the peer's address
			// is the meaningful attribution.
			for j := range recs {
				if recs[j].Member == "" || recs[j].Member == "local" {
					recs[j].Member = peer
				}
			}
			groups[i] = recs
			members[i].Spans = len(recs)
		}(i, peer)
	}
	wg.Wait()
	return groups, members
}
