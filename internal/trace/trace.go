// Package trace is a zero-dependency span tracer for following one unit of
// work — an HTTP request, a CLI invocation, a simulator run — through the
// layered machinery of this repo: handler → canonicalize → cache →
// flight-group → kernel/simulator → encode.
//
// Design constraints, in order:
//
//  1. Free when disabled. Start returns a nil *Span (and the unchanged
//     context) when no Tracer is installed, and every Span method is
//     nil-safe, so hot paths carry tracing calls without branches or
//     allocations. The kernel benchmarks pin this at 0 allocs/op.
//  2. Safe under worker pools. Spans are identified by value IDs, carry
//     their own mutex, and parentage flows through context.Context, so a
//     span started on one goroutine may be annotated and ended on another
//     (the service's coalescing flight group does exactly this).
//  3. No dependencies. IDs come from math/rand/v2, export is JSON lines or
//     an in-memory ring; there is no OpenTelemetry and never will be here.
package trace

import (
	"context"
	"encoding/hex"
	"errors"
	"math/rand/v2"
	"sync"
	"time"
)

// TraceID identifies one end-to-end unit of work (one request, one run).
// The zero value is invalid and means "assign a fresh random ID".
type TraceID [16]byte

// SpanID identifies one span within a trace. The zero value is invalid.
type SpanID [8]byte

// IsZero reports whether the ID is unset.
func (id TraceID) IsZero() bool { return id == TraceID{} }

// String renders the ID as 32 lowercase hex digits.
func (id TraceID) String() string { return hex.EncodeToString(id[:]) }

// IsZero reports whether the ID is unset.
func (id SpanID) IsZero() bool { return id == SpanID{} }

// String renders the ID as 16 lowercase hex digits.
func (id SpanID) String() string { return hex.EncodeToString(id[:]) }

// ErrBadTraceID is returned by ParseTraceID for malformed input.
var ErrBadTraceID = errors.New("trace: malformed trace id")

// ParseTraceID decodes a 32-hex-digit trace ID, as carried by the
// X-Ringsched-Trace header. Empty input yields the zero ID and no error,
// so callers can pass an absent header straight through.
func ParseTraceID(s string) (TraceID, error) {
	var id TraceID
	if s == "" {
		return id, nil
	}
	if len(s) != 2*len(id) {
		return TraceID{}, ErrBadTraceID
	}
	if _, err := hex.Decode(id[:], []byte(s)); err != nil {
		return TraceID{}, ErrBadTraceID
	}
	if id.IsZero() {
		return TraceID{}, ErrBadTraceID
	}
	return id, nil
}

func newTraceID() TraceID {
	var id TraceID
	for id.IsZero() {
		a, b := rand.Uint64(), rand.Uint64()
		for i := range 8 {
			id[i] = byte(a >> (8 * i))
			id[8+i] = byte(b >> (8 * i))
		}
	}
	return id
}

func newSpanID() SpanID {
	var id SpanID
	for id.IsZero() {
		v := rand.Uint64()
		for i := range id {
			id[i] = byte(v >> (8 * i))
		}
	}
	return id
}

// Attr is one key/value annotation on a span. Values should be simple
// scalars (string, bool, int, float64); they are exported via encoding/json.
type Attr struct {
	Key   string
	Value any
}

// Span is one timed operation. A nil *Span is a valid, inert span: all
// methods are no-ops, so call sites never need to test for enabled tracing.
type Span struct {
	tracer  *Tracer
	traceID TraceID
	id      SpanID
	parent  SpanID
	name    string
	start   time.Time

	mu    sync.Mutex
	attrs []Attr
	err   string
	ended bool
}

// TraceID returns the span's trace ID (zero for a nil span).
func (s *Span) TraceID() TraceID {
	if s == nil {
		return TraceID{}
	}
	return s.traceID
}

// Name returns the span's operation name ("" for a nil span).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// SetAttr attaches or overwrites one annotation. Safe on a nil span and
// safe to call from a goroutine other than the one that started the span.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return
	}
	for i := range s.attrs {
		if s.attrs[i].Key == key {
			s.attrs[i].Value = value
			return
		}
	}
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
}

// SetError records err's message on the span. nil err and nil span are
// no-ops.
func (s *Span) SetError(err error) {
	if s == nil || err == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ended {
		s.err = err.Error()
	}
}

// End closes the span and exports it to the tracer's sink. Only the first
// End has any effect; later calls (and calls on a nil span) are no-ops.
func (s *Span) End() {
	if s == nil {
		return
	}
	end := time.Now()
	s.mu.Lock()
	if s.ended {
		s.mu.Unlock()
		return
	}
	s.ended = true
	rec := Record{
		TraceID:    s.traceID.String(),
		SpanID:     s.id.String(),
		Name:       s.name,
		Start:      s.start,
		DurationUS: float64(end.Sub(s.start)) / float64(time.Microsecond),
		Error:      s.err,
	}
	if !s.parent.IsZero() {
		rec.ParentID = s.parent.String()
	}
	if len(s.attrs) > 0 {
		rec.Attrs = make(map[string]any, len(s.attrs))
		for _, a := range s.attrs {
			rec.Attrs[a.Key] = a.Value
		}
	}
	s.mu.Unlock()
	s.tracer.sink.Export(rec)
}

// Duration returns how long the span has been open (or ran, once ended).
// It exists for log records that want the elapsed time without ending the
// span; a nil span reports zero.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	return time.Since(s.start)
}

// Tracer creates spans and routes finished spans to a Sink. A nil *Tracer
// is valid and creates only nil spans.
type Tracer struct {
	sink Sink
}

// New returns a Tracer exporting to sink. A nil sink discards everything.
func New(sink Sink) *Tracer {
	if sink == nil {
		sink = SinkFunc(func(Record) {})
	}
	return &Tracer{sink: sink}
}

func (t *Tracer) newSpan(name string, traceID TraceID, parent SpanID) *Span {
	if t == nil {
		return nil
	}
	if traceID.IsZero() {
		traceID = newTraceID()
	}
	return &Span{
		tracer:  t,
		traceID: traceID,
		id:      newSpanID(),
		parent:  parent,
		name:    name,
		start:   time.Now(),
	}
}

type ctxKey int

const (
	tracerKey ctxKey = iota
	spanKey
)

// WithTracer installs tr as the context's tracer. Spans started from the
// returned context (and its descendants) export through tr.
func WithTracer(ctx context.Context, tr *Tracer) context.Context {
	if tr == nil {
		return ctx
	}
	return context.WithValue(ctx, tracerKey, tr)
}

// FromContext returns the installed tracer, or nil.
func FromContext(ctx context.Context) *Tracer {
	tr, _ := ctx.Value(tracerKey).(*Tracer)
	return tr
}

// SpanFromContext returns the current span, or nil.
func SpanFromContext(ctx context.Context) *Span {
	sp, _ := ctx.Value(spanKey).(*Span)
	return sp
}

// ContextWithSpan re-roots ctx under sp, so children started from the
// returned context parent to sp. It is the bridge for worker pools whose
// job context does not descend from the request context: capture the span
// on the request side, then graft it onto the job context with this.
func ContextWithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	ctx = WithTracer(ctx, sp.tracer)
	return context.WithValue(ctx, spanKey, sp)
}

// Start begins a span named name. If ctx carries a current span the new
// span is its child; otherwise, if ctx carries a tracer, it is a new root
// with a fresh trace ID; otherwise tracing is disabled and Start returns
// (ctx, nil) without allocating. Callers must End the returned span (nil
// End is a no-op) and should pass the returned context downward.
func Start(ctx context.Context, name string) (context.Context, *Span) {
	if parent := SpanFromContext(ctx); parent != nil {
		sp := parent.tracer.newSpan(name, parent.traceID, parent.id)
		return context.WithValue(ctx, spanKey, sp), sp
	}
	tr := FromContext(ctx)
	if tr == nil {
		return ctx, nil
	}
	sp := tr.newSpan(name, TraceID{}, SpanID{})
	return context.WithValue(ctx, spanKey, sp), sp
}

// StartRoot begins a new root span, ignoring any current span in ctx, under
// the context's tracer. A zero traceID requests a fresh random one; a
// caller-supplied ID (e.g. parsed from X-Ringsched-Trace) is adopted, which
// lets clients stitch our spans into their own traces. Returns (ctx, nil)
// when no tracer is installed.
func StartRoot(ctx context.Context, name string, traceID TraceID) (context.Context, *Span) {
	tr := FromContext(ctx)
	if tr == nil {
		return ctx, nil
	}
	sp := tr.newSpan(name, traceID, SpanID{})
	return context.WithValue(ctx, spanKey, sp), sp
}
