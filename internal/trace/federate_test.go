package trace

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func rec(traceID, spanID, parentID, name string, start int64, durUS float64) Record {
	return Record{
		TraceID:    traceID,
		SpanID:     spanID,
		ParentID:   parentID,
		Name:       name,
		Start:      time.Unix(0, start*int64(time.Millisecond)).UTC(),
		DurationUS: durUS,
	}
}

func TestQueryFilter(t *testing.T) {
	recs := []Record{
		rec("t1", "a", "", "http.analyze", 1, 5000),
		rec("t1", "b", "a", "kernel", 2, 40),
		rec("t2", "c", "", "http.analyze", 3, 900),
		rec("t2", "d", "c", "encode", 4, 10),
	}
	cases := []struct {
		name string
		q    Query
		want []string
	}{
		{"all", Query{}, []string{"a", "b", "c", "d"}},
		{"trace", Query{Trace: "t1"}, []string{"a", "b"}},
		{"name", Query{Name: "http.analyze"}, []string{"a", "c"}},
		{"minDur", Query{MinDurUS: 1000}, []string{"a"}},
		{"limit keeps newest", Query{Limit: 2}, []string{"c", "d"}},
		{"combined", Query{Name: "http.analyze", Limit: 1}, []string{"c"}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Filter(recs, tc.q)
			var ids []string
			for _, r := range got {
				ids = append(ids, r.SpanID)
			}
			if fmt.Sprint(ids) != fmt.Sprint(tc.want) {
				t.Fatalf("Filter(%+v) = %v, want %v", tc.q, ids, tc.want)
			}
		})
	}
}

func TestParseQueryErrors(t *testing.T) {
	for _, params := range []map[string]string{
		{"limit": "x"},
		{"limit": "-1"},
		{"minDurMs": "nope"},
		{"minDurMs": "-2"},
	} {
		_, err := ParseQuery(func(k string) string { return params[k] })
		if err == nil {
			t.Errorf("ParseQuery(%v): want error", params)
		}
	}
	q, err := ParseQuery(func(k string) string {
		return map[string]string{"trace": "t", "name": "n", "limit": "7", "minDurMs": "1.5"}[k]
	})
	if err != nil {
		t.Fatal(err)
	}
	if q.Trace != "t" || q.Name != "n" || q.Limit != 7 || q.MinDurUS != 1500 {
		t.Fatalf("ParseQuery = %+v", q)
	}
}

func TestMergeDedupsAndOrders(t *testing.T) {
	local := []Record{rec("t", "a", "", "root", 5, 100)}
	local[0].Member = "self"
	peer1 := []Record{
		func() Record { r := rec("t", "a", "", "root", 5, 100); r.Member = "peer1"; return r }(),
		func() Record { r := rec("t", "b", "a", "child", 6, 50); r.Member = "peer1"; return r }(),
	}
	peer2 := []Record{
		func() Record { r := rec("t", "c", "a", "other", 4, 20); r.Member = "peer2"; return r }(),
	}
	got := Merge(local, peer1, peer2)
	if len(got) != 3 {
		t.Fatalf("Merge: %d records, want 3", len(got))
	}
	// Ordered by start: c(4), a(5), b(6); duplicate "a" keeps the local copy.
	if got[0].SpanID != "c" || got[1].SpanID != "a" || got[2].SpanID != "b" {
		t.Fatalf("Merge order = %s %s %s", got[0].SpanID, got[1].SpanID, got[2].SpanID)
	}
	if got[1].Member != "self" {
		t.Fatalf("dedup kept %q attribution, want earlier group (self)", got[1].Member)
	}
}

func TestAssembleTree(t *testing.T) {
	recs := []Record{
		rec("t", "child2", "root", "b", 3, 10),
		rec("t", "root", "", "r", 1, 100),
		rec("t", "child1", "root", "a", 2, 10),
		rec("t", "grand", "child1", "g", 2, 5),
		rec("t", "orphan", "gone", "o", 4, 1),
	}
	roots := Assemble(recs)
	if len(roots) != 2 {
		t.Fatalf("Assemble: %d roots, want 2 (root + orphan)", len(roots))
	}
	if roots[0].SpanID != "root" || roots[1].SpanID != "orphan" {
		t.Fatalf("roots = %s, %s", roots[0].SpanID, roots[1].SpanID)
	}
	r := roots[0]
	if len(r.Children) != 2 || r.Children[0].SpanID != "child1" || r.Children[1].SpanID != "child2" {
		t.Fatalf("children of root = %+v", r.Children)
	}
	if len(r.Children[0].Children) != 1 || r.Children[0].Children[0].SpanID != "grand" {
		t.Fatalf("grandchildren = %+v", r.Children[0].Children)
	}
}

func TestAssembleSelfParentAndDup(t *testing.T) {
	recs := []Record{
		rec("t", "x", "x", "self-loop", 1, 1),
		rec("t", "x", "x", "dup", 2, 1),
	}
	roots := Assemble(recs)
	if len(roots) != 1 || roots[0].Name != "self-loop" {
		t.Fatalf("Assemble self-parent = %+v", roots)
	}
}

func decodeTraces(t *testing.T, body []byte) map[string]any {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("decode %s: %v", body, err)
	}
	return m
}

func TestDebugServerLocal(t *testing.T) {
	ring := NewRing(16)
	ring.Export(rec("t1", "a", "", "http.analyze", 1, 100))
	ring.Export(rec("t1", "b", "a", "kernel", 2, 10))
	ring.Export(rec("t2", "c", "", "http.analyze", 3, 5))
	ds := &DebugServer{Ring: ring, Self: "m1"}

	srv := httptest.NewServer(ds)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/traces?trace=t1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	var got struct {
		Total    uint64   `json:"total"`
		Retained int      `json:"retained"`
		Spans    []Record `json:"spans"`
		Tree     []*Node  `json:"tree"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got.Total != 3 || got.Retained != 2 || len(got.Spans) != 2 {
		t.Fatalf("got total=%d retained=%d spans=%d", got.Total, got.Retained, len(got.Spans))
	}
	for _, sp := range got.Spans {
		if sp.Member != "m1" {
			t.Fatalf("span %s member = %q, want m1", sp.SpanID, sp.Member)
		}
	}
	if len(got.Tree) != 1 || got.Tree[0].SpanID != "a" || len(got.Tree[0].Children) != 1 {
		t.Fatalf("tree = %+v", got.Tree)
	}
}

func TestDebugServerFilters(t *testing.T) {
	ring := NewRing(16)
	for i := 0; i < 5; i++ {
		ring.Export(rec("t", fmt.Sprintf("s%d", i), "", "op", int64(i), float64(i)*1000))
	}
	ds := &DebugServer{Ring: ring}
	srv := httptest.NewServer(ds)
	defer srv.Close()

	for _, tc := range []struct {
		query string
		want  int
	}{
		{"?name=op", 5},
		{"?name=other", 0},
		{"?limit=2", 2},
		{"?minDurMs=3", 2}, // 3ms and 4ms spans
	} {
		resp, err := http.Get(srv.URL + "/debug/traces" + tc.query)
		if err != nil {
			t.Fatal(err)
		}
		var got struct {
			Spans []Record `json:"spans"`
		}
		err = json.NewDecoder(resp.Body).Decode(&got)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Spans) != tc.want {
			t.Errorf("%s: %d spans, want %d", tc.query, len(got.Spans), tc.want)
		}
	}

	// Bad params are a JSON 400.
	resp, err := http.Get(srv.URL + "/debug/traces?limit=frog")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad limit: status %d, want 400", resp.StatusCode)
	}
}

func TestDebugServerFederation(t *testing.T) {
	ring := NewRing(16)
	ring.Export(rec("t1", "a", "", "lb.analyze", 1, 500))

	peerRecs := map[string][]Record{
		"peer1:1": {rec("t1", "b", "a", "http.analyze", 2, 300)},
		"peer2:2": {rec("t1", "c", "b", "peer.fill", 3, 100)},
	}
	var fetched []string
	ds := &DebugServer{
		Ring: ring,
		Self: "lb",
		Peers: func() []string {
			return []string{"peer2:2", "peer1:1"}
		},
		Fetch: func(ctx context.Context, member, traceID string) ([]Record, error) {
			fetched = append(fetched, member)
			if traceID != "t1" {
				return nil, nil
			}
			if member == "peer-down" {
				return nil, errors.New("dial refused")
			}
			return peerRecs[member], nil
		},
	}
	srv := httptest.NewServer(ds)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/traces?trace=t1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got struct {
		Spans   []Record      `json:"spans"`
		Tree    []*Node       `json:"tree"`
		Members []MemberSpans `json:"members"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got.Spans) != 3 {
		t.Fatalf("federated spans = %d, want 3", len(got.Spans))
	}
	byID := map[string]string{}
	for _, sp := range got.Spans {
		byID[sp.SpanID] = sp.Member
	}
	if byID["a"] != "lb" || byID["b"] != "peer1:1" || byID["c"] != "peer2:2" {
		t.Fatalf("member attribution = %v", byID)
	}
	if len(got.Members) != 3 || got.Members[0].Member != "lb" || got.Members[0].Spans != 1 {
		t.Fatalf("members = %+v", got.Members)
	}
	// One merged tree: a → b → c.
	if len(got.Tree) != 1 || got.Tree[0].SpanID != "a" ||
		len(got.Tree[0].Children) != 1 || got.Tree[0].Children[0].SpanID != "b" ||
		len(got.Tree[0].Children[0].Children) != 1 || got.Tree[0].Children[0].Children[0].SpanID != "c" {
		t.Fatalf("tree = %s", mustJSON(got.Tree))
	}
}

func TestDebugServerFederationPeerError(t *testing.T) {
	ring := NewRing(4)
	ring.Export(rec("t1", "a", "", "root", 1, 10))
	ds := &DebugServer{
		Ring:  ring,
		Self:  "self",
		Peers: func() []string { return []string{"down:1"} },
		Fetch: func(ctx context.Context, member, traceID string) ([]Record, error) {
			return nil, errors.New("dial refused")
		},
	}
	srv := httptest.NewServer(ds)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/traces?trace=t1")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d with a down peer, want 200", resp.StatusCode)
	}
	var got struct {
		Spans   []Record      `json:"spans"`
		Members []MemberSpans `json:"members"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got.Spans) != 1 {
		t.Fatalf("spans = %d, want the local span only", len(got.Spans))
	}
	if len(got.Members) != 2 || !strings.Contains(got.Members[1].Error, "dial refused") {
		t.Fatalf("members = %+v", got.Members)
	}
}

func TestDebugServerLocalParamSuppressesScatter(t *testing.T) {
	ring := NewRing(4)
	ring.Export(rec("t1", "a", "", "root", 1, 10))
	calls := 0
	ds := &DebugServer{
		Ring:  ring,
		Self:  "self",
		Peers: func() []string { return []string{"p:1"} },
		Fetch: func(ctx context.Context, member, traceID string) ([]Record, error) {
			calls++
			return nil, nil
		},
	}
	srv := httptest.NewServer(ds)
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/traces?trace=t1&local=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if calls != 0 {
		t.Fatalf("local=1 still scattered to %d peers", calls)
	}
	body := decodeTraces(t, fetchBody(t, srv.URL+"/debug/traces?trace=t1&local=1"))
	if _, ok := body["members"]; ok {
		t.Fatalf("local=1 response carries members: %v", body)
	}
}

func fetchBody(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf strings.Builder
	if _, err := buf.WriteString(""); err != nil {
		t.Fatal(err)
	}
	b := make([]byte, 0, 4096)
	tmp := make([]byte, 4096)
	for {
		n, err := resp.Body.Read(tmp)
		b = append(b, tmp[:n]...)
		if err != nil {
			break
		}
	}
	return b
}

func mustJSON(v any) string {
	b, _ := json.Marshal(v)
	return string(b)
}
