package resilience

import (
	"testing"
	"time"
)

func TestBackoffFullJitterWindows(t *testing.T) {
	// Rand pinned at the top of the window exposes the cap schedule.
	b := Backoff{Base: 100 * time.Millisecond, Cap: time.Second, Rand: func() float64 { return 0.999999 }}
	prev := time.Duration(0)
	for attempt, wantWindow := range []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		800 * time.Millisecond, time.Second, time.Second,
	} {
		d := b.Delay(attempt)
		if d > wantWindow || d < time.Duration(0.99*float64(wantWindow)) {
			t.Errorf("attempt %d: delay %v, want ≈ window %v", attempt, d, wantWindow)
		}
		if d < prev && wantWindow != time.Second {
			t.Errorf("attempt %d: window shrank (%v < %v)", attempt, d, prev)
		}
		prev = d
	}
}

func TestBackoffJitterCoversWholeWindow(t *testing.T) {
	seq := []float64{0, 0.5, 0.25}
	i := 0
	b := Backoff{Base: 100 * time.Millisecond, Cap: time.Second,
		Rand: func() float64 { v := seq[i%len(seq)]; i++; return v }}
	if d := b.Delay(0); d != 0 {
		t.Errorf("jitter 0 → delay %v, want 0 (full jitter starts at zero)", d)
	}
	if d := b.Delay(0); d != 50*time.Millisecond {
		t.Errorf("jitter 0.5 → delay %v, want 50ms", d)
	}
	if d := b.Delay(2); d != 100*time.Millisecond {
		t.Errorf("attempt 2 jitter 0.25 → delay %v, want 100ms", d)
	}
}

func TestBackoffDefaultsAndDefaultRand(t *testing.T) {
	var b Backoff
	for attempt := 0; attempt < 20; attempt++ {
		d := b.Delay(attempt)
		if d < 0 || d > 5*time.Second {
			t.Fatalf("attempt %d: delay %v outside [0, default cap]", attempt, d)
		}
	}
}

func TestRetryBudgetAmplificationBound(t *testing.T) {
	b := NewRetryBudget(0.1, 3)
	// Starts full: a cold client can retry immediately.
	for i := 0; i < 3; i++ {
		if !b.Withdraw() {
			t.Fatalf("initial withdraw %d refused", i)
		}
	}
	if b.Withdraw() {
		t.Fatal("withdraw beyond burst allowed")
	}
	// 10 first attempts earn exactly one retry at ratio 0.1.
	for i := 0; i < 10; i++ {
		b.Deposit()
	}
	if !b.Withdraw() {
		t.Fatal("earned retry refused")
	}
	if b.Withdraw() {
		t.Fatal("second retry allowed with empty budget")
	}
	// The balance never exceeds the burst.
	for i := 0; i < 1000; i++ {
		b.Deposit()
	}
	if got := b.Tokens(); got != 3 {
		t.Errorf("tokens = %g, want burst cap 3", got)
	}
}
