package resilience

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestParseChaosRoundTrip(t *testing.T) {
	cases := []struct {
		spec string
		want ChaosModel
	}{
		{"", ChaosModel{}},
		{"none", ChaosModel{}},
		{"latency", ChaosModel{LatencyProb: 0.1, Latency: 50 * time.Millisecond}},
		{"latency:p=0.2,ms=30", ChaosModel{LatencyProb: 0.2, Latency: 30 * time.Millisecond}},
		{"error:p=0.5,code=500", ChaosModel{ErrorProb: 0.5, ErrorStatus: 500}},
		{"reset:p=0.02", ChaosModel{ResetProb: 0.02}},
		{"latency:p=0.2,ms=30+error:p=0.1,code=503+reset:p=0.02+seed:n=7",
			ChaosModel{Seed: 7, LatencyProb: 0.2, Latency: 30 * time.Millisecond,
				ErrorProb: 0.1, ErrorStatus: 503, ResetProb: 0.02}},
	}
	for _, tc := range cases {
		got, err := ParseChaos(tc.spec)
		if err != nil {
			t.Errorf("ParseChaos(%q): %v", tc.spec, err)
			continue
		}
		if got != tc.want {
			t.Errorf("ParseChaos(%q) = %+v, want %+v", tc.spec, got, tc.want)
			continue
		}
		// Canonical round trip.
		again, err := ParseChaos(got.Spec())
		if err != nil || again != got {
			t.Errorf("round trip of %q via %q = %+v (%v)", tc.spec, got.Spec(), again, err)
		}
	}
}

func TestParseChaosRejectsBadSpecs(t *testing.T) {
	for _, spec := range []string{
		"latency:p=2",         // probability out of range
		"latency:ms=-5,p=0.1", // negative duration
		"error:code=404",      // not a 5xx
		"error:code=502.5",    // not an integer
		"bogus:p=1",           // unknown kind
		"latency:frobnicate=1",
		"latency:p",         // not key=value
		"error:p=0.1,p=0.2", // duplicate key
		"latency:p=x",
	} {
		if _, err := ParseChaos(spec); !errors.Is(err, ErrBadChaosSpec) {
			t.Errorf("ParseChaos(%q) err = %v, want ErrBadChaosSpec", spec, err)
		}
	}
}

func TestChaosDrawDeterministicAndIndependent(t *testing.T) {
	m := ChaosModel{Seed: 42, LatencyProb: 0.3, Latency: 10 * time.Millisecond, ErrorProb: 0.2, ResetProb: 0.1}
	h := EndpointHash("/v1/analyze")
	for seq := uint64(0); seq < 64; seq++ {
		if m.Draw(h, seq) != m.Draw(h, seq) {
			t.Fatalf("draw for seq %d is not deterministic", seq)
		}
	}
	// Disabling the error process must not change which requests see
	// latency — the substreams are independent, exactly like faults.
	latOnly := m
	latOnly.ErrorProb, latOnly.ResetProb = 0, 0
	for seq := uint64(0); seq < 512; seq++ {
		if (m.Draw(h, seq).Delay > 0) != (latOnly.Draw(h, seq).Delay > 0) {
			t.Fatalf("seq %d: latency sample path perturbed by other processes", seq)
		}
	}
	// Different endpoints draw different streams.
	h2 := EndpointHash("/v1/sweep")
	same := 0
	for seq := uint64(0); seq < 512; seq++ {
		a, b := m.Draw(h, seq), m.Draw(h2, seq)
		if a == b {
			same++
		}
	}
	if same == 512 {
		t.Error("endpoint substreams are identical")
	}
}

func TestChaosDrawRates(t *testing.T) {
	m := ChaosModel{Seed: 1, LatencyProb: 0.25, Latency: time.Millisecond, ErrorProb: 0.25, ResetProb: 0.25}
	h := EndpointHash("/v1/analyze")
	const n = 20000
	var delays, errors5xx, resets int
	for seq := uint64(0); seq < n; seq++ {
		d := m.Draw(h, seq)
		if d.Delay > 0 {
			delays++
		}
		if d.Status != 0 {
			errors5xx++
		}
		if d.Reset {
			resets++
		}
	}
	check := func(name string, got int, p float64) {
		t.Helper()
		want := p * n
		if float64(got) < 0.85*want || float64(got) > 1.15*want {
			t.Errorf("%s rate: %d of %d, want ≈%g", name, got, n, want)
		}
	}
	check("latency", delays, 0.25)
	// Reset wins over error, so errors appear on ~P(err)·(1-P(reset)).
	check("error", errors5xx, 0.25*0.75)
	check("reset", resets, 0.25)
}

func TestChaosMiddlewareInjectsDeterministically(t *testing.T) {
	model := ChaosModel{Seed: 3, ErrorProb: 0.5, ErrorStatus: 503}
	run := func() (string, int) {
		c := NewChaos(model)
		kinds := map[string]int{}
		c.OnInject = func(kind string) { kinds[kind]++ }
		inner := 0
		h := c.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			inner++
			w.WriteHeader(http.StatusOK)
		}))
		ts := httptest.NewServer(h)
		defer ts.Close()
		var pattern strings.Builder
		for i := 0; i < 32; i++ {
			resp, err := http.Get(ts.URL + "/v1/analyze")
			if err != nil {
				t.Fatal(err)
			}
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusOK:
				pattern.WriteByte('.')
			case http.StatusServiceUnavailable:
				pattern.WriteByte('E')
				if !strings.Contains(string(body), string(CodeInjected)) {
					t.Fatalf("injected error body missing typed code: %s", body)
				}
				if resp.Header.Get("Retry-After") == "" {
					t.Fatal("injected 503 missing Retry-After")
				}
			default:
				t.Fatalf("unexpected status %d", resp.StatusCode)
			}
		}
		return pattern.String(), inner
	}
	p1, inner1 := run()
	p2, inner2 := run()
	if p1 != p2 {
		t.Errorf("two identical runs injected different patterns:\n%s\n%s", p1, p2)
	}
	if inner1 != inner2 || !strings.Contains(p1, "E") || !strings.Contains(p1, ".") {
		t.Errorf("pattern %q (inner %d/%d) should mix successes and injections", p1, inner1, inner2)
	}
}

func TestChaosMiddlewareResetSeversConnection(t *testing.T) {
	c := NewChaos(ChaosModel{Seed: 1, ResetProb: 1})
	h := c.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t.Error("handler must not run on a reset request")
	}))
	ts := httptest.NewServer(h)
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/analyze")
	if err == nil {
		resp.Body.Close()
		t.Fatalf("want a transport error from the severed connection, got status %d", resp.StatusCode)
	}
}

// TestChaosDelayCancelRecordsClientClosed: when the client hangs up
// during an injected delay, the middleware must commit an explicit 499
// instead of letting net/http record an implicit 200 for a request that
// was never served.
func TestChaosDelayCancelRecordsClientClosed(t *testing.T) {
	c := NewChaos(ChaosModel{Seed: 1, LatencyProb: 1, Latency: time.Hour})
	h := c.Wrap(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t.Error("handler must not run after the client hung up")
	}))
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the client is already gone
	req := httptest.NewRequest(http.MethodGet, "/v1/analyze", nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != StatusClientClosedRequest {
		t.Fatalf("recorded code = %d, want %d", rec.Code, StatusClientClosedRequest)
	}
}

func TestChaosWrapDisabledPassesThrough(t *testing.T) {
	inner := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) { w.WriteHeader(204) })
	if got := NewChaos(ChaosModel{}).Wrap(inner); got == nil {
		t.Fatal("nil handler")
	}
	var nilChaos *Chaos
	ts := httptest.NewServer(nilChaos.Wrap(inner))
	defer ts.Close()
	resp, err := http.Get(ts.URL)
	if err != nil || resp.StatusCode != 204 {
		t.Fatalf("pass-through: %v %v", resp, err)
	}
	resp.Body.Close()
}
