package resilience

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestAdmissionAdmitsWhenIdle(t *testing.T) {
	a := NewAdmission(4, 8)
	if ra, err := a.Admit(0, 0, false); err != nil || ra != 0 {
		t.Fatalf("idle admit: retryAfter=%v err=%v", ra, err)
	}
	if admitted, q, d := a.Stats(); admitted != 1 || q != 0 || d != 0 {
		t.Errorf("stats = %d,%d,%d", admitted, q, d)
	}
}

func TestAdmissionQueueBound(t *testing.T) {
	a := NewAdmission(2, 4)
	a.Observe(100 * time.Millisecond)
	if _, err := a.Admit(3, 0, false); err != nil {
		t.Fatalf("below bound: %v", err)
	}
	ra, err := a.Admit(4, 0, false)
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("at bound: err=%v, want ErrQueueFull", err)
	}
	// 4 queued × 100ms / 2 workers = 200ms estimated wait.
	if want := 200 * time.Millisecond; ra != want {
		t.Errorf("retryAfter = %v, want %v", ra, want)
	}
	te, ok := AsError(err)
	if !ok || te.Code != CodeOverloaded || te.Status != 503 {
		t.Errorf("typed error = %+v", te)
	}
}

func TestAdmissionDeadlineInfeasible(t *testing.T) {
	a := NewAdmission(1, 100)
	a.Observe(50 * time.Millisecond)

	// 10 queued × 50ms = 500ms wait; a 100ms deadline is infeasible.
	ra, err := a.Admit(10, 100*time.Millisecond, true)
	if !errors.Is(err, ErrDeadlineInfeasible) {
		t.Fatalf("err = %v, want ErrDeadlineInfeasible", err)
	}
	if ra != 500*time.Millisecond {
		t.Errorf("retryAfter = %v, want 500ms", ra)
	}

	// The same backlog with a roomy deadline is admitted.
	if _, err := a.Admit(10, 2*time.Second, true); err != nil {
		t.Fatalf("feasible deadline rejected: %v", err)
	}
	// And without any deadline only the queue bound applies.
	if _, err := a.Admit(10, 0, false); err != nil {
		t.Fatalf("no deadline rejected: %v", err)
	}
	if _, q, d := a.Stats(); q != 0 || d != 1 {
		t.Errorf("shed stats queue=%d deadline=%d", q, d)
	}
}

func TestAdmissionUnboundedQueueStillChecksDeadline(t *testing.T) {
	a := NewAdmission(1, 0) // no queue bound
	a.Observe(time.Second)
	if _, err := a.Admit(1<<20, 0, false); err != nil {
		t.Fatalf("unbounded queue rejected deadline-less request: %v", err)
	}
	if _, err := a.Admit(4, time.Second, true); !errors.Is(err, ErrDeadlineInfeasible) {
		t.Fatalf("err = %v, want ErrDeadlineInfeasible", err)
	}
}

func TestAdmissionEWMATracksServiceTime(t *testing.T) {
	a := NewAdmission(1, 0)
	if a.ServiceTime() != 0 {
		t.Fatal("EWMA should start at zero")
	}
	a.Observe(100 * time.Millisecond)
	if got := a.ServiceTime(); got != 100*time.Millisecond {
		t.Fatalf("first observation = %v, want exactly 100ms", got)
	}
	for i := 0; i < 50; i++ {
		a.Observe(200 * time.Millisecond)
	}
	got := a.ServiceTime()
	if got < 190*time.Millisecond || got > 200*time.Millisecond {
		t.Errorf("EWMA after convergence = %v, want ≈200ms", got)
	}
	a.Observe(0)
	a.Observe(-time.Second)
	if a.ServiceTime() != got {
		t.Error("non-positive observations must be ignored")
	}
}

func TestAdmissionConcurrentObserve(t *testing.T) {
	a := NewAdmission(4, 16)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				a.Observe(10 * time.Millisecond)
				a.Admit(2, time.Second, true)
			}
		}()
	}
	wg.Wait()
	if got := a.ServiceTime(); got != 10*time.Millisecond {
		t.Errorf("EWMA of constant stream = %v, want 10ms", got)
	}
}
