package resilience

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrBadChaosSpec reports an unparsable chaos specification.
var ErrBadChaosSpec = errors.New("resilience: bad chaos spec")

// StatusClientClosedRequest is the nginx-convention 499 recorded when
// the client hangs up before any response is written (net/http would
// otherwise commit an implicit 200 that instrumentation then logs for
// a request that was never served).
const StatusClientClosedRequest = 499

// ChaosModel configures the deterministic chaos middleware. Every
// injection decision for request number n on endpoint e is a pure
// function of (Seed, e, n) — the same substream design as
// internal/faults — so a chaos run is reproducible: re-running a test
// or a load replay injects the same faults at the same points, at any
// concurrency.
//
// The three processes compose: one request can be delayed and then
// reset, exactly as a real overloaded proxy might behave.
type ChaosModel struct {
	// Seed derives the per-(endpoint, request) decision streams.
	Seed int64
	// LatencyProb is the probability a request is delayed by Latency.
	LatencyProb float64
	// Latency is the injected delay.
	Latency time.Duration
	// ErrorProb is the probability a request is answered with
	// ErrorStatus before reaching the handler.
	ErrorProb float64
	// ErrorStatus is the injected status (0 selects 503).
	ErrorStatus int
	// ResetProb is the probability the connection is severed
	// mid-request with no response at all.
	ResetProb float64
}

// Enabled reports whether any injection process is active.
func (m ChaosModel) Enabled() bool {
	return m.LatencyProb > 0 || m.ErrorProb > 0 || m.ResetProb > 0
}

// Validate checks probabilities and durations.
func (m ChaosModel) Validate() error {
	for _, p := range []float64{m.LatencyProb, m.ErrorProb, m.ResetProb} {
		if p < 0 || p > 1 || p != p {
			return fmt.Errorf("%w: probability %g outside [0, 1]", ErrBadChaosSpec, p)
		}
	}
	if m.Latency < 0 {
		return fmt.Errorf("%w: negative latency", ErrBadChaosSpec)
	}
	if m.ErrorStatus != 0 && (m.ErrorStatus < 500 || m.ErrorStatus > 599) {
		return fmt.Errorf("%w: error status %d is not a 5xx", ErrBadChaosSpec, m.ErrorStatus)
	}
	return nil
}

// ParseChaos parses the compact chaos specification used by the
// ringschedd -chaos flag. Grammar (mirroring the fault-model grammar):
//
//	spec    := "none" | clause { "+" clause }
//	clause  := kind [ ":" key "=" value { "," key "=" value } ]
//	kind    := "latency" | "error" | "reset" | "seed"
//
// Keys per kind (a bare kind takes the defaults in parentheses):
//
//	latency: p (0.1), ms (50)
//	error:   p (0.05), code (503)
//	reset:   p (0.01)
//	seed:    n (1)
//
// Example: "latency:p=0.2,ms=30+error:p=0.1,code=503+reset:p=0.02+seed:n=7".
func ParseChaos(spec string) (ChaosModel, error) {
	var m ChaosModel
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "none" {
		return m, nil
	}
	for _, clause := range strings.Split(spec, "+") {
		kind, params, _ := strings.Cut(strings.TrimSpace(clause), ":")
		kv, err := parseChaosParams(params)
		if err != nil {
			return ChaosModel{}, err
		}
		take := func(key string, def float64) (float64, error) {
			raw, ok := kv[key]
			if !ok {
				return def, nil
			}
			delete(kv, key)
			v, perr := strconv.ParseFloat(raw, 64)
			if perr != nil {
				return 0, fmt.Errorf("%w: %s=%q", ErrBadChaosSpec, key, raw)
			}
			return v, nil
		}
		switch kind {
		case "latency":
			if m.LatencyProb, err = take("p", 0.1); err != nil {
				return ChaosModel{}, err
			}
			ms, err := take("ms", 50)
			if err != nil {
				return ChaosModel{}, err
			}
			m.Latency = time.Duration(ms * float64(time.Millisecond))
		case "error":
			if m.ErrorProb, err = take("p", 0.05); err != nil {
				return ChaosModel{}, err
			}
			code, err := take("code", 503)
			if err != nil {
				return ChaosModel{}, err
			}
			if code != float64(int(code)) {
				return ChaosModel{}, fmt.Errorf("%w: code=%g is not an integer", ErrBadChaosSpec, code)
			}
			m.ErrorStatus = int(code)
		case "reset":
			if m.ResetProb, err = take("p", 0.01); err != nil {
				return ChaosModel{}, err
			}
		case "seed":
			n, err := take("n", 1)
			if err != nil {
				return ChaosModel{}, err
			}
			m.Seed = int64(n)
		default:
			return ChaosModel{}, fmt.Errorf("%w: unknown clause kind %q (valid kinds: error, latency, reset, seed; or \"none\")",
				ErrBadChaosSpec, kind)
		}
		for key := range kv {
			return ChaosModel{}, fmt.Errorf("%w: unknown %s key %q", ErrBadChaosSpec, kind, key)
		}
	}
	if err := m.Validate(); err != nil {
		return ChaosModel{}, err
	}
	// Normalize: a zero-probability process carries no parameters, so
	// ParseChaos(m.Spec()) == m holds exactly (the fuzz target's
	// round-trip invariant).
	if m.LatencyProb == 0 {
		m.Latency = 0
	}
	if m.ErrorProb == 0 {
		m.ErrorStatus = 0
	}
	return m, nil
}

func parseChaosParams(params string) (map[string]string, error) {
	kv := map[string]string{}
	if strings.TrimSpace(params) == "" {
		return kv, nil
	}
	for _, pair := range strings.Split(params, ",") {
		key, val, ok := strings.Cut(pair, "=")
		key = strings.TrimSpace(key)
		if !ok || key == "" {
			return nil, fmt.Errorf("%w: want key=value, got %q", ErrBadChaosSpec, pair)
		}
		if _, dup := kv[key]; dup {
			return nil, fmt.Errorf("%w: duplicate key %q", ErrBadChaosSpec, key)
		}
		kv[key] = strings.TrimSpace(val)
	}
	return kv, nil
}

// Spec renders the model in the canonical form ParseChaos accepts;
// ParseChaos(m.Spec()) reproduces m exactly.
func (m ChaosModel) Spec() string {
	var parts []string
	if m.LatencyProb > 0 {
		parts = append(parts, fmt.Sprintf("latency:p=%g,ms=%g", m.LatencyProb, float64(m.Latency)/float64(time.Millisecond)))
	}
	if m.ErrorProb > 0 {
		code := m.ErrorStatus
		if code == 0 {
			code = 503
		}
		parts = append(parts, fmt.Sprintf("error:p=%g,code=%d", m.ErrorProb, code))
	}
	if m.ResetProb > 0 {
		parts = append(parts, fmt.Sprintf("reset:p=%g", m.ResetProb))
	}
	if m.Seed != 0 {
		parts = append(parts, fmt.Sprintf("seed:n=%d", m.Seed))
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "+")
}

// Decision is one request's injected faults.
type Decision struct {
	// Delay is the injected latency (0 = none).
	Delay time.Duration
	// Status, when non-zero, answers the request with this 5xx after
	// the delay, without reaching the handler.
	Status int
	// Reset, when true, severs the connection after the delay with no
	// response; it wins over Status.
	Reset bool
}

// Draw returns the deterministic decision for request number seq on
// endpoint. Each of the three processes uses its own derived draw, so
// enabling one never perturbs another's sample path — the same identity
// internal/faults guarantees for its fault processes. Draw allocates
// nothing.
func (m *ChaosModel) Draw(endpointHash uint64, seq uint64) Decision {
	var d Decision
	base := splitmix64(uint64(m.Seed) ^ splitmix64(endpointHash) ^ splitmix64(seq<<1|1))
	if m.LatencyProb > 0 && unitFloat(splitmix64(base^1)) < m.LatencyProb {
		d.Delay = m.Latency
	}
	if m.ResetProb > 0 && unitFloat(splitmix64(base^2)) < m.ResetProb {
		d.Reset = true
		return d
	}
	if m.ErrorProb > 0 && unitFloat(splitmix64(base^3)) < m.ErrorProb {
		d.Status = m.ErrorStatus
		if d.Status == 0 {
			d.Status = 503
		}
	}
	return d
}

// EndpointHash hashes an endpoint name for Draw.
func EndpointHash(endpoint string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(endpoint))
	return h.Sum64()
}

// Chaos is the HTTP middleware around a ChaosModel: it numbers requests
// per endpoint path, draws each one's Decision, and applies it — sleep,
// injected 5xx with a typed error body, or a severed connection
// (panic(http.ErrAbortHandler), which the net/http server turns into an
// abrupt close exactly like a crashed upstream).
type Chaos struct {
	// Model is the injection configuration.
	Model ChaosModel
	// OnInject, when non-nil, is called once per injected fault with
	// "latency", "error" or "reset" — the metrics hook.
	OnInject func(kind string)

	mu   sync.Mutex
	seqs map[string]*endpointSeq
}

type endpointSeq struct {
	hash uint64
	seq  atomic.Uint64
}

// NewChaos builds the middleware state for model.
func NewChaos(model ChaosModel) *Chaos {
	return &Chaos{Model: model, seqs: map[string]*endpointSeq{}}
}

// next returns the endpoint hash and this request's sequence number.
func (c *Chaos) next(path string) (uint64, uint64) {
	c.mu.Lock()
	es, ok := c.seqs[path]
	if !ok {
		es = &endpointSeq{hash: EndpointHash(path)}
		c.seqs[path] = es
	}
	c.mu.Unlock()
	return es.hash, es.seq.Add(1) - 1
}

// Wrap returns next wrapped with fault injection. A nil receiver or a
// disabled model returns next unchanged.
func (c *Chaos) Wrap(next http.Handler) http.Handler {
	if c == nil || !c.Model.Enabled() {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hash, seq := c.next(r.URL.Path)
		d := c.Model.Draw(hash, seq)
		if d.Delay > 0 {
			c.inject("latency")
			t := time.NewTimer(d.Delay)
			select {
			case <-t.C:
			case <-r.Context().Done():
				t.Stop()
				// The client is gone and nothing was written; record an
				// explicit status so metrics and logs don't report an
				// implicit 200 for a request that was never served.
				w.WriteHeader(StatusClientClosedRequest)
				return
			}
		}
		if d.Reset {
			c.inject("reset")
			panic(http.ErrAbortHandler)
		}
		if d.Status != 0 {
			c.inject("error")
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Retry-After", "1")
			w.WriteHeader(d.Status)
			body, _ := json.Marshal(map[string]string{
				"error": "resilience: chaos-injected failure",
				"code":  string(CodeInjected),
			})
			w.Write(append(body, '\n'))
			return
		}
		next.ServeHTTP(w, r)
	})
}

func (c *Chaos) inject(kind string) {
	if c.OnInject != nil {
		c.OnInject(kind)
	}
}
