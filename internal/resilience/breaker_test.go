package resilience

import (
	"errors"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for breaker tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestBreaker(threshold int, cooldown time.Duration) (*Breaker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	return NewBreaker(BreakerConfig{Threshold: threshold, Cooldown: cooldown, Now: clk.now}), clk
}

func TestBreakerTripsAfterConsecutiveFailures(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	for i := 0; i < 2; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("closed breaker rejected request %d", i)
		}
		b.Failure()
	}
	if b.State() != BreakerClosed {
		t.Fatal("breaker tripped below threshold")
	}
	b.Allow()
	b.Failure() // third consecutive failure
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v, want open", b.State())
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker allowed a request: %v", err)
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	b.Allow()
	b.Failure()
	b.Allow()
	b.Failure()
	b.Allow()
	b.Success()
	b.Allow()
	b.Failure()
	b.Allow()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatal("interleaved success must reset the consecutive-failure streak")
	}
}

func TestBreakerHalfOpenProbeRecovers(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Allow()
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatal("not open")
	}

	clk.advance(999 * time.Millisecond)
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatal("breaker half-opened before the cooldown elapsed")
	}

	clk.advance(time.Millisecond)
	if err := b.Allow(); err != nil {
		t.Fatalf("cooldown elapsed but probe rejected: %v", err)
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	// Only one probe at a time.
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatal("second concurrent probe allowed")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatal("successful probe must close the breaker")
	}
	if err := b.Allow(); err != nil {
		t.Fatal("closed breaker rejecting traffic after recovery")
	}
}

func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Allow()
	b.Failure()
	clk.advance(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe rejected: %v", err)
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatal("failed probe must re-open the breaker")
	}
	// A fresh cooldown applies.
	clk.advance(500 * time.Millisecond)
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatal("re-opened breaker admitted before the fresh cooldown")
	}
	clk.advance(500 * time.Millisecond)
	if err := b.Allow(); err != nil {
		t.Fatalf("second probe rejected: %v", err)
	}
}

func TestBreakerStateString(t *testing.T) {
	for state, want := range map[BreakerState]string{
		BreakerClosed: "closed", BreakerOpen: "open", BreakerHalfOpen: "half-open", BreakerState(9): "unknown",
	} {
		if got := state.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", state, got, want)
		}
	}
}
