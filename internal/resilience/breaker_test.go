package resilience

import (
	"errors"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for breaker tests.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestBreaker(threshold int, cooldown time.Duration) (*Breaker, *fakeClock) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	return NewBreaker(BreakerConfig{Threshold: threshold, Cooldown: cooldown, Now: clk.now}), clk
}

func TestBreakerTripsAfterConsecutiveFailures(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	for i := 0; i < 2; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("closed breaker rejected request %d", i)
		}
		b.Failure()
	}
	if b.State() != BreakerClosed {
		t.Fatal("breaker tripped below threshold")
	}
	b.Allow()
	b.Failure() // third consecutive failure
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v, want open", b.State())
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("open breaker allowed a request: %v", err)
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	b.Allow()
	b.Failure()
	b.Allow()
	b.Failure()
	b.Allow()
	b.Success()
	b.Allow()
	b.Failure()
	b.Allow()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatal("interleaved success must reset the consecutive-failure streak")
	}
}

func TestBreakerHalfOpenProbeRecovers(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Allow()
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatal("not open")
	}

	clk.advance(999 * time.Millisecond)
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatal("breaker half-opened before the cooldown elapsed")
	}

	clk.advance(time.Millisecond)
	if err := b.Allow(); err != nil {
		t.Fatalf("cooldown elapsed but probe rejected: %v", err)
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	// Only one probe at a time.
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatal("second concurrent probe allowed")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatal("successful probe must close the breaker")
	}
	if err := b.Allow(); err != nil {
		t.Fatal("closed breaker rejecting traffic after recovery")
	}
}

func TestBreakerHalfOpenProbeFailureReopens(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Allow()
	b.Failure()
	clk.advance(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe rejected: %v", err)
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatal("failed probe must re-open the breaker")
	}
	// A fresh cooldown applies.
	clk.advance(500 * time.Millisecond)
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatal("re-opened breaker admitted before the fresh cooldown")
	}
	clk.advance(500 * time.Millisecond)
	if err := b.Allow(); err != nil {
		t.Fatalf("second probe rejected: %v", err)
	}
}

// TestBreakerCancelReleasesHalfOpenProbe is the regression test for the
// probe leak: a half-open probe whose outcome carries no health verdict
// (the caller's own deadline expired) must release the probe slot via
// Cancel, or the breaker rejects everything forever.
func TestBreakerCancelReleasesHalfOpenProbe(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Allow()
	b.Failure()
	clk.advance(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe rejected: %v", err)
	}
	// The probe's outcome is non-diagnostic; release it.
	b.Cancel()
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state = %v, want half-open after cancelled probe", b.State())
	}
	// The slot is free again: the next caller gets to probe, and its
	// verdict still counts.
	if err := b.Allow(); err != nil {
		t.Fatalf("probe slot still held after Cancel: %v", err)
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatal("post-cancel probe success must close the breaker")
	}
}

// TestBreakerCancelKeepsFailureStreak checks Cancel is verdict-free in
// Closed too: it neither extends nor resets the consecutive failures.
func TestBreakerCancelKeepsFailureStreak(t *testing.T) {
	b, _ := newTestBreaker(2, time.Second)
	b.Allow()
	b.Failure()
	b.Allow()
	b.Cancel()
	if b.State() != BreakerClosed {
		t.Fatalf("state = %v, want closed", b.State())
	}
	b.Allow()
	b.Failure() // second real failure: streak of 2 despite the cancel
	if b.State() != BreakerOpen {
		t.Fatal("Cancel must not reset the consecutive-failure streak")
	}
}

// TestBreakerIgnoresStaleSuccessWhileOpen: a slow request admitted
// before the trip must not force the breaker closed past its cooldown.
func TestBreakerIgnoresStaleSuccessWhileOpen(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Allow() // the slow request, admitted while closed
	b.Allow()
	b.Failure() // trips the breaker
	if b.State() != BreakerOpen {
		t.Fatal("not open")
	}
	b.Success() // the slow request finally lands
	if b.State() != BreakerOpen {
		t.Fatalf("state = %v, want open — stale success bypassed the cooldown", b.State())
	}
	if err := b.Allow(); !errors.Is(err, ErrBreakerOpen) {
		t.Fatal("breaker admitted traffic inside the cooldown")
	}
	// The cooldown still ends normally.
	clk.advance(time.Second)
	if err := b.Allow(); err != nil {
		t.Fatalf("probe rejected after cooldown: %v", err)
	}
}

func TestBreakerStateString(t *testing.T) {
	for state, want := range map[BreakerState]string{
		BreakerClosed: "closed", BreakerOpen: "open", BreakerHalfOpen: "half-open", BreakerState(9): "unknown",
	} {
		if got := state.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", state, got, want)
		}
	}
}
