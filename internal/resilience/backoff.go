package resilience

import (
	"sync"
	"time"
)

// Backoff computes capped exponential backoff with full jitter: the
// delay before retry attempt n (0-based) is drawn uniformly from
// [0, min(Cap, Base·2ⁿ)]. Full jitter decorrelates retry storms — after
// a shared failure, N clients spread across the whole window instead of
// hammering the server again in lockstep.
type Backoff struct {
	// Base is the first attempt's maximum delay (0 selects 50 ms).
	Base time.Duration
	// Cap bounds the window growth (0 selects 5 s).
	Cap time.Duration
	// Rand returns a uniform float64 in [0, 1); nil selects a private
	// seeded source. Tests inject a deterministic sequence here.
	Rand func() float64
}

// Delay returns the jittered delay before retry attempt n (0-based).
func (b Backoff) Delay(attempt int) time.Duration {
	base, ceil := b.Base, b.Cap
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if ceil <= 0 {
		ceil = 5 * time.Second
	}
	window := base
	for i := 0; i < attempt && window < ceil; i++ {
		window *= 2
	}
	if window > ceil {
		window = ceil
	}
	r := b.Rand
	if r == nil {
		r = defaultUnit
	}
	return time.Duration(r() * float64(window))
}

// defaultUnit is the fallback jitter source: a splitmix64 chain seeded
// from the wall clock once, advanced under a lock. Retry delays need
// decorrelation, not cryptographic strength.
var (
	defaultUnitMu sync.Mutex
	defaultState  = uint64(time.Now().UnixNano())
)

func defaultUnit() float64 {
	defaultUnitMu.Lock()
	defaultState = splitmix64(defaultState)
	v := unitFloat(defaultState)
	defaultUnitMu.Unlock()
	return v
}

// RetryBudget bounds the fraction of traffic that retries may add. Each
// first attempt deposits Ratio tokens (capped at Burst); each retry
// withdraws one. With Ratio 0.1 a client may amplify load by at most
// 10% in steady state — when the server is failing everything, retries
// dry up instead of multiplying the overload, while isolated failures
// always have budget available.
type RetryBudget struct {
	ratio float64
	burst float64

	mu     sync.Mutex
	tokens float64
}

// NewRetryBudget builds a budget earning ratio tokens per first attempt
// with at most burst banked. ratio <= 0 selects 0.1; burst <= 0 selects
// 10. The budget starts full, so a cold client can retry immediately.
func NewRetryBudget(ratio, burst float64) *RetryBudget {
	if ratio <= 0 {
		ratio = 0.1
	}
	if burst <= 0 {
		burst = 10
	}
	return &RetryBudget{ratio: ratio, burst: burst, tokens: burst}
}

// Deposit credits one first attempt.
func (b *RetryBudget) Deposit() {
	b.mu.Lock()
	b.tokens += b.ratio
	if b.tokens > b.burst {
		b.tokens = b.burst
	}
	b.mu.Unlock()
}

// Withdraw spends one retry token, reporting whether the budget allowed
// it.
func (b *RetryBudget) Withdraw() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	// The 1e-9 slack absorbs float accumulation error: ten 0.1-ratio
	// deposits must buy exactly one retry.
	if b.tokens < 1-1e-9 {
		return false
	}
	b.tokens--
	if b.tokens < 0 {
		b.tokens = 0
	}
	return true
}

// Tokens returns the current balance.
func (b *RetryBudget) Tokens() float64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.tokens
}
