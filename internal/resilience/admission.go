package resilience

import (
	"math"
	"sync/atomic"
	"time"
)

// ewmaAlpha is the smoothing factor for the service-time estimate. 0.2
// keeps roughly the last dozen completions relevant: fast enough to
// track a workload shift (analyze → sweep mixes), slow enough that one
// outlier does not trigger a shedding storm.
const ewmaAlpha = 0.2

// Admission implements reject-on-arrival load shedding for a bounded
// queue feeding a fixed worker pool.
//
// The policy has two rules, checked at arrival so a doomed request costs
// the server nothing but the check itself:
//
//  1. Queue bound: at most QueueDepth jobs may be waiting. Beyond that
//     the server is past saturation and every admitted request only adds
//     latency for all of them; the excess is shed with ErrQueueFull.
//  2. Deadline feasibility: the estimated queue wait is
//     queued × EWMA(service time) / workers. If the caller propagated a
//     deadline and the estimate already exceeds what remains of it, the
//     request is shed with ErrDeadlineInfeasible — computing an answer
//     that arrives after its deadline is indistinguishable from not
//     computing it, except that it also delays everyone behind it.
//
// Both rejections carry the estimated wait as a Retry-After hint.
// Admission is allocation-free on the admit path and safe for concurrent
// use; service times are folded in with Observe.
type Admission struct {
	workers      int
	queueDepth   int
	ewmaBits     atomic.Uint64 // math.Float64bits of the EWMA in seconds
	admitted     atomic.Int64
	shedQueue    atomic.Int64
	shedDeadline atomic.Int64
}

// NewAdmission builds a controller for a pool of workers with at most
// queueDepth waiting jobs. workers < 1 is treated as 1; queueDepth < 1
// disables the queue bound (deadline feasibility still applies).
func NewAdmission(workers, queueDepth int) *Admission {
	if workers < 1 {
		workers = 1
	}
	return &Admission{workers: workers, queueDepth: queueDepth}
}

// Observe folds one completed computation's duration into the
// service-time estimate. Call it only for work that ran to completion —
// cancelled jobs finish early and would bias the estimate optimistic.
func (a *Admission) Observe(d time.Duration) {
	if d <= 0 {
		return
	}
	s := d.Seconds()
	for {
		old := a.ewmaBits.Load()
		cur := math.Float64frombits(old)
		next := s
		if old != 0 {
			next = ewmaAlpha*s + (1-ewmaAlpha)*cur
		}
		if a.ewmaBits.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

// ServiceTime returns the current EWMA of observed service times (zero
// before the first observation).
func (a *Admission) ServiceTime() time.Duration {
	return time.Duration(math.Float64frombits(a.ewmaBits.Load()) * float64(time.Second))
}

// EstimatedWait returns the expected queueing delay for a request
// arriving with `queued` jobs already waiting: each of them needs one
// EWMA service time, spread across the pool's workers.
func (a *Admission) EstimatedWait(queued int64) time.Duration {
	if queued <= 0 {
		return 0
	}
	est := math.Float64frombits(a.ewmaBits.Load())
	return time.Duration(float64(queued) * est / float64(a.workers) * float64(time.Second))
}

// Admit decides whether to accept a request arriving with `queued` jobs
// already waiting for a worker. remaining is the request's remaining
// deadline (hasDeadline false when the client set none). On rejection
// the returned error is one of the package sentinels and retryAfter is
// the estimated time until the backlog clears — the Retry-After hint.
func (a *Admission) Admit(queued int64, remaining time.Duration, hasDeadline bool) (retryAfter time.Duration, err error) {
	wait := a.EstimatedWait(queued)
	if a.queueDepth > 0 && queued >= int64(a.queueDepth) {
		a.shedQueue.Add(1)
		return wait, ErrQueueFull
	}
	if hasDeadline && wait > remaining {
		a.shedDeadline.Add(1)
		return wait, ErrDeadlineInfeasible
	}
	a.admitted.Add(1)
	return 0, nil
}

// Stats reports lifetime admission decisions: admitted requests, sheds
// from the queue bound, and sheds from deadline infeasibility.
func (a *Admission) Stats() (admitted, shedQueueFull, shedDeadline int64) {
	return a.admitted.Load(), a.shedQueue.Load(), a.shedDeadline.Load()
}
