// Package resilience is the overload-protection and failure-handling
// substrate for the ringschedd serving stack and its clients:
//
//   - a typed error taxonomy (Error, Code) that maps every rejection —
//     shed, rate-limited, draining, deadline, panic — to a stable wire
//     code plus a Retry-After hint, so clients can react by kind instead
//     of parsing message strings (errors.go semantics live here),
//   - deadline-aware admission control (Admission): a bounded queue in
//     front of the worker pool that rejects on arrival once the
//     estimated queue wait exceeds the caller's remaining deadline,
//     keeping goodput flat past saturation instead of letting latency
//     collapse for everyone (admission.go),
//   - per-client token-bucket rate limiting (Limiter, ratelimit.go),
//   - a circuit breaker and capped-exponential-backoff-with-full-jitter
//     retry policy with a retry budget, used by package ringschedclient
//     (breaker.go, backoff.go), and
//   - a deterministic chaos middleware (Chaos, chaos.go) that injects
//     latency, 5xx failures and connection resets from seeded
//     per-(endpoint, request) substreams — the same reproducibility
//     design as internal/faults, one layer up — so graceful degradation
//     is testable in CI rather than discovered in production.
//
// The saturation regime this package defends against is the serving-layer
// twin of the paper's breakdown-utilization analysis: past the breakdown
// point, admitting more work only destroys the guarantees of the work
// already admitted. The admission controller applies the same lesson to
// HTTP requests that Theorem 4.1/5.1 apply to message streams.
package resilience

import (
	"errors"
	"fmt"
	"time"
)

// Code identifies one failure kind on the wire. Codes are stable API:
// clients switch on them to decide whether and when to retry.
type Code string

const (
	// CodeBadRequest marks malformed or unvalidatable requests (400).
	CodeBadRequest Code = "bad_request"
	// CodeRateLimited marks per-client token-bucket rejections (429).
	CodeRateLimited Code = "rate_limited"
	// CodeOverloaded marks admission-control load shedding: the queue is
	// full or the estimated wait exceeds the request deadline (503).
	CodeOverloaded Code = "overloaded"
	// CodeUnavailable marks a draining or closing server (503).
	CodeUnavailable Code = "unavailable"
	// CodeDeadline marks work that outran its deadline (504).
	CodeDeadline Code = "deadline_exceeded"
	// CodeInternal marks unexpected failures, including recovered
	// handler panics (500).
	CodeInternal Code = "internal"
	// CodeInjected marks failures manufactured by the chaos middleware
	// (5xx); real clients treat them exactly like CodeInternal.
	CodeInjected Code = "injected"
	// CodeNotFound marks requests naming a resource that does not exist,
	// e.g. an unknown ring ID (404). Not retryable.
	CodeNotFound Code = "not_found"
	// CodeConflict marks optimistic-concurrency failures: the expected
	// version named in a ring edit no longer matches (409). Clients
	// refresh the ring and replay the edit against the current version.
	CodeConflict Code = "conflict"
)

// Error is a typed serving-layer failure: an HTTP status, a stable wire
// code, a human-readable message, and an optional retry hint. The zero
// RetryAfter means "no specific hint" — writers fall back to a default
// for statuses that must carry a Retry-After header.
type Error struct {
	Code       Code
	Status     int
	Message    string
	RetryAfter time.Duration
}

// Error implements the error interface.
func (e *Error) Error() string { return e.Message }

// WithRetryAfter returns a copy of e carrying a retry hint.
func (e *Error) WithRetryAfter(d time.Duration) *Error {
	c := *e
	c.RetryAfter = d
	return &c
}

// Errorf builds a typed error with a formatted message.
func Errorf(code Code, status int, format string, args ...any) *Error {
	return &Error{Code: code, Status: status, Message: fmt.Sprintf(format, args...)}
}

// AsError extracts a typed *Error from an error chain.
func AsError(err error) (*Error, bool) {
	var e *Error
	if errors.As(err, &e) {
		return e, true
	}
	return nil, false
}

// Sentinel rejections shared by the admission controller and rate
// limiter. They are allocation-free to return on the hot shed path;
// attach a per-request Retry-After with WithRetryAfter only when
// rendering the response.
var (
	// ErrQueueFull rejects on arrival because the admission queue is at
	// capacity.
	ErrQueueFull = &Error{Code: CodeOverloaded, Status: 503,
		Message: "resilience: admission queue full, request shed"}
	// ErrDeadlineInfeasible rejects on arrival because the estimated
	// queue wait already exceeds the request's remaining deadline —
	// admitting it would waste a worker computing an answer nobody can
	// use.
	ErrDeadlineInfeasible = &Error{Code: CodeOverloaded, Status: 503,
		Message: "resilience: estimated queue wait exceeds request deadline, request shed"}
	// ErrRateLimited rejects a client that exhausted its token bucket.
	ErrRateLimited = &Error{Code: CodeRateLimited, Status: 429,
		Message: "resilience: per-client rate limit exceeded"}
)

// splitmix64 is the SplitMix64 mixer — one cheap, well-dispersed step
// used to derive independent chaos substreams from related
// (seed, endpoint, sequence) triples. Same construction as
// internal/faults; duplicated because both packages keep it unexported.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unitFloat maps a uint64 to [0, 1) with 53-bit precision.
func unitFloat(x uint64) float64 {
	return float64(x>>11) / (1 << 53)
}
