package resilience

import (
	"testing"
	"time"
)

func TestLimiterBurstThenRefill(t *testing.T) {
	now := time.Unix(0, 0)
	l := NewLimiter(10, 3, 0) // 10 rps, burst 3

	for i := 0; i < 3; i++ {
		if ok, _ := l.Allow("c", now); !ok {
			t.Fatalf("burst request %d rejected", i)
		}
	}
	ok, ra := l.Allow("c", now)
	if ok {
		t.Fatal("request beyond burst admitted")
	}
	// Empty bucket at 10 rps: next token in 100ms.
	if ra != 100*time.Millisecond {
		t.Errorf("retryAfter = %v, want 100ms", ra)
	}

	// After 250ms, 2.5 tokens refilled: two more requests pass.
	now = now.Add(250 * time.Millisecond)
	for i := 0; i < 2; i++ {
		if ok, _ := l.Allow("c", now); !ok {
			t.Fatalf("post-refill request %d rejected", i)
		}
	}
	if ok, _ := l.Allow("c", now); ok {
		t.Error("third post-refill request admitted, only 2.5 tokens refilled")
	}
}

func TestLimiterKeysAreIndependent(t *testing.T) {
	now := time.Unix(0, 0)
	l := NewLimiter(1, 1, 0)
	if ok, _ := l.Allow("a", now); !ok {
		t.Fatal("first a rejected")
	}
	if ok, _ := l.Allow("a", now); ok {
		t.Fatal("second a admitted")
	}
	if ok, _ := l.Allow("b", now); !ok {
		t.Fatal("b must have its own bucket")
	}
}

func TestLimiterDisabled(t *testing.T) {
	l := NewLimiter(0, 0, 0)
	for i := 0; i < 1000; i++ {
		if ok, _ := l.Allow("c", time.Unix(0, 0)); !ok {
			t.Fatal("disabled limiter rejected a request")
		}
	}
	var nilL *Limiter
	if ok, _ := nilL.Allow("c", time.Now()); !ok {
		t.Fatal("nil limiter must admit")
	}
}

func TestLimiterEvictsOnlyRefilledIdleBuckets(t *testing.T) {
	now := time.Unix(0, 0)
	l := NewLimiter(1, 5, 2) // full refill takes burst/rate = 5s
	l.Allow("old", now)
	l.Allow("mid", now.Add(4*time.Second))
	// At t=5s "old" has been idle a full refill: evicting it is
	// unobservable to its owner, so a new key may take its slot.
	l.Allow("new", now.Add(5*time.Second))
	if got := l.Clients(); got != 2 {
		t.Fatalf("clients after eviction = %d, want 2", got)
	}
	// "old" comes back exactly as it would have been: a full bucket.
	for i := 0; i < 5; i++ {
		if ok, _ := l.Allow("old", now.Add(10*time.Second)); !ok {
			t.Fatalf("re-inserted client rejected at burst request %d", i)
		}
	}
}

// TestLimiterKeyRotationSharesOverflowBucket pins the defense against
// rate-limit bypass by identity rotation: while every resident bucket is
// still active, unseen keys must not evict them, and must share one
// overflow bucket instead of each minting a fresh full burst.
func TestLimiterKeyRotationSharesOverflowBucket(t *testing.T) {
	now := time.Unix(0, 0)
	l := NewLimiter(1, 2, 2)
	l.Allow("a", now) // a: 1 token left
	l.Allow("b", now) // b: 1 token left
	// Rotated identities arrive while both residents are active: they
	// drain the shared overflow bucket (burst 2), not one burst each.
	if ok, _ := l.Allow("rot-1", now); !ok {
		t.Fatal("first overflow request rejected with a full shared bucket")
	}
	if ok, _ := l.Allow("rot-2", now); !ok {
		t.Fatal("second overflow request rejected, shared bucket had 1 token")
	}
	ok, retryAfter := l.Allow("rot-3", now)
	if ok {
		t.Fatal("rotation got a third token — overflow bucket not shared")
	}
	if retryAfter <= 0 {
		t.Errorf("retryAfter = %v, want > 0", retryAfter)
	}
	// Residents were neither evicted nor drained by the rotation.
	if got := l.Clients(); got != 2 {
		t.Fatalf("clients = %d, want the 2 residents", got)
	}
	for _, key := range []string{"a", "b"} {
		if ok, _ := l.Allow(key, now); !ok {
			t.Fatalf("resident %q lost its remaining token to the rotation", key)
		}
		if ok, _ := l.Allow(key, now); ok {
			t.Fatalf("resident %q exceeded its burst", key)
		}
	}
	// The overflow bucket refills like any other.
	if ok, _ := l.Allow("rot-4", now.Add(time.Second)); !ok {
		t.Fatal("overflow bucket did not refill")
	}
}
