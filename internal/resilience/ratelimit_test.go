package resilience

import (
	"testing"
	"time"
)

func TestLimiterBurstThenRefill(t *testing.T) {
	now := time.Unix(0, 0)
	l := NewLimiter(10, 3, 0) // 10 rps, burst 3

	for i := 0; i < 3; i++ {
		if ok, _ := l.Allow("c", now); !ok {
			t.Fatalf("burst request %d rejected", i)
		}
	}
	ok, ra := l.Allow("c", now)
	if ok {
		t.Fatal("request beyond burst admitted")
	}
	// Empty bucket at 10 rps: next token in 100ms.
	if ra != 100*time.Millisecond {
		t.Errorf("retryAfter = %v, want 100ms", ra)
	}

	// After 250ms, 2.5 tokens refilled: two more requests pass.
	now = now.Add(250 * time.Millisecond)
	for i := 0; i < 2; i++ {
		if ok, _ := l.Allow("c", now); !ok {
			t.Fatalf("post-refill request %d rejected", i)
		}
	}
	if ok, _ := l.Allow("c", now); ok {
		t.Error("third post-refill request admitted, only 2.5 tokens refilled")
	}
}

func TestLimiterKeysAreIndependent(t *testing.T) {
	now := time.Unix(0, 0)
	l := NewLimiter(1, 1, 0)
	if ok, _ := l.Allow("a", now); !ok {
		t.Fatal("first a rejected")
	}
	if ok, _ := l.Allow("a", now); ok {
		t.Fatal("second a admitted")
	}
	if ok, _ := l.Allow("b", now); !ok {
		t.Fatal("b must have its own bucket")
	}
}

func TestLimiterDisabled(t *testing.T) {
	l := NewLimiter(0, 0, 0)
	for i := 0; i < 1000; i++ {
		if ok, _ := l.Allow("c", time.Unix(0, 0)); !ok {
			t.Fatal("disabled limiter rejected a request")
		}
	}
	var nilL *Limiter
	if ok, _ := nilL.Allow("c", time.Now()); !ok {
		t.Fatal("nil limiter must admit")
	}
}

func TestLimiterEvictsIdlestAtCapacity(t *testing.T) {
	now := time.Unix(0, 0)
	l := NewLimiter(1, 5, 2)
	l.Allow("old", now)
	l.Allow("mid", now.Add(time.Second))
	if got := l.Clients(); got != 2 {
		t.Fatalf("clients = %d, want 2", got)
	}
	// A third client evicts "old", the longest idle.
	l.Allow("new", now.Add(2*time.Second))
	if got := l.Clients(); got != 2 {
		t.Fatalf("clients after eviction = %d, want 2", got)
	}
	// "old" comes back with a fresh full bucket — eviction only ever
	// errs in the client's favor.
	for i := 0; i < 5; i++ {
		if ok, _ := l.Allow("old", now.Add(3*time.Second)); !ok {
			t.Fatalf("re-inserted client rejected at burst request %d", i)
		}
	}
}
