package resilience

import (
	"testing"
	"time"
)

// The middleware decisions run on every request before any useful work;
// they must not tax the request path with garbage. These guards pin the
// admit-path allocation count at zero (the benchmark-regression gate
// additionally pins BenchmarkResilienceAdmit's allocs/op in CI).

func TestAdmitPathAllocsFree(t *testing.T) {
	a := NewAdmission(4, 64)
	a.Observe(5 * time.Millisecond)
	if n := testing.AllocsPerRun(1000, func() {
		a.Observe(5 * time.Millisecond)
		if _, err := a.Admit(3, time.Second, true); err != nil {
			t.Fatal("unexpected shed")
		}
	}); n != 0 {
		t.Errorf("admit path allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		if _, err := a.Admit(64, 0, false); err == nil {
			t.Fatal("expected shed")
		}
	}); n != 0 {
		t.Errorf("shed path allocates %v/op, want 0", n)
	}
}

func TestLimiterResidentKeyAllocFree(t *testing.T) {
	l := NewLimiter(1e9, 1e9, 0)
	now := time.Unix(0, 0)
	l.Allow("client", now)
	if n := testing.AllocsPerRun(1000, func() {
		now = now.Add(time.Microsecond)
		if ok, _ := l.Allow("client", now); !ok {
			t.Fatal("unexpected limit")
		}
	}); n != 0 {
		t.Errorf("resident-key Allow allocates %v/op, want 0", n)
	}
}

func TestBreakerClosedAllocFree(t *testing.T) {
	b := NewBreaker(BreakerConfig{})
	if n := testing.AllocsPerRun(1000, func() {
		if err := b.Allow(); err != nil {
			t.Fatal(err)
		}
		b.Success()
	}); n != 0 {
		t.Errorf("closed-breaker Allow/Success allocates %v/op, want 0", n)
	}
}

func TestChaosDrawAllocFree(t *testing.T) {
	m := ChaosModel{Seed: 9, LatencyProb: 0.3, Latency: time.Millisecond, ErrorProb: 0.3, ResetProb: 0.3}
	h := EndpointHash("/v1/analyze")
	seq := uint64(0)
	if n := testing.AllocsPerRun(1000, func() {
		m.Draw(h, seq)
		seq++
	}); n != 0 {
		t.Errorf("Draw allocates %v/op, want 0", n)
	}
}

// BenchmarkResilienceAdmit measures the full per-request middleware
// decision chain — rate-limit check, chaos draw, admission decision —
// the code every /v1/* request now runs before any real work. Gated at
// 0 allocs/op in BENCH_PR4.json.
func BenchmarkResilienceAdmit(b *testing.B) {
	adm := NewAdmission(8, 64)
	adm.Observe(2 * time.Millisecond)
	lim := NewLimiter(1e12, 1e12, 0)
	chaos := ChaosModel{Seed: 1, LatencyProb: 0.01, Latency: time.Millisecond}
	h := EndpointHash("/v1/analyze")
	now := time.Unix(0, 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now = now.Add(time.Microsecond)
		if ok, _ := lim.Allow("client", now); !ok {
			b.Fatal("rate limited")
		}
		chaos.Draw(h, uint64(i))
		if _, err := adm.Admit(3, time.Second, true); err != nil {
			b.Fatal(err)
		}
		adm.Observe(2 * time.Millisecond)
	}
}
