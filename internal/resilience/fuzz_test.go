package resilience

import (
	"strings"
	"testing"
)

// FuzzChaosSpec asserts the chaos-spec parser never panics, and that
// every accepted spec survives a canonical round trip: Spec() renders a
// form ParseChaos accepts and that reproduces the model exactly — the
// same contract the fault-model and topology grammars keep.
func FuzzChaosSpec(f *testing.F) {
	for _, seed := range []string{
		"", "none", "latency", "error", "reset",
		"latency:p=0.2,ms=30+error:p=0.1,code=503+reset:p=0.02+seed:n=7",
		"latency:p=1e-3", "error:code=599", "seed:n=-3",
		"latency:p=0.1,ms=0", "latency:+error", "a=b", "latency:p==1",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		m, err := ParseChaos(spec)
		if err != nil {
			return
		}
		canon := m.Spec()
		again, err := ParseChaos(canon)
		if err != nil {
			t.Fatalf("canonical spec %q of accepted %q rejected: %v", canon, spec, err)
		}
		if again != m {
			t.Fatalf("round trip %q → %q: %+v != %+v", spec, canon, again, m)
		}
		if strings.Count(canon, "+") > strings.Count(spec, "+")+1 {
			t.Fatalf("canonical form %q longer than input %q", canon, spec)
		}
	})
}
