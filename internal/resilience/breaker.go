package resilience

import (
	"errors"
	"sync"
	"time"
)

// ErrBreakerOpen is returned by Breaker.Allow while the breaker refuses
// traffic. Callers fail fast instead of stacking requests onto a peer
// that is already drowning.
var ErrBreakerOpen = errors.New("resilience: circuit breaker open")

// BreakerState is one of the breaker's three states.
type BreakerState int32

const (
	// BreakerClosed passes traffic, counting consecutive failures.
	BreakerClosed BreakerState = iota
	// BreakerOpen rejects traffic until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen admits a single probe; its outcome decides
	// between Closed and another Open period.
	BreakerHalfOpen
)

// String implements fmt.Stringer.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// BreakerConfig tunes a Breaker. The zero value gives a breaker that
// trips after 5 consecutive failures and probes after a 5 s cooldown.
type BreakerConfig struct {
	// Threshold is the consecutive-failure count that trips the breaker
	// (minimum 1; 0 selects the default of 5).
	Threshold int
	// Cooldown is how long the breaker stays open before half-opening
	// for one probe (0 selects the default of 5 s).
	Cooldown time.Duration
	// Now overrides the clock, for deterministic tests.
	Now func() time.Time
}

// Breaker is a consecutive-failure circuit breaker: Closed until
// Threshold failures in a row, then Open (rejecting instantly) for
// Cooldown, then HalfOpen admitting exactly one probe. A successful
// probe closes the breaker; a failed one re-opens it for another
// cooldown.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time

	mu       sync.Mutex
	state    BreakerState
	fails    int
	openedAt time.Time
	probing  bool
}

// NewBreaker builds a breaker from cfg.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.Threshold <= 0 {
		cfg.Threshold = 5
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 5 * time.Second
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	return &Breaker{threshold: cfg.Threshold, cooldown: cfg.Cooldown, now: cfg.Now}
}

// Allow reports whether a request may proceed. It returns ErrBreakerOpen
// while the breaker is open (or while a half-open probe is already in
// flight). Every allowed request must be matched by exactly one Success,
// Failure, or Cancel call — an unmatched half-open admission would hold
// the single probe slot forever and wedge the breaker open.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return nil
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return ErrBreakerOpen
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return nil
	default: // BreakerHalfOpen
		if b.probing {
			return ErrBreakerOpen
		}
		b.probing = true
		return nil
	}
}

// Success records a successful request, closing a half-open breaker and
// resetting the failure streak. A success that lands while the breaker
// is Open is a stale verdict from a request admitted before the trip —
// it says nothing about health now, so the cooldown stands.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerOpen {
		return
	}
	b.fails = 0
	b.probing = false
	b.state = BreakerClosed
}

// Cancel releases an Allow admission whose outcome carries no health
// verdict — the caller's own deadline expired, or the server rejected
// the request for reasons unrelated to its health. State and the
// failure streak are untouched; in HalfOpen the probe slot is freed so
// the next Allow can send another probe instead of the breaker wedging
// open waiting for a verdict that will never arrive.
func (b *Breaker) Cancel() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
}

// Failure records a failed request. In Closed it extends the streak and
// trips the breaker at the threshold; in HalfOpen the failed probe
// re-opens the breaker for a fresh cooldown.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerHalfOpen:
		b.trip()
	case BreakerClosed:
		b.fails++
		if b.fails >= b.threshold {
			b.trip()
		}
	}
}

// trip moves to Open; callers hold the lock.
func (b *Breaker) trip() {
	b.state = BreakerOpen
	b.openedAt = b.now()
	b.fails = 0
	b.probing = false
}

// State returns the current state.
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
