package resilience

import (
	"sync"
	"time"
)

// Limiter is a keyed token-bucket rate limiter: each client (key) gets
// an independent bucket refilled at rate tokens/second up to burst. The
// key is whatever identifies a client at the serving surface — the peer
// host, qualified by an X-Ringsched-Client header when present.
//
// The bucket table is bounded at maxKeys. When a previously unseen key
// arrives at capacity, the longest-idle bucket is evicted only if it has
// been idle for at least a full refill — its owner would have found a
// full bucket on return regardless, so that eviction cannot change any
// outcome. Otherwise every resident client is still active, and the new
// key is charged to one shared overflow bucket instead: a client
// rotating identities to mint fresh buckets gets one client's aggregate
// throughput rather than burst× per alias, and can never evict a
// legitimate client's state. Allow on a resident key allocates nothing.
type Limiter struct {
	rate    float64 // tokens per second
	burst   float64
	maxKeys int

	mu       sync.Mutex
	buckets  map[string]*bucket
	overflow *bucket // shared by unseen keys while the table is saturated
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewLimiter builds a limiter granting each client rate requests/second
// with bursts up to burst. rate <= 0 disables limiting (Allow always
// succeeds). burst < 1 is raised to 1; maxKeys < 1 defaults to 1024.
func NewLimiter(rate, burst float64, maxKeys int) *Limiter {
	if burst < 1 {
		burst = 1
	}
	if maxKeys < 1 {
		maxKeys = 1024
	}
	return &Limiter{rate: rate, burst: burst, maxKeys: maxKeys, buckets: map[string]*bucket{}}
}

// Allow reports whether key may proceed at time now, spending one token.
// On rejection, retryAfter is the time until the bucket next holds a
// full token.
func (l *Limiter) Allow(key string, now time.Time) (ok bool, retryAfter time.Duration) {
	if l == nil || l.rate <= 0 {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b, exists := l.buckets[key]
	if !exists {
		b = l.insert(key, now)
	} else if dt := now.Sub(b.last).Seconds(); dt > 0 {
		b.tokens += dt * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = now
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
}

// insert returns the bucket a previously unseen key charges: a fresh
// full bucket when there is table space (or a semantically-free
// eviction makes some), else the shared overflow bucket, refilled like
// any other. Called with the lock held.
func (l *Limiter) insert(key string, now time.Time) *bucket {
	if len(l.buckets) >= l.maxKeys && !l.evictRefilled(now) {
		if l.overflow == nil {
			l.overflow = &bucket{tokens: l.burst, last: now}
		} else if dt := now.Sub(l.overflow.last).Seconds(); dt > 0 {
			l.overflow.tokens += dt * l.rate
			if l.overflow.tokens > l.burst {
				l.overflow.tokens = l.burst
			}
			l.overflow.last = now
		}
		return l.overflow
	}
	b := &bucket{tokens: l.burst, last: now}
	l.buckets[key] = b
	return b
}

// evictRefilled drops the bucket with the oldest refill time, but only
// if it has been idle for at least a full refill (burst/rate seconds):
// its owner would see a full bucket either way, so the eviction is
// unobservable. Called with the lock held, only on insertion of a new
// key past maxKeys — an O(n) scan amortized over eviction-rare
// workloads.
func (l *Limiter) evictRefilled(now time.Time) bool {
	var victim string
	var oldest time.Time
	first := true
	for k, b := range l.buckets {
		if first || b.last.Before(oldest) {
			victim, oldest, first = k, b.last, false
		}
	}
	if first || now.Sub(oldest).Seconds()*l.rate < l.burst {
		return false
	}
	delete(l.buckets, victim)
	return true
}

// Clients returns the number of resident buckets.
func (l *Limiter) Clients() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buckets)
}
