package resilience

import (
	"sync"
	"time"
)

// Limiter is a keyed token-bucket rate limiter: each client (key) gets
// an independent bucket refilled at rate tokens/second up to burst. The
// key is whatever identifies a client at the serving surface — an
// X-Ringsched-Client header, or the peer host as a fallback.
//
// The bucket table is bounded: when maxKeys distinct clients are
// resident and a new one arrives, the longest-idle bucket is evicted
// (its owner simply starts from a full bucket next time, which only ever
// errs in the client's favor). Allow on a resident key allocates
// nothing.
type Limiter struct {
	rate    float64 // tokens per second
	burst   float64
	maxKeys int

	mu      sync.Mutex
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewLimiter builds a limiter granting each client rate requests/second
// with bursts up to burst. rate <= 0 disables limiting (Allow always
// succeeds). burst < 1 is raised to 1; maxKeys < 1 defaults to 1024.
func NewLimiter(rate, burst float64, maxKeys int) *Limiter {
	if burst < 1 {
		burst = 1
	}
	if maxKeys < 1 {
		maxKeys = 1024
	}
	return &Limiter{rate: rate, burst: burst, maxKeys: maxKeys, buckets: map[string]*bucket{}}
}

// Allow reports whether key may proceed at time now, spending one token.
// On rejection, retryAfter is the time until the bucket next holds a
// full token.
func (l *Limiter) Allow(key string, now time.Time) (ok bool, retryAfter time.Duration) {
	if l == nil || l.rate <= 0 {
		return true, 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b, exists := l.buckets[key]
	if !exists {
		if len(l.buckets) >= l.maxKeys {
			l.evictIdlest()
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	} else {
		if dt := now.Sub(b.last).Seconds(); dt > 0 {
			b.tokens += dt * l.rate
			if b.tokens > l.burst {
				b.tokens = l.burst
			}
			b.last = now
		}
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
}

// evictIdlest drops the bucket with the oldest refill time. Called with
// the lock held, only on insertion of a new key past maxKeys — an O(n)
// scan amortized over eviction-rare workloads.
func (l *Limiter) evictIdlest() {
	var victim string
	var oldest time.Time
	first := true
	for k, b := range l.buckets {
		if first || b.last.Before(oldest) {
			victim, oldest, first = k, b.last, false
		}
	}
	delete(l.buckets, victim)
}

// Clients returns the number of resident buckets.
func (l *Limiter) Clients() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buckets)
}
