// Package stats provides the small set of descriptive statistics the Monte
// Carlo breakdown engine and the simulator reports need: running
// mean/variance (Welford), normal confidence intervals, percentiles, and
// fixed-width histograms.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// ErrNoData is returned by queries on empty accumulators.
var ErrNoData = errors.New("stats: no samples")

// Running accumulates samples with Welford's online algorithm, giving
// numerically stable mean and variance without retaining the samples.
type Running struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one sample.
func (r *Running) Add(x float64) {
	r.n++
	if r.n == 1 {
		r.min, r.max = x, x
	} else {
		r.min = math.Min(r.min, x)
		r.max = math.Max(r.max, x)
	}
	delta := x - r.mean
	r.mean += delta / float64(r.n)
	r.m2 += delta * (x - r.mean)
}

// N returns the sample count.
func (r *Running) N() int { return r.n }

// Mean returns the sample mean (0 with no samples).
func (r *Running) Mean() float64 { return r.mean }

// Min returns the smallest sample (0 with no samples).
func (r *Running) Min() float64 { return r.min }

// Max returns the largest sample (0 with no samples).
func (r *Running) Max() float64 { return r.max }

// Variance returns the unbiased sample variance (0 with fewer than two
// samples).
func (r *Running) Variance() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n-1)
}

// StdDev returns the sample standard deviation.
func (r *Running) StdDev() float64 { return math.Sqrt(r.Variance()) }

// StdErr returns the standard error of the mean.
func (r *Running) StdErr() float64 {
	if r.n == 0 {
		return 0
	}
	return r.StdDev() / math.Sqrt(float64(r.n))
}

// CI95 returns the half-width of the normal-approximation 95 % confidence
// interval on the mean.
func (r *Running) CI95() float64 { return 1.959964 * r.StdErr() }

// String implements fmt.Stringer.
func (r *Running) String() string {
	return fmt.Sprintf("n=%d mean=%.4g ±%.2g (sd=%.3g min=%.4g max=%.4g)",
		r.n, r.Mean(), r.CI95(), r.StdDev(), r.min, r.max)
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of the samples by
// linear interpolation between closest ranks. The input is not modified.
func Percentile(samples []float64, p float64) (float64, error) {
	if len(samples) == 0 {
		return 0, ErrNoData
	}
	if p < 0 || p > 100 || math.IsNaN(p) {
		return 0, fmt.Errorf("stats: percentile %v out of range [0,100]", p)
	}
	sorted := make([]float64, len(samples))
	copy(sorted, samples)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	w := rank - float64(lo)
	return sorted[lo]*(1-w) + sorted[hi]*w, nil
}

// Histogram counts samples into equal-width bins over [min, max].
type Histogram struct {
	Min, Max float64
	Counts   []int
	under    int
	over     int
}

// NewHistogram creates a histogram with the given bounds and bin count.
func NewHistogram(min, max float64, bins int) (*Histogram, error) {
	if bins <= 0 {
		return nil, errors.New("stats: histogram needs at least one bin")
	}
	if !(min < max) {
		return nil, errors.New("stats: histogram needs min < max")
	}
	return &Histogram{Min: min, Max: max, Counts: make([]int, bins)}, nil
}

// Add counts one sample; values outside [Min, Max] land in under/overflow.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Min:
		h.under++
	case x >= h.Max:
		if x == h.Max {
			h.Counts[len(h.Counts)-1]++
			return
		}
		h.over++
	default:
		i := int((x - h.Min) / (h.Max - h.Min) * float64(len(h.Counts)))
		if i == len(h.Counts) {
			i--
		}
		h.Counts[i]++
	}
}

// Render draws the histogram as rows of '#' bars, one per bin, scaled so
// the fullest bin spans width characters.
func (h *Histogram) Render(width int) string {
	if width <= 0 {
		width = 40
	}
	maxCount := 1
	for _, c := range h.Counts {
		if c > maxCount {
			maxCount = c
		}
	}
	var b strings.Builder
	binWidth := (h.Max - h.Min) / float64(len(h.Counts))
	for i, c := range h.Counts {
		lo := h.Min + float64(i)*binWidth
		bar := strings.Repeat("#", c*width/maxCount)
		fmt.Fprintf(&b, "%10.4g |%-*s %d\n", lo, width, bar, c)
	}
	if h.under > 0 || h.over > 0 {
		fmt.Fprintf(&b, "(underflow %d, overflow %d)\n", h.under, h.over)
	}
	return b.String()
}
