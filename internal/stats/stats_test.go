package stats

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRunningBasics(t *testing.T) {
	var r Running
	if r.N() != 0 || r.Mean() != 0 || r.Variance() != 0 || r.StdErr() != 0 {
		t.Error("zero-value Running should report zeros")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(x)
	}
	if r.N() != 8 {
		t.Errorf("N = %d, want 8", r.N())
	}
	if math.Abs(r.Mean()-5) > 1e-12 {
		t.Errorf("Mean = %v, want 5", r.Mean())
	}
	// Sample variance of this classic data set is 32/7.
	if math.Abs(r.Variance()-32.0/7) > 1e-12 {
		t.Errorf("Variance = %v, want %v", r.Variance(), 32.0/7)
	}
	if r.Min() != 2 || r.Max() != 9 {
		t.Errorf("Min/Max = %v/%v, want 2/9", r.Min(), r.Max())
	}
	if r.CI95() <= 0 {
		t.Error("CI95 should be positive with varied samples")
	}
	if r.String() == "" {
		t.Error("String should be non-empty")
	}
}

func TestRunningMatchesDirectComputation(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw%50) + 2
		rng := rand.New(rand.NewSource(seed))
		var r Running
		samples := make([]float64, n)
		for i := range samples {
			samples[i] = rng.NormFloat64()*10 + 3
			r.Add(samples[i])
		}
		var sum float64
		for _, x := range samples {
			sum += x
		}
		mean := sum / float64(n)
		var ss float64
		for _, x := range samples {
			ss += (x - mean) * (x - mean)
		}
		variance := ss / float64(n-1)
		return math.Abs(r.Mean()-mean) < 1e-9 && math.Abs(r.Variance()-variance) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRunningConstantSamples(t *testing.T) {
	var r Running
	for i := 0; i < 10; i++ {
		r.Add(3.5)
	}
	if r.Variance() != 0 || r.StdDev() != 0 || r.CI95() != 0 {
		t.Error("constant samples must have zero spread")
	}
}

func TestPercentile(t *testing.T) {
	samples := []float64{9, 1, 7, 3, 5} // unsorted on purpose
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {25, 3}, {50, 5}, {75, 7}, {100, 9}, {12.5, 2},
	}
	for _, tt := range tests {
		got, err := Percentile(samples, tt.p)
		if err != nil {
			t.Fatalf("Percentile(%v): %v", tt.p, err)
		}
		if math.Abs(got-tt.want) > 1e-12 {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	// Input must not be reordered.
	if samples[0] != 9 {
		t.Error("Percentile mutated its input")
	}
}

func TestPercentileErrors(t *testing.T) {
	if _, err := Percentile(nil, 50); !errors.Is(err, ErrNoData) {
		t.Errorf("empty: %v, want ErrNoData", err)
	}
	if _, err := Percentile([]float64{1}, -5); err == nil {
		t.Error("negative percentile accepted")
	}
	if _, err := Percentile([]float64{1}, 150); err == nil {
		t.Error("percentile > 100 accepted")
	}
	got, err := Percentile([]float64{42}, 73)
	if err != nil || got != 42 {
		t.Errorf("single sample: (%v, %v), want (42, nil)", got, err)
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram(0, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range []float64{-1, 0, 1.9, 2, 5, 9.99, 10, 11} {
		h.Add(x)
	}
	wantCounts := []int{2, 1, 1, 0, 2} // 0,1.9 | 2 | 5 | _ | 9.99,10
	for i, want := range wantCounts {
		if h.Counts[i] != want {
			t.Errorf("bin %d = %d, want %d (all: %v)", i, h.Counts[i], want, h.Counts)
		}
	}
	if h.under != 1 || h.over != 1 {
		t.Errorf("under/over = %d/%d, want 1/1", h.under, h.over)
	}
	if h.Render(30) == "" {
		t.Error("Render should produce output")
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("zero bins accepted")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Error("empty range accepted")
	}
	if _, err := NewHistogram(7, 3, 3); err == nil {
		t.Error("inverted range accepted")
	}
}

func TestCI95Shrinks(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	var small, large Running
	for i := 0; i < 20; i++ {
		small.Add(rng.NormFloat64())
	}
	for i := 0; i < 2000; i++ {
		large.Add(rng.NormFloat64())
	}
	if large.CI95() >= small.CI95() {
		t.Errorf("CI did not shrink with samples: %v vs %v", large.CI95(), small.CI95())
	}
}
