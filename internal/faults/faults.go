// Package faults models realistic token ring failure processes for the
// simulators in internal/tokensim and the degraded-mode analysis in
// internal/core: explicit token loss with an event-driven claim/beacon
// recovery process, frame corruption on Bernoulli or Gilbert–Elliott
// (bursty) channels with CRC-detect-and-retransmit, and station
// crash/restart with bypass reconfiguration latency.
//
// The paper's guarantees (Theorems 4.1/5.1) assume a healthy ring, but its
// motivating deployments — SAFENET, FDDI fieldbuses — care precisely about
// what survives token loss, media errors and station failures. This package
// is the single source of truth for those failure processes; the analysis
// layer folds them back into the guarantees through core.FaultBudget.
//
// Every random decision is drawn from a stream that is a pure function of
// (Model.Seed, station, purpose), so fault runs are reproducible at any
// worker count and enabling one fault process never perturbs another's
// sample path.
package faults

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// DefaultClaimRounds is the number of full token circulations the
// claim/purge process is charged when Recovery.ClaimRounds is unset: one
// round of claim-frame bidding plus one purge round, matching the classic
// token ring recovery sequence.
const DefaultClaimRounds = 2

// Errors returned by model validation.
var (
	ErrBadProbability = errors.New("faults: probability must be in [0, 1]")
	ErrBadDuration    = errors.New("faults: duration must be non-negative and finite")
	ErrBadChannel     = errors.New("faults: unknown channel kind")
	ErrBadDwell       = errors.New("faults: Gilbert–Elliott dwell times must be ≥ 1 frame")
	ErrCrashNeedsDown = errors.New("faults: crash process requires a positive mean downtime")
	ErrBadClaimRounds = errors.New("faults: claim rounds must be non-negative")
)

// Recovery configures what one token loss costs. The zero value selects the
// event-driven claim process with default parameters: the ring is dead for
// Detect seconds (standby/valid-transmission timer expiry) and then for
// ClaimRounds full token circulations of claim/purge bidding, so the
// charged duration scales with the ring latency Θ instead of being a fixed
// constant.
type Recovery struct {
	// Fixed, when positive, bypasses the event model and charges a constant
	// recovery duration per loss (the legacy model kept for comparisons).
	Fixed float64
	// Detect is the dead-ring time before the loss is noticed — the
	// monitor's valid-transmission timer for 802.5, TVX expiry for FDDI.
	Detect float64
	// ClaimRounds is the number of full token circulations the claim/purge
	// bidding needs once the loss is detected; 0 means DefaultClaimRounds.
	ClaimRounds int
}

// Duration returns the medium dead time charged for one token loss on a
// ring with circulation time theta.
func (r Recovery) Duration(theta float64) float64 {
	if r.Fixed > 0 {
		return r.Fixed
	}
	rounds := r.ClaimRounds
	if rounds <= 0 {
		rounds = DefaultClaimRounds
	}
	return r.Detect + float64(rounds)*theta
}

func (r Recovery) validate() error {
	for _, d := range []float64{r.Fixed, r.Detect} {
		if d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
			return ErrBadDuration
		}
	}
	if r.ClaimRounds < 0 {
		return ErrBadClaimRounds
	}
	return nil
}

// ChannelKind selects the frame-corruption process.
type ChannelKind int

const (
	// ChannelClean delivers every frame intact (the zero value).
	ChannelClean ChannelKind = iota
	// ChannelBernoulli corrupts each frame independently with CorruptProb.
	ChannelBernoulli
	// ChannelGilbertElliott is the classic two-state bursty channel: a
	// "good" state corrupting with CorruptProb and a "bad" state corrupting
	// with BurstCorruptProb, with geometric dwell times MeanGap and
	// MeanBurst (in frames). It models the error clustering real media
	// exhibit, which a Bernoulli coin cannot.
	ChannelGilbertElliott
)

// String implements fmt.Stringer.
func (k ChannelKind) String() string {
	switch k {
	case ChannelClean:
		return "clean"
	case ChannelBernoulli:
		return "bernoulli"
	case ChannelGilbertElliott:
		return "gilbert-elliott"
	default:
		return fmt.Sprintf("ChannelKind(%d)", int(k))
	}
}

// Channel configures frame corruption. A corrupted frame still occupies the
// medium for its full effective time — the receiver's CRC check discards it
// and the sender retransmits on a later service — so corruption converts
// directly into extra load.
type Channel struct {
	// Kind selects the process; ChannelClean disables corruption.
	Kind ChannelKind
	// CorruptProb is the per-frame corruption probability: the whole story
	// for ChannelBernoulli, the good-state residual error rate for
	// ChannelGilbertElliott.
	CorruptProb float64
	// BurstCorruptProb is the bad-state corruption probability
	// (Gilbert–Elliott only).
	BurstCorruptProb float64
	// MeanBurst is the mean bad-state dwell in frames (Gilbert–Elliott).
	MeanBurst float64
	// MeanGap is the mean good-state dwell in frames (Gilbert–Elliott).
	MeanGap float64
}

// SteadyStateCorruption returns the long-run fraction of frames the channel
// corrupts — the retransmission overhead the availability discount charges.
func (c Channel) SteadyStateCorruption() float64 {
	switch c.Kind {
	case ChannelBernoulli:
		return c.CorruptProb
	case ChannelGilbertElliott:
		bad := c.MeanBurst / (c.MeanBurst + c.MeanGap)
		return bad*c.BurstCorruptProb + (1-bad)*c.CorruptProb
	default:
		return 0
	}
}

func (c Channel) validate() error {
	switch c.Kind {
	case ChannelClean:
		return nil
	case ChannelBernoulli:
		return prob(c.CorruptProb)
	case ChannelGilbertElliott:
		if err := prob(c.CorruptProb); err != nil {
			return err
		}
		if err := prob(c.BurstCorruptProb); err != nil {
			return err
		}
		if c.MeanBurst < 1 || c.MeanGap < 1 ||
			math.IsNaN(c.MeanBurst) || math.IsNaN(c.MeanGap) ||
			math.IsInf(c.MeanBurst, 0) || math.IsInf(c.MeanGap, 0) {
			return ErrBadDwell
		}
		return nil
	default:
		return ErrBadChannel
	}
}

// active reports whether the channel can ever corrupt a frame.
func (c Channel) active() bool {
	switch c.Kind {
	case ChannelBernoulli:
		return c.CorruptProb > 0
	case ChannelGilbertElliott:
		return c.CorruptProb > 0 || c.BurstCorruptProb > 0
	default:
		return false
	}
}

// Crash configures the station crash/restart process: each station fails
// after an exponential up time and returns after an exponential downtime.
// While down, a station transmits nothing (its synchronous arrivals keep
// queueing against their deadlines); each departure and each reinsertion
// pauses the whole ring for Bypass seconds of beacon/bypass
// reconfiguration.
type Crash struct {
	// Rate is crashes per second of simulated time, per station; 0 disables
	// the process.
	Rate float64
	// MeanDowntime is the mean repair duration in seconds (exponential).
	MeanDowntime float64
	// Bypass is the ring reconfiguration pause charged when a station
	// leaves or rejoins the ring.
	Bypass float64
}

func (c Crash) validate() error {
	if c.Rate < 0 || math.IsNaN(c.Rate) || math.IsInf(c.Rate, 0) {
		return fmt.Errorf("faults: crash rate %w", ErrBadDuration)
	}
	for _, d := range []float64{c.MeanDowntime, c.Bypass} {
		if d < 0 || math.IsNaN(d) || math.IsInf(d, 0) {
			return ErrBadDuration
		}
	}
	if c.Rate > 0 && c.MeanDowntime <= 0 {
		return ErrCrashNeedsDown
	}
	return nil
}

// Model is a composable description of every fault process injected into
// one simulation run. The zero value is a healthy ring. Simulators accept a
// *Model; a nil or inactive model reproduces the clean-ring sample path
// bit-identically.
type Model struct {
	// TokenLossProb is the probability that the token is lost at one token
	// service step: a station visit for the TTP simulator, a frame service
	// for the PDP simulator, and every hop for the reservation MAC.
	TokenLossProb float64
	// Recovery prices each loss; the zero value selects the event-driven
	// claim process (Detect + DefaultClaimRounds·Θ).
	Recovery Recovery
	// Channel corrupts synchronous frames; the zero value is clean.
	Channel Channel
	// Crash fails and restarts stations; the zero value never crashes.
	Crash Crash
	// Seed derives the per-(station, purpose) random streams. Runs with
	// equal Seed and model are bit-identical regardless of scheduling.
	Seed int64
}

// Validate reports the first invalid field, or nil. A nil model is always
// valid.
func (m *Model) Validate() error {
	if m == nil {
		return nil
	}
	if err := prob(m.TokenLossProb); err != nil {
		return err
	}
	if err := m.Recovery.validate(); err != nil {
		return err
	}
	if err := m.Channel.validate(); err != nil {
		return err
	}
	return m.Crash.validate()
}

// Active reports whether the model can inject any fault at all. Inactive
// models (nil, or every probability zero) cost nothing and change nothing.
func (m *Model) Active() bool {
	if m == nil {
		return false
	}
	return m.TokenLossProb > 0 || m.Channel.active() || m.Crash.Rate > 0
}

func prob(p float64) error {
	if p < 0 || p > 1 || math.IsNaN(p) {
		return ErrBadProbability
	}
	return nil
}

// Stream purposes: distinct sub-streams per station so enabling one fault
// process never shifts another's sample path.
const (
	purposeLoss uint64 = iota + 1
	purposeChannel
	purposeCrash
)

// splitmix64 is the SplitMix64 finalizer — a cheap avalanche so that
// related (seed, station, purpose) triples yield unrelated streams.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

func substream(seed int64, station int, purpose uint64) *rand.Rand {
	h := splitmix64(uint64(seed) ^ splitmix64(uint64(station+1)<<8|purpose))
	return rand.New(rand.NewSource(int64(h)))
}

// interval is one [Start, End) station downtime.
type interval struct {
	start, end float64
}

// stationFaults is one station's per-run fault state.
type stationFaults struct {
	loss    *rand.Rand
	channel *rand.Rand
	// bad is the Gilbert–Elliott channel state.
	bad  bool
	down []interval
}

// Injector is the per-run realization of a Model: per-station random
// streams, channel states, and the precomputed crash schedule. Build one
// per simulation run with Model.Injector; all methods are safe on a nil
// receiver (a healthy ring).
type Injector struct {
	model Model
	theta float64

	st []stationFaults
	// bypassTimes holds every ring-reconfiguration instant (a station
	// leaving or rejoining), ascending; bypassIdx is the charge cursor.
	bypassTimes []float64
	bypassIdx   int
	crashes     int
}

// Injector realizes the model for one run on a ring of stations with
// circulation time theta, simulated until horizon. It returns nil when the
// model cannot inject anything, so the caller's fast path stays untouched.
func (m *Model) Injector(stations int, theta, horizon float64) *Injector {
	if !m.Active() {
		return nil
	}
	in := &Injector{model: *m, theta: theta, st: make([]stationFaults, stations)}
	for i := range in.st {
		s := &in.st[i]
		if m.TokenLossProb > 0 {
			s.loss = substream(m.Seed, i, purposeLoss)
		}
		if m.Channel.active() {
			s.channel = substream(m.Seed, i, purposeChannel)
		}
		if m.Crash.Rate > 0 {
			rng := substream(m.Seed, i, purposeCrash)
			t := rng.ExpFloat64() / m.Crash.Rate
			for t < horizon {
				d := rng.ExpFloat64() * m.Crash.MeanDowntime
				s.down = append(s.down, interval{start: t, end: t + d})
				in.bypassTimes = append(in.bypassTimes, t, math.Min(t+d, horizon))
				in.crashes++
				t += d + rng.ExpFloat64()/m.Crash.Rate
			}
		}
	}
	sort.Float64s(in.bypassTimes)
	return in
}

// TokenLost draws the loss decision for one token service step at station.
func (in *Injector) TokenLost(station int) bool {
	if in == nil || in.model.TokenLossProb <= 0 {
		return false
	}
	return in.st[station].loss.Float64() < in.model.TokenLossProb
}

// RecoveryDuration is the medium dead time of one claim/purge recovery.
func (in *Injector) RecoveryDuration() float64 {
	if in == nil {
		return 0
	}
	return in.model.Recovery.Duration(in.theta)
}

// FrameCorrupted draws the channel decision for one synchronous frame sent
// by station. Gilbert–Elliott state advances one frame per call.
func (in *Injector) FrameCorrupted(station int) bool {
	if in == nil || !in.model.Channel.active() {
		return false
	}
	ch := in.model.Channel
	s := &in.st[station]
	p := ch.CorruptProb
	if ch.Kind == ChannelGilbertElliott {
		if s.bad {
			if s.channel.Float64() < 1/ch.MeanBurst {
				s.bad = false
			}
		} else if s.channel.Float64() < 1/ch.MeanGap {
			s.bad = true
		}
		if s.bad {
			p = ch.BurstCorruptProb
		}
	}
	return p > 0 && s.channel.Float64() < p
}

// Down reports whether station is crashed at simulation time now.
func (in *Injector) Down(station int, now float64) bool {
	if in == nil || station >= len(in.st) {
		return false
	}
	iv := in.st[station].down
	j := sort.Search(len(iv), func(k int) bool { return iv[k].end > now })
	return j < len(iv) && iv[j].start <= now
}

// NextRestart returns the earliest instant strictly after now at which a
// currently-down station rejoins the ring, or +Inf when none is down.
func (in *Injector) NextRestart(now float64) float64 {
	next := math.Inf(1)
	if in == nil {
		return next
	}
	for i := range in.st {
		iv := in.st[i].down
		j := sort.Search(len(iv), func(k int) bool { return iv[k].end > now })
		if j < len(iv) && iv[j].start <= now && iv[j].end < next {
			next = iv[j].end
		}
	}
	return next
}

// TakeBypass returns the accumulated beacon/bypass reconfiguration pause
// for every crash or restart that occurred at or before now and has not
// been charged yet. Callers must invoke it with non-decreasing now — true
// inside a discrete-event loop.
func (in *Injector) TakeBypass(now float64) float64 {
	if in == nil || in.model.Crash.Bypass == 0 {
		return 0
	}
	var total float64
	for in.bypassIdx < len(in.bypassTimes) && in.bypassTimes[in.bypassIdx] <= now {
		total += in.model.Crash.Bypass
		in.bypassIdx++
	}
	return total
}

// CrashCount is the number of station crash events scheduled within the
// horizon.
func (in *Injector) CrashCount() int {
	if in == nil {
		return 0
	}
	return in.crashes
}
