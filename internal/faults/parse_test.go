package faults

import (
	"errors"
	"strings"
	"testing"
)

func TestParseModelRoundTripsSpec(t *testing.T) {
	for _, spec := range []string{
		"none",
		"loss:p=0.001",
		"loss:p=0.001,detect=0.001,rounds=2",
		"corrupt:p=0.0001",
		"gilbert:pgood=0.0001,pbad=0.3,burst=16,gap=500",
		"crash:rate=0.1,down=0.05,bypass=0.002",
		"loss:p=0.0005+gilbert:pgood=0,pbad=0.5,burst=8,gap=1000+crash:rate=0.05,down=0.02,bypass=0.001",
	} {
		m, err := ParseModel(spec)
		if err != nil {
			t.Fatalf("ParseModel(%q): %v", spec, err)
		}
		if got := m.Spec(); got != spec {
			t.Errorf("Spec round-trip: %q -> %q", spec, got)
		}
	}
}

func TestParseModelNormalizesEquivalentSpecs(t *testing.T) {
	// Reordered clauses, duration syntax, and exponent notation all parse
	// to the same model, whose Spec() is the canonical spelling.
	variants := []string{
		"loss:p=1e-3,detect=1ms,rounds=2",
		"loss:detect=0.001,rounds=2,p=0.001",
	}
	var first string
	for i, spec := range variants {
		m, err := ParseModel(spec)
		if err != nil {
			t.Fatalf("ParseModel(%q): %v", spec, err)
		}
		if i == 0 {
			first = m.Spec()
		} else if m.Spec() != first {
			t.Errorf("variant %q canonicalized to %q, want %q", spec, m.Spec(), first)
		}
	}
}

func TestParseModelUnknownKindListsValidKinds(t *testing.T) {
	_, err := ParseModel("jitter:p=0.5")
	if err == nil {
		t.Fatal("unknown kind accepted")
	}
	if !errors.Is(err, ErrBadSpec) {
		t.Errorf("error %v does not wrap ErrBadSpec", err)
	}
	for _, want := range []string{"corrupt", "crash", "gilbert", "loss", `"none"`, "jitter"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q should mention %s", err, want)
		}
	}
}

func TestParseModelUnknownKeyListsValidKeys(t *testing.T) {
	cases := map[string][]string{
		"loss:prob=0.5":   {"p, detect, rounds, fixed", "prob"},
		"gilbert:size=8":  {"pgood, pbad, burst, gap", "size"},
		"crash:mttf=10":   {"rate, down, bypass", "mttf"},
		"corrupt:rate=.1": {"p", "rate"},
	}
	for spec, wants := range cases {
		_, err := ParseModel(spec)
		if err == nil {
			t.Errorf("%q accepted", spec)
			continue
		}
		if !errors.Is(err, ErrBadSpec) {
			t.Errorf("%q: error %v does not wrap ErrBadSpec", spec, err)
		}
		for _, want := range wants {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("%q: error %q should mention %q", spec, err, want)
			}
		}
	}
}

func TestScenarioByNameUnknownListsAllScenarios(t *testing.T) {
	_, err := ScenarioByName("bogus")
	if err == nil {
		t.Fatal("unknown scenario accepted")
	}
	if !errors.Is(err, ErrUnknownScenario) {
		t.Errorf("error %v does not wrap ErrUnknownScenario", err)
	}
	for _, sc := range Scenarios() {
		if !strings.Contains(err.Error(), sc.Name) {
			t.Errorf("error %q should list scenario %q", err, sc.Name)
		}
	}
	if !strings.Contains(err.Error(), `"bogus"`) {
		t.Errorf("error %q should echo the bad name", err)
	}
}

func TestScenarioByNameFindsEveryScenario(t *testing.T) {
	for _, want := range Scenarios() {
		got, err := ScenarioByName(want.Name)
		if err != nil {
			t.Errorf("ScenarioByName(%q): %v", want.Name, err)
			continue
		}
		if got.Name != want.Name {
			t.Errorf("ScenarioByName(%q) = %q", want.Name, got.Name)
		}
	}
}
