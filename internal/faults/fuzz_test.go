package faults

import (
	"reflect"
	"testing"
)

// FuzzFaultModel exercises the spec parser: it must never panic, every
// accepted spec must yield a valid model, and the canonical Spec() form
// must parse back to the identical model.
func FuzzFaultModel(f *testing.F) {
	seeds := []string{
		"none",
		"",
		"loss",
		"loss:p=1e-3",
		"loss:p=1e-3,detect=1ms,rounds=2",
		"loss:p=0.5,fixed=2ms",
		"corrupt:p=0.01",
		"gilbert:pgood=1e-4,pbad=0.3,burst=8,gap=500",
		"gilbert:pbad=0.3,burst=16+crash:rate=0.05",
		"crash:rate=0.2,down=20ms,bypass=1ms",
		"loss:p=1e-3+corrupt:p=1e-3+crash:rate=0.1",
		"loss:p=2",
		"gilbert:burst=0.1",
		"bogus:x=1",
		"loss:p=",
		"loss:p=1e-3,p=2e-3",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		m, err := ParseModel(spec)
		if err != nil {
			return
		}
		if verr := m.Validate(); verr != nil {
			t.Fatalf("ParseModel(%q) accepted an invalid model: %v", spec, verr)
		}
		canon := m.Spec()
		back, err := ParseModel(canon)
		if err != nil {
			t.Fatalf("Spec() of parsed %q produced unparsable %q: %v", spec, canon, err)
		}
		if !reflect.DeepEqual(m, back) {
			t.Fatalf("roundtrip mismatch for %q: spec %q gave %+v, want %+v", spec, canon, back, m)
		}
	})
}
