package faults

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// ErrBadSpec reports an unparsable fault-model specification.
var ErrBadSpec = errors.New("faults: bad fault-model spec")

// ErrUnknownScenario reports an unregistered scenario name.
var ErrUnknownScenario = errors.New("faults: unknown scenario")

// ParseModel parses the compact fault-model specification used by the CLI
// -fault-model flags. Grammar:
//
//	spec    := "none" | clause { "+" clause }
//	clause  := kind [ ":" key "=" value { "," key "=" value } ]
//	kind    := "loss" | "corrupt" | "gilbert" | "crash"
//
// Keys per kind (a bare kind takes the defaults in parentheses):
//
//	loss:    p (1e-3), detect, rounds, fixed
//	corrupt: p (1e-3)                             — Bernoulli channel
//	gilbert: pgood (0), pbad (0.5), burst (8), gap (1000)
//	crash:   rate (0.1), down (50ms), bypass (2ms)
//
// Probabilities, rates and counts are plain numbers; durations accept Go
// duration syntax ("2ms") or a float in seconds. Examples:
//
//	loss:p=1e-3,detect=1ms,rounds=2
//	gilbert:pbad=0.3,burst=16+crash:rate=0.05
func ParseModel(spec string) (Model, error) {
	var m Model
	spec = strings.TrimSpace(spec)
	if spec == "" || spec == "none" {
		return m, nil
	}
	for _, clause := range strings.Split(spec, "+") {
		if err := parseClause(&m, clause); err != nil {
			return Model{}, err
		}
	}
	if err := m.Validate(); err != nil {
		return Model{}, err
	}
	return m, nil
}

func parseClause(m *Model, clause string) error {
	kind, params, _ := strings.Cut(strings.TrimSpace(clause), ":")
	kv, err := parseParams(params)
	if err != nil {
		return err
	}
	take := func(key string, def float64, duration bool) (float64, error) {
		raw, ok := kv[key]
		if !ok {
			return def, nil
		}
		delete(kv, key)
		if duration {
			if d, derr := time.ParseDuration(raw); derr == nil {
				return d.Seconds(), nil
			}
		}
		v, perr := strconv.ParseFloat(raw, 64)
		if perr != nil {
			return 0, fmt.Errorf("%w: %s=%q", ErrBadSpec, key, raw)
		}
		return v, nil
	}
	switch kind {
	case "loss":
		if m.TokenLossProb, err = take("p", 1e-3, false); err != nil {
			return err
		}
		if m.Recovery.Detect, err = take("detect", 0, true); err != nil {
			return err
		}
		rounds, err := take("rounds", 0, false)
		if err != nil {
			return err
		}
		if rounds != float64(int(rounds)) || rounds < 0 {
			return fmt.Errorf("%w: rounds=%g is not a non-negative integer", ErrBadSpec, rounds)
		}
		m.Recovery.ClaimRounds = int(rounds)
		if m.Recovery.Fixed, err = take("fixed", 0, true); err != nil {
			return err
		}
	case "corrupt":
		m.Channel.Kind = ChannelBernoulli
		if m.Channel.CorruptProb, err = take("p", 1e-3, false); err != nil {
			return err
		}
	case "gilbert":
		m.Channel.Kind = ChannelGilbertElliott
		if m.Channel.CorruptProb, err = take("pgood", 0, false); err != nil {
			return err
		}
		if m.Channel.BurstCorruptProb, err = take("pbad", 0.5, false); err != nil {
			return err
		}
		if m.Channel.MeanBurst, err = take("burst", 8, false); err != nil {
			return err
		}
		if m.Channel.MeanGap, err = take("gap", 1000, false); err != nil {
			return err
		}
	case "crash":
		if m.Crash.Rate, err = take("rate", 0.1, false); err != nil {
			return err
		}
		if m.Crash.MeanDowntime, err = take("down", 50e-3, true); err != nil {
			return err
		}
		if m.Crash.Bypass, err = take("bypass", 2e-3, true); err != nil {
			return err
		}
	default:
		return fmt.Errorf("%w: unknown clause kind %q (valid kinds: %s; or \"none\")",
			ErrBadSpec, kind, validKindList())
	}
	for key := range kv {
		return fmt.Errorf("%w: unknown %s key %q (valid %s keys: %s)",
			ErrBadSpec, kind, key, kind, clauseKeys[kind])
	}
	return nil
}

// clauseKeys lists the accepted keys per clause kind, for error messages.
var clauseKeys = map[string]string{
	"loss":    "p, detect, rounds, fixed",
	"corrupt": "p",
	"gilbert": "pgood, pbad, burst, gap",
	"crash":   "rate, down, bypass",
}

func validKindList() string {
	kinds := make([]string, 0, len(clauseKeys))
	for k := range clauseKeys {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	return strings.Join(kinds, ", ")
}

func parseParams(params string) (map[string]string, error) {
	kv := map[string]string{}
	if strings.TrimSpace(params) == "" {
		return kv, nil
	}
	for _, pair := range strings.Split(params, ",") {
		key, val, ok := strings.Cut(pair, "=")
		key = strings.TrimSpace(key)
		if !ok || key == "" {
			return nil, fmt.Errorf("%w: want key=value, got %q", ErrBadSpec, pair)
		}
		if _, dup := kv[key]; dup {
			return nil, fmt.Errorf("%w: duplicate key %q", ErrBadSpec, key)
		}
		kv[key] = strings.TrimSpace(val)
	}
	return kv, nil
}

// Spec renders the model in the canonical form ParseModel accepts, with
// durations printed as float seconds; ParseModel(m.Spec()) reproduces m
// exactly (Seed excepted — it is carried out of band by the CLI flags).
func (m Model) Spec() string {
	var parts []string
	if m.TokenLossProb > 0 || m.Recovery != (Recovery{}) {
		s := fmt.Sprintf("loss:p=%g", m.TokenLossProb)
		if m.Recovery.Detect > 0 {
			s += fmt.Sprintf(",detect=%g", m.Recovery.Detect)
		}
		if m.Recovery.ClaimRounds > 0 {
			s += fmt.Sprintf(",rounds=%d", m.Recovery.ClaimRounds)
		}
		if m.Recovery.Fixed > 0 {
			s += fmt.Sprintf(",fixed=%g", m.Recovery.Fixed)
		}
		parts = append(parts, s)
	}
	switch m.Channel.Kind {
	case ChannelBernoulli:
		parts = append(parts, fmt.Sprintf("corrupt:p=%g", m.Channel.CorruptProb))
	case ChannelGilbertElliott:
		parts = append(parts, fmt.Sprintf("gilbert:pgood=%g,pbad=%g,burst=%g,gap=%g",
			m.Channel.CorruptProb, m.Channel.BurstCorruptProb,
			m.Channel.MeanBurst, m.Channel.MeanGap))
	}
	if m.Crash != (Crash{}) {
		parts = append(parts, fmt.Sprintf("crash:rate=%g,down=%g,bypass=%g",
			m.Crash.Rate, m.Crash.MeanDowntime, m.Crash.Bypass))
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, "+")
}

// Scenario is a named, documented fault configuration for CLI use.
type Scenario struct {
	// Name is the -scenario flag value.
	Name string
	// Note is a one-line description for help output.
	Note string
	// Model is the fault configuration.
	Model Model
}

// Scenarios returns the built-in named fault scenarios, mildest first.
func Scenarios() []Scenario {
	return []Scenario{
		{
			Name: "clean",
			Note: "healthy ring; baseline for comparisons",
		},
		{
			Name: "noisy-channel",
			Note: "bursty media errors (Gilbert–Elliott, ~1.6% frames corrupted in 8-frame bursts)",
			Model: Model{Channel: Channel{
				Kind: ChannelGilbertElliott, CorruptProb: 1e-4,
				BurstCorruptProb: 0.3, MeanBurst: 8, MeanGap: 500,
			}},
		},
		{
			Name: "lossy-token",
			Note: "token lost once per ~1000 services; claim recovery of 1ms + 2 rounds",
			Model: Model{
				TokenLossProb: 1e-3,
				Recovery:      Recovery{Detect: 1e-3, ClaimRounds: 2},
			},
		},
		{
			Name:  "flaky-stations",
			Note:  "stations crash ~every 5s for ~20ms, 1ms bypass reconfiguration",
			Model: Model{Crash: Crash{Rate: 0.2, MeanDowntime: 20e-3, Bypass: 1e-3}},
		},
		{
			Name: "degraded",
			Note: "all three processes at moderate severity",
			Model: Model{
				TokenLossProb: 5e-4,
				Recovery:      Recovery{Detect: 1e-3, ClaimRounds: 2},
				Channel: Channel{
					Kind: ChannelGilbertElliott, CorruptProb: 1e-4,
					BurstCorruptProb: 0.2, MeanBurst: 8, MeanGap: 1000,
				},
				Crash: Crash{Rate: 0.05, MeanDowntime: 20e-3, Bypass: 1e-3},
			},
		},
	}
}

// ScenarioByName looks up one built-in scenario. The error of an unknown
// name matches ErrUnknownScenario (errors.Is) and lists every valid name.
func ScenarioByName(name string) (Scenario, error) {
	scenarios := Scenarios()
	names := make([]string, len(scenarios))
	for i, s := range scenarios {
		if s.Name == name {
			return s, nil
		}
		names[i] = s.Name
	}
	return Scenario{}, fmt.Errorf("%w: %q (valid scenarios: %s)",
		ErrUnknownScenario, name, strings.Join(names, ", "))
}
