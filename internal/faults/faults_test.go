package faults

import (
	"errors"
	"math"
	"reflect"
	"testing"
)

func TestModelValidate(t *testing.T) {
	var nilModel *Model
	if err := nilModel.Validate(); err != nil {
		t.Errorf("nil model: %v", err)
	}
	if nilModel.Active() {
		t.Error("nil model active")
	}
	cases := []struct {
		name string
		m    Model
		want error
	}{
		{"zero", Model{}, nil},
		{"loss", Model{TokenLossProb: 0.5}, nil},
		{"negative prob", Model{TokenLossProb: -0.1}, ErrBadProbability},
		{"prob > 1", Model{TokenLossProb: 1.5}, ErrBadProbability},
		{"nan prob", Model{TokenLossProb: math.NaN()}, ErrBadProbability},
		{"negative detect", Model{Recovery: Recovery{Detect: -1}}, ErrBadDuration},
		{"inf fixed", Model{Recovery: Recovery{Fixed: math.Inf(1)}}, ErrBadDuration},
		{"negative rounds", Model{Recovery: Recovery{ClaimRounds: -1}}, ErrBadClaimRounds},
		{"bernoulli ok", Model{Channel: Channel{Kind: ChannelBernoulli, CorruptProb: 0.1}}, nil},
		{"bernoulli bad prob", Model{Channel: Channel{Kind: ChannelBernoulli, CorruptProb: 2}}, ErrBadProbability},
		{"unknown channel", Model{Channel: Channel{Kind: ChannelKind(99)}}, ErrBadChannel},
		{"gilbert ok", Model{Channel: Channel{Kind: ChannelGilbertElliott,
			BurstCorruptProb: 0.5, MeanBurst: 4, MeanGap: 100}}, nil},
		{"gilbert short dwell", Model{Channel: Channel{Kind: ChannelGilbertElliott,
			BurstCorruptProb: 0.5, MeanBurst: 0.5, MeanGap: 100}}, ErrBadDwell},
		{"crash ok", Model{Crash: Crash{Rate: 0.1, MeanDowntime: 1e-3}}, nil},
		{"crash no downtime", Model{Crash: Crash{Rate: 0.1}}, ErrCrashNeedsDown},
		{"crash negative bypass", Model{Crash: Crash{Rate: 0.1, MeanDowntime: 1e-3, Bypass: -1}}, ErrBadDuration},
	}
	for _, tc := range cases {
		err := tc.m.Validate()
		if tc.want == nil && err != nil {
			t.Errorf("%s: unexpected error %v", tc.name, err)
		}
		if tc.want != nil && !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestRecoveryDuration(t *testing.T) {
	theta := 100e-6
	if got := (Recovery{Fixed: 2e-3}).Duration(theta); got != 2e-3 {
		t.Errorf("fixed: %v", got)
	}
	// Zero value: event-driven claim of DefaultClaimRounds circulations.
	if got := (Recovery{}).Duration(theta); got != float64(DefaultClaimRounds)*theta {
		t.Errorf("default claim: %v", got)
	}
	if got := (Recovery{Detect: 1e-3, ClaimRounds: 3}).Duration(theta); got != 1e-3+3*theta {
		t.Errorf("explicit claim: %v", got)
	}
}

func TestInactiveModelHasNilInjector(t *testing.T) {
	zero := &Model{Recovery: Recovery{Fixed: 5e-3}, Seed: 42}
	if zero.Active() {
		t.Fatal("zero-probability model reported active")
	}
	if in := zero.Injector(8, 1e-4, 10); in != nil {
		t.Fatal("inactive model produced an injector")
	}
	var nilInj *Injector
	if nilInj.TokenLost(0) || nilInj.FrameCorrupted(0) || nilInj.Down(0, 1) {
		t.Error("nil injector injected a fault")
	}
	if nilInj.RecoveryDuration() != 0 || nilInj.TakeBypass(1) != 0 || nilInj.CrashCount() != 0 {
		t.Error("nil injector charged time")
	}
	if !math.IsInf(nilInj.NextRestart(0), 1) {
		t.Error("nil injector has a restart")
	}
}

func TestInjectorDeterminism(t *testing.T) {
	m := &Model{
		TokenLossProb: 0.2,
		Channel: Channel{Kind: ChannelGilbertElliott,
			BurstCorruptProb: 0.8, MeanBurst: 4, MeanGap: 20},
		Crash: Crash{Rate: 1, MeanDowntime: 0.05, Bypass: 1e-3},
		Seed:  7,
	}
	draw := func() ([]bool, []bool, []float64) {
		in := m.Injector(4, 1e-4, 10)
		var losses, corrupt []bool
		for i := 0; i < 200; i++ {
			losses = append(losses, in.TokenLost(i%4))
			corrupt = append(corrupt, in.FrameCorrupted(i%4))
		}
		return losses, corrupt, in.bypassTimes
	}
	l1, c1, b1 := draw()
	l2, c2, b2 := draw()
	if !reflect.DeepEqual(l1, l2) || !reflect.DeepEqual(c1, c2) || !reflect.DeepEqual(b1, b2) {
		t.Error("two injectors from the same model disagree")
	}
}

// Enabling the corruption channel must not shift the token-loss sample
// path: each process draws from its own (seed, station, purpose) stream.
func TestSubstreamIndependence(t *testing.T) {
	lossOnly := &Model{TokenLossProb: 0.3, Seed: 11}
	both := &Model{TokenLossProb: 0.3, Seed: 11,
		Channel: Channel{Kind: ChannelBernoulli, CorruptProb: 0.5}}
	a := lossOnly.Injector(2, 1e-4, 1)
	b := both.Injector(2, 1e-4, 1)
	for i := 0; i < 500; i++ {
		b.FrameCorrupted(i % 2) // interleave channel draws
		if a.TokenLost(i%2) != b.TokenLost(i%2) {
			t.Fatalf("loss stream diverged at draw %d", i)
		}
	}
}

func TestCrashScheduleAndBypass(t *testing.T) {
	m := &Model{Crash: Crash{Rate: 2, MeanDowntime: 0.1, Bypass: 5e-3}, Seed: 3}
	in := m.Injector(3, 1e-4, 20)
	if in.CrashCount() == 0 {
		t.Fatal("no crashes over 20 s at rate 2/s")
	}
	// Downtime intervals must be consistent with Down().
	st := in.st[0]
	if len(st.down) == 0 {
		t.Fatal("station 0 never crashed")
	}
	iv := st.down[0]
	mid := (iv.start + iv.end) / 2
	if !in.Down(0, mid) {
		t.Error("station up in the middle of its downtime")
	}
	if in.Down(0, iv.start-1e-9) {
		t.Error("station down before its crash")
	}
	if got := in.NextRestart(mid); got != iv.end {
		t.Errorf("NextRestart = %v, want %v", got, iv.end)
	}
	// Every boundary charges one bypass; charges drain monotonically.
	total := in.TakeBypass(20)
	want := float64(len(in.bypassTimes)) * 5e-3
	if math.Abs(total-want) > 1e-12 {
		t.Errorf("bypass total = %v, want %v", total, want)
	}
	if in.TakeBypass(20) != 0 {
		t.Error("bypass charged twice")
	}
}

func TestGilbertElliottBurstiness(t *testing.T) {
	// With pgood=0 and pbad=1, the corruption rate equals the bad-state
	// occupancy; check it tracks MeanBurst/(MeanBurst+MeanGap).
	m := &Model{Channel: Channel{Kind: ChannelGilbertElliott,
		BurstCorruptProb: 1, MeanBurst: 10, MeanGap: 40}, Seed: 5}
	in := m.Injector(1, 1e-4, 1)
	n, bad := 200000, 0
	for i := 0; i < n; i++ {
		if in.FrameCorrupted(0) {
			bad++
		}
	}
	got := float64(bad) / float64(n)
	want := m.Channel.SteadyStateCorruption()
	if math.Abs(got-want) > 0.02 {
		t.Errorf("corruption fraction %v, want ≈ %v", got, want)
	}
}

func TestSteadyStateCorruption(t *testing.T) {
	if got := (Channel{}).SteadyStateCorruption(); got != 0 {
		t.Errorf("clean channel corrupts: %v", got)
	}
	if got := (Channel{Kind: ChannelBernoulli, CorruptProb: 0.25}).SteadyStateCorruption(); got != 0.25 {
		t.Errorf("bernoulli: %v", got)
	}
	ge := Channel{Kind: ChannelGilbertElliott, CorruptProb: 0.1,
		BurstCorruptProb: 0.9, MeanBurst: 1, MeanGap: 3}
	if got, want := ge.SteadyStateCorruption(), 0.25*0.9+0.75*0.1; math.Abs(got-want) > 1e-12 {
		t.Errorf("gilbert: %v, want %v", got, want)
	}
}
