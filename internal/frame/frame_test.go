package frame

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestValidate(t *testing.T) {
	if err := PaperSpec().Validate(); err != nil {
		t.Errorf("PaperSpec invalid: %v", err)
	}
	if err := (Spec{InfoBits: 0, OvhdBits: 1}).Validate(); !errors.Is(err, ErrBadInfoBits) {
		t.Errorf("zero info: %v, want ErrBadInfoBits", err)
	}
	if err := (Spec{InfoBits: 8, OvhdBits: -1}).Validate(); !errors.Is(err, ErrBadOvhdBits) {
		t.Errorf("negative ovhd: %v, want ErrBadOvhdBits", err)
	}
	if err := (Spec{InfoBits: 8, OvhdBits: 0}).Validate(); err != nil {
		t.Errorf("zero overhead should be legal: %v", err)
	}
}

func TestPaperConstants(t *testing.T) {
	s := PaperSpec()
	if s.InfoBits != 512 || s.OvhdBits != 112 {
		t.Fatalf("PaperSpec = %+v, want 512/112", s)
	}
	if s.TotalBits() != 624 {
		t.Errorf("TotalBits = %v, want 624", s.TotalBits())
	}
	if got := s.Time(1e6); math.Abs(got-624e-6) > 1e-18 {
		t.Errorf("Time(1Mbps) = %v, want 624us", got)
	}
	if got := s.OverheadFraction(); math.Abs(got-112.0/624.0) > 1e-15 {
		t.Errorf("OverheadFraction = %v", got)
	}
}

func TestSplitExamples(t *testing.T) {
	s := PaperSpec()
	tests := []struct {
		bits       float64
		wantL      int
		wantK      int
		wantLastFr float64
	}{
		{1, 0, 1, 1},        // tiny message: one short frame
		{512, 1, 1, 512},    // exactly one full frame
		{513, 1, 2, 1},      // one full + one 1-bit frame
		{1024, 2, 2, 512},   // two full frames
		{1300, 2, 3, 276},   // two full + remainder
		{5120, 10, 10, 512}, // ten full frames
	}
	for _, tt := range tests {
		l, k := s.Split(tt.bits)
		if l != tt.wantL || k != tt.wantK {
			t.Errorf("Split(%v) = (%d,%d), want (%d,%d)", tt.bits, l, k, tt.wantL, tt.wantK)
		}
		if got := s.LastFrameBits(tt.bits); math.Abs(got-tt.wantLastFr) > 1e-9 {
			t.Errorf("LastFrameBits(%v) = %v, want %v", tt.bits, got, tt.wantLastFr)
		}
	}
}

func TestSplitProperties(t *testing.T) {
	s := PaperSpec()
	f := func(raw uint32) bool {
		bits := float64(raw%1_000_000) + 0.5
		l, k := s.Split(bits)
		if k < 1 || l < 0 || k < l || k > l+1 {
			return false
		}
		// K frames must cover the payload; L full frames must not exceed it.
		if float64(k)*s.InfoBits < bits-1e-6 {
			return false
		}
		if float64(l)*s.InfoBits > bits+1e-6 {
			return false
		}
		// Last frame payload in (0, InfoBits].
		last := s.LastFrameBits(bits)
		return last > 0 && last <= s.InfoBits+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestSplitZeroLength(t *testing.T) {
	// Degenerate zero-length messages still occupy one frame slot: the
	// analyzers rely on K ≥ 1 during saturation scaling.
	l, k := PaperSpec().Split(0)
	if l != 0 || k != 1 {
		t.Errorf("Split(0) = (%d,%d), want (0,1)", l, k)
	}
}

func TestTimesScaleWithBandwidth(t *testing.T) {
	s := PaperSpec()
	for _, bw := range []float64{1e6, 16e6, 1e9} {
		if got, want := s.InfoTime(bw), 512/bw; got != want {
			t.Errorf("InfoTime(%v) = %v, want %v", bw, got, want)
		}
		if got, want := s.OvhdTime(bw), 112/bw; got != want {
			t.Errorf("OvhdTime(%v) = %v, want %v", bw, got, want)
		}
		if got, want := s.Time(bw), 624/bw; got != want {
			t.Errorf("Time(%v) = %v, want %v", bw, got, want)
		}
	}
}
