// Package frame models the framing substrate of Section 4.2: messages are
// divided into frames of a fixed maximum size, each carrying Finfo payload
// bits plus Fovhd overhead bits. The priority driven protocol approximates
// preemption at frame granularity, so its schedulability analysis is
// parameterized by the frame counts L_i and K_i defined here.
package frame

import (
	"errors"
	"fmt"
	"math"
)

// Errors returned by Spec.Validate.
var (
	ErrBadInfoBits = errors.New("frame: payload capacity must be positive")
	ErrBadOvhdBits = errors.New("frame: overhead must be non-negative")
)

// Paper constants (Section 6.2): 64-byte payloads with 112 overhead bits.
const (
	// PaperInfoBits is the 64-byte frame payload used in Figure 1.
	PaperInfoBits = 512.0
	// PaperOvhdBits is F_ovhd^b = 112 bits.
	PaperOvhdBits = 112.0
)

// Spec describes the fixed frame format: payload capacity Finfo^b and
// per-frame overhead Fovhd^b, both in bits.
type Spec struct {
	InfoBits float64
	OvhdBits float64
}

// PaperSpec returns the frame format used throughout the paper's
// comparison: 64-byte payload, 112-bit overhead.
func PaperSpec() Spec {
	return Spec{InfoBits: PaperInfoBits, OvhdBits: PaperOvhdBits}
}

// Validate reports the first invalid field, or nil.
func (s Spec) Validate() error {
	switch {
	case s.InfoBits <= 0:
		return ErrBadInfoBits
	case s.OvhdBits < 0:
		return ErrBadOvhdBits
	}
	return nil
}

// TotalBits is F^b, the full frame length in bits.
func (s Spec) TotalBits() float64 { return s.InfoBits + s.OvhdBits }

// Time is F, the time to transmit one full frame at the given bandwidth.
func (s Spec) Time(bandwidthBPS float64) float64 {
	return s.TotalBits() / bandwidthBPS
}

// InfoTime is Finfo, the time to transmit a full frame's payload.
func (s Spec) InfoTime(bandwidthBPS float64) float64 {
	return s.InfoBits / bandwidthBPS
}

// OvhdTime is Fovhd, the time to transmit a frame's overhead bits.
func (s Spec) OvhdTime(bandwidthBPS float64) float64 {
	return s.OvhdBits / bandwidthBPS
}

// OverheadFraction is the fraction of a full frame spent on overhead,
// Fovhd/(Finfo+Fovhd). It is independent of bandwidth.
func (s Spec) OverheadFraction() float64 {
	return s.OvhdBits / s.TotalBits()
}

// Split reports how a message of lengthBits payload bits divides into
// frames: L = floor(len/Finfo) full frames and K = ceil(len/Finfo) total
// frames. K == L when the payload is an exact multiple of the frame
// capacity (all frames full); K == L+1 when the last frame is short.
func (s Spec) Split(lengthBits float64) (fullFrames, totalFrames int) {
	ratio := lengthBits / s.InfoBits
	l := int(math.Floor(ratio))
	k := int(math.Ceil(ratio))
	if k == 0 { // zero-length degenerate message still occupies one frame slot
		k = 1
	}
	return l, k
}

// LastFrameBits is the payload carried by the final frame of a message:
// lengthBits - L*InfoBits when the last frame is short, or InfoBits when
// every frame is full.
func (s Spec) LastFrameBits(lengthBits float64) float64 {
	l, k := s.Split(lengthBits)
	if k == l {
		return s.InfoBits
	}
	return lengthBits - float64(l)*s.InfoBits
}

// String implements fmt.Stringer.
func (s Spec) String() string {
	return fmt.Sprintf("frame{info=%gb ovhd=%gb}", s.InfoBits, s.OvhdBits)
}
